// Command bitflow-serve exposes a BitFlow model over HTTP:
//
//	bitflow-train -out model.bflw
//	bitflow-serve -load model.bflw -addr :8080 -replicas 4
//	curl -s localhost:8080/model
//	curl -s -X POST localhost:8080/infer -d '{"data":[...]}'
//
// Without -load it serves a demo TinyVGG with random weights.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"bitflow/internal/bench"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/serve"
)

var (
	flagLoad     = flag.String("load", "", "packed model file (default: demo TinyVGG)")
	flagAddr     = flag.String("addr", ":8080", "listen address")
	flagReplicas = flag.Int("replicas", bench.PhysicalCores(), "network clones for concurrent requests")
	flagThreads  = flag.Int("threads", 1, "worker threads per inference")
)

func main() {
	flag.Parse()
	feat := sched.Detect()

	var (
		net *graph.Network
		err error
	)
	if *flagLoad != "" {
		f, ferr := os.Open(*flagLoad)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "bitflow-serve: %v\n", ferr)
			os.Exit(1)
		}
		net, err = graph.Load(f, feat)
		f.Close()
	} else {
		net, err = graph.TinyVGG(feat, graph.RandomWeights{Seed: 1})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-serve: %v\n", err)
		os.Exit(1)
	}
	net.Threads = *flagThreads

	srv := serve.New(net, *flagReplicas)
	fmt.Printf("serving %s (%dx%dx%d → %d classes) on %s with %d replica(s)\n",
		net.Name, net.InH, net.InW, net.InC, net.Classes, *flagAddr, *flagReplicas)
	if err := http.ListenAndServe(*flagAddr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-serve: %v\n", err)
		os.Exit(1)
	}
}
