// Command bitflow-serve exposes a BitFlow model over HTTP:
//
//	bitflow-train -out model.bflw
//	bitflow-serve -load model.bflw -addr :8080 -replicas 4
//	curl -s localhost:8080/model
//	curl -s -X POST localhost:8080/infer -d '{"data":[...]}'
//	curl -s localhost:8080/statusz
//
// Without -load it serves a demo TinyVGG with random weights.
//
// The server sheds load once -max-queue requests are waiting (429) or a
// request's -request-timeout expires in the queue (503), and drains
// in-flight requests for -shutdown-grace after SIGINT/SIGTERM.
//
// Thread sizing: all replicas dispatch onto ONE persistent worker pool of
// -threads-total workers, and each inference uses at most -threads of
// them. When -replicas × -threads exceeds the machine's cores the server
// warns and clamps -threads so concurrent replicas cannot oversubscribe
// (disable with -allow-oversubscribe). With -batch, a replica's forward
// pass carries up to -max-batch requests, so fewer replicas with more
// threads each is usually the right trade — batching raises per-pass
// work, not pass concurrency.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/serve"
)

var (
	flagLoad     = flag.String("load", "", "packed model file (default: demo TinyVGG)")
	flagAddr     = flag.String("addr", ":8080", "listen address")
	flagReplicas = flag.Int("replicas", bench.PhysicalCores(), "network clones for concurrent requests")
	flagThreads  = flag.Int("threads", 1, "worker threads per inference")

	flagThreadsTotal = flag.Int("threads-total", runtime.NumCPU(),
		"process-wide worker-pool size shared by all replicas")
	flagAllowOversub = flag.Bool("allow-oversubscribe", false,
		"skip clamping -threads when replicas×threads exceeds the core count")

	flagBatch       = flag.Bool("batch", false, "enable dynamic micro-batching (trades up to -batch-window of latency for throughput)")
	flagBatchWindow = flag.Duration("batch-window", 2*time.Millisecond, "max wait for a batch to fill before dispatching (with -batch)")
	flagMaxBatch    = flag.Int("max-batch", 8, "max requests coalesced into one forward pass (with -batch)")

	flagMaxQueue       = flag.Int("max-queue", 0, "max requests waiting for a replica before shedding with 429 (0 = 4×replicas, min 16)")
	flagRequestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline; expired queued requests get 503")
	flagShutdownGrace  = flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests after SIGTERM")
	flagReadTimeout    = flag.Duration("read-timeout", 30*time.Second, "HTTP read deadline")
	flagIdleTimeout    = flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle limit")
)

func main() {
	flag.Parse()
	feat := sched.Detect()

	var (
		net *graph.Network
		err error
	)
	if *flagLoad != "" {
		f, ferr := os.Open(*flagLoad)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "bitflow-serve: %v\n", ferr)
			os.Exit(1)
		}
		net, err = graph.Load(f, feat)
		f.Close()
	} else {
		net, err = graph.TinyVGG(feat, graph.RandomWeights{Seed: 1})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-serve: %v\n", err)
		os.Exit(1)
	}
	// One process-wide pool for every replica; per-inference budget
	// clamped so concurrent replicas cannot oversubscribe the cores.
	threads := *flagThreads
	if !*flagAllowOversub {
		clamped, did := exec.ClampThreads(threads, *flagReplicas, runtime.NumCPU())
		if did {
			fmt.Fprintf(os.Stderr,
				"bitflow-serve: %d replicas × %d threads oversubscribes %d cores; clamping -threads to %d (use -allow-oversubscribe to keep %d)\n",
				*flagReplicas, threads, runtime.NumCPU(), clamped, threads)
			threads = clamped
		}
	}
	pool := exec.NewPool(*flagThreadsTotal)
	pool.SetSource("-threads-total")

	srv := serve.NewWithConfig(net, serve.Config{
		Replicas:       *flagReplicas,
		MaxQueue:       *flagMaxQueue,
		RequestTimeout: *flagRequestTimeout,
		Batching:       *flagBatch,
		BatchWindow:    *flagBatchWindow,
		MaxBatch:       *flagMaxBatch,
		Exec:           exec.Pooled(pool, threads),
	})
	if !srv.Ready() {
		fmt.Fprintln(os.Stderr, "bitflow-serve: warm-up inference failed; serving anyway, /readyz stays 503")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eff := srv.EffectiveConfig()
	fmt.Printf("serving %s (%dx%dx%d → %d classes) on %s with %d replica(s), queue %d, deadline %s\n",
		net.Name, net.InH, net.InW, net.InC, net.Classes, *flagAddr, eff.Replicas,
		eff.MaxQueue, eff.RequestTimeout)
	rep := pool.Report()
	fmt.Printf("exec pool: %d worker(s) (%s), %d thread(s)/inference, GOMAXPROCS %d, %d CPU(s)\n",
		rep.Workers, rep.Source, threads, rep.GOMAXPROCS, rep.NumCPU)
	if eff.Batching {
		fmt.Printf("micro-batching on: window %s, max batch %d\n", eff.BatchWindow, eff.MaxBatch)
	}
	err = srv.ListenAndServe(ctx, serve.HTTPConfig{
		Addr:          *flagAddr,
		ReadTimeout:   *flagReadTimeout,
		IdleTimeout:   *flagIdleTimeout,
		ShutdownGrace: *flagShutdownGrace,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("bitflow-serve: drained, bye")
}
