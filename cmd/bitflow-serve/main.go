// Command bitflow-serve exposes BitFlow models over HTTP:
//
//	bitflow-train -out model.bflw
//	bitflow-serve -load model.bflw -addr :8080 -replicas 4
//	curl -s localhost:8080/model
//	curl -s -X POST localhost:8080/infer -d '{"data":[...]}'
//	curl -s localhost:8080/statusz
//
// Without -load it serves a demo TinyVGG with random weights.
//
// Multi-model serving takes a JSON manifest instead:
//
//	bitflow-serve -models manifest.json -admin-addr 127.0.0.1:8081
//	curl -s -X POST localhost:8080/v1/models/resnet/infer -d '{"data":[...]}'
//	kill -HUP $(pidof bitflow-serve)   # re-read manifest, hot-swap changed models
//	curl -s -X POST -d '{"model":"resnet","path":"new.bflw"}' 127.0.0.1:8081/admin/reload
//
// Each manifest entry names a model, its artifact path, and its QoS
// envelope (replicas, queue bound, deadline, batching). SIGHUP re-reads
// the manifest and hot-reloads every entry whose path or version
// changed, through the verify-then-flip swap protocol: a candidate that
// fails checksum, decode, warm-up, or the probe self-check is rolled
// back and the old version keeps serving. The admin endpoints (reload,
// model ledger) bind separately via -admin-addr so they are never
// exposed on the inference port.
//
// The server sheds load once a model's queue bound is hit (429) or a
// request's deadline expires in the queue (503), and drains in-flight
// requests for -shutdown-grace after SIGINT/SIGTERM. Shed responses
// carry a Retry-After derived from the live queue depth and observed
// service rate.
//
// -autoscale turns the static QoS envelope into the starting point of a
// per-model control loop that retunes batch window, max-batch, and
// replica count within the -autoscale-* bounds (see /statusz's control
// section for the live setpoints and decision ledger; pin setpoints via
// POST /admin/autoscale on -admin-addr).
//
// Loaded models run the fused conv+pool data-flow plan (see DESIGN.md
// §11); the startup banner reports the fused pair count per model, and
// /model exposes it as "fused_layers". -no-fuse serves the unfused
// layer-per-node plan for fused-vs-unfused diagnosis — logits are
// bit-identical either way.
//
// Thread sizing: all replicas dispatch onto ONE persistent worker pool of
// -threads-total workers, and each inference uses at most -threads of
// them. When replicas × -threads exceeds the machine's cores the server
// warns and clamps -threads so concurrent replicas cannot oversubscribe
// (disable with -allow-oversubscribe). With batching, a replica's forward
// pass carries up to max-batch requests, so fewer replicas with more
// threads each is usually the right trade — batching raises per-pass
// work, not pass concurrency.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/registry"
	"bitflow/internal/sched"
	"bitflow/internal/serve"
)

var (
	flagLoad   = flag.String("load", "", "packed model file (default: demo TinyVGG; exclusive with -models)")
	flagModels = flag.String("models", "", "multi-model JSON manifest (exclusive with -load); SIGHUP re-reads it")
	flagAddr   = flag.String("addr", ":8080", "listen address")
	flagAdmin  = flag.String("admin-addr", "", "admin listen address for /admin/reload and /admin/models (default: admin API off)")

	flagReplicas = flag.Int("replicas", bench.PhysicalCores(), "network clones for concurrent requests (per model unless the manifest overrides)")
	flagThreads  = flag.Int("threads", 1, "worker threads per inference")

	flagThreadsTotal = flag.Int("threads-total", runtime.NumCPU(),
		"process-wide worker-pool size shared by all replicas")
	flagAllowOversub = flag.Bool("allow-oversubscribe", false,
		"skip clamping -threads when replicas×threads exceeds the core count")

	flagBatch       = flag.Bool("batch", false, "enable dynamic micro-batching (trades up to -batch-window of latency for throughput)")
	flagBatchWindow = flag.Duration("batch-window", 2*time.Millisecond, "max wait for a batch to fill before dispatching (with -batch)")
	flagMaxBatch    = flag.Int("max-batch", 8, "max requests coalesced into one forward pass (with -batch)")

	flagNoFuse = flag.Bool("no-fuse", false,
		"serve the unfused layer-per-node plan instead of fusing eligible conv+pool pairs (diagnostic: logits are bit-identical, throughput and memory are worse)")

	flagMaxQueue       = flag.Int("max-queue", 0, "max requests waiting for a replica before shedding with 429 (0 = 4×replicas, min 16)")
	flagRequestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline; expired queued requests get 503")
	flagShutdownGrace  = flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests after SIGTERM")
	flagReadTimeout    = flag.Duration("read-timeout", 30*time.Second, "HTTP read deadline")
	flagIdleTimeout    = flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle limit")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bitflow-serve: "+format+"\n", args...)
	os.Exit(1)
}

// flagConfig is the QoS envelope the command-line flags describe; in
// manifest mode it is the baseline each entry's zero fields fall back to.
func flagConfig(ex *exec.Ctx) serve.Config {
	return serve.Config{
		Replicas:       *flagReplicas,
		MaxQueue:       *flagMaxQueue,
		RequestTimeout: *flagRequestTimeout,
		Batching:       *flagBatch,
		BatchWindow:    *flagBatchWindow,
		MaxBatch:       *flagMaxBatch,
		Autoscale:      autoscaleConfig(),
		Exec:           ex,
	}
}

// entryConfig maps one manifest entry onto serve.Config, deferring zero
// fields to the flag baseline.
func entryConfig(e registry.ManifestEntry, base serve.Config) serve.Config {
	cfg := base
	if e.Replicas > 0 {
		cfg.Replicas = e.Replicas
	}
	if e.MaxQueue > 0 {
		cfg.MaxQueue = e.MaxQueue
	}
	if e.RequestTimeout > 0 {
		cfg.RequestTimeout = time.Duration(e.RequestTimeout)
	}
	if e.Batch {
		cfg.Batching = true
	}
	if e.BatchWindow > 0 {
		cfg.BatchWindow = time.Duration(e.BatchWindow)
	}
	if e.MaxBatch > 0 {
		cfg.MaxBatch = e.MaxBatch
	}
	return cfg
}

// clampThreads applies the oversubscription guard against the widest
// model's replica count (replica sets of different models share the one
// dispatch pool, which already bounds true parallelism).
func clampThreads(threads, maxReplicas int) int {
	if *flagAllowOversub {
		return threads
	}
	clamped, did := exec.ClampThreads(threads, maxReplicas, runtime.NumCPU())
	if did {
		fmt.Fprintf(os.Stderr,
			"bitflow-serve: %d replicas × %d threads oversubscribes %d cores; clamping -threads to %d (use -allow-oversubscribe to keep %d)\n",
			maxReplicas, threads, runtime.NumCPU(), clamped, threads)
	}
	return clamped
}

// maybeUnfuse applies the -no-fuse diagnostic plan to a freshly loaded
// network. Every load path — boot, SIGHUP manifest reload, admin reload
// — funnels through here, so the flag stays in force for the process
// lifetime and replicas cloned off the network inherit the plan.
func maybeUnfuse(net *graph.Network) *graph.Network {
	if *flagNoFuse {
		return net.CloneUnfused()
	}
	return net
}

// reloadTimeout bounds one swap: verification plus draining the old
// replica set, which waits on in-flight requests.
func reloadTimeout() time.Duration {
	return *flagRequestTimeout + *flagShutdownGrace + 15*time.Second
}

// applyManifest hot-reloads every served model whose manifest entry's
// path or version changed since prev. It returns the entries now in
// effect and logs per-model outcomes; a failed swap rolls back and
// keeps the previous entry so the next SIGHUP retries it.
func applyManifest(srv *serve.Server, man *registry.Manifest, prev map[string]registry.ManifestEntry, feat sched.Features) map[string]registry.ManifestEntry {
	next := make(map[string]registry.ManifestEntry, len(prev))
	for name, e := range prev {
		next[name] = e
	}
	for _, e := range man.Models {
		old, served := prev[e.Name]
		if !served {
			fmt.Fprintf(os.Stderr, "bitflow-serve: manifest: model %q not served (adding models needs a restart); skipping\n", e.Name)
			continue
		}
		if old.Path == e.Path && old.Version == e.Version {
			continue
		}
		art, err := registry.LoadArtifact(e.Path, e.Version, feat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bitflow-serve: reload %s: %v\n", e.Name, err)
			continue
		}
		art.Net = maybeUnfuse(art.Net)
		ctx, cancel := context.WithTimeout(context.Background(), reloadTimeout())
		st, err := srv.ReloadModel(ctx, e.Name, art)
		cancel()
		if err != nil {
			if st != nil {
				fmt.Fprintf(os.Stderr, "bitflow-serve: reload %s: rolled back at %s stage: %v\n", e.Name, st.Stage, err)
			} else {
				fmt.Fprintf(os.Stderr, "bitflow-serve: reload %s: %v\n", e.Name, err)
			}
			continue
		}
		fmt.Printf("bitflow-serve: reload %s: %s -> %s (%s)\n", e.Name, st.From, st.To, st.Took)
		next[e.Name] = e
	}
	return next
}

func main() {
	flag.Parse()
	feat := sched.Detect()
	if *flagLoad != "" && *flagModels != "" {
		fatalf("-load and -models are mutually exclusive")
	}
	if err := validateFlags(currentFlagValues(), explicitFlags()); err != nil {
		fatalf("%v", err)
	}

	// One process-wide pool for every replica of every model;
	// per-inference budget clamped so concurrent replicas cannot
	// oversubscribe the cores.
	pool := exec.NewPool(*flagThreadsTotal)
	pool.SetSource("-threads-total")

	var (
		srv     *serve.Server
		served  map[string]registry.ManifestEntry // manifest mode: entries in effect
		threads = *flagThreads
	)
	if *flagModels != "" {
		man, err := registry.LoadManifest(*flagModels)
		if err != nil {
			fatalf("%v", err)
		}
		maxReplicas := *flagReplicas
		for _, e := range man.Models {
			if e.Replicas > maxReplicas {
				maxReplicas = e.Replicas
			}
		}
		threads = clampThreads(threads, effectiveMaxReplicas(maxReplicas))
		base := flagConfig(exec.Pooled(pool, threads))
		specs := make([]serve.ModelSpec, 0, len(man.Models))
		served = make(map[string]registry.ManifestEntry, len(man.Models))
		for _, e := range man.Models {
			art, err := registry.LoadArtifact(e.Path, e.Version, feat)
			if err != nil {
				fatalf("%v", err)
			}
			specs = append(specs, serve.ModelSpec{
				Name:    e.Name,
				Net:     maybeUnfuse(art.Net),
				Version: art.Version,
				Cfg:     entryConfig(e, base),
				Default: e.Default,
			})
			served[e.Name] = e
		}
		srv, err = serve.NewMulti(specs)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		var (
			net *graph.Network
			err error
		)
		if *flagLoad != "" {
			f, ferr := os.Open(*flagLoad)
			if ferr != nil {
				fatalf("%v", ferr)
			}
			net, err = graph.Load(f, feat)
			f.Close()
		} else {
			net, err = graph.TinyVGG(feat, graph.RandomWeights{Seed: 1})
		}
		if err != nil {
			fatalf("%v", err)
		}
		threads = clampThreads(threads, effectiveMaxReplicas(*flagReplicas))
		srv = serve.NewWithConfig(maybeUnfuse(net), flagConfig(exec.Pooled(pool, threads)))
	}
	if !srv.Ready() {
		fmt.Fprintln(os.Stderr, "bitflow-serve: warm-up inference failed; serving anyway, /readyz stays 503")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads the manifest and hot-swaps changed models without
	// dropping requests. Meaningless (and ignored) in single-model mode.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	//bitflow:go-ok process-lifetime signal listener, not inference fan-out
	go func() {
		for range hup {
			if *flagModels == "" {
				fmt.Fprintln(os.Stderr, "bitflow-serve: SIGHUP ignored (no -models manifest)")
				continue
			}
			man, err := registry.LoadManifest(*flagModels)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bitflow-serve: SIGHUP: %v (keeping current models)\n", err)
				continue
			}
			served = applyManifest(srv, man, served, feat)
		}
	}()
	defer signal.Stop(hup)

	// The admin API binds its own address so reload control is never
	// reachable through the inference port.
	if *flagAdmin != "" {
		admin := &http.Server{
			Addr: *flagAdmin,
			Handler: srv.AdminHandler(func(path, version string) (*registry.Artifact, error) {
				art, err := registry.LoadArtifact(path, version, feat)
				if err != nil {
					return nil, err
				}
				art.Net = maybeUnfuse(art.Net)
				return art, nil
			}),
			ReadTimeout: *flagReadTimeout,
			IdleTimeout: *flagIdleTimeout,
		}
		//bitflow:go-ok second http.Server needs its own accept loop
		go func() {
			fmt.Printf("admin API on %s (/admin/reload, /admin/models)\n", *flagAdmin)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "bitflow-serve: admin: %v\n", err)
			}
		}()
		defer admin.Close()
	}

	if *flagNoFuse {
		fmt.Println("fusion disabled by -no-fuse: serving the layer-per-node plan (diagnostic mode)")
	}
	for _, name := range srv.Models() {
		ins, err := srv.IntrospectModel(name)
		if err != nil {
			continue
		}
		fmt.Printf("serving model %q version %s on %s with %d replica(s), queue %d\n",
			name, ins.Version, *flagAddr, ins.Replicas, ins.GateMaxQueue)
		if mm, err := srv.ModelMeta(name); err == nil {
			if mm.FusedLayers > 0 {
				fmt.Printf("fusion %q: %d conv+pool pair(s) run as fused packed-bit epilogues (-no-fuse to split)\n",
					name, mm.FusedLayers)
			}
			if mm.CompressedLayers > 0 {
				fmt.Printf("kernel compression %q: %d layer(s) dedupe repeated packed filter words\n",
					name, mm.CompressedLayers)
			}
		}
		if st := srv.ControlStatus(name); st != nil {
			fmt.Printf("autoscale %q: replicas [%d, %d], max-batch [%d, %d], window [%s, %s]\n",
				name, st.Bounds.MinReplicas, st.Bounds.MaxReplicas,
				st.Bounds.MinBatch, st.Bounds.MaxBatch, st.Bounds.MinWindow, st.Bounds.MaxWindow)
		}
	}
	rep := pool.Report()
	fmt.Printf("exec pool: %d worker(s) (%s), %d thread(s)/inference, GOMAXPROCS %d, %d CPU(s)\n",
		rep.Workers, rep.Source, threads, rep.GOMAXPROCS, rep.NumCPU)

	err := srv.ListenAndServe(ctx, serve.HTTPConfig{
		Addr:          *flagAddr,
		ReadTimeout:   *flagReadTimeout,
		IdleTimeout:   *flagIdleTimeout,
		ShutdownGrace: *flagShutdownGrace,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println("bitflow-serve: drained, bye")
}
