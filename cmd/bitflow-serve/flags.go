package main

// Startup flag validation. Every contradictory flag combination is
// rejected here with a message naming the offending flags, before any
// model is loaded — an operator typo must fail fast at the command line,
// not panic inside the serving stack or be silently defaulted away.
//
// validateFlags is a pure function over a captured flagValues snapshot
// plus the set of flags the user explicitly passed (flag.Visit), so the
// whole matrix is unit-testable without mutating the global flag set.

import (
	"flag"
	"fmt"
	"time"

	"bitflow/internal/serve"
)

var (
	flagAutoscale = flag.Bool("autoscale", false,
		"enable the adaptive control loop: per-model batch window, max-batch, and replica count are retuned within the -autoscale-* bounds")
	flagAutoscaleInterval = flag.Duration("autoscale-interval", 0,
		"control-tick period (with -autoscale; 0 = 250ms)")
	flagAutoscaleMinReplicas = flag.Int("autoscale-min-replicas", 0,
		"replica floor (with -autoscale; 0 = 1)")
	flagAutoscaleMaxReplicas = flag.Int("autoscale-max-replicas", 0,
		"replica ceiling (with -autoscale; 0 = 2x -replicas)")
	flagAutoscaleMinBatch = flag.Int("autoscale-min-batch", 0,
		"max-batch floor (with -autoscale -batch; 0 = 1)")
	flagAutoscaleMaxBatch = flag.Int("autoscale-max-batch", 0,
		"max-batch ceiling (with -autoscale -batch; 0 = max(16, -max-batch))")
	flagAutoscaleMinWindow = flag.Duration("autoscale-min-window", 0,
		"batch-window floor (with -autoscale -batch; 0 = min(500us, -batch-window))")
	flagAutoscaleMaxWindow = flag.Duration("autoscale-max-window", 0,
		"batch-window ceiling (with -autoscale -batch; 0 = 4x -batch-window)")
)

// flagValues is the snapshot validateFlags checks.
type flagValues struct {
	load, models string

	replicas       int
	batch          bool
	batchWindow    time.Duration
	maxBatch       int
	requestTimeout time.Duration

	autoscale     bool
	asInterval    time.Duration
	asMinReplicas int
	asMaxReplicas int
	asMinBatch    int
	asMaxBatch    int
	asMinWindow   time.Duration
	asMaxWindow   time.Duration
}

func currentFlagValues() flagValues {
	return flagValues{
		load:           *flagLoad,
		models:         *flagModels,
		replicas:       *flagReplicas,
		batch:          *flagBatch,
		batchWindow:    *flagBatchWindow,
		maxBatch:       *flagMaxBatch,
		requestTimeout: *flagRequestTimeout,
		autoscale:      *flagAutoscale,
		asInterval:     *flagAutoscaleInterval,
		asMinReplicas:  *flagAutoscaleMinReplicas,
		asMaxReplicas:  *flagAutoscaleMaxReplicas,
		asMinBatch:     *flagAutoscaleMinBatch,
		asMaxBatch:     *flagAutoscaleMaxBatch,
		asMinWindow:    *flagAutoscaleMinWindow,
		asMaxWindow:    *flagAutoscaleMaxWindow,
	}
}

// explicitFlags records which flags the user actually passed.
func explicitFlags() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// validateFlags rejects contradictory flag combinations. In manifest
// mode (-models) the batch flags are a baseline that entries may opt
// into, so "batch flags without -batch" is only an error in single-model
// mode; the bounds checks against the static geometry apply everywhere
// the flag baseline is the geometry.
func validateFlags(v flagValues, set map[string]bool) error {
	if v.replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1 (got %d)", v.replicas)
	}
	if v.requestTimeout <= 0 {
		return fmt.Errorf("-request-timeout must be positive (got %v)", v.requestTimeout)
	}
	if v.batchWindow <= 0 {
		return fmt.Errorf("-batch-window must be positive (got %v)", v.batchWindow)
	}
	if v.maxBatch < 1 {
		return fmt.Errorf("-max-batch must be at least 1 (got %d)", v.maxBatch)
	}
	if !v.batch && v.models == "" {
		for _, f := range []string{"batch-window", "max-batch"} {
			if set[f] {
				return fmt.Errorf("-%s has no effect without -batch", f)
			}
		}
	}

	if !v.autoscale {
		for _, f := range []string{
			"autoscale-interval",
			"autoscale-min-replicas", "autoscale-max-replicas",
			"autoscale-min-batch", "autoscale-max-batch",
			"autoscale-min-window", "autoscale-max-window",
		} {
			if set[f] {
				return fmt.Errorf("-%s has no effect without -autoscale", f)
			}
		}
		return nil
	}

	if set["autoscale-interval"] && v.asInterval <= 0 {
		return fmt.Errorf("-autoscale-interval must be positive (got %v)", v.asInterval)
	}
	if !v.batch && v.models == "" {
		for _, f := range []string{"autoscale-min-batch", "autoscale-max-batch",
			"autoscale-min-window", "autoscale-max-window"} {
			if set[f] {
				return fmt.Errorf("-%s has no effect without -batch", f)
			}
		}
	}

	// Bound sanity, then containment of the static geometry: the flags
	// are the geometry the controller starts from and degrades to, so
	// bounds that exclude them are an operator error, not something to
	// clamp silently.
	type boundI struct {
		minF, maxF string
		min, max   int
		static     int
		staticF    string
	}
	for _, b := range []boundI{
		{"autoscale-min-replicas", "autoscale-max-replicas", v.asMinReplicas, v.asMaxReplicas, v.replicas, "replicas"},
		{"autoscale-min-batch", "autoscale-max-batch", v.asMinBatch, v.asMaxBatch, v.maxBatch, "max-batch"},
	} {
		if set[b.minF] && b.min < 1 {
			return fmt.Errorf("-%s must be at least 1 (got %d)", b.minF, b.min)
		}
		if set[b.maxF] && b.max < 1 {
			return fmt.Errorf("-%s must be at least 1 (got %d)", b.maxF, b.max)
		}
		if set[b.minF] && set[b.maxF] && b.min > b.max {
			return fmt.Errorf("-%s %d exceeds -%s %d", b.minF, b.min, b.maxF, b.max)
		}
		if set[b.minF] && b.min > b.static {
			return fmt.Errorf("-%s %d excludes the static -%s %d the controller starts from", b.minF, b.min, b.staticF, b.static)
		}
		if set[b.maxF] && b.max < b.static {
			return fmt.Errorf("-%s %d excludes the static -%s %d the controller starts from", b.maxF, b.max, b.staticF, b.static)
		}
	}
	type boundD struct {
		minF, maxF string
		min, max   time.Duration
		static     time.Duration
		staticF    string
	}
	for _, b := range []boundD{
		{"autoscale-min-window", "autoscale-max-window", v.asMinWindow, v.asMaxWindow, v.batchWindow, "batch-window"},
	} {
		if set[b.minF] && b.min <= 0 {
			return fmt.Errorf("-%s must be positive (got %v)", b.minF, b.min)
		}
		if set[b.maxF] && b.max <= 0 {
			return fmt.Errorf("-%s must be positive (got %v)", b.maxF, b.max)
		}
		if set[b.minF] && set[b.maxF] && b.min > b.max {
			return fmt.Errorf("-%s %v exceeds -%s %v", b.minF, b.min, b.maxF, b.max)
		}
		if v.batch || v.models != "" {
			if set[b.minF] && b.min > b.static {
				return fmt.Errorf("-%s %v excludes the static -%s %v the controller starts from", b.minF, b.min, b.staticF, b.static)
			}
			if set[b.maxF] && b.max < b.static {
				return fmt.Errorf("-%s %v excludes the static -%s %v the controller starts from", b.maxF, b.max, b.staticF, b.static)
			}
		}
	}
	return nil
}

// effectiveMaxReplicas is the replica ceiling the oversubscription guard
// must assume: with -autoscale the controller may grow the set to the
// configured bound (defaulting to 2x the static count, mirroring
// serve's defaulting), so clamping against the static count would let a
// scale-up oversubscribe the cores at the worst possible moment.
func effectiveMaxReplicas(static int) int {
	if !*flagAutoscale {
		return static
	}
	if *flagAutoscaleMaxReplicas > 0 {
		return *flagAutoscaleMaxReplicas
	}
	return 2 * static
}

// autoscaleConfig maps the -autoscale-* flags onto serve's config; nil
// when the loop is off.
func autoscaleConfig() *serve.AutoscaleConfig {
	if !*flagAutoscale {
		return nil
	}
	return &serve.AutoscaleConfig{
		Interval:    *flagAutoscaleInterval,
		MinReplicas: *flagAutoscaleMinReplicas,
		MaxReplicas: *flagAutoscaleMaxReplicas,
		MinBatch:    *flagAutoscaleMinBatch,
		MaxBatch:    *flagAutoscaleMaxBatch,
		MinWindow:   *flagAutoscaleMinWindow,
		MaxWindow:   *flagAutoscaleMaxWindow,
	}
}
