package main

import (
	"strings"
	"testing"
	"time"
)

// base returns a flagValues matching the flag defaults, which must
// always validate.
func base() flagValues {
	return flagValues{
		replicas:       2,
		batchWindow:    2 * time.Millisecond,
		maxBatch:       8,
		requestTimeout: 30 * time.Second,
	}
}

func setOf(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestValidateFlagsAcceptsDefaults(t *testing.T) {
	if err := validateFlags(base(), setOf()); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
}

func TestValidateFlagsRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flagValues)
		set     []string
		wantSub string
	}{
		{
			name:    "replicas below 1",
			mutate:  func(v *flagValues) { v.replicas = 0 },
			wantSub: "-replicas must be at least 1",
		},
		{
			name:    "negative batch window",
			mutate:  func(v *flagValues) { v.batch = true; v.batchWindow = -time.Millisecond },
			set:     []string{"batch", "batch-window"},
			wantSub: "-batch-window must be positive",
		},
		{
			name:    "zero batch window",
			mutate:  func(v *flagValues) { v.batch = true; v.batchWindow = 0 },
			set:     []string{"batch", "batch-window"},
			wantSub: "-batch-window must be positive",
		},
		{
			name:    "max-batch below 1",
			mutate:  func(v *flagValues) { v.batch = true; v.maxBatch = 0 },
			set:     []string{"batch", "max-batch"},
			wantSub: "-max-batch must be at least 1",
		},
		{
			name:    "batch-window without -batch",
			mutate:  func(v *flagValues) { v.batchWindow = 5 * time.Millisecond },
			set:     []string{"batch-window"},
			wantSub: "-batch-window has no effect without -batch",
		},
		{
			name:    "max-batch without -batch",
			mutate:  func(v *flagValues) { v.maxBatch = 16 },
			set:     []string{"max-batch"},
			wantSub: "-max-batch has no effect without -batch",
		},
		{
			name:    "non-positive request timeout",
			mutate:  func(v *flagValues) { v.requestTimeout = 0 },
			set:     []string{"request-timeout"},
			wantSub: "-request-timeout must be positive",
		},
		{
			name:    "autoscale bound without -autoscale",
			mutate:  func(v *flagValues) { v.asMaxReplicas = 8 },
			set:     []string{"autoscale-max-replicas"},
			wantSub: "-autoscale-max-replicas has no effect without -autoscale",
		},
		{
			name:    "autoscale interval without -autoscale",
			mutate:  func(v *flagValues) { v.asInterval = time.Second },
			set:     []string{"autoscale-interval"},
			wantSub: "-autoscale-interval has no effect without -autoscale",
		},
		{
			name:    "non-positive autoscale interval",
			mutate:  func(v *flagValues) { v.autoscale = true; v.asInterval = -time.Second },
			set:     []string{"autoscale", "autoscale-interval"},
			wantSub: "-autoscale-interval must be positive",
		},
		{
			name:    "autoscale batch bound without -batch",
			mutate:  func(v *flagValues) { v.autoscale = true; v.asMaxBatch = 32 },
			set:     []string{"autoscale", "autoscale-max-batch"},
			wantSub: "-autoscale-max-batch has no effect without -batch",
		},
		{
			name: "replica bounds inverted",
			mutate: func(v *flagValues) {
				v.autoscale = true
				v.asMinReplicas, v.asMaxReplicas = 4, 2
				v.replicas = 4
			},
			set:     []string{"autoscale", "autoscale-min-replicas", "autoscale-max-replicas"},
			wantSub: "-autoscale-min-replicas 4 exceeds -autoscale-max-replicas 2",
		},
		{
			name: "replica ceiling below static count",
			mutate: func(v *flagValues) {
				v.autoscale = true
				v.replicas = 4
				v.asMaxReplicas = 2
			},
			set:     []string{"autoscale", "autoscale-max-replicas"},
			wantSub: "excludes the static -replicas 4",
		},
		{
			name: "batch floor above static max-batch",
			mutate: func(v *flagValues) {
				v.autoscale, v.batch = true, true
				v.asMinBatch = 16
			},
			set:     []string{"autoscale", "batch", "autoscale-min-batch"},
			wantSub: "excludes the static -max-batch 8",
		},
		{
			name: "window bounds inverted",
			mutate: func(v *flagValues) {
				v.autoscale, v.batch = true, true
				v.asMinWindow, v.asMaxWindow = 8*time.Millisecond, time.Millisecond
			},
			set:     []string{"autoscale", "batch", "autoscale-min-window", "autoscale-max-window"},
			wantSub: "-autoscale-min-window 8ms exceeds -autoscale-max-window 1ms",
		},
		{
			name: "window ceiling below static window",
			mutate: func(v *flagValues) {
				v.autoscale, v.batch = true, true
				v.asMaxWindow = time.Millisecond
			},
			set:     []string{"autoscale", "batch", "autoscale-max-window"},
			wantSub: "excludes the static -batch-window 2ms",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := base()
			tc.mutate(&v)
			err := validateFlags(v, setOf(tc.set...))
			if err == nil {
				t.Fatalf("flag combination accepted, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateFlagsAccepts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*flagValues)
		set    []string
	}{
		{
			name:   "autoscale with defaulted bounds",
			mutate: func(v *flagValues) { v.autoscale = true },
			set:    []string{"autoscale"},
		},
		{
			name: "autoscale with a full explicit envelope",
			mutate: func(v *flagValues) {
				v.autoscale, v.batch = true, true
				v.asInterval = 100 * time.Millisecond
				v.asMinReplicas, v.asMaxReplicas = 1, 8
				v.asMinBatch, v.asMaxBatch = 1, 32
				v.asMinWindow, v.asMaxWindow = 500*time.Microsecond, 8*time.Millisecond
			},
			set: []string{"autoscale", "batch", "autoscale-interval",
				"autoscale-min-replicas", "autoscale-max-replicas",
				"autoscale-min-batch", "autoscale-max-batch",
				"autoscale-min-window", "autoscale-max-window"},
		},
		{
			name: "manifest mode allows batch flags without -batch",
			mutate: func(v *flagValues) {
				v.models = "manifest.json"
				v.batchWindow = 4 * time.Millisecond
			},
			set: []string{"models", "batch-window"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := base()
			tc.mutate(&v)
			if err := validateFlags(v, setOf(tc.set...)); err != nil {
				t.Fatalf("valid flag combination rejected: %v", err)
			}
		})
	}
}

func TestEffectiveMaxReplicasTracksAutoscaleBound(t *testing.T) {
	*flagAutoscale = false
	if got := effectiveMaxReplicas(4); got != 4 {
		t.Errorf("static mode: %d, want 4", got)
	}
	*flagAutoscale = true
	defer func() { *flagAutoscale = false }()
	if got := effectiveMaxReplicas(4); got != 8 {
		t.Errorf("autoscale default ceiling: %d, want 8 (2x static)", got)
	}
	*flagAutoscaleMaxReplicas = 6
	defer func() { *flagAutoscaleMaxReplicas = 0 }()
	if got := effectiveMaxReplicas(4); got != 6 {
		t.Errorf("explicit ceiling: %d, want 6", got)
	}
}
