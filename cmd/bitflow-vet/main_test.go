package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitflow/internal/analysis"
)

// writeModule lays out a throwaway module for the driver to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

const goMod = "module tmpvet\n\ngo 1.24\n"

// dirtyCore has a raw goroutine in a package whose import-path suffix
// puts it under the rawgo rule.
const dirtyCore = `package core

func fanOut(done chan struct{}) {
	go func() { done <- struct{}{} }()
}
`

const cleanCore = `package core

func fanOut(done chan struct{}) {
	done <- struct{}{}
}
`

// TestExitCodes pins the driver's exit-code contract: findings mean a
// non-zero exit (the verify.sh / CI gate), -exit-zero suppresses only
// the exit code, and usage or load errors are distinct from findings.
func TestExitCodes(t *testing.T) {
	dirty := writeModule(t, map[string]string{
		"go.mod":                goMod,
		"internal/core/core.go": dirtyCore,
	})
	clean := writeModule(t, map[string]string{
		"go.mod":                goMod,
		"internal/core/core.go": cleanCore,
	})

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"findings exit 1", []string{"-dir", dirty}, 1},
		{"findings exit 1 with json", []string{"-dir", dirty, "-json"}, 1},
		{"exit-zero suppresses", []string{"-dir", dirty, "-exit-zero"}, 0},
		{"clean tree exits 0", []string{"-dir", clean}, 0},
		{"unknown analyzer is a usage error", []string{"-enable", "nosuch", "-dir", clean}, 2},
		{"unknown flag is a usage error", []string{"-frobnicate"}, 2},
		{"bad dir is a load error", []string{"-dir", filepath.Join(clean, "nope")}, 2},
		{"list exits 0", []string{"-list"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var got int
			capture(t, func() { got = run(c.args) })
			if got != c.want {
				t.Errorf("run(%v) = %d, want %d", c.args, got, c.want)
			}
		})
	}
}

func TestTextSummaryLine(t *testing.T) {
	dirty := writeModule(t, map[string]string{
		"go.mod":                goMod,
		"internal/core/core.go": dirtyCore,
	})
	var code int
	out := capture(t, func() { code = run([]string{"-dir", dirty}) })
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "[rawgo]") {
		t.Errorf("output missing the rawgo finding:\n%s", out)
	}
	if !strings.Contains(out, "bitflow-vet: 1 findings, 1 files checked") {
		t.Errorf("output missing the summary line:\n%s", out)
	}
}

func TestJSONReport(t *testing.T) {
	dirty := writeModule(t, map[string]string{
		"go.mod":                goMod,
		"internal/core/core.go": dirtyCore,
	})
	var code int
	out := capture(t, func() { code = run([]string{"-dir", dirty, "-json", "-exit-zero"}) })
	if code != 0 {
		t.Fatalf("exit = %d, want 0 under -exit-zero", code)
	}
	var report struct {
		Findings []analysis.Finding `json:"findings"`
		Files    int                `json:"files"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(report.Findings) != 1 || report.Findings[0].Analyzer != "rawgo" {
		t.Errorf("findings = %+v, want one rawgo finding", report.Findings)
	}
	if report.Files != 1 {
		t.Errorf("files = %d, want 1", report.Files)
	}
}

// TestJSONEmptyFindingsIsArray pins the report shape CI consumes: no
// findings must serialize as [], not null.
func TestJSONEmptyFindingsIsArray(t *testing.T) {
	clean := writeModule(t, map[string]string{
		"go.mod":                goMod,
		"internal/core/core.go": cleanCore,
	})
	var code int
	out := capture(t, func() { code = run([]string{"-dir", clean, "-json"}) })
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, `"findings": []`) {
		t.Errorf("empty findings should serialize as []:\n%s", out)
	}
}

// TestAnalyzerSelection exercises -enable/-disable against the dirty
// module: disabling rawgo must hide the finding (exit 0).
func TestAnalyzerSelection(t *testing.T) {
	dirty := writeModule(t, map[string]string{
		"go.mod":                goMod,
		"internal/core/core.go": dirtyCore,
	})
	var code int
	capture(t, func() { code = run([]string{"-dir", dirty, "-disable", "rawgo"}) })
	if code != 0 {
		t.Errorf("with rawgo disabled, exit = %d, want 0", code)
	}
	capture(t, func() { code = run([]string{"-dir", dirty, "-enable", "rawgo"}) })
	if code != 1 {
		t.Errorf("with only rawgo enabled, exit = %d, want 1", code)
	}
}
