// Command bitflow-vet runs the repo-native static-analysis suite
// (internal/analysis) over the module and reports invariant violations.
//
// Usage:
//
//	bitflow-vet [flags] [packages]
//
//	-dir string        module directory to analyze (default ".")
//	-enable string     comma-separated analyzers to run (default: all)
//	-disable string    comma-separated analyzers to skip
//	-json              emit findings as JSON on stdout
//	-findings-only     with -json, emit only the findings array (stable
//	                   across file-count changes; the committed CI
//	                   baseline is diffed against this form)
//	-exit-zero         exit 0 even when there are findings (CI artifact
//	                   collection; the gating step runs without it)
//	-list              print the available analyzers and exit
//	-lock-order        print the discovered canonical lock acquisition
//	                   order and exit (no findings run)
//
// Exit codes: 0 no findings (or -exit-zero), 1 findings, 2 usage or
// load error. The exit code does not depend on -json: a findings run
// fails the same way whether a human or the CI artifact step is
// reading it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bitflow/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bitflow-vet", flag.ContinueOnError)
	var (
		dir       = fs.String("dir", ".", "module directory to analyze")
		enable    = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable   = fs.String("disable", "", "comma-separated analyzers to skip")
		jsonOut   = fs.Bool("json", false, "emit findings as JSON on stdout")
		findOnly  = fs.Bool("findings-only", false, "with -json, emit only the findings array")
		exitZero  = fs.Bool("exit-zero", false, "exit 0 even when there are findings")
		list      = fs.Bool("list", false, "print the available analyzers and exit")
		lockOrder = fs.Bool("lock-order", false, "print the discovered lock acquisition order and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bitflow-vet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bitflow-vet:", err)
		return 2
	}
	if *lockOrder {
		ordered, isolated := analysis.DiscoveredLockOrder(prog)
		if len(ordered) == 0 {
			fmt.Println("no nested lock acquisitions: any order is safe")
		} else {
			fmt.Println("canonical lock acquisition order (acquire earlier classes first):")
			for i, c := range ordered {
				fmt.Printf("  %d. %s\n", i+1, c)
			}
		}
		for _, c := range isolated {
			fmt.Printf("  isolated (never nested): %s\n", c)
		}
		return 0
	}
	findings := analysis.Run(prog, analyzers)

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var payload any = struct {
			Findings []analysis.Finding `json:"findings"`
			Files    int                `json:"files"`
		}{Findings: findings, Files: prog.NumFiles()}
		if *findOnly {
			payload = findings
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, "bitflow-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("bitflow-vet: %d findings, %d files checked\n", len(findings), prog.NumFiles())
	}

	if len(findings) > 0 && !*exitZero {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable / -disable to the full suite.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All() {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	on, err := names(enable)
	if err != nil {
		return nil, err
	}
	off, err := names(disable)
	if err != nil {
		return nil, err
	}
	skip := map[string]bool{}
	for _, n := range off {
		skip[n] = true
	}
	var selected []*analysis.Analyzer
	if len(on) == 0 {
		for _, a := range analysis.All() {
			if !skip[a.Name] {
				selected = append(selected, a)
			}
		}
	} else {
		for _, n := range on {
			if !skip[n] {
				selected = append(selected, byName[n])
			}
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}
