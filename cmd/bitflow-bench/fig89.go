package main

import (
	"fmt"
	"os"

	"bitflow/internal/bench"
	"bitflow/internal/paperdata"
	"bitflow/internal/sched"
)

// runFig8 regenerates paper Fig. 8: BitFlow acceleration over the
// single-thread float operator at 1 and 4 threads (the i7-7700HQ setup).
func runFig8(feat sched.Features) error {
	paper := map[string][]float64{}
	for _, r := range paperdata.Fig8 {
		paper[r.Op] = []float64{r.Thread1, r.Thread4}
	}
	return runScaling(feat, "Fig. 8: multi-core scaling, i7 setup (single-thread float = 1x)",
		[]int{1, 4}, paper)
}

// runFig9 regenerates paper Fig. 9: 1/4/16/64 threads (the Xeon Phi 7210
// setup).
func runFig9(feat sched.Features) error {
	paper := map[string][]float64{}
	for _, r := range paperdata.Fig9 {
		paper[r.Op] = []float64{r.Thread1, r.Thread4, r.Thread16, r.Thread64}
	}
	return runScaling(feat, "Fig. 9: multi-core scaling, Xeon Phi setup (single-thread float = 1x)",
		[]int{1, 4, 16, 64}, paper)
}

// runScaling measures BitFlow at each thread count and reports the
// acceleration over the single-thread float baseline. On hosts with
// fewer physical cores than a requested thread count the measured number
// cannot exhibit real parallel speedup, so a modeled column (load-balance
// + Amdahl + bandwidth model, internal/bench/scaling.go) is printed
// alongside and flagged.
func runScaling(feat sched.Features, title string, threads []int, paper map[string][]float64) error {
	fmt.Printf("== %s ==\n", title)
	cores := bench.PhysicalCores()
	header := []string{"op", "float(1t)"}
	for _, p := range threads {
		header = append(header, fmt.Sprintf("bnn %dt", p))
		header = append(header, fmt.Sprintf("accel %dt", p))
		header = append(header, fmt.Sprintf("model %dt", p))
		header = append(header, fmt.Sprintf("paper %dt", p))
	}
	t := bench.NewTable(header...)
	for _, cfg := range ops() {
		or, err := buildRunners(cfg, feat, *flagSeed)
		if err != nil {
			return err
		}
		tFloat := measure(or.float, 1)
		t1 := measure(or.bitflow, 1)
		serial, mem := scaleFracs(cfg)
		model := bench.ScalingModel{Units: or.units, SerialFrac: serial, MemBoundFrac: mem}
		row := []any{cfg.Name, bench.Ms(tFloat)}
		pvals := paper[paperName(cfg.Name)]
		for i, p := range threads {
			var tp = t1
			if p > 1 {
				tp = measure(or.bitflow, p)
			}
			accel := bench.Speedup(tFloat, tp)
			if !bench.HostCanMeasureThreads(p) {
				accel += "*"
			}
			modeled := bench.Ratio(tFloat, t1) * model.Speedup(p)
			paperS := "-"
			if pvals != nil && i < len(pvals) {
				paperS = fmt.Sprintf("%.0fx≈", pvals[i])
			}
			row = append(row, bench.Ms(tp), accel, fmt.Sprintf("%.0fx", modeled), paperS)
		}
		t.Row(row...)
	}
	t.Render(os.Stdout)
	if maxT := threads[len(threads)-1]; maxT > cores {
		fmt.Printf("\n  * this host has %d usable core(s): measured multi-thread accelerations cannot\n", cores)
		fmt.Println("    exceed the single-thread ones; the 'model Nt' column applies the documented")
		fmt.Println("    load-balance/Amdahl/bandwidth scaling model to the measured 1-thread time.")
	}
	fmt.Println()
	return nil
}
