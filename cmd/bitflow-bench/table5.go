package main

import (
	"fmt"
	"os"

	"bitflow/internal/ait"
	"bitflow/internal/bench"
	"bitflow/internal/graph"
	"bitflow/internal/nn"
	"bitflow/internal/paperdata"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

// runTable5 regenerates paper Table V in two halves:
//
//   - accuracy: identical architectures trained in full precision and
//     binarized on synthetic tasks of increasing difficulty (the paper's
//     MNIST/CIFAR-10/ImageNet are unavailable offline; the reproduced
//     claim is the small-but-widening gap);
//   - model size: exact bit-packed vs float32 storage of binarized VGG.
func runTable5(feat sched.Features) error {
	fmt.Println("== Table V (a): accuracy, full-precision vs binarized (synthetic stand-ins) ==")
	cfg := nn.DefaultTrainConfig()
	if *flagQuick {
		cfg.Epochs = 10
	}
	rows := nn.TableVExperiment(*flagSeed, cfg)
	t := bench.NewTable("task", "full-precision", "binarized", "gap (pp)")
	for _, r := range rows {
		t.Row(r.Task,
			fmt.Sprintf("%.1f%%", 100*r.FullPrecision),
			fmt.Sprintf("%.1f%%", 100*r.Binarized),
			fmt.Sprintf("%.1f", r.Gap()))
	}
	t.Render(os.Stdout)
	fmt.Println("\n  paper (VGG on real datasets):")
	pt := bench.NewTable("dataset", "full-precision", "binarized", "gap (pp)")
	for _, r := range paperdata.TableV {
		pt.Row(r.Dataset,
			fmt.Sprintf("%.1f%%", r.FullPrecision),
			fmt.Sprintf("%.1f%%", r.Binarized),
			fmt.Sprintf("%.1f", r.FullPrecision-r.Binarized))
	}
	pt.Render(os.Stdout)

	fmt.Println("\n== Table V (b): model size ==")
	var ms graph.ModelSize
	label := "VGG16"
	if *flagQuick {
		net, err := graph.TinyVGG(feat, graph.RandomWeights{Seed: *flagSeed})
		if err != nil {
			return err
		}
		ms = net.ModelSize()
		label = "TinyVGG (quick mode)"
	} else {
		net, err := graph.VGG16(feat, graph.RandomWeights{Seed: *flagSeed})
		if err != nil {
			return err
		}
		ms = net.ModelSize()
	}
	st := bench.NewTable("network", "weights", "float32", "binarized", "compression")
	st.Row(label, ms.Weights,
		fmt.Sprintf("%.1f MB", float64(ms.FullPrecisionBytes)/(1<<20)),
		fmt.Sprintf("%.1f MB", float64(ms.BinarizedBytes)/(1<<20)),
		fmt.Sprintf("%.1fx", ms.Compression()))
	st.Render(os.Stdout)
	fmt.Printf("\n  paper: %.0f MB full precision vs %.1f MB binarized (32x).\n\n",
		paperdata.TableVFullPrecisionMB, paperdata.TableVBinarizedMB)
	return nil
}

// runAIT regenerates the §III-A arithmetic-intensity analysis for the
// Table IV convolution shapes (Equations 4–8).
func runAIT(feat sched.Features) error {
	fmt.Println("== §III-A: arithmetic intensity of image-to-column vs intrinsic convolution ==")
	t := bench.NewTable("op", "intrinsic AIT", "im2col AIT", "fraction",
		"binary intrinsic", "binary im2col", "unfold blow-up")
	for _, cfg := range ops() {
		if cfg.Kind != workload.OpConv {
			continue
		}
		c := ait.Conv{H: cfg.H, W: cfg.W, C: cfg.C, K: cfg.K, KH: cfg.KH, KW: cfg.KW}
		b := ait.Binary{Conv: c, Factor: 64}
		t.Row(cfg.Name,
			fmt.Sprintf("%.1f", c.IntrinsicAIT()),
			fmt.Sprintf("%.1f", c.Im2colAIT()),
			fmt.Sprintf("%.3f", c.Im2colFraction()),
			fmt.Sprintf("%.2f", b.IntrinsicAIT()),
			fmt.Sprintf("%.2f", b.Im2colAIT()),
			fmt.Sprintf("%.1fx", c.UnfoldedSize()/c.InputSize()))
	}
	t.Render(os.Stdout)
	fmt.Println("\n  binary im2col AIT sits far below the float one: bit-packing shrinks the op")
	fmt.Println("  count 64x while the unfolded traffic does not shrink as much — the paper's")
	fmt.Println("  motivation for abandoning image-to-column in favor of PressedConv.")
	fmt.Println()
	_ = feat
	return nil
}
