package main

import (
	"fmt"
	"os"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

// runSweep is an extension experiment beyond the paper's figures: a
// channel-count sweep of one convolution geometry across every kernel
// tier, showing (a) where each tier becomes profitable, validating the
// scheduler's §III-B selection rules empirically, and (b) what the
// SelectPadded alternative (pad packed vectors up to the widest tier
// instead of falling back to scalar) costs or gains.
func runSweep(feat sched.Features) error {
	fmt.Println("== extension: kernel-tier sweep across channel counts (28x28 conv, K=64, 3x3) ==")
	channels := []int{32, 64, 96, 128, 192, 256, 384, 512, 768, 1024}
	if *flagQuick {
		channels = []int{64, 128, 256, 512}
	}
	t := bench.NewTable("C", "rule tier", "scalar64", "sse128", "avx256", "avx512", "rule pick", "padded pick")
	for _, c := range channels {
		times := map[kernels.Width]time.Duration{}
		cells := map[kernels.Width]string{}
		for _, w := range []kernels.Width{kernels.W64, kernels.W128, kernels.W256, kernels.W512} {
			if w != kernels.W64 && c%w.Bits() != 0 {
				cells[w] = "-" // tier inapplicable without padding
				continue
			}
			plan := sched.Select(c, feat.WithMaxWidth(w))
			d, err := measureConvPlan(c, plan)
			if err != nil {
				return err
			}
			times[w] = d
			cells[w] = bench.Ms(d)
		}
		rulePlan := sched.Select(c, feat)
		padPlan := sched.SelectPadded(c, feat)
		padTime, err := measureConvPlan(c, padPlan)
		if err != nil {
			return err
		}
		t.Row(c, rulePlan.Width,
			cells[kernels.W64], cells[kernels.W128], cells[kernels.W256], cells[kernels.W512],
			bench.Ms(times[rulePlan.Width]), bench.Ms(padTime))
	}
	t.Render(os.Stdout)
	fmt.Println("\n  'rule pick' is the paper's §III-B selection; 'padded pick' always pads up to")
	fmt.Println("  the widest tier (sched.SelectPadded), trading wasted XOR lanes for wider steps.")
	fmt.Println()
	return nil
}

// measureConvPlan times one ForwardPacked pass of a 28×28×C K=64 conv
// under the given plan.
func measureConvPlan(c int, plan sched.Plan) (time.Duration, error) {
	r := workload.NewRNG(*flagSeed ^ uint64(c))
	shape, err := sched.InferConv(28, 28, c, 64, 3, 3, 1, 1)
	if err != nil {
		return 0, err
	}
	cv, err := core.NewConv(shape, plan, workload.PM1Filter(r, 64, 3, 3, c))
	if err != nil {
		return 0, err
	}
	in := cv.NewInput()
	bitpack.PackTensorInto(workload.PM1Tensor(r, 28, 28, c), in)
	out := bitpack.NewPacked(shape.OutH, shape.OutW, 64, 1, 0, 0)
	return measure(func(threads int) { cv.ForwardPacked(in, out, exec.Threads(threads)) }, 1), nil
}
