// The `ops` subcommand's third report benchmarks kernel compression
// (Silfa & Arnau): at model load the packed filter banks are analyzed for
// repeated 64-bit words, and layers whose duplication ratio clears
// kernels.CompressMinRatio run a compressed forward that computes each
// distinct word's XOR+popcount once and scatter-adds the partial sums to
// every duplicate channel. This file times both plans on identical
// inputs, emitting BENCH_compress.json:
//
//   - a high-duplication network (4 base filter patterns per conv bank,
//     the weight regularity trained BNNs exhibit) where the pass selects
//     the compressed path: per-layer and end-to-end compressed vs
//     uncompressed wall clock;
//   - a low-duplication network (random banks, ratio ≈ 1) where the
//     threshold declines every layer — the fallback row pins that no
//     layer runs compressed, so low-duplication models cannot regress.
//
// Logits are checked bit-identical between the two plans before any
// timing is reported, so a speedup can never come from a divergent
// computation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/graph"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

var flagCompressOut = flag.String("compress-out", "BENCH_compress.json", "output path for the `ops` subcommand's kernel-compression report")

type compressLayerRow struct {
	Network string `json:"network"`
	Layer   string `json:"layer"`
	Kind    string `json:"kind"`
	// The duplication analysis the planner acted on.
	Channels      int     `json:"channels"`
	Positions     int     `json:"positions"`
	TotalWords    int     `json:"total_words"`
	DistinctWords int     `json:"distinct_words"`
	Ratio         float64 `json:"ratio"`
	Selected      bool    `json:"selected"`
	// Node wall clock under each plan (median of -runs); zero when the
	// layer was not selected (both plans run the same kernels).
	UncompressedMs float64 `json:"uncompressed_ms,omitempty"`
	CompressedMs   float64 `json:"compressed_ms,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
}

type compressNetRow struct {
	Network          string  `json:"network"`
	CompressedLayers int     `json:"compressed_layers"`
	OutputsIdentical bool    `json:"outputs_identical"`
	CompressedIPS    float64 `json:"compressed_images_per_sec"`
	UncompressedIPS  float64 `json:"uncompressed_images_per_sec"`
	Speedup          float64 `json:"speedup"`
	// Fallback is true when the threshold declined every layer: the
	// "compressed" plan is then byte-for-byte the uncompressed one.
	Fallback bool `json:"fallback"`
}

type compressReport struct {
	Features  string             `json:"features"`
	Cores     int                `json:"cores"`
	Threshold float64            `json:"threshold_ratio"`
	Layers    []compressLayerRow `json:"layers"`
	Networks  []compressNetRow   `json:"networks"`
}

// compressDupWeights repeats one of four base filter patterns per output
// channel of every conv bank — the duplication profile that makes the
// load-time pass select the compressed path.
type compressDupWeights struct {
	graph.RandomWeights
}

func (d compressDupWeights) ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error) {
	f, err := d.RandomWeights.ConvFilter(name, k, kh, kw, c)
	if err == nil {
		per := kh * kw * c
		for i := 4; i < k; i++ {
			copy(f.Data[i*per:(i+1)*per], f.Data[(i%4)*per:(i%4+1)*per])
		}
	}
	return f, err
}

// compressBenchNet is a conv-heavy net sized so the conv banks dominate
// the pass: wide binary input, two 3×3 convs (the first fusing with its
// pool), and a small classifier head.
func compressBenchNet(feat sched.Features, ws graph.WeightSource, channels int) (*graph.Network, error) {
	return graph.NewBuilder("CompressBench", 16, 16, channels, feat).
		Conv3x3("c1", channels).
		Pool("p1", 2, 2, 2).
		Conv3x3("c2", channels).
		Pool("p2", 2, 2, 2).
		Dense("fc", 10).
		Build(ws)
}

func runCompressBench(feat sched.Features) error {
	channels := 256
	if *flagQuick {
		channels = 128
	}
	cases := []struct {
		name string
		ws   graph.WeightSource
	}{
		{"HighDup", compressDupWeights{RandomWeights: graph.RandomWeights{Seed: *flagSeed}}},
		{"LowDup", graph.RandomWeights{Seed: *flagSeed}},
	}

	rep := compressReport{
		Features:  fmt.Sprint(feat),
		Cores:     bench.PhysicalCores(),
		Threshold: kernels.CompressMinRatio,
	}
	threads := bench.PhysicalCores()

	for _, c := range cases {
		pressed, err := compressBenchNet(feat, c.ws, channels)
		if err != nil {
			return err
		}
		pressed.Threads = threads
		plain := pressed.CloneUncompressed()
		plain.Threads = threads

		x := workload.RandTensor(workload.NewRNG(*flagSeed+13), pressed.InH, pressed.InW, pressed.InC)
		if err := checkPlansAgree(pressed, plain, x); err != nil {
			return fmt.Errorf("%s: compressed vs uncompressed: %w", c.name, err)
		}

		fmt.Printf("== %s: compressed vs uncompressed per layer (threshold ratio ≥ %.1f) ==\n",
			c.name, kernels.CompressMinRatio)
		_, pressedT := medianTimings(pressed, x)
		_, plainT := medianTimings(plain, x)
		t := bench.NewTable("layer", "ratio", "selected", "uncompressed", "compressed", "speedup")
		for _, lc := range pressed.Compression() {
			row := compressLayerRow{
				Network: c.name, Layer: lc.Layer, Kind: lc.Kind,
				Channels: lc.Channels, Positions: lc.Positions,
				TotalWords: lc.TotalWords, DistinctWords: lc.DistinctWords,
				Ratio: round2(lc.Ratio), Selected: lc.Selected,
			}
			sel := "no"
			speedup := "-"
			if lc.Selected {
				sel = "yes"
				row.CompressedMs = round2(float64(pressedT[lc.Layer]) / float64(time.Millisecond))
				row.UncompressedMs = round2(float64(plainT[lc.Layer]) / float64(time.Millisecond))
				if pressedT[lc.Layer] > 0 {
					row.Speedup = round2(float64(plainT[lc.Layer]) / float64(pressedT[lc.Layer]))
				}
				speedup = fmt.Sprintf("%.2fx", row.Speedup)
			}
			rep.Layers = append(rep.Layers, row)
			t.Row(lc.Layer, fmt.Sprintf("%.2f", lc.Ratio), sel,
				bench.Ms(plainT[lc.Layer]), bench.Ms(pressedT[lc.Layer]), speedup)
		}
		t.Render(os.Stdout)

		pd := measureInfer(pressed, x)
		ud := measureInfer(plain, x)
		nr := compressNetRow{
			Network:          c.name,
			CompressedLayers: pressed.CompressedLayers(),
			OutputsIdentical: true, // checkPlansAgree already gated the run
			CompressedIPS:    round2(float64(time.Second) / float64(pd)),
			UncompressedIPS:  round2(float64(time.Second) / float64(ud)),
			Speedup:          round2(float64(ud) / float64(pd)),
			Fallback:         pressed.CompressedLayers() == 0,
		}
		rep.Networks = append(rep.Networks, nr)
		if nr.Fallback {
			fmt.Printf("end-to-end: every layer below threshold — compressed plan falls back to the streaming kernels (%.2f img/s)\n\n",
				nr.CompressedIPS)
		} else {
			fmt.Printf("end-to-end: compressed %.2f img/s, uncompressed %.2f img/s (%.2fx), %d layer(s) compressed\n\n",
				nr.CompressedIPS, nr.UncompressedIPS, nr.Speedup, nr.CompressedLayers)
		}
	}

	f, err := os.Create(*flagCompressOut)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *flagCompressOut)
	return nil
}
