// The `exec` subcommand benchmarks the execution-context layer
// (internal/exec) and emits BENCH_exec.json:
//
//  1. small_ops — spawn-per-call vs pooled dispatch on the scaled-down
//     Table IV operators, where per-call goroutine churn is largest
//     relative to the work: the overhead the persistent pool removes.
//  2. vgg16_e2e — one full network forward pass under both dispatch
//     modes, checking the pool does not tax the large-op regime.
//  3. closed_loop — a replica-pool serving loop before (every replica
//     spawns its own goroutines per layer) and after (all replicas share
//     one pool) the refactor, at the same client count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

var (
	flagExecOut = flag.String("exec-out", "BENCH_exec.json", "output path for the `exec` subcommand report")
	flagExecDur = flag.Duration("exec-dur", 2*time.Second, "measurement duration per closed-loop configuration")
)

type execOpRow struct {
	Op            string  `json:"op"`
	Threads       int     `json:"threads"`
	SpawnMs       float64 `json:"spawn_ms"`
	PooledMs      float64 `json:"pooled_ms"`
	PooledSpeedup float64 `json:"pooled_speedup"`
}

type execLoopRow struct {
	Dispatch     string  `json:"dispatch"` // "spawn-per-call" or "shared-pool"
	Clients      int     `json:"clients"`
	Replicas     int     `json:"replicas"`
	Threads      int     `json:"threads"`
	ImagesPerSec float64 `json:"images_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// Speedup compares against the spawn row at the same client count
	// (shared-pool rows only).
	Speedup float64 `json:"speedup,omitempty"`
}

type execReport struct {
	Features   string        `json:"features"`
	Cores      int           `json:"cores"`
	Threads    int           `json:"threads"`
	SmallOps   []execOpRow   `json:"small_ops"`
	VGG16E2E   *execOpRow    `json:"vgg16_e2e,omitempty"`
	ClosedLoop []execLoopRow `json:"closed_loop"`
}

func runExecBench(feat sched.Features) error {
	const threads = 4
	pool := exec.NewPool(threads)
	pool.SetSource("bench")
	defer pool.Close()
	spawnEC := exec.Spawn(threads)
	pooledEC := exec.Pooled(pool, threads)

	rep := execReport{
		Features: fmt.Sprint(feat),
		Cores:    bench.PhysicalCores(),
		Threads:  threads,
	}

	// --- Section 1: dispatch overhead on the small Table IV ops ------
	fmt.Printf("== exec dispatch: spawn-per-call vs persistent pool (%d threads) ==\n", threads)
	to := bench.NewTable("op", "spawn", "pooled", "pooled speedup")
	for _, cfg := range workload.SmallOps() {
		switch cfg.Name {
		case "conv2.1s", "pool4s", "pool5s", "fc7s":
		default:
			continue
		}
		run, err := buildExecRunner(cfg, feat, *flagSeed)
		if err != nil {
			return err
		}
		spawn := measureEC(run, spawnEC)
		pooled := measureEC(run, pooledEC)
		row := execOpRow{
			Op: cfg.Name, Threads: threads,
			SpawnMs:       ms(spawn),
			PooledMs:      ms(pooled),
			PooledSpeedup: round2(float64(spawn) / float64(pooled)),
		}
		rep.SmallOps = append(rep.SmallOps, row)
		to.Row(cfg.Name, bench.Ms(spawn), bench.Ms(pooled), fmt.Sprintf("%.2fx", row.PooledSpeedup))
	}
	to.Render(os.Stdout)
	fmt.Println()

	// --- Section 2: full-network forward pass ------------------------
	// Large ops amortize dispatch; the pool must at least hold serve.
	netName := "VGG16"
	buildNet := func() (*graph.Network, error) {
		return graph.VGG16(feat, graph.RandomWeights{Seed: *flagSeed})
	}
	if *flagQuick {
		netName = "TinyVGG"
		buildNet = func() (*graph.Network, error) {
			return graph.TinyVGG(feat, graph.RandomWeights{Seed: *flagSeed})
		}
	}
	net, err := buildNet()
	if err != nil {
		return err
	}
	x := workload.RandTensor(workload.NewRNG(*flagSeed+1), net.InH, net.InW, net.InC)
	net.Infer(x) // warm-up: allocate outputs, fault weights in
	e2eRuns := *flagRuns
	if e2eRuns > 3 && !*flagQuick {
		e2eRuns = 3
	}
	net.SetExec(spawnEC)
	net.Infer(x) // per-mode warm-up, then collect build garbage
	runtime.GC()
	spawnE2E := bench.Measure(e2eRuns, 0, func() { net.Infer(x) })
	net.SetExec(pooledEC)
	net.Infer(x)
	runtime.GC()
	pooledE2E := bench.Measure(e2eRuns, 0, func() { net.Infer(x) })
	e2e := execOpRow{
		Op: netName + " e2e", Threads: threads,
		SpawnMs:       ms(spawnE2E),
		PooledMs:      ms(pooledE2E),
		PooledSpeedup: round2(float64(spawnE2E) / float64(pooledE2E)),
	}
	rep.VGG16E2E = &e2e
	fmt.Printf("== %s end-to-end: spawn %s, pooled %s (%.2fx) ==\n\n",
		netName, bench.Ms(spawnE2E), bench.Ms(pooledE2E), e2e.PooledSpeedup)

	// --- Section 3: closed-loop serving before/after -----------------
	const replicas = 2
	clients := 2 * replicas
	dur := *flagExecDur
	if *flagQuick {
		dur = 500 * time.Millisecond
	}
	buildTiny := func() (*graph.Network, error) {
		return graph.TinyVGG(feat, graph.RandomWeights{Seed: *flagSeed})
	}
	tiny, err := buildTiny()
	if err != nil {
		return err
	}
	tinyX := workload.RandTensor(workload.NewRNG(*flagSeed+2), tiny.InH, tiny.InW, tiny.InC)
	fmt.Printf("== closed-loop serving (TinyVGG): %d replicas × %d threads, %d clients, %s per config ==\n",
		replicas, threads, clients, dur)
	tl := bench.NewTable("dispatch", "clients", "images/s", "p50", "p99", "speedup")

	// Before: each replica spawns goroutines per layer (the old plumbing).
	spawnRate, sp50, sp99, err := runExecLoop(buildTiny, replicas, clients, tinyX, dur, func(int) *exec.Ctx {
		return spawnEC
	})
	if err != nil {
		return err
	}
	rep.ClosedLoop = append(rep.ClosedLoop, execLoopRow{
		Dispatch: "spawn-per-call", Clients: clients, Replicas: replicas, Threads: threads,
		ImagesPerSec: round2(spawnRate), P50Ms: round2(sp50), P99Ms: round2(sp99),
	})
	tl.Row("spawn-per-call", clients, round2(spawnRate), bench.Ms(msDur(sp50)), bench.Ms(msDur(sp99)), "-")

	// After: every replica dispatches onto the one shared pool.
	poolRate, pp50, pp99, err := runExecLoop(buildTiny, replicas, clients, tinyX, dur, func(int) *exec.Ctx {
		return pooledEC
	})
	if err != nil {
		return err
	}
	row := execLoopRow{
		Dispatch: "shared-pool", Clients: clients, Replicas: replicas, Threads: threads,
		ImagesPerSec: round2(poolRate), P50Ms: round2(pp50), P99Ms: round2(pp99),
		Speedup: round2(poolRate / spawnRate),
	}
	rep.ClosedLoop = append(rep.ClosedLoop, row)
	tl.Row("shared-pool", clients, row.ImagesPerSec, bench.Ms(msDur(pp50)), bench.Ms(msDur(pp99)),
		fmt.Sprintf("%.2fx", row.Speedup))
	tl.Render(os.Stdout)

	f, err := os.Create(*flagExecOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", *flagExecOut)
	return nil
}

// buildExecRunner materializes one BitFlow operator as a closure over an
// execution context — the dispatch-mode-agnostic form of opRunners.
func buildExecRunner(cfg workload.OpConfig, feat sched.Features, seed uint64) (func(*exec.Ctx), error) {
	r := workload.NewRNG(seed)
	switch cfg.Kind {
	case workload.OpConv:
		shape, err := sched.InferConv(cfg.H, cfg.W, cfg.C, cfg.K, cfg.KH, cfg.KW, cfg.Stride, cfg.Pad)
		if err != nil {
			return nil, err
		}
		plan := sched.Select(cfg.C, feat)
		cv, err := core.NewConv(shape, plan, workload.PM1Filter(r, cfg.K, cfg.KH, cfg.KW, cfg.C))
		if err != nil {
			return nil, err
		}
		packed := cv.NewInput()
		bitpack.PackTensorInto(workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C), packed)
		out := bitpack.NewPacked(shape.OutH, shape.OutW, cfg.K, sched.Select(cfg.K, feat).Words, 0, 0)
		return func(ec *exec.Ctx) { cv.ForwardPacked(packed, out, ec) }, nil

	case workload.OpFC:
		shape, err := sched.InferFC(cfg.N, cfg.K)
		if err != nil {
			return nil, err
		}
		plan := sched.Select(cfg.N, feat)
		d, err := core.NewDense(shape, plan, workload.PM1Matrix(r, cfg.N, cfg.K))
		if err != nil {
			return nil, err
		}
		packedIn := d.NewInput()
		inVals := make([]float32, cfg.N)
		for i := range inVals {
			inVals[i] = r.PM1()
		}
		bitpack.PackVectorInto(packedIn, inVals)
		out := make([]int32, cfg.K)
		return func(ec *exec.Ctx) { d.Forward(packedIn, out, ec) }, nil

	case workload.OpPool:
		shape, err := sched.InferPool(cfg.H, cfg.W, cfg.C, cfg.KH, cfg.KW, cfg.Stride)
		if err != nil {
			return nil, err
		}
		plan := sched.Select(cfg.C, feat)
		pl, err := core.NewPool(shape, plan.Words)
		if err != nil {
			return nil, err
		}
		packed := bitpack.PackTensor(workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C), plan.Words, 0, 0)
		out := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, plan.Words, 0, 0)
		return func(ec *exec.Ctx) { pl.Forward(packed, out, ec) }, nil
	}
	return nil, fmt.Errorf("unknown op kind %v", cfg.Kind)
}

// measureEC is measure() for context-taking runners.
func measureEC(run func(*exec.Ctx), ec *exec.Ctx) time.Duration {
	return bench.Measure(*flagRuns, 50*time.Millisecond, func() { run(ec) })
}

// runExecLoop drives a closed loop against a pool of replicas whose
// dispatch mode is chosen by ecFor (index → context).
func runExecLoop(build func() (*graph.Network, error), replicas, clients int, x *tensor.Tensor, dur time.Duration, ecFor func(int) *exec.Ctx) (rate, p50, p99 float64, err error) {
	first, err := build()
	if err != nil {
		return 0, 0, 0, err
	}
	pool := make(chan *graph.Network, replicas)
	first.SetExec(ecFor(0))
	pool <- first
	for i := 1; i < replicas; i++ {
		c := first.Clone()
		c.SetExec(ecFor(i))
		pool <- c
	}
	return closedLoop(clients, dur, func(in *tensor.Tensor) error {
		n := <-pool
		_, ierr := n.InferChecked(in)
		pool <- n
		return ierr
	}, []*tensor.Tensor{x})
}

func ms(d time.Duration) float64 { return round2(float64(d) / float64(time.Millisecond)) }
