// Command bitflow-bench regenerates every table and figure of the
// paper's evaluation section (see DESIGN.md §4 for the index):
//
//	bitflow-bench fig7    # single-core vectorization speedups
//	bitflow-bench fig8    # multi-core scaling, 1/4 threads (i7 setup)
//	bitflow-bench fig9    # multi-core scaling, 1/4/16/64 threads (Phi setup)
//	bitflow-bench fig10   # per-operator wall clock vs simulated GTX 1080
//	bitflow-bench fig11   # VGG-16/19 end-to-end vs simulated GTX 1080
//	bitflow-bench table5  # accuracy (synthetic tasks) + model size
//	bitflow-bench ait     # arithmetic-intensity analysis (§III-A)
//	bitflow-bench sweep   # extension: kernel-tier sweep over channel counts
//	bitflow-bench batch   # extension: micro-batching throughput → BENCH_batch.json
//	bitflow-bench exec    # extension: spawn-per-call vs pooled dispatch → BENCH_exec.json
//	bitflow-bench ops     # extension: fused vs unfused conv+pool data-flow → BENCH_fusion.json,
//	                      # before/after BCE kernel microbenches → BENCH_bce.json,
//	                      # plus kernel compression (dedup of repeated packed
//	                      # filter words) → BENCH_compress.json
//	bitflow-bench all     # everything above
//
// Flags:
//
//	-quick      use scaled-down operator shapes (fast smoke run)
//	-runs N     median-of-N timing (default 5)
//	-seed S     workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

var (
	flagQuick = flag.Bool("quick", false, "use scaled-down shapes for a fast smoke run")
	flagRuns  = flag.Int("runs", 5, "timing samples per measurement (median reported)")
	flagSeed  = flag.Uint64("seed", 2018, "workload seed")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bitflow-bench [flags] {fig7|fig8|fig9|fig10|fig11|table5|ait|sweep|batch|exec|ops|autoscale|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	feat := sched.Detect()
	fmt.Printf("bitflow-bench: %s, %d usable cores, quick=%v\n\n", feat, bench.PhysicalCores(), *flagQuick)

	run := func(name string, f func(sched.Features) error) {
		if err := f(feat); err != nil {
			fmt.Fprintf(os.Stderr, "bitflow-bench %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	switch flag.Arg(0) {
	case "fig7":
		run("fig7", runFig7)
	case "fig8":
		run("fig8", runFig8)
	case "fig9":
		run("fig9", runFig9)
	case "fig10":
		run("fig10", runFig10)
	case "fig11":
		run("fig11", runFig11)
	case "table5":
		run("table5", runTable5)
	case "ait":
		run("ait", runAIT)
	case "sweep":
		run("sweep", runSweep)
	case "batch":
		run("batch", runBatchBench)
	case "exec":
		run("exec", runExecBench)
	case "ops":
		run("ops", runOpsBench)
	case "autoscale":
		run("autoscale", runAutoscaleBench)
	case "all":
		for _, sub := range []struct {
			name string
			f    func(sched.Features) error
		}{
			{"ait", runAIT}, {"fig7", runFig7}, {"fig8", runFig8}, {"fig9", runFig9},
			{"fig10", runFig10}, {"fig11", runFig11}, {"table5", runTable5},
			{"sweep", runSweep}, {"batch", runBatchBench}, {"exec", runExecBench},
			{"ops", runOpsBench},
		} {
			run(sub.name, sub.f)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// ops returns the benchmark operator set honoring -quick.
func ops() []workload.OpConfig {
	if *flagQuick {
		return workload.SmallOps()
	}
	return workload.PaperOps()
}

// measure returns the median duration of f(threads) over -runs samples.
// A forced collection first keeps garbage from previously measured
// operators (im2col unfolds, float weight matrices) from inflating the
// samples of small ones.
func measure(f func(int), threads int) time.Duration {
	runtime.GC()
	return bench.Measure(*flagRuns, 50*time.Millisecond, func() { f(threads) })
}
