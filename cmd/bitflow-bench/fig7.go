package main

import (
	"fmt"
	"os"

	"bitflow/internal/bench"
	"bitflow/internal/paperdata"
	"bitflow/internal/sched"
)

// runFig7 regenerates paper Fig. 7: single-core acceleration of the
// unoptimized binary kernel and of BitFlow over the counterpart float
// operator, for each Table IV benchmark.
func runFig7(feat sched.Features) error {
	fmt.Println("== Fig. 7: single-core vectorization speedup (float operator = 1x) ==")
	t := bench.NewTable("op", "kernel", "float", "unopt-binary", "bitflow",
		"unopt accel", "bitflow accel", "vector gain", "paper(unopt)", "paper(bitflow)")
	paper := map[string]paperdata.Fig7Row{}
	for _, row := range paperdata.Fig7 {
		paper[row.Op] = row
	}
	var gainSum, gainN float64
	for _, cfg := range ops() {
		or, err := buildRunners(cfg, feat, *flagSeed)
		if err != nil {
			return err
		}
		tFloat := measure(or.float, 1)
		tUnopt := measure(or.unopt, 1)
		tBitflow := measure(or.bitflow, 1)
		gain := bench.Ratio(tUnopt, tBitflow)
		gainSum += gain
		gainN++
		p, ok := paper[paperName(cfg.Name)]
		paperUnopt, paperOpt := "-", "-"
		if ok {
			paperUnopt = fmt.Sprintf("%.0fx%s", p.Unoptimized, approxMark(p.Approx))
			paperOpt = fmt.Sprintf("%.0fx%s", p.BitFlow, approxMark(p.Approx))
		}
		t.Row(cfg.Name, or.plan.Width,
			bench.Ms(tFloat), bench.Ms(tUnopt), bench.Ms(tBitflow),
			bench.Speedup(tFloat, tUnopt), bench.Speedup(tFloat, tBitflow),
			fmt.Sprintf("%.2fx", gain),
			paperUnopt, paperOpt)
	}
	t.Render(os.Stdout)
	fmt.Printf("\n  mean vectorization gain over unoptimized binary: %.2fx (paper: %.2fx / \"83%% speedup\")\n",
		gainSum/gainN, paperdata.Fig7AvgVectorSpeedup)
	fmt.Println("  (≈ marks paper values read from chart bars rather than prose)")
	fmt.Println()
	return nil
}

// paperName maps -quick's scaled names (conv2.1s) onto the paper rows.
func paperName(name string) string {
	if n := len(name); n > 0 && name[n-1] == 's' {
		return name[:n-1]
	}
	return name
}

func approxMark(approx bool) string {
	if approx {
		return "≈"
	}
	return ""
}
