// The `ops` subcommand benchmarks the fused binarization data-flow
// (conv → threshold → binarize → pool as one packed-bit epilogue) and
// emits BENCH_fusion.json:
//
//  1. Per-layer fused-vs-unfused comparison: for every fused conv+pool
//     node, the wall-clock of the fused node vs its conv-then-pool
//     split, plus the bytes of intermediate packed-plane traffic the
//     fusion eliminated (written once by the conv, read once by the
//     pool — 2× the plane size per pass).
//  2. End-to-end img/s of the fused vs unfused network plan.
//
// Quick mode runs TinyVGG and a pool-heavy small net; the full run adds
// VGG-16. Logits are checked bit-identical between the two plans before
// any timing is reported, so the numbers can never come from divergent
// computations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

var flagFusionOut = flag.String("fusion-out", "BENCH_fusion.json", "output path for the `ops` subcommand report")

type fusionLayerRow struct {
	Network string `json:"network"`
	Layer   string `json:"layer"` // fused node name, e.g. "conv5.3+pool5"
	// Times are per forward pass of just this node (median of -runs).
	FusedMs   float64 `json:"fused_ms"`
	UnfusedMs float64 `json:"unfused_ms"` // conv + pool, separate nodes
	Speedup   float64 `json:"speedup"`
	// EliminatedBytes is the intermediate packed plane the fused node
	// never materializes; EliminatedTrafficBytes counts both the write
	// and the re-read the unfused plan performs per pass.
	EliminatedBytes        int64 `json:"eliminated_plane_bytes"`
	EliminatedTrafficBytes int64 `json:"eliminated_traffic_bytes"`
}

type fusionNetRow struct {
	Network      string  `json:"network"`
	FusedPairs   int     `json:"fused_pairs"`
	FusedIPS     float64 `json:"fused_images_per_sec"`
	UnfusedIPS   float64 `json:"unfused_images_per_sec"`
	Speedup      float64 `json:"speedup"`
	ActBytes     int64   `json:"activation_bytes_fused"`
	ActBytesUnf  int64   `json:"activation_bytes_unfused"`
	BytesSavedPc float64 `json:"activation_bytes_saved_pct"`
}

type fusionReport struct {
	Features string           `json:"features"`
	Cores    int              `json:"cores"`
	Layers   []fusionLayerRow `json:"layers"`
	Networks []fusionNetRow   `json:"networks"`
}

// poolNet is a deliberately pool-heavy small network: every conv feeds a
// fusable 2×2/2 pool, the best case for the fused epilogue.
func poolNet(feat sched.Features, seed uint64) (*graph.Network, error) {
	return graph.NewBuilder("PoolNet", 32, 32, 3, feat).
		FloatConv("stem", 64, 3, 3, 1, 1).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Conv3x3("c2", 128).
		Pool("p2", 2, 2, 2).
		Conv3x3("c3", 128).
		Pool("p3", 2, 2, 2).
		Dense("fc", 10).
		Build(graph.RandomWeights{Seed: seed})
}

func runFusionBench(feat sched.Features) error {
	type netCase struct {
		name  string
		build func() (*graph.Network, error)
	}
	cases := []netCase{
		{"TinyVGG", func() (*graph.Network, error) { return graph.TinyVGG(feat, graph.RandomWeights{Seed: *flagSeed}) }},
		{"PoolNet", func() (*graph.Network, error) { return poolNet(feat, *flagSeed) }},
	}
	if !*flagQuick {
		cases = append(cases, netCase{"VGG16", func() (*graph.Network, error) {
			return graph.VGG16(feat, graph.RandomWeights{Seed: *flagSeed})
		}})
	}

	rep := fusionReport{Features: fmt.Sprint(feat), Cores: bench.PhysicalCores()}
	threads := bench.PhysicalCores()

	for _, c := range cases {
		fused, err := c.build()
		if err != nil {
			return err
		}
		fused.Threads = threads
		unfused := fused.CloneUnfused()
		unfused.Threads = threads

		x := workload.RandTensor(workload.NewRNG(*flagSeed+7), fused.InH, fused.InW, fused.InC)
		if err := checkPlansAgree(fused, unfused, x); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}

		// Per-layer comparison: time each fused node and its unfused
		// conv/pool counterparts from the per-layer timing sweep.
		fusedOrder, fusedT := medianTimings(fused, x)
		_, unfusedT := medianTimings(unfused, x)
		fmt.Printf("== %s: fused vs unfused per layer ==\n", c.name)
		t := bench.NewTable("layer", "fused", "unfused (conv+pool)", "speedup", "plane traffic cut")
		for _, lt := range fusedOrder {
			if lt.Kind != "conv+pool" {
				continue
			}
			convName, poolName, ok := splitFusedName(lt.Name)
			if !ok {
				continue
			}
			split := unfusedT[convName] + unfusedT[poolName]
			planeBytes := eliminatedPlaneBytes(unfused, poolName)
			row := fusionLayerRow{
				Network:                c.name,
				Layer:                  lt.Name,
				FusedMs:                round2(float64(fusedT[lt.Name]) / float64(time.Millisecond)),
				UnfusedMs:              round2(float64(split) / float64(time.Millisecond)),
				Speedup:                round2(float64(split) / float64(fusedT[lt.Name])),
				EliminatedBytes:        planeBytes,
				EliminatedTrafficBytes: 2 * planeBytes,
			}
			rep.Layers = append(rep.Layers, row)
			t.Row(lt.Name, bench.Ms(time.Duration(row.FusedMs*float64(time.Millisecond))),
				bench.Ms(split), fmt.Sprintf("%.2fx", row.Speedup),
				fmt.Sprintf("%d B", row.EliminatedTrafficBytes))
		}
		t.Render(os.Stdout)

		// End-to-end throughput under both plans.
		fd := measureInfer(fused, x)
		ud := measureInfer(unfused, x)
		nr := fusionNetRow{
			Network:     c.name,
			FusedPairs:  fused.Fusion().Pairs,
			FusedIPS:    round2(float64(time.Second) / float64(fd)),
			UnfusedIPS:  round2(float64(time.Second) / float64(ud)),
			Speedup:     round2(float64(ud) / float64(fd)),
			ActBytes:    fused.ActivationBytes(),
			ActBytesUnf: unfused.ActivationBytes(),
		}
		if nr.ActBytesUnf > 0 {
			nr.BytesSavedPc = round2(100 * float64(nr.ActBytesUnf-nr.ActBytes) / float64(nr.ActBytesUnf))
		}
		rep.Networks = append(rep.Networks, nr)
		fmt.Printf("end-to-end: fused %.2f img/s, unfused %.2f img/s (%.2fx), activation memory %d → %d bytes (−%.1f%%)\n\n",
			nr.FusedIPS, nr.UnfusedIPS, nr.Speedup, nr.ActBytesUnf, nr.ActBytes, nr.BytesSavedPc)
	}

	f, err := os.Create(*flagFusionOut)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *flagFusionOut)
	return nil
}

// checkPlansAgree pins bit-identical logits before any timing runs.
func checkPlansAgree(fused, unfused *graph.Network, x *tensor.Tensor) error {
	a := fused.Infer(x)
	b := unfused.Infer(x)
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("fused and unfused plans disagree at logit %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// medianTimings runs -runs timed passes and keeps the per-layer median:
// the slice preserves execution order (names and kinds from the first
// pass), the map holds the median duration per layer name.
func medianTimings(n *graph.Network, x *tensor.Tensor) ([]graph.LayerTiming, map[string]time.Duration) {
	samples := map[string][]time.Duration{}
	var order []graph.LayerTiming
	for r := 0; r < *flagRuns; r++ {
		_, timings := n.InferTimed(x)
		if r == 0 {
			order = timings
		}
		for _, lt := range timings {
			samples[lt.Name] = append(samples[lt.Name], lt.Duration)
		}
	}
	out := make(map[string]time.Duration, len(order))
	for name, ds := range samples {
		out[name] = medianDuration(ds)
	}
	return order, out
}

func medianDuration(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

// splitFusedName decomposes "conv5.3+pool5" into its halves.
func splitFusedName(name string) (conv, pool string, ok bool) {
	for i := len(name) - 1; i > 0; i-- {
		if name[i] == '+' {
			return name[:i], name[i+1:], true
		}
	}
	return "", "", false
}

// eliminatedPlaneBytes finds, on the unfused network, the packed plane
// the named pool layer consumes — exactly the buffer fusion removes.
func eliminatedPlaneBytes(unfused *graph.Network, poolName string) int64 {
	for _, li := range unfused.Layers() {
		if li.Name == poolName && li.Kind == "pool" {
			return unfused.PoolInputBytes(poolName)
		}
	}
	return 0
}

// measureInfer returns the median single-image latency.
func measureInfer(n *graph.Network, x *tensor.Tensor) time.Duration {
	return bench.Measure(*flagRuns, 100*time.Millisecond, func() { n.Infer(x) })
}
