package main

import (
	"fmt"

	"bitflow/internal/baseline"
	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

// opRunners packages the three implementations the paper compares for
// one Table IV operator:
//
//   - float: the counterpart full-precision operator (the 1× baseline);
//   - unopt: the unoptimized BNN implementation — image-to-column
//     binary conv / scalar-kernel matvec / pack-at-runtime pool;
//   - bitflow: the optimized operator (PressedConv / bgemm / OR-pool on
//     pre-packed inputs, scheduled kernel tier).
//
// BitFlow operators receive bit-packed inputs, as they would from the
// previous layer of a BNN; the unoptimized baselines pay their packing
// and unfolding at run time, as the paper describes.
type opRunners struct {
	cfg workload.OpConfig
	// units is the fused parallel work-unit count (OutH·OutW for
	// conv/pool, K for fc) feeding the scaling model.
	units int
	// plan is the scheduler's choice for this operator.
	plan sched.Plan

	float   func(threads int)
	unopt   func(threads int)
	bitflow func(threads int)
}

// buildRunners materializes inputs, weights and operators for cfg.
func buildRunners(cfg workload.OpConfig, feat sched.Features, seed uint64) (*opRunners, error) {
	r := workload.NewRNG(seed)
	or := &opRunners{cfg: cfg}
	switch cfg.Kind {
	case workload.OpConv:
		shape, err := sched.InferConv(cfg.H, cfg.W, cfg.C, cfg.K, cfg.KH, cfg.KW, cfg.Stride, cfg.Pad)
		if err != nil {
			return nil, err
		}
		plan := sched.Select(cfg.C, feat)
		or.plan = plan
		or.units = shape.OutH * shape.OutW

		filt := workload.PM1Filter(r, cfg.K, cfg.KH, cfg.KW, cfg.C)
		in := workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C)

		cv, err := core.NewConv(shape, plan, filt)
		if err != nil {
			return nil, err
		}
		packed := cv.NewInput()
		bitpack.PackTensorInto(in, packed)
		outPlan := sched.Select(cfg.K, feat)
		pOut := bitpack.NewPacked(shape.OutH, shape.OutW, cfg.K, outPlan.Words, 0, 0)
		or.bitflow = func(threads int) { cv.ForwardPacked(packed, pOut, exec.Threads(threads)) }

		bim := baseline.NewBinaryIm2colConv(filt, cfg.Stride, cfg.Pad)
		or.unopt = func(threads int) { bim.Forward(in, threads) }

		or.float = func(threads int) { baseline.ConvDirect(in, filt, cfg.Stride, cfg.Pad, 0, threads) }

	case workload.OpFC:
		shape, err := sched.InferFC(cfg.N, cfg.K)
		if err != nil {
			return nil, err
		}
		plan := sched.Select(cfg.N, feat)
		or.plan = plan
		or.units = cfg.K

		w := workload.PM1Matrix(r, cfg.N, cfg.K)
		inVals := make([]float32, cfg.N)
		for i := range inVals {
			inVals[i] = r.PM1()
		}

		d, err := core.NewDense(shape, plan, w)
		if err != nil {
			return nil, err
		}
		packedIn := d.NewInput()
		bitpack.PackVectorInto(packedIn, inVals)
		out := make([]int32, cfg.K)
		or.bitflow = func(threads int) { d.Forward(packedIn, out, exec.Threads(threads)) }

		// Unoptimized binary fc: pack the activation vector at run time
		// (no fused transform pre-staging for activations), then a
		// straight scalar-kernel matvec without register blocking.
		wPacked := bitpack.PackMatrixBT(w, bitpack.WordsFor(cfg.N))
		unoptIn := make([]uint64, bitpack.WordsFor(cfg.N))
		unoptOut := make([]int32, cfg.K)
		or.unopt = func(threads int) {
			bitpack.PackVectorInto(unoptIn, inVals)
			runChunked(cfg.K, threads, func(k0, k1 int) {
				for k := k0; k < k1; k++ {
					acc := kernels.XorPop64(unoptIn, wPacked.RowWords(k))
					unoptOut[k] = int32(cfg.N) - 2*int32(acc)
				}
			})
		}

		floatOut := make([]float32, cfg.K)
		or.float = func(threads int) { baseline.DenseFloat(inVals, w, floatOut, threads) }

	case workload.OpPool:
		shape, err := sched.InferPool(cfg.H, cfg.W, cfg.C, cfg.KH, cfg.KW, cfg.Stride)
		if err != nil {
			return nil, err
		}
		plan := sched.Select(cfg.C, feat)
		or.plan = plan
		or.units = shape.OutH * shape.OutW

		in := workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C)
		pl, err := core.NewPool(shape, plan.Words)
		if err != nil {
			return nil, err
		}
		packed := bitpack.PackTensor(in, plan.Words, 0, 0)
		pOut := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, plan.Words, 0, 0)
		or.bitflow = func(threads int) { pl.Forward(packed, pOut, exec.Threads(threads)) }

		// Unoptimized ("unvectorized", Fig. 7) binary pool: same packed
		// input, but a plain word-at-a-time OR reduction with no
		// unrolling and no contiguous-segment walking.
		unoptIn := bitpack.PackTensor(in, bitpack.WordsFor(cfg.C), 0, 0)
		unoptOut := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, bitpack.WordsFor(cfg.C), 0, 0)
		wpp := unoptIn.WPP
		or.unopt = func(threads int) {
			runChunked(shape.OutH*shape.OutW, threads, func(start, end int) {
				for idx := start; idx < end; idx++ {
					y := idx / shape.OutW
					x := idx % shape.OutW
					dst := unoptOut.PixelWords(y, x)
					for w := 0; w < wpp; w++ {
						var acc uint64
						for i := 0; i < cfg.KH; i++ {
							for j := 0; j < cfg.KW; j++ {
								acc |= unoptIn.PixelWords(y*cfg.Stride+i, x*cfg.Stride+j)[w]
							}
						}
						dst[w] = acc
					}
				}
			})
		}

		or.float = func(threads int) { baseline.MaxPoolFloat(in, cfg.KH, cfg.KW, cfg.Stride, threads) }

	default:
		return nil, fmt.Errorf("unknown op kind %v", cfg.Kind)
	}
	return or, nil
}

// runChunked is the harness-local thread splitter, dispatched on a
// spawn-per-call context so harness overhead matches the legacy
// goroutine-per-chunk baselines it measures against.
func runChunked(total, threads int, body func(start, end int)) {
	if threads <= 1 || total <= 1 {
		body(0, total)
		return
	}
	exec.Spawn(threads).ParallelFor(total, body)
}

// scaleFracs returns (serialFrac, memBoundFrac) estimates per operator
// kind for the scaling model: pools are almost pure data movement; convs
// carry a small serial dispatch cost; dense has the packed weight stream.
func scaleFracs(cfg workload.OpConfig) (serial, mem float64) {
	switch cfg.Kind {
	case workload.OpPool:
		return 0.01, 0.35
	case workload.OpFC:
		return 0.005, 0.10
	default:
		if cfg.C >= 512 {
			return 0.005, 0.06
		}
		return 0.005, 0.02
	}
}
