// The `autoscale` subcommand benchmarks the adaptive serving loop
// end-to-end and emits BENCH_autoscale.json: a live bitflow HTTP server
// (serve.ServeListener) is driven by closed-loop clients whose
// concurrency follows three load shapes — bursty (idle/flood cycles),
// diurnal (ramp up and back down), and adversarial (flap-inducing fast
// alternation). Each shape runs against three configurations:
//
//   - static-low:  1 unbatched replica — the right geometry for the
//     quiet phases, drowning in the bursts;
//   - static-high: max replicas with a wide batch — the right geometry
//     for the bursts, paying coalescing latency when idle;
//   - adaptive:    starts at the low geometry with -autoscale bounds
//     covering both, and must earn its keep by retuning live.
//
// The verdict per shape compares the adaptive loop's aggregate
// throughput against the better static config — the claim is that one
// adaptive configuration replaces per-shape hand tuning.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/serve"
	"bitflow/internal/workload"
)

var (
	flagAutoscaleOut  = flag.String("autoscale-out", "BENCH_autoscale.json", "output path for the `autoscale` subcommand report")
	flagAutoscaleUnit = flag.Duration("autoscale-unit", 1200*time.Millisecond, "duration of one load-shape phase unit")
)

// asPhase is one step of a load shape: hold `clients` closed-loop
// clients for `dur`.
type asPhase struct {
	clients int
	dur     time.Duration
}

// asShapes builds the three load shapes from the high-water client
// count and the phase unit.
func asShapes(hi int, unit time.Duration) map[string][]asPhase {
	mid := max(1, hi/2)
	low := max(1, hi/4)
	return map[string][]asPhase{
		"bursty": {
			{1, unit}, {hi, unit}, {1, unit}, {hi, unit}, {1, unit}, {hi, unit},
		},
		"diurnal": {
			{1, unit}, {low, unit}, {mid, unit}, {hi, unit}, {mid, unit}, {low, unit}, {1, unit},
		},
		"adversarial": {
			{hi, unit / 2}, {1, unit / 2}, {hi, unit / 2}, {1, unit / 2},
			{hi, unit / 2}, {1, unit / 2}, {hi, unit / 2}, {1, unit / 2},
		},
	}
}

type autoscaleRow struct {
	Shape        string  `json:"shape"`
	Config       string  `json:"config"`
	ImagesPerSec float64 `json:"images_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Shed         int64   `json:"shed"`
	// Adaptive rows carry the controller's evidence: how often it
	// actuated and where the setpoints ended up.
	Actuations    int64  `json:"actuations,omitempty"`
	FinalState    string `json:"final_state,omitempty"`
	FinalReplicas int    `json:"final_replicas,omitempty"`
	FinalMaxBatch int    `json:"final_max_batch,omitempty"`
	FinalWindow   string `json:"final_window,omitempty"`
}

type autoscaleVerdict struct {
	Shape         string  `json:"shape"`
	BestStatic    string  `json:"best_static"`
	BestStaticIPS float64 `json:"best_static_images_per_sec"`
	AdaptiveIPS   float64 `json:"adaptive_images_per_sec"`
	// RatioVsBest ≥ 1 means the one adaptive config matched or beat the
	// better hand-picked static geometry for this shape.
	RatioVsBest float64 `json:"ratio_vs_best"`
}

type autoscaleReport struct {
	Features    string             `json:"features"`
	Cores       int                `json:"cores"`
	Network     string             `json:"network"`
	UnitSec     float64            `json:"phase_unit_sec"`
	MaxReplicas int                `json:"max_replicas"`
	HiClients   int                `json:"hi_clients"`
	Rows        []autoscaleRow     `json:"rows"`
	Verdicts    []autoscaleVerdict `json:"verdicts"`
}

// asConfig names one serving configuration under test.
type asConfig struct {
	name string
	cfg  serve.Config
}

func asConfigs(maxR int) []asConfig {
	return []asConfig{
		{"static-low", serve.Config{Replicas: 1}},
		{"static-high", serve.Config{
			Replicas: maxR, Batching: true, MaxBatch: 16, BatchWindow: 2 * time.Millisecond,
		}},
		{"adaptive", serve.Config{
			// Starts at the low geometry; the bounds cover everything the
			// static-high config has, so any throughput it reaches is
			// reachable here too — if the controller finds it.
			Replicas: 1, Batching: true, MaxBatch: 2, BatchWindow: time.Millisecond,
			Autoscale: &serve.AutoscaleConfig{
				Interval:    20 * time.Millisecond,
				MaxReplicas: maxR,
				MaxBatch:    16,
				MinWindow:   500 * time.Microsecond,
				MaxWindow:   4 * time.Millisecond,
				Cooldown:    2,
			},
		}},
	}
}

func runAutoscaleBench(feat sched.Features) error {
	net0, err := graph.TinyVGG(feat, graph.RandomWeights{Seed: *flagSeed})
	if err != nil {
		return err
	}
	maxR := max(2, min(4, bench.PhysicalCores()))
	hi := 4 * maxR
	unit := *flagAutoscaleUnit
	if *flagQuick {
		unit = 300 * time.Millisecond
	}

	// Pre-marshaled request bodies so the client loop measures the
	// server, not encoding.
	r := workload.NewRNG(*flagSeed + 1)
	bodies := make([][]byte, 8)
	for i := range bodies {
		x := workload.RandTensor(r, net0.InH, net0.InW, net0.InC)
		b, merr := json.Marshal(serve.InferRequest{Data: x.Data})
		if merr != nil {
			return merr
		}
		bodies[i] = b
	}

	rep := autoscaleReport{
		Features:    fmt.Sprint(feat),
		Cores:       bench.PhysicalCores(),
		Network:     net0.Name,
		UnitSec:     unit.Seconds(),
		MaxReplicas: maxR,
		HiClients:   hi,
	}
	shapes := asShapes(hi, unit)
	byShape := map[string]map[string]float64{} // shape -> config -> ips

	for _, shape := range []string{"bursty", "diurnal", "adversarial"} {
		fmt.Printf("== %s load: hi=%d clients, unit %s ==\n", shape, hi, unit)
		tb := bench.NewTable("config", "images/s", "p50", "p99", "shed", "actuations")
		byShape[shape] = map[string]float64{}
		for _, c := range asConfigs(maxR) {
			row, rerr := runAutoscaleShape(shape, shapes[shape], c, net0, bodies)
			if rerr != nil {
				return fmt.Errorf("%s/%s: %w", shape, c.name, rerr)
			}
			rep.Rows = append(rep.Rows, row)
			byShape[shape][c.name] = row.ImagesPerSec
			act := "-"
			if c.name == "adaptive" {
				act = fmt.Sprintf("%d (-> r=%d b=%d w=%s)", row.Actuations, row.FinalReplicas, row.FinalMaxBatch, row.FinalWindow)
			}
			tb.Row(c.name, row.ImagesPerSec, bench.Ms(msDur(row.P50Ms)), bench.Ms(msDur(row.P99Ms)), row.Shed, act)
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}

	for _, shape := range []string{"bursty", "diurnal", "adversarial"} {
		ips := byShape[shape]
		best, bestIPS := "static-low", ips["static-low"]
		if ips["static-high"] > bestIPS {
			best, bestIPS = "static-high", ips["static-high"]
		}
		v := autoscaleVerdict{
			Shape:         shape,
			BestStatic:    best,
			BestStaticIPS: round2(bestIPS),
			AdaptiveIPS:   round2(ips["adaptive"]),
			RatioVsBest:   round2(ips["adaptive"] / bestIPS),
		}
		rep.Verdicts = append(rep.Verdicts, v)
		fmt.Printf("%s: adaptive %.0f img/s vs best static (%s) %.0f img/s = %.2fx\n",
			shape, v.AdaptiveIPS, best, v.BestStaticIPS, v.RatioVsBest)
	}

	f, err := os.Create(*flagAutoscaleOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", *flagAutoscaleOut)
	return nil
}

// runAutoscaleShape serves a fresh clone of the network under cfg on a
// loopback listener, drives the shape's phases, and tears the server
// down cleanly.
func runAutoscaleShape(shape string, phases []asPhase, c asConfig, net0 *graph.Network, bodies [][]byte) (autoscaleRow, error) {
	row := autoscaleRow{Shape: shape, Config: c.name}
	srv := serve.NewWithConfig(net0.Clone(), c.cfg)
	if !srv.Ready() {
		return row, fmt.Errorf("server failed warm-up")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	baseURL := "http://" + l.Addr().String() + "/infer"
	ctx, stop := context.WithCancel(context.Background())
	served := make(chan error, 1)
	//bitflow:go-ok bench server lifecycle, joined via the served channel before return
	go func() {
		served <- srv.ServeListener(ctx, l, serve.HTTPConfig{ShutdownGrace: 10 * time.Second})
	}()

	httpc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}

	var total atomic.Int64
	var shed atomic.Int64
	var firstErr atomic.Value
	var mu sync.Mutex
	var lats []time.Duration
	start := time.Now()

	for _, ph := range phases {
		var wg sync.WaitGroup //bitflow:go-ok closed-loop HTTP load generator; one live goroutine per client for the phase
		stopPhase := make(chan struct{})
		for cl := 0; cl < ph.clients; cl++ {
			wg.Add(1)
			//bitflow:go-ok closed-loop HTTP load generator; see WaitGroup note above
			go func(cl int) {
				defer wg.Done()
				i := cl
				var local []time.Duration
				for {
					select {
					case <-stopPhase:
						mu.Lock()
						lats = append(lats, local...)
						mu.Unlock()
						return
					default:
					}
					body := bodies[i%len(bodies)]
					i++
					t0 := time.Now()
					resp, perr := httpc.Post(baseURL, "application/json", bytes.NewReader(body))
					if perr != nil {
						firstErr.CompareAndSwap(nil, perr)
						mu.Lock()
						lats = append(lats, local...)
						mu.Unlock()
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						local = append(local, time.Since(t0))
						total.Add(1)
					} else {
						shed.Add(1)
						time.Sleep(time.Millisecond) // honor shed back-pressure
					}
				}
			}(cl)
		}
		time.Sleep(ph.dur)
		close(stopPhase)
		wg.Wait()
		if e := firstErr.Load(); e != nil {
			stop()
			<-served
			return row, e.(error)
		}
	}
	elapsed := time.Since(start)

	if c.cfg.Autoscale != nil {
		for _, name := range srv.Models() {
			if st := srv.ControlStatus(name); st != nil {
				row.Actuations = st.Actuations
				row.FinalState = st.State
				row.FinalReplicas = st.Setpoints.Replicas
				row.FinalMaxBatch = st.Setpoints.MaxBatch
				row.FinalWindow = st.Setpoints.Window
			}
		}
	}
	stop()
	if err := <-served; err != nil {
		return row, fmt.Errorf("drain: %w", err)
	}

	if len(lats) == 0 {
		return row, fmt.Errorf("no requests completed")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))]) / float64(time.Millisecond)
	}
	row.ImagesPerSec = round2(float64(total.Load()) / elapsed.Seconds())
	row.P50Ms = round2(q(0.50))
	row.P99Ms = round2(q(0.99))
	row.Shed = shed.Load()
	return row, nil
}
