// The `batch` subcommand benchmarks the dynamic micro-batching subsystem
// and emits BENCH_batch.json:
//
//  1. infer_batch — graph.InferBatch throughput on TinyVGG for batch
//     sizes {1,2,4,8,16}: how much the batched forward path amortizes
//     per-call kernel overhead and filter-word loads.
//  2. closed_loop — the serving claim: closed-loop clients (concurrency
//     ≥ 2× replicas) against the replica-pool baseline vs the batcher at
//     the same client count, reporting images/sec and p50/p99 latency.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bitflow/internal/batch"
	"bitflow/internal/bench"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

var (
	flagBatchOut = flag.String("batch-out", "BENCH_batch.json", "output path for the `batch` subcommand report")
	flagBatchDur = flag.Duration("batch-dur", 3*time.Second, "measurement duration per closed-loop configuration")
)

type inferBatchRow struct {
	Batch        int     `json:"batch"`
	MsPerImage   float64 `json:"ms_per_image"`
	ImagesPerSec float64 `json:"images_per_sec"`
	Speedup      float64 `json:"speedup_vs_b1"`
}

type loopRow struct {
	Mode         string  `json:"mode"` // "replica-pool" or "batched"
	MaxBatch     int     `json:"max_batch,omitempty"`
	WindowMs     float64 `json:"window_ms,omitempty"`
	Clients      int     `json:"clients"`
	Replicas     int     `json:"replicas"`
	ImagesPerSec float64 `json:"images_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// Speedup and P99Ratio compare against the replica-pool baseline at
	// the same client count (batched rows only).
	Speedup  float64 `json:"speedup,omitempty"`
	P99Ratio float64 `json:"p99_ratio,omitempty"`
}

type batchReport struct {
	Features    string          `json:"features"`
	Cores       int             `json:"cores"`
	Network     string          `json:"network"`
	DurationSec float64         `json:"closed_loop_duration_sec"`
	InferBatch  []inferBatchRow `json:"infer_batch"`
	ClosedLoop  []loopRow       `json:"closed_loop"`
}

func runBatchBench(feat sched.Features) error {
	build := func() (*graph.Network, error) {
		return graph.TinyVGG(feat, graph.RandomWeights{Seed: *flagSeed})
	}
	net, err := build()
	if err != nil {
		return err
	}
	r := workload.NewRNG(*flagSeed + 1)
	const maxB = 16
	xs := make([]*tensor.Tensor, maxB)
	for i := range xs {
		xs[i] = workload.RandTensor(r, net.InH, net.InW, net.InC)
	}
	net.EnsureBatch(maxB)

	rep := batchReport{
		Features:    fmt.Sprint(feat),
		Cores:       bench.PhysicalCores(),
		Network:     net.Name,
		DurationSec: flagBatchDur.Seconds(),
	}

	// --- Section 1: raw InferBatch sweep -----------------------------
	fmt.Println("== InferBatch throughput (TinyVGG) ==")
	tb := bench.NewTable("batch", "ms/image", "images/s", "speedup")
	var base float64
	for _, B := range []int{1, 2, 4, 8, 16} {
		d := bench.Measure(*flagRuns, 200*time.Millisecond, func() {
			if _, err := net.InferBatch(xs[:B]); err != nil {
				panic(err)
			}
		})
		perImg := float64(d) / float64(B) / float64(time.Millisecond)
		ips := 1000 / perImg
		if B == 1 {
			base = perImg
		}
		row := inferBatchRow{
			Batch:        B,
			MsPerImage:   round2(perImg),
			ImagesPerSec: round2(ips),
			Speedup:      round2(base / perImg),
		}
		rep.InferBatch = append(rep.InferBatch, row)
		tb.Row(B, row.MsPerImage, row.ImagesPerSec, fmt.Sprintf("%.2fx", row.Speedup))
	}
	tb.Render(os.Stdout)
	fmt.Println()

	// --- Section 2: closed-loop serving comparison -------------------
	// Baseline: a pool of sequential replicas, exactly the unbatched
	// server's inference stage. Batched: the batcher with the same
	// replica count as workers. Same clients, same duration.
	const replicas = 2
	dur := *flagBatchDur
	if *flagQuick {
		dur = 800 * time.Millisecond
	}
	fmt.Printf("== closed-loop serving: %d replicas, %s per config ==\n", replicas, dur)
	tl := bench.NewTable("mode", "maxB", "clients", "images/s", "p50", "p99", "speedup", "p99 ratio")

	for _, m := range []int{2, 4, 8, 16} {
		clients := replicas * m // ≥ 2× replicas, enough to fill batches
		if clients < 2*replicas {
			clients = 2 * replicas
		}

		baseRate, baseP50, baseP99, err := runPoolLoop(build, replicas, clients, xs, dur)
		if err != nil {
			return err
		}
		rep.ClosedLoop = append(rep.ClosedLoop, loopRow{
			Mode: "replica-pool", Clients: clients, Replicas: replicas,
			ImagesPerSec: round2(baseRate), P50Ms: round2(baseP50), P99Ms: round2(baseP99),
		})
		tl.Row("replica-pool", "-", clients, round2(baseRate), bench.Ms(msDur(baseP50)), bench.Ms(msDur(baseP99)), "-", "-")

		window := 2 * time.Millisecond
		rate, p50, p99, err := runBatchedLoop(build, replicas, m, window, clients, xs, dur)
		if err != nil {
			return err
		}
		row := loopRow{
			Mode: "batched", MaxBatch: m, WindowMs: float64(window) / float64(time.Millisecond),
			Clients: clients, Replicas: replicas,
			ImagesPerSec: round2(rate), P50Ms: round2(p50), P99Ms: round2(p99),
			Speedup: round2(rate / baseRate), P99Ratio: round2(p99 / baseP99),
		}
		rep.ClosedLoop = append(rep.ClosedLoop, row)
		tl.Row("batched", m, clients, row.ImagesPerSec, bench.Ms(msDur(p50)), bench.Ms(msDur(p99)),
			fmt.Sprintf("%.2fx", row.Speedup), fmt.Sprintf("%.2fx", row.P99Ratio))
	}
	tl.Render(os.Stdout)

	f, err := os.Create(*flagBatchOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", *flagBatchOut)
	return nil
}

// runPoolLoop drives `clients` closed-loop clients against a pool of
// sequential replicas — the unbatched server's inference stage.
func runPoolLoop(build func() (*graph.Network, error), replicas, clients int, xs []*tensor.Tensor, dur time.Duration) (rate, p50, p99 float64, err error) {
	first, err := build()
	if err != nil {
		return 0, 0, 0, err
	}
	pool := make(chan *graph.Network, replicas)
	pool <- first
	for i := 1; i < replicas; i++ {
		pool <- first.Clone()
	}
	return closedLoop(clients, dur, func(x *tensor.Tensor) error {
		n := <-pool
		_, ierr := n.InferChecked(x)
		pool <- n
		return ierr
	}, xs)
}

// runBatchedLoop drives the same closed loop through a batch.Batcher with
// `replicas` workers.
func runBatchedLoop(build func() (*graph.Network, error), replicas, maxBatch int, window time.Duration, clients int, xs []*tensor.Tensor, dur time.Duration) (rate, p50, p99 float64, err error) {
	b, err := batch.New(batch.Config{
		Window:   window,
		MaxBatch: maxBatch,
		Workers:  replicas,
		QueueCap: clients * 2,
		NewRunner: func() (batch.Runner, error) {
			n, err := build()
			if err != nil {
				return nil, err
			}
			n.EnsureBatch(maxBatch)
			return n, nil
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = b.Close(ctx)
	}()
	ctx := context.Background()
	return closedLoop(clients, dur, func(x *tensor.Tensor) error {
		_, serr := b.Submit(ctx, x)
		return serr
	}, xs)
}

// closedLoop runs `clients` goroutines issuing back-to-back requests for
// dur (after a short warm phase) and reports aggregate images/sec plus
// latency quantiles in milliseconds.
func closedLoop(clients int, dur time.Duration, do func(*tensor.Tensor) error, xs []*tensor.Tensor) (rate, p50, p99 float64, err error) {
	var stop atomic.Bool
	var warm atomic.Bool
	var count atomic.Int64
	var firstErr atomic.Value
	lats := make([][]time.Duration, clients)
	// The client loops cannot run on exec.Ctx.ParallelFor: its claim-loop
	// chunking would let one worker serialize several infinite client
	// bodies while the controller below still expects all of them
	// concurrently live until stop flips.
	//bitflow:go-ok closed-loop load generator needs one live goroutine per client for the full duration
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		//bitflow:go-ok closed-loop load generator; see WaitGroup note above
		go func(c int) {
			defer wg.Done()
			i := c
			for !stop.Load() {
				x := xs[i%len(xs)]
				i++
				t0 := time.Now()
				if derr := do(x); derr != nil {
					firstErr.CompareAndSwap(nil, derr)
					return
				}
				if warm.Load() {
					lats[c] = append(lats[c], time.Since(t0))
					count.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(dur / 4) // warm phase: fill pipelines, settle schedulers
	warm.Store(true)
	t0 := time.Now()
	time.Sleep(dur)
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return 0, 0, 0, e.(error)
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0, 0, fmt.Errorf("closed loop completed no requests")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Millisecond)
	}
	return float64(count.Load()) / elapsed.Seconds(), q(0.50), q(0.99), nil
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

func msDur(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }
