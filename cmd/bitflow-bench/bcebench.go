// The `ops` subcommand's second half benchmarks the BCE sweep: every
// kernel inner loop was restructured into the cursor/chunk-advance shape
// the compiler's bounds-check-elimination prover discharges (pinned by
// `bitflow-vet codegen` and TestHotLoopsCompilerVerified). This file
// keeps faithful copies of the pre-sweep loop shapes — indexed loops
// whose bounds checks survive — and times both forms on identical
// inputs, emitting BENCH_bce.json:
//
//   - XorPopcount: the unrolled ladder, indexed `a[i+3]` form vs the
//     chunk-advance form;
//   - BGemm: the `ki*wpr` offset-arithmetic column loop vs the cursor
//     form;
//   - epilogue: the per-channel `dst[c/64] |= ...` scatter (Pack) and the
//     per-filter indexed conv ladder (ConvEpilogue) vs the word-major
//     cursor forms.
//
// Outputs are compared word-for-word before any timing is reported, so a
// speedup can never come from a divergent computation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/bitpack"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

var flagBCEOut = flag.String("bce-out", "BENCH_bce.json", "output path for the `ops` subcommand's BCE report")

type bceRow struct {
	Name string `json:"name"` // e.g. "XorPopcount/256"
	// Per-call medians of -runs samples, before (indexed loops, surviving
	// bounds checks) and after (cursor loops, compiler-verified).
	BeforeNsOp float64 `json:"before_ns_op"`
	AfterNsOp  float64 `json:"after_ns_op"`
	Speedup    float64 `json:"speedup"`
	BitExact   bool    `json:"bit_exact"`
}

type bceReport struct {
	Features string   `json:"features"`
	Cores    int      `json:"cores"`
	Kernels  []bceRow `json:"kernels"`
	Improved int      `json:"improved"` // rows with speedup > 1
}

// runOpsBench is the full `ops` subcommand: the fused data-flow
// comparison (BENCH_fusion.json), the BCE sweep microbenches
// (BENCH_bce.json), and the kernel-compression comparison
// (BENCH_compress.json).
func runOpsBench(feat sched.Features) error {
	if err := runFusionBench(feat); err != nil {
		return err
	}
	if err := runBCEBench(feat); err != nil {
		return err
	}
	return runCompressBench(feat)
}

func runBCEBench(feat sched.Features) error {
	iters := 2000
	words := 392 // fc6 row: N = 25088 bits
	m, kDim := 64, 256
	convK, fstride, kh := 256, 12, 3
	if *flagQuick {
		iters, words, m, kDim, convK = 400, 98, 16, 64, 64
	}
	rng := workload.NewRNG(*flagSeed + 11)

	rep := bceReport{Features: fmt.Sprint(feat), Cores: bench.PhysicalCores()}
	fmt.Println("== BCE sweep: indexed loops (before) vs compiler-verified cursor loops (after) ==")
	tbl := bench.NewTable("kernel", "before", "after", "speedup", "bit-exact")

	add := func(name string, perOpBefore, perOpAfter time.Duration, exact bool) {
		row := bceRow{
			Name:       name,
			BeforeNsOp: round2(float64(perOpBefore.Nanoseconds())),
			AfterNsOp:  round2(float64(perOpAfter.Nanoseconds())),
			BitExact:   exact,
		}
		if perOpAfter > 0 {
			row.Speedup = round2(float64(perOpBefore) / float64(perOpAfter))
		}
		if row.Speedup > 1 {
			rep.Improved++
		}
		rep.Kernels = append(rep.Kernels, row)
		tbl.Row(name, fmt.Sprintf("%.0f ns", row.BeforeNsOp), fmt.Sprintf("%.0f ns", row.AfterNsOp),
			fmt.Sprintf("%.2fx", row.Speedup), fmt.Sprintf("%v", exact))
	}
	// perOp medians the total of `iters` back-to-back calls and divides.
	perOp := func(f func()) time.Duration {
		return bench.Measure(*flagRuns, 10*time.Millisecond, f) / time.Duration(iters)
	}

	// XorPopcount: the 4-wide ladder on an fc-sized row.
	a, b := randWords(rng, words), randWords(rng, words)
	if got, want := legacyXorPop256(a, b), kernels.XorPop256(a, b); got != want {
		return fmt.Errorf("XorPopcount before/after disagree: %d vs %d", got, want)
	}
	sink := 0
	before := perOp(func() {
		for i := 0; i < iters; i++ {
			sink += legacyXorPop256(a, b)
		}
	})
	after := perOp(func() {
		for i := 0; i < iters; i++ {
			sink += kernels.XorPop256(a, b)
		}
	})
	add("XorPopcount/256", before, after, true)

	// BGemm: M packed rows against K packed rows, serial (the kernel
	// loop shape is what changed; threading is identical either way).
	wpr := words
	n := wpr * bitpack.WordBits
	am := randWords(rng, m*wpr)
	bT := randWords(rng, kDim*wpr)
	outB := make([]int32, m*kDim)
	outA := make([]int32, m*kDim)
	gemmIters := 1 + iters/100
	legacyBGemm(am, m, bT, kDim, wpr, n, outB)
	kernels.BGemm(am, m, bT, kDim, wpr, n, outA, kernels.BGemmOpts{Kernel: kernels.XorPop256})
	exact := int32SlicesEqual(outB, outA)
	before = bench.Measure(*flagRuns, 10*time.Millisecond, func() {
		for i := 0; i < gemmIters; i++ {
			legacyBGemm(am, m, bT, kDim, wpr, n, outB)
		}
	}) / time.Duration(gemmIters)
	after = bench.Measure(*flagRuns, 10*time.Millisecond, func() {
		for i := 0; i < gemmIters; i++ {
			kernels.BGemm(am, m, bT, kDim, wpr, n, outA, kernels.BGemmOpts{Kernel: kernels.XorPop256})
		}
	}) / time.Duration(gemmIters)
	add("BGemm", before, after, exact)

	// Epilogue.Pack: K pre-activations thresholded into packed bits.
	ep := randEpilogue(rng, convK)
	d := make([]int32, convK)
	for i := range d {
		d[i] = int32(rng.Intn(2048) - 1024)
	}
	dstB := make([]uint64, bitpack.WordsFor(convK))
	dstA := make([]uint64, bitpack.WordsFor(convK))
	legacyPack(ep, d, dstB)
	ep.Pack(d, dstA)
	exact = wordSlicesEqual(dstB, dstA)
	before = perOp(func() {
		for i := 0; i < iters; i++ {
			legacyPack(ep, d, dstB)
		}
	})
	after = perOp(func() {
		for i := 0; i < iters; i++ {
			ep.Pack(d, dstA)
		}
	})
	add("Epilogue/pack", before, after, exact)

	// ConvEpilogue: the fused accumulate→threshold→set-bit ladder for one
	// output pixel, K filters of kh rows.
	rows := make([][]uint64, kh)
	for i := range rows {
		rows[i] = randWords(rng, fstride/kh)
	}
	fw := randWords(rng, convK*fstride)
	n32 := int32(fstride * bitpack.WordBits)
	legacyConvEpilogue(kernels.XorPopRows64, rows, fw, fstride, n32, ep, dstB)
	kernels.ConvEpilogue(kernels.XorPopRows64, rows, fw, fstride, n32, ep, dstA)
	exact = wordSlicesEqual(dstB, dstA)
	convIters := 1 + iters/10
	before = bench.Measure(*flagRuns, 10*time.Millisecond, func() {
		for i := 0; i < convIters; i++ {
			legacyConvEpilogue(kernels.XorPopRows64, rows, fw, fstride, n32, ep, dstB)
		}
	}) / time.Duration(convIters)
	after = bench.Measure(*flagRuns, 10*time.Millisecond, func() {
		for i := 0; i < convIters; i++ {
			kernels.ConvEpilogue(kernels.XorPopRows64, rows, fw, fstride, n32, ep, dstA)
		}
	}) / time.Duration(convIters)
	add("Epilogue/conv", before, after, exact)

	tbl.Render(os.Stdout)
	_ = sink
	for _, r := range rep.Kernels {
		if !r.BitExact {
			return fmt.Errorf("bce bench: %s before/after outputs differ", r.Name)
		}
	}
	fmt.Printf("%d of %d microbenches improved\n\n", rep.Improved, len(rep.Kernels))

	f, err := os.Create(*flagBCEOut)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *flagBCEOut)
	return nil
}

func randWords(rng *workload.RNG, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = rng.Uint64()
	}
	return w
}

// randEpilogue builds a K-channel epilogue with mixed thresholds and
// roughly half the channels flipped.
func randEpilogue(rng *workload.RNG, k int) *kernels.Epilogue {
	t := make([]int32, k)
	flip := make([]bool, k)
	for i := range t {
		t[i] = int32(rng.Intn(1024) - 512)
		flip[i] = rng.Uint64()&1 == 1
	}
	return kernels.NewEpilogue(t, flip)
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func wordSlicesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- pre-sweep loop shapes, kept verbatim as the "before" baseline ----

// legacyXorPop256 is the old indexed ladder: the i+3 guard does not prove
// b[i..i+3] in bounds, so four IsInBounds checks survive per step.
func legacyXorPop256(a, b []uint64) int {
	if len(a) != len(b) {
		panic("legacyXorPop256: length mismatch")
	}
	var acc0, acc1, acc2, acc3 int
	for i := 0; i+3 < len(a); i += 4 {
		acc0 += bits.OnesCount64(a[i] ^ b[i])
		acc1 += bits.OnesCount64(a[i+1] ^ b[i+1])
		acc2 += bits.OnesCount64(a[i+2] ^ b[i+2])
		acc3 += bits.OnesCount64(a[i+3] ^ b[i+3])
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// legacyBGemm is the old offset-arithmetic column loop: every B row and
// output element is addressed by ki*wpr / mi*k+ki multiplies whose bounds
// checks the prover cannot eliminate.
func legacyBGemm(a []uint64, m int, bT []uint64, k, wpr, n int, out []int32) {
	n32 := int32(n)
	for mi := 0; mi < m; mi++ {
		arow := a[mi*wpr : (mi+1)*wpr]
		for ki := 0; ki < k; ki++ {
			brow := bT[ki*wpr : (ki+1)*wpr]
			out[mi*k+ki] = n32 - 2*int32(kernels.XorPop256(arow, brow))
		}
	}
}

// legacyPack is the old per-element threshold pass: one compare branch
// and one checked dst[c/64] scatter per channel.
func legacyPack(e *kernels.Epilogue, d []int32, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for c := 0; c < e.K; c++ {
		var ge uint64
		if int64(d[c]) >= e.T[c] {
			ge = 1
		}
		dst[c/bitpack.WordBits] |= ge << uint(c%bitpack.WordBits)
	}
	for w := 0; w < len(e.Flip); w++ {
		dst[w] ^= e.Flip[w]
	}
}

// legacyConvEpilogue is the old filter-major conv ladder: the filter
// block and destination word are indexed per filter, leaving a checked
// slice and a checked scatter inside the K loop.
func legacyConvEpilogue(f kernels.XorPopRowsFunc, rows [][]uint64, fw []uint64, fstride int, n32 int32, e *kernels.Epilogue, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	n := int64(n32)
	for k := 0; k < e.K; k++ {
		acc := f(rows, fw[k*fstride:(k+1)*fstride])
		d := n - 2*int64(acc)
		ge := uint64(((d-e.T[k])>>63)+1) & 1
		dst[k/bitpack.WordBits] |= ge << uint(k%bitpack.WordBits)
	}
	for w := 0; w < len(e.Flip); w++ {
		dst[w] ^= e.Flip[w]
	}
}
