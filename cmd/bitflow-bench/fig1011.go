package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"bitflow/internal/bench"
	"bitflow/internal/gpusim"
	"bitflow/internal/graph"
	"bitflow/internal/paperdata"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

// phiThreads is the paper's Xeon Phi 7210 configuration, the machine on
// which BitFlow beats the GTX 1080.
const phiThreads = 64

// runFig10 regenerates paper Fig. 10: per-operator wall-clock time of
// BitFlow against the float operator on a GTX 1080 (simulated — see
// internal/gpusim). On hosts with fewer cores than the paper's machines
// a modeled 64-thread time (measured single-thread time ÷ the documented
// scaling model) is printed alongside.
func runFig10(feat sched.Features) error {
	fmt.Println("== Fig. 10: per-operator wall clock, BitFlow (CPU) vs GTX 1080 float (simulated) ==")
	dev := gpusim.GTX1080()
	threads := bench.PhysicalCores()
	t := bench.NewTable("op", "bitflow(measured)", "bitflow(model 64t)", "gtx1080(sim)", "model64t/gpu")
	for _, cfg := range ops() {
		or, err := buildRunners(cfg, feat, *flagSeed)
		if err != nil {
			return err
		}
		t1 := measure(or.bitflow, 1)
		tb := t1
		if threads > 1 {
			tb = measure(or.bitflow, threads)
		}
		serial, mem := scaleFracs(cfg)
		model := bench.ScalingModel{Units: or.units, SerialFrac: serial, MemBoundFrac: mem}
		t64 := time.Duration(float64(t1) / model.Speedup(phiThreads))
		tg := dev.OpTime(cfg)
		t.Row(cfg.Name, bench.Ms(tb), bench.Ms(t64), bench.Ms(tg),
			fmt.Sprintf("%.2f", float64(t64)/float64(tg)))
	}
	t.Render(os.Stdout)
	fmt.Printf("\n  measured with %d thread(s); 'model 64t' applies the scaling model of\n", threads)
	fmt.Println("  internal/bench/scaling.go, standing in for the paper's 64-core Xeon Phi.")
	fmt.Println()
	return nil
}

// runFig11 regenerates paper Fig. 11: end-to-end VGG-16/19 inference
// time, BitFlow vs the simulated GTX 1080, with the paper's numbers for
// all three of its platforms alongside, plus the modeled 64-thread time.
func runFig11(feat sched.Features) error {
	fmt.Println("== Fig. 11: VGG end-to-end inference time ==")
	dev := gpusim.GTX1080()
	threads := bench.PhysicalCores()
	ws := graph.RandomWeights{Seed: *flagSeed}

	type netCase struct {
		name  string
		build func() (*graph.Network, error)
		gpu   time.Duration
		paper paperdata.Fig11Row
	}
	cases := []netCase{}
	if *flagQuick {
		cases = append(cases, netCase{
			name:  "TinyVGG (quick mode)",
			build: func() (*graph.Network, error) { return graph.TinyVGG(feat, ws) },
		})
	} else {
		cases = append(cases,
			netCase{"VGG16", func() (*graph.Network, error) { return graph.VGG16(feat, ws) }, dev.VGG16Time(), paperdata.Fig11[0]},
			netCase{"VGG19", func() (*graph.Network, error) { return graph.VGG19(feat, ws) }, dev.VGG19Time(), paperdata.Fig11[1]},
		)
	}

	t := bench.NewTable("network", "bitflow (this host)", "model 64t", "gtx1080(sim)",
		"paper gpu", "paper i7", "paper phi")
	perLayer := map[string][]graph.LayerTiming{}
	order := []string{}
	for _, c := range cases {
		net, err := c.build()
		if err != nil {
			return err
		}
		net.Threads = threads
		x := workload.RandTensor(workload.NewRNG(*flagSeed), net.InH, net.InW, net.InC)
		// Drop the build's transient float weights before timing —
		// their collection otherwise pollutes the first samples.
		runtime.GC()
		net.Infer(x) // warm-up
		var timings []graph.LayerTiming
		dur := bench.Measure(*flagRuns, 0, func() {
			_, timings = net.InferTimed(x)
		})
		perLayer[c.name] = timings
		order = append(order, c.name)

		modeled := modelNetworkTime(timings, phiThreads)
		paperGPU, paperI7, paperPhi := "-", "-", "-"
		if c.paper.Network != "" {
			paperGPU = fmt.Sprintf("%.2fms", c.paper.GTX1080)
			paperI7 = fmt.Sprintf("%.2fms", c.paper.I7)
			paperPhi = fmt.Sprintf("%.2fms", c.paper.XeonPhi)
		}
		gpu := "-"
		if c.gpu > 0 {
			gpu = bench.Ms(c.gpu)
		}
		t.Row(c.name, bench.Ms(dur), bench.Ms(modeled), gpu, paperGPU, paperI7, paperPhi)
	}
	t.Render(os.Stdout)
	fmt.Printf("\n  paper headline: BitFlow on 64-core Phi beats the GTX 1080 by %.1f%% (VGG16) / %.1f%% (VGG19).\n",
		100*(paperdata.Fig11PhiSpeedupVGG16-1), 100*(paperdata.Fig11PhiSpeedupVGG19-1))
	fmt.Printf("  this host runs %d thread(s); 'model 64t' divides each layer's measured time by\n", threads)
	fmt.Println("  the documented scaling model at 64 threads (Phi stand-in).")
	fmt.Println()

	for _, name := range order {
		fmt.Printf("  per-layer breakdown: %s\n", name)
		lt := bench.NewTable("layer", "kind", "time", "units")
		for _, l := range perLayer[name] {
			lt.Row(l.Name, l.Kind, bench.Ms(l.Duration), l.Units)
		}
		lt.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

// modelNetworkTime predicts the end-to-end time at p threads by scaling
// each layer's measured single-thread time with the load-balance model
// (serial stages — input packing — are left unscaled).
func modelNetworkTime(timings []graph.LayerTiming, p int) time.Duration {
	var total time.Duration
	for _, l := range timings {
		if l.Units <= 1 {
			total += l.Duration
			continue
		}
		var serial, mem float64
		switch l.Kind {
		case "pool":
			serial, mem = 0.01, 0.35
		case "fc":
			serial, mem = 0.005, 0.10
		default:
			// conv and fused conv+pool nodes: XOR+popcount dominated, the
			// fused pool epilogue adds no extra memory-bound phase.
			serial, mem = 0.005, 0.04
		}
		m := bench.ScalingModel{Units: l.Units, SerialFrac: serial, MemBoundFrac: mem}
		total += time.Duration(float64(l.Duration) / m.Speedup(p))
	}
	return total
}
