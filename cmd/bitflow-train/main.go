// Command bitflow-train trains a fully binarized classifier from scratch
// (sign weights/activations, straight-through estimator) on a synthetic
// dataset and exports it as a packed BitFlow model — the complete
// train → deploy path:
//
//	bitflow-train -out model.bflw
//	bitflow -load model.bflw -threads 2
//
// The exported model's logits are bit-exact with the trainer's: the
// engine folds the trained biases into integer sign thresholds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bitflow/internal/nn"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

var (
	flagOut     = flag.String("out", "model.bflw", "output model file")
	flagTask    = flag.String("task", "clusters", "dataset: clusters, rings, hard (MLP) or stripes (ConvNet)")
	flagDim     = flag.Int("dim", 16, "input dimensionality")
	flagClasses = flag.Int("classes", 4, "class count")
	flagHidden  = flag.String("hidden", "48,48", "comma-separated hidden layer sizes")
	flagEpochs  = flag.Int("epochs", 40, "training epochs")
	flagSamples = flag.Int("samples", 2400, "dataset size")
	flagSeed    = flag.Uint64("seed", 1, "data/init seed")
)

func main() {
	flag.Parse()

	hidden, err := parseHidden(*flagHidden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-train: %v\n", err)
		os.Exit(2)
	}

	if *flagTask == "stripes" {
		trainConvNet(hidden)
		return
	}

	r := workload.NewRNG(*flagSeed)
	var data nn.Dataset
	switch *flagTask {
	case "clusters":
		data = nn.Clusters(r, *flagSamples, *flagDim, *flagClasses, 1.0)
	case "rings":
		data = nn.Rings(r, *flagSamples, *flagDim, *flagClasses)
	case "hard":
		data = nn.HardClusters(r, *flagSamples, *flagDim, *flagClasses)
	default:
		fmt.Fprintf(os.Stderr, "bitflow-train: unknown task %q\n", *flagTask)
		os.Exit(2)
	}
	train, test := data.Split(0.8)

	sizes := append(append([]int{data.Dim}, hidden...), data.Classes)
	m := nn.NewMLP(workload.NewRNG(*flagSeed+1), sizes, true)
	m.BinarizeInput = true

	cfg := nn.TrainConfig{Epochs: *flagEpochs, BatchSize: 16, LR: 0.05, Seed: *flagSeed + 2}
	fmt.Printf("training binarized MLP %v on %q (%d train / %d test samples, %d epochs)...\n",
		sizes, *flagTask, train.Len(), test.Len(), cfg.Epochs)
	loss := m.Train(train, cfg)
	fmt.Printf("final epoch loss %.4f, train accuracy %.1f%%, test accuracy %.1f%%\n",
		loss, 100*m.Accuracy(train), 100*m.Accuracy(test))

	net, err := nn.Export(m, fmt.Sprintf("trained-%s", *flagTask), sched.Detect())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-train: export: %v\n", err)
		os.Exit(1)
	}

	// Engine-side verification before shipping the artifact: the packed
	// network must agree with the trainer on every test sample.
	agree := 0
	for i, x := range test.X {
		logits := net.Infer(tensor.FromSlice(1, 1, len(x), x))
		best := 0
		for c, v := range logits {
			if v > logits[best] {
				best = c
			}
		}
		if best == m.Predict(test.X[i]) {
			agree++
		}
	}
	fmt.Printf("engine/trainer prediction agreement on test set: %d/%d\n", agree, test.Len())
	if agree != test.Len() {
		fmt.Fprintln(os.Stderr, "bitflow-train: exported engine disagrees with trainer; refusing to save")
		os.Exit(1)
	}

	f, err := os.Create(*flagOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-train: %v\n", err)
		os.Exit(1)
	}
	nBytes, err := net.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-train: saving: %v\n", err)
		os.Exit(1)
	}
	ms := net.ModelSize()
	fmt.Printf("saved %s (%d bytes, %.1fx smaller than float32 weights)\n", *flagOut, nBytes, ms.Compression())
	fmt.Printf("run it: go run ./cmd/bitflow -load %s\n", *flagOut)
}

// trainConvNet is the convolutional path: a binarized CNN on the stripes
// orientation task, exported through ExportConvNet.
func trainConvNet(hidden []int) {
	r := workload.NewRNG(*flagSeed)
	const size = 12
	data := nn.Stripes(r, *flagSamples, size, min(*flagClasses, 4))
	train, test := data.Split(0.8)

	if len(hidden) == 0 {
		hidden = []int{64}
	}
	m := nn.NewConvNet(workload.NewRNG(*flagSeed+1), size, size, 1,
		[]nn.ConvSpec{{Filters: 64, Pool: true}}, hidden, data.Classes, true)
	m.BinarizeInput = true

	// Binarized conv training wants a gentler step than the MLP path.
	cfg := nn.TrainConfig{Epochs: *flagEpochs, BatchSize: 16, LR: 0.01, Seed: *flagSeed + 2}
	fmt.Printf("training binarized ConvNet (conv64+pool, dense %v) on stripes (%d train / %d test, %d epochs)...\n",
		hidden, train.Len(), test.Len(), cfg.Epochs)
	loss := m.Train(train, cfg)
	fmt.Printf("final epoch loss %.4f, train accuracy %.1f%%, test accuracy %.1f%%\n",
		loss, 100*m.Accuracy(train), 100*m.Accuracy(test))

	net, err := nn.ExportConvNet(m, "trained-stripes", sched.Detect())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-train: export: %v\n", err)
		os.Exit(1)
	}
	agree := 0
	for i, x := range test.X {
		logits := net.Infer(x)
		best := 0
		for c, v := range logits {
			if v > logits[best] {
				best = c
			}
		}
		if best == m.Predict(test.X[i]) {
			agree++
		}
	}
	fmt.Printf("engine/trainer prediction agreement on test set: %d/%d\n", agree, test.Len())
	if agree != test.Len() {
		fmt.Fprintln(os.Stderr, "bitflow-train: exported engine disagrees with trainer; refusing to save")
		os.Exit(1)
	}
	f, err := os.Create(*flagOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-train: %v\n", err)
		os.Exit(1)
	}
	nBytes, err := net.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow-train: saving: %v\n", err)
		os.Exit(1)
	}
	ms := net.ModelSize()
	fmt.Printf("saved %s (%d bytes, %.1fx smaller than float32 weights)\n", *flagOut, nBytes, ms.Compression())
	fmt.Printf("run it: go run ./cmd/bitflow -load %s\n", *flagOut)
}

func parseHidden(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad hidden size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
