// Command bitflow runs end-to-end binarized VGG inference on random
// input and prints the logits' argmax plus a per-layer timing breakdown —
// the quickest way to see the engine work at paper scale.
//
//	bitflow -model vgg16 -threads 4 -repeat 3
//	bitflow -model tiny
package main

import (
	"flag"
	"fmt"
	"os"

	"bitflow/internal/bench"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/trace"
	"bitflow/internal/workload"
)

var (
	flagModel   = flag.String("model", "vgg16", "model to run: vgg16, vgg19, tiny")
	flagThreads = flag.Int("threads", bench.PhysicalCores(), "worker threads (multi-core parallelism)")
	flagRepeat  = flag.Int("repeat", 3, "timed inference passes")
	flagSeed    = flag.Uint64("seed", 1, "weight/input seed")
	flagLayers  = flag.Bool("layers", true, "print per-layer timing")
	flagSave    = flag.String("save", "", "write the packed model to this file and exit")
	flagLoad    = flag.String("load", "", "load a packed model file instead of building -model")
	flagTrace   = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the timed passes to this file")
)

func main() {
	flag.Parse()
	feat := sched.Detect()
	ws := graph.RandomWeights{Seed: *flagSeed}

	var (
		net *graph.Network
		err error
	)
	if *flagLoad != "" {
		f, ferr := os.Open(*flagLoad)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "bitflow: %v\n", ferr)
			os.Exit(1)
		}
		net, err = graph.Load(f, feat)
		f.Close()
	} else {
		switch *flagModel {
		case "vgg16":
			net, err = graph.VGG16(feat, ws)
		case "vgg19":
			net, err = graph.VGG19(feat, ws)
		case "tiny":
			net, err = graph.TinyVGG(feat, ws)
		default:
			fmt.Fprintf(os.Stderr, "bitflow: unknown model %q (want vgg16, vgg19 or tiny)\n", *flagModel)
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitflow: %v\n", err)
		os.Exit(1)
	}
	net.Threads = *flagThreads

	if *flagSave != "" {
		f, ferr := os.Create(*flagSave)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "bitflow: %v\n", ferr)
			os.Exit(1)
		}
		nBytes, serr := net.Save(f)
		if cerr := f.Close(); serr == nil {
			serr = cerr
		}
		if serr != nil {
			fmt.Fprintf(os.Stderr, "bitflow: saving model: %v\n", serr)
			os.Exit(1)
		}
		fmt.Printf("saved %s: %.1f MB packed model -> %s\n", net.Name, float64(nBytes)/(1<<20), *flagSave)
		return
	}

	ms := net.ModelSize()
	fmt.Printf("%s: %d layers, %d weights, %.1f MB binarized (%.1fx compression), %.1f MB pre-allocated activations\n",
		net.Name, len(net.Layers()), ms.Weights,
		float64(ms.BinarizedBytes)/(1<<20), ms.Compression(),
		float64(net.ActivationBytes())/(1<<20))
	fmt.Printf("scheduler: %s; threads: %d\n\n", feat, net.Threads)

	x := workload.RandTensor(workload.NewRNG(*flagSeed+1), net.InH, net.InW, net.InC)
	net.Infer(x) // warm-up
	var logits []float32
	var timings []graph.LayerTiming
	tw := trace.NewWriter(net.Name)
	for i := 0; i < max(*flagRepeat, 1); i++ {
		logits, timings = net.InferTimed(x)
		tw.AddPass(timings)
		var total float64
		for _, lt := range timings {
			total += float64(lt.Duration.Microseconds()) / 1000
		}
		fmt.Printf("pass %d: %.2f ms\n", i+1, total)
	}
	if *flagTrace != "" {
		tf, terr := os.Create(*flagTrace)
		if terr == nil {
			terr = tw.Flush(tf)
			if cerr := tf.Close(); terr == nil {
				terr = cerr
			}
		}
		if terr != nil {
			fmt.Fprintf(os.Stderr, "bitflow: writing trace: %v\n", terr)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace (%d passes) to %s\n", tw.Passes(), *flagTrace)
	}

	if *flagLayers {
		fmt.Println("\nper-layer breakdown (last pass):")
		t := bench.NewTable("layer", "kind", "time")
		for _, lt := range timings {
			t.Row(lt.Name, lt.Kind, bench.Ms(lt.Duration))
		}
		t.Render(os.Stdout)
	}

	best, bestV := 0, logits[0]
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	fmt.Printf("\nargmax class: %d (logit %.0f of %d classes)\n", best, bestV, net.Classes)
}
