// Command bitflow-info prints the vector execution scheduler's view of
// this machine: the detected features, the kernel tier table (the paper's
// Table I analogue), and the operator→kernel mapping for the VGG channel
// ladder (the paper's Fig. 6). With -model it instead loads a .bflw
// artifact and prints its per-layer kernel-compression report.
package main

import (
	"flag"
	"fmt"
	"os"

	"bitflow/internal/ait"
	"bitflow/internal/bench"
	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

var flagModel = flag.String("model", "", "path to a .bflw artifact: print its kernel-compression report and exit")

func main() {
	flag.Parse()
	feat := sched.Detect()
	if *flagModel != "" {
		if err := modelReport(*flagModel, feat); err != nil {
			fmt.Fprintf(os.Stderr, "bitflow-info: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("BitFlow vector execution scheduler report")
	fmt.Println()
	fmt.Printf("  hardware detector: %s\n", feat)
	fmt.Printf("  usable cores:      %d\n", bench.PhysicalCores())
	fmt.Printf("  width cap env:     %s (set to 64/128/256/512 to emulate narrower machines)\n", sched.MaxWidthEnv)
	fmt.Println()

	rep := exec.Default().Report()
	fmt.Println("execution pool (internal/exec — shared multi-core dispatch):")
	fmt.Printf("  persistent workers: %d (budget source: %s)\n", rep.Workers, rep.Source)
	fmt.Printf("  GOMAXPROCS:         %d (pinned at pool creation)\n", rep.GOMAXPROCS)
	fmt.Printf("  NumCPU:             %d\n", rep.NumCPU)
	fmt.Printf("  dispatches so far:  %d (busy now: %d)\n", rep.Dispatches, rep.Busy)
	fmt.Println()

	fmt.Println("kernel tiers (Table I analogue — Go multi-word kernels standing in for SIMD):")
	kt := bench.NewTable("tier", "bits", "words/step", "simulates")
	sim := map[kernels.Width]string{
		kernels.W64:  "scalar bitwise ops (uint64 XOR + POPCNT)",
		kernels.W128: "SSE _mm_xor_si128 + popcount",
		kernels.W256: "AVX2 _mm256_xor_si256 + popcount",
		kernels.W512: "AVX-512 _mm512_xor_si512 + _mm512_popcnt_epi64",
	}
	for i := len(kernels.Widths) - 1; i >= 0; i-- {
		w := kernels.Widths[i]
		kt.Row(w, w.Bits(), w.Words(), sim[w])
	}
	kt.Render(os.Stdout)
	fmt.Println()

	fmt.Println("operator → kernel mapping for the VGG channel ladder (Fig. 6):")
	mt := bench.NewTable("operator", "channels", "kernel", "packed words", "pad lanes")
	rows := []struct {
		op string
		c  int
	}{
		{"conv1.1", 3}, {"conv2.1", 64}, {"conv3.1", 128}, {"conv4.1", 256}, {"conv5.1", 512},
		{"fc6 (N)", 7 * 7 * 512}, {"fc7 (N)", 4096},
	}
	for _, r := range rows {
		p := sched.Select(r.c, feat)
		mt.Row(r.op, r.c, p.Width, p.Words, p.PadLanes())
	}
	mt.Render(os.Stdout)
	fmt.Println()

	fmt.Println("arithmetic intensity of the Table IV convolutions (§III-A):")
	at := bench.NewTable("op", "intrinsic AIT", "im2col AIT (float)", "im2col AIT (binary/64)")
	for _, cfg := range workload.PaperOps() {
		if cfg.Kind != workload.OpConv {
			continue
		}
		c := ait.Conv{H: cfg.H, W: cfg.W, C: cfg.C, K: cfg.K, KH: cfg.KH, KW: cfg.KW}
		b := ait.Binary{Conv: c, Factor: 64}
		at.Row(cfg.Name,
			fmt.Sprintf("%.1f", c.IntrinsicAIT()),
			fmt.Sprintf("%.1f", c.Im2colAIT()),
			fmt.Sprintf("%.2f", b.Im2colAIT()))
	}
	at.Render(os.Stdout)
}

// modelReport loads an artifact and prints the load-time planning view
// the serving stack acts on: the per-layer kernel-compression analysis
// (duplicated packed filter words per Silfa & Arnau) and which layers'
// forwards actually run the compressed path.
func modelReport(path string, feat sched.Features) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	net, err := graph.Load(f, feat)
	if err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	fmt.Printf("model %q (%dx%dx%d → %d classes, %d layers, %d fused pair(s))\n",
		net.Name, net.InH, net.InW, net.InC, net.Classes, len(net.Layers()), net.Fusion().Pairs)
	fmt.Println()
	fmt.Printf("kernel compression (threshold ratio ≥ %.1f):\n", kernels.CompressMinRatio)
	ct := bench.NewTable("layer", "kind", "channels", "positions", "words", "distinct", "ratio", "compressed")
	for _, lc := range net.Compression() {
		ct.Row(lc.Layer, lc.Kind, lc.Channels, lc.Positions,
			lc.TotalWords, lc.DistinctWords,
			fmt.Sprintf("%.2f", lc.Ratio),
			map[bool]string{true: "yes", false: "no"}[lc.Selected])
	}
	ct.Render(os.Stdout)
	fmt.Println()
	fmt.Printf("compressed layers: %d — each distinct word's XOR+popcount runs once and scatters to all duplicates\n",
		net.CompressedLayers())
	return nil
}
