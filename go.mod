module bitflow

go 1.22
