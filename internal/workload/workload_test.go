package workload

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(7).Uint64() == c.Uint64() && i > 0 {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
		if v := r.PM1(); v != 1 && v != -1 {
			t.Fatalf("PM1 = %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(2)
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Norm mean %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("Norm variance %v", variance)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPM1TensorBalanced(t *testing.T) {
	r := NewRNG(3)
	x := PM1Tensor(r, 10, 10, 64)
	var pos int
	for _, v := range x.Data {
		if v != 1 && v != -1 {
			t.Fatalf("non-±1 value %v", v)
		}
		if v == 1 {
			pos++
		}
	}
	frac := float64(pos) / float64(len(x.Data))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("positive fraction %v far from 0.5", frac)
	}
}

func TestPaperOpsMatchesTableIV(t *testing.T) {
	ops := PaperOps()
	if len(ops) != 8 {
		t.Fatalf("%d ops, Table IV has 8", len(ops))
	}
	// The VGG-16 shapes of Table IV.
	expect := map[string][4]int{ // H, W, C, K
		"conv2.1": {112, 112, 64, 128},
		"conv3.1": {56, 56, 128, 256},
		"conv4.1": {28, 28, 256, 512},
		"conv5.1": {14, 14, 512, 512},
		"pool4":   {28, 28, 512, 0},
		"pool5":   {14, 14, 512, 0},
	}
	for name, want := range expect {
		op, ok := FindOp(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if op.H != want[0] || op.W != want[1] || op.C != want[2] {
			t.Errorf("%s: %dx%dx%d", name, op.H, op.W, op.C)
		}
		if op.Kind == OpConv && op.K != want[3] {
			t.Errorf("%s: K=%d want %d", name, op.K, want[3])
		}
	}
	fc6, _ := FindOp("fc6")
	if fc6.N != 25088 || fc6.K != 4096 {
		t.Errorf("fc6 %d→%d", fc6.N, fc6.K)
	}
	fc7, _ := FindOp("fc7")
	if fc7.N != 4096 || fc7.K != 4096 {
		t.Errorf("fc7 %d→%d", fc7.N, fc7.K)
	}
}

func TestOpConfigOutDims(t *testing.T) {
	conv, _ := FindOp("conv2.1")
	if conv.OutH() != 112 || conv.OutW() != 112 || conv.OutC() != 128 {
		t.Errorf("conv2.1 out %dx%dx%d", conv.OutH(), conv.OutW(), conv.OutC())
	}
	pool, _ := FindOp("pool4")
	if pool.OutH() != 14 || pool.OutW() != 14 || pool.OutC() != 512 {
		t.Errorf("pool4 out %dx%dx%d", pool.OutH(), pool.OutW(), pool.OutC())
	}
	fc, _ := FindOp("fc6")
	if fc.OutH() != 1 || fc.OutW() != 4096 {
		t.Errorf("fc6 out %dx%d", fc.OutH(), fc.OutW())
	}
}

func TestSmallOpsSameKernelTiers(t *testing.T) {
	// The -quick shapes must keep the channel structure so the
	// scheduler picks the same kernels as at paper scale.
	paper := PaperOps()
	small := SmallOps()
	if len(small) != len(paper) {
		t.Fatalf("small %d vs paper %d", len(small), len(paper))
	}
	for i := range small {
		if small[i].Kind != paper[i].Kind {
			t.Errorf("op %d kind mismatch", i)
		}
		if small[i].Kind != OpFC && small[i].C != paper[i].C {
			t.Errorf("%s: C=%d vs paper %d", small[i].Name, small[i].C, paper[i].C)
		}
	}
}

func TestFindOpMissing(t *testing.T) {
	if _, ok := FindOp("conv9.9"); ok {
		t.Error("found nonexistent op")
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv.String() != "conv" || OpFC.String() != "fc" || OpPool.String() != "pool" {
		t.Error("kind names wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Error("unknown kind name wrong")
	}
}
