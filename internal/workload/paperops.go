package workload

import "fmt"

// OpKind classifies a benchmark operator from paper Table IV.
type OpKind int

const (
	// OpConv is a 3×3, stride-1, pad-1 binary convolution.
	OpConv OpKind = iota
	// OpFC is a binary fully connected operator (M=1 bgemm).
	OpFC
	// OpPool is a 2×2, stride-2 binary max pool.
	OpPool
)

// String returns the kind name.
func (k OpKind) String() string {
	switch k {
	case OpConv:
		return "conv"
	case OpFC:
		return "fc"
	case OpPool:
		return "pool"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// OpConfig describes one benchmark operator row of paper Table IV.
// For convolutions H, W, C are the input feature-map dimensions and K the
// number of filters (3×3, stride 1, pad 1 — "The VGG network uses 3×3
// filters exclusively"). For fully connected operators N is the number of
// input neurons and K the number of output neurons (weight matrix N×K,
// input 1×N). For pools H, W, C describe the input and the window is 2×2
// with stride 2.
type OpConfig struct {
	Name   string
	Kind   OpKind
	H, W   int
	C      int
	K      int
	N      int // FC only: input neurons
	KH, KW int // conv/pool window
	Stride int
	Pad    int
}

// PaperOps lists the eight benchmark operators of paper Table IV with the
// standard VGG-16 shapes (the table's own numbers): conv2.1, conv3.1,
// conv4.1, conv5.1, fc6, fc7, pool4, pool5.
func PaperOps() []OpConfig {
	return []OpConfig{
		{Name: "conv2.1", Kind: OpConv, H: 112, W: 112, C: 64, K: 128, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv3.1", Kind: OpConv, H: 56, W: 56, C: 128, K: 256, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv4.1", Kind: OpConv, H: 28, W: 28, C: 256, K: 512, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv5.1", Kind: OpConv, H: 14, W: 14, C: 512, K: 512, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "fc6", Kind: OpFC, N: 7 * 7 * 512, K: 4096},
		{Name: "fc7", Kind: OpFC, N: 4096, K: 4096},
		{Name: "pool4", Kind: OpPool, H: 28, W: 28, C: 512, KH: 2, KW: 2, Stride: 2},
		{Name: "pool5", Kind: OpPool, H: 14, W: 14, C: 512, KH: 2, KW: 2, Stride: 2},
	}
}

// FindOp returns the Table IV config with the given name.
func FindOp(name string) (OpConfig, bool) {
	for _, op := range PaperOps() {
		if op.Name == name {
			return op, true
		}
	}
	return OpConfig{}, false
}

// SmallOps returns scaled-down versions of the Table IV operators for use
// in unit tests and -short benchmark runs: same channel structure (so the
// scheduler picks the same kernels), smaller spatial extents.
func SmallOps() []OpConfig {
	return []OpConfig{
		{Name: "conv2.1s", Kind: OpConv, H: 14, W: 14, C: 64, K: 32, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv3.1s", Kind: OpConv, H: 10, W: 10, C: 128, K: 32, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv4.1s", Kind: OpConv, H: 8, W: 8, C: 256, K: 32, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "conv5.1s", Kind: OpConv, H: 6, W: 6, C: 512, K: 32, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Name: "fc6s", Kind: OpFC, N: 2048, K: 256},
		{Name: "fc7s", Kind: OpFC, N: 1024, K: 256},
		{Name: "pool4s", Kind: OpPool, H: 8, W: 8, C: 512, KH: 2, KW: 2, Stride: 2},
		{Name: "pool5s", Kind: OpPool, H: 6, W: 6, C: 512, KH: 2, KW: 2, Stride: 2},
	}
}

// OutH returns the output height of the operator.
func (c OpConfig) OutH() int {
	if c.Kind == OpFC {
		return 1
	}
	return (c.H+2*c.Pad-c.KH)/c.Stride + 1
}

// OutW returns the output width of the operator.
func (c OpConfig) OutW() int {
	if c.Kind == OpFC {
		return c.K
	}
	return (c.W+2*c.Pad-c.KW)/c.Stride + 1
}

// OutC returns the output channel count of the operator.
func (c OpConfig) OutC() int {
	switch c.Kind {
	case OpConv:
		return c.K
	case OpPool:
		return c.C
	default:
		return c.K
	}
}

// String renders the config as a Table IV row.
func (c OpConfig) String() string {
	switch c.Kind {
	case OpFC:
		return fmt.Sprintf("%-8s %s N=%d K=%d", c.Name, c.Kind, c.N, c.K)
	default:
		return fmt.Sprintf("%-8s %s %dx%dx%d K=%d %dx%d s=%d p=%d",
			c.Name, c.Kind, c.H, c.W, c.C, c.K, c.KH, c.KW, c.Stride, c.Pad)
	}
}
