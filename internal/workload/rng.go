// Package workload provides deterministic workload generation for tests,
// benchmarks and examples: a seedable SplitMix64 RNG, random ±1 and float
// tensors, and the paper's Table IV benchmark operator configurations.
package workload

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is deterministic,
// allocation-free and fast, so benchmark inputs are reproducible across
// runs and machines without importing math/rand state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a pseudo-random float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Norm returns a pseudo-random sample from the standard normal
// distribution (Box–Muller).
func (r *RNG) Norm() float64 {
	// Rejection-free Box–Muller; u1 in (0,1] to avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// PM1 returns a pseudo-random ±1 value.
func (r *RNG) PM1() float32 {
	if r.Uint64()&1 == 0 {
		return -1
	}
	return 1
}
