package workload

import (
	"strings"
	"testing"
)

func TestGeneratorsShapesAndRanges(t *testing.T) {
	r := NewRNG(20)
	x := RandTensor(r, 3, 4, 5)
	if x.H != 3 || x.W != 4 || x.C != 5 {
		t.Fatal("RandTensor shape")
	}
	for _, v := range x.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("RandTensor value %v out of [-1,1)", v)
		}
	}
	f := RandFilter(r, 2, 3, 3, 4)
	if f.K != 2 || f.C != 4 {
		t.Fatal("RandFilter shape")
	}
	pf := PM1Filter(r, 2, 3, 3, 4)
	for _, v := range pf.Data {
		if v != 1 && v != -1 {
			t.Fatalf("PM1Filter value %v", v)
		}
	}
	m := RandMatrix(r, 3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatal("RandMatrix shape")
	}
	pm := PM1Matrix(r, 3, 4)
	for _, v := range pm.Data {
		if v != 1 && v != -1 {
			t.Fatalf("PM1Matrix value %v", v)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandTensor(NewRNG(21), 4, 4, 4)
	b := RandTensor(NewRNG(21), 4, 4, 4)
	if !a.Equal(b) {
		t.Error("RandTensor not deterministic")
	}
}

func TestOpConfigString(t *testing.T) {
	conv, _ := FindOp("conv2.1")
	s := conv.String()
	for _, want := range []string{"conv2.1", "112x112x64", "K=128"} {
		if !strings.Contains(s, want) {
			t.Errorf("conv String %q missing %q", s, want)
		}
	}
	fc, _ := FindOp("fc6")
	if !strings.Contains(fc.String(), "N=25088") {
		t.Errorf("fc String %q", fc.String())
	}
	pool, _ := FindOp("pool4")
	if !strings.Contains(pool.String(), "pool") {
		t.Errorf("pool String %q", pool.String())
	}
}

func TestOutCForFC(t *testing.T) {
	fc, _ := FindOp("fc7")
	if fc.OutC() != 4096 {
		t.Errorf("fc7 OutC %d", fc.OutC())
	}
}
