package workload

import "bitflow/internal/tensor"

// RandTensor returns an H×W×C tensor with values drawn uniformly from
// [-1, 1).
func RandTensor(r *RNG, h, w, c int) *tensor.Tensor {
	t := tensor.New(h, w, c)
	for i := range t.Data {
		t.Data[i] = 2*r.Float32() - 1
	}
	return t
}

// PM1Tensor returns an H×W×C tensor with values drawn from {−1, +1}.
func PM1Tensor(r *RNG, h, w, c int) *tensor.Tensor {
	t := tensor.New(h, w, c)
	for i := range t.Data {
		t.Data[i] = r.PM1()
	}
	return t
}

// RandFilter returns a K×KH×KW×C filter bank with values in [-1, 1).
func RandFilter(r *RNG, k, kh, kw, c int) *tensor.Filter {
	f := tensor.NewFilter(k, kh, kw, c)
	for i := range f.Data {
		f.Data[i] = 2*r.Float32() - 1
	}
	return f
}

// PM1Filter returns a K×KH×KW×C filter bank with values from {−1, +1}.
func PM1Filter(r *RNG, k, kh, kw, c int) *tensor.Filter {
	f := tensor.NewFilter(k, kh, kw, c)
	for i := range f.Data {
		f.Data[i] = r.PM1()
	}
	return f
}

// RandMatrix returns an r×c matrix with values in [-1, 1).
func RandMatrix(rng *RNG, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float32() - 1
	}
	return m
}

// PM1Matrix returns an r×c matrix with values from {−1, +1}.
func PM1Matrix(rng *RNG, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.PM1()
	}
	return m
}
