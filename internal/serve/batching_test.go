package serve

// Batch-mode serving tests: the HTTP API must be byte-compatible with the
// unbatched path, /statusz gains the batch section, panics stay isolated,
// and SIGTERM-style drain completes every accepted request.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bitflow/internal/workload"
)

// TestBatchedServerMatchesSequential runs concurrent requests against a
// batching server and checks every response equals the sequential
// reference — same API shape, same logits, bit for bit.
func TestBatchedServerMatchesSequential(t *testing.T) {
	net := testNetwork(t)
	ref := testNetwork(t) // same seed → same weights
	s := NewWithConfig(net, Config{
		Replicas:    1,
		Batching:    true,
		BatchWindow: 5 * time.Millisecond,
		MaxBatch:    4,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const N = 12
	r := workload.NewRNG(171)
	xs := make([][]float32, N)
	want := make([][]float32, N)
	for i := range xs {
		x := workload.RandTensor(r, net.InH, net.InW, net.InC)
		xs[i] = x.Data
		want[i] = ref.Infer(x)
	}
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, ir := postInfer(t, ts, xs[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			for j := range want[i] {
				if ir.Logits[j] != want[i][j] {
					t.Errorf("request %d logit %d: batched %v sequential %v", i, j, ir.Logits[j], want[i][j])
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// The batch section must be live on /statusz and show dispatches.
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Batch == nil {
		t.Fatal("no batch section in /statusz with batching enabled")
	}
	if st.Batch.Batches == 0 || st.Batch.MaxOccupancy < 1 {
		t.Errorf("batch section not counting: %+v", st.Batch)
	}
	if st.Batch.MaxBatch != 4 || st.Batch.Window != "5ms" {
		t.Errorf("batch config misreported: %+v", st.Batch)
	}
	flushes := st.Batch.FlushWindowExpired + st.Batch.FlushSizeCap + st.Batch.FlushDrain
	if flushes != st.Batch.Batches {
		t.Errorf("flush reasons (%d) do not account for all %d batches", flushes, st.Batch.Batches)
	}
	if st.Metrics.OK != N {
		t.Errorf("ok=%d want %d", st.Metrics.OK, N)
	}
	if st.ReplicasAvailable != 1 {
		t.Errorf("replicas_available=%d in batch mode", st.ReplicasAvailable)
	}
}

// TestBatchingDisabledByDefault: a zero Config must not batch, and
// /statusz must not grow a batch section.
func TestBatchingDisabledByDefault(t *testing.T) {
	s := NewWithConfig(testNetwork(t), Config{})
	if s.Introspect().Batching {
		t.Fatal("batcher constructed without opting in")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Batch != nil {
		t.Fatalf("batch section present with batching off: %+v", st.Batch)
	}
}

// TestBatchedPanicIsolatedAndRecovered injects a panicking backend into a
// batching server: the poisoned request gets a 500 with code "panic", the
// worker re-clones its runner, and the server keeps answering — capacity
// intact.
func TestBatchedPanicIsolatedAndRecovered(t *testing.T) {
	net := testNetwork(t)
	fb := &faultBackend{net: net, trigger: 42.5}
	s := newServer(metaFor(net), fb, Config{
		Replicas:    1,
		Batching:    true,
		BatchWindow: time.Millisecond,
		MaxBatch:    4,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := workload.RandTensor(workload.NewRNG(172), net.InH, net.InW, net.InC)
	bad.Data[0] = 42.5
	resp, _ := postInfer(t, ts, bad.Data)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic request: status %d", resp.StatusCode)
	}
	good := workload.RandTensor(workload.NewRNG(173), net.InH, net.InW, net.InC)
	for i := 0; i < 3; i++ {
		resp, ir := postInfer(t, ts, good.Data)
		if resp.StatusCode != http.StatusOK || len(ir.Logits) != net.Classes {
			t.Fatalf("post-panic request %d: status %d", i, resp.StatusCode)
		}
	}
	if got := s.Metrics().PanicsRecovered.Load(); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}
}

// TestBatchedGracefulDrain cancels the serve context while batched
// requests sit in an open coalescing window and checks the drain flushes
// and completes them all.
func TestBatchedGracefulDrain(t *testing.T) {
	net := testNetwork(t)
	s := NewWithConfig(net, Config{
		Replicas:    1,
		Batching:    true,
		BatchWindow: 30 * time.Millisecond,
		MaxBatch:    8,
	})
	l, err := net2Listen(t)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- s.ServeListener(ctx, l, HTTPConfig{ShutdownGrace: 5 * time.Second})
	}()
	if !s.Ready() {
		t.Fatal("server not ready")
	}

	x := workload.RandTensor(workload.NewRNG(174), net.InH, net.InW, net.InC)
	body, _ := json.Marshal(InferRequest{Data: x.Data})
	const N = 5
	var wg sync.WaitGroup
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the requests enter the window
	cancel()                          // SIGTERM equivalent
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d finished with status %d during drain", i, c)
		}
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after drain")
	}
	if s.Metrics().BatchFlushDrain.Load() == 0 && s.Metrics().BatchFlushWindow.Load() == 0 {
		t.Error("no flush recorded for the drained batch")
	}
}
