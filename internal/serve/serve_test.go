package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

func testNetwork(t *testing.T) *graph.Network {
	t.Helper()
	net, err := graph.NewBuilder("srv", 8, 8, 64, sched.Detect()).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Dense("d1", 4).
		Build(graph.RandomWeights{Seed: 130})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func postInfer(t *testing.T, ts *httptest.Server, data []float32) (*http.Response, InferResponse) {
	t.Helper()
	body, _ := json.Marshal(InferRequest{Data: data})
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(testNetwork(t), 1).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestModelMetadata(t *testing.T) {
	ts := httptest.NewServer(New(testNetwork(t), 2).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Meta
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "srv" || m.Classes != 4 || m.InputH != 8 || m.InputC != 64 {
		t.Errorf("meta %+v", m)
	}
	// conv+pool fuse into one node, so the 3 declared layers serve as 2.
	if m.Replicas != 2 || m.Layers != 2 || m.FusedLayers != 1 {
		t.Errorf("meta %+v", m)
	}
	if m.Weights == 0 || m.PackedBytes == 0 {
		t.Error("missing size info")
	}
}

func TestInferMatchesDirectCall(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(net, 1).Handler())
	defer ts.Close()
	x := workload.RandTensor(workload.NewRNG(131), 8, 8, 64)
	resp, out := postInfer(t, ts, x.Data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := net.Infer(x)
	if len(out.Logits) != len(want) {
		t.Fatalf("logit count %d", len(out.Logits))
	}
	for i := range want {
		if out.Logits[i] != want[i] {
			t.Fatalf("logit %d: server %v direct %v", i, out.Logits[i], want[i])
		}
	}
	best := 0
	for i, v := range want {
		if v > want[best] {
			best = i
		}
	}
	if out.Class != best {
		t.Errorf("class %d want %d", out.Class, best)
	}
}

func TestInferRejectsBadInput(t *testing.T) {
	ts := httptest.NewServer(New(testNetwork(t), 1).Handler())
	defer ts.Close()

	resp, _ := postInfer(t, ts, make([]float32, 7)) // wrong length
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-length status %d", resp.StatusCode)
	}

	r2, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-json status %d", r2.StatusCode)
	}

	r3, err := http.Get(ts.URL + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", r3.StatusCode)
	}
}

func TestConcurrentInference(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(net, 4).Handler())
	defer ts.Close()

	const clients = 8
	inputs := make([][]float32, clients)
	want := make([][]float32, clients)
	for i := range inputs {
		x := workload.RandTensor(workload.NewRNG(uint64(140+i)), 8, 8, 64)
		inputs[i] = x.Data
		want[i] = net.Infer(x)
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				body, _ := json.Marshal(InferRequest{Data: inputs[i]})
				resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out InferResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for c := range want[i] {
					if out.Logits[c] != want[i][c] {
						errs <- &mismatchError{client: i, logit: c}
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ client, logit int }

func (e *mismatchError) Error() string {
	return "concurrent inference mismatch"
}
