// Package serve exposes a compiled BitFlow network over HTTP — the
// "deployment in practical applications" the paper's stand-alone engine
// targets (§IV). The server owns a pool of network clones (Infer is not
// concurrency-safe on one instance) and serves:
//
//	GET  /healthz  → 200 "ok"
//	GET  /model    → model metadata (name, input dims, classes, sizes)
//	POST /infer    → {"data":[...]} (NHWC floats) → logits + argmax
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"bitflow/internal/graph"
	"bitflow/internal/tensor"
)

// Server wraps a network with an HTTP handler.
type Server struct {
	meta Meta
	pool chan *graph.Network
}

// Meta is the /model response.
type Meta struct {
	Name            string  `json:"name"`
	InputH          int     `json:"input_h"`
	InputW          int     `json:"input_w"`
	InputC          int     `json:"input_c"`
	Classes         int     `json:"classes"`
	Layers          int     `json:"layers"`
	Weights         int64   `json:"weights"`
	PackedBytes     int64   `json:"packed_bytes"`
	CompressionRate float64 `json:"compression"`
	Replicas        int     `json:"replicas"`
}

// InferRequest is the /infer request body.
type InferRequest struct {
	// Data is the NHWC-flattened input, length InputH*InputW*InputC.
	Data []float32 `json:"data"`
}

// InferResponse is the /infer response body.
type InferResponse struct {
	Logits  []float32 `json:"logits"`
	Class   int       `json:"class"`
	Elapsed string    `json:"elapsed"`
}

// New builds a server around net with `replicas` clones for concurrent
// requests (minimum 1).
func New(net *graph.Network, replicas int) *Server {
	if replicas < 1 {
		replicas = 1
	}
	ms := net.ModelSize()
	s := &Server{
		meta: Meta{
			Name:   net.Name,
			InputH: net.InH, InputW: net.InW, InputC: net.InC,
			Classes:         net.Classes,
			Layers:          len(net.Layers()),
			Weights:         ms.Weights,
			PackedBytes:     ms.BinarizedBytes,
			CompressionRate: ms.Compression(),
			Replicas:        replicas,
		},
		pool: make(chan *graph.Network, replicas),
	}
	s.pool <- net
	for i := 1; i < replicas; i++ {
		s.pool <- net.Clone()
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/infer", s.handleInfer)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.meta)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	want := s.meta.InputH * s.meta.InputW * s.meta.InputC
	if len(req.Data) != want {
		http.Error(w, fmt.Sprintf("input has %d values, model wants %d (%dx%dx%d NHWC)",
			len(req.Data), want, s.meta.InputH, s.meta.InputW, s.meta.InputC), http.StatusBadRequest)
		return
	}
	x := tensor.FromSlice(s.meta.InputH, s.meta.InputW, s.meta.InputC, req.Data)

	net := <-s.pool
	t0 := time.Now()
	logits := net.Infer(x)
	elapsed := time.Since(t0)
	s.pool <- net

	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Logits:  logits,
		Class:   best,
		Elapsed: elapsed.String(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
