// Package serve exposes compiled BitFlow networks over HTTP — the
// "deployment in practical applications" the paper's stand-alone engine
// targets (§IV). The server hosts one or more named models, each a pool
// of network clones (Infer is not concurrency-safe on one instance)
// behind its own admission gate, and serves:
//
//	GET  /healthz  → 200 "ok" (liveness alias, kept for compatibility)
//	GET  /livez    → 200 while the process is up
//	GET  /readyz   → JSON per-model readiness; 503 while any model is
//	                 unready or the server drains
//	GET  /statusz  → JSON counters: requests, shed, panics, queue,
//	                 p50/p99, plus a per-model section with reload state
//	GET  /model    → default model's metadata (name, dims, classes, sizes)
//	POST /infer    → {"data":[...]} (NHWC floats) → logits + argmax
//	GET  /v1/models                 → list of served models
//	GET  /v1/models/{model}         → one model's metadata
//	POST /v1/models/{model}/infer   → /infer, routed by name
//
// Robustness contract: every infer request either completes within its
// deadline or fails fast with a typed error — the wait queue is bounded
// (429 when full, 503 when the deadline expires while queued, both with
// Retry-After), a panicking replica is recovered and re-cloned so
// capacity never shrinks, and shutdown drains in-flight requests.
// Models hot-reload atomically (see ReloadModel): a request pins one
// version for its lifetime, and a failed reload rolls back without the
// old version ever missing a beat.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bitflow/internal/batch"
	"bitflow/internal/control"
	"bitflow/internal/exec"
	"bitflow/internal/faultinject"
	"bitflow/internal/graph"
	"bitflow/internal/registry"
	"bitflow/internal/resilience"
	"bitflow/internal/tensor"
)

// Config tunes one model's serving resilience layer. The zero value of
// any field selects a sensible default.
type Config struct {
	// Replicas is the number of network clones (concurrent inferences).
	// Minimum 1.
	Replicas int
	// MaxQueue bounds how many requests may wait for a free replica
	// before new arrivals are shed with 429. Default max(16, 4×Replicas).
	MaxQueue int
	// RequestTimeout is the per-request deadline covering queue wait.
	// A request still queued when it expires is shed with 503.
	// Default 30s.
	RequestTimeout time.Duration

	// Batching enables dynamic micro-batching: concurrent requests
	// coalesce (up to MaxBatch, waiting at most BatchWindow) and run
	// through the batched forward path, so packed filter words are
	// loaded once per layer per batch. Off by default — it trades a
	// bounded amount of latency for throughput, a call the operator
	// makes explicitly. The HTTP API is unchanged either way.
	Batching bool
	// BatchWindow bounds how long the first request of a batch waits
	// for company. Default 2ms.
	BatchWindow time.Duration
	// MaxBatch caps how many requests share one forward pass. Default 8.
	MaxBatch int

	// Exec is the base execution context attached to every replica: the
	// shared dispatch pool plus the per-inference thread budget. All
	// replicas dispatch onto this one context, so total parallelism is
	// bounded by its pool no matter how many replicas run. nil derives a
	// context from the network's Threads field on the process-wide
	// default pool (the legacy behavior).
	Exec *exec.Ctx

	// Autoscale, when non-nil, runs the adaptive serving loop for this
	// model: a per-model controller retunes batch window, max-batch, and
	// replica count within the declared bounds (see AutoscaleConfig).
	// The Replicas/BatchWindow/MaxBatch fields above become the STATIC
	// geometry: the starting point, and the configuration the controller
	// reverts to if its signal source degrades.
	Autoscale *AutoscaleConfig
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.Replicas
		if c.MaxQueue < 16 {
			c.MaxQueue = 16
		}
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Batching {
		if c.BatchWindow <= 0 {
			c.BatchWindow = 2 * time.Millisecond
		}
		if c.MaxBatch <= 0 {
			c.MaxBatch = 8
		}
	}
	if c.Autoscale != nil {
		// Derive unset bounds from the (now-defaulted) static geometry;
		// a fresh pointer so the caller's struct is never mutated.
		ac := c.Autoscale.withDefaults(c)
		c.Autoscale = &ac
	}
	return c
}

// backend is the inference surface the pool manages. graph.Network is the
// production implementation; tests substitute panicking or slow backends
// to exercise the failure paths. infer receives the per-request context
// so cancellation and deadlines propagate into the forward pass.
type backend interface {
	infer(ctx context.Context, x *tensor.Tensor) ([]float32, error)
	clone() backend
}

// execAttacher marks backends that accept an execution context. The
// server attaches one base context (pool + budget + metrics observer)
// to the first backend before warm-up; clones inherit it, so every
// replica shares the same pool and feeds the same layer stats.
type execAttacher interface {
	attachExec(base *exec.Ctx, obs exec.Observer) *exec.Ctx
}

type netBackend struct{ net *graph.Network }

func (b netBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	return b.net.InferContext(ctx, x)
}
func (b netBackend) clone() backend { return netBackend{net: b.net.Clone()} }

func (b netBackend) attachExec(base *exec.Ctx, obs exec.Observer) *exec.Ctx {
	if base == nil {
		base = exec.Threads(b.net.Threads)
	}
	ec := base.WithObserver(obs)
	b.net.SetExec(ec)
	return ec
}

func (b netBackend) inferBatch(xs []*tensor.Tensor) ([][]float32, error) { return b.net.InferBatch(xs) }
func (b netBackend) prepareBatch(max int)                                { b.net.EnsureBatch(max) }

// batchInferer marks backends with a true batched forward path; backends
// without one (the test fakes) fall back to a per-item loop inside
// backendRunner, which keeps the batcher's scheduling behavior testable
// independently of the batched kernels.
type batchInferer interface {
	inferBatch(xs []*tensor.Tensor) ([][]float32, error)
}

// batchPreparer lets a backend pre-grow its batch buffers once, at
// startup, instead of lazily on the first full batch.
type batchPreparer interface {
	prepareBatch(max int)
}

// backendRunner adapts a backend to batch.Runner.
type backendRunner struct{ b backend }

func (r backendRunner) InferBatch(xs []*tensor.Tensor) ([][]float32, error) {
	if bi, ok := r.b.(batchInferer); ok {
		return bi.inferBatch(xs)
	}
	outs := make([][]float32, len(xs))
	for i, x := range xs {
		out, err := r.b.infer(context.Background(), x)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// Server hosts named models behind one HTTP handler. Each model owns
// its admission gate, metrics, and versioned replica sets (hot reload);
// the legacy single-model endpoints route to the default model.
type Server struct {
	reg     *registry.Registry
	byName  map[string]*model
	order   []*model
	def     *model
	started time.Time

	// draining flips once shutdown begins: /readyz fails and new infer
	// requests are refused while in-flight ones finish.
	draining atomic.Bool
}

// Meta is the /model response.
type Meta struct {
	Name        string `json:"name"`
	InputH      int    `json:"input_h"`
	InputW      int    `json:"input_w"`
	InputC      int    `json:"input_c"`
	Classes     int    `json:"classes"`
	Layers      int    `json:"layers"`
	FusedLayers int    `json:"fused_layers"`
	// CompressedLayers counts layers running the kernel-compressed
	// forward path (dedup of repeated packed filter words), as selected
	// by the load-time planning pass.
	CompressedLayers int     `json:"compressed_layers"`
	Weights          int64   `json:"weights"`
	PackedBytes      int64   `json:"packed_bytes"`
	CompressionRate  float64 `json:"compression"`
	Replicas         int     `json:"replicas"`
}

// InferRequest is the /infer request body.
type InferRequest struct {
	// Data is the NHWC-flattened input, length InputH*InputW*InputC.
	Data []float32 `json:"data"`
}

// InferResponse is the /infer response body.
type InferResponse struct {
	Logits  []float32 `json:"logits"`
	Class   int       `json:"class"`
	Elapsed string    `json:"elapsed"`
}

// ErrorResponse is the body of every non-2xx JSON reply, so clients can
// switch on a stable machine-readable code rather than parse messages.
// Codes: bad_request, queue_full, deadline, panic, not_ready,
// unknown_model.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Statusz is the /statusz response: identity, capacity, and the failure
// counters that make robustness measurable. The top-level fields
// describe the default model (back-compat with single-model clients);
// Models carries the per-model sections.
type Statusz struct {
	Model             string                 `json:"model"`
	Version           string                 `json:"version"`
	Uptime            string                 `json:"uptime"`
	UptimeSeconds     float64                `json:"uptime_seconds"`
	Ready             bool                   `json:"ready"`
	Replicas          int                    `json:"replicas"`
	ReplicasAvailable int                    `json:"replicas_available"`
	MaxQueue          int                    `json:"max_queue"`
	RequestTimeout    string                 `json:"request_timeout"`
	Batch             *BatchStatus           `json:"batch,omitempty"`
	Control           *control.Status        `json:"control,omitempty"`
	Exec              *ExecStatus            `json:"exec,omitempty"`
	Metrics           resilience.Snapshot    `json:"metrics"`
	Models            map[string]ModelStatus `json:"models"`
}

// ModelStatus is one model's /statusz section: capacity, readiness, and
// the reload ledger (version, swap/rollback counts, last attempt).
type ModelStatus struct {
	Name              string                 `json:"name"`
	Version           string                 `json:"version"`
	Ready             bool                   `json:"ready"`
	Default           bool                   `json:"default,omitempty"`
	Replicas          int                    `json:"replicas"`
	ReplicasAvailable int                    `json:"replicas_available"`
	MaxQueue          int                    `json:"max_queue"`
	RequestTimeout    string                 `json:"request_timeout"`
	Swaps             int64                  `json:"swaps"`
	Rollbacks         int64                  `json:"rollbacks"`
	LastReload        *registry.ReloadStatus `json:"last_reload,omitempty"`
	Batch             *BatchStatus           `json:"batch,omitempty"`
	// Control is the adaptive-serving section: state, live setpoints,
	// bounds, and the decision ledger. Present only when autoscaled.
	Control *control.Status     `json:"control,omitempty"`
	Metrics resilience.Snapshot `json:"metrics"`
}

// ExecStatus is the /statusz execution-layer section: the shared pool's
// configuration and occupancy plus the per-inference thread budget every
// replica dispatches with. Per-layer p50/p99 live under metrics.layers.
type ExecStatus struct {
	exec.Report
	// Budget is the per-inference thread budget (callers included).
	Budget int `json:"budget"`
}

// BatchStatus is the /statusz micro-batching section, present only when
// batching is enabled: configuration plus the occupancy and flush-reason
// counters that say whether the window/size-cap settings fit the traffic.
type BatchStatus struct {
	Window             string  `json:"window"`
	MaxBatch           int     `json:"max_batch"`
	Batches            int64   `json:"batches"`
	MeanOccupancy      float64 `json:"mean_occupancy"`
	MaxOccupancy       int64   `json:"max_occupancy"`
	FlushWindowExpired int64   `json:"flush_window_expired"`
	FlushSizeCap       int64   `json:"flush_size_cap"`
	FlushDrain         int64   `json:"flush_drain"`
}

// ReadyStatus is the /readyz response: overall readiness plus each
// model's state. A model mid-reload stays ready — it serves its old
// version until the swap's atomic flip.
type ReadyStatus struct {
	Ready    bool                  `json:"ready"`
	Draining bool                  `json:"draining,omitempty"`
	Models   map[string]ModelReady `json:"models"`
}

// ModelReady is one model's readiness line in /readyz.
type ModelReady struct {
	Ready   bool   `json:"ready"`
	Version string `json:"version"`
}

// ModelInfo is one entry of the GET /v1/models listing.
type ModelInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Ready   bool   `json:"ready"`
	Default bool   `json:"default,omitempty"`
}

// New builds a server around net with `replicas` clones for concurrent
// requests (minimum 1) and default admission-control settings.
func New(net *graph.Network, replicas int) *Server {
	return NewWithConfig(net, Config{Replicas: replicas})
}

// NewWithConfig builds a single-model server with explicit resilience
// settings and runs the warm-up inference that arms /readyz.
func NewWithConfig(net *graph.Network, cfg Config) *Server {
	return newServer(metaFromNetwork(net), netBackend{net: net}, cfg)
}

// newServer wires a single-model server around the first backend,
// cloning it out to the configured replica count. Split from
// NewWithConfig so tests can inject faulty backends.
func newServer(meta Meta, first backend, cfg Config) *Server {
	s := &Server{
		reg:     registry.New(),
		byName:  map[string]*model{},
		started: time.Now(),
	}
	m, err := s.addModel(meta.Name, "boot", meta, first, cfg)
	if err != nil {
		// addModel only fails on duplicate names or a batcher factory
		// error, neither reachable for the first model with the in-tree
		// factory; a future failure must not yield a half-built server.
		panic(fmt.Sprintf("serve: building server: %v", err))
	}
	m.isDefault = true
	s.def = m
	return s
}

// Metrics exposes the default model's failure counters (shared with
// /statusz) so embedding code — tests, the bench harness — can assert on
// them. Use ModelMetrics for a named model.
func (s *Server) Metrics() *resilience.Metrics { return s.def.rm.Metrics() }

// EffectiveConfig reports the default model's configuration after
// defaulting — what it actually runs with, for startup banners and
// diagnostics.
func (s *Server) EffectiveConfig() Config { return s.def.cfg }

// Introspection is a point-in-time view of one model's conservation
// state, read by the fault-injection conformance oracle: on a quiet
// server, held and waiting must be zero and every replica must be back in
// the pool — regardless of what fault schedule just ran.
type Introspection struct {
	Model         string
	Version       string
	GateHeld      int64
	GateWaiting   int64
	GateCapacity  int
	GateMaxQueue  int
	PoolAvailable int
	Replicas      int
	Batching      bool
}

// Introspect snapshots the default model's admission gate and replica
// pool. The fields are sampled sequentially, so only a quiesced server
// yields a consistent picture — exactly the oracle's use case.
func (s *Server) Introspect() Introspection {
	in, _ := s.IntrospectModel("")
	return in
}

// Ready reports whether the default model warmed up and the server is
// not draining.
func (s *Server) Ready() bool { return s.def.ready.Load() && !s.draining.Load() }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleLive)
	mux.HandleFunc("/livez", s.handleLive)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/models/{model}", s.handleModelInfo)
	mux.HandleFunc("/v1/models/{model}/infer", s.handleModelInfer)
	return mux
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	st := ReadyStatus{Ready: true, Draining: s.draining.Load(), Models: map[string]ModelReady{}}
	for _, m := range s.order {
		ready := m.ready.Load()
		st.Models[m.name] = ModelReady{Ready: ready, Version: m.rm.Version()}
		if !ready {
			st.Ready = false
		}
	}
	if st.Draining {
		st.Ready = false
	}
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, st)
}

func (s *Server) modelStatus(m *model) ModelStatus {
	metrics := m.rm.Metrics()
	metrics.QueueDepth.Store(m.rm.Gate().Waiting())
	metrics.InFlight.Store(m.rm.Gate().Held())
	snap := metrics.Snapshot()
	// Under autoscaling, report the LIVE geometry — the controller's
	// setpoints — not the static boot flags.
	replicas, window, maxBatch := m.cfg.Replicas, m.cfg.BatchWindow, m.cfg.MaxBatch
	var ctrlStatus *control.Status
	if m.ctrl != nil {
		sp := m.ctrl.Setpoints()
		replicas = sp.Replicas
		if m.cfg.Batching {
			window, maxBatch = sp.Window, sp.MaxBatch
		}
		cs := m.ctrl.Status()
		ctrlStatus = &cs
	}
	ms := ModelStatus{
		Name:           m.name,
		Version:        m.rm.Version(),
		Ready:          m.ready.Load(),
		Default:        m.isDefault,
		Replicas:       replicas,
		MaxQueue:       m.cfg.MaxQueue,
		RequestTimeout: m.cfg.RequestTimeout.String(),
		Swaps:          m.rm.Swaps(),
		Rollbacks:      m.rm.Rollbacks(),
		LastReload:     m.rm.LastReload(),
		Control:        ctrlStatus,
		Metrics:        snap,
	}
	if rs := m.currentSet(); rs != nil {
		ms.ReplicasAvailable = rs.available()
	}
	if m.cfg.Batching {
		ms.Batch = &BatchStatus{
			Window:             window.String(),
			MaxBatch:           maxBatch,
			Batches:            snap.Batches,
			MeanOccupancy:      snap.BatchMeanOccupancy,
			MaxOccupancy:       snap.BatchMaxOccupancy,
			FlushWindowExpired: snap.BatchFlushWindow,
			FlushSizeCap:       snap.BatchFlushFull,
			FlushDrain:         snap.BatchFlushDrain,
		}
	}
	return ms
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	models := make(map[string]ModelStatus, len(s.order))
	for _, m := range s.order {
		models[m.name] = s.modelStatus(m)
	}
	def := models[s.def.name]
	st := Statusz{
		Model:             def.Name,
		Version:           def.Version,
		Uptime:            time.Since(s.started).Round(time.Millisecond).String(),
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Ready:             s.Ready(),
		Replicas:          def.Replicas,
		ReplicasAvailable: def.ReplicasAvailable,
		MaxQueue:          def.MaxQueue,
		RequestTimeout:    def.RequestTimeout,
		Batch:             def.Batch,
		Control:           def.Control,
		Metrics:           def.Metrics,
		Models:            models,
	}
	if rs := s.def.currentSet(); rs != nil && rs.exec != nil {
		es := &ExecStatus{Budget: rs.exec.Budget()}
		if p := rs.exec.Pool(); p != nil {
			es.Report = p.Report()
		} else {
			es.Report = exec.Report{Source: "serial"}
		}
		st.Exec = es
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	s.modelInfo(w, r, s.def)
}

func (s *Server) modelInfo(w http.ResponseWriter, r *http.Request, m *model) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "GET required")
		return
	}
	meta := m.meta
	if rs := m.currentSet(); rs != nil {
		meta = rs.meta
	}
	writeJSON(w, http.StatusOK, meta)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "GET required")
		return
	}
	infos := make([]ModelInfo, len(s.order))
	for i, m := range s.order {
		infos[i] = ModelInfo{
			Name:    m.name,
			Version: m.rm.Version(),
			Ready:   m.ready.Load(),
			Default: m.isDefault,
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Models []ModelInfo `json:"models"`
	}{infos})
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	m, ok := s.byName[r.PathValue("model")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_model",
			fmt.Sprintf("unknown model %q", r.PathValue("model")))
		return
	}
	s.modelInfo(w, r, m)
}

func (s *Server) handleModelInfer(w http.ResponseWriter, r *http.Request) {
	m, ok := s.byName[r.PathValue("model")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_model",
			fmt.Sprintf("unknown model %q", r.PathValue("model")))
		return
	}
	s.infer(w, r, m)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	s.infer(w, r, s.def)
}

// infer serves one request against model m. The request pins exactly one
// version of the model for its lifetime: a hot reload mid-request leaves
// it running (and returning its replica) on the version it started on.
func (s *Server) infer(w http.ResponseWriter, r *http.Request, m *model) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, "application/json") {
		writeError(w, http.StatusUnsupportedMediaType, "bad_request",
			fmt.Sprintf("Content-Type %q not supported; use application/json", ct))
		return
	}
	metrics := m.rm.Metrics()
	metrics.Requests.Add(1)

	// Draining does NOT gate here: hs.Shutdown already refuses new
	// connections, and requests arriving on accepted ones deserve to
	// finish — that is what graceful drain means. Only a model whose
	// warm-up failed refuses traffic.
	if !m.ready.Load() {
		metrics.Shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "not_ready",
			fmt.Sprintf("model %q failed warm-up and is not serving", m.name))
		return
	}

	var req InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request: %v", err))
		return
	}
	want := m.meta.InputH * m.meta.InputW * m.meta.InputC
	if len(req.Data) != want {
		metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("input has %d values, model wants %d (%dx%dx%d NHWC)",
				len(req.Data), want, m.meta.InputH, m.meta.InputW, m.meta.InputC))
		return
	}
	if err := validateFinite(req.Data); err != nil {
		metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	//bitflow:panic-ok FromSlice only panics on a length mismatch, ruled out by the check above
	x := tensor.FromSlice(m.meta.InputH, m.meta.InputW, m.meta.InputC, req.Data)

	// Admission: wait for a slot inside the bounded queue, giving up
	// when the per-request deadline (or the client) expires. In batch
	// mode a slot is a seat in a forming batch rather than a replica.
	ctx, cancel := context.WithTimeout(r.Context(), m.cfg.RequestTimeout)
	defer cancel()
	// serve.admit only delays (Sleep/Stall widen queue-pressure races); any
	// resulting deadline surfaces through gate.Acquire below.
	_ = faultinject.ServeAdmit.Fire(ctx, m.name, 0)
	gate := m.rm.Gate()
	if err := gate.Acquire(ctx); err != nil {
		metrics.Shed.Add(1)
		// Both outcomes are congestion, so Retry-After is derived from the
		// live queue depth and the observed service rate, not a constant.
		switch {
		case errors.Is(err, resilience.ErrQueueFull):
			w.Header().Set("Retry-After", retryAfter(m))
			writeError(w, http.StatusTooManyRequests, "queue_full",
				fmt.Sprintf("admission queue full (%d waiting, %d allowed); retry later",
					gate.Waiting(), m.cfg.MaxQueue))
		default: // deadline expired or client went away while queued
			w.Header().Set("Retry-After", retryAfter(m))
			writeError(w, http.StatusServiceUnavailable, "deadline",
				fmt.Sprintf("deadline expired after %s waiting for a replica", m.cfg.RequestTimeout))
		}
		return
	}
	//bitflow:panic-ok Release pairs with the successful Acquire above; its panic is a misuse guard, not a request-reachable state
	defer gate.Release()

	// Pin the current version: the release (deferred before any replica
	// restore below, so it runs after) is what a draining old version
	// waits on before its replicas are retired.
	set, release := m.rm.Acquire()
	defer release()
	rs, ok := set.(*replicaSet)
	if !ok {
		// Only reachable if an embedder registered a foreign ReplicaSet.
		metrics.Shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "not_ready",
			fmt.Sprintf("model %q has no serving replica set", m.name))
		return
	}

	if rs.batcher != nil {
		s.inferBatched(w, ctx, m, rs, x)
		return
	}

	// The gate guarantees a replica is free: slot holders hold at most one
	// replica and always return one (re-cloned after a panic) on exit.
	b := <-rs.pool
	restore := b
	defer func() { rs.pool <- restore }()

	t0 := time.Now()
	var (
		logits   []float32
		inferErr error
	)
	panicErr := resilience.Safe(func() { logits, inferErr = b.infer(ctx, x) })
	elapsed := time.Since(t0)

	if panicErr != nil {
		// The replica's activation buffers may be corrupted mid-forward;
		// rebuild them from the shared read-only weights so one bad
		// request can never shrink pool capacity. If even cloning fails,
		// fall back to returning the original replica — degraded beats
		// leaking the slot.
		metrics.PanicsRecovered.Add(1)
		if cloneErr := resilience.Safe(func() {
			_ = faultinject.ServeClone.Fire(nil, m.name, 0)
			restore = b.clone()
		}); cloneErr != nil {
			restore = b
		}
		writeError(w, http.StatusInternalServerError, "panic",
			fmt.Sprintf("inference failed: %v", panicErr))
		return
	}
	if inferErr != nil {
		// A pass abandoned at a layer boundary (deadline or client gone)
		// is load, not a malformed request: 503 with Retry-After, same
		// taxonomy as a deadline that expires in the queue.
		if errors.Is(inferErr, context.DeadlineExceeded) || errors.Is(inferErr, context.Canceled) {
			metrics.Shed.Add(1)
			w.Header().Set("Retry-After", retryAfter(m))
			writeError(w, http.StatusServiceUnavailable, "deadline",
				fmt.Sprintf("request cancelled mid-inference: %v", inferErr))
			return
		}
		metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", inferErr.Error())
		return
	}

	metrics.OK.Add(1)
	metrics.ObserveLatency(elapsed)

	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Logits:  logits,
		Class:   best,
		Elapsed: elapsed.String(),
	})
}

// inferBatched serves one admitted request through the pinned version's
// micro-batcher: the request takes a seat in the forming batch and blocks
// on its future. The error taxonomy (and HTTP API) is identical to the
// unbatched path.
func (s *Server) inferBatched(w http.ResponseWriter, ctx context.Context, m *model, rs *replicaSet, x *tensor.Tensor) {
	metrics := m.rm.Metrics()
	t0 := time.Now()
	logits, err := rs.batcher.Submit(ctx, x)
	elapsed := time.Since(t0)
	if err != nil {
		var pe *resilience.PanicError
		var ie *batch.InputError
		switch {
		case errors.As(err, &pe):
			// PanicsRecovered already counted by the batcher.
			writeError(w, http.StatusInternalServerError, "panic",
				fmt.Sprintf("inference failed: %v", pe))
		case errors.Is(err, batch.ErrQueueFull):
			metrics.Shed.Add(1)
			w.Header().Set("Retry-After", retryAfter(m))
			writeError(w, http.StatusTooManyRequests, "queue_full", "batch queue full; retry later")
		case errors.Is(err, batch.ErrClosed):
			metrics.Shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "not_ready", "server is draining")
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			metrics.Shed.Add(1)
			w.Header().Set("Retry-After", retryAfter(m))
			writeError(w, http.StatusServiceUnavailable, "deadline",
				fmt.Sprintf("deadline expired after %s waiting for a batch slot", m.cfg.RequestTimeout))
		case errors.As(err, &ie):
			metrics.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_request", ie.Error())
		default:
			metrics.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return
	}
	metrics.OK.Add(1)
	metrics.ObserveLatency(elapsed)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Logits:  logits,
		Class:   best,
		Elapsed: elapsed.String(),
	})
}

// ---------------------------------------------------------------------
// Lifecycle: a real http.Server with timeouts and graceful shutdown.

// HTTPConfig tunes the HTTP shell around the handler. Zero fields select
// defaults sized so a healthy request never trips a server timeout.
type HTTPConfig struct {
	Addr          string        // listen address, e.g. ":8080"
	ReadTimeout   time.Duration // full-request read deadline (default 30s)
	WriteTimeout  time.Duration // response write deadline (default RequestTimeout+30s)
	IdleTimeout   time.Duration // keep-alive idle limit (default 120s)
	ShutdownGrace time.Duration // drain window after SIGTERM/ctx-done (default 15s)
}

func (hc HTTPConfig) withDefaults(reqTimeout time.Duration) HTTPConfig {
	if hc.ReadTimeout <= 0 {
		hc.ReadTimeout = 30 * time.Second
	}
	if hc.WriteTimeout <= 0 {
		hc.WriteTimeout = reqTimeout + 30*time.Second
	}
	if hc.IdleTimeout <= 0 {
		hc.IdleTimeout = 120 * time.Second
	}
	if hc.ShutdownGrace <= 0 {
		hc.ShutdownGrace = 15 * time.Second
	}
	return hc
}

// ListenAndServe runs the server until ctx is cancelled (wire ctx to
// SIGTERM for Kubernetes-style termination), then drains: /readyz starts
// failing so load balancers stop sending traffic, in-flight requests get
// ShutdownGrace to finish, and only then does the listener close. Returns
// nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, hc HTTPConfig) error {
	l, err := net.Listen("tcp", hc.Addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, l, hc)
}

// ServeListener is ListenAndServe on an existing listener (tests use a
// 127.0.0.1:0 listener). The listener is closed when serving stops.
func (s *Server) ServeListener(ctx context.Context, l net.Listener, hc HTTPConfig) error {
	hc = hc.withDefaults(s.def.cfg.RequestTimeout)
	hs := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  hc.ReadTimeout,
		WriteTimeout: hc.WriteTimeout,
		IdleTimeout:  hc.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()

	// Start each autoscaled model's control loop. The controllers stop —
	// and their in-flight actuation contexts cancel — before the models
	// close, so a drain never races a resize.
	cctx, stopControllers := context.WithCancel(context.Background())
	var cwg sync.WaitGroup
	for _, m := range s.order {
		if m.ctrl == nil {
			continue
		}
		ctrl := m.ctrl
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			ctrl.Run(cctx)
		}()
	}
	haltControl := func() {
		stopControllers()
		cwg.Wait()
	}

	select {
	case err := <-errc:
		haltControl()
		return err
	case <-ctx.Done():
		// Flip readiness first so health-checked balancers drain us, then
		// let in-flight requests finish inside the grace window. The
		// controllers stop first: setpoints freeze where they are, and no
		// new resize can start while models retire.
		s.draining.Store(true)
		haltControl()
		sctx, cancel := context.WithTimeout(context.Background(), hc.ShutdownGrace)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-errc // always http.ErrServerClosed after Shutdown
		// In-flight HTTP requests have finished (or been cut off); every
		// model can now retire its replica set — the batchers flush their
		// backlogs and stop their workers, the pools are drained and
		// leak-checked.
		for _, m := range s.order {
			if cerr := m.rm.Close(sctx); err == nil {
				err = cerr
			}
		}
		return err
	}
}

// validateFinite rejects NaN/±Inf inputs before they reach the binarizer —
// sign(NaN) would silently turn garbage into a confident prediction.
// encoding/json already rejects bare NaN/Infinity tokens, so this is
// defence in depth for future non-JSON ingest paths.
func validateFinite(data []float32) error {
	for i, v := range data {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("input[%d] is %v; inputs must be finite", i, v)
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}
