// Package serve exposes a compiled BitFlow network over HTTP — the
// "deployment in practical applications" the paper's stand-alone engine
// targets (§IV). The server owns a pool of network clones (Infer is not
// concurrency-safe on one instance) behind an admission gate, and serves:
//
//	GET  /healthz  → 200 "ok" (liveness alias, kept for compatibility)
//	GET  /livez    → 200 while the process is up
//	GET  /readyz   → 200 after warm-up inference succeeds; 503 while draining
//	GET  /statusz  → JSON counters: requests, shed, panics, queue, p50/p99
//	GET  /model    → model metadata (name, input dims, classes, sizes)
//	POST /infer    → {"data":[...]} (NHWC floats) → logits + argmax
//
// Robustness contract: every /infer request either completes within its
// deadline or fails fast with a typed error — the wait queue is bounded
// (429 when full, 503 when the deadline expires while queued, both with
// Retry-After), a panicking replica is recovered and re-cloned so
// capacity never shrinks, and shutdown drains in-flight requests.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bitflow/internal/batch"
	"bitflow/internal/exec"
	"bitflow/internal/faultinject"
	"bitflow/internal/graph"
	"bitflow/internal/resilience"
	"bitflow/internal/tensor"
)

// Config tunes the serving resilience layer. The zero value of any field
// selects a sensible default.
type Config struct {
	// Replicas is the number of network clones (concurrent inferences).
	// Minimum 1.
	Replicas int
	// MaxQueue bounds how many requests may wait for a free replica
	// before new arrivals are shed with 429. Default max(16, 4×Replicas).
	MaxQueue int
	// RequestTimeout is the per-request deadline covering queue wait.
	// A request still queued when it expires is shed with 503.
	// Default 30s.
	RequestTimeout time.Duration

	// Batching enables dynamic micro-batching: concurrent requests
	// coalesce (up to MaxBatch, waiting at most BatchWindow) and run
	// through the batched forward path, so packed filter words are
	// loaded once per layer per batch. Off by default — it trades a
	// bounded amount of latency for throughput, a call the operator
	// makes explicitly. The HTTP API is unchanged either way.
	Batching bool
	// BatchWindow bounds how long the first request of a batch waits
	// for company. Default 2ms.
	BatchWindow time.Duration
	// MaxBatch caps how many requests share one forward pass. Default 8.
	MaxBatch int

	// Exec is the base execution context attached to every replica: the
	// shared dispatch pool plus the per-inference thread budget. All
	// replicas dispatch onto this one context, so total parallelism is
	// bounded by its pool no matter how many replicas run. nil derives a
	// context from the network's Threads field on the process-wide
	// default pool (the legacy behavior).
	Exec *exec.Ctx
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.Replicas
		if c.MaxQueue < 16 {
			c.MaxQueue = 16
		}
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Batching {
		if c.BatchWindow <= 0 {
			c.BatchWindow = 2 * time.Millisecond
		}
		if c.MaxBatch <= 0 {
			c.MaxBatch = 8
		}
	}
	return c
}

// backend is the inference surface the pool manages. graph.Network is the
// production implementation; tests substitute panicking or slow backends
// to exercise the failure paths. infer receives the per-request context
// so cancellation and deadlines propagate into the forward pass.
type backend interface {
	infer(ctx context.Context, x *tensor.Tensor) ([]float32, error)
	clone() backend
}

// execAttacher marks backends that accept an execution context. The
// server attaches one base context (pool + budget + metrics observer)
// to the first backend before warm-up; clones inherit it, so every
// replica shares the same pool and feeds the same layer stats.
type execAttacher interface {
	attachExec(base *exec.Ctx, obs exec.Observer) *exec.Ctx
}

type netBackend struct{ net *graph.Network }

func (b netBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	return b.net.InferContext(ctx, x)
}
func (b netBackend) clone() backend { return netBackend{net: b.net.Clone()} }

func (b netBackend) attachExec(base *exec.Ctx, obs exec.Observer) *exec.Ctx {
	if base == nil {
		base = exec.Threads(b.net.Threads)
	}
	ec := base.WithObserver(obs)
	b.net.SetExec(ec)
	return ec
}

func (b netBackend) inferBatch(xs []*tensor.Tensor) ([][]float32, error) { return b.net.InferBatch(xs) }
func (b netBackend) prepareBatch(max int)                                { b.net.EnsureBatch(max) }

// batchInferer marks backends with a true batched forward path; backends
// without one (the test fakes) fall back to a per-item loop inside
// backendRunner, which keeps the batcher's scheduling behavior testable
// independently of the batched kernels.
type batchInferer interface {
	inferBatch(xs []*tensor.Tensor) ([][]float32, error)
}

// batchPreparer lets a backend pre-grow its batch buffers once, at
// startup, instead of lazily on the first full batch.
type batchPreparer interface {
	prepareBatch(max int)
}

// backendRunner adapts a backend to batch.Runner.
type backendRunner struct{ b backend }

func (r backendRunner) InferBatch(xs []*tensor.Tensor) ([][]float32, error) {
	if bi, ok := r.b.(batchInferer); ok {
		return bi.inferBatch(xs)
	}
	outs := make([][]float32, len(xs))
	for i, x := range xs {
		out, err := r.b.infer(context.Background(), x)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// Server wraps a network with an HTTP handler plus the resilience layer
// (admission gate, panic isolation, counters).
type Server struct {
	meta    Meta
	cfg     Config
	pool    chan backend
	gate    *resilience.Gate
	metrics *resilience.Metrics
	ready   atomic.Bool
	started time.Time

	// exec is the resolved base execution context shared by all replicas
	// (nil for test backends that don't take one).
	exec *exec.Ctx

	// batcher is non-nil iff cfg.Batching: /infer then routes through it
	// instead of the replica pool, and the workers own the backends.
	batcher *batch.Batcher
}

// Meta is the /model response.
type Meta struct {
	Name            string  `json:"name"`
	InputH          int     `json:"input_h"`
	InputW          int     `json:"input_w"`
	InputC          int     `json:"input_c"`
	Classes         int     `json:"classes"`
	Layers          int     `json:"layers"`
	Weights         int64   `json:"weights"`
	PackedBytes     int64   `json:"packed_bytes"`
	CompressionRate float64 `json:"compression"`
	Replicas        int     `json:"replicas"`
}

// InferRequest is the /infer request body.
type InferRequest struct {
	// Data is the NHWC-flattened input, length InputH*InputW*InputC.
	Data []float32 `json:"data"`
}

// InferResponse is the /infer response body.
type InferResponse struct {
	Logits  []float32 `json:"logits"`
	Class   int       `json:"class"`
	Elapsed string    `json:"elapsed"`
}

// ErrorResponse is the body of every non-2xx JSON reply, so clients can
// switch on a stable machine-readable code rather than parse messages.
// Codes: bad_request, queue_full, deadline, panic, not_ready.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Statusz is the /statusz response: identity, capacity, and the failure
// counters that make robustness measurable.
type Statusz struct {
	Model             string              `json:"model"`
	Uptime            string              `json:"uptime"`
	UptimeSeconds     float64             `json:"uptime_seconds"`
	Ready             bool                `json:"ready"`
	Replicas          int                 `json:"replicas"`
	ReplicasAvailable int                 `json:"replicas_available"`
	MaxQueue          int                 `json:"max_queue"`
	RequestTimeout    string              `json:"request_timeout"`
	Batch             *BatchStatus        `json:"batch,omitempty"`
	Exec              *ExecStatus         `json:"exec,omitempty"`
	Metrics           resilience.Snapshot `json:"metrics"`
}

// ExecStatus is the /statusz execution-layer section: the shared pool's
// configuration and occupancy plus the per-inference thread budget every
// replica dispatches with. Per-layer p50/p99 live under metrics.layers.
type ExecStatus struct {
	exec.Report
	// Budget is the per-inference thread budget (callers included).
	Budget int `json:"budget"`
}

// BatchStatus is the /statusz micro-batching section, present only when
// batching is enabled: configuration plus the occupancy and flush-reason
// counters that say whether the window/size-cap settings fit the traffic.
type BatchStatus struct {
	Window             string  `json:"window"`
	MaxBatch           int     `json:"max_batch"`
	Batches            int64   `json:"batches"`
	MeanOccupancy      float64 `json:"mean_occupancy"`
	MaxOccupancy       int64   `json:"max_occupancy"`
	FlushWindowExpired int64   `json:"flush_window_expired"`
	FlushSizeCap       int64   `json:"flush_size_cap"`
	FlushDrain         int64   `json:"flush_drain"`
}

// New builds a server around net with `replicas` clones for concurrent
// requests (minimum 1) and default admission-control settings.
func New(net *graph.Network, replicas int) *Server {
	return NewWithConfig(net, Config{Replicas: replicas})
}

// NewWithConfig builds a server with explicit resilience settings and
// runs the warm-up inference that arms /readyz.
func NewWithConfig(net *graph.Network, cfg Config) *Server {
	ms := net.ModelSize()
	meta := Meta{
		Name:   net.Name,
		InputH: net.InH, InputW: net.InW, InputC: net.InC,
		Classes:         net.Classes,
		Layers:          len(net.Layers()),
		Weights:         ms.Weights,
		PackedBytes:     ms.BinarizedBytes,
		CompressionRate: ms.Compression(),
		Replicas:        cfg.withDefaults().Replicas,
	}
	return newServer(meta, netBackend{net: net}, cfg)
}

// newServer wires the pool, gate and metrics around the first backend,
// cloning it out to the configured replica count. Split from
// NewWithConfig so tests can inject faulty backends.
func newServer(meta Meta, first backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	meta.Replicas = cfg.Replicas
	// In batch mode a "slot" is a seat in a forming batch, not a whole
	// replica, so admission must allow Replicas×MaxBatch concurrent
	// requests or batches could never fill.
	gateCap := cfg.Replicas
	if cfg.Batching {
		gateCap = cfg.Replicas * cfg.MaxBatch
	}
	s := &Server{
		meta:    meta,
		cfg:     cfg,
		pool:    make(chan backend, cfg.Replicas),
		gate:    resilience.NewGate(gateCap, cfg.MaxQueue),
		metrics: resilience.NewMetrics(1024),
		started: time.Now(),
	}
	// Attach the shared execution context (pool + budget + layer-stats
	// observer) before warm-up so the first backend — and every clone
	// taken from it below — dispatches onto the same pool.
	if ea, ok := first.(execAttacher); ok {
		s.exec = ea.attachExec(cfg.Exec, s.metrics.ObserveLayer)
	} else {
		s.exec = cfg.Exec
	}
	s.warmup(first)
	if cfg.Batching {
		// The batch workers own the backends: worker i gets the i-th
		// replica (lane pools pre-grown to MaxBatch), and a worker whose
		// runner panicked gets a fresh clone from the factory.
		var mu sync.Mutex
		handedFirst := false
		b, err := batch.New(batch.Config{
			Window:   cfg.BatchWindow,
			MaxBatch: cfg.MaxBatch,
			Workers:  cfg.Replicas,
			QueueCap: gateCap + cfg.MaxQueue,
			Metrics:  s.metrics,
			NewRunner: func() (batch.Runner, error) {
				mu.Lock()
				defer mu.Unlock()
				bk := first
				if handedFirst {
					bk = first.clone()
				}
				handedFirst = true
				if bp, ok := bk.(batchPreparer); ok {
					bp.prepareBatch(cfg.MaxBatch)
				}
				return backendRunner{b: bk}, nil
			},
		})
		if err != nil {
			// The factory above cannot fail; a future one that can must
			// not yield a half-built server.
			panic(fmt.Sprintf("serve: building batcher: %v", err))
		}
		s.batcher = b
		return s
	}
	s.pool <- first
	for i := 1; i < cfg.Replicas; i++ {
		s.pool <- first.clone()
	}
	return s
}

// warmup runs one inference on a zero input and arms /readyz only if it
// completes without error or panic — a server that cannot infer should
// never receive traffic.
func (s *Server) warmup(b backend) {
	x := tensor.New(s.meta.InputH, s.meta.InputW, s.meta.InputC)
	var inferErr error
	panicErr := resilience.Safe(func() { _, inferErr = b.infer(context.Background(), x) })
	s.ready.Store(panicErr == nil && inferErr == nil)
}

// Metrics exposes the failure counters (shared with /statusz) so embedding
// code — tests, the bench harness — can assert on them.
func (s *Server) Metrics() *resilience.Metrics { return s.metrics }

// EffectiveConfig reports the configuration after defaulting — what the
// server actually runs with, for startup banners and diagnostics.
func (s *Server) EffectiveConfig() Config { return s.cfg }

// Introspection is a point-in-time view of the server's conservation
// state, read by the fault-injection conformance oracle: on a quiet
// server, held and waiting must be zero and every replica must be back in
// the pool — regardless of what fault schedule just ran.
type Introspection struct {
	GateHeld      int64
	GateWaiting   int64
	GateCapacity  int
	GateMaxQueue  int
	PoolAvailable int
	Replicas      int
	Batching      bool
}

// Introspect snapshots the admission gate and replica pool. The fields
// are sampled sequentially, so only a quiesced server yields a consistent
// picture — exactly the oracle's use case.
func (s *Server) Introspect() Introspection {
	return Introspection{
		GateHeld:      s.gate.Held(),
		GateWaiting:   s.gate.Waiting(),
		GateCapacity:  s.gate.Capacity(),
		GateMaxQueue:  s.gate.MaxQueue(),
		PoolAvailable: len(s.pool),
		Replicas:      s.cfg.Replicas,
		Batching:      s.batcher != nil,
	}
}

// Ready reports whether warm-up succeeded and the server is not draining.
func (s *Server) Ready() bool { return s.ready.Load() }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleLive)
	mux.HandleFunc("/livez", s.handleLive)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/infer", s.handleInfer)
	return mux
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s.metrics.QueueDepth.Store(s.gate.Waiting())
	s.metrics.InFlight.Store(s.gate.Held())
	snap := s.metrics.Snapshot()
	st := Statusz{
		Model:             s.meta.Name,
		Uptime:            time.Since(s.started).Round(time.Millisecond).String(),
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Ready:             s.ready.Load(),
		Replicas:          s.cfg.Replicas,
		ReplicasAvailable: len(s.pool),
		MaxQueue:          s.cfg.MaxQueue,
		RequestTimeout:    s.cfg.RequestTimeout.String(),
		Metrics:           snap,
	}
	if s.exec != nil {
		es := &ExecStatus{Budget: s.exec.Budget()}
		if p := s.exec.Pool(); p != nil {
			es.Report = p.Report()
		} else {
			es.Report = exec.Report{Source: "serial"}
		}
		st.Exec = es
	}
	if s.batcher != nil {
		// Batch workers never die (a panicked runner is replaced), so the
		// replica count is also the available count.
		st.ReplicasAvailable = s.cfg.Replicas
		st.Batch = &BatchStatus{
			Window:             s.cfg.BatchWindow.String(),
			MaxBatch:           s.cfg.MaxBatch,
			Batches:            snap.Batches,
			MeanOccupancy:      snap.BatchMeanOccupancy,
			MaxOccupancy:       snap.BatchMaxOccupancy,
			FlushWindowExpired: snap.BatchFlushWindow,
			FlushSizeCap:       snap.BatchFlushFull,
			FlushDrain:         snap.BatchFlushDrain,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.meta)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, "application/json") {
		writeError(w, http.StatusUnsupportedMediaType, "bad_request",
			fmt.Sprintf("Content-Type %q not supported; use application/json", ct))
		return
	}
	s.metrics.Requests.Add(1)

	var req InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		s.metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request: %v", err))
		return
	}
	want := s.meta.InputH * s.meta.InputW * s.meta.InputC
	if len(req.Data) != want {
		s.metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("input has %d values, model wants %d (%dx%dx%d NHWC)",
				len(req.Data), want, s.meta.InputH, s.meta.InputW, s.meta.InputC))
		return
	}
	if err := validateFinite(req.Data); err != nil {
		s.metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	//bitflow:panic-ok FromSlice only panics on a length mismatch, ruled out by the check above
	x := tensor.FromSlice(s.meta.InputH, s.meta.InputW, s.meta.InputC, req.Data)

	// Admission: wait for a slot inside the bounded queue, giving up
	// when the per-request deadline (or the client) expires. In batch
	// mode a slot is a seat in a forming batch rather than a replica.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// serve.admit only delays (Sleep/Stall widen queue-pressure races); any
	// resulting deadline surfaces through gate.Acquire below.
	_ = faultinject.ServeAdmit.Fire(ctx, "", 0)
	if err := s.gate.Acquire(ctx); err != nil {
		s.metrics.Shed.Add(1)
		switch {
		case errors.Is(err, resilience.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue_full",
				fmt.Sprintf("admission queue full (%d waiting, %d allowed); retry later",
					s.gate.Waiting(), s.cfg.MaxQueue))
		default: // deadline expired or client went away while queued
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "deadline",
				fmt.Sprintf("deadline expired after %s waiting for a replica", s.cfg.RequestTimeout))
		}
		return
	}
	//bitflow:panic-ok Release pairs with the successful Acquire above; its panic is a misuse guard, not a request-reachable state
	defer s.gate.Release()

	if s.batcher != nil {
		s.inferBatched(w, ctx, x)
		return
	}

	// The gate guarantees a replica is free: slot holders hold at most one
	// replica and always return one (re-cloned after a panic) on exit.
	b := <-s.pool
	restore := b
	defer func() { s.pool <- restore }()

	t0 := time.Now()
	var (
		logits   []float32
		inferErr error
	)
	panicErr := resilience.Safe(func() { logits, inferErr = b.infer(ctx, x) })
	elapsed := time.Since(t0)

	if panicErr != nil {
		// The replica's activation buffers may be corrupted mid-forward;
		// rebuild them from the shared read-only weights so one bad
		// request can never shrink pool capacity. If even cloning fails,
		// fall back to returning the original replica — degraded beats
		// leaking the slot.
		s.metrics.PanicsRecovered.Add(1)
		if cloneErr := resilience.Safe(func() {
			_ = faultinject.ServeClone.Fire(nil, "", 0)
			restore = b.clone()
		}); cloneErr != nil {
			restore = b
		}
		writeError(w, http.StatusInternalServerError, "panic",
			fmt.Sprintf("inference failed: %v", panicErr))
		return
	}
	if inferErr != nil {
		// A pass abandoned at a layer boundary (deadline or client gone)
		// is load, not a malformed request: 503 with Retry-After, same
		// taxonomy as a deadline that expires in the queue.
		if errors.Is(inferErr, context.DeadlineExceeded) || errors.Is(inferErr, context.Canceled) {
			s.metrics.Shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "deadline",
				fmt.Sprintf("request cancelled mid-inference: %v", inferErr))
			return
		}
		s.metrics.BadRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", inferErr.Error())
		return
	}

	s.metrics.OK.Add(1)
	s.metrics.ObserveLatency(elapsed)

	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Logits:  logits,
		Class:   best,
		Elapsed: elapsed.String(),
	})
}

// inferBatched serves one admitted request through the micro-batcher: the
// request takes a seat in the forming batch and blocks on its future. The
// error taxonomy (and HTTP API) is identical to the unbatched path.
func (s *Server) inferBatched(w http.ResponseWriter, ctx context.Context, x *tensor.Tensor) {
	t0 := time.Now()
	logits, err := s.batcher.Submit(ctx, x)
	elapsed := time.Since(t0)
	if err != nil {
		var pe *resilience.PanicError
		var ie *batch.InputError
		switch {
		case errors.As(err, &pe):
			// PanicsRecovered already counted by the batcher.
			writeError(w, http.StatusInternalServerError, "panic",
				fmt.Sprintf("inference failed: %v", pe))
		case errors.Is(err, batch.ErrQueueFull):
			s.metrics.Shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue_full", "batch queue full; retry later")
		case errors.Is(err, batch.ErrClosed):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "not_ready", "server is draining")
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.metrics.Shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "deadline",
				fmt.Sprintf("deadline expired after %s waiting for a batch slot", s.cfg.RequestTimeout))
		case errors.As(err, &ie):
			s.metrics.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_request", ie.Error())
		default:
			s.metrics.BadRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return
	}
	s.metrics.OK.Add(1)
	s.metrics.ObserveLatency(elapsed)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Logits:  logits,
		Class:   best,
		Elapsed: elapsed.String(),
	})
}

// ---------------------------------------------------------------------
// Lifecycle: a real http.Server with timeouts and graceful shutdown.

// HTTPConfig tunes the HTTP shell around the handler. Zero fields select
// defaults sized so a healthy request never trips a server timeout.
type HTTPConfig struct {
	Addr          string        // listen address, e.g. ":8080"
	ReadTimeout   time.Duration // full-request read deadline (default 30s)
	WriteTimeout  time.Duration // response write deadline (default RequestTimeout+30s)
	IdleTimeout   time.Duration // keep-alive idle limit (default 120s)
	ShutdownGrace time.Duration // drain window after SIGTERM/ctx-done (default 15s)
}

func (hc HTTPConfig) withDefaults(reqTimeout time.Duration) HTTPConfig {
	if hc.ReadTimeout <= 0 {
		hc.ReadTimeout = 30 * time.Second
	}
	if hc.WriteTimeout <= 0 {
		hc.WriteTimeout = reqTimeout + 30*time.Second
	}
	if hc.IdleTimeout <= 0 {
		hc.IdleTimeout = 120 * time.Second
	}
	if hc.ShutdownGrace <= 0 {
		hc.ShutdownGrace = 15 * time.Second
	}
	return hc
}

// ListenAndServe runs the server until ctx is cancelled (wire ctx to
// SIGTERM for Kubernetes-style termination), then drains: /readyz starts
// failing so load balancers stop sending traffic, in-flight requests get
// ShutdownGrace to finish, and only then does the listener close. Returns
// nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, hc HTTPConfig) error {
	l, err := net.Listen("tcp", hc.Addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, l, hc)
}

// ServeListener is ListenAndServe on an existing listener (tests use a
// 127.0.0.1:0 listener). The listener is closed when serving stops.
func (s *Server) ServeListener(ctx context.Context, l net.Listener, hc HTTPConfig) error {
	hc = hc.withDefaults(s.cfg.RequestTimeout)
	hs := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  hc.ReadTimeout,
		WriteTimeout: hc.WriteTimeout,
		IdleTimeout:  hc.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Flip readiness first so health-checked balancers drain us, then
		// let in-flight requests finish inside the grace window.
		s.ready.Store(false)
		sctx, cancel := context.WithTimeout(context.Background(), hc.ShutdownGrace)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-errc // always http.ErrServerClosed after Shutdown
		if s.batcher != nil {
			// In-flight HTTP requests have finished (or been cut off), so
			// the batcher can flush its backlog and stop its workers.
			if berr := s.batcher.Close(sctx); err == nil {
				err = berr
			}
		}
		return err
	}
}

// validateFinite rejects NaN/±Inf inputs before they reach the binarizer —
// sign(NaN) would silently turn garbage into a confident prediction.
// encoding/json already rejects bare NaN/Infinity tokens, so this is
// defence in depth for future non-JSON ingest paths.
func validateFinite(data []float32) error {
	for i, v := range data {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("input[%d] is %v; inputs must be finite", i, v)
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}
