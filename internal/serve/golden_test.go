package serve

// Golden tests pinning the HTTP API surface: the exact /statusz JSON
// field set and the structured error body (status + code + message) of
// every client-reachable 4xx/5xx path. These exist so an accidental field
// rename or taxonomy change fails a test instead of breaking dashboards
// and client retry logic silently.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"bitflow/internal/workload"
)

func sortedKeys(m map[string]any) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func getStatuszRaw(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGoldenStatuszFieldSet pins the /statusz JSON schema: the exact
// top-level keys per serving mode, the exact exec and batch section keys,
// and the metrics key set (required counters plus the known
// traffic-dependent omitempty fields — anything else is a schema change).
func TestGoldenStatuszFieldSet(t *testing.T) {
	metricsRequired := []string{
		"requests", "ok", "bad_requests", "shed", "panics_recovered",
		"queue_depth", "in_flight",
		"latency_samples", "latency_p50", "latency_p99", "latency_p50_us", "latency_p99_us",
	}
	metricsOptional := map[string]bool{
		"layers": true, "batches": true, "batch_items": true,
		"batch_mean_occupancy": true, "batch_max_occupancy": true,
		"batch_flush_window_expired": true, "batch_flush_size_cap": true,
		"batch_flush_drain": true,
	}
	execKeys := []string{"budget", "busy", "dispatches", "gomaxprocs", "num_cpu", "source", "workers"}
	batchKeys := []string{"batches", "flush_drain", "flush_size_cap", "flush_window_expired",
		"max_batch", "max_occupancy", "mean_occupancy", "window"}

	checkMetrics := func(t *testing.T, m map[string]any) {
		metrics, ok := m["metrics"].(map[string]any)
		if !ok {
			t.Fatalf("metrics section missing or not an object: %v", m["metrics"])
		}
		for _, k := range metricsRequired {
			if _, ok := metrics[k]; !ok {
				t.Errorf("metrics.%s missing", k)
			}
		}
		req := map[string]bool{}
		for _, k := range metricsRequired {
			req[k] = true
		}
		for k := range metrics {
			if !req[k] && !metricsOptional[k] {
				t.Errorf("metrics.%s is not in the pinned schema — update the golden test deliberately", k)
			}
		}
	}

	t.Run("unbatched", func(t *testing.T) {
		ts := httptest.NewServer(New(testNetwork(t), 1).Handler())
		defer ts.Close()
		m := getStatuszRaw(t, ts.URL)
		want := []string{"exec", "max_queue", "metrics", "model", "models", "ready", "replicas",
			"replicas_available", "request_timeout", "uptime", "uptime_seconds", "version"}
		if got := sortedKeys(m); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("top-level keys:\n got %v\nwant %v", got, want)
		}
		if got := sortedKeys(m["exec"].(map[string]any)); fmt.Sprint(got) != fmt.Sprint(execKeys) {
			t.Errorf("exec keys:\n got %v\nwant %v", got, execKeys)
		}
		checkMetrics(t, m)
	})

	t.Run("autoscaled", func(t *testing.T) {
		srv := NewWithConfig(testNetwork(t), Config{Replicas: 1, Autoscale: quickAutoscale(2)})
		ts := httptest.NewServer(srv.Handler())
		defer closeServer(t, srv)
		defer ts.Close()
		m := getStatuszRaw(t, ts.URL)
		want := []string{"control", "exec", "max_queue", "metrics", "model", "models", "ready", "replicas",
			"replicas_available", "request_timeout", "uptime", "uptime_seconds", "version"}
		if got := sortedKeys(m); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("top-level keys:\n got %v\nwant %v", got, want)
		}
		ctrl, ok := m["control"].(map[string]any)
		if !ok {
			t.Fatalf("control section missing or not an object: %v", m["control"])
		}
		ctrlKeys := []string{"actuations", "bounds", "corrupt_ticks", "setpoints", "state", "static", "ticks"}
		delete(ctrl, "decisions") // tick-dependent omitempty ledger
		if got := sortedKeys(ctrl); fmt.Sprint(got) != fmt.Sprint(ctrlKeys) {
			t.Errorf("control keys:\n got %v\nwant %v", got, ctrlKeys)
		}
		spKeys := []string{"max_batch", "replicas", "window"}
		for _, section := range []string{"setpoints", "static"} {
			sp, ok := ctrl[section].(map[string]any)
			if !ok {
				t.Fatalf("control.%s missing or not an object: %v", section, ctrl[section])
			}
			if got := sortedKeys(sp); fmt.Sprint(got) != fmt.Sprint(spKeys) {
				t.Errorf("control.%s keys:\n got %v\nwant %v", section, got, spKeys)
			}
		}
		boundsKeys := []string{"max_batch", "max_replicas", "max_window",
			"min_batch", "min_replicas", "min_window"}
		bounds, ok := ctrl["bounds"].(map[string]any)
		if !ok {
			t.Fatalf("control.bounds missing or not an object: %v", ctrl["bounds"])
		}
		if got := sortedKeys(bounds); fmt.Sprint(got) != fmt.Sprint(boundsKeys) {
			t.Errorf("control.bounds keys:\n got %v\nwant %v", got, boundsKeys)
		}
		checkMetrics(t, m)
	})

	t.Run("batched", func(t *testing.T) {
		srv := NewWithConfig(testNetwork(t), Config{Replicas: 1, Batching: true})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		// One real request so the batch counters carry traffic.
		x := workload.RandTensor(workload.NewRNG(160), 8, 8, 64)
		if resp, _ := postInfer(t, ts, x.Data); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request: status %d", resp.StatusCode)
		}
		m := getStatuszRaw(t, ts.URL)
		want := []string{"batch", "exec", "max_queue", "metrics", "model", "models", "ready", "replicas",
			"replicas_available", "request_timeout", "uptime", "uptime_seconds", "version"}
		if got := sortedKeys(m); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("top-level keys:\n got %v\nwant %v", got, want)
		}
		if got := sortedKeys(m["batch"].(map[string]any)); fmt.Sprint(got) != fmt.Sprint(batchKeys) {
			t.Errorf("batch keys:\n got %v\nwant %v", got, batchKeys)
		}
		checkMetrics(t, m)
	})
}

// errorBody fetches an error response and decodes the structured body.
func errorBody(t *testing.T, resp *http.Response) (int, ErrorResponse) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body is not the structured JSON shape: %q (%v)", raw, err)
	}
	return resp.StatusCode, e
}

// TestGoldenErrorBodies pins status, code, and message for every
// validation-layer 4xx path plus the 500 panic body. Messages marked
// exact are part of the API surface; prefix checks cover messages that
// embed runtime values (decoder errors, panic stacks).
func TestGoldenErrorBodies(t *testing.T) {
	net := testNetwork(t)
	s := newServer(metaFor(net), &faultBackend{net: net, trigger: 999}, Config{Replicas: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := make([]float32, 8*8*64)
	bad[0] = 999 // faultBackend panic trigger

	cases := []struct {
		name        string
		do          func() (*http.Response, error)
		status      int
		code        string
		exactMsg    string // "" when prefix applies
		msgPrefix   string
		allowHeader string
	}{
		{
			name:        "405 wrong method on /infer",
			do:          func() (*http.Response, error) { return http.Get(ts.URL + "/infer") },
			status:      http.StatusMethodNotAllowed,
			code:        "bad_request",
			exactMsg:    "POST required",
			allowHeader: "POST",
		},
		{
			name: "405 wrong method on /model",
			do: func() (*http.Response, error) {
				return http.Post(ts.URL+"/model", "application/json", strings.NewReader("{}"))
			},
			status:      http.StatusMethodNotAllowed,
			code:        "bad_request",
			exactMsg:    "GET required",
			allowHeader: "GET, HEAD",
		},
		{
			name: "415 wrong content type",
			do: func() (*http.Response, error) {
				return http.Post(ts.URL+"/infer", "text/plain", strings.NewReader("{}"))
			},
			status:   http.StatusUnsupportedMediaType,
			code:     "bad_request",
			exactMsg: `Content-Type "text/plain" not supported; use application/json`,
		},
		{
			name: "400 malformed JSON",
			do: func() (*http.Response, error) {
				return http.Post(ts.URL+"/infer", "application/json", strings.NewReader(`{"data": [1,`))
			},
			status:    http.StatusBadRequest,
			code:      "bad_request",
			msgPrefix: "bad request: ",
		},
		{
			name: "400 non-finite input token",
			do: func() (*http.Response, error) {
				return http.Post(ts.URL+"/infer", "application/json", strings.NewReader(`{"data": [NaN]}`))
			},
			status:    http.StatusBadRequest,
			code:      "bad_request",
			msgPrefix: "bad request: invalid character",
		},
		{
			name: "400 wrong input length",
			do: func() (*http.Response, error) {
				body, _ := json.Marshal(InferRequest{Data: []float32{1, 2, 3}})
				return http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
			},
			status:   http.StatusBadRequest,
			code:     "bad_request",
			exactMsg: "input has 3 values, model wants 4096 (8x8x64 NHWC)",
		},
		{
			name: "500 backend panic",
			do: func() (*http.Response, error) {
				body, _ := json.Marshal(InferRequest{Data: bad})
				return http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
			},
			status:    http.StatusInternalServerError,
			code:      "panic",
			msgPrefix: "inference failed: ",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			if tc.allowHeader != "" && resp.Header.Get("Allow") != tc.allowHeader {
				t.Errorf("Allow header %q, want %q", resp.Header.Get("Allow"), tc.allowHeader)
			}
			status, e := errorBody(t, resp)
			if status != tc.status {
				t.Errorf("status %d, want %d", status, tc.status)
			}
			if e.Code != tc.code {
				t.Errorf("code %q, want %q", e.Code, tc.code)
			}
			if tc.exactMsg != "" && e.Error != tc.exactMsg {
				t.Errorf("message %q, want exactly %q", e.Error, tc.exactMsg)
			}
			if tc.msgPrefix != "" && !strings.HasPrefix(e.Error, tc.msgPrefix) {
				t.Errorf("message %q, want prefix %q", e.Error, tc.msgPrefix)
			}
		})
	}
}

// TestGoldenQueueFullBody pins the 429 saturation body: one replica, zero
// queue slots, one wedged request — the next arrival must shed with the
// exact queue_full message and a Retry-After hint.
func TestGoldenQueueFullBody(t *testing.T) {
	net := testNetwork(t)
	bk := newBlockingBackend(net)
	s := newServer(metaFor(net), bk, Config{
		Replicas: 1, MaxQueue: -1, RequestTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(161), 8, 8, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		postInfer(t, ts, x.Data) // wedges in the backend until release
	}()
	<-bk.entered

	body, _ := json.Marshal(InferRequest{Data: x.Data})
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	status, e := errorBody(t, resp)
	if status != http.StatusTooManyRequests || e.Code != "queue_full" {
		t.Errorf("status %d code %q, want 429 queue_full", status, e.Code)
	}
	if want := "admission queue full (0 waiting, 0 allowed); retry later"; e.Error != want {
		t.Errorf("message %q, want exactly %q", e.Error, want)
	}

	close(bk.release)
	<-done
}

// TestGoldenDeadlineBody pins the queued-deadline 503 body: the wedged
// replica never frees up, so a queued request must shed with the exact
// deadline message once RequestTimeout expires.
func TestGoldenDeadlineBody(t *testing.T) {
	net := testNetwork(t)
	bk := newBlockingBackend(net)
	s := newServer(metaFor(net), bk, Config{
		Replicas: 1, MaxQueue: 4, RequestTimeout: 80 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(162), 8, 8, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		postInfer(t, ts, x.Data)
	}()
	<-bk.entered

	body, _ := json.Marshal(InferRequest{Data: x.Data})
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	status, e := errorBody(t, resp)
	if status != http.StatusServiceUnavailable || e.Code != "deadline" {
		t.Errorf("status %d code %q, want 503 deadline", status, e.Code)
	}
	if want := "deadline expired after 80ms waiting for a replica"; e.Error != want {
		t.Errorf("message %q, want exactly %q", e.Error, want)
	}

	close(bk.release)
	<-done
}

// TestGoldenValidateFiniteMessage pins the defence-in-depth non-finite
// message for future non-JSON ingest paths (the JSON decoder rejects the
// tokens before validateFinite can see them today).
func TestGoldenValidateFiniteMessage(t *testing.T) {
	cases := []struct {
		val  float32
		want string
	}{
		{float32(math.NaN()), "input[0] is NaN; inputs must be finite"},
		{float32(math.Inf(1)), "input[0] is +Inf; inputs must be finite"},
		{float32(math.Inf(-1)), "input[0] is -Inf; inputs must be finite"},
	}
	for _, tc := range cases {
		err := validateFinite([]float32{tc.val})
		if err == nil || err.Error() != tc.want {
			t.Errorf("validateFinite(%v) = %v, want %q", tc.val, err, tc.want)
		}
	}
}
