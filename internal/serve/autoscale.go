package serve

// Adaptive serving: each autoscaled model runs a control.Controller that
// observes the model's own gate/batch/latency signals and retunes the
// serving geometry — batch window, max-batch, replica count — through
// the exported actuation APIs (batch.Batcher.Retune, registry.Model.
// Resize). This file holds the serve side of that loop: the Autoscale
// configuration, the signal source and actuator, the replica-set resize
// protocol, the congestion-derived Retry-After, and the admin pin/unpin
// surface. The controller itself (hysteresis, cooldown, degrade to
// static) lives in internal/control and never imports serve.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bitflow/internal/control"
	"bitflow/internal/resilience"
	"bitflow/internal/tensor"
)

// AutoscaleConfig enables the adaptive serving loop for one model. The
// zero value of any field selects a default derived from the model's
// static Config; the static geometry itself must lie inside the declared
// bounds (that is validated, not silently clamped — an operator who
// writes contradictory flags should hear about it at startup).
type AutoscaleConfig struct {
	// Interval is the control-tick period. Default 250ms.
	Interval time.Duration

	// MinReplicas/MaxReplicas bound the replica axis.
	// Defaults: 1 and 2×Replicas.
	MinReplicas, MaxReplicas int
	// MinBatch/MaxBatch bound the max-batch axis (batching only).
	// Defaults: 1 and max(16, MaxBatch).
	MinBatch, MaxBatch int
	// MinWindow/MaxWindow bound the coalescing window (batching only).
	// Defaults: min(500µs, BatchWindow) and max(4×BatchWindow, BatchWindow).
	MinWindow, MaxWindow time.Duration

	// HighLoad/LowLoad are the hysteresis thresholds; Cooldown,
	// CorruptLimit, RecoverAfter, and LedgerSize pass through to
	// control.Config (zero selects that package's defaults).
	HighLoad, LowLoad                    float64
	Cooldown, CorruptLimit, RecoverAfter int
	LedgerSize                           int
}

// withDefaults derives the unset bounds from the model's static
// geometry. For an unbatched model the window/batch axes are pinned to a
// nominal point so the bounds stay valid while the controller (Batching
// false) never moves them.
func (ac AutoscaleConfig) withDefaults(cfg Config) AutoscaleConfig {
	if ac.MinReplicas == 0 {
		ac.MinReplicas = 1
	}
	if ac.MaxReplicas == 0 {
		ac.MaxReplicas = 2 * cfg.Replicas
	}
	if !cfg.Batching {
		ac.MinBatch, ac.MaxBatch = 1, 1
		ac.MinWindow, ac.MaxWindow = time.Millisecond, time.Millisecond
		return ac
	}
	if ac.MinBatch == 0 {
		ac.MinBatch = 1
	}
	if ac.MaxBatch == 0 {
		ac.MaxBatch = max(16, cfg.MaxBatch)
	}
	if ac.MinWindow == 0 {
		ac.MinWindow = min(500*time.Microsecond, cfg.BatchWindow)
	}
	if ac.MaxWindow == 0 {
		ac.MaxWindow = max(4*cfg.BatchWindow, cfg.BatchWindow)
	}
	return ac
}

// bounds converts to the controller's bounds type.
func (ac AutoscaleConfig) bounds() control.Bounds {
	return control.Bounds{
		MinWindow: ac.MinWindow, MaxWindow: ac.MaxWindow,
		MinBatch: ac.MinBatch, MaxBatch: ac.MaxBatch,
		MinReplicas: ac.MinReplicas, MaxReplicas: ac.MaxReplicas,
	}
}

// staticSetpoints is the startup-flag geometry the controller starts
// from and reverts to when degraded.
func staticSetpoints(cfg Config) control.Setpoints {
	sp := control.Setpoints{Window: cfg.BatchWindow, MaxBatch: cfg.MaxBatch, Replicas: cfg.Replicas}
	if !cfg.Batching {
		// Match the pinned nominal axes from withDefaults.
		sp.Window, sp.MaxBatch = time.Millisecond, 1
	}
	return sp
}

// validate rejects bound sets that are internally contradictory or that
// exclude the model's own static geometry. cfg must already have
// defaults applied (including ac itself).
func (ac AutoscaleConfig) validate(cfg Config) error {
	if ac.MinReplicas < 1 || ac.MaxReplicas < ac.MinReplicas {
		return fmt.Errorf("serve: autoscale replica bounds [%d, %d] invalid", ac.MinReplicas, ac.MaxReplicas)
	}
	if ac.MinBatch < 1 || ac.MaxBatch < ac.MinBatch {
		return fmt.Errorf("serve: autoscale max-batch bounds [%d, %d] invalid", ac.MinBatch, ac.MaxBatch)
	}
	if ac.MinWindow <= 0 || ac.MaxWindow < ac.MinWindow {
		return fmt.Errorf("serve: autoscale window bounds [%v, %v] invalid", ac.MinWindow, ac.MaxWindow)
	}
	if sp := staticSetpoints(cfg); !ac.bounds().Contains(sp) {
		return fmt.Errorf("serve: static geometry (window=%v max-batch=%d replicas=%d) outside autoscale bounds [%v-%v, %d-%d, %d-%d]",
			sp.Window, sp.MaxBatch, sp.Replicas,
			ac.MinWindow, ac.MaxWindow, ac.MinBatch, ac.MaxBatch, ac.MinReplicas, ac.MaxReplicas)
	}
	return nil
}

// maxGateCapacity is gateCapacity at the autoscale bounds' ceiling — the
// admission limit the resizable gate, batch queue, and replica pool are
// provisioned for up front, so growth never reallocates on a live path.
func maxGateCapacity(cfg Config) int {
	ac := cfg.Autoscale
	if cfg.Batching {
		return ac.MaxReplicas * ac.MaxBatch
	}
	return ac.MaxReplicas
}

// gateLimit is the resizable gate's hard token limit: the bounds ceiling
// when autoscaling, the static capacity otherwise.
func gateLimit(cfg Config) int {
	if cfg.Autoscale != nil {
		return maxGateCapacity(cfg)
	}
	return gateCapacity(cfg)
}

// ---------------------------------------------------------------------
// Signal source and actuator: the two dependency-injected halves the
// controller drives. Both touch serving state only through exported
// APIs; bitflow-vet's actuate rule rejects field writes in Apply.

// signals is the model's control.Source: one consistent-enough
// observation of the gate, latency quantiles, and cumulative counters.
func (m *model) signals() (control.Signals, error) {
	g := m.rm.Gate()
	mt := m.rm.Metrics()
	return control.Signals{
		QueueDepth:   g.Waiting(),
		GateHeld:     g.Held(),
		GateCapacity: g.Capacity(),
		MaxQueue:     g.MaxQueue(),
		P50:          mt.LatencyQuantile(0.50),
		P99:          mt.LatencyQuantile(0.99),
		Requests:     mt.Requests.Load(),
		OK:           mt.OK.Load(),
		Shed:         mt.Shed.Load(),
		Batches:      mt.Batches.Load(),
		BatchItems:   mt.BatchItems.Load(),
	}, nil
}

// modelActuator applies controller setpoints to one model. Every step
// goes through an exported API — Retune on the batcher, Resize on the
// registry model (which orders gate vs replica changes so admission
// never exceeds serving capacity). Apply bounds its own drain waits: the
// controller's Run context lives for the whole server, and a shrink that
// waited on it could wedge the loop.
type modelActuator struct {
	m       *model
	timeout time.Duration
}

func (a *modelActuator) Apply(ctx context.Context, sp control.Setpoints) error {
	m := a.m
	rs := m.currentSet()
	if rs == nil {
		return fmt.Errorf("serve: autoscale %s: no serving replica set", m.name)
	}
	actx, cancel := context.WithTimeout(ctx, a.timeout)
	defer cancel()
	gateCap := sp.Replicas
	if m.cfg.Batching {
		gateCap = sp.Replicas * sp.MaxBatch
		if w, mb, _ := rs.batcher.Params(); w != sp.Window || mb != sp.MaxBatch {
			if err := rs.batcher.Retune(sp.Window, sp.MaxBatch); err != nil {
				return err
			}
		}
	}
	if rs.Replicas() == sp.Replicas && m.rm.Gate().Capacity() == gateCap {
		return nil
	}
	if _, err := m.rm.Resize(actx, sp.Replicas, gateCap); err != nil {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------
// replicaSet resizing: the serve-side half of registry.Model.Resize.

// Replicas implements registry.ResizableReplicaSet.
func (rs *replicaSet) Replicas() int { return int(rs.replicas.Load()) }

// Resize implements registry.ResizableReplicaSet: grow or shrink the
// set's serving capacity to n replicas. Batched sets delegate to the
// batcher's worker resize (growth verified through VerifyRunner);
// unbatched sets grow by cloning the reference backend — each clone
// proved bit-exact before it can serve — and shrink by withdrawing idle
// replicas from the pool, all-or-nothing within ctx.
func (rs *replicaSet) Resize(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("serve: resize %s: replicas must be ≥ 1, got %d", rs.version, n)
	}
	if rs.batcher != nil {
		if err := rs.batcher.Resize(ctx, n); err != nil {
			return err
		}
		rs.replicas.Store(int64(n))
		return nil
	}
	rs.resizeMu.Lock()
	defer rs.resizeMu.Unlock()
	cur := int(rs.replicas.Load())
	switch {
	case n == cur:
		return nil
	case n > cap(rs.pool):
		return fmt.Errorf("serve: resize %s: %d replicas exceed the provisioned pool bound %d", rs.version, n, cap(rs.pool))
	case n > cur:
		return rs.growPool(n - cur)
	default:
		return rs.shrinkPool(ctx, cur-n)
	}
}

// growPool clones `add` new replicas off the reference backend and
// verifies each one bit-exact against the reference logits before any
// of them enters the pool — growth is all-or-nothing and a diverging
// clone can never serve a request.
func (rs *replicaSet) growPool(add int) error {
	want, x, err := rs.refLogits()
	if err != nil {
		return err
	}
	clones := make([]backend, 0, add)
	var cerr error
	if perr := resilience.Safe(func() {
		for i := 0; i < add; i++ {
			bk := rs.ref.clone()
			var got []float32
			if got, cerr = bk.infer(context.Background(), x); cerr != nil {
				return
			}
			if cerr = logitsBitEqual(got, want); cerr != nil {
				return
			}
			clones = append(clones, bk)
		}
	}); perr != nil {
		cerr = perr
	}
	if cerr != nil {
		return fmt.Errorf("serve: resize %s: verifying grown replica: %w", rs.version, cerr)
	}
	for _, bk := range clones {
		rs.pool <- bk
	}
	rs.replicas.Add(int64(add))
	return nil
}

// shrinkPool withdraws `remove` idle replicas. The registry shrank the
// gate first, so at least `remove` replicas go permanently idle as
// in-flight holders finish; a ctx expiry restores every withdrawn
// replica — the shrink either completes or changes nothing.
func (rs *replicaSet) shrinkPool(ctx context.Context, remove int) error {
	withdrawn := make([]backend, 0, remove)
	for len(withdrawn) < remove {
		select {
		case bk := <-rs.pool:
			withdrawn = append(withdrawn, bk)
		case <-ctx.Done():
			for _, bk := range withdrawn {
				rs.pool <- bk
			}
			return fmt.Errorf("serve: resize %s: drain interrupted with %d/%d replicas withdrawn: %w",
				rs.version, len(withdrawn), remove, ctx.Err())
		}
	}
	rs.replicas.Add(-int64(remove))
	return nil
}

// verifyRunner is the batcher's grow-time verification hook: a freshly
// built worker runner must reproduce the reference logits bit-for-bit.
func (rs *replicaSet) verifyRunner(infer func([]*tensor.Tensor) ([][]float32, error)) error {
	want, x, err := rs.refLogits()
	if err != nil {
		return err
	}
	outs, err := infer([]*tensor.Tensor{x})
	if err != nil {
		return fmt.Errorf("serve: resize %s: probing grown worker: %w", rs.version, err)
	}
	if len(outs) != 1 {
		return fmt.Errorf("serve: resize %s: grown worker returned %d outputs for 1 input", rs.version, len(outs))
	}
	return logitsBitEqual(outs[0], want)
}

// refLogits lazily computes (and caches) the reference backend's logits
// on the deterministic probe input. Only sets built with autoscaling
// carry a reference backend.
func (rs *replicaSet) refLogits() ([]float32, *tensor.Tensor, error) {
	rs.refMu.Lock()
	defer rs.refMu.Unlock()
	if rs.ref == nil {
		return nil, nil, fmt.Errorf("serve: resize %s: set was not built resizable (no autoscale config)", rs.version)
	}
	if rs.refOut != nil {
		return rs.refOut, rs.refX, nil
	}
	x := probeInput(rs.meta)
	var out []float32
	var err error
	if perr := resilience.Safe(func() { out, err = rs.ref.infer(context.Background(), x) }); perr != nil {
		err = perr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("serve: resize %s: reference inference: %w", rs.version, err)
	}
	rs.refX, rs.refOut = x, out
	return out, x, nil
}

// probeInput builds the deterministic resize-verification input: a ramp
// covering negative, zero, and positive activations so the binarized
// forward pass exercises both sign branches.
func probeInput(meta Meta) *tensor.Tensor {
	x := tensor.New(meta.InputH, meta.InputW, meta.InputC)
	for i := range x.Data {
		x.Data[i] = float32(i%17)/8 - 1
	}
	return x
}

func logitsBitEqual(got, want []float32) error {
	if len(got) != len(want) {
		return fmt.Errorf("replica produced %d logits, reference has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("logit %d = %v, reference %v — replica is not bit-exact", i, got[i], want[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Congestion-derived Retry-After: the shed paths hint at when capacity
// is actually expected, instead of a flat "1".

// retryAfter estimates, from the live queue and the observed service
// rate, how many seconds until a retrying client plausibly finds a free
// slot: backlog ahead of it (waiters + in-flight) times the per-slot
// service time (p50 / admission concurrency), rounded up and clamped to
// [1, 60]. With no latency history yet there is no rate to project, so
// it falls back to "1".
func retryAfter(m *model) string {
	g := m.rm.Gate()
	p50 := m.rm.Metrics().LatencyQuantile(0.50)
	capacity := g.Capacity()
	if p50 <= 0 || capacity < 1 {
		return "1"
	}
	backlog := g.Waiting() + g.Held()
	est := time.Duration(backlog) * p50 / time.Duration(capacity)
	secs := int64((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

// ---------------------------------------------------------------------
// Admin surface: GET /admin/autoscale for the per-model controller
// state, POST /admin/autoscale to pin or unpin setpoints.

// ControlStatus snapshots the named model's controller ("" = default),
// or nil when the model is unknown or not autoscaled.
func (s *Server) ControlStatus(name string) *control.Status {
	m, ok := s.lookup(name)
	if !ok || m.ctrl == nil {
		return nil
	}
	st := m.ctrl.Status()
	return &st
}

// PinModel pins the named model's setpoints (zero-valued axes keep their
// current value), bypassing adaptation until UnpinModel. It is the
// programmatic form of POST /admin/autoscale {"action":"pin"}.
func (s *Server) PinModel(ctx context.Context, name string, window time.Duration, maxBatch, replicas int) (control.Setpoints, error) {
	m, ok := s.lookup(name)
	if !ok {
		return control.Setpoints{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if m.ctrl == nil {
		return control.Setpoints{}, fmt.Errorf("serve: model %q is not autoscaled", m.name)
	}
	sp := m.ctrl.Setpoints()
	if window > 0 {
		sp.Window = window
	}
	if maxBatch > 0 {
		sp.MaxBatch = maxBatch
	}
	if replicas > 0 {
		sp.Replicas = replicas
	}
	return m.ctrl.Pin(ctx, sp)
}

// UnpinModel releases an operator pin on the named model.
func (s *Server) UnpinModel(name string) error {
	m, ok := s.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if m.ctrl == nil {
		return fmt.Errorf("serve: model %q is not autoscaled", m.name)
	}
	m.ctrl.Unpin()
	return nil
}

// AutoscaleRequest is the POST /admin/autoscale body.
type AutoscaleRequest struct {
	// Model selects the controller ("" = default model).
	Model string `json:"model"`
	// Action is "pin" or "unpin".
	Action string `json:"action"`
	// Pin targets; a zero-valued axis keeps its current setpoint.
	Window   string `json:"window,omitempty"` // duration string, e.g. "2ms"
	MaxBatch int    `json:"max_batch,omitempty"`
	Replicas int    `json:"replicas,omitempty"`
}

// AutoscaleResponse reports one pin/unpin attempt.
type AutoscaleResponse struct {
	Model  string          `json:"model"`
	Status *control.Status `json:"status,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (s *Server) handleAdminAutoscale(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		out := map[string]*control.Status{}
		for _, m := range s.order {
			if m.ctrl != nil {
				st := m.ctrl.Status()
				out[m.name] = &st
			}
		}
		writeJSON(w, http.StatusOK, struct {
			Models map[string]*control.Status `json:"models"`
		}{out})
	case http.MethodPost:
		var req AutoscaleRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request: %v", err))
			return
		}
		m, ok := s.lookup(req.Model)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown_model", fmt.Sprintf("unknown model %q", req.Model))
			return
		}
		if m.ctrl == nil {
			writeJSON(w, http.StatusUnprocessableEntity, AutoscaleResponse{
				Model: m.name, Error: fmt.Sprintf("model %q is not autoscaled", m.name)})
			return
		}
		switch req.Action {
		case "pin":
			var window time.Duration
			if req.Window != "" {
				d, err := time.ParseDuration(req.Window)
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad window: %v", err))
					return
				}
				window = d
			}
			if _, err := s.PinModel(r.Context(), m.name, window, req.MaxBatch, req.Replicas); err != nil {
				st := m.ctrl.Status()
				writeJSON(w, http.StatusUnprocessableEntity, AutoscaleResponse{Model: m.name, Status: &st, Error: err.Error()})
				return
			}
		case "unpin":
			m.ctrl.Unpin()
		default:
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("unknown action %q; use \"pin\" or \"unpin\"", req.Action))
			return
		}
		st := m.ctrl.Status()
		writeJSON(w, http.StatusOK, AutoscaleResponse{Model: m.name, Status: &st})
	default:
		w.Header().Set("Allow", "GET, HEAD, POST")
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "GET or POST required")
	}
}
