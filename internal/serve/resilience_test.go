package serve

// Failure-path tests: panic isolation, load shedding, deadlines, graceful
// shutdown, readiness. These exercise the resilience layer with faulty /
// blocking backends injected below the HTTP handler, under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitflow/internal/graph"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func metaFor(net *graph.Network) Meta {
	return Meta{
		Name:   net.Name,
		InputH: net.InH, InputW: net.InW, InputC: net.InC,
		Classes: net.Classes,
	}
}

// faultBackend panics when the first input value equals trigger —
// standing in for a panicking layer deep in graph/bitpack/kernels.
type faultBackend struct {
	net     *graph.Network
	trigger float32
}

func (b *faultBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	if x.Data[0] == b.trigger {
		panic("injected layer panic")
	}
	return b.net.InferChecked(x)
}

func (b *faultBackend) clone() backend {
	return &faultBackend{net: b.net.Clone(), trigger: b.trigger}
}

// blockingBackend parks every inference (after the warm-up call) until the
// test releases it, making saturation and drain states deterministic.
type blockingBackend struct {
	net     *graph.Network
	calls   *atomic.Int64
	entered chan struct{}
	release chan struct{}
}

func newBlockingBackend(net *graph.Network) *blockingBackend {
	return &blockingBackend{
		net:     net,
		calls:   new(atomic.Int64),
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *blockingBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	if b.calls.Add(1) > 1 { // first call is the constructor's warm-up
		b.entered <- struct{}{}
		<-b.release
	}
	return b.net.InferChecked(x)
}

func (b *blockingBackend) clone() backend {
	return &blockingBackend{net: b.net.Clone(), calls: b.calls, entered: b.entered, release: b.release}
}

// errBackend fails every inference — used to prove warm-up gates /readyz.
type errBackend struct{}

func (errBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	return nil, fmt.Errorf("backend permanently broken")
}
func (e errBackend) clone() backend { return e }

func decodeError(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	resp.Body.Close()
	return e
}

func getStatusz(t *testing.T, base string) Statusz {
	t.Helper()
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPanicRecoveryRestoresCapacity is the headline robustness test: K
// panicking requests interleaved with good ones must leave the server
// serving with ALL replicas available — no capacity loss, ever.
func TestPanicRecoveryRestoresCapacity(t *testing.T) {
	net := testNetwork(t)
	const replicas = 2
	s := newServer(metaFor(net), &faultBackend{net: net, trigger: 999}, Config{
		Replicas: replicas, RequestTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(150), 8, 8, 64)
	want := net.Infer(x)
	bad := make([]float32, len(x.Data))
	copy(bad, x.Data)
	bad[0] = 999

	const K = 6
	var wg sync.WaitGroup
	errs := make(chan error, 2*K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() { // panicking request must get a structured 500
			defer wg.Done()
			resp, _ := postInfer(t, ts, bad)
			if resp.StatusCode != http.StatusInternalServerError {
				errs <- fmt.Errorf("panic request: status %d", resp.StatusCode)
			}
		}()
		wg.Add(1)
		go func() { // interleaved good request must still succeed
			defer wg.Done()
			resp, out := postInfer(t, ts, x.Data)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("good request: status %d", resp.StatusCode)
				return
			}
			for c := range want {
				if out.Logits[c] != want[c] {
					errs <- fmt.Errorf("good request: logit %d drifted after panics", c)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Structured error body on the panic path.
	body, _ := json.Marshal(InferRequest{Data: bad})
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status %d", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "panic" || e.Error == "" {
		t.Errorf("panic error body %+v", e)
	}

	// Full capacity must survive: every replica slot back in the pool,
	// and `replicas` simultaneous good requests all succeed.
	if got := s.Introspect().PoolAvailable; got != replicas {
		t.Fatalf("pool has %d replicas after panics, want %d", got, replicas)
	}
	st := getStatusz(t, ts.URL)
	if st.ReplicasAvailable != replicas {
		t.Errorf("statusz replicas_available %d, want %d", st.ReplicasAvailable, replicas)
	}
	if st.Metrics.PanicsRecovered != K+1 {
		t.Errorf("panics_recovered %d, want %d", st.Metrics.PanicsRecovered, K+1)
	}
	var wg2 sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if resp, _ := postInfer(t, ts, x.Data); resp.StatusCode != http.StatusOK {
				t.Errorf("post-recovery request: status %d", resp.StatusCode)
			}
		}()
	}
	wg2.Wait()
}

// TestSaturationSheds429 pins the overload contract: with one replica
// busy and the one queue slot taken, the next request gets an immediate
// 429 with Retry-After instead of queueing unboundedly.
func TestSaturationSheds429(t *testing.T) {
	net := testNetwork(t)
	bb := newBlockingBackend(net)
	s := newServer(metaFor(net), bb, Config{
		Replicas: 1, MaxQueue: 1, RequestTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(151), 8, 8, 64)
	type result struct {
		status int
		out    InferResponse
	}
	results := make(chan result, 2)
	post := func() {
		resp, out := postInfer(t, ts, x.Data)
		results <- result{resp.StatusCode, out}
	}

	go post()
	<-bb.entered // request A now holds the only replica

	go post() // request B joins the queue
	waitCond(t, func() bool { return s.Introspect().GateWaiting == 1 })

	// Request C: queue full → immediate 429 + Retry-After.
	body, _ := json.Marshal(InferRequest{Data: x.Data})
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if e := decodeError(t, resp); e.Code != "queue_full" {
		t.Errorf("shed error body %+v", e)
	}

	bb.release <- struct{}{} // A finishes, B enters
	<-bb.entered
	bb.release <- struct{}{} // B finishes
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != http.StatusOK {
			t.Errorf("admitted request %d: status %d", i, r.status)
		}
	}
	if st := getStatusz(t, ts.URL); st.Metrics.Shed < 1 {
		t.Errorf("shed counter %d", st.Metrics.Shed)
	}
}

// TestDeadlineWhileQueued503 pins the deadline contract: a request whose
// deadline expires while waiting for a replica gets 503 + Retry-After.
func TestDeadlineWhileQueued503(t *testing.T) {
	net := testNetwork(t)
	bb := newBlockingBackend(net)
	s := newServer(metaFor(net), bb, Config{
		Replicas: 1, MaxQueue: 4, RequestTimeout: 80 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(152), 8, 8, 64)
	done := make(chan int, 1)
	go func() {
		resp, _ := postInfer(t, ts, x.Data)
		done <- resp.StatusCode
	}()
	<-bb.entered // A holds the replica past every deadline

	body, _ := json.Marshal(InferRequest{Data: x.Data})
	t0 := time.Now()
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline status %d, want 503", resp.StatusCode)
	}
	if time.Since(t0) > 5*time.Second {
		t.Errorf("deadline shed took %v", time.Since(t0))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if e := decodeError(t, resp); e.Code != "deadline" {
		t.Errorf("deadline error body %+v", e)
	}

	bb.release <- struct{}{}
	if status := <-done; status != http.StatusOK {
		t.Errorf("blocked request finished with %d", status)
	}
}

// TestGracefulShutdownDrains starts a real listener, parks a request
// in-flight, cancels the serve context, and asserts the request completes
// 200 and the server exits clean — the SIGTERM drain path end to end.
func TestGracefulShutdownDrains(t *testing.T) {
	net := testNetwork(t)
	bb := newBlockingBackend(net)
	s := newServer(metaFor(net), bb, Config{Replicas: 1, RequestTimeout: 10 * time.Second})

	l, err := net2Listen(t)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- s.ServeListener(ctx, l, HTTPConfig{ShutdownGrace: 5 * time.Second})
	}()

	if !s.Ready() {
		t.Fatal("server not ready before shutdown")
	}
	x := workload.RandTensor(workload.NewRNG(153), 8, 8, 64)
	body, _ := json.Marshal(InferRequest{Data: x.Data})
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-bb.entered // request is mid-inference

	cancel() // SIGTERM equivalent: drain begins
	waitCond(t, func() bool { return !s.Ready() })

	bb.release <- struct{}{} // let the in-flight request finish
	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d", status)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after drain")
	}
}

func TestReadyzGatedByWarmup(t *testing.T) {
	net := testNetwork(t)

	good := httptest.NewServer(New(net, 1).Handler())
	defer good.Close()
	resp, err := http.Get(good.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthy readyz %d", resp.StatusCode)
	}

	broken := newServer(metaFor(net), errBackend{}, Config{Replicas: 1})
	bs := httptest.NewServer(broken.Handler())
	defer bs.Close()
	resp, err = http.Get(bs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("broken readyz %d, want 503", resp.StatusCode)
	}
	// Liveness stays up even when not ready.
	resp, err = http.Get(bs.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("livez %d", resp.StatusCode)
	}
}

func TestStatuszCounters(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(net, 2).Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(154), 8, 8, 64)
	for i := 0; i < 3; i++ {
		if resp, _ := postInfer(t, ts, x.Data); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	postInfer(t, ts, make([]float32, 3)) // one bad request

	st := getStatusz(t, ts.URL)
	if st.Model != "srv" || !st.Ready || st.Replicas != 2 {
		t.Errorf("statusz identity %+v", st)
	}
	if st.Metrics.Requests != 4 || st.Metrics.OK != 3 || st.Metrics.BadRequests != 1 {
		t.Errorf("statusz counters %+v", st.Metrics)
	}
	if st.Metrics.LatencySamples != 3 {
		t.Errorf("statusz latency %+v", st.Metrics)
	}
	if st.RequestTimeout == "" || st.MaxQueue == 0 {
		t.Errorf("statusz config %+v", st)
	}
}

func TestNonFiniteInputRejected(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(net, 1).Handler())
	defer ts.Close()

	for name, poison := range map[string]float64{
		"nan": math.NaN(), "+inf": math.Inf(1), "-inf": math.Inf(-1),
	} {
		data := make([]float32, net.InH*net.InW*net.InC)
		data[7] = float32(poison)
		// encoding/json cannot marshal NaN/Inf, so build the body by hand
		// the way a hostile client would.
		var buf bytes.Buffer
		buf.WriteString(`{"data":[`)
		for i, v := range data {
			if i > 0 {
				buf.WriteByte(',')
			}
			if i == 7 {
				switch name {
				case "nan":
					buf.WriteString("NaN")
				case "+inf":
					buf.WriteString("Infinity")
				default:
					buf.WriteString("-Infinity")
				}
			} else {
				fmt.Fprintf(&buf, "%g", v)
			}
		}
		buf.WriteString(`]}`)
		resp, err := http.Post(ts.URL+"/infer", "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		// Go's decoder rejects bare NaN/Infinity tokens outright; either
		// way the server must answer 400, never binarize garbage.
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// encoding/json can never hand the handler a NaN (bare tokens fail to
	// decode, as asserted above), so exercise the defence-in-depth check
	// directly — it guards future non-JSON ingest paths.
	if err := validateFinite([]float32{1, float32(math.NaN()), 3}); err == nil {
		t.Error("validateFinite accepted NaN")
	}
	if err := validateFinite([]float32{float32(math.Inf(-1))}); err == nil {
		t.Error("validateFinite accepted -Inf")
	}
	if err := validateFinite([]float32{0, -1, 1e30}); err != nil {
		t.Errorf("validateFinite rejected finite data: %v", err)
	}
}

func TestMethodAndContentTypeChecks(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(net, 1).Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/model", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /model status %d", resp.StatusCode)
	}
	if resp.Header.Get("Allow") == "" {
		t.Error("405 without Allow header")
	}
	resp.Body.Close()

	body, _ := json.Marshal(InferRequest{Data: make([]float32, net.InH*net.InW*net.InC)})
	resp, err = http.Post(ts.URL+"/infer", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain /infer status %d, want 415", resp.StatusCode)
	}
	resp.Body.Close()
}

// net2Listen avoids shadowing the graph import name `net` in tests.
func net2Listen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
