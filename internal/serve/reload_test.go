package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitflow/internal/faultinject"
	"bitflow/internal/graph"
	"bitflow/internal/registry"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// seededNetwork builds the standard 8x8x64 test topology with chosen
// weights, so different seeds are genuinely different versions of the
// same request contract.
func seededNetwork(t *testing.T, name string, seed uint64) *graph.Network {
	t.Helper()
	net, err := graph.NewBuilder(name, 8, 8, 64, sched.Detect()).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Dense("d1", 4).
		Build(graph.RandomWeights{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// referenceLogits computes ground-truth logits on a private clone, so
// the serving path never touches the oracle network.
func referenceLogits(t *testing.T, net *graph.Network, xs []*workloadInput) [][]float32 {
	t.Helper()
	clone := net.Clone()
	refs := make([][]float32, len(xs))
	for i, x := range xs {
		refs[i] = append([]float32(nil), clone.Infer(x.tensor())...)
	}
	return refs
}

// workloadInput pairs a request body with its tensor form.
type workloadInput struct{ data []float32 }

func (w *workloadInput) tensor() *tensor.Tensor { return tensor.FromSlice(8, 8, 64, w.data) }

func probeInputs(n int, seed uint64) []*workloadInput {
	rng := workload.NewRNG(seed)
	xs := make([]*workloadInput, n)
	for i := range xs {
		x := workload.RandTensor(rng, 8, 8, 64)
		xs[i] = &workloadInput{data: x.Data}
	}
	return xs
}

func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReloadSwapServesNewVersion is the happy path: after ReloadModel the
// served logits are bit-exact against the new weights and the reload
// ledger records the swap.
func TestReloadSwapServesNewVersion(t *testing.T) {
	netV1 := seededNetwork(t, "m", 200)
	netV2 := seededNetwork(t, "m", 201)
	xs := probeInputs(3, 210)
	refV1 := referenceLogits(t, netV1, xs)
	refV2 := referenceLogits(t, netV2, xs)

	s := NewWithConfig(netV1, Config{Replicas: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i, x := range xs {
		resp, out := postInfer(t, ts, x.data)
		if resp.StatusCode != http.StatusOK || !bitEqual(out.Logits, refV1[i]) {
			t.Fatalf("v1 input %d: status %d logits %v, want %v", i, resp.StatusCode, out.Logits, refV1[i])
		}
	}

	st, err := s.ReloadModel(context.Background(), "", registry.FromNetwork("v2", netV2.Clone()))
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if st.Outcome != registry.OutcomeSwapped || st.From != "boot" || st.To != "v2" {
		t.Fatalf("reload status %+v", st)
	}
	if v, _ := s.ModelVersion(""); v != "v2" {
		t.Fatalf("version %q after swap", v)
	}

	for i, x := range xs {
		resp, out := postInfer(t, ts, x.data)
		if resp.StatusCode != http.StatusOK || !bitEqual(out.Logits, refV2[i]) {
			t.Fatalf("v2 input %d: status %d logits %v, want v2 logits", i, resp.StatusCode, out.Logits)
		}
	}

	// The per-model /statusz section carries the ledger.
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if raw["version"] != "v2" {
		t.Errorf("statusz version %v", raw["version"])
	}
	models, ok := raw["models"].(map[string]any)
	if !ok {
		t.Fatalf("statusz models section missing: %v", raw["models"])
	}
	sect, ok := models["m"].(map[string]any)
	if !ok {
		t.Fatalf("statusz models[m] missing: %v", models)
	}
	if sect["swaps"] != float64(1) || sect["version"] != "v2" {
		t.Errorf("model section %v", sect)
	}
	if _, ok := sect["last_reload"]; !ok {
		t.Error("model section has no last_reload")
	}
}

// TestReloadRejectsGeometryChange: a version swap must never change the
// request contract.
func TestReloadRejectsGeometryChange(t *testing.T) {
	s := NewWithConfig(seededNetwork(t, "m", 202), Config{Replicas: 1})
	other, err := graph.NewBuilder("m", 4, 4, 64, sched.Detect()).
		Dense("d1", 4).
		Build(graph.RandomWeights{Seed: 203})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReloadModel(context.Background(), "", registry.FromNetwork("v2", other)); err == nil {
		t.Fatal("reload accepted an artifact with different input geometry")
	}
	if v, _ := s.ModelVersion(""); v != "boot" {
		t.Fatalf("version %q changed by a rejected reload", v)
	}
}

// TestReloadSoakUnderLoad swaps versions repeatedly under sustained
// concurrent traffic — batched and unbatched — and requires zero failed
// requests, every response bit-exact against one of the versions in
// play, and no leaked gate tokens or replicas afterwards.
func TestReloadSoakUnderLoad(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"unbatched", Config{Replicas: 2, MaxQueue: 32}},
		{"batched", Config{Replicas: 2, MaxQueue: 32, Batching: true, BatchWindow: 200 * time.Microsecond, MaxBatch: 4}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			nets := []*graph.Network{
				seededNetwork(t, "soak", 220),
				seededNetwork(t, "soak", 221),
				seededNetwork(t, "soak", 222),
			}
			xs := probeInputs(4, 230)
			refs := make([][][]float32, len(nets))
			for v, n := range nets {
				refs[v] = referenceLogits(t, n, xs)
			}

			s := NewWithConfig(nets[0], mode.cfg)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			stop := make(chan struct{})
			var failures atomic.Int64
			var served atomic.Int64
			var wg sync.WaitGroup
			const clients = 2 // ≤ replicas: admission can never shed
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						idx := i % len(xs)
						body, _ := json.Marshal(InferRequest{Data: xs[idx].data})
						resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
						if err != nil {
							failures.Add(1)
							t.Errorf("client %d: %v", c, err)
							return
						}
						var out InferResponse
						decErr := json.NewDecoder(resp.Body).Decode(&out)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK || decErr != nil {
							failures.Add(1)
							t.Errorf("client %d: status %d (decode %v)", c, resp.StatusCode, decErr)
							return
						}
						match := false
						for v := range refs {
							if bitEqual(out.Logits, refs[v][idx]) {
								match = true
								break
							}
						}
						if !match {
							failures.Add(1)
							t.Errorf("client %d input %d: logits match no version", c, idx)
							return
						}
						served.Add(1)
					}
				}(c)
			}

			const swapsWanted = 6
			for i := 0; i < swapsWanted; i++ {
				// Swap only while traffic is flowing: on a single-core box
				// the swap loop can otherwise outrun client scheduling and
				// finish before any request lands.
				before := served.Load()
				waitCond(t, func() bool { return served.Load() > before })
				v := (i + 1) % len(nets)
				art := registry.FromNetwork(fmt.Sprintf("v%d", i+1), nets[v].Clone())
				st, err := s.ReloadModel(context.Background(), "", art)
				if err != nil {
					t.Fatalf("swap %d: %v (status %+v)", i, err, st)
				}
				if st.Outcome != registry.OutcomeSwapped || st.Stage != "" {
					t.Fatalf("swap %d: status %+v", i, st)
				}
			}
			close(stop)
			wg.Wait()

			if failures.Load() != 0 {
				t.Fatalf("%d failed requests during reload soak", failures.Load())
			}
			if served.Load() == 0 {
				t.Fatal("soak served no traffic")
			}

			// Conservation after the dust settles: no tokens held, no
			// replicas missing, the last version serving.
			waitCond(t, func() bool {
				in := s.Introspect()
				return in.GateHeld == 0 && in.GateWaiting == 0 &&
					(in.Batching || in.PoolAvailable == in.Replicas)
			})
			in := s.Introspect()
			if in.Version != fmt.Sprintf("v%d", swapsWanted) {
				t.Errorf("version %q after %d swaps", in.Version, swapsWanted)
			}
			if s.LastReload("").Outcome != registry.OutcomeSwapped {
				t.Errorf("last reload %+v", s.LastReload(""))
			}
		})
	}
}

// TestReloadVerifyFailureRollsBack injects a verification failure and
// requires a structured rollback with the old version still serving
// bit-exact logits.
func TestReloadVerifyFailureRollsBack(t *testing.T) {
	defer faultinject.Reset()
	netV1 := seededNetwork(t, "m", 240)
	xs := probeInputs(2, 241)
	refV1 := referenceLogits(t, netV1, xs)

	s := NewWithConfig(netV1, Config{Replicas: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faultinject.RegistrySwap.Set(func(ev faultinject.Event) error {
		if ev.Index == 0 {
			return fmt.Errorf("%w: candidate failed probe", faultinject.ErrInjected)
		}
		return nil
	})
	st, err := s.ReloadModel(context.Background(), "",
		registry.FromNetwork("v2", seededNetwork(t, "m", 242)))
	if err == nil {
		t.Fatal("injected verify failure did not error")
	}
	if st == nil || st.Outcome != registry.OutcomeRolledBack || st.Stage != registry.StageVerify {
		t.Fatalf("status %+v", st)
	}
	faultinject.Reset()

	if v, _ := s.ModelVersion(""); v != "boot" {
		t.Fatalf("version %q after rollback", v)
	}
	for i, x := range xs {
		resp, out := postInfer(t, ts, x.data)
		if resp.StatusCode != http.StatusOK || !bitEqual(out.Logits, refV1[i]) {
			t.Fatalf("post-rollback input %d: status %d, logits not bit-exact with old version", i, resp.StatusCode)
		}
	}
	in := s.Introspect()
	if in.GateHeld != 0 || in.PoolAvailable != in.Replicas {
		t.Fatalf("leak after rollback: %+v", in)
	}
}

// TestReloadPostFlipPanicRollsBackUnderLoad injects a panic after the
// pointer flip while traffic flows: the swap must roll back, capacity
// must be fully restored, and the old version must keep serving
// bit-exact logits.
func TestReloadPostFlipPanicRollsBackUnderLoad(t *testing.T) {
	defer faultinject.Reset()
	netV1 := seededNetwork(t, "m", 250)
	xs := probeInputs(2, 251)
	refV1 := referenceLogits(t, netV1, xs)
	refV2 := referenceLogits(t, seededNetwork(t, "m", 252), xs)

	s := NewWithConfig(netV1, Config{Replicas: 2, MaxQueue: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := i % len(xs)
				resp, out := postInfer(t, ts, xs[idx].data)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				// A request that raced the brief flip window may see v2;
				// anything else is corruption.
				if !bitEqual(out.Logits, refV1[idx]) && !bitEqual(out.Logits, refV2[idx]) {
					t.Errorf("client %d: logits match neither version", c)
					return
				}
			}
		}(c)
	}

	faultinject.RegistrySwap.Set(func(ev faultinject.Event) error {
		if ev.Index == 2 {
			panic("injected: crash after flip")
		}
		return nil
	})
	st, err := s.ReloadModel(context.Background(), "",
		registry.FromNetwork("v2", seededNetwork(t, "m", 252)))
	if err == nil {
		t.Fatal("post-flip panic did not error")
	}
	if st == nil || st.Outcome != registry.OutcomeRolledBack || st.Stage != registry.StageSwap {
		t.Fatalf("status %+v", st)
	}
	faultinject.Reset()
	close(stop)
	wg.Wait()

	if v, _ := s.ModelVersion(""); v != "boot" {
		t.Fatalf("version %q after rollback", v)
	}
	for i, x := range xs {
		resp, out := postInfer(t, ts, x.data)
		if resp.StatusCode != http.StatusOK || !bitEqual(out.Logits, refV1[i]) {
			t.Fatalf("post-rollback input %d not bit-exact on old version (status %d)", i, resp.StatusCode)
		}
	}
	waitCond(t, func() bool {
		in := s.Introspect()
		return in.GateHeld == 0 && in.PoolAvailable == in.Replicas
	})
	if got := s.def.rm.Rollbacks(); got != 1 {
		t.Errorf("rollbacks %d, want 1", got)
	}
}

// TestMultiModelRoutingAndIsolation serves two models and checks
// routing, per-model metrics isolation, and the 404 taxonomy.
func TestMultiModelRoutingAndIsolation(t *testing.T) {
	netA := seededNetwork(t, "alpha", 260)
	netB := seededNetwork(t, "beta", 261)
	xs := probeInputs(2, 262)
	refA := referenceLogits(t, netA, xs)
	refB := referenceLogits(t, netB, xs)

	s, err := NewMulti([]ModelSpec{
		{Name: "alpha", Net: netA, Cfg: Config{Replicas: 1}},
		{Name: "beta", Net: netB, Cfg: Config{Replicas: 1}, Default: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postTo := func(model string, data []float32) (int, InferResponse) {
		body, _ := json.Marshal(InferRequest{Data: data})
		resp, err := http.Post(ts.URL+"/v1/models/"+model+"/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out InferResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	for i, x := range xs {
		if code, out := postTo("alpha", x.data); code != http.StatusOK || !bitEqual(out.Logits, refA[i]) {
			t.Fatalf("alpha input %d: code %d", i, code)
		}
	}
	if code, out := postTo("beta", xs[0].data); code != http.StatusOK || !bitEqual(out.Logits, refB[0]) {
		t.Fatalf("beta: code %d", code)
	}
	// Legacy /infer routes to the default (beta).
	if resp, out := postInfer(t, ts, xs[0].data); resp.StatusCode != http.StatusOK || !bitEqual(out.Logits, refB[0]) {
		t.Fatalf("legacy /infer did not route to default model")
	}

	// Unknown model: stable machine-readable 404.
	body, _ := json.Marshal(InferRequest{Data: xs[0].data})
	resp, err := http.Post(ts.URL+"/v1/models/ghost/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || eresp.Code != "unknown_model" {
		t.Fatalf("ghost model: %d %+v", resp.StatusCode, eresp)
	}

	// QoS isolation: alpha's counters saw only alpha's traffic.
	if got := s.ModelMetrics("alpha").Requests.Load(); got != int64(len(xs)) {
		t.Errorf("alpha requests %d, want %d", got, len(xs))
	}
	if got := s.ModelMetrics("beta").Requests.Load(); got != 2 { // one direct + one legacy
		t.Errorf("beta requests %d, want 2", got)
	}

	// /v1/models lists both with the default flagged.
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Models) != 2 || listing.Models[0].Name != "alpha" || !listing.Models[1].Default {
		t.Fatalf("listing %+v", listing.Models)
	}

	// Per-model readiness in /readyz.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rs ReadyStatus
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rs.Ready || len(rs.Models) != 2 {
		t.Fatalf("readyz %d %+v", resp.StatusCode, rs)
	}
	if mr := rs.Models["alpha"]; !mr.Ready || mr.Version != "boot" {
		t.Errorf("alpha readiness %+v", mr)
	}
}

// TestAdminReloadEndpoint drives the operator surface end to end: load
// an artifact from disk, swap, and surface rollbacks as 422s with the
// structured status.
func TestAdminReloadEndpoint(t *testing.T) {
	defer faultinject.Reset()
	netV1 := seededNetwork(t, "m", 270)
	s := NewWithConfig(netV1, Config{Replicas: 1})
	admin := httptest.NewServer(s.AdminHandler(func(path, version string) (*registry.Artifact, error) {
		return registry.LoadArtifact(path, version, sched.Detect())
	}))
	defer admin.Close()

	saveNet := func(net *graph.Network) string {
		t.Helper()
		path := t.TempDir() + "/m.bflw"
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	path := saveNet(seededNetwork(t, "m", 271))

	post := func(body string) (int, ReloadResponse) {
		t.Helper()
		resp, err := http.Post(admin.URL+"/admin/reload", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr ReloadResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rr
	}

	// Happy path: 200 with the swap status.
	code, rr := post(fmt.Sprintf(`{"model":"m","path":%q,"version":"v2"}`, path))
	if code != http.StatusOK || rr.Status == nil || rr.Status.Outcome != registry.OutcomeSwapped {
		t.Fatalf("reload: %d %+v", code, rr)
	}
	if v, _ := s.ModelVersion(""); v != "v2" {
		t.Fatalf("version %q", v)
	}

	// Unknown model.
	if code, _ := post(`{"model":"ghost","path":"/nope"}`); code != http.StatusNotFound {
		t.Fatalf("ghost reload: %d", code)
	}
	// Missing path.
	if code, _ := post(`{"model":"m"}`); code != http.StatusBadRequest {
		t.Fatalf("missing path: %d", code)
	}
	// Loader failure: 422 with the error.
	code, rr = post(`{"model":"m","path":"/does/not/exist.bflw"}`)
	if code != http.StatusUnprocessableEntity || rr.Error == "" {
		t.Fatalf("load failure: %d %+v", code, rr)
	}
	// Injected verify failure: 422 carrying the rollback status.
	faultinject.RegistrySwap.Set(func(ev faultinject.Event) error {
		if ev.Index == 0 {
			return fmt.Errorf("%w: probe mismatch", faultinject.ErrInjected)
		}
		return nil
	})
	code, rr = post(fmt.Sprintf(`{"model":"m","path":%q,"version":"v3"}`, path))
	if code != http.StatusUnprocessableEntity || rr.Status == nil ||
		rr.Status.Outcome != registry.OutcomeRolledBack || rr.Error == "" {
		t.Fatalf("injected rollback: %d %+v", code, rr)
	}
	if v, _ := s.ModelVersion(""); v != "v2" {
		t.Fatalf("version %q changed by rolled-back reload", v)
	}
	// The admin ledger shows the attempt.
	resp, err := http.Get(admin.URL + "/admin/models")
	if err != nil {
		t.Fatal(err)
	}
	var ledger struct {
		Models []struct {
			Name      string `json:"name"`
			Version   string `json:"version"`
			Swaps     int64  `json:"swaps"`
			Rollbacks int64  `json:"rollbacks"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ledger.Models) != 1 || ledger.Models[0].Swaps != 1 || ledger.Models[0].Rollbacks != 1 {
		t.Fatalf("ledger %+v", ledger.Models)
	}
}
