package serve

// Execution-layer serving tests: a panic inside a ParallelFor chunk must
// surface as a structured 500 with capacity restored (before internal/exec
// the panic escaped on an unjoined goroutine and killed the process), the
// shared pool must be visible in /statusz, and a request cancelled
// mid-inference must come back as a 503 deadline, not a 400.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// chunkPanicBackend runs a pooled ParallelFor on every inference and
// panics inside the chunks when the input carries the trigger value —
// the failure mode of a bug deep in a conv kernel executing on pool
// workers, not on the request goroutine.
type chunkPanicBackend struct {
	net     *graph.Network
	pool    *exec.Pool
	trigger float32
}

func (b *chunkPanicBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	if x.Data[0] == b.trigger {
		ec := exec.Pooled(b.pool, 4)
		ec.ParallelFor(64, func(s, e int) {
			panic("conv chunk exploded mid-parallelFor")
		})
	}
	return b.net.InferContext(ctx, x)
}

func (b *chunkPanicBackend) clone() backend {
	return &chunkPanicBackend{net: b.net.Clone(), pool: b.pool, trigger: b.trigger}
}

func TestChunkPanicIsStructured500AndCapacityRestored(t *testing.T) {
	net := testNetwork(t)
	p := exec.NewPool(3)
	defer p.Close()
	const replicas = 2
	s := newServer(metaFor(net), &chunkPanicBackend{net: net, pool: p, trigger: 999}, Config{
		Replicas: replicas, RequestTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(170), 8, 8, 64)
	want := net.Infer(x)
	bad := make([]float32, len(x.Data))
	copy(bad, x.Data)
	bad[0] = 999

	// The worker-side panic must come back as a structured 500 — the
	// process surviving to write it is the point of the test.
	resp := postInferNoDecode(t, ts, bad)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("chunk panic: status %d, want 500", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "panic" || e.Error == "" {
		t.Fatalf("chunk panic error body %+v", e)
	}

	// Server must keep serving with full capacity and unchanged logits.
	resp2, out := postInfer(t, ts, x.Data)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d", resp2.StatusCode)
	}
	for c := range want {
		if out.Logits[c] != want[c] {
			t.Fatalf("post-panic logit %d drifted", c)
		}
	}
	if got := s.Introspect().PoolAvailable; got != replicas {
		t.Fatalf("replica pool has %d after chunk panic, want %d", got, replicas)
	}
	if got := s.Metrics().PanicsRecovered.Load(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
}

// postInferNoDecode posts an /infer body and returns the raw response,
// for paths where the status and error body are the assertion.
func postInferNoDecode(t *testing.T, ts *httptest.Server, data []float32) *http.Response {
	t.Helper()
	body, _ := json.Marshal(InferRequest{Data: data})
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeSharedPoolStatusz wires a real network through Config.Exec and
// checks the tentpole invariants at the HTTP surface: logits unchanged,
// the pool visible in /statusz with dispatches flowing, and per-layer
// p50/p99 present under metrics.layers.
func TestServeSharedPoolStatusz(t *testing.T) {
	net := testNetwork(t)
	ref := net.Clone() // reference logits from an unattached clone
	p := exec.NewPool(3)
	defer p.Close()
	s := NewWithConfig(net, Config{Replicas: 2, Exec: exec.Pooled(p, 4)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(171), 8, 8, 64)
	want := ref.Infer(x)
	for i := 0; i < 3; i++ {
		resp, out := postInfer(t, ts, x.Data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		for c := range want {
			if out.Logits[c] != want[c] {
				t.Fatalf("pooled logit %d: %v want %v", c, out.Logits[c], want[c])
			}
		}
	}

	st := getStatusz(t, ts.URL)
	if st.Exec == nil {
		t.Fatal("statusz has no exec section despite Config.Exec")
	}
	if st.Exec.Workers != 3 || st.Exec.Budget != 4 {
		t.Errorf("exec section workers=%d budget=%d, want 3/4", st.Exec.Workers, st.Exec.Budget)
	}
	if st.Exec.Dispatches == 0 {
		t.Error("no ParallelFor dispatches reached the shared pool")
	}
	if len(st.Metrics.Layers) == 0 {
		t.Fatal("no per-layer stats in statusz metrics")
	}
	seen := map[string]bool{}
	for _, ls := range st.Metrics.Layers {
		seen[ls.Name] = true
		if ls.Count == 0 || ls.P50 == "" {
			t.Errorf("layer %q has empty stats: %+v", ls.Name, ls)
		}
	}
	// c1 and p1 fuse at build time and report under the joined name.
	for _, name := range []string{"input", "c1+p1", "d1"} {
		if !seen[name] {
			t.Errorf("layer %q missing from statusz layer stats (got %v)", name, seen)
		}
	}
}

// ctxWaitBackend parks until the request context is done, then returns
// its error — a stand-in for a forward pass whose between-layer check
// observes the deadline.
type ctxWaitBackend struct{ net *graph.Network }

func (b ctxWaitBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	// Warm-up passes context.Background() (no deadline, nil Done);
	// only requests carrying a real deadline park here.
	if ctx != nil && ctx.Done() != nil {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return b.net.InferChecked(x)
}
func (b ctxWaitBackend) clone() backend { return ctxWaitBackend{net: b.net.Clone()} }

func TestDeadlineMidInferenceIs503(t *testing.T) {
	net := testNetwork(t)
	s := newServer(metaFor(net), ctxWaitBackend{net: net}, Config{
		Replicas: 1, RequestTimeout: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := workload.RandTensor(workload.NewRNG(172), 8, 8, 64)
	resp := postInferNoDecode(t, ts, x.Data)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-inference deadline: status %d, want 503", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "deadline" {
		t.Fatalf("error code %q, want deadline", e.Code)
	}
	if got := s.Metrics().Shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
}
