package serve

// Multi-model serving: the Server routes /v1/models/{model}/infer (and
// the legacy single-model endpoints, aimed at the default model) onto
// named models held in an internal/registry.Registry. Each model owns
// its admission gate and metrics — QoS isolation — while every replica
// of every model dispatches onto the one shared exec pool. Versions hot
// reload through registry.Model.Swap: the candidate replica set is
// built and verified off the hot path, the flip is one atomic pointer
// store, and any failure rolls back to the serving version.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bitflow/internal/batch"
	"bitflow/internal/control"
	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/registry"
	"bitflow/internal/resilience"
	"bitflow/internal/tensor"
)

// ErrUnknownModel marks lookups of a name the server does not serve.
var ErrUnknownModel = errors.New("serve: unknown model")

// ModelSpec configures one model for NewMulti.
type ModelSpec struct {
	// Name routes /v1/models/{name}/infer. Must be URL-safe.
	Name string
	// Net is the model's network (the first replica; others are clones).
	Net *graph.Network
	// Version labels the initial artifact in /statusz and reload
	// statuses. Defaults to "boot".
	Version string
	// Cfg is the model's QoS envelope: replicas, queue bound, deadline,
	// batching. Fixed for the model's lifetime — a version swap changes
	// weights, not capacity.
	Cfg Config
	// Default marks the model the legacy endpoints (/infer, /model)
	// route to. With none marked, the first spec is the default.
	Default bool
}

// model is the serve-side wrapper around a registry.Model: the QoS
// config that outlives version swaps plus the readiness latch.
type model struct {
	name string
	rm   *registry.Model
	cfg  Config // defaults applied
	// meta is the initial version's metadata; the request contract
	// (dims, classes) it describes is invariant across swaps, so the
	// request path reads it without pinning a version.
	meta      Meta
	isDefault bool
	ready     atomic.Bool
	// ctrl is the adaptive-serving controller, nil unless cfg.Autoscale
	// is set. Its Run loop is owned by ServeListener.
	ctrl *control.Controller
}

// replicaSet is one version's serving capacity: either a replica pool
// (unbatched) or a micro-batcher whose workers own the replicas. It is
// the registry.ReplicaSet payload the swap protocol manages.
type replicaSet struct {
	version string
	meta    Meta
	// replicas is the live replica count; atomic because the autoscale
	// controller resizes it while statusz and the oracle read it.
	replicas atomic.Int64
	pool     chan backend
	batcher  *batch.Batcher
	// exec is the resolved base execution context shared by this set's
	// replicas (nil for test backends that don't take one).
	exec *exec.Ctx

	// resizeMu serializes unbatched pool resizes (batched resizes
	// serialize inside the batcher).
	resizeMu sync.Mutex
	// ref is the dedicated verification backend (autoscaled sets only):
	// grown replicas are cloned from it and must reproduce refOut on refX
	// bit-for-bit before they may serve. Guarded by refMu.
	refMu  sync.Mutex
	ref    backend
	refX   *tensor.Tensor
	refOut []float32
}

// Version implements registry.ReplicaSet.
func (rs *replicaSet) Version() string { return rs.version }

// Retire implements registry.ReplicaSet: stop the batch workers or
// drain the replica pool. The registry only calls it once the set can
// no longer be pinned, so a non-full pool here means a replica leaked.
func (rs *replicaSet) Retire(ctx context.Context) error {
	if rs.batcher != nil {
		return rs.batcher.Close(ctx)
	}
	n := rs.Replicas()
	for i := 0; i < n; i++ {
		select {
		case <-rs.pool:
		default:
			return fmt.Errorf("serve: retiring %s: only %d/%d replicas returned", rs.version, i, n)
		}
	}
	return nil
}

// available reports how many replicas are idle right now.
func (rs *replicaSet) available() int {
	if rs.batcher != nil {
		// Batch workers never die (a panicked runner is replaced), so
		// the replica count is also the available count.
		return rs.Replicas()
	}
	return len(rs.pool)
}

// selfCheck runs the deterministic probe input through the set's real
// serving path (a pooled replica, or the batcher when batching) and
// requires logits bit-identical to the artifact's recorded probe — the
// last rung of the reload verification ladder, proving the replicas
// built from the artifact serve exactly what the prototype computed.
func (rs *replicaSet) selfCheck(ctx context.Context, x *tensor.Tensor, want []float32) error {
	var logits []float32
	var err error
	if rs.batcher != nil {
		logits, err = rs.batcher.Submit(ctx, x)
	} else {
		select {
		case b := <-rs.pool:
			logits, err = b.infer(ctx, x)
			rs.pool <- b
		default:
			return fmt.Errorf("serve: self-check: no idle replica in candidate set %s", rs.version)
		}
	}
	if err != nil {
		return fmt.Errorf("serve: self-check inference on %s: %w", rs.version, err)
	}
	if len(logits) != len(want) {
		return fmt.Errorf("serve: self-check on %s: %d logits, artifact probe has %d", rs.version, len(logits), len(want))
	}
	for i := range want {
		if logits[i] != want[i] {
			return fmt.Errorf("serve: self-check on %s: logit %d = %v, artifact probe %v — replica is not bit-exact",
				rs.version, i, logits[i], want[i])
		}
	}
	return nil
}

// buildReplicaSet clones "first" out to the configured replica count and
// wires the serving plumbing (pool or batcher) around the clones. cfg
// must already have defaults applied. It allocates and clones but never
// runs inference — verification is the caller's ladder.
func buildReplicaSet(version string, meta Meta, first backend, cfg Config, metrics *resilience.Metrics) (*replicaSet, error) {
	rs := &replicaSet{version: version, meta: meta}
	rs.replicas.Store(int64(cfg.Replicas))
	// Attach the shared execution context (pool + budget + layer-stats
	// observer) before cloning so the first backend — and every clone
	// taken from it below — dispatches onto the same pool.
	if ea, ok := first.(execAttacher); ok {
		rs.exec = ea.attachExec(cfg.Exec, metrics.ObserveLayer)
	} else {
		rs.exec = cfg.Exec
	}
	// Autoscaled sets keep a dedicated reference backend aside: resize
	// growth clones from it and verifies against its logits, without
	// ever competing with traffic for a pooled replica.
	if cfg.Autoscale != nil {
		rs.ref = first.clone()
	}
	// Queue, pool, and batch buffers are provisioned for the autoscale
	// ceiling up front, so growth is a token-count change, never a
	// reallocation under load.
	poolCap, prep := cfg.Replicas, cfg.MaxBatch
	queueCap := gateCapacity(cfg) + cfg.MaxQueue
	if ac := cfg.Autoscale; ac != nil {
		poolCap = ac.MaxReplicas
		queueCap = maxGateCapacity(cfg) + cfg.MaxQueue
		if cfg.Batching {
			prep = ac.MaxBatch
		}
	}
	if cfg.Batching {
		// The batch workers own the backends: worker i gets the i-th
		// replica (lane pools pre-grown to MaxBatch), and a worker whose
		// runner panicked gets a fresh clone from the factory.
		var mu sync.Mutex
		handedFirst := false
		bcfg := batch.Config{
			Window:   cfg.BatchWindow,
			MaxBatch: cfg.MaxBatch,
			Workers:  cfg.Replicas,
			QueueCap: queueCap,
			Metrics:  metrics,
			NewRunner: func() (batch.Runner, error) {
				mu.Lock()
				defer mu.Unlock()
				bk := first
				if handedFirst {
					bk = first.clone()
				}
				handedFirst = true
				if bp, ok := bk.(batchPreparer); ok {
					bp.prepareBatch(prep)
				}
				return backendRunner{b: bk}, nil
			},
		}
		if cfg.Autoscale != nil {
			bcfg.VerifyRunner = func(r batch.Runner) error { return rs.verifyRunner(r.InferBatch) }
		}
		b, err := batch.New(bcfg)
		if err != nil {
			return nil, fmt.Errorf("serve: building batcher for %s: %w", version, err)
		}
		rs.batcher = b
		return rs, nil
	}
	rs.pool = make(chan backend, poolCap)
	rs.pool <- first
	for i := 1; i < cfg.Replicas; i++ {
		rs.pool <- first.clone()
	}
	return rs, nil
}

// gateCapacity computes the admission budget: in batch mode a "slot" is
// a seat in a forming batch, not a whole replica, so admission must
// allow Replicas×MaxBatch concurrent requests or batches could never
// fill.
func gateCapacity(cfg Config) int {
	if cfg.Batching {
		return cfg.Replicas * cfg.MaxBatch
	}
	return cfg.Replicas
}

// currentSet returns the set a non-request-path reader (statusz, admin)
// should describe. Request paths pin via rm.Acquire instead.
func (m *model) currentSet() *replicaSet {
	rs, _ := m.rm.Current().(*replicaSet)
	return rs
}

// metaFromNetwork derives the /model metadata for one network.
func metaFromNetwork(net *graph.Network) Meta {
	ms := net.ModelSize()
	return Meta{
		Name:   net.Name,
		InputH: net.InH, InputW: net.InW, InputC: net.InC,
		Classes:          net.Classes,
		Layers:           len(net.Layers()),
		FusedLayers:      net.Fusion().Pairs,
		CompressedLayers: net.CompressedLayers(),
		Weights:          ms.Weights,
		PackedBytes:      ms.BinarizedBytes,
		CompressionRate:  ms.Compression(),
	}
}

// NewMulti builds a server hosting one model per spec. Every model gets
// its own gate and metrics; the legacy endpoints route to the default
// spec (the first, unless one sets Default).
func NewMulti(specs []ModelSpec) (*Server, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no models")
	}
	s := &Server{
		reg:     registry.New(),
		byName:  map[string]*model{},
		started: time.Now(),
	}
	defaults := 0
	for _, sp := range specs {
		if sp.Default {
			defaults++
		}
	}
	if defaults > 1 {
		return nil, fmt.Errorf("serve: multiple models marked default")
	}
	for i, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("serve: model %d has no name", i)
		}
		if !registry.ValidName(sp.Name) {
			return nil, fmt.Errorf("serve: model name %q is not URL-safe", sp.Name)
		}
		if sp.Net == nil {
			return nil, fmt.Errorf("serve: model %q has no network", sp.Name)
		}
		m, err := s.addModel(sp.Name, orBoot(sp.Version), metaFromNetwork(sp.Net), netBackend{net: sp.Net}, sp.Cfg)
		if err != nil {
			return nil, err
		}
		if sp.Default || (defaults == 0 && i == 0) {
			m.isDefault = true
			s.def = m
		}
	}
	return s, nil
}

func orBoot(version string) string {
	if version == "" {
		return "boot"
	}
	return version
}

// addModel builds the model around its first replica set, runs the
// warm-up that arms readiness, and registers it.
func (s *Server) addModel(name, version string, meta Meta, first backend, cfg Config) (*model, error) {
	cfg = cfg.withDefaults()
	if cfg.Autoscale != nil {
		if err := cfg.Autoscale.validate(cfg); err != nil {
			return nil, fmt.Errorf("%w (model %q)", err, name)
		}
	}
	meta.Replicas = cfg.Replicas
	metrics := resilience.NewMetrics(1024)
	gate := resilience.NewResizableGate(gateCapacity(cfg), gateLimit(cfg), cfg.MaxQueue)
	m := &model{name: name, cfg: cfg, meta: meta}
	// Warm up on the first backend before it enters the pool (or the
	// batch workers take ownership): a model that cannot infer must
	// never be marked ready.
	x := tensor.New(meta.InputH, meta.InputW, meta.InputC)
	var inferErr error
	panicErr := resilience.Safe(func() { _, inferErr = first.infer(context.Background(), x) })
	m.ready.Store(panicErr == nil && inferErr == nil)

	rs, err := buildReplicaSet(version, meta, first, cfg, metrics)
	if err != nil {
		return nil, err
	}
	m.rm = registry.NewModel(name, gate, metrics, rs)
	if ac := cfg.Autoscale; ac != nil {
		ctrl, err := control.New(control.Config{
			Model:        name,
			Bounds:       ac.bounds(),
			Static:       staticSetpoints(cfg),
			Batching:     cfg.Batching,
			Interval:     ac.Interval,
			HighLoad:     ac.HighLoad,
			LowLoad:      ac.LowLoad,
			Cooldown:     ac.Cooldown,
			CorruptLimit: ac.CorruptLimit,
			RecoverAfter: ac.RecoverAfter,
			LedgerSize:   ac.LedgerSize,
			Source:       m.signals,
			// Apply bounds its own drain waits past the request deadline:
			// every in-flight holder either finishes or sheds within
			// RequestTimeout, so a shrink that cannot complete by then is
			// stuck, not draining.
			Actuator: &modelActuator{m: m, timeout: cfg.RequestTimeout + 5*time.Second},
		})
		if err != nil {
			return nil, fmt.Errorf("serve: autoscale %q: %w", name, err)
		}
		m.ctrl = ctrl
	}
	if err := s.reg.Add(m.rm); err != nil {
		return nil, err
	}
	s.byName[name] = m
	s.order = append(s.order, m)
	return m, nil
}

// lookup resolves a model by name, "" meaning the default model.
func (s *Server) lookup(name string) (*model, bool) {
	if name == "" {
		return s.def, s.def != nil
	}
	m, ok := s.byName[name]
	return m, ok
}

// Models lists the served model names in registration order.
func (s *Server) Models() []string {
	names := make([]string, len(s.order))
	for i, m := range s.order {
		names[i] = m.name
	}
	return names
}

// ModelMetrics returns the named model's counters ("" = default), or
// nil if unknown — for tests and the conformance oracle.
func (s *Server) ModelMetrics(name string) *resilience.Metrics {
	m, ok := s.lookup(name)
	if !ok {
		return nil
	}
	return m.rm.Metrics()
}

// ModelVersion reports the named model's currently-serving version.
func (s *Server) ModelVersion(name string) (string, error) {
	m, ok := s.lookup(name)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m.rm.Version(), nil
}

// LastReload returns the named model's most recent reload status, nil
// if it never reloaded.
func (s *Server) LastReload(name string) *registry.ReloadStatus {
	m, ok := s.lookup(name)
	if !ok {
		return nil
	}
	return m.rm.LastReload()
}

// ModelMeta returns the live /model metadata for a named model
// ("" = default) — after a hot reload, the metadata of the serving
// version, not the boot-time one.
func (s *Server) ModelMeta(name string) (Meta, error) {
	m, ok := s.lookup(name)
	if !ok {
		return Meta{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	meta := m.meta
	if rs := m.currentSet(); rs != nil {
		meta = rs.meta
	}
	return meta, nil
}

// IntrospectModel is Introspect for a named model ("" = default).
func (s *Server) IntrospectModel(name string) (Introspection, error) {
	m, ok := s.lookup(name)
	if !ok {
		return Introspection{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	gate := m.rm.Gate()
	in := Introspection{
		Model:        m.name,
		Version:      m.rm.Version(),
		GateHeld:     gate.Held(),
		GateWaiting:  gate.Waiting(),
		GateCapacity: gate.Capacity(),
		GateMaxQueue: gate.MaxQueue(),
		Replicas:     m.cfg.Replicas,
		Batching:     m.cfg.Batching,
	}
	if rs := m.currentSet(); rs != nil {
		in.PoolAvailable = rs.available()
		// The live count — under autoscaling it drifts from cfg.Replicas.
		in.Replicas = rs.Replicas()
	}
	return in, nil
}

// ReloadModel atomically swaps the named model onto the artifact: the
// candidate replica set is built and verified off the hot path (the
// artifact's warm-up/probe ladder, then a bit-exact self-check through
// the candidate's real serving path), the flip is one atomic pointer
// store, and any failure — including a panic mid-swap — rolls back to
// the serving version with a structured reason. In-flight requests
// drain on whichever version they pinned.
func (s *Server) ReloadModel(ctx context.Context, name string, art *registry.Artifact) (*registry.ReloadStatus, error) {
	m, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if art == nil || art.Net == nil {
		return nil, fmt.Errorf("serve: reload %s: nil artifact", name)
	}
	// A version swap changes weights, never the request contract:
	// clients encoding H×W×C inputs and reading Classes logits must not
	// be broken by a reload.
	if cur := m.currentSet(); cur != nil {
		if art.Net.InH != cur.meta.InputH || art.Net.InW != cur.meta.InputW ||
			art.Net.InC != cur.meta.InputC || art.Net.Classes != cur.meta.Classes {
			return nil, fmt.Errorf("serve: reload %s: artifact geometry %dx%dx%d->%d does not match serving %dx%dx%d->%d",
				name, art.Net.InH, art.Net.InW, art.Net.InC, art.Net.Classes,
				cur.meta.InputH, cur.meta.InputW, cur.meta.InputC, cur.meta.Classes)
		}
	}
	// Build the candidate at the LIVE geometry: under autoscaling the
	// controller's setpoints — not the boot flags — describe the gate
	// capacity and worker count the candidate must match when it flips in.
	// (A resize landing between this read and the swap is reconciled by
	// the controller's next tick, which compares the served set against
	// its setpoints and re-actuates.)
	cfg := m.cfg
	if m.ctrl != nil {
		sp := m.ctrl.Setpoints()
		cfg.Replicas = sp.Replicas
		if cfg.Batching {
			cfg.BatchWindow, cfg.MaxBatch = sp.Window, sp.MaxBatch
		}
	}
	meta := metaFromNetwork(art.Net)
	meta.Replicas = cfg.Replicas

	// Build the candidate set under Safe: a crash while cloning replicas
	// or starting batch workers must surface as a reload error, never
	// take the serving process down.
	var (
		candidate *replicaSet
		buildErr  error
	)
	if perr := resilience.Safe(func() {
		candidate, buildErr = buildReplicaSet(art.Version, meta, netBackend{net: art.Net}, cfg, m.rm.Metrics())
	}); perr != nil {
		buildErr = perr
	}
	if buildErr != nil {
		return nil, fmt.Errorf("serve: reload %s: building candidate: %w", name, buildErr)
	}

	verify := func(vset registry.ReplicaSet) error {
		// The artifact ladder: warm-up inference, finite probe logits,
		// prototype/clone bit-exactness. Records art.Probe.
		if err := art.Verify(); err != nil {
			return err
		}
		rs, ok := vset.(*replicaSet)
		if !ok {
			return fmt.Errorf("serve: reload %s: candidate is %T, not a replica set", name, vset)
		}
		return rs.selfCheck(ctx, art.ProbeInput(), art.Probe)
	}
	return m.rm.Swap(ctx, candidate, verify)
}

// ---------------------------------------------------------------------
// Admin surface: reloads are operator actions, so they live on their own
// handler the caller binds to a separate (typically loopback-only)
// listener — never the traffic port.

// ArtifactLoader opens and decodes a packed artifact for the admin
// reload endpoint. cmd/bitflow-serve supplies registry.LoadArtifact
// closed over the detected CPU features; serve itself stays
// schedule-agnostic.
type ArtifactLoader func(path, version string) (*registry.Artifact, error)

// ReloadRequest is the POST /admin/reload body.
type ReloadRequest struct {
	Model   string `json:"model"`
	Path    string `json:"path"`
	Version string `json:"version,omitempty"`
}

// ReloadResponse reports one reload attempt: the structured status when
// the swap protocol ran (either outcome), plus the error string on
// failure.
type ReloadResponse struct {
	Status *registry.ReloadStatus `json:"status,omitempty"`
	Error  string                 `json:"error,omitempty"`
}

// AdminHandler returns the operator endpoint tree:
//
//	POST /admin/reload    → {"model","path","version"?} — load, verify,
//	                        and atomically swap; 200 on swap, 422 with
//	                        the rollback status on any verification
//	                        failure.
//	GET  /admin/models    → per-model reload ledger.
//	GET  /admin/autoscale → per-model controller state (autoscaled only).
//	POST /admin/autoscale → {"model","action":"pin"|"unpin",...} — pin
//	                        setpoints or resume adaptation.
func (s *Server) AdminHandler(load ArtifactLoader) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/autoscale", s.handleAdminAutoscale)
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
			return
		}
		var req ReloadRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request: %v", err))
			return
		}
		m, ok := s.lookup(req.Model)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown_model",
				fmt.Sprintf("unknown model %q", req.Model))
			return
		}
		if req.Path == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "path is required")
			return
		}
		art, err := load(req.Path, req.Version)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, ReloadResponse{Error: err.Error()})
			return
		}
		st, err := s.ReloadModel(r.Context(), m.name, art)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, ReloadResponse{Status: st, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, ReloadResponse{Status: st})
	})
	mux.HandleFunc("/admin/models", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeError(w, http.StatusMethodNotAllowed, "bad_request", "GET required")
			return
		}
		type ledger struct {
			Name       string                 `json:"name"`
			Version    string                 `json:"version"`
			Default    bool                   `json:"default,omitempty"`
			Swaps      int64                  `json:"swaps"`
			Rollbacks  int64                  `json:"rollbacks"`
			LastReload *registry.ReloadStatus `json:"last_reload,omitempty"`
		}
		out := make([]ledger, len(s.order))
		for i, m := range s.order {
			out[i] = ledger{
				Name:       m.name,
				Version:    m.rm.Version(),
				Default:    m.isDefault,
				Swaps:      m.rm.Swaps(),
				Rollbacks:  m.rm.Rollbacks(),
				LastReload: m.rm.LastReload(),
			}
		}
		writeJSON(w, http.StatusOK, struct {
			Models []ledger `json:"models"`
		}{out})
	})
	return mux
}
