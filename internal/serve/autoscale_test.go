package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"bitflow/internal/control"
	"bitflow/internal/graph"
	"bitflow/internal/registry"
	"bitflow/internal/tensor"
)

// quickAutoscale is a controller configuration fast enough for tests:
// 2ms ticks, minimal cooldown.
func quickAutoscale(maxReplicas int) *AutoscaleConfig {
	return &AutoscaleConfig{
		Interval:    2 * time.Millisecond,
		MaxReplicas: maxReplicas,
		Cooldown:    1,
	}
}

func TestActuatorResizesUnbatchedPoolBitExact(t *testing.T) {
	net := seededNetwork(t, "m", 400)
	xs := probeInputs(4, 410)
	ref := referenceLogits(t, net, xs)

	s := NewWithConfig(net, Config{Replicas: 1, Autoscale: quickAutoscale(3)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	act := &modelActuator{m: s.def, timeout: 5 * time.Second}
	sp := staticSetpoints(s.def.cfg)
	sp.Replicas = 3
	if err := act.Apply(context.Background(), sp); err != nil {
		t.Fatalf("grow: %v", err)
	}
	in := s.Introspect()
	if in.Replicas != 3 || in.GateCapacity != 3 || in.PoolAvailable != 3 {
		t.Fatalf("after grow: replicas=%d gate=%d pool=%d, want 3/3/3", in.Replicas, in.GateCapacity, in.PoolAvailable)
	}
	// Every grown replica serves the reference logits bit-for-bit. Three
	// concurrent requests force all three replicas into use at least once
	// across the sweep.
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for i, x := range xs {
			wg.Add(1)
			go func(i int, data []float32) {
				defer wg.Done()
				body, _ := json.Marshal(InferRequest{Data: data})
				resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("infer: %v", err)
					return
				}
				defer resp.Body.Close()
				var out InferResponse
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				if !bitEqual(out.Logits, ref[i]) {
					t.Errorf("input %d: grown replica diverged: %v vs %v", i, out.Logits, ref[i])
				}
			}(i, x.data)
		}
		wg.Wait()
	}

	// Shrink back below the starting point is refused only by bounds the
	// CONTROLLER enforces; the actuator itself honors any n ≥ 1.
	sp.Replicas = 1
	if err := act.Apply(context.Background(), sp); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	in = s.Introspect()
	if in.Replicas != 1 || in.GateCapacity != 1 || in.PoolAvailable != 1 {
		t.Fatalf("after shrink: replicas=%d gate=%d pool=%d, want 1/1/1", in.Replicas, in.GateCapacity, in.PoolAvailable)
	}
}

func TestActuatorRetunesBatchedGeometry(t *testing.T) {
	net := seededNetwork(t, "m", 401)
	s := NewWithConfig(net, Config{
		Replicas: 1, Batching: true, BatchWindow: 2 * time.Millisecond, MaxBatch: 2,
		Autoscale: &AutoscaleConfig{Interval: 2 * time.Millisecond, MaxReplicas: 2, MaxBatch: 8},
	})
	defer closeServer(t, s)

	act := &modelActuator{m: s.def, timeout: 5 * time.Second}
	sp := control.Setpoints{Window: 4 * time.Millisecond, MaxBatch: 8, Replicas: 2}
	if err := act.Apply(context.Background(), sp); err != nil {
		t.Fatalf("apply: %v", err)
	}
	rs := s.def.currentSet()
	w, mb, workers := rs.batcher.Params()
	if w != 4*time.Millisecond || mb != 8 || workers != 2 {
		t.Fatalf("batcher params (%v, %d, %d), want (4ms, 8, 2)", w, mb, workers)
	}
	if got := s.def.rm.Gate().Capacity(); got != 16 {
		t.Fatalf("gate capacity %d, want replicas×max-batch = 16", got)
	}
	// A second Apply with identical setpoints is a no-op, not a resize.
	before := s.def.rm.Resizes()
	if err := act.Apply(context.Background(), sp); err != nil {
		t.Fatalf("idempotent apply: %v", err)
	}
	if s.def.rm.Resizes() != before {
		t.Fatal("no-op apply triggered a resize")
	}
}

// closeServer retires every model's replica set (ServeListener does this
// after drain; tests that never start a listener do it directly).
func closeServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, m := range s.order {
		if err := m.rm.Close(ctx); err != nil {
			t.Errorf("closing %s: %v", m.name, err)
		}
	}
}

// slowBackend holds each inference for a fixed delay so a small client
// fleet keeps the admission gate visibly saturated — fast real inferences
// leave the gate empty at most controller sampling instants.
type slowBackend struct {
	net   *graph.Network
	delay time.Duration
}

func (b *slowBackend) infer(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	select {
	case <-time.After(b.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.net.InferChecked(x)
}

func (b *slowBackend) clone() backend { return &slowBackend{net: b.net.Clone(), delay: b.delay} }

func TestControllerScalesUpUnderLoadAndBackDown(t *testing.T) {
	net := seededNetwork(t, "m", 402)
	s := newServer(metaFor(net), &slowBackend{net: net, delay: 3 * time.Millisecond}, Config{
		Replicas: 1, MaxQueue: 4, RequestTimeout: 5 * time.Second,
		Autoscale: quickAutoscale(3),
	})
	l, err := net2Listen(t)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ServeListener(ctx, l, HTTPConfig{}) }()
	base := "http://" + l.Addr().String()
	x := probeInputs(1, 420)[0]
	body, _ := json.Marshal(InferRequest{Data: x.data})

	// Closed-loop overload: 8 clients against 1 replica keeps the gate
	// saturated with waiters, so the controller must add replicas.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	waitCond(t, func() bool { return s.Introspect().Replicas > 1 })
	close(stop)
	wg.Wait()

	// Idle: the gate is empty, so the controller walks back to the floor.
	waitCond(t, func() bool { return s.Introspect().Replicas == 1 })

	st := s.ControlStatus("")
	if st == nil || st.Actuations < 2 {
		t.Fatalf("control status %+v: expected at least one scale-up and one scale-down", st)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestStatuszControlSection(t *testing.T) {
	net := seededNetwork(t, "m", 403)
	s := NewWithConfig(net, Config{Replicas: 2, Autoscale: quickAutoscale(4)})
	defer closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := getStatusz(t, ts.URL)
	if st.Control == nil {
		t.Fatal("autoscaled server has no control section")
	}
	if st.Control.State != control.StateAdapting {
		t.Fatalf("state %q, want adapting", st.Control.State)
	}
	if st.Control.Setpoints.Replicas != 2 || st.Control.Static.Replicas != 2 {
		t.Fatalf("setpoints %+v static %+v, want replicas 2", st.Control.Setpoints, st.Control.Static)
	}
	if st.Control.Bounds.MaxReplicas != 4 || st.Control.Bounds.MinReplicas != 1 {
		t.Fatalf("bounds %+v", st.Control.Bounds)
	}

	// A plain server has no control key at all.
	s2 := NewWithConfig(seededNetwork(t, "m", 404), Config{Replicas: 1})
	defer closeServer(t, s2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := raw["control"]; ok {
		t.Fatal("non-autoscaled statusz grew a control key")
	}
}

func TestAdminAutoscalePinUnpin(t *testing.T) {
	net := seededNetwork(t, "m", 405)
	s := NewWithConfig(net, Config{Replicas: 1, Autoscale: quickAutoscale(4)})
	defer closeServer(t, s)
	admin := httptest.NewServer(s.AdminHandler(nil))
	defer admin.Close()

	post := func(body string) (*http.Response, AutoscaleResponse) {
		t.Helper()
		resp, err := http.Post(admin.URL+"/admin/autoscale", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var out AutoscaleResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, out
	}

	// Pin replicas to 3: the resize actually lands, and the controller
	// freezes there.
	resp, out := post(`{"action":"pin","replicas":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pin: status %d (%s)", resp.StatusCode, out.Error)
	}
	if out.Status.State != control.StatePinned || out.Status.Setpoints.Replicas != 3 {
		t.Fatalf("pin status %+v", out.Status)
	}
	if in := s.Introspect(); in.Replicas != 3 || in.GateCapacity != 3 {
		t.Fatalf("pin did not actuate: %+v", in)
	}

	// Pin requests clamp into bounds (MaxReplicas 4).
	resp, out = post(`{"action":"pin","replicas":99}`)
	if resp.StatusCode != http.StatusOK || out.Status.Setpoints.Replicas != 4 {
		t.Fatalf("out-of-bounds pin: status %d %+v", resp.StatusCode, out.Status)
	}

	resp, out = post(`{"action":"unpin"}`)
	if resp.StatusCode != http.StatusOK || out.Status.State != control.StateAdapting {
		t.Fatalf("unpin: status %d state %+v", resp.StatusCode, out.Status)
	}

	if resp, _ = post(`{"model":"ghost","action":"pin"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model pin: status %d", resp.StatusCode)
	}
	if resp, _ = post(`{"action":"sideways"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad action: status %d", resp.StatusCode)
	}

	// GET reports the controller.
	getResp, err := http.Get(admin.URL + "/admin/autoscale")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Models map[string]*control.Status `json:"models"`
	}
	if err := json.NewDecoder(getResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if len(listing.Models) != 1 || listing.Models[net.Name] == nil {
		t.Fatalf("autoscale listing %+v", listing.Models)
	}

	// A server without autoscaling answers 422, not 404.
	s2 := NewWithConfig(seededNetwork(t, "m", 406), Config{Replicas: 1})
	defer closeServer(t, s2)
	admin2 := httptest.NewServer(s2.AdminHandler(nil))
	defer admin2.Close()
	resp2, err := http.Post(admin2.URL+"/admin/autoscale", "application/json",
		bytes.NewReader([]byte(`{"action":"pin","replicas":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("pin without autoscale: status %d, want 422", resp2.StatusCode)
	}
}

func TestReloadBuildsCandidateAtLiveSetpoints(t *testing.T) {
	netV1 := seededNetwork(t, "m", 407)
	netV2 := seededNetwork(t, "m", 408)
	s := NewWithConfig(netV1, Config{Replicas: 1, Autoscale: quickAutoscale(3)})
	defer closeServer(t, s)

	act := &modelActuator{m: s.def, timeout: 5 * time.Second}
	sp := staticSetpoints(s.def.cfg)
	sp.Replicas = 2
	if err := act.Apply(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	// Pin so the (unstarted) controller's setpoints stay at 2.
	if _, err := s.PinModel(context.Background(), "", 0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReloadModel(context.Background(), "", registry.FromNetwork("v2", netV2.Clone())); err != nil {
		t.Fatalf("reload: %v", err)
	}
	in := s.Introspect()
	if in.Version != "v2" || in.Replicas != 2 || in.PoolAvailable != 2 {
		t.Fatalf("post-reload introspection %+v, want v2 at 2 replicas", in)
	}
}

func TestAutoscaleConfigValidation(t *testing.T) {
	net := seededNetwork(t, "m", 409)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"static replicas above max", Config{Replicas: 4, Autoscale: &AutoscaleConfig{MaxReplicas: 2}}},
		{"min above max", Config{Replicas: 1, Autoscale: &AutoscaleConfig{MinReplicas: 3, MaxReplicas: 2}}},
		{"static max-batch above bound", Config{
			Replicas: 1, Batching: true, MaxBatch: 32,
			Autoscale: &AutoscaleConfig{MaxReplicas: 2, MaxBatch: 16},
		}},
		{"static window above bound", Config{
			Replicas: 1, Batching: true, BatchWindow: 10 * time.Millisecond,
			Autoscale: &AutoscaleConfig{MaxReplicas: 2, MaxWindow: 4 * time.Millisecond},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewMulti([]ModelSpec{{Name: "m", Net: net, Cfg: tc.cfg}})
			if err == nil {
				t.Fatal("contradictory autoscale config accepted")
			}
		})
	}
}

func TestRetryAfterDerivedFromCongestion(t *testing.T) {
	net := seededNetwork(t, "m", 411)
	s := NewWithConfig(net, Config{Replicas: 1, MaxQueue: 8})
	defer closeServer(t, s)
	m := s.def

	// No latency history: the estimate degrades to the legacy "1".
	if got := retryAfter(m); got != "1" {
		t.Fatalf("cold retryAfter = %q, want 1", got)
	}

	// 2s typical service time, 1 token held, 2 waiting → ceil(3×2s/1) = 6s.
	for i := 0; i < 8; i++ {
		m.rm.Metrics().ObserveLatency(2 * time.Second)
	}
	g := m.rm.Gate()
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wctx, wcancel := context.WithCancel(ctx)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = g.Acquire(wctx)
		}()
	}
	waitCond(t, func() bool { return g.Waiting() == 2 })
	got, err := strconv.Atoi(retryAfter(m))
	if err != nil || got != 6 {
		t.Fatalf("retryAfter = %v (err %v), want 6", got, err)
	}
	wcancel()
	wg.Wait()
	g.Release()

	// The hint is clamped to a minute no matter how deep the backlog.
	for i := 0; i < 64; i++ {
		m.rm.Metrics().ObserveLatency(90 * time.Second)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := retryAfter(m); got != "60" {
		t.Fatalf("clamped retryAfter = %q, want 60", got)
	}
	g.Release()
}
