// Package control is the closed-loop autoscale controller: it observes
// the signals the serving stack already exports (gate queue depth and
// held tokens, batch occupancy, shed counts, latency quantiles) and
// continuously retunes the serving geometry — batch window, max-batch,
// and replica count — within operator-declared bounds.
//
// The controller is deliberately decoupled from the things it controls:
// it reads through a Source function and acts through an Actuator
// interface, both injected at construction, and imports none of the
// serving packages. Actuation therefore can only go through the exported
// retune/resize APIs the actuator wraps — an invariant bitflow-vet's
// `actuate` rule enforces statically.
//
// Stability over cleverness:
//
//   - Hysteresis: scale-up triggers (shed, deep queue, saturated gate)
//     and scale-down triggers (empty queue, idle gate, near-empty
//     batches) are separated by a wide dead band, so ordinary load noise
//     actuates nothing.
//   - Cooldown: after any actuation the controller holds for a fixed
//     number of ticks, so one burst produces one step, not a staircase
//     of flapping.
//   - Degrade to static: signals that fail validation (negative gauges,
//     regressing counters, a Source error, an injected control.tick
//     fault) count as corrupt ticks; enough consecutive corruption and
//     the controller reverts the system to its static configuration and
//     stops adapting until the signals have been clean again for a
//     while. A broken sensor yields the startup flags, never
//     oscillation.
//   - Pinning: an operator can pin setpoints through the admin API;
//     pinned setpoints are applied once and the controller goes
//     observe-only until unpinned.
//
// Every actuation, degradation, recovery, and pin is recorded in a
// bounded decision ledger surfaced on /statusz.
package control

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"bitflow/internal/faultinject"
	"bitflow/internal/resilience"
)

// Setpoints is one serving geometry: the three control variables the
// loop owns.
type Setpoints struct {
	// Window is the micro-batch coalescing window (ignored when the
	// model does not batch).
	Window time.Duration
	// MaxBatch is the micro-batch size cap (ignored when not batching).
	MaxBatch int
	// Replicas is the model's replica count (batch workers when
	// batching, pooled backends otherwise).
	Replicas int
}

// Bounds are the operator-declared limits the controller must never
// leave, whatever the signals say.
type Bounds struct {
	MinWindow, MaxWindow     time.Duration
	MinBatch, MaxBatch       int
	MinReplicas, MaxReplicas int
}

// Clamp forces sp inside b on every axis.
func (b Bounds) Clamp(sp Setpoints) Setpoints {
	sp.Window = min(max(sp.Window, b.MinWindow), b.MaxWindow)
	sp.MaxBatch = min(max(sp.MaxBatch, b.MinBatch), b.MaxBatch)
	sp.Replicas = min(max(sp.Replicas, b.MinReplicas), b.MaxReplicas)
	return sp
}

// Contains reports whether sp is inside b on every axis.
func (b Bounds) Contains(sp Setpoints) bool { return b.Clamp(sp) == sp }

func (b Bounds) validate() error {
	if b.MinWindow <= 0 || b.MaxWindow < b.MinWindow {
		return fmt.Errorf("control: window bounds [%v, %v] invalid", b.MinWindow, b.MaxWindow)
	}
	if b.MinBatch < 1 || b.MaxBatch < b.MinBatch {
		return fmt.Errorf("control: max-batch bounds [%d, %d] invalid", b.MinBatch, b.MaxBatch)
	}
	if b.MinReplicas < 1 || b.MaxReplicas < b.MinReplicas {
		return fmt.Errorf("control: replica bounds [%d, %d] invalid", b.MinReplicas, b.MaxReplicas)
	}
	return nil
}

// Signals is one observation of the serving stack. Gauges are
// instantaneous; the counters are cumulative and the controller
// differences them between ticks itself.
type Signals struct {
	// Gauges.
	QueueDepth   int64         // admission waiters right now
	GateHeld     int64         // admission tokens held right now
	GateCapacity int           // current admission concurrency
	MaxQueue     int           // admission wait-queue bound
	P50          time.Duration // recent service-time quantiles
	P99          time.Duration

	// Cumulative counters.
	Requests   int64
	OK         int64
	Shed       int64
	Batches    int64
	BatchItems int64
}

func (s Signals) validate() error {
	switch {
	case s.QueueDepth < 0, s.GateHeld < 0, s.GateCapacity < 1, s.MaxQueue < 0:
		return fmt.Errorf("control: gauge out of range (queue=%d held=%d capacity=%d max_queue=%d)",
			s.QueueDepth, s.GateHeld, s.GateCapacity, s.MaxQueue)
	case s.P50 < 0, s.P99 < 0:
		return fmt.Errorf("control: negative latency quantile (p50=%v p99=%v)", s.P50, s.P99)
	case s.Requests < 0, s.OK < 0, s.Shed < 0, s.Batches < 0, s.BatchItems < 0:
		return errors.New("control: negative cumulative counter")
	}
	return nil
}

// regressed reports whether any cumulative counter moved backwards since
// prev — the signature of a corrupted or reset signal source.
func (s Signals) regressed(prev Signals) bool {
	return s.Requests < prev.Requests || s.OK < prev.OK || s.Shed < prev.Shed ||
		s.Batches < prev.Batches || s.BatchItems < prev.BatchItems
}

// Source reads one observation. It is called once per tick, off the
// request path; an error marks the tick corrupt.
type Source func() (Signals, error)

// Actuator applies a new geometry to the serving stack. Implementations
// must go through the exported retune/resize APIs (batch.Batcher.Retune,
// registry.Model.Resize) — bitflow-vet enforces that they never poke
// fields directly.
type Actuator interface {
	Apply(ctx context.Context, sp Setpoints) error
}

// Controller states.
const (
	// StateAdapting: the loop is live and may actuate.
	StateAdapting = "adapting"
	// StatePinned: an operator pinned the setpoints; observe-only.
	StatePinned = "pinned"
	// StateDegraded: signal corruption reverted the system to its static
	// configuration; observe-only until signals are clean again.
	StateDegraded = "degraded"
)

// Decision actions, as recorded in the ledger.
const (
	ActionScaleUp     = "scale_up"
	ActionScaleDown   = "scale_down"
	ActionDegrade     = "degrade"
	ActionRecover     = "recover"
	ActionPin         = "pin"
	ActionUnpin       = "unpin"
	ActionApplyFailed = "apply_failed"
)

// Config parameterizes a Controller. Source and Actuator are required.
type Config struct {
	// Model names the controlled model in ledger entries and fault
	// events.
	Model string
	// Bounds are the operator limits; required.
	Bounds Bounds
	// Static is the startup-flag geometry: the initial setpoints and the
	// configuration the controller reverts to when degraded. Clamped to
	// Bounds.
	Static Setpoints
	// Batching enables the window/max-batch axes; when false only
	// Replicas is actuated.
	Batching bool
	// Interval is the tick period for Run. Default 250ms.
	Interval time.Duration
	// HighLoad is the queue-fraction scale-up threshold. Default 0.75.
	HighLoad float64
	// LowLoad is the gate-utilization scale-down threshold. Default 0.25.
	LowLoad float64
	// Cooldown is the number of ticks to hold after an actuation.
	// Default 3.
	Cooldown int
	// CorruptLimit is the number of consecutive corrupt ticks before the
	// controller degrades to Static. Default 3.
	CorruptLimit int
	// RecoverAfter is the number of consecutive clean ticks before a
	// degraded controller resumes adapting. Default 5.
	RecoverAfter int
	// LedgerSize bounds the decision ledger. Default 32.
	LedgerSize int

	Source   Source
	Actuator Actuator
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.HighLoad <= 0 {
		c.HighLoad = 0.75
	}
	if c.LowLoad <= 0 {
		c.LowLoad = 0.25
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3
	}
	if c.CorruptLimit <= 0 {
		c.CorruptLimit = 3
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 5
	}
	if c.LedgerSize <= 0 {
		c.LedgerSize = 32
	}
	return c
}

// Decision is one ledger entry.
type Decision struct {
	Tick      int64           `json:"tick"`
	Action    string          `json:"action"`
	Reason    string          `json:"reason"`
	Setpoints SetpointsStatus `json:"setpoints"`
}

// SetpointsStatus is the JSON rendering of Setpoints.
type SetpointsStatus struct {
	Window   string `json:"window"`
	MaxBatch int    `json:"max_batch"`
	Replicas int    `json:"replicas"`
}

func (sp Setpoints) status() SetpointsStatus {
	return SetpointsStatus{Window: sp.Window.String(), MaxBatch: sp.MaxBatch, Replicas: sp.Replicas}
}

// BoundsStatus is the JSON rendering of Bounds.
type BoundsStatus struct {
	MinWindow   string `json:"min_window"`
	MaxWindow   string `json:"max_window"`
	MinBatch    int    `json:"min_batch"`
	MaxBatch    int    `json:"max_batch"`
	MinReplicas int    `json:"min_replicas"`
	MaxReplicas int    `json:"max_replicas"`
}

// Status is the controller's /statusz section.
type Status struct {
	State        string          `json:"state"`
	Setpoints    SetpointsStatus `json:"setpoints"`
	Static       SetpointsStatus `json:"static"`
	Bounds       BoundsStatus    `json:"bounds"`
	Ticks        int64           `json:"ticks"`
	Actuations   int64           `json:"actuations"`
	CorruptTicks int64           `json:"corrupt_ticks"`
	Decisions    []Decision      `json:"decisions,omitempty"`
}

// Controller runs the loop. Create with New; drive with Run (or Tick
// directly in tests). All methods are safe for concurrent use.
type Controller struct {
	cfg Config

	mu           sync.Mutex
	cur          Setpoints
	state        string
	ticks        int64
	actuations   int64
	corruptTotal int64
	corruptRun   int
	cleanRun     int
	cooldown     int
	needStatic   bool // a degrade's revert-to-static has not landed yet
	prev         Signals
	havePrev     bool
	ledger       []Decision
}

// New builds a controller. The initial setpoints are cfg.Static clamped
// to cfg.Bounds; nothing is actuated until the first Tick decides to.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Source == nil || cfg.Actuator == nil {
		return nil, errors.New("control: Config.Source and Config.Actuator are required")
	}
	if err := cfg.Bounds.validate(); err != nil {
		return nil, err
	}
	if cfg.HighLoad <= cfg.LowLoad {
		return nil, fmt.Errorf("control: HighLoad %.2f must exceed LowLoad %.2f", cfg.HighLoad, cfg.LowLoad)
	}
	cfg.Static = cfg.Bounds.Clamp(cfg.Static)
	return &Controller{cfg: cfg, cur: cfg.Static, state: StateAdapting}, nil
}

// Interval returns the configured tick period.
func (c *Controller) Interval() time.Duration { return c.cfg.Interval }

// Setpoints returns the current geometry as the controller believes it.
func (c *Controller) Setpoints() Setpoints {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Run drives the controller at cfg.Interval until ctx is done. It
// blocks; the caller owns the goroutine (this package spawns none).
func (c *Controller) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Tick(ctx)
		}
	}
}

// Tick runs one control iteration: fire the control.tick fault point,
// read and validate signals, and — when adapting, past cooldown, and
// outside the dead band — actuate one bounded step. The whole body runs
// under resilience.Safe: a panicking source or actuator is a corrupt
// tick, never a crash.
func (c *Controller) Tick(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++

	var sig Signals
	var serr error
	if perr := resilience.Safe(func() {
		if err := faultinject.ControlTick.Fire(ctx, c.cfg.Model, int(c.ticks)); err != nil {
			serr = err
			return
		}
		sig, serr = c.cfg.Source()
		if serr == nil {
			serr = sig.validate()
		}
		if serr == nil && c.havePrev && sig.regressed(c.prev) {
			serr = errors.New("control: cumulative counters regressed")
		}
	}); perr != nil {
		serr = perr
	}
	if serr != nil {
		c.corruptTick(ctx, serr)
		return
	}
	c.cleanTick(ctx, sig)
}

// corruptTick accounts one invalid observation and degrades to the
// static configuration once corruption persists.
func (c *Controller) corruptTick(ctx context.Context, cause error) {
	c.corruptTotal++
	c.corruptRun++
	c.cleanRun = 0
	if c.state == StatePinned {
		return // the operator's pin outranks the sensors
	}
	if c.state == StateDegraded {
		c.retryStatic(ctx)
		return
	}
	if c.corruptRun < c.cfg.CorruptLimit {
		return
	}
	c.state = StateDegraded
	c.needStatic = c.cur != c.cfg.Static
	reason := fmt.Sprintf("%d consecutive corrupt ticks (%v): reverting to static configuration", c.corruptRun, cause)
	if c.needStatic {
		if err := c.apply(ctx, c.cfg.Static); err != nil {
			c.record(ActionApplyFailed, fmt.Sprintf("degrade revert failed: %v", err))
		} else {
			c.cur = c.cfg.Static
			c.needStatic = false
		}
	}
	c.record(ActionDegrade, reason)
}

// retryStatic re-attempts a degrade's revert that failed to land.
func (c *Controller) retryStatic(ctx context.Context) {
	if !c.needStatic {
		return
	}
	if err := c.apply(ctx, c.cfg.Static); err == nil {
		c.cur = c.cfg.Static
		c.needStatic = false
	}
}

// cleanTick processes one valid observation.
func (c *Controller) cleanTick(ctx context.Context, sig Signals) {
	c.corruptRun = 0
	defer func() { c.prev = sig; c.havePrev = true }()

	switch c.state {
	case StatePinned:
		return
	case StateDegraded:
		c.retryStatic(ctx)
		c.cleanRun++
		if c.cleanRun < c.cfg.RecoverAfter || c.needStatic {
			return
		}
		c.state = StateAdapting
		c.cleanRun = 0
		c.cooldown = c.cfg.Cooldown
		c.record(ActionRecover, fmt.Sprintf("signals clean for %d ticks: resuming adaptation from static", c.cfg.RecoverAfter))
		return
	}

	if !c.havePrev {
		return // need a counter baseline before the first decision
	}
	if c.cooldown > 0 {
		c.cooldown--
		return
	}
	next, reason, action := c.decide(sig)
	if action == "" {
		return
	}
	if err := c.apply(ctx, next); err != nil {
		c.record(ActionApplyFailed, fmt.Sprintf("%s rejected: %v", action, err))
		c.cooldown = c.cfg.Cooldown // don't hammer a failing actuator
		return
	}
	c.cur = next
	c.actuations++
	c.cooldown = c.cfg.Cooldown
	c.record(action, reason)
}

// decide picks the next geometry from one observation, or returns an
// empty action to hold. One bounded step per call, scale-up unwinding in
// reverse order of scale-down, with a wide dead band between the two
// trigger sets.
func (c *Controller) decide(sig Signals) (Setpoints, string, string) {
	b := c.cfg.Bounds
	next := c.cur

	shed := sig.Shed - c.prev.Shed
	util := float64(sig.GateHeld) / float64(max(sig.GateCapacity, 1))
	queueFrac := 0.0
	if sig.MaxQueue > 0 {
		queueFrac = float64(sig.QueueDepth) / float64(sig.MaxQueue)
	} else if sig.QueueDepth > 0 {
		queueFrac = 1
	}

	// Scale up: requests were shed, the wait queue is deep, or every
	// admission token is held with more callers waiting.
	if shed > 0 || queueFrac >= c.cfg.HighLoad || (util >= 1 && sig.QueueDepth > 0) {
		pressure := fmt.Sprintf("shed=%d queue=%.2f util=%.2f", shed, queueFrac, util)
		if c.cfg.Batching && next.MaxBatch < b.MaxBatch {
			next.MaxBatch = min(next.MaxBatch*2, b.MaxBatch)
			next.Window = min(max(next.Window*2, c.cfg.Static.Window), b.MaxWindow)
			return next, fmt.Sprintf("pressure (%s): max-batch %d→%d window→%v",
				pressure, c.cur.MaxBatch, next.MaxBatch, next.Window), ActionScaleUp
		}
		if next.Replicas < b.MaxReplicas {
			next.Replicas++
			return next, fmt.Sprintf("pressure (%s): replicas %d→%d",
				pressure, c.cur.Replicas, next.Replicas), ActionScaleUp
		}
		return c.cur, "", "" // already at the operator's ceiling
	}

	// Scale down: no shedding and no queue. Replicas trim on an idle
	// gate; the batch axes trim when dispatched batches run near-empty
	// (halving the cap cannot cause size-cap flushes that weren't
	// already happening).
	if shed == 0 && sig.QueueDepth == 0 {
		if next.Replicas > b.MinReplicas && util <= c.cfg.LowLoad {
			next.Replicas--
			return next, fmt.Sprintf("idle gate (util=%.2f): replicas %d→%d",
				util, c.cur.Replicas, next.Replicas), ActionScaleDown
		}
		batches := sig.Batches - c.prev.Batches
		items := sig.BatchItems - c.prev.BatchItems
		if c.cfg.Batching && next.MaxBatch > b.MinBatch && batches > 0 && items*2 <= batches*int64(next.MaxBatch) {
			occ := float64(items) / float64(batches)
			next.MaxBatch = max(next.MaxBatch/2, b.MinBatch)
			next.Window = max(next.Window/2, b.MinWindow)
			return next, fmt.Sprintf("near-empty batches (occupancy %.1f of %d): max-batch %d→%d window→%v",
				occ, c.cur.MaxBatch, c.cur.MaxBatch, next.MaxBatch, next.Window), ActionScaleDown
		}
	}
	return c.cur, "", ""
}

// apply pushes a geometry through the actuator under Safe.
func (c *Controller) apply(ctx context.Context, sp Setpoints) error {
	var aerr error
	if perr := resilience.Safe(func() { aerr = c.cfg.Actuator.Apply(ctx, sp) }); perr != nil {
		return perr
	}
	return aerr
}

// record appends one ledger entry, evicting the oldest past LedgerSize.
func (c *Controller) record(action, reason string) {
	c.ledger = append(c.ledger, Decision{Tick: c.ticks, Action: action, Reason: reason, Setpoints: c.cur.status()})
	if len(c.ledger) > c.cfg.LedgerSize {
		c.ledger = c.ledger[len(c.ledger)-c.cfg.LedgerSize:]
	}
}

// Pin applies sp (clamped to bounds) and freezes the controller on it
// until Unpin. Pinned outranks both adaptation and degradation.
func (c *Controller) Pin(ctx context.Context, sp Setpoints) (Setpoints, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp = c.cfg.Bounds.Clamp(sp)
	if !c.cfg.Batching {
		// Only the replica axis is actuatable; keep the batch axes where
		// they are so the clamp of zero-valued inputs doesn't "change" them.
		sp.Window, sp.MaxBatch = c.cur.Window, c.cur.MaxBatch
	}
	if err := c.apply(ctx, sp); err != nil {
		c.record(ActionApplyFailed, fmt.Sprintf("pin rejected: %v", err))
		return c.cur, err
	}
	c.cur = sp
	c.state = StatePinned
	c.needStatic = false
	c.record(ActionPin, fmt.Sprintf("operator pinned window=%v max-batch=%d replicas=%d", sp.Window, sp.MaxBatch, sp.Replicas))
	return sp, nil
}

// Unpin releases an operator pin; the controller resumes adapting from
// the pinned geometry after one cooldown.
func (c *Controller) Unpin() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StatePinned {
		return
	}
	c.state = StateAdapting
	c.corruptRun = 0
	c.cleanRun = 0
	c.cooldown = c.cfg.Cooldown
	c.record(ActionUnpin, "operator unpinned; resuming adaptation")
}

// Status snapshots the controller for /statusz.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.cfg.Bounds
	return Status{
		State:     c.state,
		Setpoints: c.cur.status(),
		Static:    c.cfg.Static.status(),
		Bounds: BoundsStatus{
			MinWindow: b.MinWindow.String(), MaxWindow: b.MaxWindow.String(),
			MinBatch: b.MinBatch, MaxBatch: b.MaxBatch,
			MinReplicas: b.MinReplicas, MaxReplicas: b.MaxReplicas,
		},
		Ticks:        c.ticks,
		Actuations:   c.actuations,
		CorruptTicks: c.corruptTotal,
		Decisions:    append([]Decision(nil), c.ledger...),
	}
}
