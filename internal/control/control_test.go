package control

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bitflow/internal/faultinject"
)

// fakeActuator records every Apply and can be told to fail.
type fakeActuator struct {
	mu      sync.Mutex
	applied []Setpoints
	fail    error
}

func (a *fakeActuator) Apply(_ context.Context, sp Setpoints) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fail != nil {
		return a.fail
	}
	a.applied = append(a.applied, sp)
	return nil
}

func (a *fakeActuator) all() []Setpoints {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Setpoints(nil), a.applied...)
}

// sigScript replays a sequence of observations, repeating the last one.
type sigScript struct {
	mu   sync.Mutex
	seq  []Signals
	errs []error
	i    int
}

func (s *sigScript) read() (Signals, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.i
	if i >= len(s.seq) {
		i = len(s.seq) - 1
	}
	s.i++
	var err error
	if i < len(s.errs) {
		err = s.errs[i]
	}
	return s.seq[i], err
}

func testBounds() Bounds {
	return Bounds{
		MinWindow: 500 * time.Microsecond, MaxWindow: 4 * time.Millisecond,
		MinBatch: 1, MaxBatch: 16,
		MinReplicas: 1, MaxReplicas: 4,
	}
}

func testConfig(src Source, act Actuator) Config {
	return Config{
		Model:  "m",
		Bounds: testBounds(),
		Static: Setpoints{Window: 2 * time.Millisecond, MaxBatch: 4, Replicas: 2},

		Batching:     true,
		Cooldown:     1,
		CorruptLimit: 3,
		RecoverAfter: 5,
		Source:       src,
		Actuator:     act,
	}
}

// saturated is an observation that demands scale-up: the queue is deep
// and requests were shed.
func saturated(tick int64, cap int) Signals {
	return Signals{
		QueueDepth: 14, GateHeld: int64(cap), GateCapacity: cap, MaxQueue: 16,
		Requests: tick * 100, OK: tick * 80, Shed: tick * 20,
		Batches: tick * 10, BatchItems: tick * 10 * 4,
	}
}

// idle is an observation that permits scale-down: empty queue, idle
// gate, near-empty batches.
func idle(tick int64, cap, maxBatch int) Signals {
	return Signals{
		QueueDepth: 0, GateHeld: 0, GateCapacity: cap, MaxQueue: 16,
		Requests: 1000 + tick, OK: 1000 + tick, Shed: 50,
		Batches: 1000 + tick, BatchItems: 4000 + tick, // occupancy ~1
	}
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestScaleUpLadderRespectsBoundsAndCooldown(t *testing.T) {
	act := &fakeActuator{}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return saturated(tick, 8), nil
	}, act))

	for i := 0; i < 40; i++ {
		c.Tick(context.Background())
	}
	applied := act.all()
	if len(applied) == 0 {
		t.Fatalf("saturated signals never actuated")
	}
	b := testBounds()
	for i, sp := range applied {
		if !b.Contains(sp) {
			t.Fatalf("applied[%d] = %+v outside bounds", i, sp)
		}
	}
	final := c.Setpoints()
	if final.MaxBatch != b.MaxBatch || final.Replicas != b.MaxReplicas {
		t.Fatalf("sustained saturation should climb to the ceiling, got %+v", final)
	}
	// The batch axis climbs before the replica axis.
	sawReplicaGrow := false
	for _, sp := range applied {
		if sp.Replicas > 2 && sp.MaxBatch != b.MaxBatch {
			t.Fatalf("replicas grew before max-batch hit its bound: %+v", sp)
		}
		if sp.Replicas > 2 {
			sawReplicaGrow = true
		}
	}
	if !sawReplicaGrow {
		t.Fatalf("replicas never grew under sustained saturation")
	}
	// Cooldown: with Cooldown=1 every actuation needs ≥2 ticks, and the
	// ladder has at most 2 (batch) + 2 (replica) steps.
	if len(applied) > 4 {
		t.Fatalf("expected ≤4 ladder steps, actuated %d times (flapping?)", len(applied))
	}
}

func TestScaleDownWhenIdle(t *testing.T) {
	act := &fakeActuator{}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return idle(tick, 8, 4), nil
	}, act))

	for i := 0; i < 40; i++ {
		c.Tick(context.Background())
	}
	b := testBounds()
	final := c.Setpoints()
	if final.Replicas != b.MinReplicas || final.MaxBatch != b.MinBatch {
		t.Fatalf("sustained idle should trim to the floor, got %+v", final)
	}
	if final.Window != b.MinWindow {
		t.Fatalf("window should trim toward MinWindow when idle, got %v", final.Window)
	}
	for i, sp := range act.all() {
		if !b.Contains(sp) {
			t.Fatalf("applied[%d] = %+v outside bounds", i, sp)
		}
	}
}

func TestDeadBandHolds(t *testing.T) {
	act := &fakeActuator{}
	var tick int64
	// Moderate load: some held tokens, shallow queue, healthy batches —
	// inside the dead band on every axis.
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return Signals{
			QueueDepth: 2, GateHeld: 4, GateCapacity: 8, MaxQueue: 16,
			Requests: tick * 10, OK: tick * 10,
			Batches: tick * 3, BatchItems: tick * 9, // occupancy 3 of 4
		}, nil
	}, act))
	for i := 0; i < 30; i++ {
		c.Tick(context.Background())
	}
	if n := len(act.all()); n != 0 {
		t.Fatalf("dead-band signals actuated %d times, want 0", n)
	}
	if st := c.Status(); st.State != StateAdapting {
		t.Fatalf("state = %s, want adapting", st.State)
	}
}

func TestDegradeOnCorruptSignalsThenRecover(t *testing.T) {
	act := &fakeActuator{}
	corrupt := errors.New("sensor on fire")
	var tick int64
	var mu sync.Mutex
	failing := true
	c := mustNew(t, testConfig(func() (Signals, error) {
		mu.Lock()
		f := failing
		mu.Unlock()
		tick++
		if f {
			return Signals{}, corrupt
		}
		return idle(tick, 4, 4), nil
	}, act))

	// Drive it away from static first so the revert is observable.
	mu.Lock()
	failing = false
	mu.Unlock()
	for i := 0; i < 10; i++ {
		c.Tick(context.Background())
	}
	moved := c.Setpoints()
	if moved == c.Status().staticSetpoints() {
		t.Fatalf("precondition: controller never moved off static")
	}

	mu.Lock()
	failing = true
	mu.Unlock()
	for i := 0; i < 3; i++ { // CorruptLimit = 3
		c.Tick(context.Background())
	}
	st := c.Status()
	if st.State != StateDegraded {
		t.Fatalf("state after corruption = %s, want degraded", st.State)
	}
	got := c.Setpoints()
	want := Setpoints{Window: 2 * time.Millisecond, MaxBatch: 4, Replicas: 2}
	if got != want {
		t.Fatalf("degraded setpoints = %+v, want static %+v", got, want)
	}

	// While degraded and still corrupt, nothing adapts.
	for i := 0; i < 10; i++ {
		c.Tick(context.Background())
	}
	if c.Setpoints() != want {
		t.Fatalf("degraded controller moved off static: %+v", c.Setpoints())
	}

	// Clean signals for RecoverAfter ticks resume adaptation.
	mu.Lock()
	failing = false
	mu.Unlock()
	for i := 0; i < 5; i++ {
		c.Tick(context.Background())
	}
	if st := c.Status(); st.State != StateAdapting {
		t.Fatalf("state after clean ticks = %s, want adapting", st.State)
	}
	// And the ledger tells the story.
	var sawDegrade, sawRecover bool
	for _, d := range c.Status().Decisions {
		switch d.Action {
		case ActionDegrade:
			sawDegrade = true
		case ActionRecover:
			sawRecover = true
		}
	}
	if !sawDegrade || !sawRecover {
		t.Fatalf("ledger missing degrade/recover: %+v", c.Status().Decisions)
	}
}

// staticSetpoints parses the static geometry back out of a Status — a
// test-only convenience.
func (s Status) staticSetpoints() Setpoints {
	d, _ := time.ParseDuration(s.Static.Window)
	return Setpoints{Window: d, MaxBatch: s.Static.MaxBatch, Replicas: s.Static.Replicas}
}

func TestCounterRegressionIsCorrupt(t *testing.T) {
	act := &fakeActuator{}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		s := idle(tick, 4, 4)
		if tick > 5 {
			s.Requests = 1 // cumulative counter jumps backwards
		}
		return s, nil
	}, act))
	for i := 0; i < 12; i++ {
		c.Tick(context.Background())
	}
	if st := c.Status(); st.State != StateDegraded || st.CorruptTicks == 0 {
		t.Fatalf("regressing counters: state=%s corrupt=%d, want degraded with corrupt ticks", st.State, st.CorruptTicks)
	}
}

func TestPinOutranksAdaptationAndCorruption(t *testing.T) {
	act := &fakeActuator{}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return saturated(tick, 8), nil
	}, act))

	pinned, err := c.Pin(context.Background(), Setpoints{Window: time.Millisecond, MaxBatch: 2, Replicas: 3})
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if pinned != (Setpoints{Window: time.Millisecond, MaxBatch: 2, Replicas: 3}) {
		t.Fatalf("pinned = %+v", pinned)
	}
	for i := 0; i < 20; i++ {
		c.Tick(context.Background())
	}
	if c.Setpoints() != pinned {
		t.Fatalf("pinned controller moved: %+v", c.Setpoints())
	}
	if st := c.Status(); st.State != StatePinned {
		t.Fatalf("state = %s, want pinned", st.State)
	}

	c.Unpin()
	for i := 0; i < 20; i++ {
		c.Tick(context.Background())
	}
	if c.Setpoints() == pinned {
		t.Fatalf("unpinned controller never resumed adapting under saturation")
	}
}

func TestPinClampsToBounds(t *testing.T) {
	act := &fakeActuator{}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return idle(tick, 4, 4), nil
	}, act))
	got, err := c.Pin(context.Background(), Setpoints{Window: time.Second, MaxBatch: 999, Replicas: 99})
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	b := testBounds()
	want := Setpoints{Window: b.MaxWindow, MaxBatch: b.MaxBatch, Replicas: b.MaxReplicas}
	if got != want {
		t.Fatalf("Pin clamp = %+v, want %+v", got, want)
	}
}

func TestApplyFailureKeepsSetpointsAndCoolsDown(t *testing.T) {
	act := &fakeActuator{fail: errors.New("actuator jammed")}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return saturated(tick, 8), nil
	}, act))
	before := c.Setpoints()
	for i := 0; i < 10; i++ {
		c.Tick(context.Background())
	}
	if c.Setpoints() != before {
		t.Fatalf("failed applies changed setpoints: %+v", c.Setpoints())
	}
	var failures int
	for _, d := range c.Status().Decisions {
		if d.Action == ActionApplyFailed {
			failures++
		}
	}
	if failures == 0 {
		t.Fatalf("no apply_failed decisions recorded")
	}
	if failures > 5 {
		t.Fatalf("apply failures not rate-limited by cooldown: %d in 10 ticks", failures)
	}
}

func TestControlTickFaultDegrades(t *testing.T) {
	defer faultinject.Reset()
	act := &fakeActuator{}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return idle(tick, 4, 4), nil
	}, act))

	s := &faultinject.Script{Rules: []faultinject.Rule{{
		Point:  "control.tick",
		Action: faultinject.Fail,
		Index:  faultinject.AnyIndex,
	}}}
	if err := s.Install(); err != nil {
		t.Fatalf("install: %v", err)
	}
	for i := 0; i < 6; i++ {
		c.Tick(context.Background())
	}
	if st := c.Status(); st.State != StateDegraded {
		t.Fatalf("injected control.tick failures: state = %s, want degraded", st.State)
	}
	faultinject.Reset()
	for i := 0; i < 6; i++ {
		c.Tick(context.Background())
	}
	if st := c.Status(); st.State != StateAdapting {
		t.Fatalf("after faults cleared: state = %s, want adapting", st.State)
	}
}

func TestControlTickPanicIsContained(t *testing.T) {
	defer faultinject.Reset()
	act := &fakeActuator{}
	var tick int64
	c := mustNew(t, testConfig(func() (Signals, error) {
		tick++
		return idle(tick, 4, 4), nil
	}, act))
	s := &faultinject.Script{Rules: []faultinject.Rule{{
		Point:  "control.tick",
		Action: faultinject.Panic,
		Index:  faultinject.AnyIndex,
	}}}
	if err := s.Install(); err != nil {
		t.Fatalf("install: %v", err)
	}
	for i := 0; i < 4; i++ {
		c.Tick(context.Background()) // must not crash the test
	}
	if st := c.Status(); st.CorruptTicks < 3 {
		t.Fatalf("panicking ticks not counted corrupt: %d", st.CorruptTicks)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	src := func() (Signals, error) { return Signals{}, nil }
	act := &fakeActuator{}
	bad := []Config{
		{Source: src},                    // no actuator
		{Actuator: act},                  // no source
		{Source: src, Actuator: act},     // zero bounds
		func() Config {                   // inverted thresholds
			c := testConfig(src, act)
			c.HighLoad, c.LowLoad = 0.2, 0.8
			return c
		}(),
		func() Config { // inverted replica bounds
			c := testConfig(src, act)
			c.Bounds.MinReplicas = 5
			c.Bounds.MaxReplicas = 2
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunTicksAndStops(t *testing.T) {
	act := &fakeActuator{}
	var tick int64
	var mu sync.Mutex
	cfg := testConfig(func() (Signals, error) {
		mu.Lock()
		tick++
		v := tick
		mu.Unlock()
		return idle(v, 4, 4), nil
	}, act)
	cfg.Interval = time.Millisecond
	c := mustNew(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c.Run(ctx) // returns on ctx expiry
	if st := c.Status(); st.Ticks == 0 {
		t.Fatalf("Run produced no ticks")
	}
}
