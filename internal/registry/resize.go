package registry

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"bitflow/internal/resilience"
)

// This file implements runtime QoS resizing — the piece PR 6 explicitly
// left open: growing or shrinking a model's replica set and admission
// gate capacity on a live process without dropping a single request.
//
// The ordering invariant is that admission capacity never exceeds serving
// capacity:
//
//   - Growing: replicas first, gate second. New replicas exist (and are
//     verified) before any extra request can be admitted to use them.
//   - Shrinking: gate first, replicas second. The gate shrink withdraws
//     admission tokens as current holders release them — in-flight
//     requests always finish — and only then are the now-idle replicas
//     removed from the set.
//
// Resize serializes with Swap and Close on the model's reload lock, so a
// resize can never interleave with a hot reload's verify/flip/drain.

// ResizableReplicaSet is the optional interface a ReplicaSet implements
// to support live resizing. internal/serve's replica sets implement it
// for both the pooled and the micro-batched serving modes.
type ResizableReplicaSet interface {
	ReplicaSet
	// Replicas reports the current replica count.
	Replicas() int
	// Resize grows or shrinks the set to n replicas. Growth must verify
	// new replicas before they serve; shrink must drain, never drop.
	Resize(ctx context.Context, n int) error
}

// Resize outcomes.
const (
	// OutcomeResized: the replica set and gate landed on the new geometry.
	OutcomeResized = "resized"
	// OutcomeResizeFailed: the resize was rejected or interrupted; the
	// model keeps serving on whatever geometry the failure left (the
	// status records it — partial gate/replica progress is reported, not
	// hidden).
	OutcomeResizeFailed = "resize_failed"
)

// ResizeStatus is the structured record of one resize attempt, the
// analogue of ReloadStatus for the QoS axis.
type ResizeStatus struct {
	Model        string `json:"model"`
	FromReplicas int    `json:"from_replicas"`
	ToReplicas   int    `json:"to_replicas"`
	FromGate     int    `json:"from_gate"`
	ToGate       int    `json:"to_gate"`
	Outcome      string `json:"outcome"`          // "resized" | "resize_failed"
	Reason       string `json:"reason,omitempty"` // failure detail
	Took         string `json:"took"`
}

// resizeLedger holds the model's resize bookkeeping; split out so Model
// itself stays focused on the swap protocol.
type resizeLedger struct {
	last     atomic.Pointer[ResizeStatus]
	resizes  atomic.Int64
	failures atomic.Int64
}

// LastResize returns the most recent resize attempt's status, or nil.
func (m *Model) LastResize() *ResizeStatus { return m.resize.last.Load() }

// Resizes reports how many resizes completed successfully.
func (m *Model) Resizes() int64 { return m.resize.resizes.Load() }

// ResizeFailures reports how many resizes failed.
func (m *Model) ResizeFailures() int64 { return m.resize.failures.Load() }

// Resize retunes the model's serving geometry on a live process: the
// current replica set is resized to `replicas` and the admission gate to
// `gateCapacity` tokens, in the order that keeps admission ≤ serving
// capacity at every instant (see the file comment). The whole operation
// runs under resilience.Safe and the model's reload lock — a resize
// racing a hot reload is serialized, and a panic in either actuator is
// contained and reported as a failed resize, never a crash.
//
// The current replica set must implement ResizableReplicaSet; ctx bounds
// the drain waits (gate shrink, replica shrink).
func (m *Model) Resize(ctx context.Context, replicas, gateCapacity int) (*ResizeStatus, error) {
	m.reloadMu.Lock()
	defer m.reloadMu.Unlock()
	t0 := time.Now()

	v := m.cur.Load()
	st := &ResizeStatus{
		Model:    m.name,
		FromGate: m.gate.Capacity(),
		ToGate:   gateCapacity,
	}
	fail := func(cause error) (*ResizeStatus, error) {
		st.Outcome = OutcomeResizeFailed
		st.Reason = cause.Error()
		st.Took = time.Since(t0).String()
		m.resize.last.Store(st)
		m.resize.failures.Add(1)
		return st, fmt.Errorf("registry: resize %s: %w", m.name, cause)
	}

	rs, ok := v.set.(ResizableReplicaSet)
	if !ok {
		st.FromReplicas = -1
		st.ToReplicas = replicas
		return fail(fmt.Errorf("replica set %T does not support resizing", v.set))
	}
	st.FromReplicas = rs.Replicas()
	st.ToReplicas = replicas
	if replicas < 1 {
		return fail(fmt.Errorf("replicas must be ≥ 1, got %d", replicas))
	}

	var rerr error
	if perr := resilience.Safe(func() {
		if gateCapacity < st.FromGate {
			// Shrink: stop over-admitting first. This blocks until enough
			// in-flight holders release — draining, never dropping.
			if rerr = m.gate.Resize(ctx, gateCapacity); rerr != nil {
				return
			}
			rerr = rs.Resize(ctx, replicas)
			return
		}
		// Grow (or gate unchanged): replicas first, admission second.
		if rerr = rs.Resize(ctx, replicas); rerr != nil {
			return
		}
		rerr = m.gate.Resize(ctx, gateCapacity)
	}); perr != nil {
		rerr = perr
	}
	if rerr != nil {
		// Record where the geometry actually landed so the ledger never
		// claims a clean state after a partial failure.
		st.ToReplicas = rs.Replicas()
		st.ToGate = m.gate.Capacity()
		return fail(rerr)
	}

	st.Outcome = OutcomeResized
	st.Took = time.Since(t0).String()
	m.resize.last.Store(st)
	m.resize.resizes.Add(1)
	return st, nil
}
