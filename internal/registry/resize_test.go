package registry

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitflow/internal/resilience"
)

// resizableSet is a fakeSet that also implements ResizableReplicaSet and
// records the order of resize actuations relative to gate changes.
type resizableSet struct {
	fakeSet
	replicas  atomic.Int64
	resizeErr error
	panics    bool
	// onResize, when set, observes every Resize call (e.g. to record
	// ordering against the gate).
	onResize func(n int)
	// block, when set, is received from inside Resize — lets a test hold
	// a resize mid-flight.
	block chan struct{}
}

func (r *resizableSet) Replicas() int { return int(r.replicas.Load()) }

func (r *resizableSet) Resize(ctx context.Context, n int) error {
	if r.panics {
		panic("resize exploded")
	}
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if r.resizeErr != nil {
		return r.resizeErr
	}
	if r.onResize != nil {
		r.onResize(n)
	}
	r.replicas.Store(int64(n))
	return nil
}

func newResizableModel(replicas, limit, maxQueue int) (*Model, *resizableSet) {
	rs := &resizableSet{fakeSet: fakeSet{ver: "v1"}}
	rs.replicas.Store(int64(replicas))
	m := NewModel("m", resilience.NewResizableGate(replicas, limit, maxQueue), resilience.NewMetrics(16), rs)
	return m, rs
}

func TestResizeGrowOrdersReplicasBeforeGate(t *testing.T) {
	m, rs := newResizableModel(2, 8, 4)
	var gateAtResize int
	rs.onResize = func(n int) { gateAtResize = m.Gate().Capacity() }

	st, err := m.Resize(context.Background(), 4, 4)
	if err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if gateAtResize != 2 {
		t.Fatalf("gate grew to %d before the replicas did — admission must never outrun serving capacity", gateAtResize)
	}
	if rs.Replicas() != 4 || m.Gate().Capacity() != 4 {
		t.Fatalf("post-grow replicas=%d gate=%d, want 4/4", rs.Replicas(), m.Gate().Capacity())
	}
	if st.Outcome != OutcomeResized || st.FromReplicas != 2 || st.ToReplicas != 4 || st.FromGate != 2 || st.ToGate != 4 {
		t.Fatalf("status = %+v", st)
	}
	if m.Resizes() != 1 || m.ResizeFailures() != 0 {
		t.Fatalf("counters: resizes=%d failures=%d", m.Resizes(), m.ResizeFailures())
	}
}

func TestResizeShrinkOrdersGateBeforeReplicas(t *testing.T) {
	m, rs := newResizableModel(4, 8, 4)
	var gateAtResize int
	rs.onResize = func(n int) { gateAtResize = m.Gate().Capacity() }

	if _, err := m.Resize(context.Background(), 2, 2); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if gateAtResize != 2 {
		t.Fatalf("replicas shrank while the gate still admitted %d — in-flight demand could land on removed replicas", gateAtResize)
	}
}

func TestResizeShrinkBelowInFlightDemandDrains(t *testing.T) {
	m, rs := newResizableModel(4, 8, 4)
	ctx := context.Background()

	// Four in-flight requests hold all four gate tokens.
	releases := make([]func(), 0, 4)
	for i := 0; i < 4; i++ {
		if err := m.Gate().Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		_, rel := m.Acquire()
		releases = append(releases, rel)
	}

	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		_, err := m.Resize(sctx, 2, 2)
		done <- err
	}()

	// The shrink must wait for demand to drain, not drop it.
	select {
	case err := <-done:
		t.Fatalf("shrink completed with 4 requests in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	for _, rel := range releases {
		rel()
	}
	m.Gate().Release()
	m.Gate().Release()
	if err := <-done; err != nil {
		t.Fatalf("shrink after drain: %v", err)
	}
	wg.Wait()
	if rs.Replicas() != 2 || m.Gate().Capacity() != 2 {
		t.Fatalf("post-shrink replicas=%d gate=%d, want 2/2", rs.Replicas(), m.Gate().Capacity())
	}
	m.Gate().Release()
	m.Gate().Release()
}

func TestResizeSerializesWithSwap(t *testing.T) {
	m, _ := newResizableModel(2, 8, 4)

	// Hold a Swap open mid-verification; a concurrent Resize must queue
	// behind it on the reload lock, never interleave.
	verifying := make(chan struct{})
	finish := make(chan struct{})
	var swapDone, resizeDone atomic.Int64
	seq := make(chan string, 2)

	next := &resizableSet{fakeSet: fakeSet{ver: "v2"}}
	next.replicas.Store(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := m.Swap(context.Background(), next, func(ReplicaSet) error {
			close(verifying)
			<-finish
			return nil
		})
		if err != nil {
			t.Errorf("swap: %v", err)
		}
		swapDone.Store(1)
		seq <- "swap"
	}()
	<-verifying
	go func() {
		defer wg.Done()
		if _, err := m.Resize(context.Background(), 3, 3); err != nil {
			t.Errorf("resize: %v", err)
		}
		resizeDone.Store(1)
		seq <- "resize"
	}()

	// Give the resize a chance to (incorrectly) run while the swap's
	// verification is still in flight.
	time.Sleep(20 * time.Millisecond)
	if resizeDone.Load() != 0 {
		t.Fatal("resize ran while a hot reload held the model")
	}
	close(finish)
	wg.Wait()
	if first := <-seq; first != "swap" {
		t.Fatalf("completion order started with %q, want swap then resize", first)
	}
	// The resize landed on the NEW version's set.
	if next.Replicas() != 3 {
		t.Fatalf("post-reload resize hit replicas=%d on v2, want 3", next.Replicas())
	}
}

func TestResizeNonResizableSetFails(t *testing.T) {
	m, _ := newTestModel("v1")
	st, err := m.Resize(context.Background(), 3, 3)
	if err == nil {
		t.Fatal("resize of a non-resizable set accepted")
	}
	if st.Outcome != OutcomeResizeFailed || !strings.Contains(st.Reason, "does not support resizing") {
		t.Fatalf("status = %+v", st)
	}
	if m.ResizeFailures() != 1 {
		t.Fatalf("failures = %d", m.ResizeFailures())
	}
}

func TestResizePanicIsContainedAndRecorded(t *testing.T) {
	m, rs := newResizableModel(2, 8, 4)
	rs.panics = true
	st, err := m.Resize(context.Background(), 4, 4)
	if err == nil {
		t.Fatal("panicking resize reported success")
	}
	if st.Outcome != OutcomeResizeFailed || !strings.Contains(st.Reason, "panic") {
		t.Fatalf("status = %+v", st)
	}
	// The gate was never touched (grow path: replicas first).
	if m.Gate().Capacity() != 2 {
		t.Fatalf("gate capacity = %d after failed grow, want 2", m.Gate().Capacity())
	}
}

func TestResizeErrorRecordsLandedGeometry(t *testing.T) {
	m, rs := newResizableModel(4, 8, 4)
	rs.resizeErr = errors.New("replicas wedged")
	// Shrink path: the gate shrinks first and succeeds, then the replica
	// shrink fails — the ledger must report where things actually landed.
	st, err := m.Resize(context.Background(), 2, 2)
	if err == nil {
		t.Fatal("failing resize reported success")
	}
	if st.ToGate != 2 || st.ToReplicas != 4 {
		t.Fatalf("landed geometry = gate %d replicas %d, want gate 2 replicas 4 (partial)", st.ToGate, st.ToReplicas)
	}
	if last := m.LastResize(); last == nil || last.Outcome != OutcomeResizeFailed {
		t.Fatalf("LastResize = %+v", last)
	}
}

func TestResizeValidatesReplicaCount(t *testing.T) {
	m, _ := newResizableModel(2, 8, 4)
	if _, err := m.Resize(context.Background(), 0, 2); err == nil {
		t.Fatal("resize to 0 replicas accepted")
	}
}

// TestResizeRaceWithAcquireAndSwap hammers Acquire/Resize/Swap
// concurrently; run under -race it proves the three paths share no
// unsynchronized state (the registry package is in verify.sh's race set).
func TestResizeRaceWithAcquireAndSwap(t *testing.T) {
	m, _ := newResizableModel(2, 8, 16)
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.Gate().Acquire(ctx); err != nil {
					continue
				}
				set, rel := m.Acquire()
				if rs, ok := set.(*resizableSet); ok {
					rs.use()
				}
				rel()
				m.Gate().Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []struct{ r, g int }{{4, 4}, {1, 1}, {3, 3}, {2, 2}}
		for i := 0; i < 20; i++ {
			s := sizes[i%len(sizes)]
			rctx, cancel := context.WithTimeout(ctx, time.Second)
			_, _ = m.Resize(rctx, s.r, s.g)
			cancel()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			next := &resizableSet{fakeSet: fakeSet{ver: "vN"}}
			next.replicas.Store(int64(m.Gate().Capacity()))
			sctx, cancel := context.WithTimeout(ctx, time.Second)
			_, _ = m.Swap(sctx, next, nil)
			cancel()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Conservation: capacity and replica count still agree and are in range.
	cap := m.Gate().Capacity()
	if cap < 1 || cap > 8 {
		t.Fatalf("gate capacity %d out of range after the storm", cap)
	}
}
