// Package registry is the multi-model serving control plane: it maps
// model names to versioned replica sets and owns the atomic hot-reload
// protocol that swaps a model's version under live traffic without
// dropping a request, leaking a replica, or ever exposing a half-state.
//
// The contract, mirrored from the serving layer's availability
// invariants:
//
//   - The current version of a model is a single atomic pointer. A
//     request pins exactly one version for its whole lifetime (Acquire),
//     so it either runs entirely on the old version or entirely on the
//     new one — never a mix.
//   - A reload verifies the candidate OFF the hot path (checksum, decode,
//     warm-up, probe self-check — see Artifact.Verify and the verify
//     callback to Swap) before the flip. Any verification failure, or a
//     panic at any stage of the swap, rolls back to the previous version
//     with a structured reason; the old version never stops serving.
//   - After a successful flip the old version drains: in-flight requests
//     that pinned it finish on it, new arrivals only ever see the new
//     pointer, and the old replica set is retired once its pin count
//     reaches zero.
//   - QoS isolation is per model: each Model carries its own admission
//     Gate budget and Metrics, so a burst or fault storm on one model
//     cannot consume another model's replica budget or skew its SLO
//     counters. All models' replicas still dispatch onto the one
//     process-wide exec.Pool — capacity is shared, admission is not.
//
// The package is deliberately free of HTTP and of the serving layer's
// replica plumbing: a ReplicaSet is an opaque payload (internal/serve
// wraps its replica pool + micro-batcher in one), so the swap protocol
// is testable with trivial fakes and reusable by future embedders.
package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bitflow/internal/faultinject"
	"bitflow/internal/resilience"
)

// ReplicaSet is one version's serving capacity, owned by the embedding
// layer. Implementations must be safe for concurrent use by requests
// that pinned them via Acquire.
type ReplicaSet interface {
	// Version labels the artifact this set was built from (name@version
	// rendering is the caller's concern; this is just the version part).
	Version() string
	// Retire releases the set's resources (stops batch workers, drops
	// replica references). The registry calls it exactly once, off the
	// request path, only after the set can no longer be pinned: either it
	// drained after a swap, or it failed verification and never served.
	Retire(ctx context.Context) error
}

// version wraps a ReplicaSet with the pin accounting the drain protocol
// needs. One allocation per swap, never per request.
type version struct {
	set ReplicaSet
	// inflight counts requests currently pinning this version.
	inflight atomic.Int64
	// draining flips once the version has been swapped out: a request
	// that raced the flip re-reads the current pointer instead.
	draining atomic.Bool
}

// Reload outcomes.
const (
	// OutcomeSwapped: the candidate verified, the pointer flipped, the
	// old version drained (or is draining).
	OutcomeSwapped = "swapped"
	// OutcomeRolledBack: verification failed or the swap panicked; the
	// previous version is still current and the candidate was retired.
	OutcomeRolledBack = "rolled_back"
)

// Reload stages (where a rollback happened, or "ok").
const (
	StageVerify = "verify"
	StageSwap   = "swap"
	StageDrain  = "drain"
)

// ReloadStatus is the structured record of one reload attempt — the
// admin endpoint returns it verbatim and /statusz shows the latest one.
type ReloadStatus struct {
	Model   string `json:"model"`
	From    string `json:"from"`
	To      string `json:"to"`
	Outcome string `json:"outcome"`          // "swapped" | "rolled_back"
	Stage   string `json:"stage,omitempty"`  // failing stage on rollback
	Reason  string `json:"reason,omitempty"` // failure detail on rollback
	Took    string `json:"took"`
}

// ReloadError is the typed error a failed Swap returns alongside the
// status: callers can switch on Stage without parsing strings.
type ReloadError struct {
	Model string
	From  string
	To    string
	Stage string
	Err   error
}

func (e *ReloadError) Error() string {
	return fmt.Sprintf("registry: reload %s: %s→%s rolled back at %s: %v", e.Model, e.From, e.To, e.Stage, e.Err)
}

func (e *ReloadError) Unwrap() error { return e.Err }

// Model is one registered name: the current version behind an atomic
// pointer, plus the per-model QoS budget (admission gate and metrics)
// that persists across version swaps — gate tokens belong to the model,
// not the version, so conservation holds trivially across reloads.
type Model struct {
	name    string
	gate    *resilience.Gate
	metrics *resilience.Metrics

	cur atomic.Pointer[version]

	// reloadMu serializes Swap/Close per model; request-path methods
	// never take it.
	reloadMu sync.Mutex

	last      atomic.Pointer[ReloadStatus]
	swaps     atomic.Int64
	rollbacks atomic.Int64

	// resize is the QoS-resizing ledger (see resize.go); resizes share
	// reloadMu with Swap/Close so geometry changes and version changes
	// are strictly serialized per model.
	resize resizeLedger
}

// NewModel registers initial as the model's first serving version. The
// gate and metrics are owned by the model for its lifetime.
func NewModel(name string, gate *resilience.Gate, metrics *resilience.Metrics, initial ReplicaSet) *Model {
	m := &Model{name: name, gate: gate, metrics: metrics}
	m.cur.Store(&version{set: initial})
	return m
}

// Name returns the registered model name.
func (m *Model) Name() string { return m.name }

// Gate returns the model's admission gate.
func (m *Model) Gate() *resilience.Gate { return m.gate }

// Metrics returns the model's counters.
func (m *Model) Metrics() *resilience.Metrics { return m.metrics }

// Acquire pins the current version for one request and returns its
// replica set plus the release function (call exactly once, when the
// request is done with the set). The loop re-reads the pointer when it
// raced a swap: incrementing first and checking draining second pairs
// with Swap's flip-then-mark order, so a pinned version is never retired.
func (m *Model) Acquire() (ReplicaSet, func()) {
	for {
		v := m.cur.Load()
		v.inflight.Add(1)
		if v.draining.Load() {
			// Lost the race with a swap: this version may already be
			// past its drain wait. Undo the pin and take the new pointer.
			v.inflight.Add(-1)
			continue
		}
		return v.set, func() { v.inflight.Add(-1) }
	}
}

// Current peeks at the current replica set without pinning it — for
// status reporting only; the set may be swapped out at any moment.
func (m *Model) Current() ReplicaSet { return m.cur.Load().set }

// Version returns the current version label.
func (m *Model) Version() string { return m.cur.Load().set.Version() }

// LastReload returns the most recent reload attempt's status, or nil.
func (m *Model) LastReload() *ReloadStatus { return m.last.Load() }

// Swaps reports how many reloads completed successfully.
func (m *Model) Swaps() int64 { return m.swaps.Load() }

// Rollbacks reports how many reloads rolled back.
func (m *Model) Rollbacks() int64 { return m.rollbacks.Load() }

// Swap atomically replaces the model's current replica set with
// candidate. The protocol:
//
//  1. verify(candidate) runs under resilience.Safe, entirely off the hot
//     path — the current version serves throughout. An error or panic
//     retires the candidate and returns a rollback status; the pointer
//     is never touched.
//  2. The flip is a single atomic pointer store. Requests that pinned
//     the old version keep it; every later Acquire sees the candidate.
//  3. The old version is marked draining and Swap waits (bounded by ctx)
//     for its pin count to reach zero, then retires it. A drain timeout
//     is reported but does not un-flip: the swap is already complete and
//     the old set is simply left for its stragglers.
//
// A panic between flip and drain (the registry.swap injection point
// models one) restores the old pointer, drains and retires the
// candidate, and reports a rollback — never a half-state.
//
// Swap serializes with other Swaps and Close on the same model.
func (m *Model) Swap(ctx context.Context, candidate ReplicaSet, verify func(ReplicaSet) error) (*ReloadStatus, error) {
	m.reloadMu.Lock()
	defer m.reloadMu.Unlock()
	t0 := time.Now()
	old := m.cur.Load()
	st := &ReloadStatus{Model: m.name, From: old.set.Version(), To: candidate.Version()}

	// rollback restores the old version as current. flipped is the
	// candidate's live wrapper when the pointer already moved (requests
	// may have pinned it), nil when the failure happened pre-flip.
	rollback := func(stage string, cause error, flipped *version) (*ReloadStatus, error) {
		cv := flipped
		if cv != nil {
			// Un-flip first so no new request pins the candidate, then
			// drain the few that did before retiring it. old was never
			// marked draining on this path, so its pins are untouched.
			m.cur.Store(old)
		} else {
			cv = &version{set: candidate}
		}
		cv.draining.Store(true)
		m.awaitDrain(ctx, cv)
		m.retire(ctx, candidate)
		st.Outcome = OutcomeRolledBack
		st.Stage = stage
		st.Reason = cause.Error()
		st.Took = time.Since(t0).String()
		m.last.Store(st)
		m.rollbacks.Add(1)
		return st, &ReloadError{Model: m.name, From: st.From, To: st.To, Stage: stage, Err: cause}
	}

	// Stage 1: verification, off the hot path, panic-contained.
	var verr error
	if perr := resilience.Safe(func() {
		if err := faultinject.RegistrySwap.Fire(ctx, m.name, 0); err != nil {
			verr = err
			return
		}
		if verify != nil {
			verr = verify(candidate)
		}
	}); perr != nil {
		return rollback(StageVerify, perr, nil)
	}
	if verr != nil {
		return rollback(StageVerify, verr, nil)
	}

	// Stage 2: the flip, panic-contained so a mid-swap crash rolls back.
	nv := &version{set: candidate}
	var flipped *version
	var swapErr error
	if perr := resilience.Safe(func() {
		if err := faultinject.RegistrySwap.Fire(ctx, m.name, 1); err != nil {
			swapErr = err
			return
		}
		m.cur.Store(nv)
		flipped = nv
		if err := faultinject.RegistrySwap.Fire(ctx, m.name, 2); err != nil {
			swapErr = err
		}
	}); perr != nil {
		return rollback(StageSwap, perr, flipped)
	}
	if swapErr != nil {
		return rollback(StageSwap, swapErr, flipped)
	}

	// Stage 3: drain the old version and retire it.
	old.draining.Store(true)
	st.Outcome = OutcomeSwapped
	st.Took = time.Since(t0).String()
	if !m.awaitDrain(ctx, old) {
		// The flip stands; the old set is left for its in-flight
		// stragglers (requests are deadline-bounded, so this resolves,
		// but the retire is abandoned to avoid yanking replicas mid-use).
		st.Stage = StageDrain
		st.Reason = fmt.Sprintf("drain timeout: %d requests still on %s", old.inflight.Load(), st.From)
		m.last.Store(st)
		m.swaps.Add(1)
		return st, &ReloadError{Model: m.name, From: st.From, To: st.To, Stage: StageDrain, Err: ctx.Err()}
	}
	m.retire(ctx, old.set)
	m.last.Store(st)
	m.swaps.Add(1)
	return st, nil
}

// awaitDrain waits for v's pin count to reach zero, polling at
// millisecond granularity, bounded by ctx. Reports whether it drained.
func (m *Model) awaitDrain(ctx context.Context, v *version) bool {
	for {
		if v.inflight.Load() == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return v.inflight.Load() == 0
		case <-time.After(time.Millisecond):
		}
	}
}

// retire calls set.Retire under Safe so a misbehaving Retire cannot take
// down the reload path; the error (or captured panic) is recorded on the
// model's last status rather than propagated.
func (m *Model) retire(ctx context.Context, set ReplicaSet) {
	var rerr error
	if perr := resilience.Safe(func() { rerr = set.Retire(ctx) }); perr != nil {
		rerr = perr
	}
	_ = rerr // retire failures are advisory; the set is unreachable either way
}

// Close retires the model's current replica set — the server shutdown
// path, after the listener has stopped and in-flight requests finished.
func (m *Model) Close(ctx context.Context) error {
	m.reloadMu.Lock()
	defer m.reloadMu.Unlock()
	v := m.cur.Load()
	v.draining.Store(true)
	m.awaitDrain(ctx, v)
	var rerr error
	if perr := resilience.Safe(func() { rerr = v.set.Retire(ctx) }); perr != nil {
		rerr = perr
	}
	return rerr
}

// Registry maps model names to Models. Lookups are cheap and concurrent;
// registration is rare (startup, manifest reload).
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
	order  []string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{models: map[string]*Model{}}
}

// Add registers m under its name. Duplicate names are an error — a
// version change goes through Model.Swap, not re-registration.
func (r *Registry) Add(m *Model) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[m.Name()]; dup {
		return fmt.Errorf("registry: model %q already registered", m.Name())
	}
	r.models[m.Name()] = m
	r.order = append(r.order, m.Name())
	return nil
}

// Get resolves a model by name.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Names lists registered models in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// SortedNames lists registered models alphabetically — for stable
// status output.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}

// Len reports the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
