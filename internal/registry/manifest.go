package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Manifest is the operator-facing description of what to serve: one
// entry per model. cmd/bitflow-serve loads it at startup (-models) and
// re-reads it on SIGHUP; entries whose path or version changed are
// hot-reloaded through the swap protocol.
type Manifest struct {
	Models []ManifestEntry `json:"models"`
}

// ManifestEntry configures one model: where its artifact lives and the
// QoS envelope it serves under. Zero values defer to the serving
// layer's defaults.
type ManifestEntry struct {
	// Name routes /v1/models/{name}/infer. Required, unique.
	Name string `json:"name"`
	// Path is the packed artifact on disk. Required.
	Path string `json:"path"`
	// Version labels the artifact; "" derives it from the payload
	// checksum, so a changed file is a changed version automatically.
	Version string `json:"version,omitempty"`

	// Replicas, MaxQueue, RequestTimeout mirror serve.Config.
	Replicas       int      `json:"replicas,omitempty"`
	MaxQueue       int      `json:"max_queue,omitempty"`
	RequestTimeout Duration `json:"request_timeout,omitempty"`

	// Batch enables micro-batching with the given window/size caps.
	Batch       bool     `json:"batch,omitempty"`
	BatchWindow Duration `json:"batch_window,omitempty"`
	MaxBatch    int      `json:"max_batch,omitempty"`

	// Default marks the model the legacy single-model endpoints
	// (/infer, /healthz model section) route to. At most one entry may
	// set it; with none set, the first entry is the default.
	Default bool `json:"default,omitempty"`
}

// Duration is a time.Duration that unmarshals from JSON strings like
// "250ms" or "30s" (and bare nanosecond numbers, for completeness).
type Duration time.Duration

func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case string:
		dur, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", t, err)
		}
		*d = Duration(dur)
	case float64:
		*d = Duration(time.Duration(t))
	default:
		return fmt.Errorf("invalid duration %v (want \"30s\"-style string)", v)
	}
	return nil
}

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// ParseManifest decodes and validates a manifest. Unknown fields are
// rejected — a typo in an ops file must fail loudly, not silently
// serve defaults.
func ParseManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	defer f.Close()
	return ParseManifest(f)
}

func (m *Manifest) validate() error {
	if len(m.Models) == 0 {
		return fmt.Errorf("manifest: no models")
	}
	seen := map[string]bool{}
	defaults := 0
	for i, e := range m.Models {
		if e.Name == "" {
			return fmt.Errorf("manifest: models[%d]: name is required", i)
		}
		if !ValidName(e.Name) {
			return fmt.Errorf("manifest: models[%d]: name %q must be URL-safe ([a-zA-Z0-9._-])", i, e.Name)
		}
		if seen[e.Name] {
			return fmt.Errorf("manifest: duplicate model name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Path == "" {
			return fmt.Errorf("manifest: model %q: path is required", e.Name)
		}
		if e.Replicas < 0 || e.MaxQueue < 0 || e.MaxBatch < 0 {
			return fmt.Errorf("manifest: model %q: negative capacity", e.Name)
		}
		if e.RequestTimeout < 0 || e.BatchWindow < 0 {
			return fmt.Errorf("manifest: model %q: negative duration", e.Name)
		}
		if e.Default {
			defaults++
		}
	}
	if defaults > 1 {
		return fmt.Errorf("manifest: multiple models marked default")
	}
	return nil
}

// DefaultModel returns the entry the legacy endpoints route to.
func (m *Manifest) DefaultModel() ManifestEntry {
	for _, e := range m.Models {
		if e.Default {
			return e
		}
	}
	return m.Models[0]
}

// ValidName reports whether a model name can sit inside a URL path
// segment without escaping ([a-zA-Z0-9._-], non-empty).
func ValidName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
