package registry

import (
	"strings"
	"testing"
	"time"
)

func TestParseManifest(t *testing.T) {
	m, err := ParseManifest(strings.NewReader(`{
		"models": [
			{"name": "vgg", "path": "/models/vgg.bflw", "version": "v3",
			 "replicas": 4, "max_queue": 32, "request_timeout": "2s",
			 "batch": true, "batch_window": "500us", "max_batch": 8},
			{"name": "tiny", "path": "/models/tiny.bflw", "default": true}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Models) != 2 {
		t.Fatalf("models %v", m.Models)
	}
	vgg := m.Models[0]
	if vgg.Name != "vgg" || vgg.Version != "v3" || vgg.Replicas != 4 || vgg.MaxQueue != 32 {
		t.Errorf("entry %+v", vgg)
	}
	if time.Duration(vgg.RequestTimeout) != 2*time.Second {
		t.Errorf("request_timeout %v", vgg.RequestTimeout)
	}
	if !vgg.Batch || time.Duration(vgg.BatchWindow) != 500*time.Microsecond || vgg.MaxBatch != 8 {
		t.Errorf("batch config %+v", vgg)
	}
	if got := m.DefaultModel().Name; got != "tiny" {
		t.Errorf("default %q", got)
	}
}

func TestParseManifestDefaultsToFirstModel(t *testing.T) {
	m, err := ParseManifest(strings.NewReader(
		`{"models": [{"name": "a", "path": "/a"}, {"name": "b", "path": "/b"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.DefaultModel().Name; got != "a" {
		t.Errorf("default %q, want first entry", got)
	}
}

func TestParseManifestRejections(t *testing.T) {
	cases := map[string]string{
		"empty":         `{"models": []}`,
		"no name":       `{"models": [{"path": "/a"}]}`,
		"no path":       `{"models": [{"name": "a"}]}`,
		"bad name":      `{"models": [{"name": "a/b", "path": "/a"}]}`,
		"duplicate":     `{"models": [{"name": "a", "path": "/a"}, {"name": "a", "path": "/b"}]}`,
		"two defaults":  `{"models": [{"name": "a", "path": "/a", "default": true}, {"name": "b", "path": "/b", "default": true}]}`,
		"unknown field": `{"models": [{"name": "a", "path": "/a", "replics": 3}]}`,
		"bad duration":  `{"models": [{"name": "a", "path": "/a", "request_timeout": "fast"}]}`,
		"negative":      `{"models": [{"name": "a", "path": "/a", "replicas": -1}]}`,
		"not json":      `models: [a]`,
	}
	for name, body := range cases {
		if _, err := ParseManifest(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := Duration(1500 * time.Millisecond)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip %v -> %s -> %v", d, b, back)
	}
}
