package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"

	"bitflow/internal/faultinject"
	"bitflow/internal/graph"
	"bitflow/internal/resilience"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// Artifact is one loaded, decodable model file — the unit a reload
// candidates from. Verify promotes it to "safe to serve": warm-up,
// probe inference, and a clone self-check all pass before any replica
// set is built from Net.
type Artifact struct {
	// Name is the model name stored in the file (informational; the
	// registry key is the manifest/admin name).
	Name string
	// Version labels this artifact in reload statuses. Defaults to the
	// payload checksum in hex when the caller passes "".
	Version string
	// Path is the source file, "" for in-memory artifacts.
	Path string
	// Net is the decoded network — the prototype replicas clone from.
	Net *graph.Network
	// Checksum is the payload CRC64; Checksummed reports whether the
	// file carried (and passed) an integrity footer.
	Checksum    uint64
	Checksummed bool
	// Bytes is the artifact size on disk.
	Bytes int64
	// Probe holds the recorded probe logits after Verify: the reference
	// every replica built from this artifact must reproduce bit-exactly.
	Probe []float32
}

// Load stages for LoadError.Stage.
const (
	StageOpen     = "open"
	StageChecksum = "checksum"
	StageDecode   = "decode"
	StageWarmup   = "warmup"
	StageProbe    = "probe"
)

// LoadError is the typed failure of LoadArtifact / Artifact.Verify:
// which artifact, which stage of the verification ladder, and why.
type LoadError struct {
	Path  string
	Stage string
	Err   error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("registry: loading %s: %s failed: %v", e.Path, e.Stage, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// LoadArtifact opens, checksums, and decodes one model file. It runs
// entirely off the request hot path; every failure is a typed
// *LoadError and leaves whatever is currently serving untouched. It
// does NOT verify inference — chain Artifact.Verify (or let the serving
// layer's swap verification do it).
func LoadArtifact(path, version string, feat sched.Features) (*Artifact, error) {
	if err := faultinject.RegistryLoad.Fire(nil, path, 0); err != nil {
		return nil, &LoadError{Path: path, Stage: StageOpen, Err: err}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, &LoadError{Path: path, Stage: StageOpen, Err: err}
	}
	defer f.Close()

	var (
		net  *graph.Network
		info *graph.LoadInfo
		lerr error
	)
	if perr := resilience.Safe(func() {
		net, info, lerr = graph.LoadWithInfo(f, feat)
	}); perr != nil {
		return nil, &LoadError{Path: path, Stage: StageDecode, Err: perr}
	}
	if lerr != nil {
		stage := StageDecode
		var ce *graph.ChecksumError
		if errors.As(lerr, &ce) {
			stage = StageChecksum
		}
		return nil, &LoadError{Path: path, Stage: stage, Err: lerr}
	}
	if version == "" {
		version = fmt.Sprintf("%016x", info.Checksum)
	}
	return &Artifact{
		Name:        net.Name,
		Version:     version,
		Path:        path,
		Net:         net,
		Checksum:    info.Checksum,
		Checksummed: info.Checksummed,
		Bytes:       info.Bytes,
	}, nil
}

// FromNetwork wraps an already-built network as an artifact — the
// in-process reload path (tests, conformance, embedders that build
// models programmatically). The checksum is left zero; Verify still
// applies in full.
func FromNetwork(version string, net *graph.Network) *Artifact {
	return &Artifact{Name: net.Name, Version: version, Net: net}
}

// probeSeed derives the deterministic probe input stream. Fixed — NOT
// per artifact — so the same model reloaded under a new version label
// produces comparable probe logits, which is what lets a rollback
// assert "the old version still serves bit-exact logits".
const probeSeed = 0xB17F10B5

// ProbeInput returns the deterministic probe tensor for the artifact's
// input geometry.
func (a *Artifact) ProbeInput() *tensor.Tensor {
	return workload.RandTensor(workload.NewRNG(probeSeed), a.Net.InH, a.Net.InW, a.Net.InC)
}

// Verify runs the off-hot-path verification ladder on the decoded
// network:
//
//  1. warm-up: one inference on a zero input must complete without
//     error or panic (a network that cannot infer must never be
//     flipped in);
//  2. probe: one inference on the deterministic probe input must yield
//     finite logits, recorded as a.Probe;
//  3. clone self-check: a fresh Clone must reproduce the probe logits
//     bit-exactly — the replica-construction path is what serving
//     actually uses, so it is what gets verified.
//
// Every failure is a typed *LoadError with the stage that broke.
func (a *Artifact) Verify() error {
	zero := tensor.New(a.Net.InH, a.Net.InW, a.Net.InC)
	var ierr error
	if perr := resilience.Safe(func() {
		_, ierr = a.Net.InferContext(context.Background(), zero)
	}); perr != nil {
		return &LoadError{Path: a.Path, Stage: StageWarmup, Err: perr}
	}
	if ierr != nil {
		return &LoadError{Path: a.Path, Stage: StageWarmup, Err: ierr}
	}

	probe := a.ProbeInput()
	var logits []float32
	if perr := resilience.Safe(func() {
		logits, ierr = a.Net.InferContext(context.Background(), probe)
	}); perr != nil {
		return &LoadError{Path: a.Path, Stage: StageProbe, Err: perr}
	}
	if ierr != nil {
		return &LoadError{Path: a.Path, Stage: StageProbe, Err: ierr}
	}
	for i, v := range logits {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return &LoadError{Path: a.Path, Stage: StageProbe,
				Err: fmt.Errorf("probe logit %d is %v; model emits non-finite outputs", i, v)}
		}
	}
	a.Probe = append([]float32(nil), logits...)

	var cloneLogits []float32
	if perr := resilience.Safe(func() {
		c := a.Net.Clone()
		cloneLogits, ierr = c.InferContext(context.Background(), probe)
	}); perr != nil {
		return &LoadError{Path: a.Path, Stage: StageProbe, Err: perr}
	}
	if ierr != nil {
		return &LoadError{Path: a.Path, Stage: StageProbe, Err: ierr}
	}
	for i := range logits {
		if cloneLogits[i] != logits[i] {
			return &LoadError{Path: a.Path, Stage: StageProbe,
				Err: fmt.Errorf("clone logit %d = %v, prototype %v; replica construction is not bit-exact",
					i, cloneLogits[i], logits[i])}
		}
	}
	return nil
}
