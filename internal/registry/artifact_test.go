package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bitflow/internal/faultinject"
	"bitflow/internal/graph"
	"bitflow/internal/sched"
)

func testNet(t *testing.T, name string, seed uint64) *graph.Network {
	t.Helper()
	net, err := graph.NewBuilder(name, 8, 8, 64, sched.Detect()).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Dense("d1", 4).
		Build(graph.RandomWeights{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func saveNet(t *testing.T, net *graph.Network) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), net.Name+".bflw")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadArtifactRoundTrip(t *testing.T) {
	net := testNet(t, "art", 50)
	path := saveNet(t, net)
	a, err := LoadArtifact(path, "v7", sched.Detect())
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "art" || a.Version != "v7" || a.Path != path {
		t.Errorf("artifact %+v", a)
	}
	if !a.Checksummed || a.Checksum == 0 || a.Bytes == 0 {
		t.Errorf("integrity fields %+v", a)
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(a.Probe) != 4 {
		t.Errorf("probe logits %v", a.Probe)
	}
}

func TestLoadArtifactDerivesVersionFromChecksum(t *testing.T) {
	path := saveNet(t, testNet(t, "art", 51))
	a, err := LoadArtifact(path, "", sched.Detect())
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%016x", a.Checksum)
	if a.Version != want {
		t.Errorf("Version = %q, want checksum %q", a.Version, want)
	}
	// Same bytes, same derived version: reloading an unchanged file is
	// detectable as a no-op by comparing versions.
	b, err := LoadArtifact(path, "", sched.Detect())
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != a.Version {
		t.Errorf("derived versions differ across loads: %q vs %q", a.Version, b.Version)
	}
}

func TestLoadArtifactMissingFile(t *testing.T) {
	_, err := LoadArtifact(filepath.Join(t.TempDir(), "missing.bflw"), "v1", sched.Detect())
	var le *LoadError
	if !errors.As(err, &le) || le.Stage != StageOpen {
		t.Fatalf("error %v, want open-stage LoadError", err)
	}
}

func TestLoadArtifactCorruptFile(t *testing.T) {
	path := saveNet(t, testNet(t, "art", 52))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadArtifact(path, "v1", sched.Detect())
	var le *LoadError
	if !errors.As(err, &le) || le.Stage != StageChecksum {
		t.Fatalf("error %v, want checksum-stage LoadError", err)
	}
	var ce *graph.ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("LoadError does not wrap the ChecksumError: %v", err)
	}
}

func TestLoadArtifactTruncatedFile(t *testing.T) {
	path := saveNet(t, testNet(t, "art", 53))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadArtifact(path, "v1", sched.Detect())
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error %v, want LoadError", err)
	}
	if le.Stage != StageDecode && le.Stage != StageChecksum {
		t.Errorf("stage %q", le.Stage)
	}
}

func TestLoadArtifactInjectedFailure(t *testing.T) {
	defer faultinject.Reset()
	faultinject.RegistryLoad.Set(func(faultinject.Event) error {
		return fmt.Errorf("%w: disk went away", faultinject.ErrInjected)
	})
	path := saveNet(t, testNet(t, "art", 54))
	_, err := LoadArtifact(path, "v1", sched.Detect())
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error %v", err)
	}
	var le *LoadError
	if !errors.As(err, &le) || le.Stage != StageOpen {
		t.Fatalf("error %v, want open-stage LoadError", err)
	}
}

func TestVerifyRecordsStableProbe(t *testing.T) {
	// Two artifacts decoded from the same file must record bit-identical
	// probe logits — the property rollback verification rests on.
	path := saveNet(t, testNet(t, "art", 55))
	a, err := LoadArtifact(path, "v1", sched.Detect())
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadArtifact(path, "v2", sched.Detect())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(a.Probe) != len(b.Probe) {
		t.Fatalf("probe lengths differ")
	}
	for i := range a.Probe {
		if a.Probe[i] != b.Probe[i] {
			t.Fatalf("probe logit %d differs: %v vs %v", i, a.Probe[i], b.Probe[i])
		}
	}
}

func TestFromNetworkVerify(t *testing.T) {
	a := FromNetwork("mem1", testNet(t, "inmem", 56))
	if a.Name != "inmem" || a.Version != "mem1" || a.Path != "" {
		t.Errorf("artifact %+v", a)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(a.Probe) == 0 {
		t.Error("Verify did not record probe logits")
	}
}
