package registry

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitflow/internal/faultinject"
	"bitflow/internal/resilience"
)

// fakeSet is a ReplicaSet that records its lifecycle so tests can
// assert the swap protocol's core promise: a set is retired exactly
// once, and never while a request is using it.
type fakeSet struct {
	ver     string
	retired atomic.Bool
	retires atomic.Int64
	// using counts requests actively inside the set; Retire fails the
	// test via retiredInUse if any are present.
	using        atomic.Int64
	retiredInUse atomic.Bool
	retireErr    error
	retirePanics bool
}

func (f *fakeSet) Version() string { return f.ver }

func (f *fakeSet) Retire(ctx context.Context) error {
	if f.using.Load() != 0 {
		f.retiredInUse.Store(true)
	}
	f.retired.Store(true)
	f.retires.Add(1)
	if f.retirePanics {
		panic("retire exploded")
	}
	return f.retireErr
}

// use simulates one request touching the set, flagging use-after-retire.
func (f *fakeSet) use() bool {
	if f.retired.Load() {
		return false
	}
	f.using.Add(1)
	runtime.Gosched()
	ok := !f.retired.Load()
	f.using.Add(-1)
	return ok
}

func newTestModel(ver string) (*Model, *fakeSet) {
	fs := &fakeSet{ver: ver}
	m := NewModel("m", resilience.NewGate(2, 4), resilience.NewMetrics(16), fs)
	return m, fs
}

func TestAcquireReturnsCurrent(t *testing.T) {
	m, fs := newTestModel("v1")
	set, release := m.Acquire()
	if set != fs {
		t.Fatalf("Acquire returned %v, want initial set", set)
	}
	release()
	if got := m.Version(); got != "v1" {
		t.Errorf("Version() = %q", got)
	}
}

func TestSwapHappyPath(t *testing.T) {
	m, old := newTestModel("v1")
	next := &fakeSet{ver: "v2"}
	verified := false
	st, err := m.Swap(context.Background(), next, func(rs ReplicaSet) error {
		verified = rs == next
		return nil
	})
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if !verified {
		t.Error("verify callback did not see the candidate")
	}
	if st.Outcome != OutcomeSwapped || st.From != "v1" || st.To != "v2" || st.Stage != "" {
		t.Errorf("status %+v", st)
	}
	if m.Current() != next {
		t.Error("current set is not the candidate")
	}
	if !old.retired.Load() || old.retires.Load() != 1 {
		t.Errorf("old set retired=%v times=%d", old.retired.Load(), old.retires.Load())
	}
	if next.retired.Load() {
		t.Error("candidate was retired")
	}
	if m.Swaps() != 1 || m.Rollbacks() != 0 {
		t.Errorf("swaps=%d rollbacks=%d", m.Swaps(), m.Rollbacks())
	}
	if got := m.LastReload(); got != st {
		t.Error("LastReload does not return the final status")
	}
}

func TestSwapVerifyErrorRollsBack(t *testing.T) {
	m, old := newTestModel("v1")
	next := &fakeSet{ver: "v2"}
	boom := errors.New("bad probe")
	st, err := m.Swap(context.Background(), next, func(ReplicaSet) error { return boom })
	if err == nil {
		t.Fatal("Swap succeeded past a failing verify")
	}
	var re *ReloadError
	if !errors.As(err, &re) || re.Stage != StageVerify || !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if st.Outcome != OutcomeRolledBack || st.Stage != StageVerify || !strings.Contains(st.Reason, "bad probe") {
		t.Errorf("status %+v", st)
	}
	if m.Current() != old || old.retired.Load() {
		t.Error("old version disturbed by failed verify")
	}
	if !next.retired.Load() {
		t.Error("rejected candidate not retired")
	}
	if m.Rollbacks() != 1 {
		t.Errorf("rollbacks=%d", m.Rollbacks())
	}
}

func TestSwapVerifyPanicRollsBack(t *testing.T) {
	m, old := newTestModel("v1")
	next := &fakeSet{ver: "v2"}
	st, err := m.Swap(context.Background(), next, func(ReplicaSet) error { panic("verify exploded") })
	if err == nil {
		t.Fatal("Swap succeeded past a panicking verify")
	}
	if st.Outcome != OutcomeRolledBack || st.Stage != StageVerify {
		t.Errorf("status %+v", st)
	}
	if m.Current() != old {
		t.Error("panic in verify moved the pointer")
	}
	if !next.retired.Load() {
		t.Error("candidate not retired after verify panic")
	}
}

// TestSwapPanicAcrossStages drives the registry.swap injection point
// through each stage: panic pre-verify (0), pre-flip (1), and post-flip
// (2) must all end with the old version current and the candidate
// retired — index 2 is the hard case, where requests may already have
// pinned the candidate before the rollback un-flips it.
func TestSwapPanicAcrossStages(t *testing.T) {
	for idx := 0; idx <= 2; idx++ {
		t.Run(fmt.Sprintf("stage%d", idx), func(t *testing.T) {
			defer faultinject.Reset()
			target := idx
			faultinject.RegistrySwap.Set(func(ev faultinject.Event) error {
				if ev.Index == target {
					panic(fmt.Sprintf("injected at stage %d", target))
				}
				return nil
			})
			m, old := newTestModel("v1")
			next := &fakeSet{ver: "v2"}
			st, err := m.Swap(context.Background(), next, func(ReplicaSet) error { return nil })
			if err == nil {
				t.Fatal("Swap succeeded through an injected panic")
			}
			wantStage := StageSwap
			if target == 0 {
				wantStage = StageVerify
			}
			var re *ReloadError
			if !errors.As(err, &re) || re.Stage != wantStage {
				t.Fatalf("error %v, want stage %s", err, wantStage)
			}
			if st.Outcome != OutcomeRolledBack {
				t.Errorf("status %+v", st)
			}
			if m.Current() != old {
				t.Errorf("stage %d: old version not current after rollback", target)
			}
			if old.retired.Load() {
				t.Errorf("stage %d: rollback retired the old (still serving) set", target)
			}
			if !next.retired.Load() {
				t.Errorf("stage %d: candidate not retired", target)
			}
			// The model must still be fully operational: a clean swap after
			// the rollback succeeds.
			faultinject.Reset()
			clean := &fakeSet{ver: "v3"}
			if _, err := m.Swap(context.Background(), clean, nil); err != nil {
				t.Fatalf("stage %d: swap after rollback: %v", target, err)
			}
			if m.Current() != clean {
				t.Errorf("stage %d: recovery swap did not land", target)
			}
		})
	}
}

func TestSwapInjectedFailErrorRollsBack(t *testing.T) {
	defer faultinject.Reset()
	faultinject.RegistrySwap.Set(func(ev faultinject.Event) error {
		if ev.Index == 2 {
			return fmt.Errorf("%w: post-flip check failed", faultinject.ErrInjected)
		}
		return nil
	})
	m, old := newTestModel("v1")
	next := &fakeSet{ver: "v2"}
	_, err := m.Swap(context.Background(), next, nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error %v", err)
	}
	if m.Current() != old || !next.retired.Load() {
		t.Error("post-flip injected error did not roll back cleanly")
	}
}

func TestSwapDrainWaitsForPinnedRequests(t *testing.T) {
	m, old := newTestModel("v1")
	set, release := m.Acquire()
	if set != old {
		t.Fatal("pinned the wrong set")
	}
	done := make(chan *ReloadStatus, 1)
	go func() {
		st, err := m.Swap(context.Background(), &fakeSet{ver: "v2"}, nil)
		if err != nil {
			t.Errorf("Swap: %v", err)
		}
		done <- st
	}()
	// The swap must not retire the old set while the pin is held. Give
	// the drain loop time to (incorrectly) fire.
	time.Sleep(20 * time.Millisecond)
	if old.retired.Load() {
		t.Fatal("old set retired while a request still pinned it")
	}
	select {
	case <-done:
		t.Fatal("Swap returned before the pinned request released")
	default:
	}
	release()
	st := <-done
	if st.Outcome != OutcomeSwapped {
		t.Errorf("status %+v", st)
	}
	if !old.retired.Load() {
		t.Error("old set not retired after drain")
	}
}

func TestSwapDrainTimeoutLeavesFlipStanding(t *testing.T) {
	m, old := newTestModel("v1")
	_, release := m.Acquire() // never released before the deadline
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	next := &fakeSet{ver: "v2"}
	st, err := m.Swap(ctx, next, nil)
	var re *ReloadError
	if !errors.As(err, &re) || re.Stage != StageDrain {
		t.Fatalf("error %v, want drain-stage ReloadError", err)
	}
	if st.Outcome != OutcomeSwapped || st.Stage != StageDrain || st.Reason == "" {
		t.Errorf("status %+v", st)
	}
	if m.Current() != next {
		t.Error("drain timeout must not un-flip the swap")
	}
	if old.retired.Load() {
		t.Error("old set retired despite live pin")
	}
	if m.Swaps() != 1 {
		t.Errorf("swaps=%d", m.Swaps())
	}
	release()
}

func TestSwapRetirePanicIsContained(t *testing.T) {
	m, old := newTestModel("v1")
	old.retirePanics = true
	next := &fakeSet{ver: "v2"}
	st, err := m.Swap(context.Background(), next, nil)
	if err != nil {
		t.Fatalf("a panicking Retire must not fail the swap: %v", err)
	}
	if st.Outcome != OutcomeSwapped || m.Current() != next {
		t.Errorf("status %+v current %v", st, m.Current())
	}
}

// TestAcquireNeverSeesRetiredSet hammers Acquire/release from many
// goroutines while versions swap continuously underneath: no request
// may ever observe a set that was already retired, and every set must
// be retired at most once. Run with -race.
func TestAcquireNeverSeesRetiredSet(t *testing.T) {
	m, first := newTestModel("v0")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				set, release := m.Acquire()
				if !set.(*fakeSet).use() {
					bad.Add(1)
				}
				release()
			}
		}()
	}
	sets := []*fakeSet{first}
	for i := 1; i <= 50; i++ {
		next := &fakeSet{ver: fmt.Sprintf("v%d", i)}
		sets = append(sets, next)
		if _, err := m.Swap(context.Background(), next, nil); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d acquisitions touched a retired set", n)
	}
	for i, fs := range sets {
		if fs.retiredInUse.Load() {
			t.Errorf("set %d was retired while in use", i)
		}
		if n := fs.retires.Load(); i < len(sets)-1 && n != 1 {
			t.Errorf("set %d retired %d times", i, n)
		}
	}
	if last := sets[len(sets)-1]; last.retired.Load() {
		t.Error("current set was retired")
	}
}

// TestSwapRollbackUnderLoad injects a post-flip panic while requests
// hammer the model: the rollback must drain whoever pinned the
// candidate in the flip window and land back on the old version with
// zero use-after-retire.
func TestSwapRollbackUnderLoad(t *testing.T) {
	defer faultinject.Reset()
	m, old := newTestModel("v1")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				set, release := m.Acquire()
				if !set.(*fakeSet).use() {
					bad.Add(1)
				}
				release()
			}
		}()
	}
	faultinject.RegistrySwap.Set(func(ev faultinject.Event) error {
		if ev.Index == 2 {
			// Widen the post-flip window so requests actually pin the
			// candidate before the panic unwinds the swap.
			time.Sleep(5 * time.Millisecond)
			panic("injected post-flip crash")
		}
		return nil
	})
	for i := 0; i < 5; i++ {
		next := &fakeSet{ver: fmt.Sprintf("bad%d", i)}
		_, err := m.Swap(context.Background(), next, nil)
		if err == nil {
			t.Fatal("injected swap succeeded")
		}
		if m.Current() != old {
			t.Fatal("rollback did not restore the old version")
		}
		if !next.retired.Load() || next.retiredInUse.Load() {
			t.Fatalf("candidate %d: retired=%v inUse=%v", i, next.retired.Load(), next.retiredInUse.Load())
		}
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d acquisitions touched a retired set", n)
	}
	if old.retired.Load() {
		t.Error("serving set was retired by rollbacks")
	}
}

func TestCloseRetiresCurrent(t *testing.T) {
	m, fs := newTestModel("v1")
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !fs.retired.Load() {
		t.Error("Close did not retire the set")
	}
}

func TestRegistryAddGet(t *testing.T) {
	r := New()
	ma, _ := newTestModel("v1")
	if err := r.Add(ma); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(ma); err == nil {
		t.Error("duplicate Add accepted")
	}
	got, ok := r.Get("m")
	if !ok || got != ma {
		t.Errorf("Get => %v, %v", got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get of unknown name succeeded")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if names := r.SortedNames(); len(names) != 1 || names[0] != "m" {
		t.Errorf("SortedNames = %v", names)
	}
}
