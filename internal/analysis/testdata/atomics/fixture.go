// Package atomics is a seeded-violation fixture for the atomicity
// discipline, loaded under the fake import path "fixture/internal/core".
// Rule 1 (mixed access): requests is passed by address to sync/atomic, so
// every other access must be atomic too. Rule 2 (no copies): Stats
// contains an atomic.Int64 and must only ever be shared by pointer.
package atomics

import "sync/atomic"

// requests is atomically updated in Incr; the plain accesses below are
// data races the type system cannot see.
var requests int64

// Incr is the access that marks requests as an atomic variable.
func Incr() {
	atomic.AddInt64(&requests, 1)
}

// Mixed reads and writes requests plainly: both flagged.
func Mixed() int64 {
	requests++ // want:atomics
	return atomic.LoadInt64(&requests)
}

// Seeded shows the hatch: a justified exception is excused, a bare one
// is itself a finding.
func Seeded() int64 {
	//bitflow:atomic-ok fixture: runs before any goroutine starts
	seed := requests
	//bitflow:atomic-ok
	leak := requests // want:atomics
	return seed + leak
}

// Stats is an atomic-bearing type: copying it forks the counter.
type Stats struct {
	hits atomic.Int64
}

// Snapshot copies the pointed-to Stats and returns the copy by value:
// one finding for the dereference copy, one for the return copy.
func Snapshot(s *Stats) Stats {
	dup := *s  // want:atomics
	return dup // want:atomics
}

// Consume receives Stats by value; the copy is flagged at the call site.
func Consume(s Stats) int64 {
	return s.hits.Load()
}

// Fanout ranges over atomic-bearing values (a copy per element) and
// passes one by value.
func Fanout(list []Stats) int64 {
	var total int64
	for _, s := range list { // want:atomics
		total += Consume(s) // want:atomics
	}
	return total
}

// Shared is the fixed form: fresh construction and pointer sharing are
// not copies.
func Shared() *Stats {
	st := Stats{}
	p := &st
	p.hits.Add(1)
	return p
}
