// Package actuate seeds violations of the actuate rule: types
// implementing control.Actuator whose Apply bodies poke struct fields
// directly instead of routing through exported resize/retune APIs.
package actuate

import (
	"context"

	"bitflow/internal/control"
)

type gateState struct {
	capacity int
}

// badActuator writes serving geometry fields directly — exactly the
// bypass the rule exists to catch.
type badActuator struct {
	replicas int
	gate     *gateState
}

func (a *badActuator) Apply(ctx context.Context, sp control.Setpoints) error {
	a.replicas = sp.Replicas                    // want:actuate
	a.gate.capacity = sp.Replicas * sp.MaxBatch // want:actuate
	a.replicas++                                // want:actuate
	a.replicas += sp.MaxBatch                   // want:actuate
	return nil
}

type resizer interface {
	Resize(ctx context.Context, n int) error
}

// goodActuator routes every actuation through an exported API; local
// variables (non-fields) stay writable.
type goodActuator struct {
	rm resizer
}

func (a *goodActuator) Apply(ctx context.Context, sp control.Setpoints) error {
	target := sp.Replicas
	if sp.MaxBatch > 1 {
		target = sp.Replicas * sp.MaxBatch
	}
	return a.rm.Resize(ctx, target)
}

// excusedActuator is a test fake whose ledger write is annotated.
type excusedActuator struct {
	last control.Setpoints
}

func (a *excusedActuator) Apply(ctx context.Context, sp control.Setpoints) error {
	a.last = sp //bitflow:actuate-ok test fake records applied setpoints for assertions
	return nil
}

// bareExcuse carries a directive with no justification — that is itself
// a finding, never an excuse.
type bareExcuse struct {
	n int
}

func (a *bareExcuse) Apply(ctx context.Context, sp control.Setpoints) error {
	//bitflow:actuate-ok
	a.n = sp.Replicas // want:actuate
	return nil
}

// notAnActuator has a method named Apply with a different signature; its
// field writes are none of this rule's business.
type notAnActuator struct {
	n int
}

func (a *notAnActuator) Apply(n int) {
	a.n = n
}
