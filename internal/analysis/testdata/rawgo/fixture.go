// Package rawgo is a seeded-violation fixture: loaded by the tests under
// the fake import path "fixture/internal/core" (not a concurrency-owner
// package), so every raw goroutine below must be flagged. Lines carry
// "// want:<analyzer>" markers the test harness checks exactly.
package rawgo

import "sync"

func fanOutRaw(work []int) {
	done := make(chan struct{})
	for range work {
		go func() { done <- struct{}{} }() // want:rawgo
	}
	for range work {
		<-done
	}
}

func fanOutWaitGroup(work []int) {
	var wg sync.WaitGroup // want:rawgo
	for range work {
		wg.Add(1)
		go func() { wg.Done() }() // want:rawgo
	}
	wg.Wait()
}

// fanOutExcused shows the escape hatch: a justified //bitflow:go-ok is
// accepted...
func fanOutExcused() {
	//bitflow:go-ok fixture: deliberate long-lived helper goroutine
	go func() {}()
}

// fanOutBareExcuse shows that an empty justification is itself flagged.
func fanOutBareExcuse() {
	//bitflow:go-ok
	go func() {}() // want:rawgo
}

// serialIsFine is the fixed form: no goroutines, nothing flagged.
func serialIsFine(work []int) int {
	total := 0
	for _, w := range work {
		total += w
	}
	return total
}
