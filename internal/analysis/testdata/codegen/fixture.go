// Package codegen is a seeded-violation fixture for the compiler-backed
// codegen gate, loaded under the fake import path
// "fixture/internal/kernels" — every function is a hot root and bounds
// checks are gated by package path, exactly like the real kernels. The
// compiler diagnostics are synthesized from the //codegen: marker lines
// by fixtureDiagSource: each marker stands in for one real
// `-m=2 -d=ssa/check_bce` diagnostic at that position, so the fixture
// exercises the diagnostic→finding mapping, the carve-outs, and the
// escape hatches without shelling out to the compiler.
package codegen

// HotKernel is a hot root by package role; the markers inside simulate
// what the optimizer reports about its body.
func HotKernel(in []int32) int32 {
	if len(in) == 0 {
		panicEmpty(
			//codegen:escape boxed-panic-argument
			len(in),
		)
	}
	var total int32
	for _, v := range in {
		total += v
	}
	// A local the compiler spilled to the heap: a per-call allocation.
	//codegen:moved total // want:codegen
	// Static string data never counts as a hot allocation.
	//codegen:escape "kernels: static label"
	// A surviving bounds check in a kernel is a finding...
	//codegen:bounds // want:codegen
	//bitflow:bce-ok fixture: deliberate, justified residual check
	//codegen:bounds
	//bitflow:bce-ok
	//codegen:bounds-slice // want:codegen
	//bitflow:alloc-ok fixture: justified spill, amortized at build time
	//codegen:moved spill
	return total
}

// RefKernel is excused wholesale: the function-level //bitflow:bce-ok
// covers every surviving check in a reference implementation.
//
//bitflow:bce-ok fixture: reference implementation kept for test oracles
func RefKernel(in []int32) int32 {
	var total int32
	//codegen:bounds
	//codegen:bounds-slice
	for _, v := range in {
		total += v
	}
	return total
}

// BareRefKernel has a function-level hatch with no why: one finding for
// the bare directive (reported once, not per diagnostic).
//
//bitflow:bce-ok
func BareRefKernel(in []int32) int32 { // want:codegen
	var total int32
	//codegen:bounds
	//codegen:bounds
	for _, v := range in {
		total += v
	}
	return total
}

// EnsureScratch is a boundary function (Ensure*): its allocations are
// the sanctioned buffer-growth path and are never hot findings.
func EnsureScratch(n int) []int32 {
	//codegen:moved grown
	grown := make([]int32, n)
	return grown
}

// panicEmpty is the sanctioned panic helper; escapes positioned inside
// its call are failure-path formatting, not hot allocations.
func panicEmpty(n int) {
	panic("kernels: empty input")
}
