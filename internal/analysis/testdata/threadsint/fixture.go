// Package threadsint is a seeded-violation fixture loaded under the fake
// import path "fixture/internal/core": operator-package rules apply.
package threadsint

import "bitflow/internal/exec"

// Forward reintroduces the legacy thread-count parameter.
func Forward(in, out []float32, threads int) { // want:threadsint
	_ = threads
}

// forwardWorkers hits the name list with a different spelling.
func forwardWorkers(in []float32, nworkers int) { // want:threadsint
	_ = nworkers
}

// selfManaged decides its own parallelism instead of accepting a context
// (unexported so only the constructor rule fires, not the exported-API one).
func selfManaged(in, out []int32) {
	ec := exec.Threads(8) // want:threadsint
	ec.ParallelFor(len(in), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = in[i]
		}
	})
}

// SmuggledCtx is exported, drives ParallelFor, but takes no *exec.Ctx.
func SmuggledCtx(in, out []int32) { // want:threadsint
	ec := smuggle()
	ec.ParallelFor(len(in), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = in[i]
		}
	})
}

func smuggle() *exec.Ctx { return exec.Serial() }

// Fixed is the sanctioned form: the caller decides parallelism.
func Fixed(in, out []int32, ec *exec.Ctx) {
	ec.ParallelFor(len(in), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = in[i]
		}
	})
}

// serialHelper may use exec.Serial freely: it is the explicit
// "no parallelism" value, not a parallelism decision.
func serialHelper(in, out []int32) {
	exec.Serial().ParallelFor(len(in), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = in[i]
		}
	})
}
