// Package panicpath is a seeded-violation fixture loaded under the fake
// import path "fixture/internal/serve": handler-shaped functions and
// goroutine targets are zone roots, and any panic they can reach without
// a resilience.Safe guard must be flagged.
package panicpath

import (
	"net/http"

	"bitflow/internal/resilience"
)

// handleDirect panics in the handler body itself.
func handleDirect(w http.ResponseWriter, r *http.Request) {
	if r == nil {
		panic("nil request") // want:panicpath
	}
	w.WriteHeader(http.StatusOK)
}

// handleTransitive reaches a panic two calls down.
func handleTransitive(w http.ResponseWriter, r *http.Request) {
	decode(r)
	w.WriteHeader(http.StatusOK)
}

func decode(r *http.Request) { validate(r) }

func validate(r *http.Request) {
	if r.Body == nil {
		panic("no body") // want:panicpath
	}
}

// handleGuarded wraps the panicky path in resilience.Safe: the guarded
// edge is pruned, so guardedDecode's panic is unreachable and clean.
func handleGuarded(w http.ResponseWriter, r *http.Request) {
	if err := resilience.Safe(func() { guardedDecode(r) }); err != nil {
		http.Error(w, "replica panic", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func guardedDecode(r *http.Request) {
	if r.Body == nil {
		panic("no body")
	}
}

// handlePruned prunes one call edge with a justified //bitflow:panic-ok:
// the annotation asserts the callee cannot panic from here.
func handlePruned(w http.ResponseWriter, r *http.Request) {
	if r == nil {
		http.Error(w, "nil request", http.StatusBadRequest)
		return
	}
	//bitflow:panic-ok r was nil-checked just above; mustDecode only panics on nil
	mustDecode(r)
	w.WriteHeader(http.StatusOK)
}

func mustDecode(r *http.Request) {
	if r == nil {
		panic("nil request")
	}
}

// handleBare carries a panic-ok with no justification: the annotation is
// flagged AND the edge still counts, so mustDecodeBare's panic is too.
func handleBare(w http.ResponseWriter, r *http.Request) {
	//bitflow:panic-ok
	mustDecodeBare(r) // want:panicpath
	w.WriteHeader(http.StatusOK)
}

func mustDecodeBare(r *http.Request) {
	if r == nil {
		panic("nil request") // want:panicpath
	}
}

// handleAnnotatedPanic excuses the panic itself with a justification.
func handleAnnotatedPanic(w http.ResponseWriter, r *http.Request) {
	if r == nil {
		//bitflow:panic-ok misuse guard for nil *Request, unreachable via net/http
		panic("nil request")
	}
	w.WriteHeader(http.StatusOK)
}

// startWorker launches a goroutine: its target has no recovering caller,
// so the target's panic is request-fatal and flagged.
func startWorker() {
	go worker()
}

func worker() {
	panic("worker died") // want:panicpath
}

// orphan is in the zone package but unreachable from any root: clean.
func orphan() {
	panic("never called")
}
