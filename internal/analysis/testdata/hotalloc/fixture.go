// Package hotalloc is a seeded-violation fixture loaded under the fake
// import path "fixture/internal/core". HotPath is rooted with
// //bitflow:hot; everything reachable from it must be allocation-free.
package hotalloc

type result struct {
	vals []int32
}

//bitflow:hot
func HotPath(in []int32) int32 {
	if len(in) == 0 {
		// Allocations feeding a panic argument are failure-path only and
		// must not be flagged (this boxes "empty input" into an any).
		panic(any("empty input"))
	}
	buf := make([]int32, len(in)) // want:hotalloc
	copy(buf, in)
	buf = append(buf, 0)   // want:hotalloc
	extras := []int32{1}   // want:hotalloc
	seen := map[int]bool{} // want:hotalloc
	_ = seen
	r := &result{vals: buf} // want:hotalloc
	_ = extras
	scratch := make([]int32, 4) //bitflow:alloc-ok fixture: deliberate, justified scratch buffer
	_ = scratch
	//bitflow:alloc-ok
	bare := make([]int32, 4) // want:hotalloc
	_ = bare
	grown := EnsureScratch(8) // boundary call: EnsureScratch's make is sanctioned
	_ = grown
	return helper(r.vals)
}

// helper is reached transitively from HotPath: its allocation is hot too.
func helper(in []int32) int32 {
	tmp := make([]int32, len(in)) // want:hotalloc
	copy(tmp, in)
	var total int32
	for _, v := range tmp {
		total += v
	}
	return total
}

// EnsureScratch is a sanctioned allocation point: the Ensure* name prefix
// makes it a boundary, so its make is never flagged even though HotPath
// calls it.
func EnsureScratch(n int) []int32 {
	return make([]int32, n)
}

// coldPath is not reachable from any hot root: free to allocate.
func coldPath(n int) []int32 {
	out := make([]int32, n)
	return out
}
