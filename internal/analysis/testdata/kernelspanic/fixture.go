// Package kernelspanic is a seeded-violation fixture loaded under the
// fake import path "fixture/internal/kernels": kernels code may only
// panic inside the sanctioned panic* helper functions.
package kernelspanic

// Apply panics inline instead of going through a helper: flagged.
func Apply(a, b []uint64) int32 {
	if len(a) != len(b) {
		panic("kernels: length mismatch") // want:panicpath
	}
	var acc int32
	for i := range a {
		if a[i] == b[i] {
			acc++
		}
	}
	return acc
}

// ApplyChecked routes the same check through the sanctioned helper.
func ApplyChecked(a, b []uint64) int32 {
	if len(a) != len(b) {
		panicSizeMismatch(len(a), len(b))
	}
	var acc int32
	for i := range a {
		if a[i] == b[i] {
			acc++
		}
	}
	return acc
}

// panicSizeMismatch is a sanctioned helper: the panic* name prefix makes
// its panic legal.
func panicSizeMismatch(got, want int) {
	panic("kernels: size mismatch")
}
