// Package lockorder is a seeded-violation fixture for the lock-order
// discipline, loaded under the fake import path "fixture/internal/core".
// A and B are acquired in both orders — the cycle every deadlock story
// starts with; C nests two instances of the same class; D→E is a benign,
// consistent nesting used to exercise the escape hatch.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// LockAB nests B under A: the A.mu → B.mu half of the cycle.
func LockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want:lockorder
	b.mu.Unlock()
}

// LockBA acquires A transitively (through lockA) while holding B: the
// B.mu → A.mu half, discovered through the call graph, closing the cycle.
func LockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a) // want:lockorder
}

// lockA briefly takes A's lock.
func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

type C struct{ mu sync.Mutex }

// NestSame nests two instances of one class: a self-edge, reported as a
// cycle of length one (no instance order is implied by the class graph).
func NestSame(x, y *C) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want:lockorder
	y.mu.Unlock()
}

type D struct{ mu sync.Mutex }

type E struct{ mu sync.Mutex }

// NestConsistent nests E under D and nowhere the other way: a legal,
// consistent order — no finding, and the canonical order prints it.
func NestConsistent(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// NestExcused shows the justified hatch: the same-class nesting is
// proven safe out of band, so the acquisition's edges are dropped.
func NestExcused(x, y *D) {
	x.mu.Lock()
	defer x.mu.Unlock()
	//bitflow:lock-ok fixture: instances are ordered by address upstream
	y.mu.Lock()
	y.mu.Unlock()
}

// NestBare has the hatch without the why: the bare directive is itself
// the finding (the D.mu → E.mu edge it fails to drop is consistent with
// NestConsistent, so no cycle is reported).
func NestBare(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	//bitflow:lock-ok
	e.mu.Lock() // want:lockorder
	e.mu.Unlock()
}
