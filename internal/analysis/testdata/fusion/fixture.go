// Package fusion is a seeded-violation fixture loaded under the fake
// import path "fixture/internal/core". ForwardFused* functions root the
// fusion rule: their call graph must be allocation-free and must never
// materialize a float tensor — the fused data-flow exists to keep
// inter-layer activations packed-bit only.
package fusion

import "bitflow/internal/tensor"

type op struct{ k int }

// ForwardFused is a fusion root by name.
func (o *op) ForwardFused(in, out []uint64) {
	if len(out) == 0 {
		// Failure path: constructions feeding a panic argument are never
		// executed on a successful pass and must not be flagged.
		panic(tensor.New(1, 1, o.k))
	}
	tmp := make([]int32, o.k) // want:fusion
	_ = tmp
	plane := tensor.New(2, 2, o.k) // want:fusion
	_ = plane
	helper(o.k)
	scratch := EnsureScratch(o.k) // boundary call: Ensure* allocation is sanctioned
	_ = scratch
	excused := make([]int32, o.k) //bitflow:alloc-ok fixture: deliberate, justified scratch shared with hotalloc's escape hatch
	_ = excused
}

// helper is reached transitively from ForwardFused: its float-tensor
// literal is on the fused graph too.
func helper(k int) {
	t := tensor.Tensor{H: 1, W: 1, C: k} // want:fusion
	_ = t
}

// EnsureScratch is a boundary: its allocation is the sanctioned kind.
func EnsureScratch(n int) []int32 {
	return make([]int32, n)
}

// hotFloat is hot-annotated but outside any fused graph: hotalloc owns
// its allocations, fusion still forbids its float-tensor constructions.
//
//bitflow:hot
func hotFloat(k int) {
	buf := make([]float32, k) // want:hotalloc
	_ = buf
	t := tensor.New(1, 1, k) // want:fusion
	_ = t
	pt := &tensor.Tensor{H: 1, W: 1, C: k} // want:hotalloc,fusion
	_ = pt
}

// coldPath is reachable from no fused or hot root: float tensors are
// perfectly fine on build-time paths.
func coldPath(k int) *tensor.Tensor {
	return tensor.New(4, 4, k)
}

// ForwardFusedExcused carries the escape hatch: a justified marker
// excuses a deliberate float materialization (e.g. a debug tap); a bare
// one is itself a finding.
func (o *op) ForwardFusedExcused(out []uint64) {
	dbg := tensor.New(1, 1, o.k) //bitflow:fusion-ok fixture: deliberate, justified debug tap
	_ = dbg
	//bitflow:fusion-ok
	bare := tensor.New(1, 1, o.k) // want:fusion
	_ = bare
}
