// Package actuatecontrol seeds the actuate rule's layering violation:
// a package in the internal/control role importing one of the packages
// the controller actuates. The dependency must point the other way —
// serve implements control.Actuator — so the control loop can never
// reach around its own actuation interface.
package actuatecontrol

import (
	"bitflow/internal/registry" // want:actuate
)

// keep the forbidden import live for the type checker.
var _ = registry.OutcomeSwapped
