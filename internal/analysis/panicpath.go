package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPath enforces the crash-containment contract: a panic that a
// request can reach must be caught by resilience.Safe so the replica is
// re-cloned instead of the process dying.
//
// Zone roots (internal/serve, internal/batch, internal/registry): every
// function with an http.ResponseWriter parameter (an HTTP handler),
// every exported Batcher method, every exported Model/Registry method
// (the swap protocol runs under SIGHUP with no recovering caller), and
// the target of every go statement in the zone (a worker goroutine's
// panic kills the process). From those roots the call graph is walked,
// pruning edges
// guarded by resilience.Safe and call sites annotated
// //bitflow:panic-ok <reason> (the annotation asserts the call cannot
// panic, e.g. because its input was validated just above). Any lexical
// panic left reachable is a finding unless the panic itself carries the
// annotation.
//
// internal/kernels additionally may only panic inside the sanctioned
// size-mismatch helpers (functions whose names start with "panic"), so
// argument checking stays uniform and greppable.
var PanicPath = &Analyzer{
	Name: "panicpath",
	Doc:  "panics reachable from serve/batch handlers without a resilience.Safe guard; unsanctioned kernels panics",
	Run:  runPanicPath,
}

func runPanicPath(p *Program) []Finding {
	out := panicZone(p)
	out = append(out, kernelsPanics(p)...)
	return out
}

// panicZone checks serve/batch reachability.
func panicZone(p *Program) []Finding {
	g := p.graph()
	inZone := func(pkg *Package) bool {
		return pathSuffix(pkg.Path, "internal/serve") ||
			pathSuffix(pkg.Path, "internal/batch") ||
			pathSuffix(pkg.Path, "internal/registry")
	}

	var roots []*funcNode
	for _, n := range g.nodes {
		if !inZone(n.pkg) {
			continue
		}
		if n.decl != nil && (handlerFunc(n) || exportedBatcherMethod(n) || exportedRegistryMethod(n)) {
			roots = append(roots, n)
		}
	}
	// Goroutine targets: a panic inside `go f()` has no caller to
	// recover it.
	for _, n := range g.nodes {
		if !inZone(n.pkg) {
			continue
		}
		roots = append(roots, goTargets(g, n)...)
	}

	var out []Finding
	skip := func(e edge) bool {
		if e.guarded {
			return true
		}
		ok, bare := p.allowed(e.pos, "panic-ok")
		if bare != nil {
			out = append(out, p.finding("panicpath", e.pos,
				"//bitflow:panic-ok needs a justification string"))
		}
		return ok
	}
	reached := g.reach(roots, reachOpts{skipEdge: skip})

	for _, n := range g.nodes {
		if !reached[n] {
			continue
		}
		for _, pos := range n.panics {
			out = append(out, p.excusable("panicpath", pos, "panic-ok",
				"panic reachable from serve/batch handler code without a resilience.Safe guard")...)
		}
	}
	return out
}

// handlerFunc reports whether the function takes an http.ResponseWriter
// (the shape of every HTTP handler and handler helper).
func handlerFunc(n *funcNode) bool {
	if n.decl == nil || n.decl.Type.Params == nil {
		return false
	}
	for _, field := range n.decl.Type.Params.List {
		t := n.pkg.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}

// exportedBatcherMethod reports whether the node is an exported method
// on batch.Batcher — the public surface callers drive directly.
func exportedBatcherMethod(n *funcNode) bool {
	return n.recvTypeName() == "Batcher" && n.obj != nil && n.obj.Exported()
}

// exportedRegistryMethod reports whether the node is an exported method
// on registry.Model or registry.Registry. The swap protocol is driven
// from a SIGHUP goroutine as well as HTTP handlers, so a panic escaping
// it has no recovering caller.
func exportedRegistryMethod(n *funcNode) bool {
	if !pathSuffix(n.pkg.Path, "internal/registry") {
		return false
	}
	recv := n.recvTypeName()
	return (recv == "Model" || recv == "Registry") && n.obj != nil && n.obj.Exported()
}

// goTargets resolves the functions and literals launched by go
// statements lexically inside n.
func goTargets(g *callGraph, n *funcNode) []*funcNode {
	var out []*funcNode
	ast.Inspect(n.body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		gs, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			if ln := g.byLit[fun]; ln != nil {
				out = append(out, ln)
			}
		default:
			if fn := calleeFunc(n.pkg.Info, gs.Call); fn != nil {
				if fnode := g.byObj[fn]; fnode != nil {
					out = append(out, fnode)
				}
			}
		}
		return true
	})
	return out
}

// kernelsPanics restricts internal/kernels panics to the sanctioned
// helper functions.
func kernelsPanics(p *Program) []Finding {
	g := p.graph()
	var out []Finding
	for _, n := range g.nodes {
		if !pathSuffix(n.pkg.Path, "internal/kernels") {
			continue
		}
		if strings.HasPrefix(n.name(), "panic") {
			continue // a sanctioned helper
		}
		for _, pos := range n.panics {
			out = append(out, p.excusable("panicpath", pos, "panic-ok",
				"kernels may only panic via the panic* size-mismatch helpers")...)
		}
	}
	return out
}
