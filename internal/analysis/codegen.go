package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Codegen upgrades the hot-path discipline from AST guesswork to
// compiler-verified fact. It compiles internal/kernels and internal/core
// under `-gcflags='-m=2 -d=ssa/check_bce'`, maps every escape-analysis
// and bounds-check diagnostic onto the hot call graph, and fails on:
//
//   - any heap escape ("escapes to heap" / "moved to heap") inside a
//     function reachable from the hot roots (Network.Infer*, kernels,
//     ForwardFused*, //bitflow:hot) — an escape IS a per-call
//     allocation, so the existing //bitflow:alloc-ok hatch excuses it;
//   - any surviving bounds check ("Found IsInBounds" / "Found
//     IsSliceInBounds") inside a hot kernel — a function in
//     internal/kernels or annotated //bitflow:hot — excusable with
//     //bitflow:bce-ok <reason> on the line, or on the function
//     declaration to excuse a whole reference/tail implementation.
//
// Deliberate blind spots, chosen so the gate only fires on real hot-path
// regressions:
//
//   - escapes whose subject is a string literal (static data; panic
//     messages inlined from callees land on the caller's call line);
//   - escapes positioned inside a panic(...) argument or a call to a
//     panic* helper (failure path, mirrors hotalloc);
//   - "func literal escapes to heap" where the literal is an argument to
//     internal/exec dispatch or resilience.Safe — the one sanctioned
//     per-dispatch closure allocation;
//   - bounds checks outside kernels (core's cold setup loops may keep
//     their checks; only code marked hot pays the BCE discipline).
var Codegen = &Analyzer{
	Name: "codegen",
	Doc:  "compiler-verified hot paths: no heap escapes in the hot graph, no surviving bounds checks in kernels",
	Run:  runCodegen,
}

func runCodegen(p *Program) []Finding {
	diags, err := p.compilerDiags()
	if err != nil {
		return []Finding{{Analyzer: "codegen", File: "go-build", Message: err.Error()}}
	}
	if len(diags) == 0 {
		return nil
	}

	g := p.graph()
	var roots []*funcNode
	for _, n := range g.nodes {
		if hotRoot(p, n) || strings.HasPrefix(n.name(), "ForwardFused") {
			roots = append(roots, n)
		}
	}
	boundary := func(n *funcNode) bool {
		name := n.name()
		return strings.HasPrefix(name, "Ensure") || name == "Clone"
	}
	reached := g.reach(roots, reachOpts{boundary: boundary})

	idx := p.fileIndex()
	var out []Finding
	bareDecl := map[token.Pos]bool{} // function-level bare bce-ok reported once
	for _, d := range diags {
		loc, ok := idx[d.File]
		if !ok {
			continue // diagnostic for a file outside the loaded program
		}
		fn := p.enclosingFunc(g, loc, d.Line)
		if fn == nil || !reached[fn] || boundary(fn) {
			continue
		}
		pos := p.linePos(loc.file, d.Line)

		switch d.Kind {
		case DiagEscape, DiagMoved:
			if strings.HasPrefix(d.Subject, `"`) {
				continue // static string data (often a panic message inlined into the call line)
			}
			if p.onPanicPath(loc, d.Line) {
				continue
			}
			if d.Subject == "func literal" && p.execDispatchLiteral(loc, d.Line) {
				continue
			}
			out = append(out, p.excusable("codegen", pos, "alloc-ok",
				"compiler-verified heap allocation on hot path: "+d.Subject+" "+d.Kind.String()+
					" in "+funcLabel(fn)+"; keep hot values on the stack or annotate //bitflow:alloc-ok <reason>")...)

		case DiagBounds, DiagSliceBounds:
			if !p.boundsGated(loc, fn) {
				continue
			}
			if decl := p.topLevelDecl(loc, d.Line); decl != nil {
				if dir := p.directiveFor(decl.Pos(), "bce-ok"); dir != nil {
					if dir.Reason != "" {
						continue // whole function excused (reference/tail implementations)
					}
					if !bareDecl[decl.Pos()] {
						bareDecl[decl.Pos()] = true
						out = append(out, p.finding("codegen", decl.Pos(),
							"/bitflow:bce-ok needs a justification string"))
					}
					continue
				}
			}
			out = append(out, p.excusable("codegen", pos, "bce-ok",
				"surviving bounds check (Found "+d.Kind.String()+") in hot kernel "+funcLabel(fn)+
					"; restructure the loop for bounds-check elimination or annotate //bitflow:bce-ok <reason>")...)
		}
	}
	return out
}

// boundsGated reports whether fn pays the bounds-check discipline: it
// lives in internal/kernels, or its top-level declaration (for literals,
// the enclosing one) is annotated //bitflow:hot.
func (p *Program) boundsGated(loc fileLoc, fn *funcNode) bool {
	if pathSuffix(fn.pkg.Path, "internal/kernels") {
		return true
	}
	decl := fn.decl
	if decl == nil && fn.lit != nil {
		decl = p.topLevelDecl(loc, p.Fset.Position(fn.lit.Pos()).Line)
	}
	return decl != nil && p.directiveFor(decl.Pos(), "hot") != nil
}

// funcLabel names a node for finding messages.
func funcLabel(n *funcNode) string {
	if n.obj != nil {
		if recv := n.recvTypeName(); recv != "" {
			return recv + "." + n.obj.Name()
		}
		return n.obj.Name()
	}
	return "func literal"
}

// fileLoc binds one parsed file to its package for position lookups.
type fileLoc struct {
	pkg  *Package
	file *ast.File
}

// fileIndex maps absolute cleaned file paths to their parsed files.
func (p *Program) fileIndex() map[string]fileLoc {
	idx := map[string]fileLoc{}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			tokFile := p.Fset.File(f.Pos())
			if tokFile == nil {
				continue
			}
			name := tokFile.Name()
			if abs, err := filepath.Abs(name); err == nil {
				name = abs
			}
			idx[filepath.Clean(name)] = fileLoc{pkg: pkg, file: f}
		}
	}
	return idx
}

// linePos returns a position on the given line of the file (column 1),
// for anchoring findings and directive lookups. Out-of-range lines fall
// back to the file start.
func (p *Program) linePos(f *ast.File, line int) token.Pos {
	tokFile := p.Fset.File(f.Pos())
	if tokFile == nil || line < 1 || line > tokFile.LineCount() {
		return f.Pos()
	}
	return tokFile.LineStart(line)
}

// spansLine reports whether node n covers the given source line.
// Containment checks are line-based: compiler positions produced by
// inlining can carry surprising columns, but the line always identifies
// the source construct.
func (p *Program) spansLine(n ast.Node, line int) (start int, covers bool) {
	s := p.Fset.Position(n.Pos()).Line
	e := p.Fset.Position(n.End()).Line
	return s, s <= line && line <= e
}

// enclosingFunc finds the innermost function node (declaration or
// literal) whose line span covers the diagnostic line.
func (p *Program) enclosingFunc(g *callGraph, loc fileLoc, line int) *funcNode {
	var best *funcNode
	bestSpan := 1 << 30
	consider := func(n ast.Node, fn *funcNode) {
		if fn == nil {
			return
		}
		s := p.Fset.Position(n.Pos()).Line
		e := p.Fset.Position(n.End()).Line
		if s <= line && line <= e && e-s < bestSpan {
			best, bestSpan = fn, e-s
		}
	}
	ast.Inspect(loc.file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				consider(x, g.declNode(loc.pkg, x))
			}
		case *ast.FuncLit:
			consider(x, g.byLit[x])
		}
		return true
	})
	return best
}

// topLevelDecl finds the top-level function declaration whose line span
// covers the diagnostic line (nil for positions outside any function).
func (p *Program) topLevelDecl(loc fileLoc, line int) *ast.FuncDecl {
	for _, decl := range loc.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if _, ok := p.spansLine(fd, line); ok {
			return fd
		}
	}
	return nil
}

// onPanicPath reports whether the line lies inside a call to the panic
// builtin or to a panic* helper — the sanctioned failure path whose
// allocations (message formatting) never run on a successful inference.
func (p *Program) onPanicPath(loc fileLoc, line int) bool {
	found := false
	ast.Inspect(loc.file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, covers := p.spansLine(call, line); !covers {
			return true
		}
		if isBuiltin(loc.pkg.Info, call, "panic") {
			found = true
			return false
		}
		if fn := calleeFunc(loc.pkg.Info, call); fn != nil && strings.HasPrefix(fn.Name(), "panic") {
			found = true
			return false
		}
		return true
	})
	return found
}

// execDispatchLiteral reports whether a func literal starting on the
// line is a direct argument to internal/exec dispatch (ParallelFor and
// friends) or resilience.Safe — the one closure allocation the serving
// design sanctions per dispatch.
func (p *Program) execDispatchLiteral(loc fileLoc, line int) bool {
	found := false
	ast.Inspect(loc.file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(loc.pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkgPath := fn.Pkg().Path()
		if !pathSuffix(pkgPath, "internal/exec") && !pathSuffix(pkgPath, "internal/resilience") {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				if p.Fset.Position(lit.Pos()).Line == line {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
