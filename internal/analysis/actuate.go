package analysis

import (
	"go/ast"
	"go/types"
)

// Actuate enforces the control loop's two structural invariants:
//
//  1. internal/control stays mechanism-free: it computes setpoints and
//     must never import the packages it steers (serve, batch, registry,
//     graph). The dependency points the other way — serve implements
//     control.Actuator — so the controller can be tested against fakes
//     and can never reach around its own actuation interface.
//  2. Actuator implementations actuate through exported APIs only: an
//     Apply body must not write struct fields. A direct field poke
//     (gate capacity, replica count, batch geometry) would bypass the
//     ordering and verification the exported resize/retune paths
//     guarantee (admission never exceeding serving capacity, grown
//     replicas proved bit-exact). `//bitflow:actuate-ok <reason>`
//     excuses a deliberate exception (e.g. a test fake's ledger).
var Actuate = &Analyzer{
	Name: "actuate",
	Doc:  "internal/control importing actuated packages; Actuator.Apply writing struct fields directly",
	Run:  runActuate,
}

// controlForbiddenImports are the package roles internal/control must
// never depend on: everything it actuates or observes through
// interfaces.
var controlForbiddenImports = []string{
	"internal/serve", "internal/batch", "internal/registry", "internal/graph",
}

func runActuate(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Pkgs {
		if pathSuffix(pkg.Path, "internal/control") {
			out = append(out, checkControlImports(p, pkg)...)
		}
		out = append(out, checkActuatorBodies(p, pkg)...)
	}
	return out
}

// checkControlImports flags forbidden imports of the control package.
func checkControlImports(p *Program, pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := imp.Path.Value
			path = path[1 : len(path)-1] // strip quotes
			for _, forbidden := range controlForbiddenImports {
				if pathSuffix(path, forbidden) {
					out = append(out, p.finding("actuate", imp.Pos(),
						"internal/control must not import %s: the controller computes setpoints; mechanism belongs behind control.Actuator", path))
				}
			}
		}
	}
	return out
}

// actuatorInterface resolves the control.Actuator interface as seen by
// pkg: from the package itself when it IS internal/control, else from
// its imports. Nil when the package cannot name the interface.
func actuatorInterface(pkg *Package) *types.Interface {
	lookup := func(tp *types.Package) *types.Interface {
		obj := tp.Scope().Lookup("Actuator")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if pathSuffix(pkg.Path, "internal/control") {
		return lookup(pkg.Types)
	}
	for _, imp := range pkg.Types.Imports() {
		if pathSuffix(imp.Path(), "internal/control") {
			return lookup(imp)
		}
	}
	return nil
}

// checkActuatorBodies flags struct-field writes inside the Apply method
// of any type implementing control.Actuator.
func checkActuatorBodies(p *Program, pkg *Package) []Finding {
	iface := actuatorInterface(pkg)
	if iface == nil || iface.NumMethods() == 0 {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Apply" || fd.Body == nil {
				continue
			}
			obj := pkg.Info.Defs[fd.Name]
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			rt := recv.Type()
			if !types.Implements(rt, iface) && !types.Implements(types.NewPointer(rt), iface) {
				continue
			}
			out = append(out, findFieldWrites(p, pkg, fd.Body)...)
		}
	}
	return out
}

const actuateMsg = "Actuator.Apply writes a struct field directly; actuate through the exported APIs (batch.Batcher.Retune, registry.Model.Resize)"

// findFieldWrites walks a function body flagging assignments, op-assigns
// and inc/dec whose target is a struct field selector.
func findFieldWrites(p *Program, pkg *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if isFieldSelector(pkg.Info, lhs) {
					out = append(out, p.excusable("actuate", node.Pos(), "actuate-ok", actuateMsg)...)
				}
			}
		case *ast.IncDecStmt:
			if isFieldSelector(pkg.Info, node.X) {
				out = append(out, p.excusable("actuate", node.Pos(), "actuate-ok", actuateMsg)...)
			}
		}
		return true
	})
	return out
}

// isFieldSelector reports whether expr selects a struct field (the only
// selector an assignment can write through).
func isFieldSelector(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	return ok && v.IsField()
}
