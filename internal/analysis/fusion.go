package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Fusion guards the fused binarization data-flow invariant: everything
// reachable from a ForwardFused* entry point stays allocation-free (the
// fused epilogue exists to *remove* intermediate traffic, so a stray
// make/append would defeat it silently), and neither the fused graph nor
// any //bitflow:hot function may materialize a float tensor — the whole
// point of conv → threshold → binarize → pool fusion is that activations
// between fusable layers exist only as packed bits.
//
// Roots: every function whose name starts with "ForwardFused", plus
// (tensor-construction check only) every //bitflow:hot function.
// Boundaries mirror hotalloc: Ensure*/Clone are the sanctioned
// allocation points. //bitflow:alloc-ok excuses a deliberate allocation
// (shared with hotalloc, so one annotation covers both reports);
// //bitflow:fusion-ok <reason> excuses a deliberate float-tensor
// construction.
var Fusion = &Analyzer{
	Name: "fusion",
	Doc:  "fused forward graph must stay allocation-free and packed-bit only (no float tensor intermediates)",
	Run:  runFusion,
}

func runFusion(p *Program) []Finding {
	g := p.graph()
	var roots []*funcNode
	for _, n := range g.nodes {
		if strings.HasPrefix(n.name(), "ForwardFused") {
			roots = append(roots, n)
		}
	}
	boundary := func(n *funcNode) bool {
		name := n.name()
		return strings.HasPrefix(name, "Ensure") || name == "Clone"
	}
	reached := g.reach(roots, reachOpts{boundary: boundary})

	var out []Finding
	for _, n := range g.nodes {
		if boundary(n) {
			continue
		}
		if reached[n] {
			out = append(out, scanAllocsAs(p, n, "fusion")...)
			out = append(out, scanTensorConstruction(p, n)...)
			continue
		}
		// Hot-annotated functions outside the fused graph still may not
		// materialize float tensors between layers.
		if n.decl != nil && p.directiveFor(n.decl.Pos(), "hot") != nil {
			out = append(out, scanTensorConstruction(p, n)...)
		}
	}
	return out
}

// scanTensorConstruction flags sites that materialize a float tensor:
// calls into internal/tensor constructors (tensor.New, NewMatrix, …) and
// composite literals of internal/tensor types.
func scanTensorConstruction(p *Program, n *funcNode) []Finding {
	info := n.pkg.Info
	var out []Finding
	flag := func(node ast.Node, what string) {
		out = append(out, p.excusable("fusion", node.Pos(), "fusion-ok",
			what+" materializes a float intermediate on a fused/hot path; keep the data-flow packed-bit or annotate //bitflow:fusion-ok <reason>")...)
	}
	ast.Inspect(n.body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Failure path: tensor construction feeding a panic argument
			// (e.g. formatting a shape mismatch) never runs on success.
			if isBuiltin(info, x, "panic") {
				return false
			}
			if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil &&
				pathSuffix(fn.Pkg().Path(), "internal/tensor") &&
				strings.HasPrefix(fn.Name(), "New") {
				flag(x, "tensor."+fn.Name()+" call")
			}
		case *ast.CompositeLit:
			if t := info.Types[x].Type; t != nil && isTensorNamed(t) {
				flag(x, types.TypeString(t, types.RelativeTo(n.pkg.Types))+" literal")
			}
		}
		return true
	})
	return out
}

// isTensorNamed reports whether t is a named type declared in
// internal/tensor (Tensor, Matrix, Filter).
func isTensorNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && pathSuffix(obj.Pkg().Path(), "internal/tensor")
}
