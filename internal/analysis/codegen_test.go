package analysis

import (
	"strings"
	"testing"
)

func TestCodegenFixture(t *testing.T) {
	findings := checkFixture(t, "fixture/internal/kernels", "testdata/codegen")
	// Both bare hatches — the line-level and the function-level
	// //bitflow:bce-ok — must surface as bad annotations, not be
	// silently honored.
	bare := 0
	for _, f := range findings {
		if strings.Contains(f.Message, "bce-ok needs a justification") {
			bare++
		}
	}
	if bare != 2 {
		t.Errorf("got %d bce-ok needs-a-justification findings, want 2 (line-level and function-level)", bare)
	}
}

func TestAtomicsFixture(t *testing.T) {
	findings := checkFixture(t, "fixture/internal/core", "testdata/atomics")
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "atomic-ok needs a justification") {
			found = true
		}
	}
	if !found {
		t.Error("bare //bitflow:atomic-ok was not reported as an unjustified annotation")
	}
}

func TestLockOrderFixture(t *testing.T) {
	findings := checkFixture(t, "fixture/internal/core", "testdata/lockorder")
	// Cycle findings must carry the discovered canonical order so the
	// fix is legible from the report alone.
	cycles := 0
	for _, f := range findings {
		if strings.Contains(f.Message, "lock-order cycle") {
			cycles++
			if !strings.Contains(f.Message, "canonical order:") {
				t.Errorf("cycle finding missing the canonical order: %s", f)
			}
		}
	}
	if cycles != 3 {
		t.Errorf("got %d cycle findings, want 3 (two edges of the A/B cycle, one self-edge)", cycles)
	}

	prog, err := LoadFixture(moduleRoot, "fixture/internal/core", "testdata/lockorder")
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	ordered, isolated := DiscoveredLockOrder(prog)
	di, ei := -1, -1
	for i, name := range ordered {
		switch name {
		case "lockorder.D.mu":
			di = i
		case "lockorder.E.mu":
			ei = i
		}
	}
	if di < 0 || ei < 0 || di >= ei {
		t.Errorf("canonical order %v does not place lockorder.D.mu before lockorder.E.mu", ordered)
	}
	if len(isolated) != 0 {
		t.Errorf("isolated = %v, want none (every fixture class participates in an edge)", isolated)
	}
}

// TestHotLoopsCompilerVerified pins the kernel discipline at its source:
// compiling internal/kernels under the gate's gcflags must yield zero
// codegen findings — every surviving bounds check is explicitly
// annotated, and the inner loops are proven check-free by the compiler,
// not by convention. The diagnostics stream itself must be non-empty
// (the annotated preamble pins survive as IsSliceInBounds), proving the
// compile actually ran rather than silently producing nothing.
func TestHotLoopsCompilerVerified(t *testing.T) {
	prog, err := Load(moduleRoot, "./internal/kernels")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := prog.compilerDiags()
	if err != nil {
		t.Fatalf("compilerDiags: %v", err)
	}
	bounds := 0
	for _, d := range diags {
		if d.Kind == DiagBounds || d.Kind == DiagSliceBounds {
			bounds++
		}
	}
	if bounds == 0 {
		t.Fatal("no bounds-check diagnostics captured; expected the annotated preamble pins — did the diagnostic compile run?")
	}
	for _, f := range Run(prog, []*Analyzer{Codegen}) {
		t.Errorf("unexpected codegen finding: %s", f)
	}
}
