package analysis

import (
	"go/token"
	"strings"
)

// Directive is one parsed //bitflow:<kind> comment. The escape hatches
// the analyzers honor are deliberately noisy in the source: the rule
// stays strict and every exception carries its justification next to
// the code it excuses.
type Directive struct {
	Kind   string // "alloc-ok", "go-ok", "panic-ok", "actuate-ok", "bce-ok", "atomic-ok", "lock-ok", "hot"
	Reason string // justification text after the marker
	Line   int
	Pos    token.Pos
}

const directivePrefix = "//bitflow:"

// scanDirectives indexes every //bitflow: comment of the package by
// file and line.
func (p *Program) scanDirectives(pkg *Package) {
	for _, f := range pkg.Files {
		tokFile := p.Fset.File(f.Pos())
		if tokFile == nil {
			continue
		}
		name := tokFile.Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				kind := rest
				reason := ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					kind, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				pos := p.Fset.Position(c.Pos())
				d := &Directive{Kind: kind, Reason: reason, Line: pos.Line, Pos: c.Pos()}
				if p.directives[name] == nil {
					p.directives[name] = map[int]*Directive{}
				}
				p.directives[name][pos.Line] = d
			}
		}
	}
}

// directiveFor returns the directive of the given kind covering pos: a
// marker trailing the same line, or one on the line above.
func (p *Program) directiveFor(pos token.Pos, kind string) *Directive {
	position := p.Fset.Position(pos)
	lines, ok := p.directives[position.Filename]
	if !ok {
		return nil
	}
	if d := lines[position.Line]; d != nil && d.Kind == kind {
		return d
	}
	if d := lines[position.Line-1]; d != nil && d.Kind == kind {
		return d
	}
	return nil
}

// allowed reports whether a finding of the given kind at pos is excused
// by a directive. A marker with an empty justification does not excuse
// the finding — it produces a sharper one, so annotations can never rot
// into bare switches.
func (p *Program) allowed(pos token.Pos, kind string) (ok bool, missingReason *Directive) {
	d := p.directiveFor(pos, kind)
	if d == nil {
		return false, nil
	}
	if d.Reason == "" {
		return false, d
	}
	return true, nil
}
