package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ThreadsInt keeps the pre-exec.Ctx calling convention from creeping
// back into operator and kernel code. Three shapes are flagged inside
// internal/core and internal/kernels:
//
//  1. an int parameter named threads/nthreads/workers/... — the old
//     per-call plumbing the execution-context layer replaced;
//  2. a call to an exec context constructor (exec.Threads, exec.Pooled,
//     exec.Default, exec.NewPool) — operators receive a *exec.Ctx from
//     the caller, they never decide parallelism themselves (exec.Serial
//     is allowed: it is the explicit "no parallelism" value);
//  3. an exported function that drives exec.Ctx.ParallelFor without
//     taking a *exec.Ctx parameter — multi-core work with a smuggled
//     context.
var ThreadsInt = &Analyzer{
	Name: "threadsint",
	Doc:  "threads-int parameters or self-managed parallelism in internal/core and internal/kernels",
	Run:  runThreadsInt,
}

var threadsParamNames = map[string]bool{
	"threads": true, "nthreads": true, "numthreads": true,
	"workers": true, "nworkers": true, "numworkers": true,
	"parallelism": true, "ncpu": true, "numcpu": true,
}

// execCtxConstructors are the exec package functions that mint a
// context or pool; exec.Serial is deliberately absent.
var execCtxConstructors = map[string]bool{
	"Threads": true, "Pooled": true, "Default": true, "NewPool": true,
}

func runThreadsInt(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Pkgs {
		if !pathSuffix(pkg.Path, "internal/core") && !pathSuffix(pkg.Path, "internal/kernels") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				out = append(out, checkThreadsParams(p, pkg, fd)...)
				out = append(out, checkSelfManaged(p, pkg, fd)...)
			}
		}
	}
	return out
}

// checkThreadsParams flags integer parameters whose names announce
// thread counts.
func checkThreadsParams(p *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := pkg.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		basic, ok := t.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		for _, name := range field.Names {
			if threadsParamNames[strings.ToLower(name.Name)] {
				out = append(out, p.finding("threadsint", name.Pos(),
					"%s takes a thread-count parameter %q; operators receive a *exec.Ctx instead",
					fd.Name.Name, name.Name))
			}
		}
	}
	return out
}

// checkSelfManaged flags exec context construction inside the function
// and, for exported functions, ParallelFor use without a *exec.Ctx
// parameter.
func checkSelfManaged(p *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	if fd.Body == nil {
		return nil
	}
	var out []Finding
	usesParallelFor := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || !pathSuffix(fn.Pkg().Path(), "internal/exec") {
			return true
		}
		if execCtxConstructors[fn.Name()] {
			out = append(out, p.finding("threadsint", call.Pos(),
				"%s constructs its own exec context via exec.%s; parallelism is the caller's decision — accept a *exec.Ctx",
				fd.Name.Name, fn.Name()))
		}
		if fn.Name() == "ParallelFor" {
			usesParallelFor = true
		}
		return true
	})
	if usesParallelFor && fd.Name.IsExported() && !hasExecCtxParam(pkg.Info, fd) {
		out = append(out, p.finding("threadsint", fd.Name.Pos(),
			"exported %s runs exec.Ctx.ParallelFor but has no *exec.Ctx parameter", fd.Name.Name))
	}
	return out
}

// hasExecCtxParam reports whether any parameter (or the receiver) is a
// *exec.Ctx.
func hasExecCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	check := func(fields *ast.FieldList) bool {
		if fields == nil {
			return false
		}
		for _, field := range fields.List {
			t := info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			obj := named.Obj()
			if obj.Name() == "Ctx" && obj.Pkg() != nil && pathSuffix(obj.Pkg().Path(), "internal/exec") {
				return true
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}
