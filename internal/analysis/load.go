package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader builds a Program without golang.org/x/tools: it shells out
// to `go list -export -deps -json`, which compiles (or reuses from the
// build cache) export data for every dependency, then parses the module
// packages from source and type-checks them with a gc importer whose
// lookup resolves import paths to those export files. This is the same
// strategy go/packages uses in export mode, expressed with the standard
// library only.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Error      *struct{ Err string }
}

// Load builds a Program for the given package patterns (e.g. "./...")
// resolved in dir (the module root, or any directory inside it). Only
// non-test Go files are loaded: every rule the suite enforces exempts
// _test.go files.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exports, mods, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// Module packages are re-checked from source in dependency order
	// (`go list -deps` lists a package after its dependencies), and the
	// importer hands dependents OUR checked *types.Package rather than
	// the export-data copy. Without this, the same function would be two
	// distinct *types.Func objects on the two sides of an import, and
	// cross-package call-graph edges would silently resolve to nothing.
	imp := &moduleImporter{
		base:    exportImporter(fset, exports),
		checked: map[string]*types.Package{},
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	prog := &Program{Fset: fset, Dir: absDir, directives: map[string]map[int]*Directive{}}
	for _, lp := range mods {
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", lp.ImportPath, err)
		}
		imp.checked[lp.ImportPath] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.scanDirectives(pkg)
	}
	return prog, nil
}

// moduleImporter resolves module packages to their source-checked form
// (preserving object identity across packages) and everything else to
// export data.
type moduleImporter struct {
	base    types.Importer
	checked map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.checked[path]; p != nil {
		return p, nil
	}
	return m.base.Import(path)
}

// LoadFixture type-checks one directory of fixture files as a package
// with the given (fake) import path, resolving its imports against the
// real module's export data rooted at moduleDir. Tests use it to feed
// seeded violations through the analyzers under package paths like
// "fixture/internal/core" without the fixtures ever being part of the
// module build.
func LoadFixture(moduleDir, pkgPath, fixtureDir string) (*Program, error) {
	exports, _, err := goList(moduleDir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no fixture files in %s", fixtureDir)
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkg, err := checkPackage(fset, imp, pkgPath, fixtureDir, files)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %w", pkgPath, err)
	}
	prog := &Program{Fset: fset, Pkgs: []*Package{pkg}, directives: map[string]map[int]*Directive{}}
	// Fixtures never shell out to the compiler: codegen diagnostics are
	// synthesized from //codegen: markers in the fixture source.
	prog.diagSource = fixtureDiagSource
	prog.scanDirectives(pkg)
	return prog, nil
}

// goList runs `go list -export -deps -json` and splits the result into
// an importpath→exportfile map (all packages) and the non-standard
// module packages to analyze from source.
func goList(dir string, patterns []string) (map[string]string, []listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	var mods []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, nil, fmt.Errorf("analysis: go list output: %v", derr)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			mods = append(mods, p)
		}
	}
	return exports, mods, nil
}

// exportImporter returns a gc importer resolving import paths through
// the export files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}
