package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The call graph is a static, conservative approximation shared by
// hotalloc and panicpath:
//
//   - direct calls (package functions, methods on concrete types) become
//     edges to the callee's node;
//   - calls through an interface method become edges to every concrete
//     method in the module that implements that interface;
//   - a function literal gets its own node with an edge from the
//     function it appears in (wherever the literal ends up being
//     invoked, that is the path the panic or allocation travels);
//   - an edge created by passing a function to resilience.Safe is marked
//     guarded — panics below it are captured, not fatal;
//   - calls through plain function-typed values (fields, parameters) are
//     not resolved; rules relying on the graph treat the literal-edge
//     approximation above as their coverage of callbacks.

// funcNode is one function, method, or function literal.
type funcNode struct {
	pkg  *Package
	obj  *types.Func   // nil for literals
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declared functions
	body *ast.BlockStmt

	edges  []edge
	panics []token.Pos // lexical panic(...) statements (nested literals excluded)
}

// name returns the function's declared name ("" for literals).
func (n *funcNode) name() string {
	if n.obj != nil {
		return n.obj.Name()
	}
	return ""
}

// recvTypeName returns the receiver's named type ("" for functions and
// literals).
func (n *funcNode) recvTypeName() string {
	if n.obj == nil {
		return ""
	}
	sig, ok := n.obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

type edge struct {
	to      *funcNode
	pos     token.Pos
	guarded bool // the call happens under resilience.Safe
}

type callGraph struct {
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
	nodes []*funcNode

	// pendingIface holds interface-method calls seen during the walk,
	// expanded once every node exists.
	pendingIface []ifaceCall
	// safeLit marks literals already connected through a guarded
	// resilience.Safe edge so the generic literal walk does not add a
	// second, unguarded one.
	safeLit map[*ast.FuncLit]bool
}

// graph returns the module call graph, building it on first use.
func (p *Program) graph() *callGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

func buildCallGraph(p *Program) *callGraph {
	g := &callGraph{
		byObj:   map[*types.Func]*funcNode{},
		byLit:   map[*ast.FuncLit]*funcNode{},
		safeLit: map[*ast.FuncLit]bool{},
	}
	// Pass 1: a node per function declaration.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{pkg: pkg, obj: obj, decl: fd, body: fd.Body}
				g.byObj[obj] = n
				g.nodes = append(g.nodes, n)
			}
		}
	}
	// Pass 2: walk bodies, creating literal nodes and edges.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name].(*types.Func)
				g.walkBody(p, pkg, g.byObj[obj], fd.Body)
			}
		}
	}
	g.resolveInterfaceCalls(p)
	return g
}

// declNode returns the node for a function declaration (nil if the
// declaration has no body or no resolved object).
func (g *callGraph) declNode(pkg *Package, fd *ast.FuncDecl) *funcNode {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[obj]
}

// litNode returns (creating if needed) the node for a literal inside pkg.
func (g *callGraph) litNode(p *Program, pkg *Package, lit *ast.FuncLit) *funcNode {
	if n, ok := g.byLit[lit]; ok {
		return n
	}
	n := &funcNode{pkg: pkg, lit: lit, body: lit.Body}
	g.byLit[lit] = n
	g.nodes = append(g.nodes, n)
	g.walkBody(p, pkg, n, lit.Body)
	return n
}

// ifaceCall is an unresolved call through an interface method, recorded
// during the walk and expanded once all nodes exist.
type ifaceCall struct {
	from   *funcNode
	method *types.Func
	pos    token.Pos
}

// walkBody scans one function body (excluding nested literals, which get
// their own nodes) for calls and panic statements.
func (g *callGraph) walkBody(p *Program, pkg *Package, from *funcNode, body *ast.BlockStmt) {
	info := pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			// The literal's own statements belong to the literal node;
			// give the enclosing function an (unguarded) edge to it,
			// unless a Safe call below claims it first — guarded edges
			// are added where the literal is an argument to Safe, and
			// the duplicate unguarded edge is suppressed there.
			g.addLitEdge(p, pkg, from, node, false)
			return false
		case *ast.CallExpr:
			g.recordCall(p, pkg, from, node)
			// Continue into arguments, but literal arguments to Safe
			// were handled in recordCall; recordCall marks them so the
			// FuncLit case above can skip duplicates.
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	// Lexical panics.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "panic") {
			from.panics = append(from.panics, call.Pos())
		}
		return true
	})
}

// addLitEdge connects from -> lit (creating the literal node).
func (g *callGraph) addLitEdge(p *Program, pkg *Package, from *funcNode, lit *ast.FuncLit, guarded bool) {
	if !guarded && g.safeLit[lit] {
		return
	}
	n := g.litNode(p, pkg, lit)
	from.edges = append(from.edges, edge{to: n, pos: lit.Pos(), guarded: guarded})
}

// recordCall resolves one call expression into edges.
func (g *callGraph) recordCall(p *Program, pkg *Package, from *funcNode, call *ast.CallExpr) {
	info := pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	// resilience.Safe(f): the function value f runs under recover — mark
	// the edge guarded.
	if fn.Name() == "Safe" && fn.Pkg() != nil && pathSuffix(fn.Pkg().Path(), "internal/resilience") {
		if len(call.Args) == 1 {
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.FuncLit:
				g.safeLit[arg] = true
				g.addLitEdge(p, pkg, from, arg, true)
			case *ast.Ident:
				if target, ok := info.Uses[arg].(*types.Func); ok {
					if n := g.byObj[target]; n != nil {
						from.edges = append(from.edges, edge{to: n, pos: call.Pos(), guarded: true})
					}
				}
			}
		}
		return
	}
	// Interface method call? Resolve after all nodes exist.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			g.pendingIface = append(g.pendingIface, ifaceCall{from: from, method: fn, pos: call.Pos()})
			return
		}
	}
	if n := g.byObj[fn]; n != nil {
		from.edges = append(from.edges, edge{to: n, pos: call.Pos()})
	}
}

// resolveInterfaceCalls expands recorded interface calls to every
// concrete module method implementing the interface.
func (g *callGraph) resolveInterfaceCalls(p *Program) {
	calls := g.pendingIface
	g.pendingIface = nil
	for _, ic := range calls {
		iface, ok := ic.method.Type().(*types.Signature)
		if !ok {
			continue
		}
		recv := iface.Recv().Type()
		it, ok := recv.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for obj, n := range g.byObj {
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if obj.Name() != ic.method.Name() {
				continue
			}
			rt := sig.Recv().Type()
			if types.Implements(rt, it) || types.Implements(types.NewPointer(rt), it) {
				ic.from.edges = append(ic.from.edges, edge{to: n, pos: ic.pos})
			}
		}
	}
}

// reachOpts tunes a reachability sweep.
type reachOpts struct {
	// skipEdge, when non-nil and true for an edge, prunes traversal
	// across it (panicpath prunes guarded and annotated call sites).
	skipEdge func(edge) bool
	// boundary, when non-nil and true for a node, keeps the sweep from
	// descending into that node's callees (the node itself is visited).
	boundary func(*funcNode) bool
}

// reach returns every node reachable from roots under opts.
func (g *callGraph) reach(roots []*funcNode, opts reachOpts) map[*funcNode]bool {
	seen := map[*funcNode]bool{}
	var visit func(n *funcNode)
	visit = func(n *funcNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if opts.boundary != nil && opts.boundary(n) {
			return
		}
		for _, e := range n.edges {
			if opts.skipEdge != nil && opts.skipEdge(e) {
				continue
			}
			visit(e.to)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}
