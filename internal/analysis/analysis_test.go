package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture tests feed seeded violations through the real loader and
// analyzers. Each testdata/<name> directory is type-checked as a package
// with a fake import path whose suffix places it in the package role the
// analyzer governs ("fixture/internal/core", "fixture/internal/serve",
// ...). Expected findings are marked in the fixture source with
// "// want:<analyzer>" trailing comments; the harness requires the set of
// (file, line, analyzer) findings to match the markers exactly, so both
// false negatives (a seeded violation not flagged) and false positives (a
// fixed/annotated form flagged anyway) fail the test.

const moduleRoot = "../.."

var wantRe = regexp.MustCompile(`// want:([a-z,]+)`)

// wantMarkers scans the fixture directory for want comments and returns
// the expected findings as "file:line:analyzer" keys with counts.
func wantMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	want := map[string]int{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("opening fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, analyzer := range strings.Split(m[1], ",") {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), line, analyzer)]++
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture: %v", err)
		}
		f.Close()
	}
	return want
}

// checkFixture loads dir under pkgPath, runs the full suite, and
// compares findings against the want markers.
func checkFixture(t *testing.T, pkgPath, dir string) []Finding {
	t.Helper()
	prog, err := LoadFixture(moduleRoot, pkgPath, dir)
	if err != nil {
		t.Fatalf("LoadFixture(%s): %v", dir, err)
	}
	findings := Run(prog, All())

	got := map[string]int{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.File), f.Line, f.Analyzer)]++
	}
	want := wantMarkers(t, dir)

	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if got[k] != want[k] {
			t.Errorf("%s: got %d findings, fixture wants %d", k, got[k], want[k])
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
	}
	return findings
}

func TestRawGoFixture(t *testing.T) {
	checkFixture(t, "fixture/internal/core", "testdata/rawgo")
}

func TestThreadsIntFixture(t *testing.T) {
	checkFixture(t, "fixture/internal/core", "testdata/threadsint")
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, "fixture/internal/core", "testdata/hotalloc")
}

func TestFusionFixture(t *testing.T) {
	findings := checkFixture(t, "fixture/internal/core", "testdata/fusion")
	// The bare //bitflow:fusion-ok must surface as a bad annotation, not
	// a generic float-intermediate finding.
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "fusion-ok needs a justification") {
			found = true
		}
	}
	if !found {
		t.Error("bare //bitflow:fusion-ok was not reported as an unjustified annotation")
	}
}

func TestPanicPathFixture(t *testing.T) {
	findings := checkFixture(t, "fixture/internal/serve", "testdata/panicpath")
	// The bare //bitflow:panic-ok must be reported as a bad annotation,
	// not as a generic unguarded panic.
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "needs a justification") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a needs-a-justification finding for the bare //bitflow:panic-ok")
	}
}

func TestKernelsPanicFixture(t *testing.T) {
	checkFixture(t, "fixture/internal/kernels", "testdata/kernelspanic")
}

func TestActuateFixture(t *testing.T) {
	findings := checkFixture(t, "fixture/internal/serve", "testdata/actuate")
	// The bare //bitflow:actuate-ok must surface as a bad annotation, not
	// as a generic field-write finding.
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "needs a justification") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a needs-a-justification finding for the bare //bitflow:actuate-ok")
	}
}

func TestActuateControlImportFixture(t *testing.T) {
	checkFixture(t, "fixture/internal/control", "testdata/actuatecontrol")
}

// TestModuleIsClean runs the full suite over the real module: the tree
// must stay at zero findings (every exception annotated with a reason).
// This is the same gate verify.sh enforces through cmd/bitflow-vet.
func TestModuleIsClean(t *testing.T) {
	prog, err := Load(moduleRoot)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings := Run(prog, All())
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
	if n := prog.NumFiles(); n == 0 {
		t.Fatalf("loaded 0 files")
	}
}

func TestPathSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"bitflow/internal/core", "internal/core", true},
		{"fixture/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"bitflow/internal/coreutils", "internal/core", false},
		{"bitflow/xinternal/core", "internal/core", false},
	}
	for _, c := range cases {
		if got := pathSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("pathSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}
