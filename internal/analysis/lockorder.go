package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder keeps the whole-program mutex-acquisition graph acyclic.
// The serving stack holds several locks with real nesting — the registry
// reload lock serializes against per-model state, the batcher retune
// path nests its geometry lock, the control loop's ledger lock is taken
// under actuation — and the only thing standing between that nesting and
// a deadlock is a consistent global acquisition order. This analyzer
// discovers the order instead of trusting it:
//
//   - every sync.Mutex / sync.RWMutex field or package-level variable is
//     a lock class (all instances of registry.Model.mu are one class —
//     if two instances of the same class are ever nested, that is
//     itself reported, since self-edges are cycles);
//   - walking each function body in source order with a held-lock set
//     (defer mu.Unlock() keeps the lock held to the end of the body),
//     every acquisition under a held lock adds an edge held → acquired,
//     and so does every lock transitively acquired by a call made while
//     a lock is held;
//   - the resulting class graph must be acyclic. Each edge inside a
//     cycle is one finding, and every finding carries the full cycle and
//     the canonical order of the acyclic remainder, so the fix — reorder
//     or annotate — is legible from the report alone.
//
// //bitflow:lock-ok <reason> on an acquisition site drops the edges that
// site generates (for acquisitions proven safe by construction, e.g.
// ordered by address or guarded by a trylock protocol).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "whole-program mutex acquisition graph must be acyclic (consistent global lock order)",
	Run:  runLockOrder,
}

func runLockOrder(p *Program) []Finding {
	findings, _ := p.lockOrder()
	return findings
}

// DiscoveredLockOrder returns the canonical acquisition order of every
// lock class that participates in at least one nesting edge, plus the
// isolated classes (never nested, safe in any order). cmd/bitflow-vet
// -lock-order prints it; cycle findings embed it.
func DiscoveredLockOrder(p *Program) (ordered []string, isolated []string) {
	_, lg := p.lockOrder()
	return lg.order, lg.isolated
}

// lockClass is one mutex field or variable.
type lockClass struct {
	v    *types.Var
	name string // e.g. "registry.Registry.reloadMu" or "exec.poolMu"
}

// lockEdge is one discovered held → acquired nesting.
type lockEdge struct {
	from, to *lockClass
	pos      token.Pos // the inner acquisition (or call) site
}

// lockGraph is the analysis result shared by the analyzer and the
// -lock-order report.
type lockGraph struct {
	classes  []*lockClass
	edges    []lockEdge
	order    []string // topological order of classes with edges (cycles broken deterministically)
	isolated []string // classes never nested with another
}

func (p *Program) lockOrder() ([]Finding, *lockGraph) {
	lg := &lockGraph{}
	classes := map[*types.Var]*lockClass{}
	classFor := func(pkg *Package, e ast.Expr) *lockClass {
		v, owner := mutexVar(pkg.Info, e)
		if v == nil {
			return nil
		}
		if c, ok := classes[v]; ok {
			return c
		}
		name := v.Name()
		if owner != "" {
			name = owner + "." + name
		}
		if v.Pkg() != nil {
			name = v.Pkg().Name() + "." + name
		}
		c := &lockClass{v: v, name: name}
		classes[v] = c
		lg.classes = append(lg.classes, c)
		return c
	}

	g := p.graph()

	// Pass 1: per-node lexical acquisitions (for the transitive sets).
	type acq struct {
		class   *lockClass
		excused bool
	}
	nodeAcq := map[*funcNode][]acq{}
	for _, n := range g.nodes {
		p.walkLockOps(n, func(op lockOp) {
			if op.kind != opLock {
				return
			}
			c := classFor(n.pkg, op.recv)
			if c == nil {
				return
			}
			ok, _ := p.allowed(op.pos, "lock-ok")
			nodeAcq[n] = append(nodeAcq[n], acq{class: c, excused: ok})
		})
	}

	// transitive acquisitions: locks a call into n may take, directly or
	// through callees. Memoized DFS, cycle-safe.
	transMemo := map[*funcNode]map[*lockClass]bool{}
	var trans func(n *funcNode, stack map[*funcNode]bool) map[*lockClass]bool
	trans = func(n *funcNode, stack map[*funcNode]bool) map[*lockClass]bool {
		if m, ok := transMemo[n]; ok {
			return m
		}
		if stack[n] {
			return nil // recursion; the fixpoint is reached by the first visit
		}
		stack[n] = true
		m := map[*lockClass]bool{}
		for _, a := range nodeAcq[n] {
			if !a.excused {
				m[a.class] = true
			}
		}
		for _, e := range n.edges {
			for c := range trans(e.to, stack) {
				m[c] = true
			}
		}
		delete(stack, n)
		transMemo[n] = m
		return m
	}

	// Pass 2: simulate each body in source order with a held set.
	var bare []Finding
	seenEdge := map[[2]*lockClass]bool{}
	addEdge := func(from, to *lockClass, pos token.Pos) {
		key := [2]*lockClass{from, to}
		if seenEdge[key] {
			return
		}
		seenEdge[key] = true
		lg.edges = append(lg.edges, lockEdge{from: from, to: to, pos: pos})
	}
	for _, n := range g.nodes {
		held := map[*lockClass]bool{}
		var heldOrder []*lockClass // deterministic iteration
		hold := func(c *lockClass) {
			if !held[c] {
				held[c] = true
				heldOrder = append(heldOrder, c)
			}
		}
		release := func(c *lockClass) {
			if held[c] {
				delete(held, c)
				for i, h := range heldOrder {
					if h == c {
						heldOrder = append(heldOrder[:i], heldOrder[i+1:]...)
						break
					}
				}
			}
		}
		p.walkLockOps(n, func(op lockOp) {
			switch op.kind {
			case opLock:
				c := classFor(n.pkg, op.recv)
				if c == nil {
					return
				}
				ok, missing := p.allowed(op.pos, "lock-ok")
				if missing != nil {
					bare = append(bare, p.finding("lockorder", op.pos,
						"/bitflow:lock-ok needs a justification string"))
				}
				if !ok {
					for _, h := range heldOrder {
						addEdge(h, c, op.pos)
					}
				}
				hold(c)
			case opUnlock:
				if c := classFor(n.pkg, op.recv); c != nil && !op.deferred {
					release(c)
				}
				// deferred unlocks keep the lock held to the end of the
				// body — exactly how the simulation already behaves.
			case opCall:
				if len(heldOrder) == 0 {
					return
				}
				callee := op.callee
				if callee == nil {
					return
				}
				if ok, _ := p.allowed(op.pos, "lock-ok"); ok {
					return
				}
				for c := range trans(callee, map[*funcNode]bool{}) {
					for _, h := range heldOrder {
						// h == c is a self-edge: the same class nested
						// through a call, reported like any other cycle.
						addEdge(h, c, op.pos)
					}
				}
			}
		})
	}

	findings := append([]Finding(nil), bare...)
	findings = append(findings, p.lockCycles(lg)...)
	sortFindings(findings)
	return findings, lg
}

// lockCycles detects cycles in the class graph, fills in lg.order /
// lg.isolated, and renders one finding per edge inside a cycle.
func (p *Program) lockCycles(lg *lockGraph) []Finding {
	adj := map[*lockClass][]lockEdge{}
	inEdge := map[*lockClass]bool{}
	for _, e := range lg.edges {
		adj[e.from] = append(adj[e.from], e)
		inEdge[e.from] = true
		inEdge[e.to] = true
	}

	// Tarjan SCC over the class graph.
	index := map[*lockClass]int{}
	low := map[*lockClass]int{}
	onStack := map[*lockClass]bool{}
	var stack []*lockClass
	var sccs [][]*lockClass
	next := 0
	var strong func(c *lockClass)
	strong = func(c *lockClass) {
		index[c] = next
		low[c] = next
		next++
		stack = append(stack, c)
		onStack[c] = true
		for _, e := range adj[c] {
			w := e.to
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[c] {
					low[c] = low[w]
				}
			} else if onStack[w] && index[w] < low[c] {
				low[c] = index[w]
			}
		}
		if low[c] == index[c] {
			var scc []*lockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == c {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	sorted := append([]*lockClass(nil), lg.classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for _, c := range sorted {
		if _, seen := index[c]; !seen {
			strong(c)
		}
	}

	cyclic := map[*lockClass]bool{}
	for _, scc := range sccs {
		if len(scc) > 1 {
			for _, c := range scc {
				cyclic[c] = true
			}
		}
	}

	// Canonical order: Kahn over the non-cyclic portion, name-sorted
	// ready set, cyclic classes appended name-sorted at the end.
	lg.order, lg.isolated = topoOrder(lg, cyclic, inEdge)

	var out []Finding
	emit := func(e lockEdge, cycle string) {
		out = append(out, p.finding("lockorder", e.pos,
			"lock-order cycle: %s; acquisition order must be globally consistent (canonical order: %s); reorder the acquisitions or annotate //bitflow:lock-ok <reason>",
			cycle, strings.Join(lg.order, " -> ")))
	}
	for _, e := range lg.edges {
		switch {
		case e.from == e.to:
			emit(e, e.from.name+" -> "+e.to.name+" (same class nested)")
		case cyclic[e.from] && cyclic[e.to] && sameSCC(sccs, e.from, e.to):
			emit(e, cycleString(sccs, e))
		}
	}
	return out
}

// sameSCC reports whether both classes share a strongly connected
// component of size > 1.
func sameSCC(sccs [][]*lockClass, a, b *lockClass) bool {
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		hasA, hasB := false, false
		for _, c := range scc {
			if c == a {
				hasA = true
			}
			if c == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// cycleString renders the SCC the edge belongs to as "A -> B -> A".
func cycleString(sccs [][]*lockClass, e lockEdge) string {
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		in := false
		for _, c := range scc {
			if c == e.from {
				in = true
				break
			}
		}
		if !in {
			continue
		}
		names := make([]string, 0, len(scc))
		for _, c := range scc {
			names = append(names, c.name)
		}
		sort.Strings(names)
		return strings.Join(names, " -> ") + " -> " + names[0]
	}
	return e.from.name + " -> " + e.to.name
}

// topoOrder produces the canonical acquisition order (classes that
// participate in edges, topologically sorted with a name-sorted ready
// set) and the isolated classes.
func topoOrder(lg *lockGraph, cyclic, inEdge map[*lockClass]bool) (order, isolated []string) {
	indeg := map[*lockClass]int{}
	succ := map[*lockClass][]*lockClass{}
	for _, e := range lg.edges {
		if e.from == e.to || cyclic[e.from] || cyclic[e.to] {
			continue
		}
		succ[e.from] = append(succ[e.from], e.to)
		indeg[e.to]++
	}
	var ready []*lockClass
	for _, c := range lg.classes {
		if !inEdge[c] {
			isolated = append(isolated, c.name)
			continue
		}
		if cyclic[c] {
			continue
		}
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	sort.Strings(isolated)
	byName := func(cs []*lockClass) {
		sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	}
	byName(ready)
	for len(ready) > 0 {
		c := ready[0]
		ready = ready[1:]
		order = append(order, c.name)
		var newly []*lockClass
		for _, s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		byName(newly)
		ready = append(ready, newly...)
		byName(ready)
	}
	var cyc []string
	for c := range cyclic {
		cyc = append(cyc, c.name)
	}
	sort.Strings(cyc)
	order = append(order, cyc...)
	return order, isolated
}

// lockOpKind classifies one event of the body walk.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opCall
)

// lockOp is one event: a Lock/RLock, an Unlock/RUnlock, or a call to a
// module function (whose transitive acquisitions nest under held locks).
type lockOp struct {
	kind     lockOpKind
	recv     ast.Expr  // the mutex expression, for opLock/opUnlock
	callee   *funcNode // for opCall
	pos      token.Pos
	deferred bool
}

// walkLockOps walks one node's body in source order, reporting lock
// operations and module calls. Nested literals are their own nodes and
// are handled by the call-graph edge to them (an opCall).
func (p *Program) walkLockOps(n *funcNode, visit func(lockOp)) {
	g := p.graph()
	info := n.pkg.Info
	var walk func(node ast.Node, deferred bool) bool
	walk = func(node ast.Node, deferred bool) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if ln := g.byLit[x]; ln != nil {
				visit(lockOp{kind: opCall, callee: ln, pos: x.Pos(), deferred: deferred})
			}
			return false
		case *ast.DeferStmt:
			ast.Inspect(x.Call, func(inner ast.Node) bool {
				return walk(inner, true)
			})
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if v, _ := mutexVar(info, sel.X); v != nil {
						visit(lockOp{kind: opLock, recv: sel.X, pos: x.Pos(), deferred: deferred})
						return true
					}
				case "Unlock", "RUnlock":
					if v, _ := mutexVar(info, sel.X); v != nil {
						visit(lockOp{kind: opUnlock, recv: sel.X, pos: x.Pos(), deferred: deferred})
						return true
					}
				}
			}
			if fn := calleeFunc(info, x); fn != nil {
				if callee := g.byObj[fn]; callee != nil {
					visit(lockOp{kind: opCall, callee: callee, pos: x.Pos(), deferred: deferred})
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(n.body, func(node ast.Node) bool {
		return walk(node, false)
	})
}

// mutexVar resolves an expression to the sync.Mutex/RWMutex variable it
// denotes (a field or a package-level/local var), plus the owning named
// type's name for fields ("" otherwise).
func mutexVar(info *types.Info, e ast.Expr) (*types.Var, string) {
	e = ast.Unparen(e)
	var v *types.Var
	owner := ""
	switch x := e.(type) {
	case *ast.Ident:
		v, _ = info.Uses[x].(*types.Var)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			v, _ = sel.Obj().(*types.Var)
			t := sel.Recv()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				owner = named.Obj().Name()
			}
		} else {
			v, _ = info.Uses[x.Sel].(*types.Var)
		}
	default:
		return nil, ""
	}
	if v == nil || !isMutexType(v.Type()) {
		return nil, ""
	}
	return v, owner
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (directly,
// or a pointer to one).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
