// Package analysis is bitflow-vet: a repo-native static-analysis suite
// that turns the engine's written invariants into machine-checked ones.
//
// PRs 1–3 made correctness depend on three conventions the compiler
// cannot see:
//
//   - all multi-core dispatch flows through internal/exec (no raw
//     goroutines in operator code) — rawgo, threadsint;
//   - per-inference hot paths stay allocation-free (packed buffers are
//     pre-allocated at load/Ensure* time, the whole point of the
//     PressedConv/bgemm design) — hotalloc;
//   - every panic on a serving path is dominated by resilience.Safe so a
//     replica re-clones instead of the process dying — panicpath;
//   - the adaptive control loop stays mechanism-free and actuates only
//     through the exported resize/retune APIs — actuate;
//   - the hot path is compiler-verified: no heap escapes in the hot
//     graph and no surviving bounds checks in kernels, straight from
//     `-gcflags='-m=2 -d=ssa/check_bce'` diagnostics — codegen;
//   - a field touched through sync/atomic anywhere is touched atomically
//     everywhere, and atomic-bearing values are never copied — atomics;
//   - the whole-program mutex-acquisition graph (reload lock, gates,
//     batcher, control ledger) stays acyclic — lockorder.
//
// Each analyzer walks the fully type-checked module (stdlib go/ast +
// go/types; packages are loaded via `go list -export`, so no external
// dependencies) and reports findings that cmd/bitflow-vet turns into a
// non-zero exit for verify.sh / CI.
//
// Intentional exceptions are annotated in the source, never configured
// out of the analyzer:
//
//	//bitflow:alloc-ok <justification>   (hotalloc, fusion, codegen escapes)
//	//bitflow:go-ok <justification>      (rawgo)
//	//bitflow:panic-ok <justification>   (panicpath)
//	//bitflow:actuate-ok <justification> (actuate)
//	//bitflow:fusion-ok <justification>  (fusion)
//	//bitflow:bce-ok <justification>     (codegen bounds checks; on a line or a whole function)
//	//bitflow:atomic-ok <justification>  (atomics)
//	//bitflow:lock-ok <justification>    (lockorder)
//	//bitflow:hot                        (extra hotalloc/fusion/codegen root)
//
// A marker with an empty justification is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation, addressable for both humans
// (file:line:col) and machines (-json).
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the whole-module view the analyzers run over: every
// non-test package, parsed and type-checked against real export data, so
// cross-package analyses (call graphs) see the same types the compiler
// does.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// Dir is the absolute directory Load resolved patterns in — the
	// working directory codegen's `go build` driver compiles from.
	Dir string

	// directives maps file name -> line -> parsed //bitflow: directive.
	directives map[string]map[int]*Directive

	// cg is the lazily built whole-program call graph shared by hotalloc
	// and panicpath.
	cg *callGraph

	// diagSource produces the compiler diagnostics codegen consumes.
	// Load leaves it nil (the go-build driver); LoadFixture installs the
	// //codegen: marker synthesizer. The result is cached after one run.
	diagSource func(*Program) ([]CompilerDiag, error)
	diags      []CompilerDiag
	diagsErr   error
	diagsDone  bool
}

// Analyzer is one named rule over a Program. Unlike go/analysis this is
// whole-program by design: two of the four rules need a cross-package
// call graph, which per-package passes cannot express.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{RawGo, ThreadsInt, HotAlloc, PanicPath, Actuate, Fusion, Codegen, Atomics, LockOrder}
}

// Run executes the given analyzers and returns their findings sorted by
// position then analyzer name.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		out = append(out, a.Run(prog)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// NumFiles reports how many source files the program holds — the
// denominator of the verify.sh summary line.
func (p *Program) NumFiles() int {
	n := 0
	for _, pkg := range p.Pkgs {
		n += len(pkg.Files)
	}
	return n
}

// finding builds a Finding at pos.
func (p *Program) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// pathSuffix reports whether the package import path is exactly suffix
// or ends in "/"+suffix — how analyzers recognize the repo's package
// roles without hard-coding the module name (fixtures use fake module
// paths).
func pathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isBuiltin reports whether the call expression invokes the named
// builtin (make, append, panic, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function, method, or qualified import), or nil for builtins,
// conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
