package analysis

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// FuzzCompilerDiagParser hardens the compiler-output parser against
// arbitrary build output. Three properties are enforced on every parsed
// diagnostic, for any input:
//
//   - positions are positive and files are absolute, cleaned paths;
//   - the diagnostic is attributable: some input line decomposes as
//     file:line:col: message with exactly the recorded position, file,
//     and kind/subject (re-derived right-to-left, independently of the
//     parser's left-to-right regex) — a diagnostic can never point at a
//     file or line the input did not name;
//   - the parser never panics (implicit).
func FuzzCompilerDiagParser(f *testing.F) {
	seeds := []string{
		"internal/kernels/xorpop.go:21:7: Found IsSliceInBounds",
		"/abs/epilogue.go:118:14: Found IsInBounds",
		"internal/core/multibase.go:92:6: moved to heap: inRows",
		"cmd/bitflow-serve/main.go:40:13: &Server{...} escapes to heap",
		"a.go:5:3: x escapes to heap:",
		"# bitflow/internal/kernels",
		"a.go:5:3: inlining call to DotRef",
		"a.go:0:3: Found IsInBounds",
		"a.go:5:-3: Found IsInBounds",
		":5:3: Found IsInBounds",
		"x:15:3: y:5:3: Found IsInBounds",
		"a.go:1:2: b:3:4: x escapes to heap",
		"a.go:05:3: Found IsInBounds",
		"a.go:99999999999999999999:3: Found IsInBounds",
		"dup.go:1:1: Found IsInBounds\ndup.go:1:1: Found IsInBounds",
		"rel/../kernels/dot.go:9:2: moved to heap: acc",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		const base = "/fuzz/base"
		diags := ParseCompilerDiags([]byte(input), base)
		lines := strings.Split(input, "\n")
		for _, d := range diags {
			if d.Line <= 0 || d.Col <= 0 {
				t.Fatalf("non-positive position %d:%d parsed from %q", d.Line, d.Col, input)
			}
			if !filepath.IsAbs(d.File) || d.File != filepath.Clean(d.File) {
				t.Fatalf("file %q is not an absolute cleaned path (input %q)", d.File, input)
			}
			if !attributable(d, lines, base) {
				t.Fatalf("diag %+v is not attributable to any line of %q", d, input)
			}
		}
	})
}

// attributable reports whether some input line reconstructs exactly to
// the parsed diagnostic: trailing message for the diag's kind/subject,
// then ":<digits>" column, then ":<digits>" line, then a non-empty file
// that resolves (against base) to the recorded absolute path.
func attributable(d CompilerDiag, lines []string, base string) bool {
	var msgs []string
	switch d.Kind {
	case DiagBounds:
		msgs = []string{"Found IsInBounds"}
	case DiagSliceBounds:
		msgs = []string{"Found IsSliceInBounds"}
	case DiagMoved:
		msgs = []string{"moved to heap: " + d.Subject}
	case DiagEscape:
		msgs = []string{d.Subject + " escapes to heap", d.Subject + " escapes to heap:"}
	default:
		return false
	}
	for _, l := range lines {
		for _, msg := range msgs {
			head, ok := strings.CutSuffix(l, ": "+msg)
			if !ok {
				continue
			}
			head, col, ok := cutTrailingInt(head)
			if !ok || col != d.Col {
				continue
			}
			file, ln, ok := cutTrailingInt(head)
			if !ok || ln != d.Line || file == "" {
				continue
			}
			if !filepath.IsAbs(file) {
				file = filepath.Join(base, file)
			}
			if filepath.Clean(file) == d.File {
				return true
			}
		}
	}
	return false
}

// cutTrailingInt splits a ":<digits>" suffix off s, returning the
// remaining prefix and the parsed value.
func cutTrailingInt(s string) (string, int, bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) || i == 0 || s[i-1] != ':' {
		return "", 0, false
	}
	n, err := strconv.Atoi(s[i:])
	if err != nil {
		return "", 0, false
	}
	return s[:i-1], n, true
}
