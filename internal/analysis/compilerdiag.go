package analysis

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file is the bridge between bitflow-vet and the Go compiler's own
// diagnostics. The codegen analyzer does not guess what the optimizer
// did — it asks: `go build -gcflags='-m=2 -d=ssa/check_bce'` makes the
// compiler print, per position, every value that escapes to the heap and
// every bounds check the BCE prover could not eliminate. We parse that
// stream into CompilerDiag values and map them back onto the type-checked
// AST the analyzers already hold.
//
// Two facts make this reliable enough to gate CI on:
//
//   - the build cache REPLAYS compiler output on cache hits, so a warm
//     `go build` still prints the full diagnostic stream (no -a needed);
//   - diagnostics carry file:line:col positions into the pre-inlining
//     source, so they land inside the function that wrote the code even
//     when the escape itself was introduced by inlining a callee.

// DiagKind classifies one compiler diagnostic.
type DiagKind int

const (
	// DiagEscape is "<expr> escapes to heap" — a value the compiler
	// proved must be heap-allocated.
	DiagEscape DiagKind = iota
	// DiagMoved is "moved to heap: <name>" — a declared local the
	// compiler relocated to the heap (an allocation per execution of the
	// declaration).
	DiagMoved
	// DiagBounds is "Found IsInBounds" — an index expression whose
	// bounds check the BCE prover could not eliminate.
	DiagBounds
	// DiagSliceBounds is "Found IsSliceInBounds" — a slice expression
	// with a surviving bounds check.
	DiagSliceBounds
)

func (k DiagKind) String() string {
	switch k {
	case DiagEscape:
		return "escapes to heap"
	case DiagMoved:
		return "moved to heap"
	case DiagBounds:
		return "IsInBounds"
	case DiagSliceBounds:
		return "IsSliceInBounds"
	}
	return "unknown"
}

// CompilerDiag is one parsed diagnostic, positioned in a source file.
type CompilerDiag struct {
	File    string // absolute, cleaned path
	Line    int
	Col     int
	Kind    DiagKind
	Subject string // escaping expression / moved variable name; "" for bounds checks
}

// diagLine matches `file:line:col: message`. The file part is non-greedy
// so a message that itself contains ":<digits>:<digits>:" cannot steal
// position digits from the real location — the first well-formed
// position wins, which is always the one the compiler printed.
var diagLine = regexp.MustCompile(`^(.+?):([0-9]+):([0-9]+): (.*)$`)

// ParseCompilerDiags extracts escape-analysis and check_bce diagnostics
// from raw `go build` output. Lines that are not diagnostics (package
// headers, flow: traces, inline decisions, build noise) are ignored;
// relative paths are resolved against baseDir. The parser must tolerate
// arbitrary input without panicking — it is fuzzed.
func ParseCompilerDiags(output []byte, baseDir string) []CompilerDiag {
	var out []CompilerDiag
	seen := map[CompilerDiag]bool{}
	for _, raw := range bytes.Split(output, []byte("\n")) {
		d, ok := parseDiagLine(string(raw), baseDir)
		if !ok || seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// parseDiagLine parses a single output line into a CompilerDiag.
func parseDiagLine(line, baseDir string) (CompilerDiag, bool) {
	m := diagLine.FindStringSubmatch(line)
	if m == nil {
		return CompilerDiag{}, false
	}
	file, lineStr, colStr, msg := m[1], m[2], m[3], m[4]
	var d CompilerDiag
	switch {
	case msg == "Found IsInBounds":
		d.Kind = DiagBounds
	case msg == "Found IsSliceInBounds":
		d.Kind = DiagSliceBounds
	case strings.HasPrefix(msg, "moved to heap: "):
		d.Kind = DiagMoved
		d.Subject = strings.TrimPrefix(msg, "moved to heap: ")
	case strings.HasSuffix(msg, " escapes to heap"):
		d.Kind = DiagEscape
		d.Subject = strings.TrimSuffix(msg, " escapes to heap")
	case strings.HasSuffix(msg, " escapes to heap:"):
		// -m=2 variant that introduces an indented flow: trace.
		d.Kind = DiagEscape
		d.Subject = strings.TrimSuffix(msg, " escapes to heap:")
	default:
		return CompilerDiag{}, false
	}
	ln, err := strconv.Atoi(lineStr)
	if err != nil || ln <= 0 {
		return CompilerDiag{}, false
	}
	col, err := strconv.Atoi(colStr)
	if err != nil || col <= 0 {
		return CompilerDiag{}, false
	}
	d.Line, d.Col = ln, col
	if !filepath.IsAbs(file) {
		file = filepath.Join(baseDir, file)
	}
	d.File = filepath.Clean(file)
	return d, true
}

// codegenGcflags is the exact flag set the codegen gate compiles under.
const codegenGcflags = "-m=2 -d=ssa/check_bce"

// goBuildDiagSource compiles the program's internal/kernels and
// internal/core packages with diagnostics on and parses the result. It
// is the default diagnostics source installed by Load; LoadFixture
// replaces it with a marker-driven synthesizer so fixture tests never
// shell out.
func goBuildDiagSource(p *Program) ([]CompilerDiag, error) {
	var paths []string
	for _, pkg := range p.Pkgs {
		if pathSuffix(pkg.Path, "internal/kernels") || pathSuffix(pkg.Path, "internal/core") {
			paths = append(paths, pkg.Path)
		}
	}
	if len(paths) == 0 {
		return nil, nil
	}
	args := append([]string{"build", "-gcflags=" + codegenGcflags}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = p.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=%q: %v\n%s", codegenGcflags, err, out)
	}
	return ParseCompilerDiags(out, p.Dir), nil
}

// compilerDiags returns the program's compiler diagnostics, running the
// configured source once and caching the result.
func (p *Program) compilerDiags() ([]CompilerDiag, error) {
	if !p.diagsDone {
		p.diagsDone = true
		src := p.diagSource
		if src == nil {
			src = goBuildDiagSource
		}
		p.diags, p.diagsErr = src(p)
	}
	return p.diags, p.diagsErr
}

// fixtureDiagSource synthesizes diagnostics from //codegen: markers in
// fixture files, so fixture tests exercise the mapping, carve-outs, and
// escape hatches of the codegen analyzer without invoking the compiler:
//
//	//codegen:escape <subject>
//	//codegen:moved <name>
//	//codegen:bounds
//	//codegen:bounds-slice
//
// The synthesized diagnostic lands on the marker's line, mimicking a
// real compiler position inside the construct the marker trails.
func fixtureDiagSource(p *Program) ([]CompilerDiag, error) {
	var out []CompilerDiag
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			tokFile := p.Fset.File(f.Pos())
			if tokFile == nil {
				continue
			}
			abs, err := filepath.Abs(tokFile.Name())
			if err != nil {
				abs = tokFile.Name()
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//codegen:")
					if !ok {
						continue
					}
					kind := rest
					subject := ""
					if i := strings.IndexAny(rest, " \t"); i >= 0 {
						kind, subject = rest[:i], strings.TrimSpace(rest[i+1:])
					}
					pos := p.Fset.Position(c.Pos())
					d := CompilerDiag{File: filepath.Clean(abs), Line: pos.Line, Col: pos.Column, Subject: subject}
					switch kind {
					case "escape":
						d.Kind = DiagEscape
					case "moved":
						d.Kind = DiagMoved
					case "bounds":
						d.Kind = DiagBounds
					case "bounds-slice":
						d.Kind = DiagSliceBounds
					default:
						return nil, fmt.Errorf("analysis: unknown //codegen: marker %q at %s:%d", kind, abs, pos.Line)
					}
					out = append(out, d)
				}
			}
		}
	}
	return out, nil
}
