package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawGo forbids raw goroutine fan-out outside the packages that own
// concurrency. All multi-core dispatch belongs to internal/exec (the
// persistent pool and claim-loop chunking); serve and batch own their
// request/worker lifecycles. Everywhere else a `go` statement or a
// sync.WaitGroup bypasses the execution-context layer — the exact
// pattern the threads-int migration removed. `//bitflow:go-ok <reason>`
// excuses a deliberate exception (e.g. a closed-loop load generator
// whose clients must not be serialized by a claim loop).
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "raw go statements / sync.WaitGroup fan-out outside internal/exec, internal/batch, internal/serve",
	Run:  runRawGo,
}

// rawGoAllowed are the package roles (matched by import-path suffix)
// that legitimately own goroutines.
var rawGoAllowed = []string{"internal/exec", "internal/batch", "internal/serve"}

func runRawGo(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Pkgs {
		allowed := false
		for _, suffix := range rawGoAllowed {
			if pathSuffix(pkg.Path, suffix) {
				allowed = true
				break
			}
		}
		if allowed {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.GoStmt:
					out = append(out, p.excusable("rawgo", node.Pos(), "go-ok",
						"raw go statement outside internal/exec|batch|serve; route fan-out through *exec.Ctx")...)
				case *ast.Ident:
					if isWaitGroupRef(pkg.Info, node) {
						out = append(out, p.excusable("rawgo", node.Pos(), "go-ok",
							"sync.WaitGroup fan-out outside internal/exec|batch|serve; use exec.Ctx.ParallelFor")...)
					}
				}
				return true
			})
		}
	}
	return out
}

// isWaitGroupRef reports whether the identifier names the sync.WaitGroup
// type (as in `var wg sync.WaitGroup` or a struct field declaration).
func isWaitGroupRef(info *types.Info, id *ast.Ident) bool {
	if id.Name != "WaitGroup" {
		return false
	}
	obj, ok := info.Uses[id]
	if !ok {
		return false
	}
	tn, ok := obj.(*types.TypeName)
	return ok && tn.Pkg() != nil && tn.Pkg().Path() == "sync"
}

// excusable emits the finding unless pos carries a //bitflow:<kind>
// directive with a justification; a directive with an empty reason
// yields a finding about the annotation itself.
func (p *Program) excusable(analyzer string, pos token.Pos, kind, msg string) []Finding {
	ok, bare := p.allowed(pos, kind)
	if ok {
		return nil
	}
	if bare != nil {
		return []Finding{p.finding(analyzer, pos,
			"//bitflow:%s needs a justification string", kind)}
	}
	return []Finding{p.finding(analyzer, pos, "%s", msg)}
}
