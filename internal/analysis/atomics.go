package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Atomics enforces the serving stack's atomicity discipline:
//
//  1. Mixed access: a variable or field passed by address to a
//     sync/atomic function anywhere in the module (atomic.AddInt64(&x),
//     atomic.StorePointer(&p, ...)) must be accessed through sync/atomic
//     everywhere — one plain `x++` next to an atomic.AddInt64 is a data
//     race the type system cannot see. (The repo's own code uses the
//     typed atomic.Int64/Bool/Pointer wrappers, which make this rule
//     unviolatable; the rule exists to keep old-style usage from
//     sneaking back in.)
//  2. No copies: a value whose type contains a sync/atomic type
//     (atomic.Int64, atomic.Pointer[T], atomic.Value, ...) must never be
//     copied — not assigned, not passed by value, not ranged into, not
//     returned. A copied atomic is a silently forked counter or a torn
//     pointer cell.
//
// //bitflow:atomic-ok <reason> excuses a deliberate exception.
var Atomics = &Analyzer{
	Name: "atomics",
	Doc:  "sync/atomic fields accessed atomically everywhere; atomic-bearing values never copied",
	Run:  runAtomics,
}

func runAtomics(p *Program) []Finding {
	var out []Finding
	out = append(out, p.mixedAtomicAccess()...)
	out = append(out, p.atomicCopies()...)
	return out
}

// mixedAtomicAccess implements rule 1: collect every variable whose
// address feeds a sync/atomic call, then flag plain (non-atomic) uses of
// those variables.
func (p *Program) mixedAtomicAccess() []Finding {
	atomicVars := map[*types.Var]string{} // var -> first atomic call site (for the message)
	atomicUses := map[ast.Node]bool{}     // the &x operands inside atomic calls, exempt from pass 2

	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				// Typed-atomic methods (atomic.Int64.Add, ...) have a
				// receiver; only package-level functions take &x.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					target := ast.Unparen(un.X)
					v := referencedVar(pkg.Info, target)
					if v == nil {
						continue
					}
					atomicUses[target] = true
					if _, seen := atomicVars[v]; !seen {
						pos := p.Fset.Position(call.Pos())
						atomicVars[v] = shortPos(pos.Filename, pos.Line)
					}
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return nil
	}

	var out []Finding
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var v *types.Var
				switch x := n.(type) {
				case *ast.SelectorExpr:
					v = referencedVar(pkg.Info, x)
					if v == nil {
						return true
					}
				case *ast.Ident:
					obj, ok := pkg.Info.Uses[x].(*types.Var)
					if !ok || obj.IsField() {
						return true // fields are matched via their SelectorExpr
					}
					v = obj
				default:
					return true
				}
				site, tracked := atomicVars[v]
				if !tracked || atomicUses[n] {
					return true
				}
				out = append(out, p.excusable("atomics", n.Pos(), "atomic-ok",
					v.Name()+" is accessed via sync/atomic (first at "+site+
						") but plainly here; every access must go through sync/atomic, or annotate //bitflow:atomic-ok <reason>")...)
				return false
			})
		}
	}
	return out
}

// referencedVar resolves an expression to the variable it denotes: a
// plain identifier or a field selection (s.f, s.a.f).
func referencedVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// atomicCopies implements rule 2: flag every site that copies a value of
// an atomic-bearing type.
func (p *Program) atomicCopies() []Finding {
	var out []Finding
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		flag := func(n ast.Node, t types.Type, how string) {
			out = append(out, p.excusable("atomics", n.Pos(), "atomic-ok",
				how+" copies "+types.TypeString(t, types.RelativeTo(pkg.Types))+
					", which contains a sync/atomic value; share it by pointer or annotate //bitflow:atomic-ok <reason>")...)
		}
		// copiesValue reports whether evaluating e produces a copy of an
		// existing atomic-bearing value (reading a variable, field,
		// element, or dereference — as opposed to constructing a fresh
		// one with a composite literal).
		copiesValue := func(e ast.Expr) (types.Type, bool) {
			e = ast.Unparen(e)
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.CallExpr:
			default:
				return nil, false
			}
			tv, ok := info.Types[e]
			if !ok || tv.Type == nil || tv.IsType() {
				return nil, false
			}
			if !containsAtomic(tv.Type, nil) {
				return nil, false
			}
			return tv.Type, true
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range x.Rhs {
						if i < len(x.Lhs) {
							if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
								continue
							}
						}
						if t, bad := copiesValue(rhs); bad {
							flag(rhs, t, "assignment")
						}
					}
				case *ast.RangeStmt:
					if x.Value != nil {
						// A `:=` range defines the value ident, so its type
						// lives in Defs; only an `=` range records it in Types.
						var t types.Type
						if id, ok := ast.Unparen(x.Value).(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								t = obj.Type()
							}
						}
						if t == nil {
							if tv, ok := info.Types[x.Value]; ok {
								t = tv.Type
							}
						}
						if t != nil && containsAtomic(t, nil) {
							flag(x.Value, t, "range")
						}
					}
				case *ast.CallExpr:
					if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
						return true // conversion; any copy it feeds is flagged at the enclosing statement
					}
					if isBuiltin(info, x, "panic") {
						return false
					}
					for _, arg := range x.Args {
						if t, bad := copiesValue(arg); bad {
							flag(arg, t, "by-value argument")
						}
					}
				case *ast.ReturnStmt:
					for _, res := range x.Results {
						if t, bad := copiesValue(res); bad {
							flag(res, t, "return")
						}
					}
				case *ast.KeyValueExpr:
					if t, bad := copiesValue(x.Value); bad {
						flag(x.Value, t, "composite-literal field")
					}
				}
				return true
			})
		}
	}
	return out
}

// containsAtomic reports whether t is, or contains (struct field, array
// element, embedded), a type declared in sync/atomic.
func containsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), seen)
	}
	return false
}

// shortPos renders file:line with the directory stripped — enough to
// locate the companion site in a finding message.
func shortPos(file string, line int) string {
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// sortFindings orders findings deterministically (used by analyzers that
// build findings from map iteration).
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})
}
