package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc keeps the per-inference call graph allocation-free. The
// engine's speed rests on packed buffers being allocated once — at model
// load or inside the grow-only Ensure* helpers — and reused for every
// inference; a make/append/map/boxing allocation that sneaks into the
// path rooted at Network.Infer* or the kernels inner loops silently
// re-introduces the per-call GC traffic the bit-packed design exists to
// avoid.
//
// Roots: graph.Network methods named Infer*, every function in
// internal/kernels, and any function annotated //bitflow:hot.
// Boundaries (visited but not descended into): functions named Ensure*
// or Clone — the sanctioned allocation points. Allocations that only
// execute while building a panic argument are ignored (failure path),
// and //bitflow:alloc-ok <reason> excuses a deliberate one.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocations inside the per-inference call graph (Network.Infer*, kernels, //bitflow:hot)",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Program) []Finding {
	g := p.graph()
	var roots []*funcNode
	for _, n := range g.nodes {
		if hotRoot(p, n) {
			roots = append(roots, n)
		}
	}
	boundary := func(n *funcNode) bool {
		name := n.name()
		return strings.HasPrefix(name, "Ensure") || name == "Clone"
	}
	reached := g.reach(roots, reachOpts{boundary: boundary})

	var out []Finding
	for _, n := range g.nodes {
		if !reached[n] || boundary(n) {
			continue
		}
		out = append(out, scanAllocs(p, n)...)
	}
	return out
}

// hotRoot reports whether the node anchors the per-inference graph.
func hotRoot(p *Program, n *funcNode) bool {
	if pathSuffix(n.pkg.Path, "internal/kernels") && n.decl != nil {
		return true
	}
	if pathSuffix(n.pkg.Path, "internal/graph") &&
		n.recvTypeName() == "Network" && strings.HasPrefix(n.name(), "Infer") {
		return true
	}
	if n.decl != nil && p.directiveFor(n.decl.Pos(), "hot") != nil {
		return true
	}
	return false
}

// scanAllocs reports allocation sites lexically inside one node's body
// (nested literals are their own nodes and are scanned when reached).
func scanAllocs(p *Program, n *funcNode) []Finding {
	return scanAllocsAs(p, n, "hotalloc")
}

// scanAllocsAs is scanAllocs reporting under the given analyzer name —
// the fusion rule reuses the sweep (and the alloc-ok escape hatch) over
// its own root set.
func scanAllocsAs(p *Program, n *funcNode, analyzer string) []Finding {
	info := n.pkg.Info
	var out []Finding
	flag := func(pos_ ast.Node, what string) {
		out = append(out, p.excusable(analyzer, pos_.Pos(), "alloc-ok",
			what+" on per-inference hot path; pre-allocate at load/Ensure* time or annotate //bitflow:alloc-ok <reason>")...)
	}
	ast.Inspect(n.body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Failure path: allocations feeding a panic argument never
			// run on a successful inference.
			if isBuiltin(info, x, "panic") {
				return false
			}
			switch {
			case isBuiltin(info, x, "make"):
				flag(x, "make")
			case isBuiltin(info, x, "new"):
				flag(x, "new")
			case isBuiltin(info, x, "append"):
				flag(x, "append (may grow)")
			default:
				if conv, to := allocConversion(info, x); conv {
					flag(x, to+" conversion (allocates)")
				}
			}
		case *ast.CompositeLit:
			t := info.Types[x].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					flag(x, "slice literal")
				case *types.Map:
					flag(x, "map literal")
				}
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					flag(x, "&composite literal (escapes)")
					return false
				}
			}
		}
		return true
	})
	return out
}

// allocConversion reports conversions that allocate: string<->[]byte /
// []rune, and explicit conversions to interface types (boxing).
func allocConversion(info *types.Info, call *ast.CallExpr) (bool, string) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false, ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		// T -> []E allocates when the source is a string (or another
		// non-slice); slice->slice conversions of identical layout don't.
		argT := info.Types[call.Args[0]].Type
		if argT != nil {
			if b, ok := argT.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return true, "string-to-slice"
			}
		}
	case *types.Interface:
		return true, "interface"
	}
	return false, ""
}
