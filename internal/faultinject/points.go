package faultinject

// The registry: every injection point the serving stack exposes, in the
// order a request meets them. Adding a point means adding it here AND
// wiring its Fire call at the consuming site; the conformance suite
// iterates Points() so new points are picked up by Generate automatically.
var (
	// ServeAdmit fires in the HTTP handler immediately before admission
	// (gate.Acquire). There is no resilience.Safe above it, so it only
	// allows delay actions — used to widen the queue/deadline race
	// windows that produce 429/503 bursts.
	ServeAdmit = newPoint("serve.admit", Sleep, Stall)

	// ServeClone fires inside the Safe block that re-clones a replica
	// after a captured panic. A Panic action simulates the clone itself
	// failing, forcing the degraded keep-the-suspect-replica fallback.
	ServeClone = newPoint("serve.clone", Panic, Sleep)

	// BatchDispatch fires inside the batch worker's Safe block right
	// before a batch runs on its runner. Panic simulates a crash that
	// fails the whole batch; Fail injects a runner error; Sleep/Stall
	// hold the batch in flight.
	BatchDispatch = newPoint("batch.dispatch", Panic, Fail, Sleep, Stall)

	// BatchClone fires inside the Safe block that replaces a panicked
	// runner. A Panic action simulates the replacement factory failing,
	// forcing the keep-the-old-runner fallback.
	BatchClone = newPoint("batch.clone", Panic, Sleep)

	// GraphLayer fires before every layer of a forward pass — serial
	// (InferContext) and batched (InferBatch) alike — with the layer name
	// and index. Panic models a kernel crash mid-inference at layer k;
	// Stall parks the pass until the request context expires (the
	// deterministic "cancellation at layer k"); Fail makes the pass
	// return an injected error; Sleep models a slow layer.
	GraphLayer = newPoint("graph.layer", Panic, Fail, Sleep, Stall)

	// ExecChunk fires at the top of every ParallelFor chunk, on whichever
	// goroutine (caller or pool worker) claimed it. Panic models a worker
	// crash (captured and re-raised on the caller); Sleep/Stall model a
	// slow or stalled worker holding one chunk of a dispatch.
	ExecChunk = newPoint("exec.chunk", Panic, Sleep, Stall)

	// RegistryLoad fires inside registry.LoadArtifact, after the file
	// opens but before decode — entirely off the request hot path. Fail
	// simulates a corrupt/unreadable artifact (the load returns a typed
	// error and the old version keeps serving); Panic simulates a loader
	// crash, absorbed by the Safe scope around artifact verification;
	// Sleep models a slow disk.
	RegistryLoad = newPoint("registry.load", Panic, Fail, Sleep)

	// RegistrySwap fires at the three stages of a model swap (Index 0:
	// pre-verification, 1: pre-flip, 2: post-flip/pre-drain), inside the
	// Safe scope that guards the reload protocol. Panic or Fail at any
	// stage must roll the model back to the previous version with zero
	// half-state; Sleep/Stall widen the window in which requests race the
	// pointer flip.
	RegistrySwap = newPoint("registry.swap", Panic, Fail, Sleep, Stall)

	// ControlTick fires at the top of every autoscale controller tick,
	// inside the controller's Safe scope, with the model name and tick
	// ordinal — entirely off the request path. Fail corrupts the tick's
	// signal read (the controller must count it and degrade to the static
	// configuration, never oscillate on garbage); Panic models a
	// controller crash absorbed without touching serving; Sleep/Stall
	// delay ticks (the serving path must be unaffected — the control loop
	// is advisory, not load-bearing).
	ControlTick = newPoint("control.tick", Panic, Fail, Sleep, Stall)
)

var registry = []*Point{ServeAdmit, ServeClone, BatchDispatch, BatchClone, GraphLayer, ExecChunk, RegistryLoad, RegistrySwap, ControlTick}

// Points returns the full registry in request order.
func Points() []*Point { return append([]*Point(nil), registry...) }

// Lookup resolves a point by name, or nil.
func Lookup(name string) *Point {
	for _, p := range registry {
		if p.name == name {
			return p
		}
	}
	return nil
}

// Reset disarms every point. Tests that install hooks or scripts must
// call it (usually via defer or t.Cleanup) before the next test runs —
// points are process-global.
func Reset() {
	for _, p := range registry {
		p.Clear()
	}
}
