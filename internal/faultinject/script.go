package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Action is what an armed rule does when it selects a firing.
type Action string

const (
	// Panic throws from inside the hook — the consuming site's
	// resilience.Safe boundary (the one that catches real kernel panics)
	// must capture it. Only allowed at points that sit under one.
	Panic Action = "panic"
	// Fail returns an ErrInjected-wrapped error; meaningful only at
	// points whose site propagates hook errors (graph.layer,
	// batch.dispatch).
	Fail Action = "fail"
	// Sleep delays the firing site by Rule.For (default 10ms) — a slow
	// stage that still completes.
	Sleep Action = "sleep"
	// Stall parks the firing site until its context is done, bounded by
	// Rule.For (default 2s), and returns the context's error once it
	// fires — a stage wedged until the request deadline kills it.
	Stall Action = "stall"
)

// AnyIndex makes a rule match events regardless of Event.Index.
const AnyIndex = -1

// Rule arms one point with one fault pattern. The rule keeps a private
// counter of the events it matches (point + Index); which of those
// firings actually fault is selected by On / Every, bounded by Limit.
type Rule struct {
	// Point names the injection point (see Points()).
	Point string
	// Action is the fault to inject; must be in the point's allowed set.
	Action Action
	// Index restricts matching to events with this Event.Index (e.g.
	// layer k for graph.layer); AnyIndex matches all.
	Index int
	// On lists 1-based matching-firing ordinals that fault. Empty means
	// "per Every".
	On []int64
	// Every faults every k-th matching firing (counting from the k-th);
	// 0 with an empty On faults every matching firing.
	Every int64
	// Limit caps the total injections from this rule; 0 is unlimited.
	Limit int64
	// For is the Sleep duration or the Stall bound.
	For time.Duration
}

func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", r.Point, r.Action)
	if r.Index != AnyIndex {
		fmt.Fprintf(&b, " index=%d", r.Index)
	}
	if len(r.On) > 0 {
		fmt.Fprintf(&b, " on=%v", r.On)
	}
	if r.Every > 0 {
		fmt.Fprintf(&b, " every=%d", r.Every)
	}
	if r.Limit > 0 {
		fmt.Fprintf(&b, " limit=%d", r.Limit)
	}
	if r.For > 0 {
		fmt.Fprintf(&b, " for=%s", r.For)
	}
	return b.String()
}

// Script is a reproducible fault schedule: the seed it was generated
// from (zero for hand-written scripts) plus the armed rules. Printing a
// Script yields everything needed to replay a failure.
type Script struct {
	Seed  int64
	Rules []Rule

	// armed holds the live per-rule counters once Install has run.
	armed []*armedRule
}

func (s *Script) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faultinject script (seed %d, %d rules)", s.Seed, len(s.Rules))
	for i, r := range s.Rules {
		fmt.Fprintf(&b, "\n  rule %d: %s", i, r.String())
	}
	return b.String()
}

// armedRule is a Rule plus its live counters.
type armedRule struct {
	Rule
	matched  atomic.Int64
	injected atomic.Int64
}

// selects reports whether the n-th matching firing (1-based) faults.
func (ar *armedRule) selects(n int64) bool {
	if len(ar.On) > 0 {
		for _, want := range ar.On {
			if n == want {
				return true
			}
		}
		return false
	}
	if ar.Every > 0 {
		return n%ar.Every == 0
	}
	return true
}

// apply evaluates one event against the rule. acted reports whether the
// rule fired its action (err may still be nil for Sleep/Stall-without-
// cancel).
func (ar *armedRule) apply(ev Event) (acted bool, err error) {
	if ar.Index != AnyIndex && ev.Index != ar.Index {
		return false, nil
	}
	n := ar.matched.Add(1)
	if !ar.selects(n) {
		return false, nil
	}
	if shot := ar.injected.Add(1); ar.Limit > 0 && shot > ar.Limit {
		return false, nil
	}
	switch ar.Action {
	case Panic:
		panic(injectedPanic{ev: ev})
	case Fail:
		return true, fmt.Errorf("%w: %s (%s[%d])", ErrInjected, ev.Point, ev.Detail, ev.Index)
	case Sleep:
		d := ar.For
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		time.Sleep(d)
		return true, nil
	case Stall:
		bound := ar.For
		if bound <= 0 {
			bound = 2 * time.Second
		}
		if ev.Ctx == nil {
			time.Sleep(bound)
			return true, nil
		}
		t := time.NewTimer(bound)
		defer t.Stop()
		select {
		case <-ev.Ctx.Done():
			return true, ev.Ctx.Err()
		case <-t.C:
			return true, nil
		}
	}
	return false, nil
}

// Install validates the script and arms every referenced point. Rules
// sharing a point are evaluated in script order per event; the first one
// that acts decides the outcome. Callers own cleanup via Reset (hooks
// are process-global).
func (s *Script) Install() error {
	byPoint := map[*Point][]*armedRule{}
	order := []*Point{}
	s.armed = nil
	for i := range s.Rules {
		r := s.Rules[i]
		p := Lookup(r.Point)
		if p == nil {
			return fmt.Errorf("faultinject: rule %d: unknown point %q", i, r.Point)
		}
		if !p.allows(r.Action) {
			return fmt.Errorf("faultinject: rule %d: action %q not allowed at %s (allowed: %v)",
				i, r.Action, p.name, p.allowed)
		}
		if len(byPoint[p]) == 0 {
			order = append(order, p)
		}
		ar := &armedRule{Rule: r}
		byPoint[p] = append(byPoint[p], ar)
		s.armed = append(s.armed, ar)
	}
	for _, p := range order {
		rules := byPoint[p]
		p.Set(func(ev Event) error {
			for _, ar := range rules {
				if acted, err := ar.apply(ev); acted {
					return err
				}
			}
			return nil
		})
	}
	return nil
}

// Injected totals the faults all rules have injected so far — how much
// of the schedule actually landed on this run's interleaving. Zero
// before Install.
func (s *Script) Injected() int64 {
	var total int64
	for _, ar := range s.armed {
		n := ar.injected.Load()
		if ar.Limit > 0 && n > ar.Limit {
			n = ar.Limit // the counter over-runs by the post-limit probes
		}
		total += n
	}
	return total
}

// Generate derives a random fault schedule from seed: one to four rules
// over the registry, each with an action from its point's allowed set,
// small firing ordinals, bounded delays, and a Limit so the system is
// quiet again before a run's post-fault probes. Same seed, same script.
func Generate(seed int64) *Script {
	rng := rand.New(rand.NewSource(seed))
	nRules := 1 + rng.Intn(4)
	s := &Script{Seed: seed}
	for i := 0; i < nRules; i++ {
		p := registry[rng.Intn(len(registry))]
		act := p.allowed[rng.Intn(len(p.allowed))]
		r := Rule{
			Point:  p.name,
			Action: act,
			Index:  AnyIndex,
			Limit:  int64(1 + rng.Intn(3)),
		}
		if p == GraphLayer && rng.Intn(2) == 0 {
			r.Index = rng.Intn(4) // fault at a specific shallow layer
		}
		// Pick a handful of early ordinals so faults land while the
		// workload is still running.
		nOn := 1 + rng.Intn(3)
		seen := map[int64]bool{}
		for len(seen) < nOn {
			seen[1+rng.Int63n(40)] = true
		}
		for n := range seen {
			r.On = append(r.On, n)
		}
		sort.Slice(r.On, func(a, b int) bool { return r.On[a] < r.On[b] })
		switch act {
		case Sleep:
			r.For = time.Duration(1+rng.Intn(20)) * time.Millisecond
		case Stall:
			r.For = time.Duration(100+rng.Intn(400)) * time.Millisecond
		}
		s.Rules = append(s.Rules, r)
	}
	return s
}
