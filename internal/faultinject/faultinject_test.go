package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	for _, p := range Points() {
		if p.Enabled() {
			t.Fatalf("%s enabled at process start", p.Name())
		}
		if err := p.Fire(context.Background(), "x", 3); err != nil {
			t.Fatalf("%s disarmed Fire returned %v", p.Name(), err)
		}
	}
}

func TestHookSeesEvent(t *testing.T) {
	defer Reset()
	var got Event
	GraphLayer.Set(func(ev Event) error {
		got = ev
		return nil
	})
	if !GraphLayer.Enabled() {
		t.Fatal("Set did not enable the point")
	}
	ctx := context.Background()
	if err := GraphLayer.Fire(ctx, "conv1", 2); err != nil {
		t.Fatal(err)
	}
	if got.Point != "graph.layer" || got.Detail != "conv1" || got.Index != 2 || got.Ctx != ctx {
		t.Errorf("event %+v", got)
	}
	GraphLayer.Clear()
	if GraphLayer.Enabled() {
		t.Error("Clear left the point enabled")
	}
}

func TestLookupAndRegistry(t *testing.T) {
	if Lookup("graph.layer") != GraphLayer {
		t.Error("Lookup(graph.layer)")
	}
	if Lookup("no.such.point") != nil {
		t.Error("Lookup of unknown point should be nil")
	}
	seen := map[string]bool{}
	for _, p := range Points() {
		if seen[p.Name()] {
			t.Errorf("duplicate point %s", p.Name())
		}
		seen[p.Name()] = true
		if len(p.Allowed()) == 0 {
			t.Errorf("%s has no allowed actions", p.Name())
		}
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	for _, p := range Points() {
		p.Set(func(Event) error { return ErrInjected })
	}
	Reset()
	for _, p := range Points() {
		if p.Enabled() {
			t.Errorf("%s still armed after Reset", p.Name())
		}
	}
}

func TestScriptOrdinalSelection(t *testing.T) {
	defer Reset()
	s := &Script{Rules: []Rule{{
		Point: "graph.layer", Action: Fail, Index: AnyIndex, On: []int64{2, 4},
	}}}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, GraphLayer.Fire(nil, "l", i))
	}
	for i, want := range []bool{false, true, false, true, false} {
		if got := errs[i] != nil; got != want {
			t.Errorf("firing %d: injected=%v want %v", i+1, got, want)
		}
		if errs[i] != nil && !errors.Is(errs[i], ErrInjected) {
			t.Errorf("firing %d: error %v not ErrInjected", i+1, errs[i])
		}
	}
	if got := s.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
}

func TestScriptEveryAndLimit(t *testing.T) {
	defer Reset()
	s := &Script{Rules: []Rule{{
		Point: "graph.layer", Action: Fail, Index: AnyIndex, Every: 2, Limit: 2,
	}}}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	injected := 0
	for i := 0; i < 10; i++ {
		if GraphLayer.Fire(nil, "l", i) != nil {
			injected++
		}
	}
	if injected != 2 {
		t.Errorf("injected %d faults, want 2 (every 2nd, limit 2)", injected)
	}
	if got := s.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
}

func TestScriptIndexMatch(t *testing.T) {
	defer Reset()
	s := &Script{Rules: []Rule{{
		Point: "graph.layer", Action: Fail, Index: 3,
	}}}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	if err := GraphLayer.Fire(nil, "l", 2); err != nil {
		t.Errorf("index 2 faulted: %v", err)
	}
	if err := GraphLayer.Fire(nil, "l", 3); err == nil {
		t.Error("index 3 did not fault")
	}
}

func TestScriptPanicAction(t *testing.T) {
	defer Reset()
	s := &Script{Rules: []Rule{{Point: "graph.layer", Action: Panic, Index: AnyIndex}}}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Panic action did not panic")
		}
		if !strings.Contains(fmt.Sprint(v), "injected panic at graph.layer") {
			t.Errorf("panic value %v", v)
		}
	}()
	GraphLayer.Fire(nil, "conv1", 0)
}

func TestScriptStallBlocksUntilCtxDone(t *testing.T) {
	defer Reset()
	s := &Script{Rules: []Rule{{
		Point: "graph.layer", Action: Stall, Index: AnyIndex, For: 5 * time.Second,
	}}}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err := GraphLayer.Fire(ctx, "l", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("stall returned %v, want DeadlineExceeded", err)
	}
	if el := time.Since(t0); el < 20*time.Millisecond || el > 3*time.Second {
		t.Errorf("stall lasted %v, want ~30ms", el)
	}
}

func TestScriptStallBoundedWithoutCtx(t *testing.T) {
	defer Reset()
	s := &Script{Rules: []Rule{{
		Point: "exec.chunk", Action: Stall, Index: AnyIndex, For: 20 * time.Millisecond,
	}}}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := ExecChunk.Fire(nil, "", 0); err != nil {
		t.Errorf("ctx-less stall returned %v", err)
	}
	if el := time.Since(t0); el < 15*time.Millisecond {
		t.Errorf("ctx-less stall returned after %v, want >= 20ms", el)
	}
}

func TestScriptRejectsUnknownPointAndBadAction(t *testing.T) {
	if err := (&Script{Rules: []Rule{{Point: "nope", Action: Fail}}}).Install(); err == nil {
		t.Error("unknown point accepted")
	}
	// serve.admit sits above the Safe boundary: Panic must be rejected.
	if err := (&Script{Rules: []Rule{{Point: "serve.admit", Action: Panic}}}).Install(); err == nil {
		t.Error("disallowed action accepted")
	}
	Reset()
}

func TestScriptConcurrentFiringsRace(t *testing.T) {
	defer Reset()
	s := &Script{Rules: []Rule{{
		Point: "exec.chunk", Action: Sleep, Index: AnyIndex, For: time.Microsecond, Every: 3,
	}}}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ExecChunk.Fire(context.Background(), "", i)
			}
		}()
	}
	wg.Wait()
	// 400 matching firings, every 3rd sleeps.
	if got := s.Injected(); got != 133 {
		t.Errorf("Injected() = %d, want 133", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(12345), Generate(12345)
	if a.String() != b.String() {
		t.Errorf("Generate not deterministic:\n%s\nvs\n%s", a, b)
	}
	c := Generate(54321)
	if a.String() == c.String() {
		t.Error("different seeds produced identical scripts")
	}
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(seed)
		if len(s.Rules) == 0 {
			t.Fatalf("seed %d: empty script", seed)
		}
		if err := s.Install(); err != nil {
			t.Fatalf("seed %d: generated script invalid: %v\n%s", seed, err, s)
		}
		Reset()
	}
}

func TestScriptStringIsReplayable(t *testing.T) {
	s := Generate(7)
	out := s.String()
	if !strings.Contains(out, "seed 7") {
		t.Errorf("script print lacks seed: %s", out)
	}
	for _, r := range s.Rules {
		if !strings.Contains(out, r.Point) {
			t.Errorf("script print lacks point %s: %s", r.Point, out)
		}
	}
}
