// Package faultinject is the serving stack's deterministic
// fault-injection seam: a fixed registry of named injection points wired
// into internal/serve, internal/batch, internal/exec, and internal/graph,
// plus a seed-driven Script layer that arms them with reproducible fault
// schedules (panic mid-inference, stalled worker, injected errors).
//
// The design contract, enforced by bitflow-vet, is that an UNARMED point
// is free on the per-inference hot path: each point holds an atomic
// nil-by-default hook pointer, so Fire on a quiet system is one atomic
// load and a branch — no allocation, no lock, no goroutine. Faults enter
// only through hooks that tests (or the conformance harness) install, and
// every consuming site sits behind the same guard a real failure of that
// kind would hit: a panicking hook at a dispatch site is captured by the
// resilience.Safe boundary that captures real kernel panics, an injected
// clone failure takes the same degraded-fallback path a real clone panic
// would. Injection therefore exercises the production recovery code, not
// a parallel test-only path.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrInjected marks an error manufactured by a fault hook (Fail action or
// a custom hook), so sites and assertions can tell injected failures from
// organic ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Event describes one arrival at an injection point. It is passed by
// value so firing a hook never allocates.
type Event struct {
	// Point is the registered point name, e.g. "graph.layer".
	Point string
	// Detail is the site-specific label: the layer name for graph.layer,
	// empty where the site has nothing finer to say.
	Detail string
	// Index is the site-specific ordinal: the layer index for
	// graph.layer, the chunk start for exec.chunk, the batch size for
	// batch.dispatch.
	Index int
	// Ctx is the request/dispatch context when the site has one, else
	// nil. Stall hooks block on it so an injected stall resolves exactly
	// when the request's own deadline fires.
	Ctx context.Context
}

// Hook observes one event and decides the fault: return nil for no fault,
// return an error for sites that propagate one (see each point's allowed
// actions), panic to simulate a crash, or block/sleep to simulate a slow
// or stalled stage. Hooks run on the hot path of whatever site fired them
// and must be safe for concurrent use.
type Hook func(Event) error

// Point is one named injection site. The zero hook state is "disarmed":
// Fire returns nil after a single atomic load. Points are created by this
// package only (see points.go) so the registry is closed and printable.
type Point struct {
	name    string
	allowed []Action
	hook    atomic.Pointer[Hook]
}

// Name returns the registered point name.
func (p *Point) Name() string { return p.name }

// Allowed lists the script actions that are meaningful at this point —
// the ones whose failure mode the consuming site is built to absorb.
func (p *Point) Allowed() []Action { return append([]Action(nil), p.allowed...) }

// Enabled reports whether a hook is currently installed.
func (p *Point) Enabled() bool { return p.hook.Load() != nil }

// Set installs h as the point's hook (nil disarms). Installation is
// atomic: in-flight Fire calls see either the old or the new hook.
func (p *Point) Set(h Hook) {
	if h == nil {
		p.hook.Store(nil)
		return
	}
	p.hook.Store(&h)
}

// Clear disarms the point.
func (p *Point) Clear() { p.hook.Store(nil) }

// Fire reports the event to the installed hook, if any. With no hook
// installed it returns nil after one atomic load — the disarmed fast
// path every production inference takes.
func (p *Point) Fire(ctx context.Context, detail string, index int) error {
	h := p.hook.Load()
	if h == nil {
		return nil
	}
	return (*h)(Event{Point: p.name, Detail: detail, Index: index, Ctx: ctx})
}

// allows reports whether a is in the point's allowed action set.
func (p *Point) allows(a Action) bool {
	for _, x := range p.allowed {
		if x == a {
			return true
		}
	}
	return false
}

func newPoint(name string, allowed ...Action) *Point {
	return &Point{name: name, allowed: allowed}
}

// injectedPanic is the value a Panic action throws; resilience.Safe wraps
// it like any other panic value, and String keeps failure output legible.
type injectedPanic struct{ ev Event }

func (ip injectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (%s[%d])", ip.ev.Point, ip.ev.Detail, ip.ev.Index)
}
