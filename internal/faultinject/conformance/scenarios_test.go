package conformance

// The named fault scenarios from the serving stack's hardening PRs, each
// pinned with a hand-written script so the exact fault replays forever.
// These are the regression net for the recovery code itself: revert the
// panic re-clone, the mid-inference deadline 503, or the batcher's
// exactly-once completion, and the matching test here fails.

import (
	"net/http"
	"testing"
	"time"

	"bitflow/internal/control"
	"bitflow/internal/faultinject"
)

// TestScenarioPanicRecloneRestoresCapacity injects kernel panics
// mid-inference on the unbatched path. The handler must convert each to a
// 500 "panic", re-clone the replica, and leave pool capacity intact — the
// probe wave and the gate/replica conservation laws fail if the re-clone
// (or the recover itself) is reverted.
func TestScenarioPanicRecloneRestoresCapacity(t *testing.T) {
	cfg := Defaults(101)
	cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{{
		Point:  "graph.layer",
		Action: faultinject.Panic,
		Index:  1, // mid-inference: after c1 has already run
		On:     []int64{1, 3, 5},
	}}}
	res := mustRun(t, cfg)
	if n := countCode(res.Outcomes, "panic"); n == 0 {
		t.Error("no request observed a 500 panic; injection did not land")
	}
	if res.Snapshot.PanicsRecovered == 0 {
		t.Error("panics_recovered is 0 after injected panics")
	}
}

// TestScenarioDeadline503MidInference parks a forward pass at layer 1
// far past the request deadline. The layer-boundary context checks must
// cut the pass and surface a 503 "deadline"; if mid-inference
// cancellation is reverted the stalled requests come back 200 (late) and
// the deadline count here drops to zero.
func TestScenarioDeadline503MidInference(t *testing.T) {
	cfg := Defaults(102)
	cfg.RequestTimeout = 200 * time.Millisecond
	cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{{
		Point:  "graph.layer",
		Action: faultinject.Stall,
		Index:  1,
		On:     []int64{1, 2},
		For:    5 * time.Second, // far beyond the deadline: only ctx can end it
	}}}
	res := mustRun(t, cfg)
	if n := countCode(res.Outcomes, "deadline"); n == 0 {
		t.Error("no request observed a 503 deadline; mid-inference cancellation is not working")
	}
}

// TestScenarioBatchExactlyOnce crashes batch dispatches while concurrent
// requests race the coalescing window. Every seat in a crashed batch must
// complete exactly once with a 500; a double-complete panics the future
// (transport error → Law 1) and a dropped seat wedges the drain (Law 7).
func TestScenarioBatchExactlyOnce(t *testing.T) {
	cfg := Defaults(103)
	cfg.Batching = true
	cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{
		{Point: "batch.dispatch", Action: faultinject.Panic, Index: faultinject.AnyIndex, On: []int64{1, 3}},
		{Point: "batch.dispatch", Action: faultinject.Fail, Index: faultinject.AnyIndex, On: []int64{5}},
	}}
	res := mustRun(t, cfg)
	if n := countStatus(res.Outcomes, http.StatusInternalServerError); n == 0 {
		t.Error("no request observed the batch panic; injection did not land")
	}
	if res.Snapshot.PanicsRecovered == 0 {
		t.Error("panics_recovered is 0 after injected batch panics")
	}
}

// TestScenarioRunnerCloneFailure makes the recovery path itself fail:
// first a panic corrupts a runner/replica, then the replacement factory
// panics too. Both modes must fall back to keeping the old instance and
// continue serving — the probe wave fails if the fallback leaks the slot.
func TestScenarioRunnerCloneFailure(t *testing.T) {
	t.Run("batched", func(t *testing.T) {
		cfg := Defaults(104)
		cfg.Batching = true
		cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{
			{Point: "batch.dispatch", Action: faultinject.Panic, Index: faultinject.AnyIndex, On: []int64{1}},
			{Point: "batch.clone", Action: faultinject.Panic, Index: faultinject.AnyIndex, Limit: 1},
		}}
		res := mustRun(t, cfg)
		if res.Snapshot.PanicsRecovered == 0 {
			t.Error("panics_recovered is 0; the dispatch panic did not land")
		}
	})
	t.Run("unbatched", func(t *testing.T) {
		cfg := Defaults(105)
		cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{
			{Point: "graph.layer", Action: faultinject.Panic, Index: 1, On: []int64{1}},
			{Point: "serve.clone", Action: faultinject.Panic, Index: faultinject.AnyIndex, Limit: 1},
		}}
		res := mustRun(t, cfg)
		if n := countCode(res.Outcomes, "panic"); n == 0 {
			t.Error("no request observed the 500; the replica panic did not land")
		}
	})
}

// TestScenarioRegistrySwapPanicRollsBack crashes the swap protocol
// right after the atomic pointer flip, under live traffic. The reload
// must roll back with a structured reason, the old version must keep
// serving bit-exact logits (Law 2 on every post-rollback 200), and the
// capacity laws must hold — a leaked candidate replica or a half-flipped
// pointer fails Laws 5/8.
func TestScenarioRegistrySwapPanicRollsBack(t *testing.T) {
	cfg := Defaults(107)
	cfg.Reloads = 2
	cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{{
		Point:  "registry.swap",
		Action: faultinject.Panic,
		Index:  2, // post-flip: requests may already be pinning the candidate
		On:     []int64{1},
	}}}
	res := mustRun(t, cfg)
	if len(res.Reloads) != 2 {
		t.Fatalf("reload ledger has %d entries, want 2", len(res.Reloads))
	}
	first := res.Reloads[0].Status
	if first == nil || first.Outcome != "rolled_back" || first.Stage != "swap" {
		t.Fatalf("first reload %+v, want a swap-stage rollback", first)
	}
	second := res.Reloads[1].Status
	if second == nil || second.Outcome != "swapped" {
		t.Fatalf("second reload %+v, want a clean swap after the rollback", second)
	}
	if res.State.Version != "r2" {
		t.Fatalf("serving version %q, want r2", res.State.Version)
	}
}

// TestScenarioRegistryVerifyFailRollsBack fails candidate verification
// outright: the pointer must never move, the attempt must report a
// verify-stage rollback, and the original version keeps serving.
func TestScenarioRegistryVerifyFailRollsBack(t *testing.T) {
	cfg := Defaults(108)
	cfg.Reloads = 1
	cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{{
		Point:  "registry.swap",
		Action: faultinject.Fail,
		Index:  0, // verification stage, before the flip
		On:     []int64{1},
	}}}
	res := mustRun(t, cfg)
	if len(res.Reloads) != 1 {
		t.Fatalf("reload ledger has %d entries, want 1", len(res.Reloads))
	}
	st := res.Reloads[0].Status
	if st == nil || st.Outcome != "rolled_back" || st.Stage != "verify" {
		t.Fatalf("reload %+v, want a verify-stage rollback", st)
	}
	if res.State.Version != "boot" {
		t.Fatalf("serving version %q changed by a rolled-back reload", res.State.Version)
	}
}

// TestScenarioControlSignalCorruptionDegrades corrupts every control
// tick while the adaptive loop serves live traffic. The controller must
// count the corruption and degrade to the static geometry instead of
// oscillating — and the data plane must never notice: every good request
// still returns 200, and the setpoint-containment law holds. After the
// script is disarmed the controller may legally recover (clean ticks),
// so the terminal state is either degraded or adapting-with-a-recovery
// ledger entry; anything else is a verdict failure.
func TestScenarioControlSignalCorruptionDegrades(t *testing.T) {
	for _, batching := range []bool{false, true} {
		t.Run(map[bool]string{false: "unbatched", true: "batched"}[batching], func(t *testing.T) {
			cfg := Defaults(109)
			cfg.Autoscale = true
			cfg.Batching = batching
			cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{{
				Point:  "control.tick",
				Action: faultinject.Fail,
				Index:  faultinject.AnyIndex, // every tick, until the script is disarmed
			}}}
			res := mustRun(t, cfg)

			st := res.ControlStatuses["conformance"]
			if st == nil {
				t.Fatal("no controller status for the autoscaled model")
			}
			if st.CorruptTicks == 0 {
				t.Fatal("corrupt_ticks is 0; the control.tick injection did not land")
			}
			degraded, recovered := false, false
			for _, d := range st.Decisions {
				switch d.Action {
				case control.ActionDegrade:
					degraded = true
				case control.ActionRecover:
					recovered = true
				}
			}
			if !degraded {
				t.Error("no degrade decision in the ledger after persistent signal corruption")
			}
			switch st.State {
			case control.StateDegraded:
				if st.Setpoints != st.Static {
					t.Errorf("degraded controller serving %+v, want the static geometry %+v", st.Setpoints, st.Static)
				}
			case control.StateAdapting:
				if !recovered {
					t.Errorf("controller is adapting with no recovery ledger entry after corruption")
				}
			default:
				t.Errorf("controller terminal state %q, want degraded or adapting", st.State)
			}
			for i, o := range res.Outcomes {
				if o.Kind == kindGood && o.Status != http.StatusOK {
					t.Errorf("request %d: good request got %d (%s) while the control loop was corrupted — degradation must be invisible to the data plane",
						i, o.Status, o.Code)
				}
			}
		})
	}
}

// TestScenarioCompressedModelPanicRecovery replays the panic-reclone
// schedule over a kernel-compressed model: seeded graph.layer panics land
// mid-inference on the compressed forward path, recovery re-clones must
// inherit the compression plan, and Law 2 pins every 200 against an
// uncompressed serial reference — a compressed-vs-uncompressed logits
// differential running under fault injection.
func TestScenarioCompressedModelPanicRecovery(t *testing.T) {
	for _, batching := range []bool{false, true} {
		t.Run(map[bool]string{false: "unbatched", true: "batched"}[batching], func(t *testing.T) {
			cfg := Defaults(110)
			cfg.Compressed = true
			cfg.Batching = batching
			cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{{
				Point:  "graph.layer",
				Action: faultinject.Panic,
				Index:  1, // mid-inference: after the compressed conv has run
				On:     []int64{1, 3, 5},
			}}}
			res := mustRun(t, cfg)
			if res.Snapshot.PanicsRecovered == 0 {
				t.Error("panics_recovered is 0 after injected panics")
			}
		})
	}
}

// TestScenarioQueueFullBurst wedges the only replica and floods the
// server past its one queue slot: the overflow must shed as 429
// "queue_full" while the admission ledger stays conserved.
func TestScenarioQueueFullBurst(t *testing.T) {
	cfg := Defaults(106)
	cfg.Replicas = 1
	cfg.MaxQueue = 1
	cfg.Clients = 8
	cfg.Requests = 16
	cfg.RequestTimeout = 2 * time.Second
	cfg.Script = &faultinject.Script{Rules: []faultinject.Rule{{
		Point:  "graph.layer",
		Action: faultinject.Sleep,
		Index:  0,
		On:     []int64{1, 2, 3},
		For:    300 * time.Millisecond,
	}}}
	res := mustRun(t, cfg)
	if n := countCode(res.Outcomes, "queue_full"); n == 0 {
		t.Error("no request observed a 429 queue_full; the burst never saturated admission")
	}
}
