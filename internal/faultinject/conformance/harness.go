// Package conformance is the closed-loop verification harness for the
// serving stack's fault tolerance: it drives a seeded, randomized request
// workload through a live server while a seed-derived fault script
// (internal/faultinject) injects panics, stalls, and errors into serve,
// batch, exec, graph, and control — then a model-based oracle checks the stack's
// conservation invariants, which must hold after EVERY schedule:
//
//   - gate tokens conserved: once quiet, zero held, zero waiting, every
//     replica back in the pool (capacity never leaks across panics);
//   - every request completed exactly once: each client call returns one
//     response and the server drains cleanly (no wedged futures);
//   - metrics conservation: requests == ok + bad + shed + panicked as
//     observed by the clients themselves;
//   - recovery: after the script is disarmed, a full-width probe wave
//     must succeed — replicas are restored, not merely limping;
//   - correctness: every 200 carries logits bit-identical to a serial
//     reference inference of the same input;
//   - setpoint containment (autoscaled runs): the control loop's terminal
//     setpoints lie inside the declared bounds, and a corruption-degraded
//     controller has reverted to exactly the static geometry.
//
// A violation fails with the seed and the full fault script, so any
// failure replays exactly. The suite runs under -race in verify.sh.
package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"bitflow/internal/control"
	"bitflow/internal/faultinject"
	"bitflow/internal/graph"
	"bitflow/internal/registry"
	"bitflow/internal/resilience"
	"bitflow/internal/sched"
	"bitflow/internal/serve"
	"bitflow/internal/tensor"
)

// Config parameterizes one conformance run. The zero value is not usable;
// start from Defaults(seed).
type Config struct {
	// Seed drives both the fault script (when Script is nil) and the
	// workload's request mix. Same seed, same schedule.
	Seed int64
	// Script overrides the seed-generated fault script — how the named
	// scenario tests pin one exact fault.
	Script *faultinject.Script
	// Batching selects the micro-batched serving path.
	Batching bool
	// Replicas / MaxQueue / RequestTimeout mirror serve.Config.
	Replicas       int
	MaxQueue       int
	RequestTimeout time.Duration
	// Clients is the number of concurrent request loops; Requests is the
	// total request count they share.
	Clients  int
	Requests int
	// Models is the number of models served (default 1). With more than
	// one, models are named m0..mN-1 (each with distinct weights), the
	// workload round-robins over /v1/models/{name}/infer, and the
	// conservation laws are checked per model.
	Models int
	// Autoscale runs every model under the adaptive control loop with a
	// fast tick, so fault schedules (including control.tick corruption)
	// interleave with live setpoint changes and replica resizes. The
	// oracle then additionally checks the setpoint-containment law.
	Autoscale bool
	// Reloads is the number of hot version swaps performed on the
	// default model while the workload runs. The reload artifacts carry
	// the same weights under new version labels, so the bit-exactness
	// law holds across every flip; a fault script may still force any
	// swap to roll back, which the oracle accepts as long as the ledger
	// and the conservation laws agree.
	Reloads int
	// Compressed builds every model with duplicated conv filter banks so
	// the load-time kernel-compression pass selects the compressed
	// forward path, and computes the serial reference logits on an
	// *uncompressed* clone — Law 2 then doubles as a
	// compressed-vs-uncompressed differential under the fault schedule.
	Compressed bool
}

// Defaults returns a small-but-concurrent workload configuration for the
// given seed: enough clients to keep the queue contended, few enough
// requests that a -race run stays in CI budget.
func Defaults(seed int64) Config {
	return Config{
		Seed:           seed,
		Replicas:       2,
		MaxQueue:       4,
		RequestTimeout: 1 * time.Second,
		Clients:        4,
		Requests:       48,
	}
}

// reqKind is one workload request shape.
type reqKind int

const (
	kindGood       reqKind = iota // valid input, expects 200 absent faults
	kindShortInput                // wrong-length data, expects 400
	kindBadJSON                   // malformed body, expects 400
)

// Outcome records what one client observed for one request.
type Outcome struct {
	Kind   reqKind
	Model  string // which model the request targeted
	Input  int    // index into the reference input set (kindGood only)
	Status int
	Code   string // machine-readable error code for non-200s
	Logits []float32
	Err    error // transport-level failure (always a violation)
}

// ReloadOutcome records one hot-swap attempt made during the workload.
type ReloadOutcome struct {
	Status *registry.ReloadStatus
	Err    string // the swap error; "" on a clean swap
}

// Result is one run's full evidence: the schedule that ran, what every
// client saw, the server's terminal state, and the oracle's verdict.
type Result struct {
	Config   Config
	Script   *faultinject.Script
	Outcomes []Outcome
	Probes   []Outcome
	Reloads  []ReloadOutcome
	Snapshot resilience.Snapshot
	State    serve.Introspection
	DrainErr error

	// Per-model terminal state, keyed by model name — the single-model
	// run has one entry mirroring Snapshot/State.
	ModelStates    map[string]serve.Introspection
	ModelSnapshots map[string]resilience.Snapshot

	// ControlStatuses is each autoscaled model's terminal controller
	// state, sampled after drain (the controllers are halted, so the
	// snapshot cannot race a tick). Nil entries mean "not autoscaled".
	ControlStatuses map[string]*control.Status

	Violations []string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Report renders the verdict with everything needed to replay it.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: seed=%d batching=%v replicas=%d: %d violations\n",
		r.Config.Seed, r.Config.Batching, r.Config.Replicas, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	fmt.Fprintf(&b, "  %s\n", strings.ReplaceAll(r.Script.String(), "\n", "\n  "))
	fmt.Fprintf(&b, "  replay: BITFLOW_CONFORMANCE_SEED=%d go test -race -count=1 -run 'TestConformanceRotatingSeed' ./internal/faultinject/conformance\n",
		r.Config.Seed)
	return b.String()
}

func (r *Result) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// buildNetwork constructs one conformance model: the same small
// conv→pool→dense topology the serve tests pin, deterministic weights
// derived from the given seed so distinct models are distinguishable by
// their logits.
func buildNetwork(name string, seed uint64, compressed bool) (*graph.Network, error) {
	var ws graph.WeightSource = graph.RandomWeights{Seed: seed}
	if compressed {
		ws = dupWeights{RandomWeights: graph.RandomWeights{Seed: seed}}
	}
	return graph.NewBuilder(name, 8, 8, 64, sched.Detect()).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Dense("d1", 4).
		Build(ws)
}

// dupWeights repeats one of four base filter patterns per output channel,
// so the conv bank's packed words duplicate with ratio ≥ K/4 and the
// layer crosses the kernel-compression threshold at build time.
type dupWeights struct {
	graph.RandomWeights
}

func (d dupWeights) ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error) {
	f, err := d.RandomWeights.ConvFilter(name, k, kh, kw, c)
	if err == nil {
		per := kh * kw * c
		for i := 4; i < k; i++ {
			copy(f.Data[i*per:(i+1)*per], f.Data[(i%4)*per:(i%4+1)*per])
		}
	}
	return f, err
}

const numInputs = 8

// makeInputs derives the reference input set from the seed.
func makeInputs(seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	inputs := make([][]float32, numInputs)
	for i := range inputs {
		data := make([]float32, 8*8*64)
		for j := range data {
			data[j] = rng.Float32()*2 - 1
		}
		inputs[i] = data
	}
	return inputs
}

// Run executes one full conformance schedule and returns the oracle's
// verdict. It owns the process-global fault hooks for its duration:
// callers must not run two conformance schedules concurrently (the tests
// in this package are serial for exactly that reason).
func Run(cfg Config) (*Result, error) {
	if cfg.Models < 1 {
		cfg.Models = 1
	}
	// Model names: the single-model run keeps the legacy identity (and
	// the legacy /infer route); multi-model runs use m0..mN-1.
	names := make([]string, cfg.Models)
	nets := make([]*graph.Network, cfg.Models)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		if cfg.Models == 1 {
			names[i] = "conformance"
		}
		net, err := buildNetwork(names[i], 130+uint64(i), cfg.Compressed)
		if err != nil {
			return nil, fmt.Errorf("conformance: building network %s: %w", names[i], err)
		}
		if cfg.Compressed && net.CompressedLayers() == 0 {
			return nil, fmt.Errorf("conformance: model %s did not select the compressed path", names[i])
		}
		nets[i] = net
	}
	inputs := makeInputs(cfg.Seed)

	// Serial reference logits per model, computed on private clones
	// before any fault hook is armed. Every 200 the workload sees must
	// match its model's references bit for bit — including across hot
	// reloads, whose artifacts carry the same weights.
	refLogits := make(map[string][][]float32, cfg.Models)
	for m, net := range nets {
		ref := net.Clone()
		if cfg.Compressed {
			// The reference runs the uncompressed plan: every 200 is then a
			// compressed-vs-uncompressed bit-equality check.
			ref = net.CloneUncompressed()
		}
		refs := make([][]float32, len(inputs))
		for i, data := range inputs {
			x := tensor.FromSlice(8, 8, 64, data)
			out, err := ref.InferContext(context.Background(), x)
			if err != nil {
				return nil, fmt.Errorf("conformance: reference inference %s/%d: %w", names[m], i, err)
			}
			refs[i] = out
		}
		refLogits[names[m]] = refs
	}

	// Reload artifacts are cloned now, on a quiet system: same weights as
	// the default model, fresh version labels r1..rK.
	reloadArts := make([]*registry.Artifact, cfg.Reloads)
	for i := range reloadArts {
		reloadArts[i] = registry.FromNetwork(fmt.Sprintf("r%d", i+1), nets[0].Clone())
	}

	script := cfg.Script
	if script == nil {
		script = faultinject.Generate(cfg.Seed)
	}
	res := &Result{Config: cfg, Script: script}

	srvCfg := serve.Config{
		Replicas:       cfg.Replicas,
		MaxQueue:       cfg.MaxQueue,
		RequestTimeout: cfg.RequestTimeout,
		Batching:       cfg.Batching,
	}
	if cfg.Autoscale {
		// A fast tick and a short cooldown so the controller actuates many
		// times within one CI-budget workload; every other bound defaults
		// from the static geometry.
		srvCfg.Autoscale = &serve.AutoscaleConfig{
			Interval:    2 * time.Millisecond,
			MaxReplicas: cfg.Replicas + 2,
			Cooldown:    1,
		}
	}
	var srv *serve.Server
	if cfg.Models == 1 {
		srv = serve.NewWithConfig(nets[0], srvCfg)
	} else {
		specs := make([]serve.ModelSpec, cfg.Models)
		for i, net := range nets {
			specs[i] = serve.ModelSpec{Name: names[i], Net: net, Cfg: srvCfg, Default: i == 0}
		}
		var err error
		srv, err = serve.NewMulti(specs)
		if err != nil {
			return nil, fmt.Errorf("conformance: building multi-model server: %w", err)
		}
	}
	if !srv.Ready() {
		return nil, fmt.Errorf("conformance: server failed warm-up")
	}

	l, err := net0listen()
	if err != nil {
		return nil, err
	}
	baseURL := "http://" + l.Addr().String()
	sctx, stop := context.WithCancel(context.Background())
	drained := make(chan error, 1)
	go func() { //bitflow:go-ok test-harness server lifecycle, joined via the drained channel before Run returns
		drained <- srv.ServeListener(sctx, l, serve.HTTPConfig{ShutdownGrace: 10 * time.Second})
	}()
	// drainErr is idempotent: the happy path consumes the listener's exit
	// status in phase 4, and the deferred cleanup reuses the cached value
	// instead of blocking on a second receive.
	var drainOnce sync.Once
	var drainErr error
	drain := func() error {
		drainOnce.Do(func() {
			stop()
			drainErr = <-drained
		})
		return drainErr
	}
	defer func() {
		_ = drain()
		faultinject.Reset()
	}()

	httpc := &http.Client{Timeout: 20 * time.Second}

	// Arm the schedule only now: warm-up and the reference pass above ran
	// on a quiet system.
	if err := script.Install(); err != nil {
		return nil, fmt.Errorf("conformance: installing script: %w", err)
	}

	// pathFor keeps the single-model run on the legacy route (so the
	// scenarios keep exercising it) and fans multi-model runs across the
	// named routes.
	pathFor := func(name string) string {
		if cfg.Models == 1 {
			return "/infer"
		}
		return "/v1/models/" + name + "/infer"
	}

	// Phase 1: the faulted workload. Each client derives its own request
	// mix from the seed, so the multiset of requests is seed-deterministic
	// even though the interleaving is the scheduler's. Requests round-robin
	// across models by global index, so per-model load is deterministic too.
	outcomes := make([]Outcome, cfg.Requests)
	var wg sync.WaitGroup //bitflow:go-ok test-harness client fan-out; these are HTTP clients, not compute, so exec.Ctx does not apply
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(client int) { //bitflow:go-ok test-harness request loop, joined via wg.Wait below
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(client)))
			for i := client; i < cfg.Requests; i += cfg.Clients {
				name := names[i%cfg.Models]
				outcomes[i] = doRequest(httpc, baseURL, pathFor(name), name, pickKind(rng), rng.Intn(numInputs), inputs)
			}
		}(c)
	}

	// Concurrent with the workload: hot-swap the default model through
	// the reload artifacts. A fault script may fail any swap (that is the
	// point); the ledger of outcomes is evidence for the oracle.
	reloadDone := make(chan struct{})
	go func() { //bitflow:go-ok test-harness reload driver, joined via reloadDone before phase 2
		defer close(reloadDone)
		for _, art := range reloadArts {
			rctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			st, err := srv.ReloadModel(rctx, names[0], art)
			cancel()
			ro := ReloadOutcome{Status: st}
			if err != nil {
				ro.Err = err.Error()
			}
			res.Reloads = append(res.Reloads, ro)
			time.Sleep(2 * time.Millisecond) // let traffic land on the new version
		}
	}()
	wg.Wait()
	<-reloadDone
	res.Outcomes = outcomes

	// Phase 2: disarm and probe. With hooks gone, a full-width wave of
	// concurrent good requests must succeed on every model — this is the
	// "replicas restored after panic" invariant made operational, and
	// after a rolled-back swap it doubles as the capacity-restoration
	// check.
	faultinject.Reset()
	probes := make([]Outcome, cfg.Replicas*cfg.Models)
	for p := 0; p < len(probes); p++ {
		wg.Add(1)
		go func(p int) { //bitflow:go-ok test-harness probe wave, joined via wg.Wait below
			defer wg.Done()
			name := names[p%cfg.Models]
			probes[p] = doRequest(httpc, baseURL, pathFor(name), name, kindGood, p%numInputs, inputs)
		}(p)
	}
	wg.Wait()
	res.Probes = probes

	// Phase 3: quiesce and let the oracle read the terminal state of
	// every model. The gate releases its token in a defer that races the
	// response write, so conservation is polled with a deadline rather
	// than sampled once.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res.ModelStates = map[string]serve.Introspection{}
		quiet := true
		for _, name := range names {
			in, err := srv.IntrospectModel(name)
			if err != nil {
				return nil, fmt.Errorf("conformance: introspecting %s: %w", name, err)
			}
			res.ModelStates[name] = in
			// The pool is compared against the LIVE replica count: under
			// autoscale the controller may still be resizing the set while
			// we quiesce, and conservation means "every current replica is
			// home", not "the boot-time count is home".
			if in.GateHeld != 0 || in.GateWaiting != 0 ||
				(!cfg.Batching && in.PoolAvailable != in.Replicas) {
				quiet = false
			}
		}
		if quiet || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.State = res.ModelStates[names[0]]
	res.ModelSnapshots = map[string]resilience.Snapshot{}
	for _, name := range names {
		res.ModelSnapshots[name] = srv.ModelMetrics(name).Snapshot()
	}
	res.Snapshot = res.ModelSnapshots[names[0]]

	// Phase 4: drain. A wedged worker or an un-completed future shows up
	// here as a shutdown-grace timeout.
	res.DrainErr = drain()

	// Controller state is sampled only now, after drain halted every
	// control loop: a mid-tick snapshot could otherwise race the tick
	// that a fault script is stalling.
	if cfg.Autoscale {
		res.ControlStatuses = map[string]*control.Status{}
		for _, name := range names {
			res.ControlStatuses[name] = srv.ControlStatus(name)
		}
	}

	oracle(res, refLogits)
	return res, nil
}

func net0listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func pickKind(rng *rand.Rand) reqKind {
	switch n := rng.Intn(10); {
	case n < 8:
		return kindGood
	case n == 8:
		return kindShortInput
	default:
		return kindBadJSON
	}
}

// doRequest issues one workload request and decodes what the server said.
func doRequest(httpc *http.Client, baseURL, path, model string, kind reqKind, input int, inputs [][]float32) Outcome {
	o := Outcome{Kind: kind, Model: model, Input: input}
	var body []byte
	switch kind {
	case kindGood:
		body, _ = json.Marshal(serve.InferRequest{Data: inputs[input]})
	case kindShortInput:
		body, _ = json.Marshal(serve.InferRequest{Data: inputs[input][:7]})
	case kindBadJSON:
		body = []byte(`{"data": [1, 2,`)
	}
	resp, err := httpc.Post(baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		o.Err = err
		return o
	}
	defer resp.Body.Close()
	o.Status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var out serve.InferResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			o.Err = fmt.Errorf("decoding 200 body: %w", err)
			return o
		}
		o.Logits = out.Logits
		return o
	}
	var eresp serve.ErrorResponse
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &eresp); err != nil {
		o.Err = fmt.Errorf("non-JSON error body %q: %w", raw, err)
		return o
	}
	o.Code = eresp.Code
	return o
}

// oracle checks every invariant against the evidence in res. It appends
// violations rather than failing fast: a broken schedule usually trips
// several related laws, and seeing all of them localizes the bug.
func oracle(res *Result, refLogits map[string][][]float32) {
	all := append(append([]Outcome{}, res.Outcomes...), res.Probes...)

	// Law 1: exactly-once completion, client edition — every request got
	// one well-formed response. Tallies are kept per model so the
	// conservation laws can be checked against each model's own ledger.
	type tally struct {
		byStatus map[int]int64
		byCode   map[string]int64
	}
	tallies := map[string]*tally{}
	tallyFor := func(model string) *tally {
		tl := tallies[model]
		if tl == nil {
			tl = &tally{byStatus: map[int]int64{}, byCode: map[string]int64{}}
			tallies[model] = tl
		}
		return tl
	}
	for i, o := range all {
		if o.Err != nil {
			res.violatef("request %d: transport error (lost or malformed response): %v", i, o.Err)
			continue
		}
		tl := tallyFor(o.Model)
		tl.byStatus[o.Status]++
		if o.Status != http.StatusOK {
			tl.byCode[o.Code]++
		}
		switch o.Status {
		case http.StatusOK, http.StatusBadRequest, http.StatusTooManyRequests,
			http.StatusServiceUnavailable, http.StatusInternalServerError:
		default:
			res.violatef("request %d: status %d outside the API taxonomy", i, o.Status)
		}
	}

	// Law 2: correctness — a 200 is a claim of a finished, uncorrupted
	// forward pass, so its logits must equal the serial reference of the
	// model it targeted bit for bit, no matter what faults or version
	// swaps ran around it (reload artifacts share weights by design, and
	// a rollback must leave the old weights serving bit-identically).
	for i, o := range all {
		if o.Err != nil || o.Status != http.StatusOK {
			continue
		}
		refs, ok := refLogits[o.Model]
		if !ok {
			res.violatef("request %d: 200 from unknown model %q", i, o.Model)
			continue
		}
		want := refs[o.Input]
		if len(o.Logits) != len(want) {
			res.violatef("request %d: 200 with %d logits, reference has %d", i, len(o.Logits), len(want))
			continue
		}
		for j := range want {
			if o.Logits[j] != want[j] {
				res.violatef("request %d (model %s): logits[%d] = %v, serial reference %v (input %d)",
					i, o.Model, j, o.Logits[j], want[j], o.Input)
				break
			}
		}
	}

	// Law 3: malformed requests are never swallowed by a fault schedule.
	for i, o := range all {
		if o.Err == nil && o.Kind != kindGood && o.Status == http.StatusOK {
			res.violatef("request %d: malformed request (kind %d) returned 200", i, o.Kind)
		}
	}

	// Law 4: recovery — with hooks disarmed, the probe wave must succeed
	// at full replica width.
	for p, o := range res.Probes {
		if o.Err != nil || o.Status != http.StatusOK {
			res.violatef("post-fault probe %d: status %d code %q err %v — replicas not restored",
				p, o.Status, o.Code, o.Err)
		}
	}

	// Law 5: gate-token and replica conservation once quiet — per model,
	// and regardless of how many version swaps (or rollbacks) ran.
	for name, st := range res.ModelStates {
		if st.GateHeld != 0 {
			res.violatef("gate conservation (%s): %d tokens still held after quiesce", name, st.GateHeld)
		}
		if st.GateWaiting != 0 {
			res.violatef("gate conservation (%s): %d waiters still queued after quiesce", name, st.GateWaiting)
		}
		if !st.Batching && st.PoolAvailable != st.Replicas {
			res.violatef("replica conservation (%s): %d/%d replicas in the pool after quiesce",
				name, st.PoolAvailable, st.Replicas)
		}
	}

	// Law 6: metrics conservation — every model's ledger must agree with
	// what the clients collectively observed for that model. Shed covers
	// 429s plus the 503 codes (deadline, not_ready) the server counts as
	// load shedding.
	for name, snap := range res.ModelSnapshots {
		tl := tallyFor(name)
		clientTotal := int64(0)
		for _, n := range tl.byStatus {
			clientTotal += n
		}
		if snap.Requests != clientTotal {
			res.violatef("metrics conservation (%s): requests=%d but clients observed %d responses",
				name, snap.Requests, clientTotal)
		}
		if snap.OK != tl.byStatus[http.StatusOK] {
			res.violatef("metrics conservation (%s): ok=%d but clients observed %d 200s",
				name, snap.OK, tl.byStatus[http.StatusOK])
		}
		if snap.BadRequests != tl.byStatus[http.StatusBadRequest] {
			res.violatef("metrics conservation (%s): bad_requests=%d but clients observed %d 400s",
				name, snap.BadRequests, tl.byStatus[http.StatusBadRequest])
		}
		wantShed := tl.byStatus[http.StatusTooManyRequests] + tl.byCode["deadline"] + tl.byCode["not_ready"]
		if snap.Shed != wantShed {
			res.violatef("metrics conservation (%s): shed=%d but clients observed %d (429s + deadline/not_ready 503s)",
				name, snap.Shed, wantShed)
		}
		if snap.QueueDepth != 0 || snap.InFlight != 0 {
			res.violatef("metrics conservation (%s): queue_depth=%d in_flight=%d after quiesce",
				name, snap.QueueDepth, snap.InFlight)
		}
	}

	// Law 7: clean drain — shutdown inside the grace window proves no
	// future was left pending and no worker wedged.
	if res.DrainErr != nil {
		res.violatef("drain: ServeListener returned %v — a request or worker never completed", res.DrainErr)
	}

	// Law 8: reload ledger — every swap attempt terminated in exactly one
	// of the two legal outcomes, a failed attempt carries its structured
	// reason, and the version left serving is the last one that swapped.
	expect := "boot"
	for i, ro := range res.Reloads {
		st := ro.Status
		if st == nil {
			res.violatef("reload %d: no status recorded (error %q) — the swap protocol never ran", i, ro.Err)
			continue
		}
		switch st.Outcome {
		case registry.OutcomeSwapped:
			expect = st.To
		case registry.OutcomeRolledBack:
			if st.Stage == "" || st.Reason == "" {
				res.violatef("reload %d: rollback without a structured stage/reason: %+v", i, st)
			}
			if ro.Err == "" {
				res.violatef("reload %d: rolled back but the swap returned no error", i)
			}
		default:
			res.violatef("reload %d: outcome %q outside the protocol", i, st.Outcome)
		}
	}
	// res.State is the default model — the one the reload driver targets.
	if len(res.Reloads) > 0 && res.State.Version != expect {
		res.violatef("reload ledger: serving version %q, ledger says %q", res.State.Version, expect)
	}

	// Law 9: setpoint containment — no matter what the fault schedule did
	// to the control loop, every model's terminal setpoints lie inside the
	// operator-declared bounds, and a controller degraded by signal
	// corruption has reverted to exactly the static geometry (adaptive
	// serving degrades to static config, never to an arbitrary point).
	for name, st := range res.ControlStatuses {
		if st == nil {
			res.violatef("control (%s): autoscale run has no controller status", name)
			continue
		}
		sp, b := st.Setpoints, st.Bounds
		if sp.Replicas < b.MinReplicas || sp.Replicas > b.MaxReplicas {
			res.violatef("control (%s): replicas setpoint %d outside bounds [%d, %d]",
				name, sp.Replicas, b.MinReplicas, b.MaxReplicas)
		}
		if sp.MaxBatch < b.MinBatch || sp.MaxBatch > b.MaxBatch {
			res.violatef("control (%s): max-batch setpoint %d outside bounds [%d, %d]",
				name, sp.MaxBatch, b.MinBatch, b.MaxBatch)
		}
		win, err := time.ParseDuration(sp.Window)
		minW, errMin := time.ParseDuration(b.MinWindow)
		maxW, errMax := time.ParseDuration(b.MaxWindow)
		if err != nil || errMin != nil || errMax != nil {
			res.violatef("control (%s): unparseable window status %q in [%q, %q]",
				name, sp.Window, b.MinWindow, b.MaxWindow)
		} else if win < minW || win > maxW {
			res.violatef("control (%s): window setpoint %v outside bounds [%v, %v]", name, win, minW, maxW)
		}
		if st.State == control.StateDegraded && st.Setpoints != st.Static {
			res.violatef("control (%s): degraded but serving %+v instead of the static geometry %+v",
				name, st.Setpoints, st.Static)
		}
	}
}
