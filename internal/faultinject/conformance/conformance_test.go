package conformance

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"testing"

	"bitflow/internal/faultinject"
)

func countStatus(outs []Outcome, status int) int {
	n := 0
	for _, o := range outs {
		if o.Err == nil && o.Status == status {
			n++
		}
	}
	return n
}

func countCode(outs []Outcome, code string) int {
	n := 0
	for _, o := range outs {
		if o.Err == nil && o.Code == code {
			n++
		}
	}
	return n
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("conformance run failed to execute: %v", err)
	}
	if res.Failed() {
		t.Fatal(res.Report())
	}
	return res
}

// TestConformanceSeeds sweeps generated fault schedules over both serving
// modes. Every schedule must leave all invariants intact; a failure
// prints the seed and the exact fault script for replay.
func TestConformanceSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 7}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, batching := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed=%d/batching=%v", seed, batching), func(t *testing.T) {
				cfg := Defaults(seed)
				cfg.Batching = batching
				mustRun(t, cfg)
			})
		}
	}
}

// TestConformanceDeterministic pins the determinism contract: the same
// seed produces the same fault script and the same verdict.
func TestConformanceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double run; skipped in -short")
	}
	a := mustRun(t, Defaults(5))
	b := mustRun(t, Defaults(5))
	if a.Script.String() != b.Script.String() {
		t.Errorf("same seed produced different schedules:\n%s\nvs\n%s", a.Script, b.Script)
	}
	if a.Failed() != b.Failed() {
		t.Errorf("same seed produced different verdicts: %v vs %v", a.Failed(), b.Failed())
	}
}

// TestConformanceRotatingSeed runs the schedule selected by
// BITFLOW_CONFORMANCE_SEED — the nightly CI job sets it to the run ID so
// the fleet walks fresh schedules over time, and a failing seed replays
// locally with the same variable.
func TestConformanceRotatingSeed(t *testing.T) {
	env := os.Getenv("BITFLOW_CONFORMANCE_SEED")
	if env == "" {
		t.Skip("BITFLOW_CONFORMANCE_SEED not set (nightly CI sets it; set it locally to replay a seed)")
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("BITFLOW_CONFORMANCE_SEED=%q is not an integer: %v", env, err)
	}
	for _, batching := range []bool{false, true} {
		t.Run(fmt.Sprintf("batching=%v", batching), func(t *testing.T) {
			cfg := Defaults(seed)
			cfg.Batching = batching
			mustRun(t, cfg)
		})
	}
}

// TestConformanceMultiModelReload sweeps generated fault schedules over
// a two-model server that hot-swaps the default model's version twice
// while the workload runs. Every conservation law is checked per model;
// the reload ledger law accepts swaps and fault-forced rollbacks alike,
// as long as the serving version matches the ledger afterwards.
func TestConformanceMultiModelReload(t *testing.T) {
	seeds := []int64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, batching := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed=%d/batching=%v", seed, batching), func(t *testing.T) {
				cfg := Defaults(seed)
				cfg.Batching = batching
				cfg.Models = 2
				cfg.Reloads = 2
				cfg.Requests = 64
				res := mustRun(t, cfg)
				if len(res.Reloads) != 2 {
					t.Fatalf("reload ledger has %d entries, want 2", len(res.Reloads))
				}
				if len(res.ModelSnapshots) != 2 {
					t.Fatalf("per-model snapshots: %d, want 2", len(res.ModelSnapshots))
				}
			})
		}
	}
}

// TestConformanceAutoscale sweeps generated fault schedules (which may
// hit any point, including control.tick) over servers running the
// adaptive control loop at a fast tick. Setpoint changes and replica
// resizes interleave with the faulted workload; every conservation law
// plus setpoint containment must hold, and the harness additionally
// requires the controller to have actually ticked — an autoscale sweep
// where the loop never ran would be vacuous.
func TestConformanceAutoscale(t *testing.T) {
	seeds := []int64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, batching := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed=%d/batching=%v", seed, batching), func(t *testing.T) {
				cfg := Defaults(seed)
				cfg.Batching = batching
				cfg.Autoscale = true
				res := mustRun(t, cfg)
				st := res.ControlStatuses["conformance"]
				if st == nil {
					t.Fatal("no controller status for the autoscaled model")
				}
				if st.Ticks == 0 {
					t.Error("controller never ticked during the workload")
				}
			})
		}
	}
}

// TestConformanceNoFaults is the control: a nil script must sail through
// with every good request returning 200.
func TestConformanceNoFaults(t *testing.T) {
	cfg := Defaults(11)
	cfg.Script = &faultinject.Script{}
	res := mustRun(t, cfg)
	for i, o := range res.Outcomes {
		if o.Kind == kindGood && o.Status != http.StatusOK {
			t.Errorf("request %d: good request got %d (%s) on a fault-free run", i, o.Status, o.Code)
		}
	}
}
