package exec

import "testing"

func TestClampThreads(t *testing.T) {
	for _, tc := range []struct {
		threads, replicas, cores int
		want                     int
		clamped                  bool
	}{
		{4, 2, 8, 4, false},  // fits exactly
		{4, 2, 16, 4, false}, // plenty of room
		{4, 4, 8, 2, true},   // 16 demanded on 8 cores → 2 each
		{8, 3, 8, 2, true},   // integer division floors
		{4, 16, 8, 1, true},  // more replicas than cores → serial each
		{1, 16, 8, 1, false}, // already serial: nothing to clamp
		{0, 0, 0, 1, false},  // degenerate inputs normalize to 1
		{4, 1, 1, 1, true},   // single-core box

		// Boundary rows: the exact fit/overflow edges and the places the
		// min-1 and never-grow clamps engage.
		{-3, -2, -1, 1, false},  // negative inputs normalize to 1, same as zero
		{2, 2, 4, 2, false},     // threads×replicas == cores: the last fitting point
		{2, 2, 3, 1, true},       // one past the fit: floor(3/2)=1
		{3, 2, 7, 3, false},      // 3×2=6 ≤ 7 still fits despite the remainder
		{1, 1, 1, 1, false},      // minimal everything
		{7, 1, 7, 7, false},      // single replica exactly saturates
		{8, 1, 7, 7, true},       // single replica one over: budget = cores
		{2, 3, 100, 2, false},    // budget never grows past the request
		{100, 100, 100, 1, true}, // square saturation → serial each
	} {
		got, clamped := ClampThreads(tc.threads, tc.replicas, tc.cores)
		if got != tc.want || clamped != tc.clamped {
			t.Errorf("ClampThreads(%d, %d, %d) = (%d, %v), want (%d, %v)",
				tc.threads, tc.replicas, tc.cores, got, clamped, tc.want, tc.clamped)
		}
	}
}
