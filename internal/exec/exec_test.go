package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// covered returns a coverage bitmap filled by running ParallelFor on ec.
func covered(t *testing.T, ec *Ctx, total int) []int32 {
	t.Helper()
	hits := make([]int32, total)
	ec.ParallelFor(total, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	return hits
}

func checkOnce(t *testing.T, hits []int32, label string) {
	t.Helper()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("%s: index %d covered %d times, want exactly 1", label, i, h)
		}
	}
}

// TestParallelForCoversRange proves every index runs exactly once across
// serial, pooled, spawn and nil dispatch, at budgets around the chunk
// boundaries.
func TestParallelForCoversRange(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, total := range []int{1, 2, 7, 64, 1000} {
		for _, ec := range []*Ctx{nil, Serial(), Spawn(4), Pooled(p, 2), Pooled(p, 8), Threads(4)} {
			label := fmt.Sprintf("total=%d budget=%d pool=%v", total, ec.Budget(), ec.Pool() != nil)
			checkOnce(t, covered(t, ec, total), label)
		}
	}
}

// TestParallelForBudgetExceedsTotal covers the threads > total clamp.
func TestParallelForBudgetExceedsTotal(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	checkOnce(t, covered(t, Pooled(p, 64), 5), "budget 64 over total 5")
}

// TestChunkPanicReRaisedOnCaller is the regression test for the old
// parallelFor panic hole: a panic inside a worker chunk must surface as a
// panic on the caller's goroutine (where recover works), not crash the
// process, and the remaining chunks must still complete.
func TestChunkPanicReRaisedOnCaller(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, ec := range []*Ctx{Pooled(p, 4), Spawn(4)} {
		var done atomic.Int32
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			ec.ParallelFor(100, func(start, end int) {
				if start == 0 {
					panic("kernel exploded")
				}
				done.Add(int32(end - start))
			})
		}()
		if recovered != "kernel exploded" {
			t.Fatalf("recovered %v, want the chunk's panic value", recovered)
		}
		if done.Load() != 75 { // chunks of 25; the panicking one covers [0,25)
			t.Fatalf("non-panicking chunks covered %d indices, want 75", done.Load())
		}
	}
}

// TestPoolSharedAcrossCallers runs many concurrent dispatches on one pool
// (the serving topology: replicas share one process-wide pool) and checks
// isolation: each dispatch sees exactly its own range.
func TestPoolSharedAcrossCallers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const callers = 8
	errc := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			ec := Pooled(p, 4)
			for iter := 0; iter < 50; iter++ {
				hits := make([]int32, 97)
				ec.ParallelFor(len(hits), func(start, end int) {
					for i := start; i < end; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						errc <- fmt.Errorf("caller %d iter %d: index %d hit %d times", c, iter, i, h)
						return
					}
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < callers; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDispatchOnClosedPool: a closed pool must degrade to caller-executed
// chunks, never deadlock.
func TestDispatchOnClosedPool(t *testing.T) {
	p := NewPool(2)
	p.Close()
	checkOnce(t, covered(t, Pooled(p, 4), 50), "closed pool")
}

// TestCtxErrAndWithContext: Err is nil without a context, reflects
// cancellation with one, and WithContext derives without mutating.
func TestCtxErrAndWithContext(t *testing.T) {
	base := Threads(2)
	if err := base.Err(); err != nil {
		t.Fatalf("bare ctx Err = %v, want nil", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	derived := base.WithContext(ctx)
	if err := derived.Err(); err != nil {
		t.Fatalf("pre-cancel Err = %v, want nil", err)
	}
	cancel()
	if !errors.Is(derived.Err(), context.Canceled) {
		t.Fatalf("post-cancel Err = %v, want context.Canceled", derived.Err())
	}
	if base.Err() != nil {
		t.Fatal("WithContext mutated its receiver")
	}
	if base.Budget() != derived.Budget() || derived.Pool() != base.Pool() {
		t.Fatal("WithContext dropped dispatch configuration")
	}
}

// TestWithObserver: the derived ctx carries the observer; nil and base
// ctxs do not.
func TestWithObserver(t *testing.T) {
	var calls atomic.Int32
	obs := func(layer, kind string, d time.Duration) { calls.Add(1) }
	ec := Serial().WithObserver(obs)
	if ec.Observer() == nil {
		t.Fatal("observer not attached")
	}
	ec.Observer()("conv1", "conv", time.Millisecond)
	if calls.Load() != 1 {
		t.Fatal("observer not invoked")
	}
	if Serial().Observer() != nil || (*Ctx)(nil).Observer() != nil {
		t.Fatal("unattached ctx reports an observer")
	}
}

// TestNilCtxIsSerial: nil receivers must behave as a serial context.
func TestNilCtxIsSerial(t *testing.T) {
	var ec *Ctx
	if ec.Budget() != 1 || ec.Err() != nil || ec.Pool() != nil || ec.Context() != nil {
		t.Fatal("nil ctx accessors are not serial defaults")
	}
	ran := false
	ec.ParallelFor(3, func(start, end int) {
		if start != 0 || end != 3 {
			t.Fatalf("nil ctx chunk [%d,%d), want [0,3)", start, end)
		}
		ran = true
	})
	if !ran {
		t.Fatal("nil ctx did not run the body")
	}
}

// TestPoolReport: counters move and identity fields are filled.
func TestPoolReport(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.SetSource("test")
	Pooled(p, 2).ParallelFor(100, func(start, end int) {})
	r := p.Report()
	if r.Workers != 2 || r.Source != "test" || r.GOMAXPROCS < 1 || r.NumCPU < 1 {
		t.Fatalf("bad report identity: %+v", r)
	}
	if r.Dispatches < 1 {
		t.Fatalf("dispatches = %d, want ≥ 1", r.Dispatches)
	}
}

// TestDefaultPool: lazily built once, GOMAXPROCS-sized.
func TestDefaultPool(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default() not a singleton")
	}
	if a.Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
}

// TestSerialBitExactChunking: pooled and serial execution must write the
// same values when the body is chunk-independent (the invariant the
// graph's threads-agree tests pin end to end).
func TestSerialBitExactChunking(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const total = 777
	want := make([]int, total)
	Serial().ParallelFor(total, func(s, e int) {
		for i := s; i < e; i++ {
			want[i] = i * i
		}
	})
	got := make([]int, total)
	Pooled(p, 5).ParallelFor(total, func(s, e int) {
		for i := s; i < e; i++ {
			got[i] = i * i
		}
	})
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("index %d: %d vs %d", i, want[i], got[i])
		}
	}
}
