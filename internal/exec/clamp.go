package exec

// ClampThreads bounds a per-replica thread budget so that `replicas`
// concurrent inferences cannot oversubscribe `cores`: when
// threads×replicas exceeds cores it returns the largest budget that
// fits (minimum 1) and reports that clamping occurred. Servers call
// this at startup — the pool already bounds *pooled* parallelism
// structurally, but each inference's caller goroutine runs chunks too,
// so the per-replica budget is what oversubscription rides on.
func ClampThreads(threads, replicas, cores int) (int, bool) {
	if threads < 1 {
		threads = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	if cores < 1 {
		cores = 1
	}
	if threads*replicas <= cores {
		return threads, false
	}
	b := cores / replicas
	if b < 1 {
		b = 1
	}
	if b > threads {
		b = threads
	}
	return b, b != threads
}
