// Package exec is BitFlow's execution-context layer: a persistent worker
// pool (Pool) plus a lightweight dispatch context (Ctx) that together
// replace the old per-call `threads int` plumbing.
//
// The paper's §III-C multi-core story — splitting the fused H·W output
// dimension (conv/pool) and the K dimension (dense) across cores — used
// to be realized by spawning fresh goroutines on every layer of every
// request. That shape has three production problems this package fixes:
//
//   - per-layer goroutine churn dominates the small Table IV operators;
//   - concurrent replicas multiply their thread budgets with nothing
//     bounding total parallelism (core oversubscription);
//   - a panic inside a spawned chunk runs on an unjoined goroutine where
//     no recover can reach it, so one bad request kills the process.
//
// A Pool owns a fixed set of long-lived workers. ParallelFor hands them
// chunks through a claim counter — the caller participates too, so a
// dispatch never blocks on pool availability and total parallelism is
// bounded by workers+callers regardless of how many replicas share the
// pool. Chunk panics are captured in the worker and re-raised on the
// caller's goroutine, so a resilience.Safe boundary above the call
// actually holds.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"bitflow/internal/faultinject"
)

// Pool is a persistent set of worker goroutines that execute ParallelFor
// chunks. Workers are spawned once at construction and live until Close;
// dispatching onto a Pool never spawns. A Pool is safe for concurrent use
// by any number of Ctxs (e.g. every replica of a server sharing one
// process-wide pool).
type Pool struct {
	workers int
	source  string
	jobs    chan *job
	quit    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool

	busy       atomic.Int64 // workers currently running chunks
	dispatches atomic.Int64 // ParallelFor calls routed to this pool
}

// NewPool starts a pool with the given number of persistent workers
// (minimum 1). Size it to the machine's core budget, not per caller: the
// whole point is that many callers share one bounded set of workers.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	//bitflow:alloc-ok pool construction happens once per process, not per inference
	p := &Pool{
		workers: workers,
		source:  "explicit",
		jobs:    make(chan *job, workers),
		quit:    make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// SetSource records where the worker budget came from ("-threads-total",
// "GOMAXPROCS", ...) for diagnostic reports.
func (p *Pool) SetSource(s string) { p.source = s }

// Workers reports the pool's persistent worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers after their current chunks finish. Dispatching
// onto a closed pool is safe: the caller simply runs every chunk itself.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.quit)
		p.wg.Wait()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case j := <-p.jobs:
			p.busy.Add(1)
			j.run()
			p.busy.Add(-1)
		case <-p.quit:
			return
		}
	}
}

// dispatch offers j to at most threads-1 idle workers (non-blocking: a
// busy pool sheds the offer and the caller absorbs the work), then joins
// the claim loop itself.
func (p *Pool) dispatch(j *job, threads int) {
	p.dispatches.Add(1)
	offers := threads - 1
	if offers > p.workers {
		offers = p.workers
	}
offer:
	for i := 0; i < offers; i++ {
		select {
		case p.jobs <- j:
		default:
			break offer
		}
	}
	j.run()
}

// Report is a point-in-time diagnostic view of a pool, printed by
// bitflow-info and embedded in /statusz.
type Report struct {
	Workers    int    `json:"workers"`
	Source     string `json:"source"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Busy       int64  `json:"busy"`
	Dispatches int64  `json:"dispatches"`
}

// Report snapshots the pool's configuration and occupancy counters.
func (p *Pool) Report() Report {
	return Report{
		Workers:    p.workers,
		Source:     p.source,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Busy:       p.busy.Load(),
		Dispatches: p.dispatches.Load(),
	}
}

var (
	defaultPool *Pool
	defaultOnce sync.Once
)

// Default returns the lazily-created process-wide pool, sized to
// GOMAXPROCS. It backs the Network.Threads compatibility shim and any
// caller that wants parallelism without managing a pool of its own.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = NewPool(runtime.GOMAXPROCS(0))
		defaultPool.source = "GOMAXPROCS"
	})
	return defaultPool
}

// job is one ParallelFor dispatch: a body over [0, total) cut into
// fixed-size chunks that caller and workers claim through an atomic
// cursor. pending counts unfinished chunks; fin closes when it hits zero.
type job struct {
	body    func(start, end int)
	total   int
	chunk   int
	fctx    context.Context // dispatching Ctx's cancellation context, for fault hooks
	next    atomic.Int64
	pending atomic.Int64
	fin     chan struct{}

	mu   sync.Mutex
	panv any // first captured chunk panic, re-raised by the caller
}

// run claims and executes chunks until none remain. Safe to call from any
// number of goroutines; late joiners (workers that dequeue the job after
// the work is gone) return immediately.
func (j *job) run() {
	for {
		s := int(j.next.Add(int64(j.chunk))) - j.chunk
		if s >= j.total {
			return
		}
		e := s + j.chunk
		if e > j.total {
			e = j.total
		}
		j.exec(s, e)
		if j.pending.Add(-1) == 0 {
			close(j.fin)
		}
	}
}

// exec runs one chunk, capturing a panic instead of letting it escape on
// a goroutine nobody joins. The first panic value wins; ParallelFor
// re-raises it on the caller's goroutine after the job drains. The
// exec.chunk fault point fires inside the recover scope, so an injected
// worker crash takes exactly the capture-and-re-raise path a real one
// does.
func (j *job) exec(s, e int) {
	defer func() {
		if v := recover(); v != nil {
			j.mu.Lock()
			if j.panv == nil {
				j.panv = v
			}
			j.mu.Unlock()
		}
	}()
	_ = faultinject.ExecChunk.Fire(j.fctx, "", s)
	j.body(s, e)
}
