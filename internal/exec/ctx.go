package exec

import (
	"context"
	"time"

	"bitflow/internal/faultinject"
)

// Observer receives one per-layer timing observation from a graph
// forward pass run under this context. Implementations must be safe for
// concurrent use when the Ctx is shared across replicas.
type Observer func(layer, kind string, d time.Duration)

// Ctx carries everything one inference dispatch needs from the execution
// layer: the thread budget, the pool to dispatch on (or the legacy
// spawn-per-call mode), a context.Context for cancellation, and an
// optional per-layer timing observer.
//
// A Ctx is an immutable value after construction — With* methods return
// derived copies — so one base Ctx can be shared by every replica of a
// server and specialized per request with WithContext. A nil *Ctx is
// valid everywhere and means "serial, uncancellable": operators called
// with nil run inline on the caller's goroutine.
type Ctx struct {
	pool    *Pool
	threads int
	spawn   bool // legacy spawn-per-call dispatch (bench baseline)
	ctx     context.Context
	obs     Observer
}

// Serial returns a context that runs everything inline on the caller's
// goroutine — the threads=1 case of the old plumbing.
func Serial() *Ctx { return &Ctx{threads: 1} } //bitflow:alloc-ok tiny context header; the sanctioned path attaches one via SetExec and reuses it

// Threads returns a context dispatching on the shared default pool with
// the given budget — the drop-in replacement for a raw `threads int`.
func Threads(n int) *Ctx {
	if n <= 1 {
		return Serial()
	}
	//bitflow:alloc-ok tiny context header on the legacy Threads knob; SetExec callers construct once
	return &Ctx{pool: Default(), threads: n}
}

// Pooled returns a context dispatching on p with the given thread budget
// (the budget counts the caller: ParallelFor uses at most n-1 workers).
func Pooled(p *Pool, n int) *Ctx {
	if n <= 1 {
		return Serial()
	}
	return &Ctx{pool: p, threads: n}
}

// Spawn returns a context using the legacy spawn-per-call dispatch: every
// ParallelFor starts fresh goroutines. Kept for the dispatch-overhead
// benchmark (bitflow-bench exec) and as a pool-free fallback; unlike the
// pre-exec code, chunk panics are still captured and re-raised on the
// caller's goroutine.
func Spawn(n int) *Ctx {
	if n <= 1 {
		return Serial()
	}
	return &Ctx{threads: n, spawn: true}
}

// WithContext returns a copy of c whose Err and layer-boundary checks
// observe ctx — how a server threads a per-request deadline through an
// inference without rebuilding the dispatch configuration.
func (c *Ctx) WithContext(ctx context.Context) *Ctx {
	d := c.derive()
	d.ctx = ctx
	return d
}

// WithObserver returns a copy of c that reports per-layer timings to obs.
func (c *Ctx) WithObserver(obs Observer) *Ctx {
	d := c.derive()
	d.obs = obs
	return d
}

// derive copies c, treating nil as Serial.
func (c *Ctx) derive() *Ctx {
	if c == nil {
		return Serial()
	}
	d := *c
	return &d
}

// Budget reports the thread budget (1 for nil or serial contexts) — what
// scaling models and diagnostics used to read from a raw threads int.
func (c *Ctx) Budget() int {
	if c == nil || c.threads < 1 {
		return 1
	}
	return c.threads
}

// Pool returns the pool this context dispatches on, or nil (serial or
// spawn mode).
func (c *Ctx) Pool() *Pool {
	if c == nil {
		return nil
	}
	return c.pool
}

// Context returns the attached cancellation context, or nil.
func (c *Ctx) Context() context.Context {
	if c == nil {
		return nil
	}
	return c.ctx
}

// Observer returns the attached per-layer timing observer, or nil.
func (c *Ctx) Observer() Observer {
	if c == nil {
		return nil
	}
	return c.obs
}

// Err reports the attached context's cancellation state; nil when no
// context is attached. Graph forward passes check it between layers so a
// cancelled request stops within one layer's latency.
func (c *Ctx) Err() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// ParallelFor splits [0, total) into at most Budget() contiguous chunks
// and runs body over them, blocking until all complete — the multi-core
// engine for the paper's fused-H·W (conv/pool) and K (dense) splits.
// Chunk boundaries are the same as the old per-call plumbing used, and
// chunks never overlap, so outputs are bit-identical at any budget.
//
// A chunk panic is captured where it happens and re-raised here, on the
// caller's goroutine, once every other chunk has finished — so a
// recover/resilience.Safe above this call observes it and the process
// survives. A nil or serial context runs body(0, total) inline.
func (c *Ctx) ParallelFor(total int, body func(start, end int)) {
	threads := c.Budget()
	if threads <= 1 || total <= 1 {
		_ = faultinject.ExecChunk.Fire(c.Context(), "", 0)
		body(0, total)
		return
	}
	if threads > total {
		threads = total
	}
	chunk := (total + threads - 1) / threads
	nchunks := (total + chunk - 1) / chunk
	if nchunks <= 1 {
		_ = faultinject.ExecChunk.Fire(c.Context(), "", 0)
		body(0, total)
		return
	}
	//bitflow:alloc-ok one job header + completion channel per parallel region, needed for claim-loop state and panic propagation
	j := &job{body: body, total: total, chunk: chunk, fctx: c.Context(), fin: make(chan struct{})}
	j.pending.Store(int64(nchunks))
	if c.spawn || c.pool == nil {
		for i := 1; i < nchunks; i++ {
			go j.run()
		}
		j.run()
	} else {
		c.pool.dispatch(j, threads)
	}
	<-j.fin
	if j.panv != nil {
		panic(j.panv)
	}
}
