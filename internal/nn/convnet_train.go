package nn

import (
	"math"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// convGrads holds one gradient accumulator set for a ConvNet.
type convGrads struct {
	cw []*tensor.Filter
	cb [][]float32
	dw []*tensor.Matrix
	db [][]float32
}

func (n *ConvNet) newGrads() *convGrads {
	g := &convGrads{}
	for _, blk := range n.convs {
		g.cw = append(g.cw, tensor.NewFilter(blk.w.K, 3, 3, blk.w.C))
		g.cb = append(g.cb, make([]float32, blk.w.K))
	}
	for _, ly := range n.dense {
		g.dw = append(g.dw, tensor.NewMatrix(ly.w.Rows, ly.w.Cols))
		g.db = append(g.db, make([]float32, len(ly.b)))
	}
	return g
}

func (g *convGrads) zero() {
	for _, f := range g.cw {
		clear(f.Data)
	}
	for _, b := range g.cb {
		clear(b)
	}
	for _, m := range g.dw {
		clear(m.Data)
	}
	for _, b := range g.db {
		clear(b)
	}
}

// steMask returns the straight-through / tanh activation derivative.
func (n *ConvNet) actDeriv(z float32) float32 {
	if n.Binarize {
		if z > 1 || z < -1 {
			return 0
		}
		return 1
	}
	t := float32(math.Tanh(float64(z)))
	return 1 - t*t
}

// grads accumulates one sample's gradients and returns its loss.
func (n *ConvNet) grads(x *tensor.Tensor, y int, g *convGrads) float64 {
	convs, zs, hs := n.forward(x)

	// Dense head backward (mirrors MLP.grads).
	last := len(n.dense) - 1
	delta := make([]float32, n.dense[last].w.Cols)
	loss := softmaxGrad(zs[last], y, delta)
	for l := last; l >= 0; l-- {
		ly := n.dense[l]
		in, out := ly.w.Rows, ly.w.Cols
		input := hs[l]
		for i := 0; i < in; i++ {
			xi := input[i]
			if xi == 0 {
				continue
			}
			grow := g.dw[l].Data[i*out : (i+1)*out]
			for j, dj := range delta {
				grow[j] += xi * dj
			}
		}
		for j, dj := range delta {
			g.db[l][j] += dj
		}
		prev := make([]float32, in)
		for i := 0; i < in; i++ {
			row := ly.w.Data[i*out : (i+1)*out]
			var acc float32
			for j, dj := range delta {
				acc += dj * n.effW(row[j])
			}
			prev[i] = acc
		}
		if l > 0 {
			z := zs[l-1]
			for i := range prev {
				prev[i] *= n.actDeriv(z[i])
			}
			delta = prev
		} else {
			delta = prev // gradient on the flattened conv output
		}
	}

	// Conv stages backward.
	if len(n.convs) == 0 {
		return loss
	}
	lastConv := convs[len(convs)-1]
	dOut := tensor.FromSlice(lastConv.out.H, lastConv.out.W, lastConv.out.C, delta)
	for l := len(n.convs) - 1; l >= 0; l-- {
		blk := n.convs[l]
		cc := convs[l]
		// Pool backward: route gradients to the argmax positions.
		var dA *tensor.Tensor
		if blk.pool {
			dA = tensor.New(cc.a.H, cc.a.W, cc.a.C)
			for o, idx := range cc.amax {
				dA.Data[idx] += dOut.Data[o]
			}
		} else {
			dA = dOut
		}
		// Activation backward.
		dZ := dA // reuse storage: dA is ours except when !pool and l is last... dOut was ours in all cases
		for i := range dZ.Data {
			dZ.Data[i] *= n.actDeriv(cc.z.Data[i])
		}
		// Bias gradient.
		for i, v := range dZ.Data {
			g.cb[l][i%blk.w.K] += v
		}
		// Weight gradient and input gradient.
		var dIn *tensor.Tensor
		needInput := l > 0
		if needInput {
			dIn = tensor.New(cc.in.H, cc.in.W, cc.in.C)
		}
		pad := n.padValue()
		gw := g.cw[l]
		for yy := 0; yy < dZ.H; yy++ {
			for xx := 0; xx < dZ.W; xx++ {
				dz := dZ.Pixel(yy, xx)
				for i := 0; i < 3; i++ {
					sy := yy + i - 1
					inBounds := sy >= 0 && sy < cc.in.H
					for j := 0; j < 3; j++ {
						sx := xx + j - 1
						if !inBounds || sx < 0 || sx >= cc.in.W {
							if pad != 0 {
								for kk, dzk := range dz {
									if dzk == 0 {
										continue
									}
									tap := gw.Tap(kk, i, j)
									for c := range tap {
										tap[c] += pad * dzk
									}
								}
							}
							continue
						}
						px := cc.in.Pixel(sy, sx)
						for kk, dzk := range dz {
							if dzk == 0 {
								continue
							}
							tap := gw.Tap(kk, i, j)
							wtap := blk.w.Tap(kk, i, j)
							if needInput {
								din := dIn.Pixel(sy, sx)
								for c := range tap {
									tap[c] += px[c] * dzk
									din[c] += n.effW(wtap[c]) * dzk
								}
							} else {
								for c := range tap {
									tap[c] += px[c] * dzk
								}
							}
						}
					}
				}
			}
		}
		if !needInput {
			break
		}
		// The block input was the previous block's post-pool activation;
		// its sign/tanh derivative is applied in the previous iteration
		// (dIn here is the gradient on that output).
		dOut = dIn
	}
	return loss
}

// Train runs minibatch SGD; binarized networks clip latent weights to
// [−1, 1] after every step. Returns the final epoch's mean loss.
func (n *ConvNet) Train(d ImageDataset, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 || d.Len() == 0 {
		return 0
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	r := workload.NewRNG(cfg.Seed)
	g := n.newGrads()
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := len(order) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			g.zero()
			for _, idx := range order[start:end] {
				epochLoss += n.grads(d.X[idx], d.Y[idx], g)
			}
			n.step(g, cfg.LR/float32(end-start))
		}
		lastLoss = epochLoss / float64(d.Len())
	}
	return lastLoss
}

func (n *ConvNet) step(g *convGrads, lr float32) {
	clip := func(w []float32, grad []float32) {
		for i := range w {
			w[i] -= lr * grad[i]
			if n.Binarize {
				if w[i] > 1 {
					w[i] = 1
				} else if w[i] < -1 {
					w[i] = -1
				}
			}
		}
	}
	for l := range n.convs {
		clip(n.convs[l].w.Data, g.cw[l].Data)
		for i := range n.convs[l].b {
			n.convs[l].b[i] -= lr * g.cb[l][i]
		}
	}
	for l := range n.dense {
		clip(n.dense[l].w.Data, g.dw[l].Data)
		for i := range n.dense[l].b {
			n.dense[l].b[i] -= lr * g.db[l][i]
		}
	}
}
