// Package nn reproduces the *shape* of paper Table V: training the same
// architecture in full precision and binarized (BinaryConnect/BinaryNet
// style: sign-binarized weights and activations in the forward pass,
// straight-through estimator gradients) and comparing test accuracy. The
// paper trains VGG on MNIST/CIFAR-10/ImageNet; those datasets are not
// available offline, so the experiment runs on synthetic classification
// tasks of increasing difficulty — the claim under reproduction is the
// small-but-widening accuracy gap, not the absolute numbers (DESIGN.md §2).
package nn

import (
	"math"

	"bitflow/internal/workload"
)

// Dataset is a labelled classification set.
type Dataset struct {
	X       [][]float32
	Y       []int
	Dim     int
	Classes int
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.X) }

// Split partitions the dataset into train/test with the first
// ⌊frac·n⌋ samples training (callers shuffle via generation order; the
// generators below interleave classes, so a prefix split is stratified).
func (d Dataset) Split(frac float64) (train, test Dataset) {
	n := int(frac * float64(d.Len()))
	train = Dataset{X: d.X[:n], Y: d.Y[:n], Dim: d.Dim, Classes: d.Classes}
	test = Dataset{X: d.X[n:], Y: d.Y[n:], Dim: d.Dim, Classes: d.Classes}
	return
}

// Clusters generates the "easy" task (MNIST stand-in): well-separated
// Gaussian clusters, one per class, in dim dimensions.
func Clusters(r *workload.RNG, n, dim, classes int, spread float64) Dataset {
	return clusters(r, n, dim, classes, spread, 4.0)
}

// HardClusters generates the "hard" task (ImageNet stand-in): many
// classes whose means sit close together relative to their spread, so
// class regions overlap heavily.
func HardClusters(r *workload.RNG, n, dim, classes int) Dataset {
	return clusters(r, n, dim, classes, 2.0, 1.6)
}

func clusters(r *workload.RNG, n, dim, classes int, spread, sep float64) Dataset {
	means := make([][]float64, classes)
	for c := range means {
		m := make([]float64, dim)
		for i := range m {
			m[i] = sep * r.Norm()
		}
		means[c] = m
	}
	d := Dataset{Dim: dim, Classes: classes}
	for i := 0; i < n; i++ {
		c := i % classes // interleaved → prefix splits are stratified
		x := make([]float32, dim)
		for j := 0; j < dim; j++ {
			x[j] = float32(means[c][j] + spread*r.Norm())
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	return d
}

// Rings generates the "medium" task (CIFAR-10 stand-in): concentric
// rings in the first two dimensions — not linearly separable — plus
// noise dimensions. Ring geometry is genuinely harder for a binarized
// network than for a float one (sign-constrained first-layer weights
// approximate radial boundaries poorly), which is exactly the regime the
// medium row of Table V probes.
func Rings(r *workload.RNG, n, dim, classes int) Dataset {
	if dim < 2 {
		dim = 2
	}
	d := Dataset{Dim: dim, Classes: classes}
	for i := 0; i < n; i++ {
		c := i % classes
		radius := 2.0*float64(c) + 1
		angle := 2 * math.Pi * r.Float64()
		x := make([]float32, dim)
		x[0] = float32(radius*math.Cos(angle) + 0.2*r.Norm())
		x[1] = float32(radius*math.Sin(angle) + 0.2*r.Norm())
		for j := 2; j < dim; j++ {
			x[j] = float32(0.3 * r.Norm())
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	return d
}

// ClustersWithSep exposes the cluster generator with explicit spread and
// separation, for calibration of intermediate difficulties.
func ClustersWithSep(r *workload.RNG, n, dim, classes int, spread, sep float64) Dataset {
	return clusters(r, n, dim, classes, spread, sep)
}
