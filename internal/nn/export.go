package nn

import (
	"fmt"

	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// Export compiles a trained, fully binarized MLP into a packed inference
// Network (the train → deploy path: the returned network can be saved
// with Network.Save and later Loaded on any machine).
//
// Requirements: m.Binarize and m.BinarizeInput must be set — the packed
// engine's layers consume and produce bits, so the float-input first
// layer of a standard BNN cannot be represented. Biases fold into
// integer sign thresholds (hidden layers) and a float affine (the
// classifier); the network's logits equal m.Logits exactly (±1 products
// are integers, exactly representable in float32).
func Export(m *MLP, name string, feat sched.Features) (*graph.Network, error) {
	if !m.Binarize || !m.BinarizeInput {
		return nil, fmt.Errorf("nn: Export requires Binarize and BinarizeInput (got %v, %v)", m.Binarize, m.BinarizeInput)
	}
	if len(m.layers) == 0 {
		return nil, fmt.Errorf("nn: empty network")
	}
	b := graph.NewBuilder(name, 1, 1, m.layers[0].w.Rows, feat)
	src := &mlpSource{m: m}
	for l := range m.layers {
		b.Dense(layerName(l), m.layers[l].w.Cols)
	}
	return b.Build(src)
}

func layerName(l int) string { return fmt.Sprintf("layer%d", l) }

// mlpSource adapts a trained MLP's latent weights and biases to the
// graph's weight interfaces. The graph sign-binarizes the latent weights
// exactly as the MLP's forward pass does.
type mlpSource struct {
	m *MLP
}

func (s *mlpSource) ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error) {
	return nil, fmt.Errorf("nn: MLP export has no conv layers (asked for %q)", name)
}

func (s *mlpSource) DenseMatrix(name string, n, k int) (*tensor.Matrix, error) {
	l, err := s.layerFor(name)
	if err != nil {
		return nil, err
	}
	w := s.m.layers[l].w
	if w.Rows != n || w.Cols != k {
		return nil, fmt.Errorf("nn: layer %q is %dx%d, graph asked for %dx%d", name, w.Rows, w.Cols, n, k)
	}
	return w, nil
}

// DenseBias satisfies graph.BiasSource: the trained biases fold into
// thresholds/affine at build time.
func (s *mlpSource) DenseBias(name string, k int) ([]float32, error) {
	l, err := s.layerFor(name)
	if err != nil {
		return nil, err
	}
	b := s.m.layers[l].b
	if len(b) != k {
		return nil, fmt.Errorf("nn: layer %q bias has %d entries, graph asked for %d", name, len(b), k)
	}
	return b, nil
}

// ConvBias satisfies graph.BiasSource; never used for MLPs.
func (s *mlpSource) ConvBias(name string, k int) ([]float32, error) {
	return nil, fmt.Errorf("nn: MLP export has no conv layers (asked for %q)", name)
}

func (s *mlpSource) layerFor(name string) (int, error) {
	var l int
	if _, err := fmt.Sscanf(name, "layer%d", &l); err != nil || l < 0 || l >= len(s.m.layers) {
		return 0, fmt.Errorf("nn: unknown export layer %q", name)
	}
	return l, nil
}
