package nn

import (
	"testing"

	"bitflow/internal/workload"
)

func TestDatasetDeterminism(t *testing.T) {
	a := Clusters(workload.NewRNG(9), 100, 8, 3, 1.0)
	b := Clusters(workload.NewRNG(9), 100, 8, 3, 1.0)
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("features differ")
			}
		}
	}
}

func TestHardClustersHarderThanEasy(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	cfg := TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Seed: 10}
	r1 := workload.NewRNG(11)
	easy := Clusters(r1, 1200, 16, 4, 1.0)
	r2 := workload.NewRNG(11)
	hard := HardClusters(r2, 1200, 16, 4)

	accOn := func(d Dataset) float64 {
		train, test := d.Split(0.8)
		m := NewMLP(workload.NewRNG(12), []int{16, 32, 4}, false)
		m.Train(train, cfg)
		return m.Accuracy(test)
	}
	if ae, ah := accOn(easy), accOn(hard); ah >= ae {
		t.Errorf("hard (%.3f) should score below easy (%.3f) for the same float model", ah, ae)
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	cfg := DefaultTrainConfig()
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		t.Errorf("bad defaults %+v", cfg)
	}
}

func TestTrainNoopCases(t *testing.T) {
	r := workload.NewRNG(13)
	m := NewMLP(r, []int{4, 2}, false)
	if loss := m.Train(Dataset{}, DefaultTrainConfig()); loss != 0 {
		t.Error("empty dataset should be a no-op")
	}
	d := Clusters(r, 20, 4, 2, 1.0)
	if loss := m.Train(d, TrainConfig{Epochs: 0}); loss != 0 {
		t.Error("zero epochs should be a no-op")
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	r := workload.NewRNG(14)
	m := NewMLP(r, []int{4, 2}, false)
	if m.Accuracy(Dataset{}) != 0 {
		t.Error("empty dataset accuracy should be 0")
	}
	cn := NewConvNet(r, 4, 4, 1, []ConvSpec{{Filters: 2}}, nil, 2, false)
	if cn.Accuracy(ImageDataset{}) != 0 {
		t.Error("empty image dataset accuracy should be 0")
	}
}

func TestCompareResultGap(t *testing.T) {
	c := CompareResult{FullPrecision: 0.9, Binarized: 0.85}
	if g := c.Gap(); g < 4.99 || g > 5.01 {
		t.Errorf("Gap = %v want 5", g)
	}
}

func TestExportLayerNameParsing(t *testing.T) {
	r := workload.NewRNG(15)
	m := NewMLP(r, []int{4, 3, 2}, true)
	m.BinarizeInput = true
	src := &mlpSource{m: m}
	if _, err := src.DenseMatrix("layer0", 4, 3); err != nil {
		t.Errorf("layer0: %v", err)
	}
	if _, err := src.DenseMatrix("layer9", 4, 3); err == nil {
		t.Error("layer9 should not resolve")
	}
	if _, err := src.DenseMatrix("banana", 4, 3); err == nil {
		t.Error("bad name should not resolve")
	}
	if _, err := src.DenseMatrix("layer0", 5, 3); err == nil {
		t.Error("wrong dims should error")
	}
	if _, err := src.ConvFilter("conv0", 1, 3, 3, 1); err == nil {
		t.Error("MLP source has no convs")
	}
}
