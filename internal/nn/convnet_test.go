package nn

import (
	"math"
	"testing"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// TestConvNetGradCheck verifies the conv/pool/dense backward pass against
// finite differences on the float path.
func TestConvNetGradCheck(t *testing.T) {
	r := workload.NewRNG(150)
	n := NewConvNet(r, 6, 6, 2, []ConvSpec{{Filters: 3, Pool: true}}, []int{5}, 2, false)
	x := workload.RandTensor(r, 6, 6, 2)
	y := 1

	g := n.newGrads()
	n.grads(x, y, g)

	loss := func() float64 {
		z := n.Logits(x)
		tmp := make([]float32, len(z))
		return softmaxGrad(z, y, tmp)
	}
	const eps = 1e-3
	check := func(name string, p *float32, analytic float32) {
		t.Helper()
		orig := *p
		*p = orig + eps
		lp := loss()
		*p = orig - eps
		lm := loss()
		*p = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - float64(analytic)); diff > 6e-2*(1+math.Abs(numeric)) {
			t.Errorf("%s: numeric %g analytic %g", name, numeric, analytic)
		}
	}
	for _, idx := range []int{0, 7, 20, 41, 53} {
		check("conv w", &n.convs[0].w.Data[idx], g.cw[0].Data[idx])
	}
	check("conv b", &n.convs[0].b[1], g.cb[0][1])
	for _, idx := range []int{0, 11, 40} {
		check("dense0 w", &n.dense[0].w.Data[idx], g.dw[0].Data[idx])
	}
	check("dense0 b", &n.dense[0].b[3], g.db[0][3])
	for _, idx := range []int{0, 6} {
		check("dense1 w", &n.dense[1].w.Data[idx], g.dw[1].Data[idx])
	}
	check("dense1 b", &n.dense[1].b[0], g.db[1][0])
}

// TestConvNetGradCheckTwoBlocks exercises the conv→conv input-gradient
// path (dIn flowing through a second block).
func TestConvNetGradCheckTwoBlocks(t *testing.T) {
	r := workload.NewRNG(151)
	n := NewConvNet(r, 4, 4, 1, []ConvSpec{{Filters: 2}, {Filters: 3, Pool: true}}, nil, 2, false)
	x := workload.RandTensor(r, 4, 4, 1)
	y := 0
	g := n.newGrads()
	n.grads(x, y, g)
	loss := func() float64 {
		z := n.Logits(x)
		tmp := make([]float32, len(z))
		return softmaxGrad(z, y, tmp)
	}
	const eps = 1e-3
	// Check the FIRST block's weights — their gradient flows through the
	// second conv, its activation, and the pool.
	for _, idx := range []int{0, 5, 11, 17} {
		p := &n.convs[0].w.Data[idx]
		analytic := g.cw[0].Data[idx]
		orig := *p
		*p = orig + eps
		lp := loss()
		*p = orig - eps
		lm := loss()
		*p = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - float64(analytic)); diff > 6e-2*(1+math.Abs(numeric)) {
			t.Errorf("conv0 w[%d]: numeric %g analytic %g", idx, numeric, analytic)
		}
	}
}

func TestStripesDataset(t *testing.T) {
	r := workload.NewRNG(152)
	d := Stripes(r, 200, 12, 4)
	if d.Len() != 200 || d.H != 12 || d.Classes != 4 {
		t.Fatalf("dataset %+v", d)
	}
	counts := make([]int, 4)
	for _, y := range d.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 50 {
			t.Errorf("class %d count %d", c, n)
		}
	}
	train, test := d.Split(0.8)
	if train.Len() != 160 || test.Len() != 40 {
		t.Error("split sizes wrong")
	}
}

func TestFloatConvNetLearnsStripes(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	r := workload.NewRNG(153)
	d := Stripes(r, 600, 8, 3)
	train, test := d.Split(0.8)
	n := NewConvNet(workload.NewRNG(154), 8, 8, 1, []ConvSpec{{Filters: 8, Pool: true}}, []int{16}, 3, false)
	n.Train(train, TrainConfig{Epochs: 12, BatchSize: 16, LR: 0.05, Seed: 155})
	if acc := n.Accuracy(test); acc < 0.85 {
		t.Errorf("float convnet accuracy %.3f < 0.85", acc)
	}
}

func TestBinarizedConvNetLearnsStripes(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	r := workload.NewRNG(156)
	d := Stripes(r, 600, 8, 3)
	train, test := d.Split(0.8)
	n := NewConvNet(workload.NewRNG(157), 8, 8, 1, []ConvSpec{{Filters: 16, Pool: true}}, []int{32}, 3, true)
	n.BinarizeInput = true
	n.Train(train, TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.05, Seed: 158})
	if acc := n.Accuracy(test); acc < 0.7 {
		t.Errorf("binarized convnet accuracy %.3f < 0.7", acc)
	}
}

func TestExportConvNetBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	r := workload.NewRNG(159)
	d := Stripes(r, 400, 8, 3)
	// 64 filters so the flatten contiguity requirement holds.
	n := NewConvNet(workload.NewRNG(160), 8, 8, 1, []ConvSpec{{Filters: 64, Pool: true}}, []int{32}, 3, true)
	n.BinarizeInput = true
	n.Train(d, TrainConfig{Epochs: 4, BatchSize: 16, LR: 0.05, Seed: 161})

	net, err := ExportConvNet(n, "convnet", exportFeat())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		want := n.Logits(d.X[i])
		got := net.Infer(d.X[i])
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("sample %d logit %d: engine %v trainer %v", i, c, got[c], want[c])
			}
		}
	}
}

func TestExportConvNetRequirements(t *testing.T) {
	r := workload.NewRNG(162)
	floatNet := NewConvNet(r, 8, 8, 1, []ConvSpec{{Filters: 64}}, nil, 2, false)
	if _, err := ExportConvNet(floatNet, "x", exportFeat()); err == nil {
		t.Error("float convnet export: expected error")
	}
	badChannels := NewConvNet(r, 8, 8, 1, []ConvSpec{{Filters: 24}}, nil, 2, true)
	badChannels.BinarizeInput = true
	if _, err := ExportConvNet(badChannels, "x", exportFeat()); err == nil {
		t.Error("non-multiple-of-64 channels at flatten: expected error")
	}
}

func TestMaxPoolArg(t *testing.T) {
	a := tensor.FromSlice(2, 2, 1, []float32{1, 5, 3, 2})
	out, amax := maxPoolArg(a)
	if out.H != 1 || out.W != 1 || out.Data[0] != 5 {
		t.Fatalf("pool out %v", out.Data)
	}
	if amax[0] != 1 {
		t.Errorf("argmax %d", amax[0])
	}
}

func TestConvNetPadValueSemantics(t *testing.T) {
	r := workload.NewRNG(163)
	// Binarized mode pads −1; an all-ones filter over an all-ones image
	// must produce corner value 4·1 + 5·(−1) + b = −1 + b per filter.
	n := NewConvNet(r, 3, 3, 1, []ConvSpec{{Filters: 1}}, nil, 2, true)
	n.BinarizeInput = true
	for i := range n.convs[0].w.Data {
		n.convs[0].w.Data[i] = 1
	}
	n.convs[0].b[0] = 0
	x := tensor.New(3, 3, 1)
	x.Fill(1)
	convs, _, _ := n.forward(x)
	if got := convs[0].z.At(0, 0, 0); got != -1 {
		t.Errorf("corner pre-activation %v want -1 (pad must be -1)", got)
	}
	if got := convs[0].z.At(1, 1, 0); got != 9 {
		t.Errorf("center pre-activation %v want 9", got)
	}
}
