package nn

import (
	"fmt"
	"math"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// ConvNet is a small trainable convolutional classifier: conv(3×3,
// stride 1, pad 1) blocks with optional 2×2/2 max-pooling, then a dense
// head. Like MLP it trains either in full precision (tanh activations)
// or fully binarized (sign weights/activations forward, straight-through
// estimator backward, BinaryConnect weight clipping) — the architecture
// family the paper's VGG benchmarks come from, at laptop scale.
//
// In binarized mode spatial padding uses value −1, matching the engine's
// bit-level zero padding, so a trained network exports bit-exactly
// (ExportConvNet).
type ConvNet struct {
	Binarize bool
	// BinarizeInput applies sign() to the input image (required for
	// export: the engine's binary conv consumes bits).
	BinarizeInput bool

	InH, InW, InC int

	convs []convBlock
	dense []mlpLayer
}

// convBlock is one conv(+pool) stage. Weights are latent floats.
type convBlock struct {
	w    *tensor.Filter // K×3×3×C
	b    []float32
	pool bool // 2×2/2 max pool after the activation
}

// ConvSpec describes one conv block for NewConvNet.
type ConvSpec struct {
	Filters int
	Pool    bool
}

// NewConvNet builds a network: each ConvSpec is a 3×3/1/1 convolution
// (plus optional pool), then hidden dense sizes, then `classes` outputs.
func NewConvNet(r *workload.RNG, inH, inW, inC int, convs []ConvSpec, hidden []int, classes int, binarize bool) *ConvNet {
	n := &ConvNet{Binarize: binarize, InH: inH, InW: inW, InC: inC}
	h, w, c := inH, inW, inC
	for _, cs := range convs {
		scale := float32(math.Sqrt(6 / float64(9*c+9*cs.Filters)))
		f := tensor.NewFilter(cs.Filters, 3, 3, c)
		for i := range f.Data {
			f.Data[i] = scale * (2*r.Float32() - 1)
		}
		n.convs = append(n.convs, convBlock{w: f, b: make([]float32, cs.Filters), pool: cs.Pool})
		c = cs.Filters
		if cs.Pool {
			h /= 2
			w /= 2
		}
	}
	sizes := append(append([]int{h * w * c}, hidden...), classes)
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		scale := float32(math.Sqrt(6 / float64(in+out)))
		wm := tensor.NewMatrix(in, out)
		for i := range wm.Data {
			wm.Data[i] = scale * (2*r.Float32() - 1)
		}
		n.dense = append(n.dense, mlpLayer{w: wm, b: make([]float32, out)})
	}
	return n
}

// effW binarizes a weight in binary mode.
func (n *ConvNet) effW(v float32) float32 {
	if !n.Binarize {
		return v
	}
	if v >= 0 {
		return 1
	}
	return -1
}

// padValue is the spatial padding: −1 in binarized mode (bit-level zero
// padding decodes to −1), 0 in float mode.
func (n *ConvNet) padValue() float32 {
	if n.Binarize {
		return -1
	}
	return 0
}

// convCache holds per-block forward state for backprop.
type convCache struct {
	in   *tensor.Tensor // block input (post previous activation/pool)
	z    *tensor.Tensor // pre-activation
	a    *tensor.Tensor // post-activation
	out  *tensor.Tensor // post-pool (== a when pool is false)
	amax []int          // pool argmax: flat index into a, per out element
}

// forward runs one sample through the conv stages and dense head.
func (n *ConvNet) forward(x *tensor.Tensor) (convs []convCache, zs [][]float32, hs [][]float32) {
	cur := x
	if n.BinarizeInput {
		cur = x.Sign()
	}
	for _, blk := range n.convs {
		cc := convCache{in: cur}
		cc.z = n.convForward(cur, blk)
		cc.a = tensor.New(cc.z.H, cc.z.W, cc.z.C)
		for i, v := range cc.z.Data {
			if n.Binarize {
				if v >= 0 {
					cc.a.Data[i] = 1
				} else {
					cc.a.Data[i] = -1
				}
			} else {
				cc.a.Data[i] = float32(math.Tanh(float64(v)))
			}
		}
		if blk.pool {
			cc.out, cc.amax = maxPoolArg(cc.a)
		} else {
			cc.out = cc.a
		}
		convs = append(convs, cc)
		cur = cc.out
	}
	// Dense head over the flattened activation.
	flat := cur.Data
	hs = append(hs, flat)
	vec := flat
	for l, ly := range n.dense {
		in, out := ly.w.Rows, ly.w.Cols
		if len(vec) != in {
			panic(fmt.Sprintf("nn: convnet dense %d input %d want %d", l, len(vec), in))
		}
		z := make([]float32, out)
		for i, xi := range vec {
			if xi == 0 {
				continue
			}
			row := ly.w.Data[i*out : (i+1)*out]
			for j, wj := range row {
				z[j] += xi * n.effW(wj)
			}
		}
		for j := range z {
			z[j] += ly.b[j]
		}
		zs = append(zs, z)
		if l == len(n.dense)-1 {
			break
		}
		h := make([]float32, out)
		for j, v := range z {
			if n.Binarize {
				if v >= 0 {
					h[j] = 1
				} else {
					h[j] = -1
				}
			} else {
				h[j] = float32(math.Tanh(float64(v)))
			}
		}
		hs = append(hs, h)
		vec = h
	}
	return convs, zs, hs
}

// convForward computes conv3×3/1/1 + bias with this network's weight
// binarization and pad value.
func (n *ConvNet) convForward(in *tensor.Tensor, blk convBlock) *tensor.Tensor {
	k := blk.w.K
	out := tensor.New(in.H, in.W, k)
	pad := n.padValue()
	for y := 0; y < in.H; y++ {
		for x := 0; x < in.W; x++ {
			dst := out.Pixel(y, x)
			for kk := 0; kk < k; kk++ {
				var acc float32
				for i := 0; i < 3; i++ {
					sy := y + i - 1
					for j := 0; j < 3; j++ {
						sx := x + j - 1
						tap := blk.w.Tap(kk, i, j)
						if sy < 0 || sy >= in.H || sx < 0 || sx >= in.W {
							if pad != 0 {
								for c := range tap {
									acc += pad * n.effW(tap[c])
								}
							}
							continue
						}
						px := in.Pixel(sy, sx)
						for c := range tap {
							acc += px[c] * n.effW(tap[c])
						}
					}
				}
				dst[kk] = acc + blk.b[kk]
			}
		}
	}
	return out
}

// maxPoolArg performs 2×2/2 max pooling, returning the output and the
// flat argmax index per output element.
func maxPoolArg(a *tensor.Tensor) (*tensor.Tensor, []int) {
	oh, ow := a.H/2, a.W/2
	out := tensor.New(oh, ow, a.C)
	amax := make([]int, oh*ow*a.C)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for c := 0; c < a.C; c++ {
				best := float32(math.Inf(-1))
				bestIdx := 0
				for i := 0; i < 2; i++ {
					for j := 0; j < 2; j++ {
						idx := ((2*y+i)*a.W+(2*x+j))*a.C + c
						if v := a.Data[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				o := (y*ow+x)*a.C + c
				out.Data[o] = best
				amax[o] = bestIdx
			}
		}
	}
	return out, amax
}

// Logits returns the raw class scores for one image.
func (n *ConvNet) Logits(x *tensor.Tensor) []float32 {
	_, zs, _ := n.forward(x)
	return zs[len(zs)-1]
}

// Predict returns the argmax class.
func (n *ConvNet) Predict(x *tensor.Tensor) int {
	logits := n.Logits(x)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// Accuracy evaluates on an image dataset.
func (n *ConvNet) Accuracy(d ImageDataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		if n.Predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}
