package nn

import (
	"bytes"
	"testing"

	"bitflow/internal/graph"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func exportFeat() sched.Features {
	return sched.Features{Arch: "test", MaxWidth: kernels.W512, HWPopcount: true}
}

func trainedBinaryMLP(t *testing.T, seed uint64, sizes []int) (*MLP, Dataset) {
	t.Helper()
	r := workload.NewRNG(seed)
	d := Clusters(r, 800, sizes[0], sizes[len(sizes)-1], 1.0)
	m := NewMLP(workload.NewRNG(seed+1), sizes, true)
	m.BinarizeInput = true
	m.Train(d, TrainConfig{Epochs: 12, BatchSize: 16, LR: 0.05, Seed: seed + 2})
	return m, d
}

func TestExportMatchesMLPLogitsExactly(t *testing.T) {
	m, d := trainedBinaryMLP(t, 90, []int{24, 40, 4})
	net, err := Export(m, "exported", exportFeat())
	if err != nil {
		t.Fatal(err)
	}
	if net.Classes != 4 {
		t.Fatalf("classes %d", net.Classes)
	}
	for i := 0; i < 50; i++ {
		x := d.X[i]
		want := m.Logits(x)
		got := net.Infer(tensor.FromSlice(1, 1, len(x), x))
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("sample %d logit %d: engine %v trainer %v", i, c, got[c], want[c])
			}
		}
	}
}

func TestExportPredictionsAgreeOnDataset(t *testing.T) {
	m, d := trainedBinaryMLP(t, 91, []int{16, 32, 3})
	net, err := Export(m, "exported", exportFeat())
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X[:200] {
		want := m.Predict(x)
		logits := net.Infer(tensor.FromSlice(1, 1, len(x), x))
		got := 0
		for c, v := range logits {
			if v > logits[got] {
				got = c
			}
		}
		if got != want {
			t.Fatalf("sample %d: engine class %d trainer class %d", i, got, want)
		}
	}
}

func TestExportSaveLoadInferencePipeline(t *testing.T) {
	// The full deployment path: train → export → save → load → infer.
	m, d := trainedBinaryMLP(t, 92, []int{16, 24, 3})
	net, err := Export(m, "pipeline", exportFeat())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.Load(&buf, exportFeat().WithMaxWidth(kernels.W64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		x := d.X[i]
		want := m.Logits(x)
		got := loaded.Infer(tensor.FromSlice(1, 1, len(x), x))
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("sample %d logit %d: loaded %v trainer %v", i, c, got[c], want[c])
			}
		}
	}
}

func TestExportRequiresFullBinarization(t *testing.T) {
	r := workload.NewRNG(93)
	floatNet := NewMLP(r, []int{8, 8, 2}, false)
	if _, err := Export(floatNet, "x", exportFeat()); err == nil {
		t.Error("float net export: expected error")
	}
	binNoInput := NewMLP(r, []int{8, 8, 2}, true)
	if _, err := Export(binNoInput, "x", exportFeat()); err == nil {
		t.Error("float-input net export: expected error")
	}
}

func TestBinarizeInputForward(t *testing.T) {
	r := workload.NewRNG(94)
	m := NewMLP(r, []int{4, 3}, true)
	m.BinarizeInput = true
	// Scaling the input must not change anything once binarized.
	x := []float32{0.2, -0.9, 0.5, -0.1}
	x10 := []float32{2, -9, 5, -1}
	a := m.Logits(x)
	b := m.Logits(x10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d: %v vs %v — input binarization not applied", i, a[i], b[i])
		}
	}
}
