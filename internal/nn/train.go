package nn

import (
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// TrainConfig tunes the SGD loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	// Seed shuffles the visiting order.
	Seed uint64
}

// DefaultTrainConfig returns the settings used by the Table V experiment.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 40, BatchSize: 16, LR: 0.05, Seed: 1}
}

// Train runs minibatch SGD with softmax cross-entropy and returns the
// mean loss of the final epoch. Binarized networks clip their latent
// weights to [−1, 1] after every step (BinaryConnect).
func (m *MLP) Train(d Dataset, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 || d.Len() == 0 {
		return 0
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	r := workload.NewRNG(cfg.Seed)
	gw := make([]*tensor.Matrix, len(m.layers))
	gb := make([][]float32, len(m.layers))
	for l, ly := range m.layers {
		gw[l] = tensor.NewMatrix(ly.w.Rows, ly.w.Cols)
		gb[l] = make([]float32, len(ly.b))
	}
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Fisher–Yates shuffle.
		for i := len(order) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			for l := range gw {
				clear(gw[l].Data)
				clear(gb[l])
			}
			for _, idx := range order[start:end] {
				epochLoss += m.grads(d.X[idx], d.Y[idx], gw, gb)
			}
			m.step(gw, gb, cfg.LR/float32(end-start))
		}
		lastLoss = epochLoss / float64(d.Len())
	}
	return lastLoss
}

// step applies one SGD update.
func (m *MLP) step(gw []*tensor.Matrix, gb [][]float32, lr float32) {
	for l := range m.layers {
		w := m.layers[l].w.Data
		g := gw[l].Data
		for i := range w {
			w[i] -= lr * g[i]
			if m.Binarize {
				// BinaryConnect weight clipping keeps the latent
				// weights in the binarization's active region.
				if w[i] > 1 {
					w[i] = 1
				} else if w[i] < -1 {
					w[i] = -1
				}
			}
		}
		b := m.layers[l].b
		for i := range b {
			b[i] -= lr * gb[l][i]
		}
	}
}

// CompareResult is one row of the Table V reproduction.
type CompareResult struct {
	Task          string
	FullPrecision float64 // test accuracy, [0,1]
	Binarized     float64
}

// Gap returns the accuracy drop of binarization in percentage points.
func (c CompareResult) Gap() float64 { return 100 * (c.FullPrecision - c.Binarized) }

// CompareOnDataset trains identical float and binarized MLPs on the
// dataset and reports their test accuracies.
func CompareOnDataset(task string, d Dataset, hidden []int, cfg TrainConfig, seed uint64) CompareResult {
	train, test := d.Split(0.8)
	sizes := append(append([]int{d.Dim}, hidden...), d.Classes)

	float := NewMLP(workload.NewRNG(seed), sizes, false)
	float.Train(train, cfg)

	binary := NewMLP(workload.NewRNG(seed), sizes, true)
	binary.Train(train, cfg)

	return CompareResult{
		Task:          task,
		FullPrecision: float.Accuracy(test),
		Binarized:     binary.Accuracy(test),
	}
}

// TableVExperiment runs the three-task accuracy comparison (easy/medium/
// hard stand-ins for MNIST/CIFAR-10/ImageNet).
func TableVExperiment(seed uint64, cfg TrainConfig) []CompareResult {
	r := workload.NewRNG(seed)
	// A cluster-overlap ladder: the gap between float and binarized
	// accuracy grows with class overlap, stably across seeds — the
	// Table V trend. (The Rings dataset is deliberately not used here:
	// binarized training on ring topologies is high-variance, see
	// examples/accuracy for that harder case.)
	easy := Clusters(r, 2400, 16, 4, 1.0)
	medium := ClustersWithSep(r, 2400, 16, 6, 2.0, 2.0)
	hard := HardClusters(r, 2400, 16, 8)
	hiddens := [][]int{{48, 48}, {48, 48}, {48, 48}}
	tasks := []struct {
		name string
		d    Dataset
	}{
		{"separated clusters (easy / MNIST stand-in)", easy},
		{"touching clusters (medium / CIFAR-10 stand-in)", medium},
		{"overlapping clusters (hard / ImageNet stand-in)", hard},
	}
	out := make([]CompareResult, 0, len(tasks))
	for i, tk := range tasks {
		out = append(out, CompareOnDataset(tk.name, tk.d, hiddens[i], cfg, seed+uint64(i)))
	}
	return out
}
