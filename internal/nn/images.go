package nn

import (
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// ImageDataset is a labelled set of small single-channel images for the
// convolutional Table V-style experiments.
type ImageDataset struct {
	X       []*tensor.Tensor
	Y       []int
	H, W, C int
	Classes int
}

// Len returns the number of samples.
func (d ImageDataset) Len() int { return len(d.X) }

// Split partitions into train/test (class-interleaved generation makes a
// prefix split stratified).
func (d ImageDataset) Split(frac float64) (train, test ImageDataset) {
	n := int(frac * float64(d.Len()))
	train = ImageDataset{X: d.X[:n], Y: d.Y[:n], H: d.H, W: d.W, C: d.C, Classes: d.Classes}
	test = ImageDataset{X: d.X[n:], Y: d.Y[n:], H: d.H, W: d.W, C: d.C, Classes: d.Classes}
	return
}

// Stripes generates an orientation-classification task that genuinely
// needs convolution: class 0 = horizontal stripes, 1 = vertical stripes,
// 2 = diagonal stripes, 3 = checkerboard, each with a random phase and
// pixel noise. Values are roughly ±1, so binarizing the input loses
// almost nothing — the regime a fully binarized CNN handles well.
func Stripes(r *workload.RNG, n, size int, classes int) ImageDataset {
	if classes < 2 {
		classes = 2
	}
	if classes > 4 {
		classes = 4
	}
	d := ImageDataset{H: size, W: size, C: 1, Classes: classes}
	period := 4
	for i := 0; i < n; i++ {
		c := i % classes
		phase := r.Intn(period)
		img := tensor.New(size, size, 1)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				var v float64
				switch c {
				case 0: // horizontal stripes
					v = stripe(y+phase, period)
				case 1: // vertical stripes
					v = stripe(x+phase, period)
				case 2: // diagonal stripes
					v = stripe(x+y+phase, period)
				default: // checkerboard
					v = stripe(x+phase, period) * stripe(y+phase, period)
				}
				v += 0.3 * r.Norm()
				img.Set(y, x, 0, float32(v))
			}
		}
		d.X = append(d.X, img)
		d.Y = append(d.Y, c)
	}
	return d
}

// stripe returns ±1 alternating with the given period.
func stripe(p, period int) float64 {
	if (p/(period/2))%2 == 0 {
		return 1
	}
	return -1
}
