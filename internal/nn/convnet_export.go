package nn

import (
	"fmt"

	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// ExportConvNet compiles a trained, fully binarized ConvNet into a
// packed inference Network: conv blocks become PressedConv (+ binary
// OR-pool) layers with bias-folded thresholds; the dense head exports as
// in Export. Logits are bit-exact with the trainer (the trainer pads
// with −1 and pools ±1 values, matching the engine's bit semantics).
//
// The channel count entering the dense head must be a multiple of 64
// (the engine's flatten contiguity requirement) — pick filter counts
// accordingly.
func ExportConvNet(n *ConvNet, name string, feat sched.Features) (*graph.Network, error) {
	if !n.Binarize || !n.BinarizeInput {
		return nil, fmt.Errorf("nn: ExportConvNet requires Binarize and BinarizeInput")
	}
	if len(n.convs) == 0 || len(n.dense) == 0 {
		return nil, fmt.Errorf("nn: ExportConvNet needs at least one conv block and one dense layer")
	}
	b := graph.NewBuilder(name, n.InH, n.InW, n.InC, feat)
	for l, blk := range n.convs {
		b.Conv3x3(convBlockName(l), blk.w.K)
		if blk.pool {
			b.Pool(fmt.Sprintf("pool%d", l), 2, 2, 2)
		}
	}
	b.Flatten()
	for l := range n.dense {
		b.Dense(denseName(l), n.dense[l].w.Cols)
	}
	return b.Build(&convNetSource{n: n})
}

func convBlockName(l int) string { return fmt.Sprintf("conv%d", l) }
func denseName(l int) string     { return fmt.Sprintf("dense%d", l) }

// convNetSource adapts the trained latent weights/biases to the graph's
// weight interfaces.
type convNetSource struct {
	n *ConvNet
}

func (s *convNetSource) ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error) {
	var l int
	if _, err := fmt.Sscanf(name, "conv%d", &l); err != nil || l < 0 || l >= len(s.n.convs) {
		return nil, fmt.Errorf("nn: unknown conv block %q", name)
	}
	w := s.n.convs[l].w
	if w.K != k || w.KH != kh || w.KW != kw || w.C != c {
		return nil, fmt.Errorf("nn: conv block %q is %v, graph asked for K=%d %dx%dx%d", name, w, k, kh, kw, c)
	}
	return w, nil
}

func (s *convNetSource) ConvBias(name string, k int) ([]float32, error) {
	var l int
	if _, err := fmt.Sscanf(name, "conv%d", &l); err != nil || l < 0 || l >= len(s.n.convs) {
		return nil, fmt.Errorf("nn: unknown conv block %q", name)
	}
	return s.n.convs[l].b, nil
}

func (s *convNetSource) DenseMatrix(name string, nIn, k int) (*tensor.Matrix, error) {
	var l int
	if _, err := fmt.Sscanf(name, "dense%d", &l); err != nil || l < 0 || l >= len(s.n.dense) {
		return nil, fmt.Errorf("nn: unknown dense layer %q", name)
	}
	w := s.n.dense[l].w
	if w.Rows != nIn || w.Cols != k {
		return nil, fmt.Errorf("nn: dense layer %q is %dx%d, graph asked for %dx%d", name, w.Rows, w.Cols, nIn, k)
	}
	return w, nil
}

func (s *convNetSource) DenseBias(name string, k int) ([]float32, error) {
	var l int
	if _, err := fmt.Sscanf(name, "dense%d", &l); err != nil || l < 0 || l >= len(s.n.dense) {
		return nil, fmt.Errorf("nn: unknown dense layer %q", name)
	}
	return s.n.dense[l].b, nil
}
