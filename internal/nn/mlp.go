package nn

import (
	"fmt"
	"math"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// MLP is a fully connected classifier trained from scratch. With
// Binarize=false it is an ordinary float32 network with tanh hidden
// activations; with Binarize=true the forward pass uses sign-binarized
// weights and sign hidden activations (the BNN of paper §II-A), and the
// backward pass uses the straight-through estimator: gradients flow
// through sign() where the pre-activation magnitude is ≤ 1, and weight
// gradients are applied to the latent float weights, which are clipped to
// [−1, 1] after each step (BinaryConnect).
type MLP struct {
	Binarize bool
	// BinarizeInput applies the sign function to the input vector before
	// the first layer. Fully binarized networks destined for export to
	// the packed inference engine (Export) must set this — the engine's
	// first layer consumes bits.
	BinarizeInput bool
	// layers[l].W is sizes[l]×sizes[l+1]; the latent float weights.
	layers []mlpLayer
}

type mlpLayer struct {
	w *tensor.Matrix
	b []float32
}

// NewMLP builds a network with the given layer sizes (input, hidden…,
// classes), initialized with scaled uniform weights.
func NewMLP(r *workload.RNG, sizes []int, binarize bool) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	m := &MLP{Binarize: binarize}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := tensor.NewMatrix(in, out)
		scale := float32(math.Sqrt(6 / float64(in+out))) // Glorot
		for i := range w.Data {
			w.Data[i] = scale * (2*r.Float32() - 1)
		}
		m.layers = append(m.layers, mlpLayer{w: w, b: make([]float32, out)})
	}
	return m
}

// effWeight returns the forward-pass weight: sign(w) when binarizing.
func (m *MLP) effWeight(w float32) float32 {
	if !m.Binarize {
		return w
	}
	if w >= 0 {
		return 1
	}
	return -1
}

// forward runs one sample, returning per-layer pre-activations z and
// hidden activations h (h[0] is the input).
func (m *MLP) forward(x []float32) (zs [][]float32, hs [][]float32) {
	if m.BinarizeInput {
		bx := make([]float32, len(x))
		for i, v := range x {
			if v >= 0 {
				bx[i] = 1
			} else {
				bx[i] = -1
			}
		}
		x = bx
	}
	hs = append(hs, x)
	cur := x
	for l, ly := range m.layers {
		in, out := ly.w.Rows, ly.w.Cols
		if len(cur) != in {
			panic(fmt.Sprintf("nn: layer %d input %d want %d", l, len(cur), in))
		}
		z := make([]float32, out)
		for i, xi := range cur {
			if xi == 0 {
				continue
			}
			row := ly.w.Data[i*out : (i+1)*out]
			for j, wj := range row {
				z[j] += xi * m.effWeight(wj)
			}
		}
		// Bias is added after the accumulation: with ±1 products the
		// partial sums stay exact integers, and a single final rounded
		// addition is sign-exact (Sterbenz) — so the sign here agrees
		// bit-for-bit with the inference engine's folded integer
		// thresholds (see export.go).
		for j := range z {
			z[j] += ly.b[j]
		}
		zs = append(zs, z)
		if l == len(m.layers)-1 {
			return zs, hs
		}
		h := make([]float32, out)
		for j, v := range z {
			if m.Binarize {
				if v >= 0 {
					h[j] = 1
				} else {
					h[j] = -1
				}
			} else {
				h[j] = float32(math.Tanh(float64(v)))
			}
		}
		hs = append(hs, h)
		cur = h
	}
	return zs, hs
}

// Logits returns the raw class scores for one sample.
func (m *MLP) Logits(x []float32) []float32 {
	zs, _ := m.forward(x)
	return zs[len(zs)-1]
}

// Predict returns the argmax class for one sample.
func (m *MLP) Predict(x []float32) int {
	logits := m.Logits(x)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// Accuracy evaluates the classifier on a dataset.
func (m *MLP) Accuracy(d Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		if m.Predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// softmaxGrad computes softmax(z) − onehot(y) in place into g and returns
// the cross-entropy loss.
func softmaxGrad(z []float32, y int, g []float32) float64 {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(float64(v - maxZ))
		g[i] = float32(e)
		sum += e
	}
	loss := 0.0
	for i := range g {
		p := float64(g[i]) / sum
		g[i] = float32(p)
		if i == y {
			loss = -math.Log(math.Max(p, 1e-12))
			g[i] -= 1
		}
	}
	return loss
}

// grads accumulates per-layer gradients for one sample into gw/gb and
// returns the loss.
func (m *MLP) grads(x []float32, y int, gw []*tensor.Matrix, gb [][]float32) float64 {
	zs, hs := m.forward(x)
	last := len(m.layers) - 1
	delta := make([]float32, m.layers[last].w.Cols)
	loss := softmaxGrad(zs[last], y, delta)

	for l := last; l >= 0; l-- {
		ly := m.layers[l]
		in, out := ly.w.Rows, ly.w.Cols
		input := hs[l]
		// Weight/bias gradients. With binarized weights the gradient is
		// taken w.r.t. the binarized value and applied straight through
		// to the latent float weight.
		for i := 0; i < in; i++ {
			xi := input[i]
			if xi == 0 {
				continue
			}
			grow := gw[l].Data[i*out : (i+1)*out]
			for j, dj := range delta {
				grow[j] += xi * dj
			}
		}
		for j, dj := range delta {
			gb[l][j] += dj
		}
		if l == 0 {
			break
		}
		// Backprop into the previous hidden layer.
		prev := make([]float32, in)
		for i := 0; i < in; i++ {
			row := ly.w.Data[i*out : (i+1)*out]
			var acc float32
			for j, dj := range delta {
				acc += dj * m.effWeight(row[j])
			}
			prev[i] = acc
		}
		// Activation derivative at z of layer l-1.
		z := zs[l-1]
		for i := range prev {
			if m.Binarize {
				// Straight-through estimator: pass where |z| ≤ 1.
				if z[i] > 1 || z[i] < -1 {
					prev[i] = 0
				}
			} else {
				th := float32(math.Tanh(float64(z[i])))
				prev[i] *= 1 - th*th
			}
		}
		delta = prev
	}
	return loss
}
