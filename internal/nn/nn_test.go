package nn

import (
	"math"
	"testing"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func TestDatasetSplitStratified(t *testing.T) {
	r := workload.NewRNG(1)
	d := Clusters(r, 1000, 8, 4, 1.0)
	train, test := d.Split(0.8)
	if train.Len() != 800 || test.Len() != 200 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	counts := make([]int, 4)
	for _, y := range test.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 50 {
			t.Errorf("class %d has %d test samples, want 50", c, n)
		}
	}
}

func TestRingsNotLinearlySeparableShape(t *testing.T) {
	r := workload.NewRNG(2)
	d := Rings(r, 300, 4, 3)
	// Class 2's ring radius ≈ 4: its points must sit farther from the
	// origin (in the first two dims) than class 0's (radius ≈ 1).
	var r0, r2 float64
	var n0, n2 int
	for i, x := range d.X {
		rad := math.Hypot(float64(x[0]), float64(x[1]))
		switch d.Y[i] {
		case 0:
			r0 += rad
			n0++
		case 2:
			r2 += rad
			n2++
		}
	}
	if r0/float64(n0) >= r2/float64(n2) {
		t.Error("ring radii not ordered by class")
	}
}

// TestFloatGradCheck verifies the analytic gradients against finite
// differences on the float path.
func TestFloatGradCheck(t *testing.T) {
	r := workload.NewRNG(3)
	m := NewMLP(r, []int{5, 7, 3}, false)
	x := make([]float32, 5)
	for i := range x {
		x[i] = 2*r.Float32() - 1
	}
	y := 1

	gw := []*tensor.Matrix{tensor.NewMatrix(5, 7), tensor.NewMatrix(7, 3)}
	gb := [][]float32{make([]float32, 7), make([]float32, 3)}
	m.grads(x, y, gw, gb)

	loss := func() float64 {
		z := m.Logits(x)
		g := make([]float32, len(z))
		return softmaxGrad(z, y, g)
	}
	const eps = 1e-3
	check := func(name string, p *float32, analytic float32) {
		t.Helper()
		orig := *p
		*p = orig + eps
		lp := loss()
		*p = orig - eps
		lm := loss()
		*p = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - float64(analytic)); diff > 5e-2*(1+math.Abs(numeric)) {
			t.Errorf("%s: numeric %g analytic %g", name, numeric, analytic)
		}
	}
	// Spot-check a handful of weights in each layer plus biases.
	for _, idx := range []int{0, 3, 11, 20} {
		check("w0", &m.layers[0].w.Data[idx], gw[0].Data[idx])
	}
	for _, idx := range []int{0, 5, 13} {
		check("w1", &m.layers[1].w.Data[idx], gw[1].Data[idx])
	}
	check("b0", &m.layers[0].b[2], gb[0][2])
	check("b1", &m.layers[1].b[1], gb[1][1])
}

func TestFloatTrainingLearnsClusters(t *testing.T) {
	r := workload.NewRNG(4)
	d := Clusters(r, 1200, 8, 3, 1.0)
	train, test := d.Split(0.8)
	m := NewMLP(workload.NewRNG(5), []int{8, 24, 3}, false)
	cfg := TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.05, Seed: 6}
	m.Train(train, cfg)
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Errorf("float accuracy %.3f < 0.9 on easy clusters", acc)
	}
}

func TestBinarizedTrainingLearnsClusters(t *testing.T) {
	r := workload.NewRNG(7)
	d := Clusters(r, 1200, 8, 3, 1.0)
	train, test := d.Split(0.8)
	m := NewMLP(workload.NewRNG(8), []int{8, 24, 3}, true)
	cfg := TrainConfig{Epochs: 30, BatchSize: 16, LR: 0.05, Seed: 9}
	m.Train(train, cfg)
	if acc := m.Accuracy(test); acc < 0.75 {
		t.Errorf("binarized accuracy %.3f < 0.75 on easy clusters", acc)
	}
}

func TestBinarizedWeightsStayClipped(t *testing.T) {
	r := workload.NewRNG(10)
	d := Clusters(r, 400, 6, 2, 1.0)
	m := NewMLP(workload.NewRNG(11), []int{6, 12, 2}, true)
	m.Train(d, TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.2, Seed: 12})
	for l, ly := range m.layers {
		for _, w := range ly.w.Data {
			if w > 1 || w < -1 {
				t.Fatalf("layer %d weight %g escaped [-1,1]", l, w)
			}
		}
	}
}

func TestBinarizedForwardUsesSignWeights(t *testing.T) {
	// Scaling all latent weights by 0.5 must not change a binarized
	// network's logits (only the signs matter).
	r := workload.NewRNG(13)
	m := NewMLP(r, []int{4, 6, 2}, true)
	x := []float32{0.3, -0.2, 0.9, -0.7}
	before := m.Logits(x)
	for _, ly := range m.layers {
		for i := range ly.w.Data {
			ly.w.Data[i] *= 0.5
		}
	}
	after := m.Logits(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("logit %d changed: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestSoftmaxGrad(t *testing.T) {
	z := []float32{1, 2, 3}
	g := make([]float32, 3)
	loss := softmaxGrad(z, 2, g)
	if loss < 0 {
		t.Error("negative loss")
	}
	var sum float32
	for _, v := range g {
		sum += v
	}
	// softmax sums to 1; minus one-hot → gradient sums to 0.
	if sum > 1e-5 || sum < -1e-5 {
		t.Errorf("gradient sums to %g", sum)
	}
	if g[2] >= 0 {
		t.Error("true-class gradient must be negative")
	}
}

func TestTableVExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	cfg := TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.05, Seed: 14}
	rows := TableVExperiment(100, cfg)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if row.FullPrecision < 0.5 {
			t.Errorf("%s: float accuracy %.3f below 0.5", row.Task, row.FullPrecision)
		}
		// Binarization may cost accuracy but must stay usable —
		// "acceptable for applications that are tolerant to a certain
		// amount of prediction errors" (±3pp slack for run-to-run noise
		// since binarized training is noisy).
		if row.Binarized > row.FullPrecision+0.03 {
			t.Errorf("%s: binarized (%.3f) above float (%.3f)", row.Task, row.Binarized, row.FullPrecision)
		}
		if row.Binarized < 0.3 {
			t.Errorf("%s: binarized accuracy %.3f collapsed", row.Task, row.Binarized)
		}
	}
	// The hard task must show a larger gap than the easy one (the
	// Table V trend: 1.2pp on MNIST → 11.6pp on ImageNet).
	if rows[2].Gap() <= rows[0].Gap() {
		t.Errorf("gap did not widen: easy %.1fpp, hard %.1fpp", rows[0].Gap(), rows[2].Gap())
	}
}

func TestNewMLPPanicsOnShortSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewMLP(workload.NewRNG(1), []int{5}, false)
}
