package sched

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/kernels"
)

// Plan is the code generator's output for one channel (or neuron) count:
// which kernel tier to run and how many words each packed channel vector
// occupies after any zero padding.
type Plan struct {
	// C is the true channel count the plan was built for.
	C int
	// Width is the selected kernel tier.
	Width kernels.Width
	// Kernel is the XOR+popcount function implementing Width.
	Kernel kernels.XorPopFunc
	// Words is the packed channel vector length in 64-bit words,
	// guaranteed to be a multiple of Width.Words().
	Words int
	// PaddedC is Words*64, the lane count including zero padding.
	PaddedC int
}

// Select implements the paper's kernel-selection rules (§III-B):
//
//  1. channel dimension multiple of 512 → pack into 512-bit units (W512);
//  2. multiple of 256 → W256;
//  3. multiple of 128 → W128 (SSE);
//  4. multiple of 32 → plain intrinsic bitwise instructions (our scalar
//     64-bit kernel); otherwise pad extra zeros to the channel dimension.
//
// The widest admissible tier never exceeds feat.MaxWidth, mirroring
// "AVX512 if available … otherwise AVX256".
func Select(c int, feat Features) Plan {
	if c <= 0 {
		panic(fmt.Sprintf("sched: Select with c=%d", c))
	}
	for _, w := range kernels.Widths {
		if w > feat.MaxWidth {
			continue
		}
		if c%w.Bits() == 0 {
			return planFor(c, w)
		}
	}
	// Rule 4 fallback: pad the channel dimension with zeros up to the
	// next word boundary and run the scalar kernel.
	return planFor(c, kernels.W64)
}

// SelectPadded is an extension of the paper's rules used by the ablation
// benchmarks: instead of falling back to the scalar kernel when no tier's
// bit count divides C, it pads the packed vector up to the next multiple
// of the widest available tier. This trades wasted XOR lanes for wider
// steps; the ablation bench quantifies when that wins.
func SelectPadded(c int, feat Features) Plan {
	if c <= 0 {
		panic(fmt.Sprintf("sched: SelectPadded with c=%d", c))
	}
	w := feat.MaxWidth
	words := bitpack.WordsFor(c)
	words = (words + w.Words() - 1) / w.Words() * w.Words()
	return Plan{C: c, Width: w, Kernel: kernels.ForWidth(w), Words: words, PaddedC: words * bitpack.WordBits}
}

func planFor(c int, w kernels.Width) Plan {
	words := bitpack.WordsFor(c)
	// Round the word count up to a multiple of the tier's step. For the
	// rule-based tiers this is a no-op (c is a multiple of w.Bits());
	// for the scalar fallback it already is a single-word granularity.
	step := w.Words()
	words = (words + step - 1) / step * step
	return Plan{C: c, Width: w, Kernel: kernels.ForWidth(w), Words: words, PaddedC: words * bitpack.WordBits}
}

// PadLanes returns the number of zero lanes the plan appends beyond C.
func (p Plan) PadLanes() int { return p.PaddedC - p.C }

// String renders the plan as the Fig. 6 mapping does ("channel 256 →
// AVX256 kernel").
func (p Plan) String() string {
	return fmt.Sprintf("C=%d → %s (words=%d, pad=%d lanes)", p.C, p.Width, p.Words, p.PadLanes())
}

// KernelTable returns the operator→kernel mapping of paper Fig. 6 for a
// set of channel counts, e.g. VGG's {3, 64, 128, 256, 512}.
func KernelTable(channels []int, feat Features) []Plan {
	plans := make([]Plan, 0, len(channels))
	for _, c := range channels {
		plans = append(plans, Select(c, feat))
	}
	return plans
}
