package sched

import "fmt"

// ConvShape is the inferred geometry of one convolution operator — the
// output of the scheduler's shape inferer ("calculates the output
// dimensions of each convolution operator in a neural network given the
// input size and filter sizes", paper §III-B).
type ConvShape struct {
	InH, InW, InC          int
	K, KH, KW, Stride, Pad int
	OutH, OutW, OutC       int
}

// InferConv validates a convolution configuration and computes its output
// dimensions.
func InferConv(inH, inW, inC, k, kh, kw, stride, pad int) (ConvShape, error) {
	s := ConvShape{InH: inH, InW: inW, InC: inC, K: k, KH: kh, KW: kw, Stride: stride, Pad: pad}
	switch {
	case inH <= 0 || inW <= 0 || inC <= 0:
		return s, fmt.Errorf("sched: conv input %dx%dx%d must be positive", inH, inW, inC)
	case k <= 0:
		return s, fmt.Errorf("sched: conv needs K > 0, got %d", k)
	case kh <= 0 || kw <= 0:
		return s, fmt.Errorf("sched: conv window %dx%d must be positive", kh, kw)
	case stride <= 0:
		return s, fmt.Errorf("sched: conv stride %d must be positive", stride)
	case pad < 0:
		return s, fmt.Errorf("sched: conv pad %d must be non-negative", pad)
	case inH+2*pad < kh || inW+2*pad < kw:
		return s, fmt.Errorf("sched: conv window %dx%d larger than padded input %dx%d",
			kh, kw, inH+2*pad, inW+2*pad)
	}
	s.OutH = (inH+2*pad-kh)/stride + 1
	s.OutW = (inW+2*pad-kw)/stride + 1
	s.OutC = k
	return s, nil
}

// PoolShape is the inferred geometry of one max-pool operator.
type PoolShape struct {
	InH, InW, InC    int
	KH, KW, Stride   int
	OutH, OutW, OutC int
}

// InferPool validates a pooling configuration and computes its output
// dimensions. Pooling never pads (VGG pools are exact 2×2/2 windows).
func InferPool(inH, inW, inC, kh, kw, stride int) (PoolShape, error) {
	s := PoolShape{InH: inH, InW: inW, InC: inC, KH: kh, KW: kw, Stride: stride}
	switch {
	case inH <= 0 || inW <= 0 || inC <= 0:
		return s, fmt.Errorf("sched: pool input %dx%dx%d must be positive", inH, inW, inC)
	case kh <= 0 || kw <= 0:
		return s, fmt.Errorf("sched: pool window %dx%d must be positive", kh, kw)
	case stride <= 0:
		return s, fmt.Errorf("sched: pool stride %d must be positive", stride)
	case inH < kh || inW < kw:
		return s, fmt.Errorf("sched: pool window %dx%d larger than input %dx%d", kh, kw, inH, inW)
	}
	s.OutH = (inH-kh)/stride + 1
	s.OutW = (inW-kw)/stride + 1
	s.OutC = inC
	return s, nil
}

// FCShape is the inferred geometry of one fully connected operator
// (input 1×N, weight N×K).
type FCShape struct {
	N, K int
}

// InferFC validates a fully connected configuration.
func InferFC(n, k int) (FCShape, error) {
	if n <= 0 || k <= 0 {
		return FCShape{}, fmt.Errorf("sched: fc needs N, K > 0, got N=%d K=%d", n, k)
	}
	return FCShape{N: n, K: k}, nil
}
