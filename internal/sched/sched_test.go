package sched

import (
	"testing"
	"testing/quick"

	"bitflow/internal/bitpack"
	"bitflow/internal/kernels"
)

func allWidths() Features {
	return Features{Arch: "test", MaxWidth: kernels.W512, HWPopcount: true}
}

func TestSelectPaperRules(t *testing.T) {
	// The VGG ladder of paper Fig. 6 / §IV: conv1.1 C=3 pads, conv2.1
	// C=64 scalar, conv3.1 C=128 SSE, conv4.1 C=256 AVX256, conv5.1
	// C=512 AVX512.
	feat := allWidths()
	cases := []struct {
		c     int
		width kernels.Width
		words int
	}{
		{3, kernels.W64, 1},
		{64, kernels.W64, 1},
		{128, kernels.W128, 2},
		{256, kernels.W256, 4},
		{512, kernels.W512, 8},
		{1024, kernels.W512, 16},
		{384, kernels.W128, 6},  // 384 = 3·128: divisible by 128, not 256
		{768, kernels.W256, 12}, // 768 = 3·256
		{96, kernels.W64, 2},    // multiple of 32 only → scalar, 2 words
		{100, kernels.W64, 2},   // not a multiple of 64 → pad to 128 lanes
	}
	for _, tc := range cases {
		p := Select(tc.c, feat)
		if p.Width != tc.width || p.Words != tc.words {
			t.Errorf("Select(%d) = %v, want width %v words %d", tc.c, p, tc.width, tc.words)
		}
		if p.PaddedC != p.Words*64 {
			t.Errorf("Select(%d): PaddedC %d != Words*64", tc.c, p.PaddedC)
		}
	}
}

func TestSelectRespectsMaxWidth(t *testing.T) {
	// "AVX512 if available e.g. on Intel Xeon Phi, otherwise AVX256
	// e.g. Intel Core i7" — C=512 on a 256-capped machine picks W256.
	feat := allWidths().WithMaxWidth(kernels.W256)
	if p := Select(512, feat); p.Width != kernels.W256 {
		t.Errorf("capped Select(512) picked %v", p.Width)
	}
	feat = allWidths().WithMaxWidth(kernels.W64)
	if p := Select(512, feat); p.Width != kernels.W64 {
		t.Errorf("scalar-capped Select(512) picked %v", p.Width)
	}
}

// TestSelectInvariantsQuick checks the scheduler's two invariants from
// DESIGN.md: the chosen width always divides the word count, and no
// wider admissible width exists.
func TestSelectInvariantsQuick(t *testing.T) {
	f := func(cc uint16, cap uint8) bool {
		c := int(cc)%4096 + 1
		feat := allWidths().WithMaxWidth(kernels.Widths[int(cap)%len(kernels.Widths)])
		p := Select(c, feat)
		if p.Words < bitpack.WordsFor(c) {
			return false
		}
		if !p.Width.Divides(p.Words) {
			return false
		}
		if p.Width > feat.MaxWidth {
			return false
		}
		// Maximality: any wider admissible tier would contradict the
		// paper's "optimal computing kernel" selection.
		for _, w := range kernels.Widths {
			if w <= p.Width || w > feat.MaxWidth {
				continue
			}
			if c%w.Bits() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectPadded(t *testing.T) {
	feat := allWidths()
	p := SelectPadded(100, feat)
	if p.Width != kernels.W512 {
		t.Errorf("SelectPadded width %v", p.Width)
	}
	if p.Words != 8 {
		t.Errorf("SelectPadded words %d want 8", p.Words)
	}
	if p.PadLanes() != 412 {
		t.Errorf("PadLanes %d want 412", p.PadLanes())
	}
}

func TestSelectPanicsOnBadC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Select(0) did not panic")
		}
	}()
	Select(0, allWidths())
}

func TestInferConv(t *testing.T) {
	s, err := InferConv(112, 112, 64, 128, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.OutH != 112 || s.OutW != 112 || s.OutC != 128 {
		t.Errorf("conv2.1 inferred %dx%dx%d", s.OutH, s.OutW, s.OutC)
	}
	// Stride 2, no pad.
	s, err = InferConv(8, 8, 16, 4, 2, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.OutH != 4 || s.OutW != 4 {
		t.Errorf("strided conv inferred %dx%d", s.OutH, s.OutW)
	}
	for name, args := range map[string][8]int{
		"zero input":   {0, 5, 1, 1, 1, 1, 1, 0},
		"zero K":       {5, 5, 1, 0, 1, 1, 1, 0},
		"zero window":  {5, 5, 1, 1, 0, 1, 1, 0},
		"zero stride":  {5, 5, 1, 1, 1, 1, 0, 0},
		"negative pad": {5, 5, 1, 1, 1, 1, 1, -1},
		"window large": {2, 2, 1, 1, 5, 5, 1, 0},
	} {
		if _, err := InferConv(args[0], args[1], args[2], args[3], args[4], args[5], args[6], args[7]); err == nil {
			t.Errorf("InferConv %s: expected error", name)
		}
	}
}

func TestInferPool(t *testing.T) {
	s, err := InferPool(28, 28, 512, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.OutH != 14 || s.OutW != 14 || s.OutC != 512 {
		t.Errorf("pool4 inferred %dx%dx%d", s.OutH, s.OutW, s.OutC)
	}
	if _, err := InferPool(1, 1, 1, 2, 2, 2); err == nil {
		t.Error("oversized pool window: expected error")
	}
	if _, err := InferPool(4, 4, 0, 2, 2, 2); err == nil {
		t.Error("zero channels: expected error")
	}
}

func TestInferFC(t *testing.T) {
	s, err := InferFC(25088, 4096)
	if err != nil || s.N != 25088 || s.K != 4096 {
		t.Errorf("fc6 inferred %+v err %v", s, err)
	}
	if _, err := InferFC(0, 5); err == nil {
		t.Error("zero N: expected error")
	}
}

func TestParseWidth(t *testing.T) {
	for s, w := range map[string]kernels.Width{"64": kernels.W64, "128": kernels.W128, "256": kernels.W256, "512": kernels.W512} {
		got, err := ParseWidth(s)
		if err != nil || got != w {
			t.Errorf("ParseWidth(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"", "banana", "96", "1024"} {
		if _, err := ParseWidth(s); err == nil {
			t.Errorf("ParseWidth(%q): expected error", s)
		}
	}
}

func TestDetectEnvOverride(t *testing.T) {
	t.Setenv(MaxWidthEnv, "128")
	if f := Detect(); f.MaxWidth != kernels.W128 {
		t.Errorf("env override ignored: %v", f.MaxWidth)
	}
	t.Setenv(MaxWidthEnv, "garbage")
	if f := Detect(); f.MaxWidth != kernels.W512 {
		t.Errorf("bad env should fall back to W512, got %v", f.MaxWidth)
	}
}

func TestKernelTable(t *testing.T) {
	plans := KernelTable([]int{3, 64, 128, 256, 512}, allWidths())
	if len(plans) != 5 {
		t.Fatalf("got %d plans", len(plans))
	}
	wantWidths := []kernels.Width{kernels.W64, kernels.W64, kernels.W128, kernels.W256, kernels.W512}
	for i, p := range plans {
		if p.Width != wantWidths[i] {
			t.Errorf("plan %d width %v want %v", i, p.Width, wantWidths[i])
		}
	}
}
