// Package sched implements BitFlow's vector execution scheduler (paper
// §III-B, Fig. 4): a shape inferer, a hardware detector, and a code
// generator that picks the optimal computing kernel for each operator
// configuration.
package sched

import (
	"fmt"
	"os"
	"runtime"
	"strconv"

	"bitflow/internal/kernels"
)

// Features describes what the "hardware" supports. In the paper this
// comes from CPUID probing of SSE/AVX2/AVX-512; here all kernel tiers are
// portable Go, so every width is available on every GOARCH and the
// detector instead reports (a) whether popcount is a single hardware
// instruction on this architecture and (b) an optional cap on the widest
// tier, used by ablation benchmarks to emulate narrower machines.
type Features struct {
	// Arch is runtime.GOARCH.
	Arch string
	// MaxWidth is the widest kernel tier the scheduler may select.
	MaxWidth kernels.Width
	// HWPopcount reports whether math/bits.OnesCount64 compiles to a
	// native popcount instruction on this architecture.
	HWPopcount bool
}

// MaxWidthEnv is the environment variable that caps the detected width:
// one of "64", "128", "256", "512". It lets benchmarks emulate a machine
// without the wider tiers (paper: "AVX512 if available e.g. on Intel Xeon
// Phi, otherwise AVX256 e.g. Intel Core i7").
const MaxWidthEnv = "BITFLOW_MAX_WIDTH"

// Detect probes the current platform.
func Detect() Features {
	f := Features{
		Arch:       runtime.GOARCH,
		MaxWidth:   kernels.W512,
		HWPopcount: hwPopcount(runtime.GOARCH),
	}
	if v := os.Getenv(MaxWidthEnv); v != "" {
		if w, err := ParseWidth(v); err == nil {
			f.MaxWidth = w
		}
	}
	return f
}

// hwPopcount reports whether OnesCount64 is a single instruction on arch.
func hwPopcount(arch string) bool {
	switch arch {
	case "amd64", "arm64", "ppc64", "ppc64le", "s390x":
		return true
	}
	return false
}

// ParseWidth converts "64"/"128"/"256"/"512" into a kernel width.
func ParseWidth(s string) (kernels.Width, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("sched: bad width %q: %v", s, err)
	}
	switch n {
	case 64:
		return kernels.W64, nil
	case 128:
		return kernels.W128, nil
	case 256:
		return kernels.W256, nil
	case 512:
		return kernels.W512, nil
	}
	return 0, fmt.Errorf("sched: width %d not one of 64/128/256/512", n)
}

// WithMaxWidth returns a copy of f capped at w.
func (f Features) WithMaxWidth(w kernels.Width) Features {
	f.MaxWidth = w
	return f
}

// String renders the feature report.
func (f Features) String() string {
	return fmt.Sprintf("arch=%s maxWidth=%s hwPopcount=%v", f.Arch, f.MaxWidth, f.HWPopcount)
}
