package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"bitflow/internal/bitpack"
	"bitflow/internal/kernels"
)

func TestPlanString(t *testing.T) {
	p := Select(100, allWidths())
	s := p.String()
	for _, want := range []string{"C=100", "scalar64", "words=2", "pad=28"} {
		if !strings.Contains(s, want) {
			t.Errorf("Plan.String %q missing %q", s, want)
		}
	}
}

func TestFeaturesString(t *testing.T) {
	f := Features{Arch: "amd64", MaxWidth: kernels.W256, HWPopcount: true}
	s := f.String()
	if !strings.Contains(s, "amd64") || !strings.Contains(s, "avx256") {
		t.Errorf("Features.String %q", s)
	}
}

func TestHWPopcountArchMatrix(t *testing.T) {
	for arch, want := range map[string]bool{
		"amd64": true, "arm64": true, "ppc64le": true, "s390x": true,
		"386": false, "wasm": false, "riscv64": false,
	} {
		if got := hwPopcount(arch); got != want {
			t.Errorf("hwPopcount(%s) = %v want %v", arch, got, want)
		}
	}
}

// TestSelectPaddedInvariants: padded plans always use the widest cap
// and never shrink below the true word requirement.
func TestSelectPaddedInvariants(t *testing.T) {
	f := func(cc uint16, capIdx uint8) bool {
		c := int(cc)%4096 + 1
		feat := allWidths().WithMaxWidth(kernels.Widths[int(capIdx)%len(kernels.Widths)])
		p := SelectPadded(c, feat)
		if p.Width != feat.MaxWidth {
			return false
		}
		if p.Words < bitpack.WordsFor(c) {
			return false
		}
		return p.Words%p.Width.Words() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPaddedNeverNarrowerThanRule: for channel counts where the rules
// already pick the widest tier, SelectPadded agrees exactly.
func TestPaddedAgreesAtAlignedCounts(t *testing.T) {
	feat := allWidths()
	for _, c := range []int{512, 1024, 25088} {
		rule := Select(c, feat)
		padded := SelectPadded(c, feat)
		if rule.Width != padded.Width || rule.Words != padded.Words {
			t.Errorf("C=%d: rule %v vs padded %v", c, rule, padded)
		}
	}
}

func TestSelectPaddedPanicsOnBadC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	SelectPadded(-1, allWidths())
}

func TestConvShapeRoundtripWithWorkloadConfigs(t *testing.T) {
	// Table IV convs must infer to their documented output shapes.
	cases := []struct{ h, w, c, k, outH int }{
		{112, 112, 64, 128, 112},
		{56, 56, 128, 256, 56},
		{28, 28, 256, 512, 28},
		{14, 14, 512, 512, 14},
	}
	for _, tc := range cases {
		s, err := InferConv(tc.h, tc.w, tc.c, tc.k, 3, 3, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.OutH != tc.outH || s.OutC != tc.k {
			t.Errorf("%dx%dx%d: out %dx%dx%d", tc.h, tc.w, tc.c, s.OutH, s.OutW, s.OutC)
		}
	}
}
