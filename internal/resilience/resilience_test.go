package resilience

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGateFastPath(t *testing.T) {
	g := NewGate(2, 4)
	if g.Capacity() != 2 || g.MaxQueue() != 4 {
		t.Fatalf("capacity %d queue %d", g.Capacity(), g.MaxQueue())
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := g.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if err := g.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if got := g.Held(); got != 2 {
			t.Fatalf("held %d", got)
		}
		g.Release()
		g.Release()
	}
	if g.Held() != 0 || g.Waiting() != 0 {
		t.Fatalf("held %d waiting %d after drain", g.Held(), g.Waiting())
	}
}

func TestGateQueueFullSheds(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue.
	queued := make(chan error, 1)
	go func() { queued <- g.Acquire(context.Background()) }()
	waitFor(t, func() bool { return g.Waiting() == 1 })

	// The next caller must be rejected instantly, not blocked.
	start := time.Now()
	err := g.Acquire(context.Background())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("queue-full rejection blocked for %v", time.Since(start))
	}

	g.Release() // hands the slot to the waiter
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	g.Release()
}

func TestGateDeadlineWhileWaiting(t *testing.T) {
	g := NewGate(1, 4)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := g.Acquire(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("waiter leaked: waiting=%d", g.Waiting())
	}
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	g := NewGate(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	g.Release()
}

func TestGateConcurrentStress(t *testing.T) {
	g := NewGate(4, 64)
	var wg sync.WaitGroup
	var ok, shed int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			err := g.Acquire(ctx)
			mu.Lock()
			if err == nil {
				ok++
			} else {
				shed++
			}
			mu.Unlock()
			if err == nil {
				time.Sleep(time.Millisecond)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no acquisitions succeeded")
	}
	if g.Held() != 0 || g.Waiting() != 0 {
		t.Fatalf("held %d waiting %d after stress", g.Held(), g.Waiting())
	}
	t.Logf("stress: %d ok, %d shed", ok, shed)
}

func TestSafeCapturesPanic(t *testing.T) {
	err := Safe(func() { panic("kernel shape mismatch") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T %v", err, err)
	}
	if pe.Value != "kernel shape mismatch" {
		t.Errorf("value %v", pe.Value)
	}
	if !strings.Contains(err.Error(), "kernel shape mismatch") {
		t.Errorf("message %q", err.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if err := Safe(func() {}); err != nil {
		t.Errorf("clean run returned %v", err)
	}
}

func TestLatencyRingQuantiles(t *testing.T) {
	r := NewLatencyRing(128)
	if got := r.Quantile(0.5); got != 0 {
		t.Fatalf("empty ring quantile %v", got)
	}
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	if r.Len() != 100 {
		t.Fatalf("len %d", r.Len())
	}
	p50 := r.Quantile(0.50)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 %v", p50)
	}
	p99 := r.Quantile(0.99)
	if p99 < 95*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 %v", p99)
	}
	if got := r.Quantile(0); got != time.Millisecond {
		t.Errorf("min %v", got)
	}
	if got := r.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("max %v", got)
	}
}

func TestLatencyRingWrapsKeepingRecentWindow(t *testing.T) {
	r := NewLatencyRing(16)
	for i := 1; i <= 1000; i++ {
		r.Observe(time.Duration(i) * time.Microsecond)
	}
	if r.Len() != 16 {
		t.Fatalf("len %d", r.Len())
	}
	// Window is the last 16 samples: 985..1000 µs.
	if min := r.Quantile(0); min < 985*time.Microsecond {
		t.Errorf("stale sample survived wrap: min %v", min)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics(64)
	m.Requests.Add(10)
	m.OK.Add(7)
	m.Shed.Add(2)
	m.PanicsRecovered.Add(1)
	for i := 0; i < 8; i++ {
		m.ObserveLatency(time.Duration(i+1) * time.Millisecond)
	}
	s := m.Snapshot()
	if s.Requests != 10 || s.OK != 7 || s.Shed != 2 || s.PanicsRecovered != 1 {
		t.Errorf("snapshot %+v", s)
	}
	if s.LatencySamples != 8 || s.P50Micros == 0 || s.P99Micros == 0 {
		t.Errorf("latency snapshot %+v", s)
	}
}

func TestMetricsObserveBatch(t *testing.T) {
	m := NewMetrics(16)
	m.ObserveBatch(4, FlushFull)
	m.ObserveBatch(2, FlushWindow)
	m.ObserveBatch(1, FlushWindow)
	m.ObserveBatch(3, FlushDrain)
	s := m.Snapshot()
	if s.Batches != 4 || s.BatchItems != 10 {
		t.Errorf("batches=%d items=%d", s.Batches, s.BatchItems)
	}
	if s.BatchMeanOccupancy != 2.5 || s.BatchMaxOccupancy != 4 {
		t.Errorf("mean=%v max=%d", s.BatchMeanOccupancy, s.BatchMaxOccupancy)
	}
	if s.BatchFlushWindow != 2 || s.BatchFlushFull != 1 || s.BatchFlushDrain != 1 {
		t.Errorf("flushes %+v", s)
	}
}

func TestMetricsObserveBatchConcurrentMax(t *testing.T) {
	m := NewMetrics(16)
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			m.ObserveBatch(n, FlushFull)
		}(i)
	}
	wg.Wait()
	if got := m.BatchMaxOccupancy.Load(); got != 32 {
		t.Errorf("max occupancy %d, want 32", got)
	}
	if got := m.BatchItems.Load(); got != 32*33/2 {
		t.Errorf("items %d", got)
	}
}

func TestFlushReasonStrings(t *testing.T) {
	for fr, want := range map[FlushReason]string{
		FlushWindow:     "window-expired",
		FlushFull:       "size-cap",
		FlushDrain:      "drain",
		FlushReason(99): "unknown",
	} {
		if fr.String() != want {
			t.Errorf("%d → %q, want %q", int(fr), fr.String(), want)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
