package resilience

import (
	"sync"
	"time"
)

// LayerStat is a point-in-time timing summary for one network layer,
// fed by the execution context's per-layer observer hook and served by
// /statusz. Quantiles describe the most recent window of passes.
type LayerStat struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Count     int64  `json:"count"`
	P50       string `json:"p50"`
	P99       string `json:"p99"`
	P50Micros int64  `json:"p50_us"`
	P99Micros int64  `json:"p99_us"`
}

// LayerStats aggregates per-layer latency rings keyed by layer name,
// preserving first-seen order (which is execution order when fed from a
// forward pass). Safe for concurrent use by many replicas sharing one
// Metrics.
type LayerStats struct {
	mu    sync.Mutex
	order []string
	rings map[string]*layerRing
	size  int
}

type layerRing struct {
	kind  string
	count int64
	ring  *LatencyRing
}

// NewLayerStats builds a LayerStats whose per-layer rings hold up to
// ringSize samples each (minimum 16).
func NewLayerStats(ringSize int) *LayerStats {
	return &LayerStats{rings: map[string]*layerRing{}, size: ringSize}
}

// Observe records one layer execution. The signature matches
// exec.Observer so a *LayerStats method can be attached directly.
func (ls *LayerStats) Observe(layer, kind string, d time.Duration) {
	ls.mu.Lock()
	r := ls.rings[layer]
	if r == nil {
		r = &layerRing{kind: kind, ring: NewLatencyRing(ls.size)}
		ls.rings[layer] = r
		ls.order = append(ls.order, layer)
	}
	r.count++
	ls.mu.Unlock()
	r.ring.Observe(d)
}

// Snapshot summarizes every observed layer in first-seen order.
func (ls *LayerStats) Snapshot() []LayerStat {
	ls.mu.Lock()
	names := append([]string(nil), ls.order...)
	recs := make([]*layerRing, len(names))
	counts := make([]int64, len(names))
	for i, n := range names {
		recs[i] = ls.rings[n]
		counts[i] = ls.rings[n].count
	}
	ls.mu.Unlock()

	out := make([]LayerStat, len(names))
	for i, n := range names {
		p50 := recs[i].ring.Quantile(0.50)
		p99 := recs[i].ring.Quantile(0.99)
		out[i] = LayerStat{
			Name: n, Kind: recs[i].kind, Count: counts[i],
			P50: p50.String(), P99: p99.String(),
			P50Micros: p50.Microseconds(), P99Micros: p99.Microseconds(),
		}
	}
	return out
}
