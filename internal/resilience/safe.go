package resilience

import (
	"fmt"
	"runtime/debug"
)

// PanicError wraps a recovered panic value with the goroutine stack at
// recovery time, so a crashing kernel or graph layer surfaces as a typed,
// loggable error instead of killing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("recovered panic: %v", e.Value)
}

// Safe runs fn and converts a panic into a *PanicError. A nil return
// means fn completed normally. Deliberately re-usable outside HTTP: any
// subsystem calling into the panic-happy graph/bitpack/kernels layers can
// wrap the call site.
func Safe(fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}
