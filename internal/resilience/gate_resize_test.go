package resilience

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestResizableGateStartsAtConcurrency(t *testing.T) {
	g := NewResizableGate(2, 8, 4)
	if g.Capacity() != 2 || g.Limit() != 8 {
		t.Fatalf("capacity=%d limit=%d, want 2/8", g.Capacity(), g.Limit())
	}
	// Exactly 2 concurrent holders fit.
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if err := g.Acquire(short); err == nil {
		t.Fatal("third acquire succeeded at concurrency 2")
	}
	g.Release()
	g.Release()
}

func TestNewGateLimitEqualsConcurrency(t *testing.T) {
	g := NewGate(3, 0)
	if g.Capacity() != 3 || g.Limit() != 3 {
		t.Fatalf("capacity=%d limit=%d, want 3/3", g.Capacity(), g.Limit())
	}
	if err := g.Resize(context.Background(), 4); err == nil {
		t.Fatal("fixed gate grew past its limit")
	}
}

func TestResizeGrowWakesWaiter(t *testing.T) {
	g := NewResizableGate(1, 4, 8)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		admitted <- g.Acquire(wctx)
	}()
	// Let the waiter queue up, then grow: it must be admitted without
	// any Release happening.
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := g.Resize(ctx, 2); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := <-admitted; err != nil {
		t.Fatalf("waiter not admitted after grow: %v", err)
	}
	wg.Wait()
	if g.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", g.Capacity())
	}
	g.Release()
	g.Release()
}

func TestResizeShrinkDrainsInsteadOfDropping(t *testing.T) {
	g := NewResizableGate(3, 4, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := g.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		done <- g.Resize(sctx, 1)
	}()
	// The shrink must block while all three holders are live.
	select {
	case err := <-done:
		t.Fatalf("shrink completed with 3 holders in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("shrink after releases: %v", err)
	}
	wg.Wait()
	if g.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", g.Capacity())
	}
	// The remaining holder's token is the only one: a release then a
	// single acquire works, a second doesn't.
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if err := g.Acquire(short); err == nil {
		t.Fatal("second acquire succeeded at concurrency 1")
	}
	g.Release()
}

func TestResizeShrinkTimeoutIsAllOrNothing(t *testing.T) {
	g := NewResizableGate(3, 4, 0)
	ctx := context.Background()
	// Hold two of three tokens, then try shrinking to 1 with an already
	// expired context: only one token is free, so the shrink must fail
	// AND put the withdrawn token back.
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond)
	if err := g.Resize(expired, 1); err == nil {
		t.Fatal("shrink succeeded with holders outstanding and ctx expired")
	}
	if g.Capacity() != 3 {
		t.Fatalf("failed shrink changed capacity to %d", g.Capacity())
	}
	// All three tokens must still exist: with the two held released, three
	// acquires succeed.
	g.Release()
	g.Release()
	for i := 0; i < 3; i++ {
		if err := g.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d after failed shrink: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		g.Release()
	}
}

func TestResizeValidation(t *testing.T) {
	g := NewResizableGate(2, 4, 0)
	ctx := context.Background()
	if err := g.Resize(ctx, 0); err == nil {
		t.Fatal("resize to 0 accepted")
	}
	if err := g.Resize(ctx, 5); err == nil {
		t.Fatal("resize past limit accepted")
	}
	if err := g.Resize(ctx, 2); err != nil {
		t.Fatalf("no-op resize: %v", err)
	}
	if err := g.Resize(ctx, 4); err != nil {
		t.Fatalf("grow to limit: %v", err)
	}
	if g.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", g.Capacity())
	}
}
