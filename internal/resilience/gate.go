package resilience

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Gate.Acquire when the bounded wait queue is
// at capacity — the caller should shed the request immediately (HTTP 429)
// rather than let goroutines pile up.
var ErrQueueFull = errors.New("resilience: admission queue full")

// Gate is an admission controller: at most `concurrency` callers hold the
// gate at once, and at most `maxQueue` more may wait for a slot. Anything
// beyond that is rejected instantly with ErrQueueFull, and waiters give up
// when their context expires. This bounds both the resource pool AND the
// goroutine backlog, the two ways an inference server dies under overload.
type Gate struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
	held     atomic.Int64
}

// NewGate builds a gate admitting `concurrency` concurrent holders
// (minimum 1) with up to `maxQueue` waiters (minimum 0).
func NewGate(concurrency, maxQueue int) *Gate {
	if concurrency < 1 {
		concurrency = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	g := &Gate{
		slots:    make(chan struct{}, concurrency),
		maxQueue: int64(maxQueue),
	}
	for i := 0; i < concurrency; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// Acquire takes a slot, waiting in the bounded queue if none is free.
// It returns nil on success (the caller MUST call Release exactly once),
// ErrQueueFull when the queue is at capacity, or ctx.Err() when the
// context is cancelled or its deadline expires while waiting.
func (g *Gate) Acquire(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case <-g.slots:
		g.held.Add(1)
		return nil
	default:
	}
	// Slow path: join the bounded queue. The increment-then-check pattern
	// admits at most maxQueue waiters; losers decrement and bail without
	// ever blocking.
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return ErrQueueFull
	}
	defer g.waiting.Add(-1)
	select {
	case <-g.slots:
		g.held.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (g *Gate) Release() {
	g.held.Add(-1)
	select {
	case g.slots <- struct{}{}:
	default:
		panic("resilience: Gate.Release without matching Acquire")
	}
}

// Waiting reports the current queue depth.
func (g *Gate) Waiting() int64 { return g.waiting.Load() }

// Held reports how many slots are currently held.
func (g *Gate) Held() int64 { return g.held.Load() }

// Capacity reports the concurrency limit.
func (g *Gate) Capacity() int { return cap(g.slots) }

// MaxQueue reports the wait-queue bound.
func (g *Gate) MaxQueue() int { return int(g.maxQueue) }
