package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrQueueFull is returned by Gate.Acquire when the bounded wait queue is
// at capacity — the caller should shed the request immediately (HTTP 429)
// rather than let goroutines pile up.
var ErrQueueFull = errors.New("resilience: admission queue full")

// Gate is an admission controller: at most `concurrency` callers hold the
// gate at once, and at most `maxQueue` more may wait for a slot. Anything
// beyond that is rejected instantly with ErrQueueFull, and waiters give up
// when their context expires. This bounds both the resource pool AND the
// goroutine backlog, the two ways an inference server dies under overload.
//
// A gate built with NewResizableGate can additionally have its concurrency
// retuned at runtime with Resize, up to the limit fixed at construction.
type Gate struct {
	slots    chan struct{} // cap(slots) is the resize limit
	capacity atomic.Int64  // current logical concurrency, ≤ cap(slots)
	maxQueue int64
	waiting  atomic.Int64
	held     atomic.Int64
}

// NewGate builds a gate admitting `concurrency` concurrent holders
// (minimum 1) with up to `maxQueue` waiters (minimum 0). The concurrency
// is fixed for the gate's lifetime; use NewResizableGate for a gate the
// control loop may retune.
func NewGate(concurrency, maxQueue int) *Gate {
	return NewResizableGate(concurrency, concurrency, maxQueue)
}

// NewResizableGate builds a gate admitting `concurrency` holders that
// Resize may later retune anywhere in [1, limit]. The limit is fixed: it
// is the token-channel capacity, so growth never allocates and Release
// never blocks.
func NewResizableGate(concurrency, limit, maxQueue int) *Gate {
	if concurrency < 1 {
		concurrency = 1
	}
	if limit < concurrency {
		limit = concurrency
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	g := &Gate{
		slots:    make(chan struct{}, limit),
		maxQueue: int64(maxQueue),
	}
	for i := 0; i < concurrency; i++ {
		g.slots <- struct{}{}
	}
	g.capacity.Store(int64(concurrency))
	return g
}

// Acquire takes a slot, waiting in the bounded queue if none is free.
// It returns nil on success (the caller MUST call Release exactly once),
// ErrQueueFull when the queue is at capacity, or ctx.Err() when the
// context is cancelled or its deadline expires while waiting.
func (g *Gate) Acquire(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case <-g.slots:
		g.held.Add(1)
		return nil
	default:
	}
	// Slow path: join the bounded queue. The increment-then-check pattern
	// admits at most maxQueue waiters; losers decrement and bail without
	// ever blocking.
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return ErrQueueFull
	}
	defer g.waiting.Add(-1)
	select {
	case <-g.slots:
		g.held.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (g *Gate) Release() {
	g.held.Add(-1)
	select {
	case g.slots <- struct{}{}:
	default:
		panic("resilience: Gate.Release without matching Acquire")
	}
}

// Resize retunes the concurrency to n ∈ [1, limit]. Growing is instant:
// new tokens are pushed and waiters wake immediately. Shrinking is
// all-or-nothing and never drops work: tokens are withdrawn as current
// holders Release them, so in-flight requests always finish; if ctx
// expires before enough tokens return, everything withdrawn so far is put
// back and the gate is left at its old capacity.
//
// Concurrent Resize calls must be serialized by the caller (the registry
// does this under its per-model reload lock).
func (g *Gate) Resize(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("resilience: gate resize to %d: concurrency must be ≥ 1", n)
	}
	if n > cap(g.slots) {
		return fmt.Errorf("resilience: gate resize to %d exceeds limit %d", n, cap(g.slots))
	}
	cur := int(g.capacity.Load())
	if n == cur {
		return nil
	}
	if n > cur {
		// Total tokens outstanding never exceeds capacity ≤ cap(slots),
		// so these sends cannot block.
		for i := 0; i < n-cur; i++ {
			g.slots <- struct{}{}
		}
		g.capacity.Store(int64(n))
		return nil
	}
	taken := 0
	for taken < cur-n {
		select {
		case <-g.slots:
			taken++
		case <-ctx.Done():
			for i := 0; i < taken; i++ {
				g.slots <- struct{}{}
			}
			return fmt.Errorf("resilience: gate shrink %d→%d interrupted with %d withdrawn: %w", cur, n, taken, ctx.Err())
		}
	}
	g.capacity.Store(int64(n))
	return nil
}

// Waiting reports the current queue depth.
func (g *Gate) Waiting() int64 { return g.waiting.Load() }

// Held reports how many slots are currently held.
func (g *Gate) Held() int64 { return g.held.Load() }

// Capacity reports the current concurrency limit.
func (g *Gate) Capacity() int { return int(g.capacity.Load()) }

// Limit reports the maximum concurrency Resize may grow to.
func (g *Gate) Limit() int { return cap(g.slots) }

// MaxQueue reports the wait-queue bound.
func (g *Gate) MaxQueue() int { return int(g.maxQueue) }
