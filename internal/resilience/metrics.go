// Package resilience provides the building blocks that keep the serving
// layer alive under hostile conditions: admission control with a bounded
// wait queue (Gate), panic capture with stack traces (Safe), and cheap
// always-on failure observability (Metrics with a latency ring buffer).
//
// The package is deliberately free of HTTP and graph dependencies so the
// same primitives can front other subsystems (the bench harness, a future
// batch scheduler, bitflow-train checkpoint serving).
package resilience

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a set of atomic counters plus a latency ring shared by a
// serving subsystem. All methods are safe for concurrent use; the zero
// value is NOT usable — call NewMetrics.
type Metrics struct {
	Requests        atomic.Int64 // admitted to the handler (any outcome)
	OK              atomic.Int64 // completed 2xx
	BadRequests     atomic.Int64 // rejected for malformed input (4xx except shed)
	Shed            atomic.Int64 // load-shed: queue full or deadline while waiting
	PanicsRecovered atomic.Int64 // panics caught and converted to errors
	QueueDepth      atomic.Int64 // requests currently waiting for admission
	InFlight        atomic.Int64 // requests currently holding a resource

	// Micro-batching counters (internal/batch). Occupancy is tracked as
	// the (Batches, BatchItems, BatchMaxOccupancy) triple: mean occupancy
	// is BatchItems/Batches, the max is kept directly.
	Batches           atomic.Int64 // batches dispatched to a runner
	BatchItems        atomic.Int64 // requests carried by those batches
	BatchMaxOccupancy atomic.Int64 // largest batch dispatched so far
	BatchFlushWindow  atomic.Int64 // flushes because the coalescing window expired
	BatchFlushFull    atomic.Int64 // flushes because the batch hit the size cap
	BatchFlushDrain   atomic.Int64 // flushes forced by shutdown drain

	lat *LatencyRing
	// layers holds the per-layer timing rings fed by the execution
	// context's observer hook (graph.InferContext → exec.Observer).
	layers *LayerStats
}

// ObserveBatch records one dispatched batch of n requests with the given
// flush reason, maintaining the occupancy triple and flush-reason counters.
func (m *Metrics) ObserveBatch(n int, reason FlushReason) {
	m.Batches.Add(1)
	m.BatchItems.Add(int64(n))
	for {
		cur := m.BatchMaxOccupancy.Load()
		if int64(n) <= cur || m.BatchMaxOccupancy.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	switch reason {
	case FlushWindow:
		m.BatchFlushWindow.Add(1)
	case FlushFull:
		m.BatchFlushFull.Add(1)
	case FlushDrain:
		m.BatchFlushDrain.Add(1)
	}
}

// FlushReason says why a batch left the coalescing window.
type FlushReason int

const (
	// FlushWindow: the batching window expired with at least one request.
	FlushWindow FlushReason = iota
	// FlushFull: the batch reached the size cap before the window closed.
	FlushFull
	// FlushDrain: shutdown drain flushed whatever had accumulated.
	FlushDrain
)

// String returns the reason's wire name, as used by /statusz.
func (fr FlushReason) String() string {
	switch fr {
	case FlushWindow:
		return "window-expired"
	case FlushFull:
		return "size-cap"
	case FlushDrain:
		return "drain"
	}
	return "unknown"
}

// NewMetrics builds a Metrics with a latency ring of the given capacity
// (minimum 16; 1024 is a reasonable serving default).
func NewMetrics(ringSize int) *Metrics {
	return &Metrics{lat: NewLatencyRing(ringSize), layers: NewLayerStats(256)}
}

// ObserveLatency records one successful request's service time.
func (m *Metrics) ObserveLatency(d time.Duration) { m.lat.Observe(d) }

// LatencyQuantile reads one quantile from the latency ring without
// assembling a full Snapshot — cheap enough for the control loop and the
// congestion-derived Retry-After hint to call per decision. Returns 0
// when no samples have been observed yet.
func (m *Metrics) LatencyQuantile(q float64) time.Duration { return m.lat.Quantile(q) }

// ObserveLayer records one layer execution from a forward pass. The
// signature matches exec.Observer, so servers attach it directly to
// their base execution context.
func (m *Metrics) ObserveLayer(layer, kind string, d time.Duration) {
	m.layers.Observe(layer, kind, d)
}

// Snapshot is a point-in-time, JSON-serializable view of the counters.
type Snapshot struct {
	Requests        int64 `json:"requests"`
	OK              int64 `json:"ok"`
	BadRequests     int64 `json:"bad_requests"`
	Shed            int64 `json:"shed"`
	PanicsRecovered int64 `json:"panics_recovered"`
	QueueDepth      int64 `json:"queue_depth"`
	InFlight        int64 `json:"in_flight"`

	Batches            int64   `json:"batches,omitempty"`
	BatchItems         int64   `json:"batch_items,omitempty"`
	BatchMeanOccupancy float64 `json:"batch_mean_occupancy,omitempty"`
	BatchMaxOccupancy  int64   `json:"batch_max_occupancy,omitempty"`
	BatchFlushWindow   int64   `json:"batch_flush_window_expired,omitempty"`
	BatchFlushFull     int64   `json:"batch_flush_size_cap,omitempty"`
	BatchFlushDrain    int64   `json:"batch_flush_drain,omitempty"`

	LatencySamples int    `json:"latency_samples"`
	P50            string `json:"latency_p50"`
	P99            string `json:"latency_p99"`
	P50Micros      int64  `json:"latency_p50_us"`
	P99Micros      int64  `json:"latency_p99_us"`

	// Layers is the per-layer p50/p99 breakdown in execution order,
	// present once at least one observed forward pass has run.
	Layers []LayerStat `json:"layers,omitempty"`
}

// Snapshot reads every counter and the latency quantiles atomically
// enough for monitoring (individual counters are atomic; the set is not
// a single transaction, which is fine for /statusz).
func (m *Metrics) Snapshot() Snapshot {
	p50 := m.lat.Quantile(0.50)
	p99 := m.lat.Quantile(0.99)
	batches := m.Batches.Load()
	var meanOcc float64
	if batches > 0 {
		meanOcc = float64(m.BatchItems.Load()) / float64(batches)
	}
	return Snapshot{
		Requests:        m.Requests.Load(),
		OK:              m.OK.Load(),
		BadRequests:     m.BadRequests.Load(),
		Shed:            m.Shed.Load(),
		PanicsRecovered: m.PanicsRecovered.Load(),
		QueueDepth:      m.QueueDepth.Load(),
		InFlight:        m.InFlight.Load(),

		Batches:            batches,
		BatchItems:         m.BatchItems.Load(),
		BatchMeanOccupancy: meanOcc,
		BatchMaxOccupancy:  m.BatchMaxOccupancy.Load(),
		BatchFlushWindow:   m.BatchFlushWindow.Load(),
		BatchFlushFull:     m.BatchFlushFull.Load(),
		BatchFlushDrain:    m.BatchFlushDrain.Load(),

		LatencySamples: m.lat.Len(),
		P50:            p50.String(),
		P99:            p99.String(),
		P50Micros:      p50.Microseconds(),
		P99Micros:      p99.Microseconds(),

		Layers: m.layers.Snapshot(),
	}
}

// LatencyRing is a fixed-capacity ring buffer of duration samples with
// quantile queries. Writers overwrite the oldest sample once full, so the
// quantiles always describe the most recent window. Safe for concurrent
// use.
type LatencyRing struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
}

// NewLatencyRing allocates a ring holding up to size samples (minimum 16).
func NewLatencyRing(size int) *LatencyRing {
	if size < 16 {
		size = 16
	}
	return &LatencyRing{samples: make([]time.Duration, size)}
}

// Observe appends one sample, evicting the oldest when full.
func (r *LatencyRing) Observe(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports how many samples the ring currently holds.
func (r *LatencyRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.samples)
	}
	return r.next
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the current window,
// or 0 when the ring is empty. Cost is O(n log n) on the window size —
// acceptable for a monitoring endpoint, not for a hot path.
func (r *LatencyRing) Quantile(q float64) time.Duration {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.samples)
	}
	if n == 0 {
		r.mu.Unlock()
		return 0
	}
	cp := make([]time.Duration, n)
	copy(cp, r.samples[:n])
	r.mu.Unlock()

	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[n-1]
	}
	idx := int(q * float64(n-1))
	return cp[idx]
}
