package kernels

import "bitflow/internal/bitpack"

// This file is the fused binarization epilogue of the forward data-flow
// overhaul (Vorabbi et al., "Optimizing data-flow in Binary Neural
// Networks"): once the XOR+popcount conv itself is fast, materializing a
// pre-activation plane only to threshold, re-binarize, and re-pack it is
// the dominant cost. The Epilogue folds compare-threshold → set-bit (and,
// in the Or variants, the following max-pool) into the accumulate loop,
// so packed bits are written straight into the next layer's input buffer
// and no intermediate plane exists.
//
// The comparison is branchless. A folded batch-norm activation is
//
//	bit = d ≥ T[c]        (γ > 0)
//	bit = d ≤ T[c]        (γ < 0, "flipped")
//
// and d ≤ T is exactly ¬(d ≥ T+1), so a flipped channel stores T+1 and
// XORs its bit. Thresholds are widened to int64 at construction: T+1
// would overflow int32 at T = MaxInt32, and the pre-activation d (≤ 2³¹)
// subtracts safely in 64 bits.
//
// The packing loops are word-major: thresholds, flip words, and output
// words advance as cursor slices, one word of up to 64 channels per outer
// step, so the compiler proves every per-channel access in bounds
// (`bitflow-vet codegen`). The only annotated checks left run once per
// filter or per word, amortized over a whole kernel call.

// Epilogue is a pre-compiled compare-threshold → set-bit pass over K
// output channels. Build one per operator at construction/SetThresholds
// time (never per inference) and share it freely: it is read-only.
type Epilogue struct {
	// K is the channel count; bits beyond K are cleared by Pack.
	K int
	// T holds the adjusted per-channel thresholds: T[c] for straight
	// channels, T[c]+1 for flipped ones (see file comment).
	T []int64
	// Flip packs the per-channel inversion bits, one word per 64
	// channels, aligned with the packed output words.
	Flip []uint64
}

// NewSignEpilogue returns the plain Equation 3 sign activation (d ≥ 0)
// over k channels.
func NewSignEpilogue(k int) *Epilogue {
	return &Epilogue{K: k, T: make([]int64, k), Flip: make([]uint64, bitpack.WordsFor(k))} //bitflow:alloc-ok constructor, runs once at operator build time, never per inference
}

// NewEpilogue compiles per-channel int32 thresholds and flip flags into
// the branchless form. t and flip must have equal length.
//
//bitflow:bce-ok constructor, runs once at operator build time, never per inference
func NewEpilogue(t []int32, flip []bool) *Epilogue {
	if len(t) != len(flip) {
		panicSize("NewEpilogue", "flip", len(flip), len(t))
	}
	e := NewSignEpilogue(len(t)) //bitflow:alloc-ok constructor, runs once at operator build time (inlined NewSignEpilogue allocations land on this line)
	for c := range t {
		e.T[c] = int64(t[c])
		if flip[c] {
			e.T[c]++ // d ≤ T  ⇔  ¬(d ≥ T+1)
			e.Flip[c/bitpack.WordBits] |= 1 << uint(c%bitpack.WordBits)
		}
	}
	return e
}

// wordChannels clamps one output word's channel count: at most WordBits,
// never past the remaining thresholds or pre-activations. The explicit
// clamp chain is what lets the BCE prover discharge every d[c]/t[c]
// access in the word-major loops below.
func wordChannels(nd, nt int) int {
	kw := nd
	if kw > nt {
		kw = nt
	}
	if kw > bitpack.WordBits {
		kw = bitpack.WordBits
	}
	return kw
}

// Pack writes the threshold bits of the K pre-activations d into dst,
// overwriting it and clearing trailing words — the fused replacement for
// a per-element Thresholds.bit pass.
func (e *Epilogue) Pack(d []int32, dst []uint64) {
	if len(d) != e.K {
		panicSize("Epilogue.Pack", "d", len(d), e.K)
	}
	if len(dst) < bitpack.WordsFor(e.K) {
		panicSize("Epilogue.Pack", "dst", len(dst), bitpack.WordsFor(e.K))
	}
	t := e.T
	fl := e.Flip
	out := dst
	for len(d) > 0 && len(fl) > 0 && len(out) > 0 {
		kw := wordChannels(len(d), len(t))
		var word uint64
		for c := 0; c < kw; c++ {
			ge := uint64(((int64(d[c])-t[c])>>63)+1) & 1
			word |= ge << uint(c)
		}
		out[0] = word ^ fl[0]
		d = d[kw:]
		t = t[kw:]
		fl = fl[1:]
		out = out[1:]
	}
	for len(out) > 0 {
		out[0] = 0
		out = out[1:]
	}
}

// PackOr ORs the threshold bits of d into dst without clearing — the
// pooled accumulation step (max over sign bits is OR). dst must span at
// least WordsFor(K) words and already hold a previous window position's
// bits (or zeros).
func (e *Epilogue) PackOr(d []int32, dst []uint64) {
	if len(d) != e.K {
		panicSize("Epilogue.PackOr", "d", len(d), e.K)
	}
	if len(dst) < bitpack.WordsFor(e.K) {
		panicSize("Epilogue.PackOr", "dst", len(dst), bitpack.WordsFor(e.K))
	}
	t := e.T
	fl := e.Flip
	out := dst
	for len(d) > 0 && len(fl) > 0 && len(out) > 0 {
		kw := wordChannels(len(d), len(t))
		var word uint64
		for c := 0; c < kw; c++ {
			ge := uint64(((int64(d[c])-t[c])>>63)+1) & 1
			word |= ge << uint(c)
		}
		out[0] |= word ^ fl[0]
		d = d[kw:]
		t = t[kw:]
		fl = fl[1:]
		out = out[1:]
	}
}

// ConvEpilogue runs the accumulate→threshold→set-bit ladder for one
// output pixel: for each of e.K filters it XOR+popcounts the gathered
// input rows against the filter block and writes the threshold bit into
// dst, overwriting dst fully (trailing words cleared). f is the
// width-ladder rows kernel, fw the packed filter bank (fstride words per
// filter), n32 the valid lane count N of Equation 1.
func ConvEpilogue(f XorPopRowsFunc, rows [][]uint64, fw []uint64, fstride int, n32 int32, e *Epilogue, dst []uint64) {
	if len(fw) < e.K*fstride {
		panicSize("ConvEpilogue", "fw", len(fw), e.K*fstride)
	}
	if len(dst) < bitpack.WordsFor(e.K) {
		panicSize("ConvEpilogue", "dst", len(dst), bitpack.WordsFor(e.K))
	}
	t := e.T
	fl := e.Flip
	out := dst
	fwk := fw
	n := int64(n32)
	for len(t) > 0 && len(fl) > 0 && len(out) > 0 {
		kw := wordChannels(len(t), len(t))
		var word uint64
		for c := 0; c < kw && len(fwk) >= fstride; c++ {
			acc := f(rows, fwk[:fstride:fstride]) //bitflow:bce-ok once per filter, amortized over the fstride-word kernel call
			fwk = fwk[fstride:]                   //bitflow:bce-ok advances past the consumed filter; cannot fail under the loop guard
			d := n - 2*int64(acc)
			ge := uint64(((d-t[c])>>63)+1) & 1
			word |= ge << uint(c)
		}
		out[0] = word ^ fl[0]
		t = t[kw:]
		fl = fl[1:]
		out = out[1:]
	}
	for len(out) > 0 {
		out[0] = 0
		out = out[1:]
	}
}

// ConvEpilogueOr is ConvEpilogue for the remaining positions of a pool
// window: threshold bits OR into dst (max-pool commutes with sign).
// Because OR is monotone, a filter whose destination bit is already set
// cannot change the result — its XOR+popcount is skipped entirely. On
// typical activations roughly half the filters of each later window
// position short-circuit, which is where the fused path's speedup over
// conv-then-pool comes from.
func ConvEpilogueOr(f XorPopRowsFunc, rows [][]uint64, fw []uint64, fstride int, n32 int32, e *Epilogue, dst []uint64) {
	if len(fw) < e.K*fstride {
		panicSize("ConvEpilogueOr", "fw", len(fw), e.K*fstride)
	}
	if len(dst) < bitpack.WordsFor(e.K) {
		panicSize("ConvEpilogueOr", "dst", len(dst), bitpack.WordsFor(e.K))
	}
	t := e.T
	fl := e.Flip
	out := dst
	fwk := fw
	n := int64(n32)
	for len(t) > 0 && len(fl) > 0 && len(out) > 0 {
		kw := wordChannels(len(t), len(t))
		// out already lives in the post-flip domain, so flip is applied
		// per channel: a whole-word XOR would corrupt the bits
		// accumulated by earlier window positions.
		have := out[0]
		flip := fl[0]
		for c := 0; c < kw && len(fwk) >= fstride; c++ {
			if have&(uint64(1)<<uint(c)) != 0 {
				fwk = fwk[fstride:] //bitflow:bce-ok skip advance, guarded by the loop condition
				continue            // already 1: OR can't change it, skip the popcounts
			}
			acc := f(rows, fwk[:fstride:fstride]) //bitflow:bce-ok once per filter, amortized over the fstride-word kernel call
			fwk = fwk[fstride:]                   //bitflow:bce-ok advances past the consumed filter; cannot fail under the loop guard
			d := n - 2*int64(acc)
			ge := uint64(((d-t[c])>>63)+1) & 1
			b := ge ^ (flip >> uint(c) & 1)
			have |= b << uint(c)
		}
		out[0] = have
		t = t[kw:]
		fl = fl[1:]
		out = out[1:]
	}
}

// ConvBatchEpilogue runs the batched accumulate→threshold→set-bit ladder
// for one output pixel across B images: gather holds the B receptive
// fields (S words each, image-major), kernel is the width-ladder batch
// kernel, accs is B-length popcount scratch, and out receives B packed
// pixels of outWPP words each, overwritten fully.
func ConvBatchEpilogue(kernel XorPopBatchFunc, gather, fw []uint64, S int, n32 int32, e *Epilogue, accs []int32, out []uint64, outWPP int) {
	B := len(accs)
	if len(gather) != B*S {
		panicSize("ConvBatchEpilogue", "gather", len(gather), B*S)
	}
	if len(fw) < e.K*S {
		panicSize("ConvBatchEpilogue", "fw", len(fw), e.K*S)
	}
	if len(out) != B*outWPP {
		panicSize("ConvBatchEpilogue", "out", len(out), B*outWPP)
	}
	clear(out)
	t := e.T
	fl := e.Flip
	fwk := fw
	n := int64(n32)
	for k := 0; k < e.K && k < len(t) && len(fwk) >= S; k++ {
		kernel(gather, fwk[:S:S], accs) //bitflow:bce-ok once per filter, amortized over the batched S-word kernel call
		fwk = fwk[S:]                   //bitflow:bce-ok advances past the consumed filter; cannot fail under the loop guard
		wi := k / bitpack.WordBits
		sh := uint(k % bitpack.WordBits)
		var flip uint64
		if wi < len(fl) {
			flip = fl[wi] >> sh & 1 //bitflow:bce-ok once per filter; the prover cannot see k/WordBits >= 0 through the division
		}
		o := out[wi:] //bitflow:bce-ok one scatter cursor per filter; in range whenever out spans WordsFor(K) words per image
		for b := 0; b < len(accs) && len(o) > 0; b++ {
			d := n - 2*int64(accs[b])
			ge := uint64(((d-t[k])>>63)+1) & 1
			o[0] |= (ge ^ flip) << sh
			if len(o) <= outWPP {
				break
			}
			o = o[outWPP:] //bitflow:bce-ok strides to the next image's word; guarded by the break above
		}
	}
}

// ConvBatchEpilogueOr is ConvBatchEpilogue for the remaining positions of
// a pool window: bits OR into out (no clear). A filter is skipped only
// when every image in the batch already has its bit set — partial
// saturation still pays one batched kernel call, but fully saturated
// filters (common deep in a window) skip the popcounts for the whole
// batch.
func ConvBatchEpilogueOr(kernel XorPopBatchFunc, gather, fw []uint64, S int, n32 int32, e *Epilogue, accs []int32, out []uint64, outWPP int) {
	B := len(accs)
	if len(gather) != B*S {
		panicSize("ConvBatchEpilogueOr", "gather", len(gather), B*S)
	}
	if len(fw) < e.K*S {
		panicSize("ConvBatchEpilogueOr", "fw", len(fw), e.K*S)
	}
	if len(out) != B*outWPP {
		panicSize("ConvBatchEpilogueOr", "out", len(out), B*outWPP)
	}
	t := e.T
	fl := e.Flip
	fwk := fw
	n := int64(n32)
	for k := 0; k < e.K && k < len(t) && len(fwk) >= S; k++ {
		wi := k / bitpack.WordBits
		sh := uint(k % bitpack.WordBits)
		mask := uint64(1) << sh
		saturated := true
		o := out[wi:] //bitflow:bce-ok one scan cursor per filter; in range whenever out spans WordsFor(K) words per image
		for b := 0; b < len(accs) && len(o) > 0; b++ {
			if o[0]&mask == 0 {
				saturated = false
				break
			}
			if len(o) <= outWPP {
				break
			}
			o = o[outWPP:] //bitflow:bce-ok strides to the next image's word; guarded by the break above
		}
		if saturated {
			fwk = fwk[S:] //bitflow:bce-ok skip advance, guarded by the loop condition
			continue      // every lane already 1: OR can't change any of them
		}
		kernel(gather, fwk[:S:S], accs) //bitflow:bce-ok once per filter, amortized over the batched S-word kernel call
		fwk = fwk[S:]                   //bitflow:bce-ok advances past the consumed filter; cannot fail under the loop guard
		var flip uint64
		if wi < len(fl) {
			flip = fl[wi] >> sh & 1
		}
		o = out[wi:] //bitflow:bce-ok one scatter cursor per filter; in range whenever out spans WordsFor(K) words per image
		for b := 0; b < len(accs) && len(o) > 0; b++ {
			d := n - 2*int64(accs[b])
			ge := uint64(((d-t[k])>>63)+1) & 1
			o[0] |= (ge ^ flip) << sh
			if len(o) <= outWPP {
				break
			}
			o = o[outWPP:] //bitflow:bce-ok strides to the next image's word; guarded by the break above
		}
	}
}
