package kernels

import (
	"testing"
	"testing/quick"

	"bitflow/internal/workload"
)

func TestHarleySealMatchesReference(t *testing.T) {
	r := workload.NewRNG(190)
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 100, 392, 1000} {
		if n == 0 {
			if got := XorPopHarleySeal(nil, nil); got != 0 {
				t.Errorf("empty: got %d", got)
			}
			continue
		}
		a := randWords(r, n)
		b := randWords(r, n)
		if got, want := XorPopHarleySeal(a, b), refXorPop(a, b); got != want {
			t.Errorf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestHarleySealQuick(t *testing.T) {
	f := func(seed uint64, nn uint8) bool {
		n := int(nn) + 1
		r := workload.NewRNG(seed)
		a := randWords(r, n)
		b := randWords(r, n)
		return XorPopHarleySeal(a, b) == refXorPop(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarleySealExtremes(t *testing.T) {
	n := 48
	a := make([]uint64, n)
	b := make([]uint64, n)
	if XorPopHarleySeal(a, b) != 0 {
		t.Error("all-zero should count 0")
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	if got := XorPopHarleySeal(a, b); got != n*64 {
		t.Errorf("all-ones: got %d want %d", got, n*64)
	}
}

func TestCSA(t *testing.T) {
	// Per bit: sum+2·carry == x+y+z for all 8 combinations.
	for x := uint64(0); x <= 1; x++ {
		for y := uint64(0); y <= 1; y++ {
			for z := uint64(0); z <= 1; z++ {
				s, c := csa(x, y, z)
				if s+2*c != x+y+z {
					t.Errorf("csa(%d,%d,%d) = (%d,%d)", x, y, z, s, c)
				}
			}
		}
	}
}

func BenchmarkXorPopUnrolled512(b *testing.B) {
	r := workload.NewRNG(191)
	x := randWords(r, 392) // fc6-sized stream
	y := randWords(r, 392)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorPop512(x, y)
	}
}

func BenchmarkXorPopHarleySeal(b *testing.B) {
	r := workload.NewRNG(191)
	x := randWords(r, 392)
	y := randWords(r, 392)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorPopHarleySeal(x, y)
	}
}
