package kernels

import "math/bits"

// XorPopFunc is the signature of an XOR+popcount kernel: it returns
// Σᵢ popcount(a[i] XOR b[i]) over two equal-length word slices.
// Equation 1 turns this into a binary inner product:
// dot = N − 2·XorPopFunc(a, b), with N the number of valid lanes.
type XorPopFunc func(a, b []uint64) int

// XorPop64 is the scalar kernel: one word per step. It accepts any
// length and is the fallback for buffers no wider kernel divides.
func XorPop64(a, b []uint64) int {
	_ = b[len(a)-1] // bounds-check hint
	acc := 0
	for i, av := range a {
		acc += bits.OnesCount64(av ^ b[i])
	}
	return acc
}

// XorPop128 processes 2 words per step (SSE tier). len(a) must be a
// multiple of 2.
func XorPop128(a, b []uint64) int {
	_ = b[len(a)-1]
	var acc0, acc1 int
	for i := 0; i < len(a); i += 2 {
		acc0 += bits.OnesCount64(a[i] ^ b[i])
		acc1 += bits.OnesCount64(a[i+1] ^ b[i+1])
	}
	return acc0 + acc1
}

// XorPop256 processes 4 words per step (AVX2 tier). len(a) must be a
// multiple of 4. The four independent accumulators let the CPU overlap
// the popcounts, the ILP analogue of a 256-bit lane.
func XorPop256(a, b []uint64) int {
	_ = b[len(a)-1]
	var acc0, acc1, acc2, acc3 int
	for i := 0; i < len(a); i += 4 {
		acc0 += bits.OnesCount64(a[i] ^ b[i])
		acc1 += bits.OnesCount64(a[i+1] ^ b[i+1])
		acc2 += bits.OnesCount64(a[i+2] ^ b[i+2])
		acc3 += bits.OnesCount64(a[i+3] ^ b[i+3])
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// XorPop512 processes 8 words per step (AVX-512 tier). len(a) must be a
// multiple of 8.
func XorPop512(a, b []uint64) int {
	_ = b[len(a)-1]
	var acc0, acc1, acc2, acc3 int
	for i := 0; i < len(a); i += 8 {
		acc0 += bits.OnesCount64(a[i]^b[i]) + bits.OnesCount64(a[i+4]^b[i+4])
		acc1 += bits.OnesCount64(a[i+1]^b[i+1]) + bits.OnesCount64(a[i+5]^b[i+5])
		acc2 += bits.OnesCount64(a[i+2]^b[i+2]) + bits.OnesCount64(a[i+6]^b[i+6])
		acc3 += bits.OnesCount64(a[i+3]^b[i+3]) + bits.OnesCount64(a[i+7]^b[i+7])
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// ForWidth returns the kernel implementing the given width.
func ForWidth(w Width) XorPopFunc {
	switch w {
	case W64:
		return XorPop64
	case W128:
		return XorPop128
	case W256:
		return XorPop256
	case W512:
		return XorPop512
	}
	panicUnknownWidth()
	return nil
}

// XorPopMasked is the analogue of _mm512_maskz_xor_epi64 +
// _mm512_maskz_popcnt_epi64 (paper Table I): only words whose bit is set
// in the 64-bit zeromask contribute. Used by tail handling when a shape
// cannot be padded.
func XorPopMasked(mask uint64, a, b []uint64) int {
	acc := 0
	for i := range a {
		if mask>>uint(i)&1 == 1 {
			acc += bits.OnesCount64(a[i] ^ b[i])
		}
	}
	return acc
}

// OrInto computes dst[i] |= src[i]; binary max-pooling reduces windows
// with bitwise OR ("which is used to get the max of a sequence of ones
// and zeros", paper §III-C). Unrolled by 4 to match the vector tiers.
func OrInto(dst, src []uint64) {
	n := len(dst)
	_ = src[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] |= src[i]
		dst[i+1] |= src[i+1]
		dst[i+2] |= src[i+2]
		dst[i+3] |= src[i+3]
	}
	for ; i < n; i++ {
		dst[i] |= src[i]
	}
}

// Popcount returns Σ popcount(a[i]).
func Popcount(a []uint64) int {
	acc := 0
	for _, v := range a {
		acc += bits.OnesCount64(v)
	}
	return acc
}
