package kernels

import "math/bits"

// XorPopFunc is the signature of an XOR+popcount kernel: it returns
// Σᵢ popcount(a[i] XOR b[i]) over two equal-length word slices.
// Equation 1 turns this into a binary inner product:
// dot = N − 2·XorPopFunc(a, b), with N the number of valid lanes.
//
// The kernel bodies use a chunk-advance loop shape — re-slice both
// operands by the step width each iteration and guard on both lengths —
// because that is the form the compiler's bounds-check-elimination
// prover fully discharges: `bitflow-vet codegen` pins every inner loop
// here free of IsInBounds checks, so the XOR+POPCNT ladder runs with no
// branches besides the loop condition.
type XorPopFunc func(a, b []uint64) int

// XorPop64 is the scalar kernel: one word per step. It accepts any
// length and is the fallback for buffers no wider kernel divides.
func XorPop64(a, b []uint64) int {
	b = b[:len(a)] //bitflow:bce-ok preamble pin: proves len(b) == len(a) to the prover, panics on mismatch like the old hint
	acc := 0
	for i, av := range a {
		acc += bits.OnesCount64(av ^ b[i])
	}
	return acc
}

// XorPop128 processes 2 words per step (SSE tier). len(a) must be a
// multiple of 2 (a trailing remainder narrower than the step is not
// summed).
func XorPop128(a, b []uint64) int {
	b = b[:len(a)] //bitflow:bce-ok preamble pin: proves len(b) == len(a), panics on mismatch
	var acc0, acc1 int
	for len(a) >= 2 && len(b) >= 2 {
		acc0 += bits.OnesCount64(a[0] ^ b[0])
		acc1 += bits.OnesCount64(a[1] ^ b[1])
		a = a[2:]
		b = b[2:]
	}
	return acc0 + acc1
}

// XorPop256 processes 4 words per step (AVX2 tier). len(a) must be a
// multiple of 4. The four independent accumulators let the CPU overlap
// the popcounts, the ILP analogue of a 256-bit lane. The main loop takes
// two steps at a time so the cursor guards amortize over 8 words —
// without that, the double length compare eats the win over the old
// indexed form; the sums are integers, so the pairing changes nothing.
func XorPop256(a, b []uint64) int {
	b = b[:len(a)] //bitflow:bce-ok preamble pin: proves len(b) == len(a), panics on mismatch
	var acc0, acc1, acc2, acc3 int
	for len(a) >= 8 && len(b) >= 8 {
		acc0 += bits.OnesCount64(a[0]^b[0]) + bits.OnesCount64(a[4]^b[4])
		acc1 += bits.OnesCount64(a[1]^b[1]) + bits.OnesCount64(a[5]^b[5])
		acc2 += bits.OnesCount64(a[2]^b[2]) + bits.OnesCount64(a[6]^b[6])
		acc3 += bits.OnesCount64(a[3]^b[3]) + bits.OnesCount64(a[7]^b[7])
		a = a[8:]
		b = b[8:]
	}
	if len(a) >= 4 && len(b) >= 4 {
		acc0 += bits.OnesCount64(a[0] ^ b[0])
		acc1 += bits.OnesCount64(a[1] ^ b[1])
		acc2 += bits.OnesCount64(a[2] ^ b[2])
		acc3 += bits.OnesCount64(a[3] ^ b[3])
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// XorPop512 processes 8 words per step (AVX-512 tier). len(a) must be a
// multiple of 8.
func XorPop512(a, b []uint64) int {
	b = b[:len(a)] //bitflow:bce-ok preamble pin: proves len(b) == len(a), panics on mismatch
	var acc0, acc1, acc2, acc3 int
	for len(a) >= 8 && len(b) >= 8 {
		acc0 += bits.OnesCount64(a[0]^b[0]) + bits.OnesCount64(a[4]^b[4])
		acc1 += bits.OnesCount64(a[1]^b[1]) + bits.OnesCount64(a[5]^b[5])
		acc2 += bits.OnesCount64(a[2]^b[2]) + bits.OnesCount64(a[6]^b[6])
		acc3 += bits.OnesCount64(a[3]^b[3]) + bits.OnesCount64(a[7]^b[7])
		a = a[8:]
		b = b[8:]
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// ForWidth returns the kernel implementing the given width.
func ForWidth(w Width) XorPopFunc {
	switch w {
	case W64:
		return XorPop64
	case W128:
		return XorPop128
	case W256:
		return XorPop256
	case W512:
		return XorPop512
	}
	panicUnknownWidth()
	return nil
}

// XorPopMasked is the analogue of _mm512_maskz_xor_epi64 +
// _mm512_maskz_popcnt_epi64 (paper Table I): only words whose bit is set
// in the 64-bit zeromask contribute. Used by tail handling when a shape
// cannot be padded.
//
//bitflow:bce-ok masked tail helper, called once per ragged edge, not per lane; the mask test dominates anyway
func XorPopMasked(mask uint64, a, b []uint64) int {
	acc := 0
	for i := range a {
		if mask>>uint(i)&1 == 1 {
			acc += bits.OnesCount64(a[i] ^ b[i])
		}
	}
	return acc
}

// OrInto computes dst[i] |= src[i]; binary max-pooling reduces windows
// with bitwise OR ("which is used to get the max of a sequence of ones
// and zeros", paper §III-C). Unrolled by 4 to match the vector tiers.
func OrInto(dst, src []uint64) {
	src = src[:len(dst)] //bitflow:bce-ok preamble pin: proves len(src) == len(dst), panics on mismatch
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] |= src[0]
		dst[1] |= src[1]
		dst[2] |= src[2]
		dst[3] |= src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for len(dst) > 0 && len(src) > 0 {
		dst[0] |= src[0]
		dst = dst[1:]
		src = src[1:]
	}
}

// Popcount returns Σ popcount(a[i]).
func Popcount(a []uint64) int {
	acc := 0
	for _, v := range a {
		acc += bits.OnesCount64(v)
	}
	return acc
}
