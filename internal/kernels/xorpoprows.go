package kernels

import "math/bits"

// XorPopRowsFunc accumulates XOR+popcount over several row segments
// against a contiguous filter block: result = Σᵢ Σⱼ popcount(rows[i][j]
// XOR filt[i·len(rows[i])+j]). PressedConv calls one of these once per
// (output pixel, filter) pair — the row loop lives inside the kernel so
// short segments (e.g. 3 words for C=64) do not pay an indirect call per
// filter row.
type XorPopRowsFunc func(rows [][]uint64, filt []uint64) int

// XorPopRows64 is the scalar row-batched kernel (any segment length).
func XorPopRows64(rows [][]uint64, filt []uint64) int {
	acc := 0
	off := 0
	for _, r := range rows {
		f := filt[off : off+len(r)]
		for i, v := range r {
			acc += bits.OnesCount64(v ^ f[i])
		}
		off += len(r)
	}
	return acc
}

// XorPopRows128 processes 2 words per step; segment lengths must be
// multiples of 2.
func XorPopRows128(rows [][]uint64, filt []uint64) int {
	var acc0, acc1 int
	off := 0
	for _, r := range rows {
		f := filt[off : off+len(r)]
		for i := 0; i < len(r); i += 2 {
			acc0 += bits.OnesCount64(r[i] ^ f[i])
			acc1 += bits.OnesCount64(r[i+1] ^ f[i+1])
		}
		off += len(r)
	}
	return acc0 + acc1
}

// XorPopRows256 processes 4 words per step; segment lengths must be
// multiples of 4.
func XorPopRows256(rows [][]uint64, filt []uint64) int {
	var acc0, acc1, acc2, acc3 int
	off := 0
	for _, r := range rows {
		f := filt[off : off+len(r)]
		for i := 0; i < len(r); i += 4 {
			acc0 += bits.OnesCount64(r[i] ^ f[i])
			acc1 += bits.OnesCount64(r[i+1] ^ f[i+1])
			acc2 += bits.OnesCount64(r[i+2] ^ f[i+2])
			acc3 += bits.OnesCount64(r[i+3] ^ f[i+3])
		}
		off += len(r)
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// XorPopRows512 processes 8 words per step; segment lengths must be
// multiples of 8.
func XorPopRows512(rows [][]uint64, filt []uint64) int {
	var acc0, acc1, acc2, acc3 int
	off := 0
	for _, r := range rows {
		f := filt[off : off+len(r)]
		for i := 0; i < len(r); i += 8 {
			acc0 += bits.OnesCount64(r[i]^f[i]) + bits.OnesCount64(r[i+4]^f[i+4])
			acc1 += bits.OnesCount64(r[i+1]^f[i+1]) + bits.OnesCount64(r[i+5]^f[i+5])
			acc2 += bits.OnesCount64(r[i+2]^f[i+2]) + bits.OnesCount64(r[i+6]^f[i+6])
			acc3 += bits.OnesCount64(r[i+3]^f[i+3]) + bits.OnesCount64(r[i+7]^f[i+7])
		}
		off += len(r)
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// RowsForWidth returns the row-batched kernel for the given width.
func RowsForWidth(w Width) XorPopRowsFunc {
	switch w {
	case W64:
		return XorPopRows64
	case W128:
		return XorPopRows128
	case W256:
		return XorPopRows256
	case W512:
		return XorPopRows512
	}
	panicUnknownWidth()
	return nil
}
