package kernels

import "math/bits"

// XorPopRowsFunc accumulates XOR+popcount over several row segments
// against a contiguous filter block: result = Σᵢ Σⱼ popcount(rows[i][j]
// XOR filt[i·len(rows[i])+j]). PressedConv calls one of these once per
// (output pixel, filter) pair — the row loop lives inside the kernel so
// short segments (e.g. 3 words for C=64) do not pay an indirect call per
// filter row.
//
// The filter block is consumed by advancing the filt slice past each
// row's segment; together with the per-step re-slicing of the row this
// is the loop shape the BCE prover discharges completely (`bitflow-vet
// codegen` keeps the inner loops free of bounds checks). filt must hold
// at least Σ len(rows[i]) words — a short filter panics on the per-row
// pin, exactly like the old indexed form.
type XorPopRowsFunc func(rows [][]uint64, filt []uint64) int

// XorPopRows64 is the scalar row-batched kernel (any segment length).
func XorPopRows64(rows [][]uint64, filt []uint64) int {
	acc := 0
	for _, r := range rows {
		f := filt[:len(r)] //bitflow:bce-ok per-row pin: proves len(f) == len(r), panics if the filter block is short
		for i, v := range r {
			acc += bits.OnesCount64(v ^ f[i])
		}
		filt = filt[len(r):] //bitflow:bce-ok advances past the consumed segment; cannot fail after the pin above
	}
	return acc
}

// XorPopRows128 processes 2 words per step; segment lengths must be
// multiples of 2.
func XorPopRows128(rows [][]uint64, filt []uint64) int {
	var acc0, acc1 int
	for _, r := range rows {
		n := len(r)
		f := filt[:n] //bitflow:bce-ok per-row pin: panics if the filter block is short
		for len(r) >= 2 && len(f) >= 2 {
			acc0 += bits.OnesCount64(r[0] ^ f[0])
			acc1 += bits.OnesCount64(r[1] ^ f[1])
			r = r[2:]
			f = f[2:]
		}
		filt = filt[n:] //bitflow:bce-ok cannot fail: the pin above proved len(filt) >= n
	}
	return acc0 + acc1
}

// XorPopRows256 processes 4 words per step; segment lengths must be
// multiples of 4.
func XorPopRows256(rows [][]uint64, filt []uint64) int {
	var acc0, acc1, acc2, acc3 int
	for _, r := range rows {
		n := len(r)
		f := filt[:n] //bitflow:bce-ok per-row pin: panics if the filter block is short
		for len(r) >= 4 && len(f) >= 4 {
			acc0 += bits.OnesCount64(r[0] ^ f[0])
			acc1 += bits.OnesCount64(r[1] ^ f[1])
			acc2 += bits.OnesCount64(r[2] ^ f[2])
			acc3 += bits.OnesCount64(r[3] ^ f[3])
			r = r[4:]
			f = f[4:]
		}
		filt = filt[n:] //bitflow:bce-ok cannot fail: the pin above proved len(filt) >= n
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// XorPopRows512 processes 8 words per step; segment lengths must be
// multiples of 8.
func XorPopRows512(rows [][]uint64, filt []uint64) int {
	var acc0, acc1, acc2, acc3 int
	for _, r := range rows {
		n := len(r)
		f := filt[:n] //bitflow:bce-ok per-row pin: panics if the filter block is short
		for len(r) >= 8 && len(f) >= 8 {
			acc0 += bits.OnesCount64(r[0]^f[0]) + bits.OnesCount64(r[4]^f[4])
			acc1 += bits.OnesCount64(r[1]^f[1]) + bits.OnesCount64(r[5]^f[5])
			acc2 += bits.OnesCount64(r[2]^f[2]) + bits.OnesCount64(r[6]^f[6])
			acc3 += bits.OnesCount64(r[3]^f[3]) + bits.OnesCount64(r[7]^f[7])
			r = r[8:]
			f = f[8:]
		}
		filt = filt[n:] //bitflow:bce-ok cannot fail: the pin above proved len(filt) >= n
	}
	return (acc0 + acc1) + (acc2 + acc3)
}

// RowsForWidth returns the row-batched kernel for the given width.
func RowsForWidth(w Width) XorPopRowsFunc {
	switch w {
	case W64:
		return XorPopRows64
	case W128:
		return XorPopRows128
	case W256:
		return XorPopRows256
	case W512:
		return XorPopRows512
	}
	panicUnknownWidth()
	return nil
}
