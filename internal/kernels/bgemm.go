package kernels

import (
	"bitflow/internal/exec"
)

// This file implements bgemm, BitFlow's binary GEMM (paper gemm level,
// §IV): C = A × Bᵀ where A is M×N bits (M packed rows of wpr words) and B
// was pre-transformed by bitpack.PackMatrixBT into K packed rows of wpr
// words. Output C is M×K int32 inner products.
//
// Optimizations mirror the paper's sgemm-derived techniques:
//   - B is packed transposed, so both inner operands stream linearly;
//   - register blocking: 4 output columns share one pass over the A row
//     (loop unrolling over K);
//   - K-tiling keeps the active slab of B rows inside the L2 cache for
//     large N (fc6: N = 25088 → wpr = 392 words = 3.1 KiB per row).

// BGemmOpts tunes the blocked bgemm. Zero values select defaults.
type BGemmOpts struct {
	// Kernel is the XOR+popcount kernel; nil selects XorPop64.
	Kernel XorPopFunc
	// KTile is the number of B rows per tile; 0 selects 64.
	KTile int
}

func (o *BGemmOpts) fill() {
	if o.Kernel == nil {
		o.Kernel = XorPop64
	}
	if o.KTile <= 0 {
		o.KTile = 64
	}
}

// BGemm multiplies M packed rows a (each wpr words, n valid bits) by the
// K packed rows bT (same wpr/n), writing M×K inner products into out
// (row-major, len M*K).
func BGemm(a []uint64, m int, bT []uint64, k int, wpr, n int, out []int32, opts BGemmOpts) {
	opts.fill()
	if len(a) != m*wpr {
		panicSize("BGemm", "a", len(a), m*wpr)
	}
	if len(bT) != k*wpr {
		panicSize("BGemm", "bT", len(bT), k*wpr)
	}
	if len(out) != m*k {
		panicSize("BGemm", "out", len(out), m*k)
	}
	f := opts.Kernel
	n32 := int32(n)
	for kt := 0; kt < k; kt += opts.KTile {
		kEnd := min(kt+opts.KTile, k)
		for mi := 0; mi < m; mi++ {
			arow := a[mi*wpr : (mi+1)*wpr]
			orow := out[mi*k : (mi+1)*k]
			ki := kt
			// Register blocking: 4 output neurons per pass over arow.
			for ; ki+4 <= kEnd; ki += 4 {
				b0 := bT[ki*wpr : (ki+1)*wpr]
				b1 := bT[(ki+1)*wpr : (ki+2)*wpr]
				b2 := bT[(ki+2)*wpr : (ki+3)*wpr]
				b3 := bT[(ki+3)*wpr : (ki+4)*wpr]
				orow[ki] = n32 - 2*int32(f(arow, b0))
				orow[ki+1] = n32 - 2*int32(f(arow, b1))
				orow[ki+2] = n32 - 2*int32(f(arow, b2))
				orow[ki+3] = n32 - 2*int32(f(arow, b3))
			}
			for ; ki < kEnd; ki++ {
				brow := bT[ki*wpr : (ki+1)*wpr]
				orow[ki] = n32 - 2*int32(f(arow, brow))
			}
		}
	}
}

// BGemmExec runs BGemm with the K dimension split across the execution
// context's thread budget — the paper's multi-core split for the fully
// connected operator ("multi-core parallelism over the K dimension",
// §III-C), dispatched on the context's persistent worker pool instead of
// freshly spawned goroutines. A nil/serial context, or a K too small to
// be worth splitting, degrades to the serial path. Output columns are
// chunk-disjoint, so results are bit-identical at any budget.
func BGemmExec(a []uint64, m int, bT []uint64, k int, wpr, n int, out []int32, opts BGemmOpts, ec *exec.Ctx) {
	if threads := ec.Budget(); threads <= 1 || k < 2*threads {
		BGemm(a, m, bT, k, wpr, n, out, opts)
		return
	}
	opts.fill()
	if len(a) != m*wpr {
		panicSize("BGemmExec", "a", len(a), m*wpr)
	}
	if len(bT) != k*wpr {
		panicSize("BGemmExec", "bT", len(bT), k*wpr)
	}
	if len(out) != m*k {
		panicSize("BGemmExec", "out", len(out), m*k)
	}
	ec.ParallelFor(k, func(k0, k1 int) {
		bgemmCols(a, m, bT, k, wpr, n, out, opts, k0, k1)
	})
}

// bgemmCols computes output columns [k0, k1) only.
func bgemmCols(a []uint64, m int, bT []uint64, k, wpr, n int, out []int32, opts BGemmOpts, k0, k1 int) {
	f := opts.Kernel
	n32 := int32(n)
	for mi := 0; mi < m; mi++ {
		arow := a[mi*wpr : (mi+1)*wpr]
		orow := out[mi*k : (mi+1)*k]
		ki := k0
		for ; ki+4 <= k1; ki += 4 {
			orow[ki] = n32 - 2*int32(f(arow, bT[ki*wpr:(ki+1)*wpr]))
			orow[ki+1] = n32 - 2*int32(f(arow, bT[(ki+1)*wpr:(ki+2)*wpr]))
			orow[ki+2] = n32 - 2*int32(f(arow, bT[(ki+2)*wpr:(ki+3)*wpr]))
			orow[ki+3] = n32 - 2*int32(f(arow, bT[(ki+3)*wpr:(ki+4)*wpr]))
		}
		for ; ki < k1; ki++ {
			orow[ki] = n32 - 2*int32(f(arow, bT[ki*wpr:(ki+1)*wpr]))
		}
	}
}
