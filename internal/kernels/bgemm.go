package kernels

import (
	"bitflow/internal/exec"
)

// This file implements bgemm, BitFlow's binary GEMM (paper gemm level,
// §IV): C = A × Bᵀ where A is M×N bits (M packed rows of wpr words) and B
// was pre-transformed by bitpack.PackMatrixBT into K packed rows of wpr
// words. Output C is M×K int32 inner products.
//
// Optimizations mirror the paper's sgemm-derived techniques:
//   - B is packed transposed, so both inner operands stream linearly;
//   - K-tiling keeps the active slab of B rows inside the L2 cache for
//     large N (fc6: N = 25088 → wpr = 392 words = 3.1 KiB per row);
//   - the column loop advances cursor slices instead of computing
//     ki*wpr offsets, so the compiler proves every in-loop access in
//     bounds (`bitflow-vet codegen`): the only checks left execute once
//     per output row, after the shape was already pinned by panicSize.

// BGemmOpts tunes the blocked bgemm. Zero values select defaults.
type BGemmOpts struct {
	// Kernel is the XOR+popcount kernel; nil selects XorPop64.
	Kernel XorPopFunc
	// KTile is the number of B rows per tile; 0 selects 64.
	KTile int
}

func (o *BGemmOpts) fill() {
	if o.Kernel == nil {
		o.Kernel = XorPop64
	}
	if o.KTile <= 0 {
		o.KTile = 64
	}
}

// BGemm multiplies M packed rows a (each wpr words, n valid bits) by the
// K packed rows bT (same wpr/n), writing M×K inner products into out
// (row-major, len M*K).
func BGemm(a []uint64, m int, bT []uint64, k int, wpr, n int, out []int32, opts BGemmOpts) {
	opts.fill()
	if len(a) != m*wpr {
		panicSize("BGemm", "a", len(a), m*wpr)
	}
	if len(bT) != k*wpr {
		panicSize("BGemm", "bT", len(bT), k*wpr)
	}
	if len(out) != m*k {
		panicSize("BGemm", "out", len(out), m*k)
	}
	// K-tiling: all M rows consume one L2-resident slab of B before the
	// next slab is touched.
	for kt := 0; kt < k; kt += opts.KTile {
		kEnd := min(kt+opts.KTile, k)
		bgemmCols(a, m, bT, k, wpr, int32(n), out, opts.Kernel, kt, kEnd)
	}
}

// BGemmExec runs BGemm with the K dimension split across the execution
// context's thread budget — the paper's multi-core split for the fully
// connected operator ("multi-core parallelism over the K dimension",
// §III-C), dispatched on the context's persistent worker pool instead of
// freshly spawned goroutines. A nil/serial context, or a K too small to
// be worth splitting, degrades to the serial path. Output columns are
// chunk-disjoint, so results are bit-identical at any budget.
func BGemmExec(a []uint64, m int, bT []uint64, k int, wpr, n int, out []int32, opts BGemmOpts, ec *exec.Ctx) {
	if threads := ec.Budget(); threads <= 1 || k < 2*threads {
		BGemm(a, m, bT, k, wpr, n, out, opts)
		return
	}
	opts.fill()
	if len(a) != m*wpr {
		panicSize("BGemmExec", "a", len(a), m*wpr)
	}
	if len(bT) != k*wpr {
		panicSize("BGemmExec", "bT", len(bT), k*wpr)
	}
	if len(out) != m*k {
		panicSize("BGemmExec", "out", len(out), m*k)
	}
	// The closure captures only the kernel func and scalars — capturing
	// opts itself (a method call on the addressable param) would move it
	// to the heap on every call, a per-inference allocation the codegen
	// gate rejects.
	f := opts.Kernel
	n32 := int32(n)
	ec.ParallelFor(k, func(k0, k1 int) {
		bgemmCols(a, m, bT, k, wpr, n32, out, f, k0, k1)
	})
}

// bgemmCols computes output columns [k0, k1) of every row: the serial
// tile body and the per-worker body of the parallel split.
func bgemmCols(a []uint64, m int, bT []uint64, k, wpr int, n32 int32, out []int32, f XorPopFunc, k0, k1 int) {
	if wpr <= 0 || k0 < 0 || k1 <= k0 {
		return
	}
	for mi := 0; mi < m; mi++ {
		arow := a[mi*wpr : (mi+1)*wpr] //bitflow:bce-ok one slice per output row; shape pinned by the caller's panicSize preamble
		ocur := out[mi*k+k0 : mi*k+k1] //bitflow:bce-ok one slice per output row
		bcur := bT[k0*wpr:]            //bitflow:bce-ok one slice per output row
		for len(ocur) > 0 && len(bcur) >= wpr {
			ocur[0] = n32 - 2*int32(f(arow, bcur[:wpr]))
			ocur = ocur[1:]
			bcur = bcur[wpr:]
		}
	}
}
