// Package kernels provides BitFlow's XOR + popcount microkernels and the
// binary GEMM built on them (paper gemm level, §IV; SIMD instruction
// table, paper Table I).
//
// The paper's kernels use x86 vector intrinsics (_mm_xor_si128,
// _mm256_xor_si256, _mm512_xor_si512, _mm512_popcnt_epi64). Go has no
// intrinsics, so each vector width is reproduced as an unrolled
// multi-word kernel: the W128 kernel XORs and popcounts 2×64-bit words
// per loop step, W256 4 words, W512 8 words. math/bits.OnesCount64
// compiles to the hardware POPCNT instruction on amd64, so the popcount
// half of the paper's instruction mix is the real hardware instruction;
// only the XOR width is emulated by unrolling. The performance *mechanism*
// — amortizing loop overhead and exposing instruction-level parallelism
// over more channel bits per iteration — is the same one the paper's
// wider vector units exploit (see DESIGN.md §2).
package kernels

import "fmt"

// Width identifies a simulated vector width as the number of 64-bit words
// processed per kernel step.
type Width int

const (
	// W64 is the scalar kernel: one uint64 per step ("intrinsic bitwise
	// instruction" tier of the scheduler rules, paper §III-B rule 4).
	W64 Width = 1
	// W128 processes 2 words per step (SSE tier).
	W128 Width = 2
	// W256 processes 4 words per step (AVX2 tier).
	W256 Width = 4
	// W512 processes 8 words per step (AVX-512 tier).
	W512 Width = 8
)

// Widths lists all kernel widths from widest to narrowest, the order in
// which the scheduler considers them.
var Widths = []Width{W512, W256, W128, W64}

// Bits returns the simulated vector width in bits.
func (w Width) Bits() int { return int(w) * 64 }

// Words returns the number of 64-bit words per kernel step.
func (w Width) Words() int { return int(w) }

// String names the width after the instruction set it simulates.
func (w Width) String() string {
	switch w {
	case W64:
		return "scalar64"
	case W128:
		return "sse128"
	case W256:
		return "avx256"
	case W512:
		return "avx512"
	}
	return fmt.Sprintf("Width(%d)", int(w)) //bitflow:alloc-ok diagnostic label for an unknown width; String never runs on the inference path
}

// Divides reports whether a buffer of n words can be processed by this
// width without a tail.
func (w Width) Divides(n int) bool { return n%int(w) == 0 }
