package kernels

import (
	"testing"
	"testing/quick"

	"bitflow/internal/workload"
)

// refXorPopRows computes the row-batched accumulation the slow way.
func refXorPopRows(rows [][]uint64, filt []uint64) int {
	acc := 0
	off := 0
	for _, r := range rows {
		acc += refXorPop(r, filt[off:off+len(r)])
		off += len(r)
	}
	return acc
}

func TestXorPopRowsAgree(t *testing.T) {
	r := workload.NewRNG(70)
	for _, tc := range []struct{ nRows, rowLen int }{
		{1, 8}, {3, 8}, {3, 24}, {5, 16}, {3, 40}, {1, 64},
	} {
		rows := make([][]uint64, tc.nRows)
		for i := range rows {
			rows[i] = randWords(r, tc.rowLen)
		}
		filt := randWords(r, tc.nRows*tc.rowLen)
		want := refXorPopRows(rows, filt)
		for _, w := range Widths {
			if !w.Divides(tc.rowLen) {
				continue
			}
			if got := RowsForWidth(w)(rows, filt); got != want {
				t.Errorf("rows=%d len=%d width=%v: got %d want %d", tc.nRows, tc.rowLen, w, got, want)
			}
		}
	}
}

func TestXorPopRowsScalarAnyLength(t *testing.T) {
	r := workload.NewRNG(71)
	for _, rowLen := range []int{1, 3, 7, 9} {
		rows := [][]uint64{randWords(r, rowLen), randWords(r, rowLen), randWords(r, rowLen)}
		filt := randWords(r, 3*rowLen)
		if got, want := XorPopRows64(rows, filt), refXorPopRows(rows, filt); got != want {
			t.Errorf("rowLen=%d: got %d want %d", rowLen, got, want)
		}
	}
}

// TestXorPopRowsQuick cross-checks every width as a property.
func TestXorPopRowsQuick(t *testing.T) {
	f := func(seed uint64, nr, rl uint8) bool {
		nRows := int(nr)%4 + 1
		rowLen := (int(rl)%4 + 1) * 8 // multiple of 8 → all widths apply
		r := workload.NewRNG(seed)
		rows := make([][]uint64, nRows)
		for i := range rows {
			rows[i] = randWords(r, rowLen)
		}
		filt := randWords(r, nRows*rowLen)
		want := refXorPopRows(rows, filt)
		for _, w := range Widths {
			if RowsForWidth(w)(rows, filt) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorPopRowsMatchesFlatKernel(t *testing.T) {
	// A single row must agree with the flat kernel of the same width.
	r := workload.NewRNG(72)
	a := randWords(r, 24)
	bb := randWords(r, 24)
	for _, w := range Widths {
		if got, want := RowsForWidth(w)([][]uint64{a}, bb), ForWidth(w)(a, bb); got != want {
			t.Errorf("width %v: rows %d flat %d", w, got, want)
		}
	}
}

func TestRowsForWidthPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RowsForWidth(5) did not panic")
		}
	}()
	RowsForWidth(Width(5))
}
