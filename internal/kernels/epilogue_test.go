package kernels

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"bitflow/internal/bitpack"
)

// refEpilogueBits is the naive unfused reference the fused epilogue must
// match: per filter, accumulate popcounts one bit at a time, form the
// pre-activation d = n - 2·acc, and evaluate the original two-branch
// threshold (d ≥ T, or d ≤ T when flipped).
func refEpilogueBits(rows [][]uint64, fw []uint64, fstride int, n int, t []int32, flip []bool) []bool {
	bits := make([]bool, len(t))
	for k := range t {
		base := k * fstride
		acc := 0
		off := 0
		for _, r := range rows {
			acc += refXorPopBits(r, fw[base+off:base+off+len(r)])
			off += len(r)
		}
		d := int64(n) - 2*int64(acc)
		if flip[k] {
			bits[k] = d <= int64(t[k])
		} else {
			bits[k] = d >= int64(t[k])
		}
	}
	return bits
}

func packBools(bits []bool, wpp int) []uint64 {
	out := make([]uint64, wpp)
	for c, b := range bits {
		if b {
			out[c/bitpack.WordBits] |= 1 << uint(c%bitpack.WordBits)
		}
	}
	return out
}

// epilogueCase is one randomized conv+threshold(+pool) instance.
type epilogueCase struct {
	K, KH, rowLen int
	n             int
	t             []int32
	flip          []bool
	fw            []uint64
	// windows holds one gathered receptive field per pool-window position.
	windows [][][]uint64
}

func randomCase(rng *rand.Rand, positions int) epilogueCase {
	c := epilogueCase{
		K:      1 + rng.Intn(130),
		KH:     1 + rng.Intn(3),
		rowLen: 1 + rng.Intn(5),
	}
	fstride := c.KH * c.rowLen
	// n is the valid lane count; keep it inside the word capacity so d
	// spans realistic positive and negative values.
	c.n = 1 + rng.Intn(fstride*64)
	c.t = make([]int32, c.K)
	c.flip = make([]bool, c.K)
	for k := range c.t {
		switch rng.Intn(5) {
		case 0:
			c.t[k] = math.MaxInt32 // overflow probe for the T+1 adjustment
		case 1:
			c.t[k] = math.MinInt32 // the γ=0 constant encoding
		default:
			c.t[k] = int32(rng.Intn(2*c.n+1) - c.n)
		}
		c.flip[k] = rng.Intn(2) == 0
	}
	c.fw = make([]uint64, c.K*fstride)
	for i := range c.fw {
		c.fw[i] = rng.Uint64()
	}
	for p := 0; p < positions; p++ {
		rows := make([][]uint64, c.KH)
		for i := range rows {
			r := make([]uint64, c.rowLen)
			for j := range r {
				r[j] = rng.Uint64()
			}
			rows[i] = r
		}
		c.windows = append(c.windows, rows)
	}
	return c
}

func (c *epilogueCase) fstride() int { return c.KH * c.rowLen }

// refFused computes the OR of the per-position reference bits — the
// unfused conv → threshold → binarize → max-pool answer.
func (c *epilogueCase) refFused() []uint64 {
	wpp := bitpack.WordsFor(c.K)
	out := make([]uint64, wpp)
	for _, rows := range c.windows {
		bits := refEpilogueBits(rows, c.fw, c.fstride(), c.n, c.t, c.flip)
		for w, v := range packBools(bits, wpp) {
			out[w] |= v
		}
	}
	return out
}

func checkCase(t *testing.T, c epilogueCase) {
	t.Helper()
	e := NewEpilogue(c.t, c.flip)
	wpp := bitpack.WordsFor(c.K)
	want := c.refFused()

	// Serial fused path: first position overwrites, the rest OR in.
	dst := make([]uint64, wpp+1) // +1 trailing word must be cleared by ConvEpilogue
	for i := range dst {
		dst[i] = ^uint64(0) // poison: stale bits must not survive
	}
	for p, rows := range c.windows {
		if p == 0 {
			ConvEpilogue(XorPopRows64, rows, c.fw, c.fstride(), int32(c.n), e, dst)
		} else {
			ConvEpilogueOr(XorPopRows64, rows, c.fw, c.fstride(), int32(c.n), e, dst)
		}
	}
	for w := 0; w < wpp; w++ {
		if dst[w] != want[w] {
			t.Fatalf("ConvEpilogue(+Or) word %d = %016x, want %016x (K=%d KH=%d rowLen=%d n=%d pos=%d)",
				w, dst[w], want[w], c.K, c.KH, c.rowLen, c.n, len(c.windows))
		}
	}
	if dst[wpp] != 0 {
		t.Fatalf("ConvEpilogue left trailing word %016x, want 0", dst[wpp])
	}

	// Batched fused path with B copies of the same image must agree with
	// the serial answer lane-for-lane.
	B := 3
	S := c.fstride()
	gather := make([]uint64, B*S)
	accs := make([]int32, B)
	out := make([]uint64, B*wpp)
	for i := range out {
		out[i] = ^uint64(0)
	}
	for p, rows := range c.windows {
		for b := 0; b < B; b++ {
			off := 0
			for _, r := range rows {
				copy(gather[b*S+off:], r)
				off += len(r)
			}
		}
		if p == 0 {
			ConvBatchEpilogue(XorPopBatch64, gather, c.fw, S, int32(c.n), e, accs, out, wpp)
		} else {
			ConvBatchEpilogueOr(XorPopBatch64, gather, c.fw, S, int32(c.n), e, accs, out, wpp)
		}
	}
	for b := 0; b < B; b++ {
		for w := 0; w < wpp; w++ {
			if out[b*wpp+w] != want[w] {
				t.Fatalf("ConvBatchEpilogue(+Or) lane %d word %d = %016x, want %016x",
					b, w, out[b*wpp+w], want[w])
			}
		}
	}
}

func TestConvEpilogueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		checkCase(t, randomCase(rng, 1+rng.Intn(4)))
	}
}

func TestPackMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		K := 1 + rng.Intn(200)
		tv := make([]int32, K)
		flip := make([]bool, K)
		d := make([]int32, K)
		for k := 0; k < K; k++ {
			switch rng.Intn(6) {
			case 0:
				tv[k] = math.MaxInt32
			case 1:
				tv[k] = math.MinInt32
			default:
				tv[k] = int32(rng.Intn(100) - 50)
			}
			flip[k] = rng.Intn(2) == 0
			d[k] = int32(rng.Intn(100) - 50)
		}
		e := NewEpilogue(tv, flip)
		wpp := bitpack.WordsFor(K)
		dst := make([]uint64, wpp+1)
		for i := range dst {
			dst[i] = ^uint64(0)
		}
		e.Pack(d, dst)
		want := make([]uint64, wpp)
		for k := 0; k < K; k++ {
			var on bool
			if flip[k] {
				on = d[k] <= tv[k]
			} else {
				on = d[k] >= tv[k]
			}
			if on {
				want[k/bitpack.WordBits] |= 1 << uint(k%bitpack.WordBits)
			}
		}
		for w := 0; w < wpp; w++ {
			if dst[w] != want[w] {
				t.Fatalf("Pack word %d = %016x, want %016x (K=%d)", w, dst[w], want[w], K)
			}
		}
		if dst[wpp] != 0 {
			t.Fatalf("Pack left trailing word %016x, want 0", dst[wpp])
		}

		// PackOr over two halves must equal the OR of two Packs.
		d2 := make([]int32, K)
		for k := range d2 {
			d2[k] = int32(rng.Intn(100) - 50)
		}
		or := make([]uint64, wpp)
		e.Pack(d, or)
		e.PackOr(d2, or)
		tmp := make([]uint64, wpp)
		e.Pack(d2, tmp)
		for w := 0; w < wpp; w++ {
			if or[w] != want[w]|tmp[w] {
				t.Fatalf("PackOr word %d = %016x, want %016x", w, or[w], want[w]|tmp[w])
			}
		}
	}
}

// TestSignEpilogueIsPlainSign pins NewSignEpilogue to Equation 3.
func TestSignEpilogueIsPlainSign(t *testing.T) {
	e := NewSignEpilogue(3)
	dst := make([]uint64, 1)
	e.Pack([]int32{-1, 0, 5}, dst)
	if dst[0] != 0b110 {
		t.Fatalf("sign epilogue packed %03b, want 110", dst[0])
	}
}

// FuzzFusedEpilogue drives the fused conv→threshold→binarize(→pool)
// ladder against the naive unfused reference over arbitrary shapes,
// thresholds, flips, and pool-window position counts derived from the
// fuzz input.
func FuzzFusedEpilogue(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(-99), uint8(4))
	f.Add(int64(math.MaxInt64), uint8(2))
	f.Add(int64(424242), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, positions uint8) {
		rng := rand.New(rand.NewSource(seed))
		checkCase(t, randomCase(rng, 1+int(positions%6)))
	})
}

// FuzzEpiloguePack checks Pack/PackOr against the two-branch reference
// on raw byte-derived pre-activations and thresholds.
func FuzzEpiloguePack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x00, 0x01, 0xFF, 0x7F, 0xFE, 0x10, 0x20, 0x30})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Layout: per channel 4 bytes d, 4 bytes T, 1 byte flip.
		K := len(data) / 9
		if K == 0 {
			return
		}
		d := make([]int32, K)
		tv := make([]int32, K)
		flip := make([]bool, K)
		for k := 0; k < K; k++ {
			off := k * 9
			d[k] = int32(binary.LittleEndian.Uint32(data[off:]))
			tv[k] = int32(binary.LittleEndian.Uint32(data[off+4:]))
			flip[k] = data[off+8]&1 == 1
		}
		e := NewEpilogue(tv, flip)
		wpp := bitpack.WordsFor(K)
		dst := make([]uint64, wpp)
		e.Pack(d, dst)
		for k := 0; k < K; k++ {
			var want bool
			if flip[k] {
				want = d[k] <= tv[k]
			} else {
				want = d[k] >= tv[k]
			}
			got := dst[k/bitpack.WordBits]>>uint(k%bitpack.WordBits)&1 == 1
			if got != want {
				t.Fatalf("channel %d: d=%d T=%d flip=%v: got %v, want %v", k, d[k], tv[k], flip[k], got, want)
			}
		}
	})
}
