package kernels

// Dot computes the binary inner product of two packed vectors using the
// given XOR+popcount kernel: dot = validLanes − 2·Σ popcount(a XOR b)
// (Equation 1). Lanes beyond validLanes must be zero in *both* operands;
// they then XOR to zero and the formula stays exact.
func Dot(f XorPopFunc, a, b []uint64, validLanes int) int32 {
	return int32(validLanes) - 2*int32(f(a, b))
}

// DotRef is the O(bits) reference implementation used by tests: it walks
// lanes one bit at a time and accumulates ±1 products.
//
//bitflow:bce-ok reference implementation for tests; its per-lane divides dominate any bounds check
func DotRef(a, b []uint64, validLanes int) int32 {
	var acc int32
	for lane := 0; lane < validLanes; lane++ {
		av := a[lane/64] >> (uint(lane) % 64) & 1
		bv := b[lane/64] >> (uint(lane) % 64) & 1
		if av == bv {
			acc++
		} else {
			acc--
		}
	}
	return acc
}
