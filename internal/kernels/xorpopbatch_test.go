package kernels

import (
	"math/rand"
	"testing"
)

// TestXorPopBatchMatchesSingle pins the batched kernels to the
// single-image ladder: for every width and a spread of block lengths and
// batch sizes, accs[b] must equal the single-image kernel applied to
// block b alone.
func TestXorPopBatchMatchesSingle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cases := []struct {
		w    Width
		lens []int
	}{
		{W64, []int{1, 3, 5, 9, 18}},
		{W128, []int{2, 6, 18}},
		{W256, []int{4, 12, 36}},
		{W512, []int{8, 24, 72}},
	}
	for _, tc := range cases {
		batch := BatchForWidth(tc.w)
		single := ForWidth(tc.w)
		for _, s := range tc.lens {
			for _, B := range []int{1, 2, 3, 8, 16} {
				a := make([]uint64, B*s)
				filt := make([]uint64, s)
				for i := range a {
					a[i] = r.Uint64()
				}
				for i := range filt {
					filt[i] = r.Uint64()
				}
				accs := make([]int32, B)
				batch(a, filt, accs)
				for b := 0; b < B; b++ {
					want := single(a[b*s:(b+1)*s], filt)
					if accs[b] != int32(want) {
						t.Errorf("%v S=%d B=%d block %d: batched %d, single %d",
							tc.w, s, B, b, accs[b], want)
					}
				}
			}
		}
	}
}

func TestBatchForWidthCoversLadder(t *testing.T) {
	for _, w := range []Width{W64, W128, W256, W512} {
		if BatchForWidth(w) == nil {
			t.Errorf("no batched kernel for %v", w)
		}
	}
}
