package kernels

import (
	"math/bits"

	"bitflow/internal/exec"
)

// This file implements kernel compression (Silfa & Arnau, "Exploiting
// Kernel Compression on BNNs"): packed BNN filter banks draw their
// 64-bit words from a small alphabet — across output channels the word
// at one input-word position repeats heavily (trained binary filters
// correlate, and low-channel layers have only 2^C possible words per
// tap). Instead of paying one XOR+popcount per (filter, word), the
// compressed path computes each *distinct* word's XOR+popcount once per
// input window and scatters the count into every output channel that
// consumes it.
//
// The plan is pure runtime state derived from the packed weights at
// model-load time — serialized artifacts carry no compression metadata
// (mirroring the fusion-planning precedent) — and the transform is
// bit-exact: per-channel accumulators sum the same integer popcounts in
// the same position order, so compressed pre-activations equal the
// uncompressed ones word for word.

// CompressMinRatio is the duplication ratio (total packed words /
// distinct packed words) a weight bank must clear before the load-time
// planner selects the compressed path. The compressed inner loop trades
// one fused XOR+popcount+accumulate per (channel, position) for one
// popcount per distinct word plus one scatter-add per (channel,
// position); the scatter-add costs roughly a third to a half of the
// fused op, so break-even sits near ratio 2–3. Requiring 4× keeps a
// comfortable margin: layers at the threshold still shed ≥75% of their
// popcount work, and low-duplication layers (ratio ≈ 1, e.g. random
// 64-channel banks) keep the streaming uncompressed kernels.
const CompressMinRatio = 4.0

// CompressStats summarizes one weight bank's duplication analysis.
type CompressStats struct {
	// Channels (K) and Positions (S) give the bank geometry: K filters
	// of S packed words each.
	Channels, Positions int
	// TotalWords is K*S; DistinctWords counts distinct (position, word)
	// pairs — the XOR+popcounts the compressed path actually executes.
	TotalWords, DistinctWords int
}

// Ratio is the duplication factor TotalWords / DistinctWords (≥ 1); the
// compressed path computes 1/Ratio of the uncompressed popcounts.
func (s CompressStats) Ratio() float64 {
	if s.DistinctWords == 0 {
		return 0
	}
	return float64(s.TotalWords) / float64(s.DistinctWords)
}

// Selectable reports whether the measured ratio clears CompressMinRatio.
func (s CompressStats) Selectable() bool { return s.Ratio() >= CompressMinRatio }

// CompressPlan is the compiled compression plan for one packed weight
// bank of K filters × S words (filter-major, the PackedFilter /
// PackMatrixBT layout): a distinct-word table grouped by position plus
// scatter lists mapping each distinct word's popcount result to the
// channels that consume it. Build one at model-load time and share it
// freely — it is read-only.
type CompressPlan struct {
	// K is the output-channel count, S the packed words per filter.
	K, S int
	// Words is the distinct-word table, grouped by position: position p
	// owns Words[Starts[p]:Starts[p+1]], each entry distinct within its
	// position and ordered by first appearance over channels 0..K-1 (so
	// the plan is a pure function of the weights).
	Words []uint64
	// Starts indexes Words per position (len S+1, Starts[0] = 0).
	Starts []int32
	// Channels holds the concatenated scatter lists: distinct word wi
	// feeds channels Channels[ChanStarts[wi]:ChanStarts[wi+1]], in
	// ascending order. Every channel appears in exactly one scatter list
	// per position, so len(Channels) == K*S.
	Channels []int32
	// ChanStarts indexes Channels per distinct word (len(Words)+1).
	ChanStarts []int32

	// FilterReps and Folded carry the filter-level fold: when whole
	// filter blocks repeat (the common duplication mode of trained binary
	// banks), FilterReps maps each channel to its filter's index in the
	// folded bank of distinct filters (first-appearance order, so
	// FilterReps[c] ≤ c), and Folded is the plan compiled over just those
	// distinct blocks. The compute paths then accumulate Folded.K
	// channels — scatter work scales with distinct filters, not K — and
	// Expand copies the finished pre-activations out to every duplicate.
	// Both are nil when every filter block is distinct.
	FilterReps []int32
	Folded     *CompressPlan
}

// Eff returns the plan the accumulation kernels actually walk: the
// folded distinct-filter plan when whole filters duplicate, the plan
// itself otherwise. Eff().K ≤ K always.
func (cp *CompressPlan) Eff() *CompressPlan {
	if cp.Folded != nil {
		return cp.Folded
	}
	return cp
}

// Expand scatters the folded per-filter results out to all K channels:
// on entry acc[0:Folded.K] holds one value per distinct filter, on exit
// acc[c] holds channel c's value. The descending walk is safe because a
// channel's fold index never exceeds the channel index (first-appearance
// order). No-op on an unfolded plan.
func (cp *CompressPlan) Expand(acc []int32) {
	reps := cp.FilterReps
	if reps == nil {
		return
	}
	if len(acc) != cp.K || len(reps) != cp.K {
		panicSize("CompressPlan.Expand", "acc", len(acc), cp.K)
	}
	for c := len(reps) - 1; c >= 0; c-- {
		acc[c] = acc[reps[c]] //bitflow:bce-ok fold indices validated ≤ c at plan build time
	}
}

// Stats returns the duplication analysis the plan was built from.
func (cp *CompressPlan) Stats() CompressStats {
	return CompressStats{
		Channels: cp.K, Positions: cp.S,
		TotalWords: cp.K * cp.S, DistinctWords: len(cp.Words),
	}
}

// AnalyzeCompression measures the duplication of a packed weight bank —
// K filters of S words each, filter-major — without building the full
// plan (no scatter lists are materialized). words must hold K*S words.
func AnalyzeCompression(words []uint64, K, S int) CompressStats {
	if len(words) != K*S {
		panicSize("AnalyzeCompression", "words", len(words), K*S)
	}
	st := CompressStats{Channels: K, Positions: S, TotalWords: K * S}
	seen := make(map[uint64]struct{}, K) //bitflow:alloc-ok load-time analysis pass, never per inference
	for p := 0; p < S; p++ {
		clear(seen)
		for k := 0; k < K; k++ {
			seen[words[k*S+p]] = struct{}{} //bitflow:bce-ok load-time analysis pass; index pinned by the panicSize preamble
		}
		st.DistinctWords += len(seen)
	}
	return st
}

// BuildCompressPlan clusters the packed weight bank's repeated words and
// compiles the distinct-word table + scatter lists. words must hold K*S
// words, filter-major (filter k's words at words[k*S : (k+1)*S]). The
// result is deterministic: a pure function of (words, K, S).
//
//bitflow:bce-ok load-time plan construction, runs once per model load, never per inference
func BuildCompressPlan(words []uint64, K, S int) *CompressPlan {
	if len(words) != K*S {
		panicSize("BuildCompressPlan", "words", len(words), K*S)
	}
	cp := &CompressPlan{ //bitflow:alloc-ok load-time plan construction, never per inference
		K: K, S: S,
		Starts:   make([]int32, S+1),    //bitflow:alloc-ok load-time plan construction
		Channels: make([]int32, 0, K*S), //bitflow:alloc-ok load-time plan construction
	}
	cp.Words = make([]uint64, 0, K*S)       //bitflow:alloc-ok load-time plan construction
	cp.ChanStarts = make([]int32, 1, K*S+1) //bitflow:alloc-ok load-time plan construction
	idx := make(map[uint64]int32, K)        //bitflow:alloc-ok load-time plan construction; reused across positions
	counts := make([]int32, 0, K)           //bitflow:alloc-ok load-time plan construction; per-position occurrence counts
	offs := make([]int32, 0, K)             //bitflow:alloc-ok load-time plan construction; per-position placement cursors
	for p := 0; p < S; p++ {
		// Pass 1: intern this position's distinct words (first-appearance
		// order) and count how many channels consume each.
		clear(idx)
		counts = counts[:0]
		for k := 0; k < K; k++ {
			w := words[k*S+p]
			wi, ok := idx[w]
			if !ok {
				wi = int32(len(counts))
				idx[w] = wi
				cp.Words = append(cp.Words, w) //bitflow:alloc-ok load-time plan construction, never per inference
				counts = append(counts, 0)     //bitflow:alloc-ok load-time plan construction, never per inference
			}
			counts[wi]++
		}
		// Pass 2: prefix-sum the counts into placement cursors inside this
		// position's K-entry channel block, then place each channel —
		// ascending k, so every scatter list comes out sorted.
		base := int32(len(cp.Channels))
		offs = offs[:0]
		run := base
		for _, c := range counts {
			offs = append(offs, run) //bitflow:alloc-ok load-time plan construction, never per inference
			run += c
			cp.ChanStarts = append(cp.ChanStarts, run) //bitflow:alloc-ok load-time plan construction, never per inference
		}
		cp.Channels = cp.Channels[:run]
		for k := 0; k < K; k++ {
			wi := idx[words[k*S+p]]
			cp.Channels[offs[wi]] = int32(k)
			offs[wi]++
		}
		cp.Starts[p+1] = int32(len(cp.Words))
	}
	cp.fold(words)
	return cp
}

// fold detects whole-filter duplicates and compiles the distinct-filter
// plan the compute paths prefer: FNV-hash each filter's S-word block,
// confirm candidate matches word for word, and assign first-appearance
// fold indices (so FilterReps[c] ≤ c, the invariant Expand relies on).
//
//bitflow:bce-ok load-time plan construction, runs once per model load, never per inference
func (cp *CompressPlan) fold(words []uint64) {
	K, S := cp.K, cp.S
	reps := make([]int32, K)              //bitflow:alloc-ok load-time plan construction
	repChans := make([]int32, 0, K)       //bitflow:alloc-ok load-time plan construction
	byHash := make(map[uint64][]int32, K) //bitflow:alloc-ok load-time plan construction
	for k := 0; k < K; k++ {
		blk := words[k*S : (k+1)*S]
		h := uint64(1469598103934665603) // FNV-1a over the block's words
		for _, w := range blk {
			h ^= w
			h *= 1099511628211
		}
		fi := int32(-1)
		for _, cand := range byHash[h] {
			rc := int(repChans[cand])
			if wordBlocksEqual(blk, words[rc*S:(rc+1)*S]) {
				fi = cand
				break
			}
		}
		if fi < 0 {
			fi = int32(len(repChans))
			repChans = append(repChans, int32(k)) //bitflow:alloc-ok load-time plan construction, never per inference
			byHash[h] = append(byHash[h], fi)     //bitflow:alloc-ok load-time plan construction, never per inference
		}
		reps[k] = fi
	}
	if len(repChans) == K {
		return // every filter distinct: nothing to fold
	}
	cp.FilterReps = reps
	folded := make([]uint64, 0, len(repChans)*S) //bitflow:alloc-ok load-time plan construction
	for _, rc := range repChans {
		folded = append(folded, words[int(rc)*S:(int(rc)+1)*S]...) //bitflow:alloc-ok load-time plan construction, never per inference
	}
	// The folded bank's filters are all distinct, so this recursion
	// bottoms out immediately (the child's fold finds nothing).
	cp.Folded = BuildCompressPlan(folded, len(repChans), S)
}

func wordBlocksEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reconstruct expands the plan back into the K*S filter-major packed
// word bank it was built from — the round-trip the plan property tests
// pin bit-exact.
//
//bitflow:bce-ok diagnostic/test reconstruction, never per inference
func Reconstruct(cp *CompressPlan) []uint64 {
	out := make([]uint64, cp.K*cp.S) //bitflow:alloc-ok diagnostic/test reconstruction, never per inference
	for p := 0; p < cp.S; p++ {
		for wi := cp.Starts[p]; wi < cp.Starts[p+1]; wi++ {
			w := cp.Words[wi]
			for _, k := range cp.Channels[cp.ChanStarts[wi]:cp.ChanStarts[wi+1]] {
				out[int(k)*cp.S+p] = w
			}
		}
	}
	return out
}

// CompressedAccum adds the XOR+popcount contributions of input-word
// positions [p0, p0+len(seg)) to the K per-channel accumulators: for
// each position's distinct filter words it computes one popcount of
// (input word XOR distinct word) and scatter-adds the count into every
// channel consuming that word. acc must have length K; integer addition
// commutes, so accumulating position-major here is bit-exact against
// the filter-major uncompressed kernels. Callers walk a receptive field
// in segments (conv rows) or hand the whole row at once (dense, p0 = 0).
func CompressedAccum(cp *CompressPlan, p0 int, seg []uint64, acc []int32) {
	if p0 < 0 || p0+len(seg) > cp.S {
		panicSize("CompressedAccum", "seg", p0+len(seg), cp.S)
	}
	if len(acc) != cp.K {
		panicSize("CompressedAccum", "acc", len(acc), cp.K)
	}
	if len(cp.Starts) != cp.S+1 {
		panicSize("CompressedAccum", "cp.Starts", len(cp.Starts), cp.S+1)
	}
	// One cursor bundle per call: starts aligned to seg, then words,
	// per-word channel-list ends, and the channel stream advanced as
	// consumed. Every in-loop access below is proven in bounds off these
	// pins (`bitflow-vet codegen`).
	st := cp.Starts[p0+1 : p0+1+len(seg)] //bitflow:bce-ok one pin per kernel call; length checked by the preamble
	w0 := int(cp.Starts[p0])              //bitflow:bce-ok one read per kernel call
	words := cp.Words[w0:]                //bitflow:bce-ok one pin per kernel call
	ends := cp.ChanStarts[w0+1:]          //bitflow:bce-ok one pin per kernel call
	c0 := int32(0)
	if w0 < len(cp.ChanStarts) {
		c0 = cp.ChanStarts[w0]
	}
	chans := cp.Channels[c0:] //bitflow:bce-ok one pin per kernel call
	wi := 0
	ci := int32(0)
	for pi, x := range seg {
		end := int(st[pi]) - w0 //bitflow:bce-ok st spans exactly len(seg) entries; pi ranges over seg
		for ; wi < end && wi < len(words) && wi < len(ends); wi++ {
			cnt := int32(bits.OnesCount64(x ^ words[wi])) //bitflow:bce-ok wi < len(words) guards the loop; prove drops the fact across the scatter stores
			hi := ends[wi] - c0
			for ci < hi && int(ci) < len(chans) {
				acc[chans[ci]] += cnt //bitflow:bce-ok data-dependent scatter index; every channel entry was validated < K at plan build time
				ci++
			}
		}
	}
}

// BGemmCompressed is the kernel-compressed binary GEMM: C = A × Bᵀ where
// B's packed-transposed rows were compiled into cp. Identical contract
// to BGemm — a holds M packed rows of wpr words (wpr == cp.S), out
// receives M×K inner products — but each distinct weight word pays one
// XOR+popcount per input row instead of one per (row, channel).
func BGemmCompressed(a []uint64, m int, cp *CompressPlan, wpr, n int, out []int32) {
	if wpr != cp.S {
		panicSize("BGemmCompressed", "wpr", wpr, cp.S)
	}
	if len(a) != m*wpr {
		panicSize("BGemmCompressed", "a", len(a), m*wpr)
	}
	if len(out) != m*cp.K {
		panicSize("BGemmCompressed", "out", len(out), m*cp.K)
	}
	k := cp.K
	n32 := int32(n)
	eff := cp.Eff()
	for mi := 0; mi < m; mi++ {
		arow := a[mi*wpr : (mi+1)*wpr] //bitflow:bce-ok one slice per output row; shape pinned by the panicSize preamble
		orow := out[mi*k : (mi+1)*k]   //bitflow:bce-ok one slice per output row
		head := orow[:eff.K]           //bitflow:bce-ok Eff().K ≤ K by fold construction
		clear(head)
		CompressedAccum(eff, 0, arow, head)
		for i := range head {
			head[i] = n32 - 2*head[i]
		}
		cp.Expand(orow)
	}
}

// BGemmCompressedExec runs BGemmCompressed with the M dimension split
// across the execution context's thread budget. The compressed
// accumulate scatters into all K channels of a row, so the split runs
// over rows (images), not output columns; row chunks are disjoint, so
// results are bit-identical at any budget. M = 1 (the serial inference
// path) always runs serially.
func BGemmCompressedExec(a []uint64, m int, cp *CompressPlan, wpr, n int, out []int32, ec *exec.Ctx) {
	if threads := ec.Budget(); threads <= 1 || m < 2 {
		BGemmCompressed(a, m, cp, wpr, n, out)
		return
	}
	if wpr != cp.S {
		panicSize("BGemmCompressedExec", "wpr", wpr, cp.S)
	}
	if len(a) != m*wpr {
		panicSize("BGemmCompressedExec", "a", len(a), m*wpr)
	}
	if len(out) != m*cp.K {
		panicSize("BGemmCompressedExec", "out", len(out), m*cp.K)
	}
	k := cp.K
	ec.ParallelFor(m, func(m0, m1 int) {
		if m0 < 0 || m1 > m || m0 >= m1 {
			return
		}
		BGemmCompressed(a[m0*wpr:m1*wpr], m1-m0, cp, wpr, n, out[m0*k:m1*k]) //bitflow:bce-ok one slice pair per worker chunk; chunk range guarded above
	})
}
