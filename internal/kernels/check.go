package kernels

import "fmt"

// Sanctioned panic helpers. Kernels validate shapes at their entry and
// panic on mismatch — a size bug is a programming error upstream, not a
// runtime condition to limp through. bitflow-vet's panicpath analyzer
// enforces that these helpers are the only way a kernel panics, so the
// failure surface stays uniform and greppable. Serving paths wrap every
// inference in resilience.Safe, which converts these into replica
// re-clones instead of process death.

// panicSize reports a slice whose length does not match the shape
// arguments, e.g. "kernels: BGemm len(a)=4 want 8".
func panicSize(fn, what string, got, want int) {
	panic(fmt.Sprintf("kernels: %s len(%s)=%d want %d", fn, what, got, want))
}

// panicUnknownWidth reports a Width outside the ladder.
func panicUnknownWidth() {
	panic("kernels: unknown width")
}
