package kernels

import (
	"math/bits"
	"testing"

	"bitflow/internal/exec"
	"bitflow/internal/workload"
)

// randBank builds a deterministic filter-major K×S word bank drawing
// each word from an alphabet of `distinct` values, so tests dial the
// duplication ratio precisely.
func randBank(seed uint64, K, S, distinct int) []uint64 {
	r := workload.NewRNG(seed)
	alpha := make([]uint64, distinct)
	for i := range alpha {
		alpha[i] = r.Uint64()
	}
	w := make([]uint64, K*S)
	for i := range w {
		w[i] = alpha[int(r.Uint64()%uint64(distinct))]
	}
	return w
}

// dupFilterBank builds a bank whose K filters repeat one of `bases`
// random base blocks — the whole-filter duplication mode the fold
// detects.
func dupFilterBank(seed uint64, K, S, bases int) []uint64 {
	r := workload.NewRNG(seed)
	base := make([]uint64, bases*S)
	for i := range base {
		base[i] = r.Uint64()
	}
	w := make([]uint64, K*S)
	for k := 0; k < K; k++ {
		copy(w[k*S:(k+1)*S], base[(k%bases)*S:(k%bases+1)*S])
	}
	return w
}

// checkPlanProperties pins the clustering-plan invariants: table entries
// distinct within their position, every output channel in exactly one
// scatter list per position, scatter lists sorted, and a bit-exact
// round-trip back to the original bank.
func checkPlanProperties(t *testing.T, words []uint64, K, S int) {
	t.Helper()
	cp := BuildCompressPlan(words, K, S)
	if cp.K != K || cp.S != S {
		t.Fatalf("plan geometry K=%d S=%d, want %d %d", cp.K, cp.S, K, S)
	}
	if len(cp.Starts) != S+1 || cp.Starts[0] != 0 || int(cp.Starts[S]) != len(cp.Words) {
		t.Fatalf("Starts malformed: len=%d first=%d last=%d words=%d",
			len(cp.Starts), cp.Starts[0], cp.Starts[S], len(cp.Words))
	}
	if len(cp.ChanStarts) != len(cp.Words)+1 || len(cp.Channels) != K*S {
		t.Fatalf("scatter shape: chanstarts=%d (want %d), channels=%d (want %d)",
			len(cp.ChanStarts), len(cp.Words)+1, len(cp.Channels), K*S)
	}
	for p := 0; p < S; p++ {
		seen := map[uint64]bool{}
		covered := make([]int, K)
		for wi := cp.Starts[p]; wi < cp.Starts[p+1]; wi++ {
			w := cp.Words[wi]
			if seen[w] {
				t.Fatalf("position %d: word %#x appears twice in the distinct table", p, w)
			}
			seen[w] = true
			lo, hi := cp.ChanStarts[wi], cp.ChanStarts[wi+1]
			if lo >= hi {
				t.Fatalf("position %d word %d: empty scatter list", p, wi)
			}
			prev := int32(-1)
			for _, c := range cp.Channels[lo:hi] {
				if c < 0 || int(c) >= K {
					t.Fatalf("position %d: channel %d out of range K=%d", p, c, K)
				}
				if c <= prev {
					t.Fatalf("position %d: scatter list not strictly ascending (%d after %d)", p, c, prev)
				}
				prev = c
				covered[c]++
			}
		}
		for c, n := range covered {
			if n != 1 {
				t.Fatalf("position %d: channel %d appears in %d scatter lists, want exactly 1", p, c, n)
			}
		}
	}
	got := Reconstruct(cp)
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("round-trip mismatch at word %d: got %#x want %#x", i, got[i], words[i])
		}
	}
	// Stats agree between the cheap analysis pass and the full build.
	st := AnalyzeCompression(words, K, S)
	if st != cp.Stats() {
		t.Fatalf("AnalyzeCompression %+v != plan stats %+v", st, cp.Stats())
	}
	checkFoldProperties(t, cp, words, K, S)
}

// checkFoldProperties pins the filter-level fold invariants: FilterReps
// and Folded exist iff whole filter blocks repeat, fold indices are
// first-appearance ordered (so FilterReps[c] ≤ c), the folded bank is
// exactly the distinct blocks, its own fold bottoms out, and Expand
// copies each distinct filter's value to every duplicate channel.
func checkFoldProperties(t *testing.T, cp *CompressPlan, words []uint64, K, S int) {
	t.Helper()
	if (cp.Folded == nil) != (cp.FilterReps == nil) {
		t.Fatalf("fold fields out of sync: Folded=%v FilterReps=%v", cp.Folded != nil, cp.FilterReps != nil)
	}
	if cp.Folded == nil {
		for i := 0; i < K; i++ {
			for j := i + 1; j < K; j++ {
				if wordBlocksEqual(words[i*S:(i+1)*S], words[j*S:(j+1)*S]) {
					t.Fatalf("filters %d and %d are identical but the plan did not fold", i, j)
				}
			}
		}
		return
	}
	if len(cp.FilterReps) != K || cp.Folded.S != S || cp.Folded.K >= K {
		t.Fatalf("fold geometry: reps=%d folded K=%d S=%d (bank K=%d S=%d)",
			len(cp.FilterReps), cp.Folded.K, cp.Folded.S, K, S)
	}
	if cp.Folded.Folded != nil {
		t.Fatal("folded plan folds again: distinct banks must bottom out")
	}
	foldedWords := Reconstruct(cp.Folded)
	next := int32(0)
	for c, fi := range cp.FilterReps {
		if fi < 0 || fi > next || int(fi) > c {
			t.Fatalf("channel %d: fold index %d breaks first-appearance order (next=%d)", c, fi, next)
		}
		if fi == next {
			next++
		}
		for p := 0; p < S; p++ {
			if words[c*S+p] != foldedWords[int(fi)*S+p] {
				t.Fatalf("channel %d word %d: bank %#x != folded filter %d %#x",
					c, p, words[c*S+p], fi, foldedWords[int(fi)*S+p])
			}
		}
	}
	if int(next) != cp.Folded.K {
		t.Fatalf("fold indices reach %d, folded bank has %d filters", next, cp.Folded.K)
	}
	acc := make([]int32, K)
	for i := 0; i < cp.Folded.K; i++ {
		acc[i] = int32(100 + i)
	}
	cp.Expand(acc)
	for c, fi := range cp.FilterReps {
		if acc[c] != int32(100+int(fi)) {
			t.Fatalf("Expand: channel %d = %d, want folded filter %d's value %d", c, acc[c], fi, 100+int(fi))
		}
	}
}

func TestCompressPlanProperties(t *testing.T) {
	cases := []struct {
		name           string
		seed           uint64
		K, S, distinct int
	}{
		{"high-dup", 1, 64, 12, 3},
		{"low-dup", 2, 32, 8, 200}, // alphabet ≫ slots: mostly distinct
		{"all-identical", 3, 48, 9, 1},
		{"single-channel", 4, 1, 7, 5},
		{"single-position", 5, 96, 1, 4},
		{"ragged-alphabet", 6, 17, 5, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkPlanProperties(t, randBank(c.seed, c.K, c.S, c.distinct), c.K, c.S)
		})
	}
	folded := []struct {
		name        string
		seed        uint64
		K, S, bases int
	}{
		{"dup-filters", 7, 64, 12, 4},
		{"dup-filters-one-base", 8, 32, 6, 1},
		{"dup-filters-uneven", 9, 23, 9, 5},
	}
	for _, c := range folded {
		t.Run(c.name, func(t *testing.T) {
			checkPlanProperties(t, dupFilterBank(c.seed, c.K, c.S, c.bases), c.K, c.S)
		})
	}
}

func TestCompressStatsRatio(t *testing.T) {
	K, S := 64, 10
	// All words identical: one distinct word per position.
	bank := make([]uint64, K*S)
	for i := range bank {
		bank[i] = 0xdeadbeef
	}
	st := AnalyzeCompression(bank, K, S)
	if st.DistinctWords != S || st.Ratio() != float64(K) {
		t.Fatalf("all-identical bank: stats %+v ratio %v, want distinct=%d ratio=%d", st, st.Ratio(), S, K)
	}
	if !st.Selectable() {
		t.Fatalf("ratio %v should clear CompressMinRatio %v", st.Ratio(), CompressMinRatio)
	}
	// All-distinct bank: ratio exactly 1, never selected.
	for i := range bank {
		bank[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	st = AnalyzeCompression(bank, K, S)
	if st.DistinctWords != K*S || st.Ratio() != 1 || st.Selectable() {
		t.Fatalf("all-distinct bank: stats %+v ratio %v selectable=%v", st, st.Ratio(), st.Selectable())
	}
}

// naiveProducts is the reference: out[mi*K+k] = n - 2*popcount(arow XOR brow).
func naiveProducts(a []uint64, m int, bank []uint64, K, S, n int) []int32 {
	out := make([]int32, m*K)
	for mi := 0; mi < m; mi++ {
		for k := 0; k < K; k++ {
			acc := 0
			for p := 0; p < S; p++ {
				acc += bits.OnesCount64(a[mi*S+p] ^ bank[k*S+p])
			}
			out[mi*K+k] = int32(n) - 2*int32(acc)
		}
	}
	return out
}

func TestBGemmCompressedMatchesBGemm(t *testing.T) {
	for _, c := range []struct {
		name           string
		K, S, distinct int
		m              int
		bases          int // > 0: whole-filter duplication (folded plan)
	}{
		{"dup-m1", 64, 8, 4, 1, 0},
		{"dup-m5", 32, 12, 2, 5, 0},
		{"distinct-m3", 48, 6, 500, 3, 0},
		{"one-word-rows", 16, 1, 3, 4, 0},
		{"folded-m3", 64, 8, 0, 3, 4},
		{"folded-one-base-m2", 24, 5, 0, 2, 1},
	} {
		t.Run(c.name, func(t *testing.T) {
			var bank []uint64
			if c.bases > 0 {
				bank = dupFilterBank(78, c.K, c.S, c.bases)
			} else {
				bank = randBank(77, c.K, c.S, c.distinct)
			}
			cp := BuildCompressPlan(bank, c.K, c.S)
			r := workload.NewRNG(99)
			a := make([]uint64, c.m*c.S)
			for i := range a {
				a[i] = r.Uint64()
			}
			n := c.S * 64
			want := make([]int32, c.m*c.K)
			BGemm(a, c.m, bank, c.K, c.S, n, want, BGemmOpts{})
			got := make([]int32, c.m*c.K)
			BGemmCompressed(a, c.m, cp, c.S, n, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("BGemmCompressed[%d]=%d, BGemm=%d", i, got[i], want[i])
				}
			}
			ref := naiveProducts(a, c.m, bank, c.K, c.S, n)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("BGemmCompressed[%d]=%d, naive=%d", i, got[i], ref[i])
				}
			}
			// The exec split over rows must stay bit-identical at any budget.
			for _, threads := range []int{1, 2, 3, 8} {
				par := make([]int32, c.m*c.K)
				BGemmCompressedExec(a, c.m, cp, c.S, n, par, exec.Threads(threads))
				for i := range want {
					if par[i] != want[i] {
						t.Fatalf("threads=%d: BGemmCompressedExec[%d]=%d, want %d", threads, i, par[i], want[i])
					}
				}
			}
		})
	}
}

// TestCompressedAccumSegments pins the segmented walk the conv path
// uses: accumulating a row in arbitrary splits equals one whole-row call.
func TestCompressedAccumSegments(t *testing.T) {
	K, S := 24, 10
	bank := randBank(5, K, S, 3)
	cp := BuildCompressPlan(bank, K, S)
	r := workload.NewRNG(6)
	row := make([]uint64, S)
	for i := range row {
		row[i] = r.Uint64()
	}
	whole := make([]int32, K)
	CompressedAccum(cp, 0, row, whole)
	for _, cuts := range [][]int{{0, 10}, {0, 3, 10}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {0, 9, 10}} {
		acc := make([]int32, K)
		for i := 0; i+1 < len(cuts); i++ {
			CompressedAccum(cp, cuts[i], row[cuts[i]:cuts[i+1]], acc)
		}
		for k := range whole {
			if acc[k] != whole[k] {
				t.Fatalf("cuts %v: acc[%d]=%d want %d", cuts, k, acc[k], whole[k])
			}
		}
	}
}
