package kernels

import (
	"testing"

	"bitflow/internal/exec"
	"bitflow/internal/workload"
)

// bgemmRef computes the M×K products lane by lane.
func bgemmRef(a []uint64, m int, bT []uint64, k, wpr, n int) []int32 {
	out := make([]int32, m*k)
	for mi := 0; mi < m; mi++ {
		for ki := 0; ki < k; ki++ {
			out[mi*k+ki] = DotRef(a[mi*wpr:(mi+1)*wpr], bT[ki*wpr:(ki+1)*wpr], n)
		}
	}
	return out
}

// randPacked returns rows×wpr words with lanes ≥ n cleared.
func randPacked(r *workload.RNG, rows, wpr, n int) []uint64 {
	w := randWords(r, rows*wpr)
	for row := 0; row < rows; row++ {
		for lane := n; lane < wpr*64; lane++ {
			w[row*wpr+lane/64] &^= 1 << uint(lane%64)
		}
	}
	return w
}

func TestBGemmMatchesRef(t *testing.T) {
	r := workload.NewRNG(10)
	cases := []struct{ m, k, wpr, n int }{
		{1, 1, 1, 64},
		{1, 7, 2, 100},
		{3, 9, 4, 256},
		{2, 130, 8, 512}, // k > one register block and > default tile boundary alignment
		{1, 64, 6, 384},
		{5, 5, 3, 150},
	}
	for _, tc := range cases {
		a := randPacked(r, tc.m, tc.wpr, tc.n)
		bT := randPacked(r, tc.k, tc.wpr, tc.n)
		want := bgemmRef(a, tc.m, bT, tc.k, tc.wpr, tc.n)
		got := make([]int32, tc.m*tc.k)
		BGemm(a, tc.m, bT, tc.k, tc.wpr, tc.n, got, BGemmOpts{})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: out[%d] = %d want %d", tc, i, got[i], want[i])
			}
		}
	}
}

func TestBGemmAllKernels(t *testing.T) {
	r := workload.NewRNG(11)
	m, k, wpr, n := 2, 37, 8, 512
	a := randPacked(r, m, wpr, n)
	bT := randPacked(r, k, wpr, n)
	want := bgemmRef(a, m, bT, k, wpr, n)
	for _, w := range Widths {
		got := make([]int32, m*k)
		BGemm(a, m, bT, k, wpr, n, got, BGemmOpts{Kernel: ForWidth(w)})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kernel %v: out[%d] = %d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestBGemmTileSizes(t *testing.T) {
	r := workload.NewRNG(12)
	m, k, wpr, n := 1, 100, 2, 128
	a := randPacked(r, m, wpr, n)
	bT := randPacked(r, k, wpr, n)
	want := bgemmRef(a, m, bT, k, wpr, n)
	for _, tile := range []int{1, 3, 7, 64, 1000} {
		got := make([]int32, m*k)
		BGemm(a, m, bT, k, wpr, n, got, BGemmOpts{KTile: tile})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tile %d: out[%d] = %d want %d", tile, i, got[i], want[i])
			}
		}
	}
}

func TestBGemmParallelMatchesSerial(t *testing.T) {
	r := workload.NewRNG(13)
	m, k, wpr, n := 1, 257, 4, 230
	a := randPacked(r, m, wpr, n)
	bT := randPacked(r, k, wpr, n)
	want := make([]int32, m*k)
	BGemm(a, m, bT, k, wpr, n, want, BGemmOpts{})
	for _, threads := range []int{0, 1, 2, 4, 16, 300} {
		ec := exec.Spawn(threads)
		got := make([]int32, m*k)
		BGemmExec(a, m, bT, k, wpr, n, got, BGemmOpts{}, ec)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads %d: out[%d] = %d want %d", threads, i, got[i], want[i])
			}
		}
	}
}

func TestBGemmShapePanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	a := make([]uint64, 2)
	bT := make([]uint64, 2)
	out := make([]int32, 1)
	check("bad a", func() { BGemm(a, 2, bT, 1, 2, 64, out, BGemmOpts{}) })
	check("bad b", func() { BGemm(a, 1, bT, 2, 2, 64, out, BGemmOpts{}) })
	check("bad out", func() { BGemm(a, 1, bT, 1, 2, 64, make([]int32, 5), BGemmOpts{}) })
}
