package kernels

import "math/bits"

// XorPopHarleySeal computes Σ popcount(a[i] XOR b[i]) with a Harley–Seal
// carry-save-adder reduction: 16 words combine through a CSA tree so only
// one hardware popcount executes per 16 XORed words (plus the small
// residue at the end). This is the classic technique for popcounting
// long streams on machines whose vector units lack a popcount
// instruction — pre-AVX-512 x86 used exactly this shape with SIMD CSAs
// (Muła/Kurz/Lemire). Here it serves as an alternative long-stream
// kernel and an ablation point against the unrolled POPCNT kernels: on
// CPUs with a fast scalar POPCNT the unrolled kernels win; where
// popcount is emulated, Harley–Seal does.
//
// Any input length is accepted; the non-multiple-of-16 tail runs through
// the scalar kernel.
func XorPopHarleySeal(a, b []uint64) int {
	n := len(a)
	if n == 0 {
		return 0
	}
	_ = b[n-1]
	var ones, twos, fours, eights uint64
	total := 0
	i := 0
	for ; i+16 <= n; i += 16 {
		var twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens uint64

		ones, twosA = csa(ones, a[i]^b[i], a[i+1]^b[i+1])
		ones, twosB = csa(ones, a[i+2]^b[i+2], a[i+3]^b[i+3])
		twos, foursA = csa(twos, twosA, twosB)
		ones, twosA = csa(ones, a[i+4]^b[i+4], a[i+5]^b[i+5])
		ones, twosB = csa(ones, a[i+6]^b[i+6], a[i+7]^b[i+7])
		twos, foursB = csa(twos, twosA, twosB)
		fours, eightsA = csa(fours, foursA, foursB)

		ones, twosA = csa(ones, a[i+8]^b[i+8], a[i+9]^b[i+9])
		ones, twosB = csa(ones, a[i+10]^b[i+10], a[i+11]^b[i+11])
		twos, foursA = csa(twos, twosA, twosB)
		ones, twosA = csa(ones, a[i+12]^b[i+12], a[i+13]^b[i+13])
		ones, twosB = csa(ones, a[i+14]^b[i+14], a[i+15]^b[i+15])
		twos, foursB = csa(twos, twosA, twosB)
		fours, eightsB = csa(fours, foursA, foursB)

		eights, sixteens = csa(eights, eightsA, eightsB)
		total += bits.OnesCount64(sixteens)
	}
	total = 16*total +
		8*bits.OnesCount64(eights) +
		4*bits.OnesCount64(fours) +
		2*bits.OnesCount64(twos) +
		bits.OnesCount64(ones)
	for ; i < n; i++ {
		total += bits.OnesCount64(a[i] ^ b[i])
	}
	return total
}

// csa is a bitwise carry-save adder: per bit position it adds x+y+z and
// returns (sum, carry).
func csa(x, y, z uint64) (sum, carry uint64) {
	u := x ^ y
	return u ^ z, (x & y) | (u & z)
}
