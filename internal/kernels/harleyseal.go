package kernels

import "math/bits"

// XorPopHarleySeal computes Σ popcount(a[i] XOR b[i]) with a Harley–Seal
// carry-save-adder reduction: 16 words combine through a CSA tree so only
// one hardware popcount executes per 16 XORed words (plus the small
// residue at the end). This is the classic technique for popcounting
// long streams on machines whose vector units lack a popcount
// instruction — pre-AVX-512 x86 used exactly this shape with SIMD CSAs
// (Muła/Kurz/Lemire). Here it serves as an alternative long-stream
// kernel and an ablation point against the unrolled POPCNT kernels: on
// CPUs with a fast scalar POPCNT the unrolled kernels win; where
// popcount is emulated, Harley–Seal does.
//
// Any input length is accepted; the non-multiple-of-16 tail runs through
// the scalar kernel.
func XorPopHarleySeal(a, b []uint64) int {
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)] //bitflow:bce-ok preamble pin: proves len(b) == len(a), panics on mismatch like the old hint
	var ones, twos, fours, eights uint64
	total := 0
	for len(a) >= 16 && len(b) >= 16 {
		var twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens uint64

		ones, twosA = csa(ones, a[0]^b[0], a[1]^b[1])
		ones, twosB = csa(ones, a[2]^b[2], a[3]^b[3])
		twos, foursA = csa(twos, twosA, twosB)
		ones, twosA = csa(ones, a[4]^b[4], a[5]^b[5])
		ones, twosB = csa(ones, a[6]^b[6], a[7]^b[7])
		twos, foursB = csa(twos, twosA, twosB)
		fours, eightsA = csa(fours, foursA, foursB)

		ones, twosA = csa(ones, a[8]^b[8], a[9]^b[9])
		ones, twosB = csa(ones, a[10]^b[10], a[11]^b[11])
		twos, foursA = csa(twos, twosA, twosB)
		ones, twosA = csa(ones, a[12]^b[12], a[13]^b[13])
		ones, twosB = csa(ones, a[14]^b[14], a[15]^b[15])
		twos, foursB = csa(twos, twosA, twosB)
		fours, eightsB = csa(fours, foursA, foursB)

		eights, sixteens = csa(eights, eightsA, eightsB)
		total += bits.OnesCount64(sixteens)
		a = a[16:]
		b = b[16:]
	}
	total = 16*total +
		8*bits.OnesCount64(eights) +
		4*bits.OnesCount64(fours) +
		2*bits.OnesCount64(twos) +
		bits.OnesCount64(ones)
	for len(a) > 0 && len(b) > 0 {
		total += bits.OnesCount64(a[0] ^ b[0])
		a = a[1:]
		b = b[1:]
	}
	return total
}

// csa is a bitwise carry-save adder: per bit position it adds x+y+z and
// returns (sum, carry).
func csa(x, y, z uint64) (sum, carry uint64) {
	u := x ^ y
	return u ^ z, (x & y) | (u & z)
}
