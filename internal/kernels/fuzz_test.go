package kernels

import (
	"encoding/binary"
	"testing"
)

// refXorPopBits counts the differing bits of a and b one bit at a time — a
// deliberately naive reference, independent of both math/bits and the
// unrolled width ladder.
func refXorPopBits(a, b []uint64) int {
	acc := 0
	for i := range a {
		x := a[i] ^ b[i]
		for bit := 0; bit < 64; bit++ {
			acc += int(x >> uint(bit) & 1)
		}
	}
	return acc
}

// fuzzWords splits raw fuzz bytes into two word slices of equal length,
// padded with zeros to a multiple of the widest kernel step.
func fuzzWords(data []byte) (a, b []uint64) {
	var words []uint64
	for i := 0; i+8 <= len(data); i += 8 {
		words = append(words, binary.LittleEndian.Uint64(data[i:]))
	}
	half := (len(words) + 1) / 2
	step := int(W512)
	n := ((half + step - 1) / step) * step
	if n == 0 {
		n = step
	}
	a = make([]uint64, n)
	b = make([]uint64, n)
	copy(a, words[:min(half, len(words))])
	if len(words) > half {
		copy(b, words[half:])
	}
	return a, b
}

// FuzzXorPopcount checks the whole width ladder (64/128/256/512-bit
// kernel steps) plus the masked variant against the naive bit-counting
// reference on arbitrary word contents.
func FuzzXorPopcount(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55, 0x01, 0x80, 0x7F, 0xFE})
	all := make([]byte, 128)
	for i := range all {
		all[i] = 0xFF
	}
	f.Add(all)
	alt := make([]byte, 256)
	for i := range alt {
		alt[i] = byte(i * 37)
	}
	f.Add(alt)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := fuzzWords(data)
		want := refXorPopBits(a, b)
		for _, w := range Widths {
			if !w.Divides(len(a)) {
				continue
			}
			if got := ForWidth(w)(a, b); got != want {
				t.Errorf("%s: got %d, want %d (n=%d words)", w, got, want, len(a))
			}
		}
		var mask uint64
		if len(data) > 0 {
			mask = uint64(data[0]) * 0x0101010101010101
		} else {
			mask = ^uint64(0)
		}
		wantMasked := 0
		for i := range a {
			if i < 64 && mask>>uint(i)&1 == 1 {
				wantMasked += refXorPopBits(a[i:i+1], b[i:i+1])
			}
		}
		if got := XorPopMasked(mask, a, b); got != wantMasked {
			t.Errorf("XorPopMasked: got %d, want %d", got, wantMasked)
		}
	})
}
