package kernels

import "bitflow/internal/bitpack"

// Compressed counterparts of the fused conv epilogues: accumulate the
// receptive field's popcounts through the compression plan's distinct-
// word table (one XOR+popcount per distinct word, scatter-added into the
// per-channel accumulators), convert to pre-activations, then reuse the
// existing branchless Pack/PackOr threshold passes. Because integer
// addition commutes, the compressed accumulators equal the uncompressed
// filter-major sums exactly, and the shared epilogue makes the packed
// bits identical word for word.

// preacts converts raw popcount accumulators to Equation 1
// pre-activations in place: acc[i] = N - 2*acc[i].
func preacts(acc []int32, n32 int32) {
	for i := range acc {
		acc[i] = n32 - 2*acc[i]
	}
}

// compressedRowsAccum accumulates one output pixel's receptive field —
// KH gathered input row segments of rowLen words each — through the
// plan's effective (possibly folded) word table, filling the first
// Eff().K accumulator entries. acc must have length K; finishPreacts
// converts and expands the result to all K channels.
func compressedRowsAccum(cp *CompressPlan, rows [][]uint64, rowLen int, acc []int32) {
	if len(acc) != cp.K {
		panicSize("compressedRowsAccum", "acc", len(acc), cp.K)
	}
	eff := cp.Eff()
	head := acc[:eff.K] //bitflow:bce-ok Eff().K ≤ K by fold construction
	clear(head)
	p0 := 0
	for _, row := range rows {
		if len(row) != rowLen {
			panicSize("compressedRowsAccum", "row", len(row), rowLen)
		}
		CompressedAccum(eff, p0, row, head)
		p0 += rowLen
	}
}

// finishPreacts converts the effective-plan accumulators to Equation 1
// pre-activations and expands a folded result to all K channels.
func finishPreacts(cp *CompressPlan, acc []int32, n32 int32) {
	eff := cp.Eff()
	preacts(acc[:eff.K], n32) //bitflow:bce-ok Eff().K ≤ K by fold construction
	cp.Expand(acc)
}

// CompressedConvEpilogue is the compressed ConvEpilogue: one output
// pixel's accumulate→threshold→set-bit ladder through the compression
// plan, overwriting dst fully (trailing words cleared). rows holds the
// KH gathered input row segments (rowLen words each), acc is caller-
// owned K-length popcount scratch.
func CompressedConvEpilogue(cp *CompressPlan, rows [][]uint64, rowLen int, n32 int32, e *Epilogue, acc []int32, dst []uint64) {
	compressedRowsAccum(cp, rows, rowLen, acc)
	finishPreacts(cp, acc, n32)
	e.Pack(acc, dst)
}

// CompressedConvEpilogueOr is CompressedConvEpilogue for the remaining
// positions of a pool window: threshold bits OR into dst (max-pool
// commutes with sign). Unlike ConvEpilogueOr there is no per-filter
// saturation skip — the compressed accumulate is position-major, so all
// channels are produced together; the plan is only selected when its
// duplication ratio already beats the skip's average savings.
func CompressedConvEpilogueOr(cp *CompressPlan, rows [][]uint64, rowLen int, n32 int32, e *Epilogue, acc []int32, dst []uint64) {
	compressedRowsAccum(cp, rows, rowLen, acc)
	finishPreacts(cp, acc, n32)
	e.PackOr(acc, dst)
}

// compressedBatchAccum accumulates B gathered receptive fields (cp.S
// words each, image-major in gather) into the B*K flat accumulator
// block and converts to pre-activations, returning B.
func compressedBatchAccum(cp *CompressPlan, gather []uint64, n32 int32, accK []int32) int {
	S := cp.S
	B := len(gather) / S
	if len(gather) != B*S {
		panicSize("compressedBatchAccum", "gather", len(gather), B*S)
	}
	if len(accK) != B*cp.K {
		panicSize("compressedBatchAccum", "accK", len(accK), B*cp.K)
	}
	k := cp.K
	eff := cp.Eff()
	for b := 0; b < B; b++ {
		acc := accK[b*k : (b+1)*k]   //bitflow:bce-ok one slice per image; shape pinned by the panicSize preamble
		row := gather[b*S : (b+1)*S] //bitflow:bce-ok one slice per image; shape pinned by the panicSize preamble
		head := acc[:eff.K]          //bitflow:bce-ok Eff().K ≤ K by fold construction
		clear(head)
		CompressedAccum(eff, 0, row, head)
		finishPreacts(cp, acc, n32)
	}
	return B
}

// CompressedConvBatchEpilogue is the compressed ConvBatchEpilogue: one
// output pixel across B images, each image's receptive field walked
// through the plan once, packed bits overwritten per image. accK is
// caller-owned B*K flat scratch; out receives B packed pixels of outWPP
// words each.
func CompressedConvBatchEpilogue(cp *CompressPlan, gather []uint64, n32 int32, e *Epilogue, accK []int32, out []uint64, outWPP int) {
	B := compressedBatchAccum(cp, gather, n32, accK)
	if len(out) != B*outWPP || outWPP < bitpack.WordsFor(e.K) {
		panicSize("CompressedConvBatchEpilogue", "out", len(out), B*outWPP)
	}
	k := cp.K
	for b := 0; b < B; b++ {
		e.Pack(accK[b*k:(b+1)*k], out[b*outWPP:(b+1)*outWPP]) //bitflow:bce-ok one slice pair per image; shapes pinned by the preambles
	}
}

// CompressedConvBatchEpilogueOr is CompressedConvBatchEpilogue for the
// remaining positions of a pool window: bits OR into out (no clear).
func CompressedConvBatchEpilogueOr(cp *CompressPlan, gather []uint64, n32 int32, e *Epilogue, accK []int32, out []uint64, outWPP int) {
	B := compressedBatchAccum(cp, gather, n32, accK)
	if len(out) != B*outWPP || outWPP < bitpack.WordsFor(e.K) {
		panicSize("CompressedConvBatchEpilogueOr", "out", len(out), B*outWPP)
	}
	k := cp.K
	for b := 0; b < B; b++ {
		e.PackOr(accK[b*k:(b+1)*k], out[b*outWPP:(b+1)*outWPP]) //bitflow:bce-ok one slice pair per image; shapes pinned by the preambles
	}
}
