package kernels

import "math/bits"

// This file implements the batched XOR+popcount kernels behind the
// micro-batched inference path: one filter block is applied to B gathered
// input blocks in a single call, so the filter words are loaded once per
// batch instead of once per image and the per-call dispatch overhead of
// the single-image kernels amortizes across the batch. Accumulation per
// image is unchanged word-for-word, so batched results are bit-identical
// to the single-image kernels.

// XorPopBatchFunc computes, for each of the B = len(accs) contiguous
// S = len(filt) word blocks of a (len(a) = B*S), the XOR+popcount against
// the single filter block: accs[b] = Σᵢ popcount(a[b*S+i] XOR filt[i]).
type XorPopBatchFunc func(a, filt []uint64, accs []int32)

// XorPopBatch64 is the scalar batched kernel (any block length). The
// inner loop is unrolled by 3 — the natural row length of a KW=3, one
// word-per-pixel convolution — with a scalar tail for other shapes.
func XorPopBatch64(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s : b*s+s : b*s+s]
		acc := 0
		i := 0
		for ; i+3 <= s; i += 3 {
			acc += bits.OnesCount64(blk[i]^filt[i]) +
				bits.OnesCount64(blk[i+1]^filt[i+1]) +
				bits.OnesCount64(blk[i+2]^filt[i+2])
		}
		for ; i < s; i++ {
			acc += bits.OnesCount64(blk[i] ^ filt[i])
		}
		accs[b] = int32(acc)
	}
}

// XorPopBatch128 processes 2 words per step; block length must be a
// multiple of 2.
func XorPopBatch128(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s : b*s+s : b*s+s]
		var acc0, acc1 int
		for i := 0; i < s; i += 2 {
			acc0 += bits.OnesCount64(blk[i] ^ filt[i])
			acc1 += bits.OnesCount64(blk[i+1] ^ filt[i+1])
		}
		accs[b] = int32(acc0 + acc1)
	}
}

// XorPopBatch256 processes 4 words per step; block length must be a
// multiple of 4.
func XorPopBatch256(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s : b*s+s : b*s+s]
		var acc0, acc1, acc2, acc3 int
		for i := 0; i < s; i += 4 {
			acc0 += bits.OnesCount64(blk[i] ^ filt[i])
			acc1 += bits.OnesCount64(blk[i+1] ^ filt[i+1])
			acc2 += bits.OnesCount64(blk[i+2] ^ filt[i+2])
			acc3 += bits.OnesCount64(blk[i+3] ^ filt[i+3])
		}
		accs[b] = int32((acc0 + acc1) + (acc2 + acc3))
	}
}

// XorPopBatch512 processes 8 words per step; block length must be a
// multiple of 8.
func XorPopBatch512(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s : b*s+s : b*s+s]
		var acc0, acc1, acc2, acc3 int
		for i := 0; i < s; i += 8 {
			acc0 += bits.OnesCount64(blk[i]^filt[i]) + bits.OnesCount64(blk[i+4]^filt[i+4])
			acc1 += bits.OnesCount64(blk[i+1]^filt[i+1]) + bits.OnesCount64(blk[i+5]^filt[i+5])
			acc2 += bits.OnesCount64(blk[i+2]^filt[i+2]) + bits.OnesCount64(blk[i+6]^filt[i+6])
			acc3 += bits.OnesCount64(blk[i+3]^filt[i+3]) + bits.OnesCount64(blk[i+7]^filt[i+7])
		}
		accs[b] = int32((acc0 + acc1) + (acc2 + acc3))
	}
}

// BatchForWidth returns the batched kernel for the given width. The width
// contract matches ForWidth/RowsForWidth: the block length handed to the
// kernel must be a multiple of the width's word count.
func BatchForWidth(w Width) XorPopBatchFunc {
	switch w {
	case W64:
		return XorPopBatch64
	case W128:
		return XorPopBatch128
	case W256:
		return XorPopBatch256
	case W512:
		return XorPopBatch512
	}
	panicUnknownWidth()
	return nil
}
