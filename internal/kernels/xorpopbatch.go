package kernels

import "math/bits"

// This file implements the batched XOR+popcount kernels behind the
// micro-batched inference path: one filter block is applied to B gathered
// input blocks in a single call, so the filter words are loaded once per
// batch instead of once per image and the per-call dispatch overhead of
// the single-image kernels amortizes across the batch. Accumulation per
// image is unchanged word-for-word, so batched results are bit-identical
// to the single-image kernels.
//
// The per-image inner loops use the same chunk-advance shape as the
// single-image ladder: one bounds check survives per image (the block
// slice), zero per word — pinned by `bitflow-vet codegen`.

// XorPopBatchFunc computes, for each of the B = len(accs) contiguous
// S = len(filt) word blocks of a (len(a) = B*S), the XOR+popcount against
// the single filter block: accs[b] = Σᵢ popcount(a[b*S+i] XOR filt[i]).
type XorPopBatchFunc func(a, filt []uint64, accs []int32)

// XorPopBatch64 is the scalar batched kernel (any block length). The
// inner loop is unrolled by 3 — the natural row length of a KW=3, one
// word-per-pixel convolution — with a scalar tail for other shapes.
func XorPopBatch64(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s:] //bitflow:bce-ok one per-image block slice; panics if a is shorter than B*S like the old 3-index form
		f := filt
		acc := 0
		for len(blk) >= 3 && len(f) >= 3 {
			acc += bits.OnesCount64(blk[0]^f[0]) +
				bits.OnesCount64(blk[1]^f[1]) +
				bits.OnesCount64(blk[2]^f[2])
			blk = blk[3:]
			f = f[3:]
		}
		for len(f) > 0 && len(blk) > 0 {
			acc += bits.OnesCount64(blk[0] ^ f[0])
			blk = blk[1:]
			f = f[1:]
		}
		accs[b] = int32(acc)
	}
}

// XorPopBatch128 processes 2 words per step; block length must be a
// multiple of 2.
func XorPopBatch128(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s:] //bitflow:bce-ok one per-image block slice; panics if a is shorter than B*S
		f := filt
		var acc0, acc1 int
		for len(f) >= 2 && len(blk) >= 2 {
			acc0 += bits.OnesCount64(blk[0] ^ f[0])
			acc1 += bits.OnesCount64(blk[1] ^ f[1])
			blk = blk[2:]
			f = f[2:]
		}
		accs[b] = int32(acc0 + acc1)
	}
}

// XorPopBatch256 processes 4 words per step; block length must be a
// multiple of 4.
func XorPopBatch256(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s:] //bitflow:bce-ok one per-image block slice; panics if a is shorter than B*S
		f := filt
		var acc0, acc1, acc2, acc3 int
		for len(f) >= 4 && len(blk) >= 4 {
			acc0 += bits.OnesCount64(blk[0] ^ f[0])
			acc1 += bits.OnesCount64(blk[1] ^ f[1])
			acc2 += bits.OnesCount64(blk[2] ^ f[2])
			acc3 += bits.OnesCount64(blk[3] ^ f[3])
			blk = blk[4:]
			f = f[4:]
		}
		accs[b] = int32((acc0 + acc1) + (acc2 + acc3))
	}
}

// XorPopBatch512 processes 8 words per step; block length must be a
// multiple of 8.
func XorPopBatch512(a, filt []uint64, accs []int32) {
	s := len(filt)
	for b := range accs {
		blk := a[b*s:] //bitflow:bce-ok one per-image block slice; panics if a is shorter than B*S
		f := filt
		var acc0, acc1, acc2, acc3 int
		for len(f) >= 8 && len(blk) >= 8 {
			acc0 += bits.OnesCount64(blk[0]^f[0]) + bits.OnesCount64(blk[4]^f[4])
			acc1 += bits.OnesCount64(blk[1]^f[1]) + bits.OnesCount64(blk[5]^f[5])
			acc2 += bits.OnesCount64(blk[2]^f[2]) + bits.OnesCount64(blk[6]^f[6])
			acc3 += bits.OnesCount64(blk[3]^f[3]) + bits.OnesCount64(blk[7]^f[7])
			blk = blk[8:]
			f = f[8:]
		}
		accs[b] = int32((acc0 + acc1) + (acc2 + acc3))
	}
}

// BatchForWidth returns the batched kernel for the given width. The width
// contract matches ForWidth/RowsForWidth: the block length handed to the
// kernel must be a multiple of the width's word count.
func BatchForWidth(w Width) XorPopBatchFunc {
	switch w {
	case W64:
		return XorPopBatch64
	case W128:
		return XorPopBatch128
	case W256:
		return XorPopBatch256
	case W512:
		return XorPopBatch512
	}
	panicUnknownWidth()
	return nil
}
