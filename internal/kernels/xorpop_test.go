package kernels

import (
	"math/bits"
	"testing"
	"testing/quick"

	"bitflow/internal/workload"
)

// refXorPop is the obvious one-word-at-a-time reference.
func refXorPop(a, b []uint64) int {
	acc := 0
	for i := range a {
		acc += bits.OnesCount64(a[i] ^ b[i])
	}
	return acc
}

func randWords(r *workload.RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func TestXorPopWidthsAgree(t *testing.T) {
	r := workload.NewRNG(1)
	for _, words := range []int{8, 16, 24, 40, 64, 128, 392} {
		a := randWords(r, words)
		b := randWords(r, words)
		want := refXorPop(a, b)
		for _, w := range Widths {
			if !w.Divides(words) {
				continue
			}
			if got := ForWidth(w)(a, b); got != want {
				t.Errorf("words=%d width=%v: got %d want %d", words, w, got, want)
			}
		}
	}
}

func TestXorPop64AnyLength(t *testing.T) {
	r := workload.NewRNG(2)
	for n := 1; n <= 67; n++ {
		a := randWords(r, n)
		b := randWords(r, n)
		if got, want := XorPop64(a, b), refXorPop(a, b); got != want {
			t.Errorf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestXorPopZeroOperands(t *testing.T) {
	a := make([]uint64, 16)
	b := make([]uint64, 16)
	for _, w := range Widths {
		if got := ForWidth(w)(a, b); got != 0 {
			t.Errorf("width %v on zeros: got %d", w, got)
		}
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	for _, w := range Widths {
		if got := ForWidth(w)(a, b); got != 16*64 {
			t.Errorf("width %v zeros^ones: got %d want %d", w, got, 16*64)
		}
	}
}

// TestXorPopQuick cross-checks all widths against the reference on
// quick-generated operands.
func TestXorPopQuick(t *testing.T) {
	f := func(seed uint64, nBlocks uint8) bool {
		n := (int(nBlocks)%32 + 1) * 8 // multiple of 8 so every width applies
		r := workload.NewRNG(seed)
		a := randWords(r, n)
		b := randWords(r, n)
		want := refXorPop(a, b)
		for _, w := range Widths {
			if ForWidth(w)(a, b) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorPopMasked(t *testing.T) {
	r := workload.NewRNG(3)
	a := randWords(r, 8)
	b := randWords(r, 8)
	if got, want := XorPopMasked(^uint64(0), a, b), refXorPop(a, b); got != want {
		t.Errorf("full mask: got %d want %d", got, want)
	}
	if got := XorPopMasked(0, a, b); got != 0 {
		t.Errorf("empty mask: got %d", got)
	}
	// Mask selecting only word 3.
	want := bits.OnesCount64(a[3] ^ b[3])
	if got := XorPopMasked(1<<3, a, b); got != want {
		t.Errorf("single-word mask: got %d want %d", got, want)
	}
}

func TestOrInto(t *testing.T) {
	r := workload.NewRNG(4)
	for _, n := range []int{1, 3, 4, 7, 8, 33} {
		dst := randWords(r, n)
		src := randWords(r, n)
		want := make([]uint64, n)
		for i := range want {
			want[i] = dst[i] | src[i]
		}
		OrInto(dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d word %d: got %x want %x", n, i, dst[i], want[i])
			}
		}
	}
}

func TestDotMatchesRef(t *testing.T) {
	r := workload.NewRNG(5)
	for _, tc := range []struct{ words, valid int }{
		{1, 64}, {1, 37}, {2, 128}, {2, 100}, {8, 512}, {8, 448},
	} {
		a := randWords(r, tc.words)
		b := randWords(r, tc.words)
		// Clear lanes beyond valid in both operands (the packed-buffer
		// invariant Dot relies on).
		for lane := tc.valid; lane < tc.words*64; lane++ {
			a[lane/64] &^= 1 << uint(lane%64)
			b[lane/64] &^= 1 << uint(lane%64)
		}
		want := DotRef(a, b, tc.valid)
		for _, w := range Widths {
			if !w.Divides(tc.words) {
				continue
			}
			if got := Dot(ForWidth(w), a, b, tc.valid); got != want {
				t.Errorf("words=%d valid=%d width=%v: got %d want %d", tc.words, tc.valid, w, got, want)
			}
		}
	}
}

func TestWidthHelpers(t *testing.T) {
	if W64.Bits() != 64 || W128.Bits() != 128 || W256.Bits() != 256 || W512.Bits() != 512 {
		t.Error("Bits() wrong")
	}
	if !W256.Divides(8) || W256.Divides(6) {
		t.Error("Divides wrong")
	}
	names := map[Width]string{W64: "scalar64", W128: "sse128", W256: "avx256", W512: "avx512"}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("String(%d) = %q want %q", int(w), w.String(), want)
		}
	}
	if Width(3).String() != "Width(3)" {
		t.Errorf("unknown width String = %q", Width(3).String())
	}
}

func TestForWidthPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ForWidth(3) did not panic")
		}
	}()
	ForWidth(Width(3))
}

func TestPopcount(t *testing.T) {
	if Popcount([]uint64{0, ^uint64(0), 1}) != 65 {
		t.Error("Popcount wrong")
	}
}
