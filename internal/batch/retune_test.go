package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitflow/internal/tensor"
)

// countingFactory builds independent fakeRunners and counts how many it
// has handed out — the resize tests need per-worker runners (a shared
// fakeRunner trips its own concurrent-use check, by design).
type countingFactory struct {
	built atomic.Int64
	// maxConcurrent tracks the peak number of runners inside InferBatch
	// at once, across all runners from this factory.
	inflight      atomic.Int64
	maxConcurrent atomic.Int64
	delay         time.Duration
}

type factoryRunner struct {
	f *countingFactory
}

func (r *factoryRunner) InferBatch(xs []*tensor.Tensor) ([][]float32, error) {
	cur := r.f.inflight.Add(1)
	defer r.f.inflight.Add(-1)
	for {
		peak := r.f.maxConcurrent.Load()
		if cur <= peak || r.f.maxConcurrent.CompareAndSwap(peak, cur) {
			break
		}
	}
	if r.f.delay > 0 {
		time.Sleep(r.f.delay)
	}
	outs := make([][]float32, len(xs))
	for i, x := range xs {
		var s float32
		for _, v := range x.Data {
			s += v
		}
		outs[i] = []float32{s}
	}
	return outs, nil
}

func (f *countingFactory) new() (Runner, error) {
	f.built.Add(1)
	return &factoryRunner{f: f}, nil
}

func TestRetuneTakesEffectOnNextBatch(t *testing.T) {
	f := &countingFactory{}
	b := newTestBatcher(t, Config{
		Window: 300 * time.Millisecond, MaxBatch: 8, QueueCap: 64,
		NewRunner: f.new,
	}, nil)

	// With max-batch 1 a lone request dispatches immediately instead of
	// waiting out the 300ms window.
	if err := b.Retune(time.Millisecond, 1); err != nil {
		t.Fatalf("Retune: %v", err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := b.Submit(ctx, tens(1)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if took := time.Since(start); took > 150*time.Millisecond {
		t.Fatalf("lone request took %v after retune to max-batch 1; old window still in force?", took)
	}
	w, mb, workers := b.Params()
	if w != time.Millisecond || mb != 1 || workers != 1 {
		t.Fatalf("Params = (%v, %d, %d), want (1ms, 1, 1)", w, mb, workers)
	}
}

func TestRetuneRejectsInvalid(t *testing.T) {
	f := &countingFactory{}
	b := newTestBatcher(t, Config{QueueCap: 8, NewRunner: f.new}, nil)
	if err := b.Retune(0, 4); err == nil {
		t.Fatal("zero window accepted")
	}
	if err := b.Retune(-time.Millisecond, 4); err == nil {
		t.Fatal("negative window accepted")
	}
	if err := b.Retune(time.Millisecond, 0); err == nil {
		t.Fatal("max-batch 0 accepted")
	}
	// The old parameters survive rejected retunes.
	w, mb, _ := b.Params()
	if w != 2*time.Millisecond || mb != 8 {
		t.Fatalf("rejected retune changed params to (%v, %d)", w, mb)
	}
}

func TestResizeGrowAddsParallelWorkers(t *testing.T) {
	f := &countingFactory{delay: 30 * time.Millisecond}
	b := newTestBatcher(t, Config{
		Window: 100 * time.Microsecond, MaxBatch: 1, Workers: 1, QueueCap: 64,
		NewRunner: f.new,
	}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Resize(ctx, 3); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if _, _, workers := b.Params(); workers != 3 {
		t.Fatalf("workers = %d after grow, want 3", workers)
	}
	if f.built.Load() != 3 {
		t.Fatalf("factory built %d runners, want 3", f.built.Load())
	}

	// Three slow single-item batches must overlap now.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.Submit(ctx, tens(1))
		}()
	}
	wg.Wait()
	if peak := f.maxConcurrent.Load(); peak < 2 {
		t.Fatalf("peak concurrent batches = %d after grow to 3 workers", peak)
	}
}

func TestResizeShrinkRetiresWorkersWithoutDroppingRequests(t *testing.T) {
	f := &countingFactory{delay: time.Millisecond}
	b := newTestBatcher(t, Config{
		Window: 100 * time.Microsecond, MaxBatch: 2, Workers: 4, QueueCap: 64,
		NewRunner: f.new,
	}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Keep traffic flowing while the pool shrinks under it.
	var submitErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := b.Submit(ctx, tens(1)); err != nil && !errors.Is(err, ErrQueueFull) {
					submitErr.Store(err)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := b.Resize(ctx, 1); err != nil {
		t.Fatalf("shrink under load: %v", err)
	}
	if _, _, workers := b.Params(); workers != 1 {
		t.Fatalf("workers = %d after shrink, want 1", workers)
	}
	close(stop)
	wg.Wait()
	if err := submitErr.Load(); err != nil {
		t.Fatalf("request failed during shrink: %v", err)
	}
	// The lone surviving worker still serves.
	if _, err := b.Submit(ctx, tens(2)); err != nil {
		t.Fatalf("Submit after shrink: %v", err)
	}
}

func TestResizeValidationAndClosed(t *testing.T) {
	f := &countingFactory{}
	cfg := Config{QueueCap: 8, NewRunner: f.new}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.Resize(ctx, 0); err == nil {
		t.Fatal("resize to 0 accepted")
	}
	if err := b.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Resize(ctx, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("resize after close = %v, want ErrClosed", err)
	}
}

func TestResizeGrowVerifyRunnerGates(t *testing.T) {
	f := &countingFactory{}
	verifyErr := errors.New("clone diverged")
	var verified atomic.Int64
	cfg := Config{
		QueueCap:  8,
		Workers:   1,
		NewRunner: f.new,
		VerifyRunner: func(r Runner) error {
			verified.Add(1)
			return verifyErr
		},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = b.Close(ctx)
	})
	ctx := context.Background()
	if err := b.Resize(ctx, 3); !errors.Is(err, verifyErr) {
		t.Fatalf("Resize with failing verification = %v, want %v", err, verifyErr)
	}
	if verified.Load() == 0 {
		t.Fatal("VerifyRunner never ran during grow")
	}
	if _, _, workers := b.Params(); workers != 1 {
		t.Fatalf("failed grow changed worker count to %d", workers)
	}
	// New at startup does NOT verify — only resize growth does.
	if f.built.Load() < 2 {
		t.Fatalf("factory calls = %d, expected startup + grow attempt", f.built.Load())
	}
}
