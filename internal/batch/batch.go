// Package batch implements dynamic micro-batching for inference: it
// coalesces concurrent single-image requests into batches under a time
// window and a size cap, dispatches each batch to a runner (the batched
// forward path, graph.InferBatch), and fans the per-image results back to
// the callers. The subsystem boundary is deliberate: this package owns
// coalescing policy and request lifetimes, internal/graph owns the batched
// compute, and internal/serve owns admission and the HTTP surface.
//
// The scheduler favors latency over occupancy: a batch is dispatched as
// soon as it fills (size cap) or its window expires, whichever comes
// first, so an idle server serves a lone request after at most one window.
// Callers that give up mid-window (context cancellation) leave the batch
// without poisoning it — their slot is dropped at assembly time and every
// other request proceeds. Panics in the runner are captured with
// resilience.Safe, fail only the requests of the affected batch, and the
// worker re-clones its runner before accepting the next batch.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bitflow/internal/faultinject"
	"bitflow/internal/resilience"
	"bitflow/internal/tensor"
)

var (
	// ErrQueueFull is returned by Submit when the pending queue is at
	// capacity — the caller should shed load (HTTP 429).
	ErrQueueFull = errors.New("batch: queue full")
	// ErrClosed is returned by Submit once Close has begun.
	ErrClosed = errors.New("batch: batcher closed")
)

// InputError marks a request rejected by per-item validation before it
// ever entered a batch. The batch it would have joined is unaffected.
type InputError struct {
	Err error
}

func (e *InputError) Error() string { return fmt.Sprintf("batch: bad input: %v", e.Err) }

func (e *InputError) Unwrap() error { return e.Err }

// Runner executes one assembled batch. Implementations must return one
// output per input, in order. A Runner is owned by exactly one worker at a
// time and need not be safe for concurrent use. *graph.Network satisfies
// the interface directly.
type Runner interface {
	InferBatch(xs []*tensor.Tensor) ([][]float32, error)
}

// Config parameterizes a Batcher. NewRunner is the only required field.
type Config struct {
	// Window bounds how long the first request of a batch waits for
	// company. Default 2ms.
	Window time.Duration
	// MaxBatch caps the batch size; a full batch dispatches immediately.
	// Default 8.
	MaxBatch int
	// Workers is the number of concurrent batch runners. Default 1 —
	// right for single-socket deployments where the batched kernels
	// already use every core.
	Workers int
	// QueueCap bounds the pending-request queue. Submit sheds with
	// ErrQueueFull beyond it. Default Workers × MaxBatch × 2.
	QueueCap int
	// NewRunner builds a runner for a worker — called once per worker at
	// start, again after a captured panic (so a poisoned runner is
	// replaced instead of reused), and for each worker a Resize grow adds.
	NewRunner func() (Runner, error)
	// VerifyRunner, when set, validates a runner built during a Resize
	// grow before it serves traffic (e.g. a bit-exactness probe against a
	// reference replica). It runs off the hot path. Optional.
	VerifyRunner func(Runner) error
	// Check validates one input before it is enqueued (e.g. the
	// composition of graph.CheckInput and a finite scan). A non-nil
	// return fails only that request, wrapped in *InputError. Optional.
	Check func(x *tensor.Tensor) error
	// Metrics receives batch occupancy/flush-reason observations and
	// panic counts. Optional.
	Metrics *resilience.Metrics
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = c.Workers * c.MaxBatch * 2
	}
	return c
}

// result is what a request's future resolves to.
type result struct {
	out []float32
	err error
}

// request is one caller's seat in the queue. done is buffered so a worker
// can always complete a request whose caller already gave up; completed
// makes completion exactly-once.
type request struct {
	ctx       context.Context
	x         *tensor.Tensor
	done      chan result
	completed atomic.Bool
}

// complete resolves the future exactly once; later calls are no-ops.
func (r *request) complete(out []float32, err error) {
	if r.completed.CompareAndSwap(false, true) {
		r.done <- result{out: out, err: err}
	}
}

// Batcher coalesces Submit calls into batches and runs them on a pool of
// workers. Create with New; stop with Close.
//
// The coalescing parameters (window, max-batch) and the worker count are
// runtime control variables: Retune and Resize adjust them on a live
// batcher without interrupting service. Batches already assembling finish
// under the parameters they started with.
type Batcher struct {
	cfg   Config
	queue chan *request

	windowNanos atomic.Int64 // current coalescing window, ns
	maxBatch    atomic.Int64 // current size cap
	live        atomic.Int64 // workers currently running
	target      atomic.Int64 // workers Resize wants running
	retire      chan struct{} // wakes idle workers so a shrink can retire them

	resizeMu sync.Mutex   // serializes Resize calls
	mu       sync.RWMutex // guards closed vs. sends on queue and worker spawns
	closed   bool

	closing chan struct{} // closed by Close: workers switch to drain mode
	wg      sync.WaitGroup
}

// New builds and starts a Batcher. Each worker constructs its own runner
// via cfg.NewRunner before New returns, so a broken model surfaces here
// rather than on the first request.
func New(cfg Config) (*Batcher, error) {
	cfg = cfg.withDefaults()
	if cfg.NewRunner == nil {
		return nil, errors.New("batch: Config.NewRunner is required")
	}
	b := &Batcher{
		cfg:     cfg,
		queue:   make(chan *request, cfg.QueueCap),
		retire:  make(chan struct{}, 1),
		closing: make(chan struct{}),
	}
	b.windowNanos.Store(int64(cfg.Window))
	b.maxBatch.Store(int64(cfg.MaxBatch))
	b.target.Store(int64(cfg.Workers))
	runners := make([]Runner, cfg.Workers)
	for i := range runners {
		r, err := cfg.NewRunner()
		if err != nil {
			return nil, fmt.Errorf("batch: worker %d runner: %w", i, err)
		}
		runners[i] = r
	}
	for _, r := range runners {
		b.live.Add(1)
		b.wg.Add(1)
		go b.worker(r)
	}
	return b, nil
}

// Retune atomically replaces the coalescing window and size cap. The next
// batch to start assembling uses the new parameters; a batch mid-assembly
// finishes under the old ones. Both values must be positive.
func (b *Batcher) Retune(window time.Duration, maxBatch int) error {
	if window <= 0 {
		return fmt.Errorf("batch: retune window %v: must be > 0", window)
	}
	if maxBatch < 1 {
		return fmt.Errorf("batch: retune max-batch %d: must be ≥ 1", maxBatch)
	}
	b.windowNanos.Store(int64(window))
	b.maxBatch.Store(int64(maxBatch))
	return nil
}

// Params reports the current coalescing window, size cap, and live worker
// count.
func (b *Batcher) Params() (window time.Duration, maxBatch, workers int) {
	return time.Duration(b.windowNanos.Load()), int(b.maxBatch.Load()), int(b.live.Load())
}

// Resize grows or shrinks the worker pool to n on a live batcher. Growing
// builds fresh runners via cfg.NewRunner (optionally validated by
// cfg.VerifyRunner) and starts them immediately. Shrinking is graceful:
// surplus workers retire between batches, never mid-batch, so no request
// is dropped; Resize waits for the count to land, bounded by ctx. On a
// partial grow failure the workers already started stay.
func (b *Batcher) Resize(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("batch: resize to %d workers: must be ≥ 1", n)
	}
	b.resizeMu.Lock()
	defer b.resizeMu.Unlock()
	b.mu.RLock()
	closed := b.closed
	b.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	cur := int(b.live.Load())
	b.target.Store(int64(n))
	if n > cur {
		for i := cur; i < n; i++ {
			r, err := b.cfg.NewRunner()
			if err != nil {
				b.target.Store(int64(i))
				return fmt.Errorf("batch: resize worker %d runner: %w", i, err)
			}
			if v := b.cfg.VerifyRunner; v != nil {
				if err := v(r); err != nil {
					b.target.Store(int64(i))
					return fmt.Errorf("batch: resize worker %d failed verification: %w", i, err)
				}
			}
			b.mu.RLock()
			if b.closed {
				b.mu.RUnlock()
				b.target.Store(int64(i))
				return ErrClosed
			}
			b.live.Add(1)
			b.wg.Add(1)
			go b.worker(r)
			b.mu.RUnlock()
		}
		return nil
	}
	// Shrink: nudge an idle worker awake; busy workers notice the target
	// when they return to their select loop. Keep nudging until the live
	// count lands (a nudge can be consumed by a worker that then loses the
	// retire race) or ctx gives up — in which case the new, lower target
	// stays and remaining surplus workers retire as they go idle.
	for b.live.Load() > int64(n) {
		select {
		case b.retire <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("batch: shrink %d→%d interrupted at %d live: %w", cur, n, b.live.Load(), ctx.Err())
		case <-b.closing:
			return nil
		case <-time.After(100 * time.Microsecond):
		}
	}
	return nil
}

// tryRetire atomically claims one retirement slot. It fails when the pool
// is already at (or below) the target, so a stale nudge never over-shrinks.
func (b *Batcher) tryRetire() bool {
	for {
		live := b.live.Load()
		if live <= b.target.Load() || live <= 1 {
			return false
		}
		if b.live.CompareAndSwap(live, live-1) {
			return true
		}
	}
}

// Submit enqueues one inference request and blocks until its batch has
// run or ctx is done. On cancellation the caller gets ctx's error
// immediately; the abandoned seat is discarded when its batch assembles
// and never poisons the other requests.
func (b *Batcher) Submit(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	if check := b.cfg.Check; check != nil {
		if err := check(x); err != nil {
			return nil, &InputError{Err: err}
		}
	}
	req := &request{ctx: ctx, x: x, done: make(chan result, 1)}

	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		return nil, ErrQueueFull
	}

	select {
	case res := <-req.done:
		return res.out, res.err
	case <-ctx.Done():
		// Mark the seat abandoned so the worker drops it at assembly. If
		// the worker won the race and completed it first, return the real
		// result — it is already paid for.
		if !req.completed.CompareAndSwap(false, true) {
			res := <-req.done
			return res.out, res.err
		}
		return nil, ctx.Err()
	}
}

// Close stops admission, flushes everything already queued (flush reason
// "drain"), and waits for the workers to finish, or for ctx. Pending
// requests are never dropped: every queued request still runs (cancelled
// seats excepted) before the workers exit.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.queue)
	b.mu.Unlock()
	close(b.closing)

	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("batch: drain interrupted: %w", ctx.Err())
	}
}

// worker pulls requests off the queue, coalesces them, and runs batches
// on its private runner until the queue is closed and drained, or until a
// shrink Resize retires it. Retirement only happens here, between
// batches — never mid-batch.
func (b *Batcher) worker(r Runner) {
	defer b.wg.Done()
	for {
		if int(b.live.Load()) > int(b.target.Load()) && b.tryRetire() {
			return
		}
		select {
		case first, ok := <-b.queue:
			if !ok {
				b.live.Add(-1)
				return
			}
			reqs, reason := b.collect(first)
			if len(reqs) == 0 {
				continue
			}
			r = b.runBatch(r, reqs, reason)
		case <-b.retire:
			if b.tryRetire() {
				return
			}
		}
	}
}

// collect assembles one batch starting from first: it admits queued
// requests until the size cap, the window timer, or drain, skipping seats
// whose caller has already cancelled (completed with their ctx error).
// The window and size cap are read once at entry, so a concurrent Retune
// affects the next batch, not this one.
func (b *Batcher) collect(first *request) ([]*request, resilience.FlushReason) {
	window := time.Duration(b.windowNanos.Load())
	maxBatch := int(b.maxBatch.Load())
	reqs := make([]*request, 0, maxBatch)
	admit := func(req *request) {
		if err := req.ctx.Err(); err != nil {
			req.complete(nil, err)
			return
		}
		reqs = append(reqs, req)
	}
	admit(first)

	timer := time.NewTimer(window)
	defer timer.Stop()
	reason := resilience.FlushFull
	for len(reqs) < maxBatch {
		select {
		case req, ok := <-b.queue:
			if !ok {
				return reqs, resilience.FlushDrain
			}
			admit(req)
		case <-timer.C:
			return reqs, resilience.FlushWindow
		case <-b.closing:
			// Drain mode: stop waiting out the window, but keep filling
			// from whatever is already queued so the backlog leaves in
			// full batches, not singletons.
			for len(reqs) < maxBatch {
				select {
				case req, ok := <-b.queue:
					if !ok {
						return reqs, resilience.FlushDrain
					}
					admit(req)
				default:
					return reqs, resilience.FlushDrain
				}
			}
			return reqs, resilience.FlushDrain
		}
	}
	return reqs, reason
}

// runBatch executes one batch with panic isolation and fans results back
// to the requests' futures. It returns the runner to use for the next
// batch — a fresh clone after a captured panic, the same one otherwise.
func (b *Batcher) runBatch(r Runner, reqs []*request, reason resilience.FlushReason) Runner {
	if m := b.cfg.Metrics; m != nil {
		m.ObserveBatch(len(reqs), reason)
	}
	xs := make([]*tensor.Tensor, len(reqs))
	for i, req := range reqs {
		xs[i] = req.x
	}
	var outs [][]float32
	var runErr error
	panicErr := resilience.Safe(func() {
		// batch.dispatch fires inside the Safe boundary: an injected panic
		// is captured exactly like a real runner crash, an injected error
		// fails the batch like a real runner error.
		if runErr = faultinject.BatchDispatch.Fire(nil, "", len(reqs)); runErr != nil {
			return
		}
		outs, runErr = r.InferBatch(xs)
	})
	switch {
	case panicErr != nil:
		if m := b.cfg.Metrics; m != nil {
			m.PanicsRecovered.Add(1)
		}
		for _, req := range reqs {
			req.complete(nil, panicErr)
		}
		// The runner may hold corrupted activation state; replace it. If
		// the factory itself fails, keep the old runner — serving with a
		// suspect runner beats serving with none.
		var fresh Runner
		var err error
		if ferr := resilience.Safe(func() {
			_ = faultinject.BatchClone.Fire(nil, "", 0)
			fresh, err = b.cfg.NewRunner()
		}); ferr == nil && err == nil && fresh != nil {
			return fresh
		}
		return r
	case runErr != nil:
		for _, req := range reqs {
			req.complete(nil, runErr)
		}
		return r
	case len(outs) != len(reqs):
		err := fmt.Errorf("batch: runner returned %d outputs for %d inputs", len(outs), len(reqs))
		for _, req := range reqs {
			req.complete(nil, err)
		}
		return r
	default:
		for i, req := range reqs {
			req.complete(outs[i], nil)
		}
		return r
	}
}
