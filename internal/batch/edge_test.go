package batch

// Boundary tests for the coalescing math: degenerate window/size-cap
// configurations, queue-cap edges, and cancellation racing the flush.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bitflow/internal/resilience"
)

// TestConfigDefaultBoundaries pins withDefaults at its edges: zero and
// negative knobs normalize, and the derived queue cap is computed from
// the POST-default worker and batch values.
func TestConfigDefaultBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "all zero",
			in:   Config{},
			want: Config{Window: 2 * time.Millisecond, MaxBatch: 8, Workers: 1, QueueCap: 16},
		},
		{
			name: "negative window and batch",
			in:   Config{Window: -time.Second, MaxBatch: -4},
			want: Config{Window: 2 * time.Millisecond, MaxBatch: 8, Workers: 1, QueueCap: 16},
		},
		{
			name: "max-batch one",
			in:   Config{MaxBatch: 1, Workers: 3},
			want: Config{Window: 2 * time.Millisecond, MaxBatch: 1, Workers: 3, QueueCap: 6},
		},
		{
			name: "explicit values survive",
			in:   Config{Window: time.Millisecond, MaxBatch: 4, Workers: 2, QueueCap: 5},
			want: Config{Window: time.Millisecond, MaxBatch: 4, Workers: 2, QueueCap: 5},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.withDefaults()
			if got.Window != tc.want.Window || got.MaxBatch != tc.want.MaxBatch ||
				got.Workers != tc.want.Workers || got.QueueCap != tc.want.QueueCap {
				t.Errorf("withDefaults(%+v) = {Window:%v MaxBatch:%d Workers:%d QueueCap:%d}, want %+v",
					tc.in, got.Window, got.MaxBatch, got.Workers, got.QueueCap, tc.want)
			}
		})
	}
}

// TestWindowZeroStillFlushes proves a zero window is a configuration to
// normalize, not a hang: a lone request must come back within the
// defaulted 2ms window, not wait for a full batch forever.
func TestWindowZeroStillFlushes(t *testing.T) {
	r := &fakeRunner{}
	b := newTestBatcher(t, Config{Window: 0, MaxBatch: 8}, r)
	t0 := time.Now()
	out, err := b.Submit(context.Background(), tens(3))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 {
		t.Errorf("logits %v, want [6]", out)
	}
	if el := time.Since(t0); el > time.Second {
		t.Errorf("lone request took %v under a defaulted window", el)
	}
}

// TestMaxBatchOneDegeneratesToSingletons pins the size-cap floor: with
// MaxBatch=1 every dispatch is a singleton flushed for reason size-cap
// (the cap is hit by the batch's first member; the window never starts).
func TestMaxBatchOneDegeneratesToSingletons(t *testing.T) {
	r := &fakeRunner{}
	m := resilience.NewMetrics(16)
	b := newTestBatcher(t, Config{Window: 50 * time.Millisecond, MaxBatch: 1, QueueCap: 64, Metrics: m}, r)

	const N = 12
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Submit(context.Background(), tens(float32(i)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			} else if out[0] != float32(2*i) {
				t.Errorf("request %d: got %v", i, out)
			}
		}(i)
	}
	wg.Wait()

	if got := r.batches.Load(); got != N {
		t.Errorf("%d batches for %d requests; MaxBatch=1 must never coalesce", got, N)
	}
	if got := m.BatchMaxOccupancy.Load(); got != 1 {
		t.Errorf("max occupancy %d, want 1", got)
	}
	if full, window := m.BatchFlushFull.Load(), m.BatchFlushWindow.Load(); full != N || window != 0 {
		t.Errorf("flush reasons: size-cap=%d window=%d, want %d/0 — a singleton cap IS a full batch", full, window, N)
	}
}

// TestPreCancelledSeatDropsAtAssembly submits with an already-dead
// context: the caller gets its context error, the abandoned seat is
// discarded when the batch assembles, and the batcher keeps serving.
func TestPreCancelledSeatDropsAtAssembly(t *testing.T) {
	r := &fakeRunner{}
	b := newTestBatcher(t, Config{Window: 5 * time.Millisecond, MaxBatch: 4, QueueCap: 16}, r)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Submit(ctx, tens(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Submit returned %v, want context.Canceled", err)
	}

	// The dropped seat must not poison the batcher or leak into a batch.
	out, err := b.Submit(context.Background(), tens(2))
	if err != nil {
		t.Fatalf("follow-up request after a dropped seat: %v", err)
	}
	if out[0] != 4 {
		t.Errorf("follow-up logits %v, want [4]", out)
	}
}

// TestCancellationRacingFlush sweeps client deadlines across the flush
// window so cancellations land before, during, and after batch assembly.
// Whatever the interleaving, every Submit must return exactly once —
// either a real result or the context error — and the batcher must stay
// healthy afterwards.
func TestCancellationRacingFlush(t *testing.T) {
	r := &fakeRunner{delay: 2 * time.Millisecond}
	b := newTestBatcher(t, Config{Window: 10 * time.Millisecond, MaxBatch: 4, QueueCap: 64}, r)

	const N = 24
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deadlines straddle the 10ms window: 1ms..24ms.
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i+1)*time.Millisecond)
			defer cancel()
			out, err := b.Submit(ctx, tens(float32(i)))
			switch {
			case err == nil:
				if out[0] != float32(2*i) {
					t.Errorf("request %d: wrong result %v after racing the flush", i, out)
				}
			case errors.Is(err, context.DeadlineExceeded):
				// gave up first: fine, as long as it returned exactly once
			default:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	out, err := b.Submit(context.Background(), tens(5))
	if err != nil || out[0] != 10 {
		t.Fatalf("batcher unhealthy after cancellation storm: out=%v err=%v", out, err)
	}
}

// TestQueueCapBoundary pins the admission edge: with one worker wedged on
// a slow batch and a single queue slot, the second pending request fits
// and the third sheds with ErrQueueFull.
func TestQueueCapBoundary(t *testing.T) {
	r := &fakeRunner{delay: 300 * time.Millisecond}
	b := newTestBatcher(t, Config{Window: time.Millisecond, MaxBatch: 1, Workers: 1, QueueCap: 1}, r)

	results := make(chan error, 2)
	submit := func(v float32) {
		_, err := b.Submit(context.Background(), tens(v))
		results <- err
	}
	go submit(1) // picked up by the worker, wedged in the slow runner
	time.Sleep(50 * time.Millisecond)
	go submit(2) // fills the single queue slot
	time.Sleep(50 * time.Millisecond)

	if _, err := b.Submit(context.Background(), tens(3)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("third concurrent request returned %v, want ErrQueueFull", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued request %d failed: %v", i, err)
		}
	}
}
