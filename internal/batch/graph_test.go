package batch

import (
	"context"
	"sync"
	"testing"
	"time"

	"bitflow/internal/graph"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// TestBatcherOverTinyVGG drives a real network through the batcher under
// concurrency and checks every answer equals the sequential reference —
// the end-to-end version of the InferBatch bit-identity guarantee.
func TestBatcherOverTinyVGG(t *testing.T) {
	if testing.Short() {
		t.Skip("full network in -short mode")
	}
	feat := sched.Detect()
	ws := graph.RandomWeights{Seed: 33}
	ref, err := graph.TinyVGG(feat, ws)
	if err != nil {
		t.Fatal(err)
	}
	const maxBatch = 4
	b, err := New(Config{
		Window:   3 * time.Millisecond,
		MaxBatch: maxBatch,
		QueueCap: 64,
		NewRunner: func() (Runner, error) {
			net, err := graph.TinyVGG(feat, ws)
			if err != nil {
				return nil, err
			}
			net.EnsureBatch(maxBatch)
			return net, nil
		},
		Check: func(x *tensor.Tensor) error { return ref.CheckInputFinite(x) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(context.Background())

	const N = 12
	r := workload.NewRNG(34)
	xs := make([]*tensor.Tensor, N)
	want := make([][]float32, N)
	for i := range xs {
		xs[i] = workload.RandTensor(r, ref.InH, ref.InW, ref.InC)
		want[i] = ref.Infer(xs[i])
	}
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := b.Submit(context.Background(), xs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			for j := range want[i] {
				if got[j] != want[i][j] {
					t.Errorf("request %d logit %d: batched %v sequential %v", i, j, got[j], want[i][j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
