package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitflow/internal/resilience"
	"bitflow/internal/tensor"
)

// fakeRunner sums each input tensor — cheap, deterministic, and enough to
// check per-request fan-out. Optional hooks inject panics, errors, and
// latency.
type fakeRunner struct {
	batches   atomic.Int64
	inflight  atomic.Int64
	delay     time.Duration
	panicWhen func(xs []*tensor.Tensor) bool
	errWhen   func(xs []*tensor.Tensor) error
}

func (f *fakeRunner) InferBatch(xs []*tensor.Tensor) ([][]float32, error) {
	if f.inflight.Add(1) != 1 {
		panic("runner used concurrently")
	}
	defer f.inflight.Add(-1)
	f.batches.Add(1)
	if f.panicWhen != nil && f.panicWhen(xs) {
		panic("injected runner panic")
	}
	if f.errWhen != nil {
		if err := f.errWhen(xs); err != nil {
			return nil, err
		}
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	outs := make([][]float32, len(xs))
	for i, x := range xs {
		var s float32
		for _, v := range x.Data {
			s += v
		}
		outs[i] = []float32{s}
	}
	return outs, nil
}

func tens(v float32) *tensor.Tensor {
	t := tensor.New(1, 1, 2)
	t.Data[0], t.Data[1] = v, v
	return t
}

func newTestBatcher(t *testing.T, cfg Config, r *fakeRunner) *Batcher {
	t.Helper()
	if cfg.NewRunner == nil {
		cfg.NewRunner = func() (Runner, error) { return r, nil }
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = b.Close(ctx)
	})
	return b
}

// TestSubmitFansOutPerRequest checks that concurrent submitters each get
// their own answer back and that requests actually coalesced into fewer
// runner invocations than requests.
func TestSubmitFansOutPerRequest(t *testing.T) {
	r := &fakeRunner{}
	b := newTestBatcher(t, Config{Window: 20 * time.Millisecond, MaxBatch: 8, QueueCap: 64}, r)
	const N = 24
	var wg sync.WaitGroup
	errs := make([]error, N)
	outs := make([][]float32, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = b.Submit(context.Background(), tens(float32(i)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(outs[i]) != 1 || outs[i][0] != float32(2*i) {
			t.Fatalf("request %d: got %v, want [%v]", i, outs[i], 2*i)
		}
	}
	if got := r.batches.Load(); got >= N {
		t.Errorf("no coalescing: %d batches for %d requests", got, N)
	}
}

// TestWindowFlushesLoneRequest checks a single request is not held
// hostage waiting for a full batch.
func TestWindowFlushesLoneRequest(t *testing.T) {
	r := &fakeRunner{}
	m := resilience.NewMetrics(16)
	b := newTestBatcher(t, Config{Window: 5 * time.Millisecond, MaxBatch: 64, Metrics: m}, r)
	start := time.Now()
	out, err := b.Submit(context.Background(), tens(3))
	if err != nil || out[0] != 6 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("lone request took %v", d)
	}
	if m.BatchFlushWindow.Load() != 1 {
		t.Errorf("window flushes = %d, want 1", m.BatchFlushWindow.Load())
	}
}

// TestSizeCapFlushesEarly floods the queue and checks full batches
// dispatch before the (long) window expires, with the size-cap reason.
func TestSizeCapFlushesEarly(t *testing.T) {
	r := &fakeRunner{}
	m := resilience.NewMetrics(16)
	b := newTestBatcher(t, Config{Window: time.Minute, MaxBatch: 4, QueueCap: 64, Metrics: m}, r)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), tens(float32(i))); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait() // would hang for a minute if the size cap didn't flush
	if m.BatchFlushFull.Load() == 0 {
		t.Error("no size-cap flush recorded")
	}
	if m.BatchMaxOccupancy.Load() != 4 {
		t.Errorf("max occupancy %d, want 4", m.BatchMaxOccupancy.Load())
	}
}

// TestCancelledCallerDoesNotPoisonBatch cancels one request mid-window
// and checks (a) the caller returns promptly with ctx.Err(), (b) the
// other requests in the same window still succeed.
func TestCancelledCallerDoesNotPoisonBatch(t *testing.T) {
	r := &fakeRunner{}
	b := newTestBatcher(t, Config{Window: 50 * time.Millisecond, MaxBatch: 8}, r)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var cancelledErr error
	go func() {
		defer wg.Done()
		_, cancelledErr = b.Submit(ctx, tens(1))
	}()
	time.Sleep(5 * time.Millisecond) // let it enqueue inside the window
	cancel()

	out, err := b.Submit(context.Background(), tens(2))
	if err != nil || out[0] != 4 {
		t.Fatalf("survivor: out=%v err=%v", out, err)
	}
	wg.Wait()
	if !errors.Is(cancelledErr, context.Canceled) {
		t.Fatalf("cancelled caller got %v", cancelledErr)
	}
}

// TestQueueFullSheds fills the queue behind a slow runner and checks
// Submit sheds with ErrQueueFull instead of blocking.
func TestQueueFullSheds(t *testing.T) {
	r := &fakeRunner{delay: 50 * time.Millisecond}
	b := newTestBatcher(t, Config{Window: time.Millisecond, MaxBatch: 2, QueueCap: 2}, r)
	var full atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.Submit(context.Background(), tens(1))
			if errors.Is(err, ErrQueueFull) {
				full.Add(1)
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if full.Load() == 0 {
		t.Error("queue never shed under pressure")
	}
}

// TestCheckRejectsOnlyBadItem installs a validator and checks a bad
// request fails alone, typed, while a concurrent good one succeeds.
func TestCheckRejectsOnlyBadItem(t *testing.T) {
	r := &fakeRunner{}
	wantErr := errors.New("not finite")
	b := newTestBatcher(t, Config{
		Window:   20 * time.Millisecond,
		MaxBatch: 8,
		Check: func(x *tensor.Tensor) error {
			if x.Data[0] < 0 {
				return wantErr
			}
			return nil
		},
	}, r)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, err := b.Submit(context.Background(), tens(5))
		if err != nil || out[0] != 10 {
			t.Errorf("good request: out=%v err=%v", out, err)
		}
	}()
	_, err := b.Submit(context.Background(), tens(-1))
	var ie *InputError
	if !errors.As(err, &ie) || !errors.Is(err, wantErr) {
		t.Fatalf("bad request: %v", err)
	}
	wg.Wait()
	if r.batches.Load() == 0 {
		t.Error("good request never ran")
	}
}

// TestPanicIsolatedAndRunnerReplaced injects a panic, then checks the
// poisoned batch's callers get a *PanicError, the worker swaps in a fresh
// runner, and subsequent requests succeed — capacity intact.
func TestPanicIsolatedAndRunnerReplaced(t *testing.T) {
	var made atomic.Int64
	var trip atomic.Bool
	trip.Store(true)
	m := resilience.NewMetrics(16)
	b := newTestBatcher(t, Config{
		Window:   time.Millisecond,
		MaxBatch: 4,
		Metrics:  m,
		NewRunner: func() (Runner, error) {
			made.Add(1)
			return &fakeRunner{panicWhen: func([]*tensor.Tensor) bool {
				return trip.Swap(false) // first batch on this runner panics
			}}, nil
		},
	}, nil)

	_, err := b.Submit(context.Background(), tens(1))
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if m.PanicsRecovered.Load() != 1 {
		t.Errorf("panics recovered = %d", m.PanicsRecovered.Load())
	}

	// The batcher must still serve — and on a fresh runner.
	out, err := b.Submit(context.Background(), tens(2))
	if err != nil || out[0] != 4 {
		t.Fatalf("after panic: out=%v err=%v", out, err)
	}
	if made.Load() != 2 {
		t.Errorf("runner factory called %d times, want 2 (start + re-clone)", made.Load())
	}
}

// TestRunnerErrorFailsBatchOnly checks a plain error from the runner
// fails that batch's requests and the batcher keeps serving.
func TestRunnerErrorFailsBatchOnly(t *testing.T) {
	bad := errors.New("model exploded politely")
	var trip atomic.Bool
	trip.Store(true)
	r := &fakeRunner{errWhen: func([]*tensor.Tensor) error {
		if trip.Swap(false) {
			return bad
		}
		return nil
	}}
	b := newTestBatcher(t, Config{Window: time.Millisecond, MaxBatch: 4}, r)
	if _, err := b.Submit(context.Background(), tens(1)); !errors.Is(err, bad) {
		t.Fatalf("want runner error, got %v", err)
	}
	if out, err := b.Submit(context.Background(), tens(3)); err != nil || out[0] != 6 {
		t.Fatalf("after error: out=%v err=%v", out, err)
	}
}

// TestCloseDrainsPendingRequests closes the batcher with a backlog and
// checks every queued request completes (no lost futures) and drain
// flushes are recorded.
func TestCloseDrainsPendingRequests(t *testing.T) {
	r := &fakeRunner{delay: 10 * time.Millisecond}
	m := resilience.NewMetrics(16)
	b, err := New(Config{
		Window:    time.Minute, // only drain can flush these
		MaxBatch:  4,
		QueueCap:  64,
		Metrics:   m,
		NewRunner: func() (Runner, error) { return r, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	const N = 10
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Submit(context.Background(), tens(float32(i)))
			if err == nil && out[0] == float32(2*i) {
				completed.Add(1)
			} else if err != nil {
				t.Errorf("request %d lost: %v", i, err)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let them enqueue into the open window
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := b.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if completed.Load() != N {
		t.Fatalf("%d/%d requests completed", completed.Load(), N)
	}
	if m.BatchFlushDrain.Load() == 0 {
		t.Error("no drain flush recorded")
	}
	if _, err := b.Submit(context.Background(), tens(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestConcurrentChaos is the race-detector workout: many submitters,
// random cancellations, an injected panic, and a drain at the end. No
// future may be lost and no request double-completed (the runner asserts
// single ownership; request.complete asserts exactly-once by CAS).
func TestConcurrentChaos(t *testing.T) {
	var made atomic.Int64
	m := resilience.NewMetrics(64)
	b, err := New(Config{
		Window:   2 * time.Millisecond,
		MaxBatch: 4,
		QueueCap: 128,
		Metrics:  m,
		NewRunner: func() (Runner, error) {
			n := made.Add(1)
			return &fakeRunner{panicWhen: func(xs []*tensor.Tensor) bool {
				// The first runner panics on its third batch, once.
				return n == 1 && xs[0].Data[0] == 42
			}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const N = 200
	var wg sync.WaitGroup
	var settled atomic.Int64
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%5 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*time.Millisecond)
				defer cancel()
			}
			v := float32(i % 50)
			if i == 77 {
				v = 21 // sums to 42: the panic trigger
			}
			out, err := b.Submit(ctx, tens(v))
			switch {
			case err == nil:
				if out[0] != 2*v {
					t.Errorf("request %d: got %v want %v", i, out[0], 2*v)
				}
			case errors.Is(err, context.DeadlineExceeded),
				errors.Is(err, context.Canceled),
				errors.Is(err, ErrQueueFull):
				// legitimate outcomes under chaos
			default:
				var pe *resilience.PanicError
				if !errors.As(err, &pe) {
					t.Errorf("request %d: unexpected error %v", i, err)
				}
			}
			settled.Add(1)
		}(i)
	}
	wg.Wait()
	if settled.Load() != N {
		t.Fatalf("%d/%d futures settled", settled.Load(), N)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := b.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	// After the dust settles the batcher still dispatched real batches.
	if m.Batches.Load() == 0 {
		t.Error("no batches dispatched")
	}
}

// TestNewRunnerFactoryFailure checks a broken factory surfaces at New.
func TestNewRunnerFactoryFailure(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil NewRunner accepted")
	}
	boom := fmt.Errorf("no model")
	if _, err := New(Config{NewRunner: func() (Runner, error) { return nil, boom }}); !errors.Is(err, boom) {
		t.Fatalf("factory error not surfaced: %v", err)
	}
}
