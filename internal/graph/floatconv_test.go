package graph

import (
	"bytes"
	"math"
	"testing"

	"bitflow/internal/baseline"
	"bitflow/internal/workload"
)

func TestFloatConvNetworkMatchesManualPipeline(t *testing.T) {
	ws := RandomWeights{Seed: 100}
	net, err := NewBuilder("mixed", 8, 8, 3, feat()).
		FloatConv("fc1", 64, 3, 3, 1, 1). // mixed-precision first layer
		Conv3x3("c2", 64).                // binary from here on
		Pool("p1", 2, 2, 2).
		Dense("d1", 5).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(101), 8, 8, 3)
	got := net.Infer(x)

	// Manual replay: float conv on RAW input (zero padding!), sign,
	// then the binary pipeline.
	f1, _ := ws.ConvFilter("fc1", 64, 3, 3, 3)
	a := baseline.ConvDirect(x, f1, 1, 1, 0, 1).Sign()
	f2, _ := ws.ConvFilter("c2", 64, 3, 3, 64)
	a = baseline.ConvDirect(a, f2.Sign(), 1, 1, -1, 1).Sign()
	a = baseline.MaxPoolFloat(a, 2, 2, 2, 1)
	w1, _ := ws.DenseMatrix("d1", a.Len(), 5)
	want := make([]float32, 5)
	baseline.DenseFloat(a.Data, w1.Sign(), want, 1)

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: graph %v replay %v", i, got[i], want[i])
		}
	}
}

func TestFloatConvSeesRawInput(t *testing.T) {
	// A pure-binary network binarizes the input, so scaling it changes
	// nothing; a mixed-precision first layer *with a bias* must
	// distinguish inputs that binarize identically (without a bias the
	// sign is scale-invariant, so the bias is what makes magnitudes
	// matter).
	ws := biasedSource{RandomWeights{Seed: 102}}
	net, err := NewBuilder("mixed", 6, 6, 3, feat()).
		FloatConv("fc1", 64, 3, 3, 1, 1).
		Dense("d1", 4).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	x1 := workload.RandTensor(workload.NewRNG(103), 6, 6, 3)
	x2 := x1.Clone()
	for i := range x2.Data {
		x2.Data[i] *= 0.1 // same signs, different magnitudes
	}
	a := net.Infer(x1)
	b := net.Infer(x2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("mixed-precision first layer did not react to input magnitudes")
	}
}

func TestFloatConvMustBeFirst(t *testing.T) {
	ws := RandomWeights{Seed: 104}
	if _, err := NewBuilder("e", 8, 8, 64, feat()).
		Conv3x3("c1", 64).
		FloatConv("fc", 64, 3, 3, 1, 1).
		Dense("d", 2).
		Build(ws); err == nil {
		t.Error("float conv in the middle: expected error")
	}
	if _, err := NewBuilder("e", 8, 8, 3, feat()).
		FloatConv("fc", 64, 3, 3, 1, 1).
		Build(ws); err == nil {
		t.Error("float conv as classifier: expected error")
	}
}

func TestFloatConvWithBatchNorm(t *testing.T) {
	ws := &bnSource{RandomWeights: RandomWeights{Seed: 105}}
	net, err := NewBuilder("mixed-bn", 6, 6, 3, feat()).
		FloatConv("fc1", 64, 3, 3, 1, 1).
		BatchNorm("fc1/bn").
		Dense("d1", 4).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(106), 6, 6, 3)
	got := net.Infer(x)

	const eps = 1e-5
	f1, _ := ws.ConvFilter("fc1", 64, 3, 3, 3)
	bn, _ := ws.BatchNorm("fc1/bn", 64)
	raw := baseline.ConvDirect(x, f1, 1, 1, 0, 1)
	act := raw.Clone()
	for i := range raw.Data {
		c := i % 64
		sigma := math.Sqrt(float64(bn.Variance[c]) + eps)
		v := float64(bn.Gamma[c])*(float64(raw.Data[i])-float64(bn.Mean[c]))/sigma + float64(bn.Beta[c])
		if v >= 0 {
			act.Data[i] = 1
		} else {
			act.Data[i] = -1
		}
	}
	w1, _ := ws.DenseMatrix("d1", act.Len(), 4)
	want := make([]float32, 4)
	baseline.DenseFloat(act.Data, w1.Sign(), want, 1)
	mismatches := 0
	for i := range want {
		if got[i] != want[i] {
			mismatches++
		}
	}
	// Float32 vs float64 rounding near the sign boundary can flip an
	// activation; allow no logit mismatches since BN params are generic.
	if mismatches != 0 {
		t.Fatalf("%d logits differ: graph %v replay %v", mismatches, got, want)
	}
}

func TestFloatConvSaveLoadRoundtrip(t *testing.T) {
	ws := &bnSource{RandomWeights: RandomWeights{Seed: 107}}
	net, err := NewBuilder("mixed-rt", 8, 8, 3, feat()).
		FloatConv("fc1", 64, 3, 3, 1, 1).
		BatchNorm("fc1/bn").
		Conv3x3("c2", 64).
		Dense("d1", 4).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, feat())
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(108), 8, 8, 3)
	want := net.Infer(x)
	got := loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: loaded %v original %v", i, got[i], want[i])
		}
	}
}

func TestFloatConvClone(t *testing.T) {
	ws := RandomWeights{Seed: 109}
	net, err := NewBuilder("mixed-clone", 8, 8, 3, feat()).
		FloatConv("fc1", 64, 3, 3, 1, 1).
		Dense("d1", 3).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()
	x := workload.RandTensor(workload.NewRNG(110), 8, 8, 3)
	want := net.Infer(x)
	got := clone.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d differs in clone", i)
		}
	}
}

func TestFloatConvModelSizeAccounting(t *testing.T) {
	ws := RandomWeights{Seed: 111}
	net, err := NewBuilder("mixed-size", 8, 8, 3, feat()).
		FloatConv("fc1", 64, 3, 3, 1, 1).
		Conv3x3("c2", 64).
		Dense("d1", 4).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	ms := net.ModelSize()
	// The float conv stores 64·3·3·3 float32s = 6912 bytes; the binary
	// layers pack 64× tighter. Compression must sit between 1× and 32×.
	if c := ms.Compression(); c <= 1 || c >= 32 {
		t.Errorf("mixed-precision compression %.1f outside (1, 32)", c)
	}
}
