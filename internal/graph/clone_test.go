package graph

import (
	"sync"
	"testing"

	"bitflow/internal/kernels"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func TestCloneMatchesOriginal(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()
	x := workload.RandTensor(workload.NewRNG(51), 32, 32, 3)
	want := net.Infer(x)
	got := clone.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: clone %v original %v", i, got[i], want[i])
		}
	}
	// Weights are shared; the model-size accounting must agree.
	if net.ModelSize() != clone.ModelSize() {
		t.Error("clone reports different model size")
	}
	if clone.Threads != net.Threads {
		t.Error("clone did not inherit Threads")
	}
}

func TestClonesRunConcurrently(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	inputs := make([]*tensor.Tensor, workers)
	expected := make([][]float32, workers)
	for i := range inputs {
		inputs[i] = workload.RandTensor(workload.NewRNG(uint64(53+i)), 32, 32, 3)
		expected[i] = net.Infer(inputs[i])
	}
	var wg sync.WaitGroup
	results := make([][]float32, workers)
	for i := 0; i < workers; i++ {
		clone := net.Clone()
		wg.Add(1)
		go func(i int, c *Network) {
			defer wg.Done()
			for pass := 0; pass < 5; pass++ {
				results[i] = c.Infer(inputs[i])
			}
		}(i, clone)
	}
	wg.Wait()
	for i := range results {
		for j := range results[i] {
			if results[i][j] != expected[i][j] {
				t.Fatalf("concurrent clone %d logit %d: %v want %v", i, j, results[i][j], expected[i][j])
			}
		}
	}
}

func TestCloneOfLoadedNetwork(t *testing.T) {
	// Clone must work on networks that came from Load (arch recorded by
	// buildFrom, ops from packed weights).
	net, err := TinyVGG(feat(), RandomWeights{Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone().Clone() // clone of a clone, too
	x := workload.RandTensor(workload.NewRNG(55), 32, 32, 3)
	want := net.Infer(x)
	got := clone.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d differs", i)
		}
	}
}

func TestWidthInvariance(t *testing.T) {
	// The same architecture and weights under every kernel-tier cap must
	// produce bit-identical logits: vector width is a performance knob,
	// never a semantics knob.
	x := workload.RandTensor(workload.NewRNG(56), 32, 32, 3)
	var want []float32
	for _, cap := range []kernels.Width{kernels.W512, kernels.W256, kernels.W128, kernels.W64} {
		net, err := TinyVGG(feat().WithMaxWidth(cap), RandomWeights{Seed: 57})
		if err != nil {
			t.Fatal(err)
		}
		got := net.Infer(x)
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width cap %v: logit %d = %v want %v", cap, i, got[i], want[i])
			}
		}
	}
}
