package graph

import (
	"testing"

	"bitflow/internal/workload"
)

// TestDeepChainIntegration runs a deliberately heterogeneous network —
// mixed-precision stem, BN folds, strided conv, non-square pooling
// geometry, dense chain — end to end twice and through a save/load +
// clone cycle, checking global determinism. It is the "everything at
// once" integration net.
func TestDeepChainIntegration(t *testing.T) {
	ws := &bnSource{RandomWeights: RandomWeights{Seed: 200}}
	net, err := NewBuilder("kitchen-sink", 16, 16, 3, feat()).
		FloatConv("stem", 64, 3, 3, 1, 1).
		BatchNorm("stem/bn").
		Conv3x3("c1", 128).
		BatchNorm("c1/bn").
		Conv("c2", 128, 3, 3, 2, 1). // strided binary conv
		Pool("p1", 2, 2, 2).
		Conv3x3("c3", 64).
		Flatten().
		Dense("d1", 96).
		BatchNorm("d1/bn").
		Dense("d2", 7).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	if net.Classes != 7 {
		t.Fatalf("classes %d", net.Classes)
	}
	// Shape walk: 16 → stem 16 → c1 16 → c2 (stride 2) 8 → pool 4 → c3 4
	// → flatten 4·4·64 = 1024. The strided c2 and p1 fuse into one node.
	infos := net.Layers()
	if infos[2].Name != "c2+p1" || infos[2].OutDims != "4x4x128" {
		t.Errorf("fused strided conv+pool = %+v", infos[2])
	}
	if infos[3].OutDims != "4x4x64" {
		t.Errorf("c3 out %s", infos[3].OutDims)
	}

	x := workload.RandTensor(workload.NewRNG(201), 16, 16, 3)
	first := net.Infer(x)
	net.Infer(workload.RandTensor(workload.NewRNG(202), 16, 16, 3)) // dirty the buffers
	second := net.Infer(x)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic logit %d", i)
		}
	}

	clone := net.Clone()
	got := clone.Infer(x)
	for i := range first {
		if got[i] != first[i] {
			t.Fatalf("clone logit %d differs", i)
		}
	}
}

func TestThreadSweepDeterminismAcrossWholeNetwork(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 203})
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(204), 32, 32, 3)
	want := net.Infer(x)
	for _, threads := range []int{2, 3, 5, 8, 64} {
		net.Threads = threads
		got := net.Infer(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d logit %d differs", threads, i)
			}
		}
	}
}

func TestActivationBytesMatchAllocation(t *testing.T) {
	net, err := NewBuilder("alloc", 8, 8, 64, feat()).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Dense("d1", 3).
		Build(RandomWeights{Seed: 205})
	if err != nil {
		t.Fatal(err)
	}
	// Input edge: (8+2)·(8+2)·1 word; pool out → flatten: 4·4·1. The
	// conv→pool intermediate plane (8·8·1 words) is eliminated by
	// fusion. All in words × 8 bytes.
	want := int64(10*10+4*4) * 8
	if got := net.ActivationBytes(); got != want {
		t.Errorf("ActivationBytes = %d want %d", got, want)
	}
	if fs := net.Fusion(); fs.Pairs != 1 || fs.EliminatedWords != 8*8 {
		t.Errorf("fusion stats = %+v", fs)
	}
	// An unfused clone still materializes the intermediate plane.
	unfused := net.CloneUnfused()
	if got := unfused.ActivationBytes(); got != want+8*8*8 {
		t.Errorf("unfused ActivationBytes = %d want %d", got, want+8*8*8)
	}
	if unfused.Fused() {
		t.Error("CloneUnfused reports Fused() = true")
	}
}
