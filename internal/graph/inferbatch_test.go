package graph

import (
	"errors"
	"math"
	"testing"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// TestInferBatchBitIdentical pins the batched path to the sequential one
// on TinyVGG: for every batch size 1..max, including ragged final batches
// smaller than the grown lane pool, InferBatch(xs)[i] must equal
// Infer(xs[i]) bit for bit.
func TestInferBatchBitIdentical(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := TinyVGG(feat(), RandomWeights{Seed: 60}) // sequential reference
	if err != nil {
		t.Fatal(err)
	}
	const max = 8
	r := workload.NewRNG(99)
	for B := 1; B <= max; B++ {
		xs := make([]*tensor.Tensor, B)
		for b := range xs {
			xs[b] = workload.RandTensor(r, net.InH, net.InW, net.InC)
		}
		got, err := net.InferBatch(xs)
		if err != nil {
			t.Fatalf("B=%d: %v", B, err)
		}
		if len(got) != B {
			t.Fatalf("B=%d: got %d outputs", B, len(got))
		}
		for b := range xs {
			want := ref.Infer(xs[b])
			if len(got[b]) != len(want) {
				t.Fatalf("B=%d image %d: %d logits, want %d", B, b, len(got[b]), len(want))
			}
			for i := range want {
				if got[b][i] != want[i] {
					t.Fatalf("B=%d image %d logit %d: batched %v, sequential %v",
						B, b, i, got[b][i], want[i])
				}
			}
		}
	}
	if net.MaxBatch() != max {
		t.Fatalf("lane pool %d after batches up to %d", net.MaxBatch(), max)
	}
	// Ragged batch after the pool has grown to max: reuse a subset of lanes.
	xs := make([]*tensor.Tensor, 3)
	for b := range xs {
		xs[b] = workload.RandTensor(r, net.InH, net.InW, net.InC)
	}
	got, err := net.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for b := range xs {
		want := ref.Infer(xs[b])
		for i := range want {
			if got[b][i] != want[i] {
				t.Fatalf("ragged image %d logit %d differs", b, i)
			}
		}
	}
	if net.MaxBatch() != max {
		t.Fatalf("ragged batch shrank lane pool to %d", net.MaxBatch())
	}
}

// TestInferBatchMixedPrecision covers the float-stem variant (FloatConv
// first layer), whose batched path runs the stem per lane.
func TestInferBatchMixedPrecision(t *testing.T) {
	build := func() *Network {
		net, err := NewBuilder("mixed", 8, 8, 3, feat()).
			FloatConv("fc1", 64, 3, 3, 1, 1).
			Conv3x3("c2", 64).
			Pool("p1", 2, 2, 2).
			Dense("d1", 5).
			Build(RandomWeights{Seed: 61})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	net, ref := build(), build()
	r := workload.NewRNG(7)
	xs := make([]*tensor.Tensor, 4)
	for b := range xs {
		xs[b] = workload.RandTensor(r, net.InH, net.InW, net.InC)
	}
	got, err := net.InferBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for b := range xs {
		want := ref.Infer(xs[b])
		for i := range want {
			if got[b][i] != want[i] {
				t.Fatalf("image %d logit %d differs", b, i)
			}
		}
	}
}

// TestInferBatchInputErrors checks that a bad item fails with a typed
// error naming its index and that no forward pass runs.
func TestInferBatchInputErrors(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	r := workload.NewRNG(5)
	good := func() *tensor.Tensor { return workload.RandTensor(r, net.InH, net.InW, net.InC) }

	if _, err := net.InferBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}

	bad := good()
	bad.Data[10] = float32(math.NaN())
	_, err = net.InferBatch([]*tensor.Tensor{good(), bad, good()})
	var bie *BatchInputError
	if !errors.As(err, &bie) {
		t.Fatalf("want *BatchInputError, got %v", err)
	}
	if bie.Index != 1 {
		t.Fatalf("bad item at index 1 reported as %d", bie.Index)
	}

	wrong := workload.RandTensor(r, net.InH+1, net.InW, net.InC)
	_, err = net.InferBatch([]*tensor.Tensor{wrong, good()})
	if !errors.As(err, &bie) || bie.Index != 0 {
		t.Fatalf("wrong-shape item not reported at index 0: %v", err)
	}
}
