// Package graph implements BitFlow's network level (paper §IV): a static
// computation graph of binary operators with all weights binarized and
// bit-packed once at initialization and all activation/intermediate
// buffers pre-allocated before the first inference ("we pre-allocate all
// the memory needed for storing the output and intermediate results by
// analysis of the neural network as a static computational graph").
package graph

import (
	"hash/fnv"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// WeightSource supplies float32 weights for each named layer. The graph
// binarizes and bit-packs them immediately; the float originals are not
// retained.
type WeightSource interface {
	// ConvFilter returns the float weights for a convolution layer.
	ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error)
	// DenseMatrix returns the float weights (N×K) for a dense layer.
	DenseMatrix(name string, n, k int) (*tensor.Matrix, error)
}

// BNParams holds batch-norm inference parameters for one layer.
type BNParams struct {
	Gamma, Beta, Mean, Variance []float32
	// Eps is the numerical-stability epsilon; 0 selects 1e-5.
	Eps float64
}

// BatchNormSource is an optional WeightSource extension supplying
// batch-norm parameters for layers followed by a Builder.BatchNorm spec.
// The graph folds them into integer thresholds (hidden layers) or a
// float affine (the classifier layer) at build time — no batch-norm
// arithmetic survives into inference.
type BatchNormSource interface {
	BatchNorm(name string, channels int) (BNParams, error)
}

// BiasSource is an optional WeightSource extension supplying per-channel
// biases. When implemented, every conv/dense layer's bias folds into its
// sign thresholds (hidden layers) or output affine (classifier). A nil
// bias slice means "no bias for this layer".
type BiasSource interface {
	ConvBias(name string, k int) ([]float32, error)
	DenseBias(name string, k int) ([]float32, error)
}

// RandomWeights is a deterministic WeightSource: layer weights are drawn
// from a SplitMix64 stream seeded by Seed and the layer name, so the same
// (seed, architecture) pair always builds the identical network. Used by
// the benchmark harness — the paper's evaluation measures operator and
// network speed, which is independent of the trained weight values.
type RandomWeights struct {
	Seed uint64
}

func (rw RandomWeights) rng(name string) *workload.RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return workload.NewRNG(rw.Seed ^ h.Sum64())
}

// ConvFilter returns deterministic pseudo-random filter weights in [-1, 1).
func (rw RandomWeights) ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error) {
	return workload.RandFilter(rw.rng(name), k, kh, kw, c), nil
}

// DenseMatrix returns deterministic pseudo-random weights in [-1, 1).
func (rw RandomWeights) DenseMatrix(name string, n, k int) (*tensor.Matrix, error) {
	return workload.RandMatrix(rw.rng(name), n, k), nil
}

// BatchNorm returns deterministic pseudo-random batch-norm parameters
// with γ ∈ ±(0.5, 1.5) (both signs, exercising flipped thresholds),
// small β, and unit-scale statistics. RandomWeights therefore satisfies
// BatchNormSource for benchmarking BN-folded networks.
func (rw RandomWeights) BatchNorm(name string, channels int) (BNParams, error) {
	r := rw.rng(name + "/bn")
	p := BNParams{
		Gamma:    make([]float32, channels),
		Beta:     make([]float32, channels),
		Mean:     make([]float32, channels),
		Variance: make([]float32, channels),
	}
	for c := 0; c < channels; c++ {
		g := 0.5 + r.Float32()
		if r.Uint64()&7 == 0 { // occasional negative γ
			g = -g
		}
		p.Gamma[c] = g
		p.Beta[c] = 2*r.Float32() - 1
		p.Mean[c] = 4 * (2*r.Float32() - 1)
		p.Variance[c] = 0.5 + 2*r.Float32()
	}
	return p, nil
}
