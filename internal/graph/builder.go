package graph

import (
	"errors"
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

type specKind int

const (
	specConv specKind = iota
	specPool
	specFlatten
	specDense
	specBatchNorm
	specFloatConv
)

type spec struct {
	kind                   specKind
	name                   string
	k, kh, kw, stride, pad int
	units                  int
}

// Builder assembles a sequential binary network layer by layer and
// compiles it into a Network with Build. Methods record errors instead of
// panicking; Build returns the first one.
type Builder struct {
	name          string
	feat          sched.Features
	inH, inW, inC int
	specs         []spec
	// noFuse disables the conv→pool fusion planning pass (see fuse.go).
	noFuse bool
	// noPress disables the kernel-compression planning pass (see
	// press.go).
	noPress bool
}

// DisableFusion turns off the conv→pool fusion planning pass, compiling
// the network with one node per declared layer. Fusion never changes
// logits — this exists for the fused-vs-unfused equivalence harness and
// for apples-to-apples benchmarking, not as a production knob.
func (b *Builder) DisableFusion() *Builder {
	b.noFuse = true
	return b
}

// NewBuilder starts a network taking inH×inW×inC inputs.
func NewBuilder(name string, inH, inW, inC int, feat sched.Features) *Builder {
	return &Builder{name: name, feat: feat, inH: inH, inW: inW, inC: inC}
}

// Conv appends a binary convolution with K filters of kh×kw, the given
// stride and symmetric zero padding. The sign activation is fused.
func (b *Builder) Conv(name string, k, kh, kw, stride, pad int) *Builder {
	b.specs = append(b.specs, spec{kind: specConv, name: name, k: k, kh: kh, kw: kw, stride: stride, pad: pad})
	return b
}

// Conv3x3 appends the VGG-style 3×3 stride-1 pad-1 convolution.
func (b *Builder) Conv3x3(name string, k int) *Builder { return b.Conv(name, k, 3, 3, 1, 1) }

// FloatConv appends a full-precision convolution with sign-packed output
// — the mixed-precision first layer (see core.FloatConv). It must be the
// network's first layer: it is the only operator that consumes raw float
// input. Spatial padding uses the float convention (zeros).
func (b *Builder) FloatConv(name string, k, kh, kw, stride, pad int) *Builder {
	b.specs = append(b.specs, spec{kind: specFloatConv, name: name, k: k, kh: kh, kw: kw, stride: stride, pad: pad})
	return b
}

// Pool appends a binary max pool with a kh×kw window and the given stride.
func (b *Builder) Pool(name string, kh, kw, stride int) *Builder {
	b.specs = append(b.specs, spec{kind: specPool, name: name, kh: kh, kw: kw, stride: stride})
	return b
}

// Flatten marks the spatial→flat transition. It is optional — a Dense
// following a spatial layer flattens implicitly — but lets architectures
// state the transition explicitly.
func (b *Builder) Flatten() *Builder {
	b.specs = append(b.specs, spec{kind: specFlatten})
	return b
}

// Dense appends a binary fully connected layer with `units` outputs. The
// final Dense of the network emits float logits; all earlier ones fuse
// the sign activation.
func (b *Builder) Dense(name string, units int) *Builder {
	b.specs = append(b.specs, spec{kind: specDense, name: name, units: units})
	return b
}

// BatchNorm appends batch normalization over the immediately preceding
// conv or dense layer. At build time the affine folds away entirely:
// into integer sign thresholds for hidden layers, into a float affine
// for the classifier (see internal/core/threshold.go). The WeightSource
// must implement BatchNormSource.
func (b *Builder) BatchNorm(name string) *Builder {
	b.specs = append(b.specs, spec{kind: specBatchNorm, name: name})
	return b
}

// opSource supplies constructed operators per layer. The float path
// (Build) fetches float weights and packs them; the deserialization path
// (Load) hands back operators rebuilt from stored packed weights.
type opSource interface {
	conv(name string, shape sched.ConvShape, plan sched.Plan) (*core.Conv, error)
	dense(name string, shape sched.FCShape, plan sched.Plan) (*core.Dense, error)
	floatConv(name string, shape sched.ConvShape) (*core.FloatConv, error)
	// convBias / denseBias return the layer's bias or nil when absent.
	convBias(name string, k int) ([]float32, error)
	denseBias(name string, k int) ([]float32, error)
	// batchNorm returns the parameters for a BatchNorm spec, or nil when
	// the activation is already baked in (the packed-model load path).
	batchNorm(name string, channels int) (*BNParams, error)
}

// floatSource adapts a WeightSource to opSource.
type floatSource struct{ ws WeightSource }

func (f floatSource) conv(name string, shape sched.ConvShape, plan sched.Plan) (*core.Conv, error) {
	w, err := f.ws.ConvFilter(name, shape.K, shape.KH, shape.KW, shape.InC)
	if err != nil {
		return nil, fmt.Errorf("graph: weights for conv %q: %w", name, err)
	}
	return core.NewConv(shape, plan, w)
}

func (f floatSource) dense(name string, shape sched.FCShape, plan sched.Plan) (*core.Dense, error) {
	w, err := f.ws.DenseMatrix(name, shape.N, shape.K)
	if err != nil {
		return nil, fmt.Errorf("graph: weights for dense %q: %w", name, err)
	}
	return core.NewDense(shape, plan, w)
}

func (f floatSource) floatConv(name string, shape sched.ConvShape) (*core.FloatConv, error) {
	w, err := f.ws.ConvFilter(name, shape.K, shape.KH, shape.KW, shape.InC)
	if err != nil {
		return nil, fmt.Errorf("graph: weights for float conv %q: %w", name, err)
	}
	return core.NewFloatConv(shape, w)
}

func (f floatSource) convBias(name string, k int) ([]float32, error) {
	bs, ok := f.ws.(BiasSource)
	if !ok {
		return nil, nil
	}
	return bs.ConvBias(name, k)
}

func (f floatSource) denseBias(name string, k int) ([]float32, error) {
	bs, ok := f.ws.(BiasSource)
	if !ok {
		return nil, nil
	}
	return bs.DenseBias(name, k)
}

func (f floatSource) batchNorm(name string, channels int) (*BNParams, error) {
	bns, ok := f.ws.(BatchNormSource)
	if !ok {
		return nil, fmt.Errorf("graph: batch-norm %q requested but the weight source implements no BatchNormSource", name)
	}
	p, err := bns.BatchNorm(name, channels)
	if err != nil {
		return nil, fmt.Errorf("graph: batch-norm %q: %w", name, err)
	}
	return &p, nil
}

// Build compiles the recorded layers: infers every shape, selects kernels,
// fetches and bit-packs weights, and pre-allocates the full buffer chain.
func (b *Builder) Build(ws WeightSource) (*Network, error) {
	return b.buildFrom(floatSource{ws})
}

// buildFrom compiles against any operator source.
func (b *Builder) buildFrom(src opSource) (*Network, error) {
	if len(b.specs) == 0 {
		return nil, errors.New("graph: empty network")
	}
	n := &Network{
		Name: b.name, InH: b.inH, InW: b.inW, InC: b.inC,
		Feat: b.feat, Threads: 1,
		arch: append([]spec(nil), b.specs...),
	}

	curH, curW, curC := b.inH, b.inW, b.inC
	flat := false
	curN := 0

	// lastComp is the index of the final computational spec; trailing
	// BatchNorm specs modify it rather than follow it.
	lastComp := -1
	for i, sp := range b.specs {
		switch sp.kind {
		case specConv, specPool, specDense, specFloatConv:
			lastComp = i
		}
	}

	// Producer whose output buffer is assigned when the *next* layer's
	// input edge is allocated.
	var prevConv *convLayer
	var prevPool *poolLayer
	var prevDense *denseLayer
	var prevFloatConv *floatConvLayer

	// Activation-folding state for the most recently built weighted
	// layer (BatchNorm must immediately follow its conv/dense).
	var foldConv *convLayer
	var foldDense *denseLayer
	var foldFloatConv *floatConvLayer
	var actFolded bool // a bias or batch-norm already folded into it

	// newSpatialEdge allocates the packed buffer carrying the current
	// spatial activation into a consumer wanting the given margins, and
	// wires it as the previous layer's output (or the network input).
	newSpatialEdge := func(margin int) (*bitpack.Packed, error) {
		plan := sched.Select(curC, b.feat)
		buf := bitpack.NewPacked(curH, curW, curC, plan.Words, margin, margin)
		n.activationWords += int64(len(buf.Words))
		switch {
		case prevConv != nil:
			prevConv.out = buf
			prevConv = nil
		case prevPool != nil:
			prevPool.out = buf
			prevPool = nil
		case prevFloatConv != nil:
			prevFloatConv.out = buf
			prevFloatConv = nil
		case prevDense != nil:
			return nil, errors.New("graph: dense layer cannot feed a spatial operator")
		default:
			n.input = buf // first edge: the network input
		}
		return buf, nil
	}

	for i, sp := range b.specs {
		last := i == lastComp
		if sp.kind != specBatchNorm {
			foldConv, foldDense, foldFloatConv, actFolded = nil, nil, nil, false
		}
		switch sp.kind {
		case specFloatConv:
			if i != 0 {
				return nil, fmt.Errorf("graph: float conv %q must be the first layer", sp.name)
			}
			if last {
				return nil, fmt.Errorf("graph: network must end in a dense classifier, not float conv %q", sp.name)
			}
			shape, err := sched.InferConv(curH, curW, curC, sp.k, sp.kh, sp.kw, sp.stride, sp.pad)
			if err != nil {
				return nil, fmt.Errorf("graph: float conv %q: %w", sp.name, err)
			}
			op, err := src.floatConv(sp.name, shape)
			if err != nil {
				return nil, fmt.Errorf("graph: float conv %q: %w", sp.name, err)
			}
			if bias, err := src.convBias(sp.name, sp.k); err != nil {
				return nil, fmt.Errorf("graph: bias for float conv %q: %w", sp.name, err)
			} else if bias != nil {
				if len(bias) != sp.k {
					return nil, fmt.Errorf("graph: float conv %q bias has %d entries, want %d", sp.name, len(bias), sp.k)
				}
				if err := op.SetAffine(core.NewAffineFromBias(bias)); err != nil {
					return nil, fmt.Errorf("graph: float conv %q: %w", sp.name, err)
				}
				actFolded = true
			}
			n.inputFloat = tensor.New(curH, curW, curC)
			l := &floatConvLayer{lname: sp.name, op: op, in: n.inputFloat}
			n.layers = append(n.layers, l)
			prevFloatConv = l
			foldFloatConv = l
			curH, curW, curC = shape.OutH, shape.OutW, shape.OutC

		case specConv:
			if flat {
				return nil, fmt.Errorf("graph: conv %q after flatten", sp.name)
			}
			if last {
				return nil, fmt.Errorf("graph: network must end in a dense classifier, not conv %q", sp.name)
			}
			shape, err := sched.InferConv(curH, curW, curC, sp.k, sp.kh, sp.kw, sp.stride, sp.pad)
			if err != nil {
				return nil, fmt.Errorf("graph: conv %q: %w", sp.name, err)
			}
			in, err := newSpatialEdge(sp.pad)
			if err != nil {
				return nil, err
			}
			op, err := src.conv(sp.name, shape, sched.Select(curC, b.feat))
			if err != nil {
				return nil, fmt.Errorf("graph: conv %q: %w", sp.name, err)
			}
			if bias, err := src.convBias(sp.name, sp.k); err != nil {
				return nil, fmt.Errorf("graph: bias for conv %q: %w", sp.name, err)
			} else if bias != nil {
				if len(bias) != sp.k {
					return nil, fmt.Errorf("graph: conv %q bias has %d entries, want %d", sp.name, len(bias), sp.k)
				}
				if err := op.SetThresholds(core.FoldBias(bias)); err != nil {
					return nil, fmt.Errorf("graph: conv %q: %w", sp.name, err)
				}
				actFolded = true
			}
			l := &convLayer{lname: sp.name, op: op, in: in}
			n.layers = append(n.layers, l)
			prevConv = l
			foldConv = l
			curH, curW, curC = shape.OutH, shape.OutW, shape.OutC

		case specPool:
			if flat {
				return nil, fmt.Errorf("graph: pool %q after flatten", sp.name)
			}
			if last {
				return nil, fmt.Errorf("graph: network must end in a dense classifier, not pool %q", sp.name)
			}
			shape, err := sched.InferPool(curH, curW, curC, sp.kh, sp.kw, sp.stride)
			if err != nil {
				return nil, fmt.Errorf("graph: pool %q: %w", sp.name, err)
			}
			in, err := newSpatialEdge(0)
			if err != nil {
				return nil, err
			}
			op, err := core.NewPool(shape, in.WPP)
			if err != nil {
				return nil, fmt.Errorf("graph: pool %q: %w", sp.name, err)
			}
			l := &poolLayer{lname: sp.name, op: op, in: in}
			n.layers = append(n.layers, l)
			prevPool = l
			curH, curW, curC = shape.OutH, shape.OutW, shape.OutC

		case specFlatten:
			if flat {
				return nil, errors.New("graph: duplicate flatten")
			}
			// Mode switch only; the buffer aliasing happens when the
			// consuming dense allocates its input edge.
			flat = true
			curN = curH * curW * curC

		case specDense:
			if !flat {
				flat = true
				curN = curH * curW * curC
			}
			shape, err := sched.InferFC(curN, sp.units)
			if err != nil {
				return nil, fmt.Errorf("graph: dense %q: %w", sp.name, err)
			}
			plan := sched.Select(curN, b.feat)
			var in []uint64
			switch {
			case prevConv != nil || prevPool != nil || prevFloatConv != nil || (prevDense == nil && len(n.layers) == 0):
				// Flattening a spatial producer (or the network input):
				// the packed words of a margin-free buffer are exactly
				// the flattened bit vector when C divides the word size.
				// Multi-pixel flatten needs every pixel's lanes to abut
				// exactly; a single pixel is trivially contiguous.
				if curC%bitpack.WordBits != 0 && curH*curW != 1 {
					return nil, fmt.Errorf("graph: flatten requires channel count %d to be a multiple of %d", curC, bitpack.WordBits)
				}
				buf, err := newSpatialEdge(0)
				if err != nil {
					return nil, err
				}
				if len(buf.Words) != plan.Words {
					return nil, fmt.Errorf("graph: dense %q: flattened buffer %d words, plan wants %d", sp.name, len(buf.Words), plan.Words)
				}
				in = buf.Words
			case prevDense != nil:
				in = make([]uint64, plan.Words)
				n.activationWords += int64(plan.Words)
				prevDense.packedOut = in
				prevDense = nil
			default:
				return nil, fmt.Errorf("graph: dense %q has no producer", sp.name)
			}
			op, err := src.dense(sp.name, shape, plan)
			if err != nil {
				return nil, fmt.Errorf("graph: dense %q: %w", sp.name, err)
			}
			if bias, err := src.denseBias(sp.name, sp.units); err != nil {
				return nil, fmt.Errorf("graph: bias for dense %q: %w", sp.name, err)
			} else if bias != nil {
				if len(bias) != sp.units {
					return nil, fmt.Errorf("graph: dense %q bias has %d entries, want %d", sp.name, len(bias), sp.units)
				}
				if err := op.SetThresholds(core.FoldBias(bias)); err != nil {
					return nil, fmt.Errorf("graph: dense %q: %w", sp.name, err)
				}
				if err := op.SetAffine(core.NewAffineFromBias(bias)); err != nil {
					return nil, fmt.Errorf("graph: dense %q: %w", sp.name, err)
				}
				actFolded = true
			}
			l := &denseLayer{lname: sp.name, op: op, in: in, tmp: op.NewScratch()}
			n.layers = append(n.layers, l)
			if last {
				l.floatOut = make([]float32, sp.units)
				n.output = l.floatOut
				n.Classes = sp.units
			} else {
				prevDense = l
			}
			foldDense = l
			curN = sp.units

		case specBatchNorm:
			var channels int
			switch {
			case foldConv != nil, foldFloatConv != nil:
				channels = curC
			case foldDense != nil:
				channels = curN
			default:
				return nil, fmt.Errorf("graph: batch-norm %q does not directly follow a conv or dense layer", sp.name)
			}
			if actFolded {
				return nil, fmt.Errorf("graph: batch-norm %q: layer already has a folded bias or batch-norm", sp.name)
			}
			params, err := src.batchNorm(sp.name, channels)
			if err != nil {
				return nil, err
			}
			if params == nil {
				// Packed-model load path: the stored thresholds already
				// include this fold.
				actFolded = true
				break
			}
			eps := params.Eps
			if eps == 0 {
				eps = 1e-5
			}
			th, err := core.FoldBatchNorm(params.Gamma, params.Beta, params.Mean, params.Variance, eps)
			if err != nil {
				return nil, fmt.Errorf("graph: batch-norm %q: %w", sp.name, err)
			}
			switch {
			case foldConv != nil:
				if err := foldConv.op.SetThresholds(th); err != nil {
					return nil, fmt.Errorf("graph: batch-norm %q: %w", sp.name, err)
				}
			case foldFloatConv != nil:
				aff, err := core.NewAffineFromBatchNorm(params.Gamma, params.Beta, params.Mean, params.Variance, eps)
				if err != nil {
					return nil, fmt.Errorf("graph: batch-norm %q: %w", sp.name, err)
				}
				if err := foldFloatConv.op.SetAffine(aff); err != nil {
					return nil, fmt.Errorf("graph: batch-norm %q: %w", sp.name, err)
				}
			case foldDense != nil:
				if err := foldDense.op.SetThresholds(th); err != nil {
					return nil, fmt.Errorf("graph: batch-norm %q: %w", sp.name, err)
				}
				aff, err := core.NewAffineFromBatchNorm(params.Gamma, params.Beta, params.Mean, params.Variance, eps)
				if err != nil {
					return nil, fmt.Errorf("graph: batch-norm %q: %w", sp.name, err)
				}
				if err := foldDense.op.SetAffine(aff); err != nil {
					return nil, fmt.Errorf("graph: batch-norm %q: %w", sp.name, err)
				}
			}
			actFolded = true
		}
	}
	if n.output == nil {
		return nil, errors.New("graph: network must end in a dense classifier")
	}
	n.unfused = b.noFuse
	if !b.noFuse {
		n.fuse()
	}
	n.uncompressed = b.noPress
	if !b.noPress {
		n.press()
	}
	return n, nil
}
