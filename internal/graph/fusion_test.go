package graph

import (
	"bytes"
	"testing"
	"time"

	"bitflow/internal/exec"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// mixedNet builds a heterogeneous net exercising every fusion-planner
// edge: a float stem (never fused), a fusable conv→pool pair, an
// overlapping pool that must NOT fuse, and a dense head.
func mixedNet(t *testing.T, seed uint64) *Network {
	t.Helper()
	net, err := NewBuilder("mixed", 16, 16, 3, feat()).
		FloatConv("stem", 64, 3, 3, 1, 1).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2). // fuses with c1
		Conv3x3("c2", 64).
		Pool("p2", 3, 3, 2). // overlapping windows: stays separate
		Dense("out", 9).
		Build(RandomWeights{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestFusionPlanSelectivity(t *testing.T) {
	net := mixedNet(t, 70)
	var kinds []string
	for _, li := range net.Layers() {
		kinds = append(kinds, li.Kind)
	}
	want := []string{"floatconv", "conv+pool", "conv", "pool", "fc"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds %v want %v", kinds, want)
		}
	}
	if fs := net.Fusion(); fs.Pairs != 1 {
		t.Errorf("fusion stats %+v, want exactly the c1+p1 pair", fs)
	}
}

// TestFusionLogitsBitIdentical is the acceptance pin: fused and unfused
// plans produce bit-identical logits over Infer and InferBatch for
// batch sizes 1..8 (ragged sizes included), on both the all-binary and
// the mixed-precision topology.
func TestFusionLogitsBitIdentical(t *testing.T) {
	nets := map[string]*Network{"mixed": mixedNet(t, 71)}
	tiny, err := TinyVGG(feat(), RandomWeights{Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	nets["tinyvgg"] = tiny

	for name, fused := range nets {
		unfused := fused.CloneUnfused()
		if unfused.Fusion().Pairs != 0 {
			t.Fatalf("%s: unfused clone still has fused pairs", name)
		}
		r := workload.NewRNG(73)
		xs := make([]*tensor.Tensor, 8)
		for i := range xs {
			xs[i] = workload.RandTensor(r, fused.InH, fused.InW, fused.InC)
		}
		for _, x := range xs {
			want := unfused.Infer(x)
			got := fused.Infer(x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: Infer logit %d: fused %v unfused %v", name, i, got[i], want[i])
				}
			}
		}
		for B := 1; B <= 8; B++ {
			wantB, err := unfused.InferBatch(xs[:B])
			if err != nil {
				t.Fatalf("%s: unfused batch %d: %v", name, B, err)
			}
			gotB, err := fused.InferBatch(xs[:B])
			if err != nil {
				t.Fatalf("%s: fused batch %d: %v", name, B, err)
			}
			for b := range wantB {
				for i := range wantB[b] {
					if gotB[b][i] != wantB[b][i] {
						t.Fatalf("%s: batch %d item %d logit %d differs", name, B, b, i)
					}
				}
			}
		}
	}
}

// TestFusionSerializationCompat pins forward/backward artifact
// compatibility: fusion is pure runtime planning, so an artifact saved
// from an unfused network is byte-identical to one saved fused, and
// loading either yields the fused plan with bit-identical logits.
func TestFusionSerializationCompat(t *testing.T) {
	ws := RandomWeights{Seed: 74}
	fused, err := TinyVGG(feat(), ws)
	if err != nil {
		t.Fatal(err)
	}
	unfused := fused.CloneUnfused()

	var fb, ub bytes.Buffer
	if _, err := fused.Save(&fb); err != nil {
		t.Fatal(err)
	}
	if _, err := unfused.Save(&ub); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb.Bytes(), ub.Bytes()) {
		t.Fatal("fused and unfused networks serialize differently")
	}

	loaded, err := Load(bytes.NewReader(ub.Bytes()), feat())
	if err != nil {
		t.Fatal(err)
	}
	// The loader always plans fusion, regardless of how the saving
	// network was compiled — so layer names (the /statusz and observer
	// keys) are stable across a hot reload from a pre-fusion artifact.
	li, lw := loaded.Layers(), fused.Layers()
	if len(li) != len(lw) {
		t.Fatalf("loaded %d layers, fused build has %d", len(li), len(lw))
	}
	for i := range li {
		if li[i].Name != lw[i].Name || li[i].Kind != lw[i].Kind {
			t.Fatalf("layer %d: loaded %+v, fused build %+v", i, li[i], lw[i])
		}
	}
	x := workload.RandTensor(workload.NewRNG(75), 32, 32, 3)
	want := unfused.Infer(x)
	got := loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: loaded-fused %v, saved-unfused %v", i, got[i], want[i])
		}
	}
}

// TestFusedLayerObserverNames pins the timing-observer contract: a fused
// node reports exactly once per pass under its joined name and the
// "conv+pool" kind, so dashboards keyed on layer names see no
// discontinuity when fusion collapses the layer list.
func TestFusedLayerObserverNames(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 76})
	if err != nil {
		t.Fatal(err)
	}
	type obs struct{ name, kind string }
	var seen []obs
	ec := exec.Serial().WithObserver(func(layer, kind string, d time.Duration) {
		seen = append(seen, obs{layer, kind})
	})
	net.SetExec(ec)
	net.Infer(workload.RandTensor(workload.NewRNG(77), 32, 32, 3))
	want := []obs{
		{"input", "pack"},
		{"conv1.1", "conv"},
		{"conv1.2+pool1", "conv+pool"},
		{"conv2.1+pool2", "conv+pool"},
		{"fc1", "fc"},
		{"fc2", "fc"},
	}
	if len(seen) != len(want) {
		t.Fatalf("observed %v want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observation %d = %v want %v", i, seen[i], want[i])
		}
	}
}

// TestFusionBatchLanesInheritPlan pins that EnsureBatch lanes follow the
// base network's plan for both fused and unfused networks (a mixed pool
// would silently break the layer-major sweep's wiring).
func TestFusionBatchLanesInheritPlan(t *testing.T) {
	fused := mixedNet(t, 78)
	unfused := fused.CloneUnfused()
	fused.EnsureBatch(3)
	unfused.EnsureBatch(3)
	for i, lane := range fused.lanes {
		if lane.Fusion().Pairs != fused.Fusion().Pairs {
			t.Fatalf("fused lane %d has %d pairs", i, lane.Fusion().Pairs)
		}
	}
	for i, lane := range unfused.lanes {
		if lane.Fusion().Pairs != 0 {
			t.Fatalf("unfused lane %d has %d pairs", i, lane.Fusion().Pairs)
		}
	}
}
