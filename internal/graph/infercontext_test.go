package graph

import (
	"context"
	"testing"
	"time"

	"bitflow/internal/exec"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func TestInferContextBackgroundMatchesInfer(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(41), 32, 32, 3)
	want := net.Infer(x)
	got, err := net.InferContext(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("logit %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestInferContextCancelledBeforeStart(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.InferContext(ctx, workload.RandTensor(workload.NewRNG(43), 32, 32, 3)); err != context.Canceled {
		t.Fatalf("pre-cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestInferContextCancelMidPass cancels the request from the per-layer
// observer hook partway through the network and checks the three promises
// InferContext makes: the pass stops at the next layer boundary (no
// further layers run), the caller gets ctx's error, and the buffers are
// immediately reusable — the next uncancelled Infer on the same network
// is bit-identical to an uninterrupted pass.
func TestInferContextCancelMidPass(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(45), 32, 32, 3)
	want := net.Infer(x) // uninterrupted reference, same buffers
	total := len(net.Layers())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ranAfterCancel, ranLayers int
	cancelled := false
	obs := exec.Observer(func(layer, kind string, d time.Duration) {
		if kind == "pack" {
			return // input staging, not a layer
		}
		if cancelled {
			ranAfterCancel++
		}
		ranLayers++
		if ranLayers == 2 {
			cancelled = true
			cancel()
		}
	})
	net.SetExec(exec.Serial().WithObserver(obs))
	if _, err := net.InferContext(ctx, x); err != context.Canceled {
		t.Fatalf("mid-pass cancel: got %v, want context.Canceled", err)
	}
	if ranAfterCancel != 0 {
		t.Fatalf("%d layers ran after cancellation; want 0 (stop at next boundary)", ranAfterCancel)
	}
	if ranLayers >= total {
		t.Fatalf("all %d layers ran despite cancellation after layer 2", total)
	}

	// Buffers must be reusable: a fresh pass on the half-dirty network
	// agrees bit for bit with the uninterrupted reference.
	net.SetExec(nil)
	got := net.Infer(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("post-cancel logit %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestInferContextDeadline(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := net.InferContext(ctx, workload.RandTensor(workload.NewRNG(47), 32, 32, 3)); err != context.DeadlineExceeded {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
}

// TestSetExecPooled pins the tentpole invariant end to end: a network
// dispatching on an attached pooled execution context produces logits
// bit-identical to the serial path, and clones inherit the attachment so
// every replica of a server shares one pool.
func TestSetExecPooled(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 48})
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(49), 32, 32, 3)
	want := net.Infer(x)

	p := exec.NewPool(3)
	defer p.Close()
	ec := exec.Pooled(p, 4)
	net.SetExec(ec)
	if net.Exec() != ec {
		t.Fatal("Exec() did not return the attached context")
	}
	got := net.Infer(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pooled logit %d: %v vs %v", i, got[i], want[i])
		}
	}

	cl := net.Clone()
	if cl.Exec() != ec {
		t.Fatal("clone did not inherit the attached execution context")
	}
	cg := cl.Infer(x)
	for i := range want {
		if want[i] != cg[i] {
			t.Fatalf("clone pooled logit %d: %v vs %v", i, cg[i], want[i])
		}
	}
}

// TestInferBatchCancelled: the batched path honours an attached context
// too — a cancelled base context stops the layer-major sweep.
func TestInferBatchCancelled(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net.SetExec(exec.Serial().WithContext(ctx))
	r := workload.NewRNG(51)
	xs := []*tensor.Tensor{
		workload.RandTensor(r, 32, 32, 3),
		workload.RandTensor(r, 32, 32, 3),
	}
	if _, err := net.InferBatch(xs); err != context.Canceled {
		t.Fatalf("cancelled batch: got %v, want context.Canceled", err)
	}
	// Detached again, the same lanes serve the same batch normally.
	net.SetExec(nil)
	if _, err := net.InferBatch(xs); err != nil {
		t.Fatal(err)
	}
}
