package graph

import (
	"strings"
	"testing"

	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func checkedTestNet(t *testing.T) *Network {
	t.Helper()
	net, err := NewBuilder("chk", 8, 8, 64, sched.Detect()).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Dense("d1", 4).
		Build(RandomWeights{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestInferCheckedMatchesInfer(t *testing.T) {
	net := checkedTestNet(t)
	x := workload.RandTensor(workload.NewRNG(42), 8, 8, 64)
	want := net.Infer(x)
	got, err := net.InferChecked(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("logit count %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: checked %v direct %v", i, got[i], want[i])
		}
	}
}

func TestInferCheckedRejectsBadShape(t *testing.T) {
	net := checkedTestNet(t)

	for name, x := range map[string]*tensor.Tensor{
		"nil":        nil,
		"wrong-h":    tensor.New(4, 8, 64),
		"wrong-w":    tensor.New(8, 4, 64),
		"wrong-c":    tensor.New(8, 8, 32),
		"short-data": {H: 8, W: 8, C: 64, Data: make([]float32, 7)},
		"oversized":  tensor.New(16, 16, 64),
	} {
		logits, err := net.InferChecked(x)
		if err == nil {
			t.Errorf("%s: no error", name)
		}
		if logits != nil {
			t.Errorf("%s: logits returned alongside error", name)
		}
		if err != nil && !strings.Contains(err.Error(), "graph:") {
			t.Errorf("%s: error %q lacks package prefix", name, err)
		}
	}
	if err := net.CheckInput(tensor.New(8, 8, 64)); err != nil {
		t.Errorf("CheckInput rejected valid shape: %v", err)
	}
}

func TestInferStillPanicsOnBadShape(t *testing.T) {
	// Existing callers rely on the panic contract; InferChecked is the
	// opt-in error path. Make sure the compat behaviour survived.
	net := checkedTestNet(t)
	defer func() {
		if recover() == nil {
			t.Error("Infer with wrong shape did not panic")
		}
	}()
	net.Infer(tensor.New(1, 1, 64))
}
