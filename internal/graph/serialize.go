package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"

	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// Model file format ("BFLW", version 1): the architecture specs plus the
// *packed* weights — the deployment artifact of a stand-alone BNN engine
// (paper §IV: "substantially simplifies its deployment in practical
// applications"). The packed representation is platform-independent:
// sched.Select always yields WordsFor(C) words per channel vector, so a
// model saved on an AVX-512-class machine loads bit-identically on a
// scalar one (only the kernel tier chosen at load time differs).
//
// Layout (all integers little-endian):
//
//	magic "BFLW" | u32 version | str name | u32 inH | u32 inW | u32 inC
//	u32 specCount | specs... | weight blobs for conv/dense specs in order
//	| activation records for conv/dense layers in order
//
//	spec: u8 kind | str name | 6×u32 (k, kh, kw, stride, pad, units)
//	blob: u64 wordCount | that many u64
//	activation: u8 flags (bit0 thresholds, bit1 affine)
//	            [thresholds: u32 K | K×i32 T | K×u8 flip]
//	            [affine: u32 K | K×f32 scale | K×f32 mean | K×f32 shift]
//
// str: u32 length + bytes. Folded activations (batch-norm/bias
// thresholds, classifier affine) are stored post-fold, so BatchNorm
// specs in the architecture become no-ops at load time.

var modelMagic = [4]byte{'B', 'F', 'L', 'W'}

const modelVersion = 1

// maxSaneLen guards length fields when reading untrusted files.
const maxSaneLen = 1 << 30

// Integrity footer ("BFCK", version 1): appended after the payload by
// Save, it carries the CRC64-ECMA checksum of every preceding byte so a
// flipped bit anywhere in the artifact is caught before the model serves
// a single request. Files written before the footer existed still load —
// LoadInfo.Checksummed reports false so operators can flag them.
//
//	footer: magic "BFCK" | u32 footer version | u64 crc64(payload)
var checksumMagic = [4]byte{'B', 'F', 'C', 'K'}

const (
	checksumFooterVersion = 1
	checksumFooterLen     = 16
)

// crcTable is the CRC64-ECMA table shared by Save and Load.
var crcTable = crc64.MakeTable(crc64.ECMA)

// maxModelBytes bounds how much Load will read — an artifact claiming to
// be larger than this is rejected rather than buffered.
const maxModelBytes = 1 << 31

// ChecksumError reports a model file whose payload does not match its
// integrity footer — the artifact was corrupted (or truncated and
// re-padded) after Save wrote it.
type ChecksumError struct {
	Want uint64 // checksum stored in the footer
	Got  uint64 // checksum computed over the payload
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("graph: model checksum mismatch: footer says %016x, payload hashes to %016x", e.Want, e.Got)
}

// FormatError reports a model file that could not be decoded: truncated,
// structurally invalid, or claiming implausible sizes. It wraps the
// underlying cause (io.ErrUnexpectedEOF for truncation).
type FormatError struct {
	Err error
}

func (e *FormatError) Error() string { return fmt.Sprintf("graph: invalid model file: %v", e.Err) }
func (e *FormatError) Unwrap() error { return e.Err }

// LoadInfo describes the integrity metadata observed while loading.
type LoadInfo struct {
	// Checksum is the CRC64-ECMA of the payload, computed during load
	// regardless of whether the file carried a footer.
	Checksum uint64
	// Checksummed reports whether the file carried an integrity footer
	// (and therefore that Checksum was verified against it).
	Checksummed bool
	// Bytes is the total file size consumed, footer included.
	Bytes int64
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// crcWriter tees payload bytes into the running CRC64 on their way out,
// so Save can stamp the footer without buffering the whole artifact.
type crcWriter struct {
	w   io.Writer
	crc uint64
}

func (hw *crcWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.crc = crc64.Update(hw.crc, crcTable, p[:n])
	return n, err
}

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }

func writeStr(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readStr(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxSaneLen {
		return "", fmt.Errorf("graph: string length %d implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Save serializes the network's architecture and packed weights,
// followed by a CRC64 integrity footer over the payload. The returned
// count is the number of bytes written, footer included.
func (n *Network) Save(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	hw := &crcWriter{w: cw}
	bw := bufio.NewWriter(hw)
	if _, err := bw.Write(modelMagic[:]); err != nil {
		return cw.n, err
	}
	if err := writeU32(bw, modelVersion); err != nil {
		return cw.n, err
	}
	if err := writeStr(bw, n.Name); err != nil {
		return cw.n, err
	}
	for _, v := range []uint32{uint32(n.InH), uint32(n.InW), uint32(n.InC), uint32(len(n.arch))} {
		if err := writeU32(bw, v); err != nil {
			return cw.n, err
		}
	}
	for _, sp := range n.arch {
		if err := bw.WriteByte(byte(sp.kind)); err != nil {
			return cw.n, err
		}
		if err := writeStr(bw, sp.name); err != nil {
			return cw.n, err
		}
		for _, v := range []uint32{uint32(sp.k), uint32(sp.kh), uint32(sp.kw), uint32(sp.stride), uint32(sp.pad), uint32(sp.units)} {
			if err := writeU32(bw, v); err != nil {
				return cw.n, err
			}
		}
	}
	// Weight blobs, in layer order (weighted layers only). Binary layers
	// store packed words; the mixed-precision float conv stores float32s.
	for _, l := range n.layers {
		switch v := l.(type) {
		case *convLayer:
			if err := writeWordBlob(bw, v.op.Filter().Words); err != nil {
				return cw.n, err
			}
		case *fusedConvPoolLayer:
			// A fused node serializes exactly as its conv half: the pool is
			// weightless, so the artifact is byte-identical whether the
			// network compiled fused or not.
			if err := writeWordBlob(bw, v.conv.Filter().Words); err != nil {
				return cw.n, err
			}
		case *denseLayer:
			if err := writeWordBlob(bw, v.op.Weights().Words); err != nil {
				return cw.n, err
			}
		case *floatConvLayer:
			data := v.op.Filter().Data
			if err := writeU64(bw, uint64(len(data))); err != nil {
				return cw.n, err
			}
			if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
				return cw.n, err
			}
		}
	}
	// Activation records, in the same layer order.
	for _, l := range n.layers {
		var th *core.Thresholds
		var aff *core.Affine
		switch v := l.(type) {
		case *convLayer:
			th = v.op.Activation()
		case *fusedConvPoolLayer:
			th = v.conv.Activation()
		case *denseLayer:
			th = v.op.Activation()
			aff = v.op.OutAffine()
		case *floatConvLayer:
			aff = v.op.OutAffine()
		default:
			continue
		}
		var flags byte
		if th != nil {
			flags |= 1
		}
		if aff != nil {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return cw.n, err
		}
		if th != nil {
			if err := writeU32(bw, uint32(len(th.T))); err != nil {
				return cw.n, err
			}
			if err := binary.Write(bw, binary.LittleEndian, th.T); err != nil {
				return cw.n, err
			}
			for _, f := range th.Flip {
				b := byte(0)
				if f {
					b = 1
				}
				if err := bw.WriteByte(b); err != nil {
					return cw.n, err
				}
			}
		}
		if aff != nil {
			if err := writeU32(bw, uint32(len(aff.Scale))); err != nil {
				return cw.n, err
			}
			for _, arr := range [][]float32{aff.Scale, aff.Mean, aff.Shift} {
				if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// Footer goes straight to the counting writer: the stored checksum
	// covers the payload only, never itself.
	if _, err := cw.Write(checksumMagic[:]); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, checksumFooterVersion); err != nil {
		return cw.n, err
	}
	if err := writeU64(cw, hw.crc); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeWordBlob writes a length-prefixed word slice.
func writeWordBlob(w io.Writer, words []uint64) error {
	if err := writeU64(w, uint64(len(words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, words)
}

// readActivations restores the per-layer activation records onto the
// freshly compiled network.
func readActivations(r io.Reader, n *Network) error {
	for _, l := range n.layers {
		switch l.(type) {
		case *convLayer, *denseLayer, *floatConvLayer, *fusedConvPoolLayer:
		default:
			continue
		}
		var flags [1]byte
		if _, err := io.ReadFull(r, flags[:]); err != nil {
			return fmt.Errorf("graph: reading activation record for %s: %w", l.name(), err)
		}
		var th *core.Thresholds
		if flags[0]&1 != 0 {
			k, err := readU32(r)
			if err != nil {
				return err
			}
			if k > maxSaneLen/8 {
				return fmt.Errorf("graph: activation size %d implausible", k)
			}
			th = &core.Thresholds{T: make([]int32, k), Flip: make([]bool, k)}
			if err := binary.Read(r, binary.LittleEndian, th.T); err != nil {
				return err
			}
			flip := make([]byte, k)
			if _, err := io.ReadFull(r, flip); err != nil {
				return err
			}
			for i, b := range flip {
				th.Flip[i] = b != 0
			}
		}
		var aff *core.Affine
		if flags[0]&2 != 0 {
			k, err := readU32(r)
			if err != nil {
				return err
			}
			if k > maxSaneLen/12 {
				return fmt.Errorf("graph: affine size %d implausible", k)
			}
			aff = &core.Affine{Scale: make([]float32, k), Mean: make([]float32, k), Shift: make([]float32, k)}
			for _, arr := range [][]float32{aff.Scale, aff.Mean, aff.Shift} {
				if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
					return err
				}
			}
		}
		switch v := l.(type) {
		case *convLayer:
			if aff != nil {
				return fmt.Errorf("graph: conv %s cannot carry an affine record", l.name())
			}
			if th != nil {
				if err := v.op.SetThresholds(th); err != nil {
					return fmt.Errorf("graph: activation for %s: %w", l.name(), err)
				}
			}
		case *fusedConvPoolLayer:
			if aff != nil {
				return fmt.Errorf("graph: conv %s cannot carry an affine record", l.name())
			}
			if th != nil {
				if err := v.conv.SetThresholds(th); err != nil {
					return fmt.Errorf("graph: activation for %s: %w", l.name(), err)
				}
			}
		case *floatConvLayer:
			if th != nil {
				return fmt.Errorf("graph: float conv %s cannot carry a threshold record", l.name())
			}
			if aff != nil {
				if err := v.op.SetAffine(aff); err != nil {
					return fmt.Errorf("graph: activation for %s: %w", l.name(), err)
				}
			}
		case *denseLayer:
			if th != nil {
				if err := v.op.SetThresholds(th); err != nil {
					return fmt.Errorf("graph: activation for %s: %w", l.name(), err)
				}
			}
			if aff != nil {
				if err := v.op.SetAffine(aff); err != nil {
					return fmt.Errorf("graph: activation for %s: %w", l.name(), err)
				}
			}
		}
	}
	return nil
}

// packedSource rebuilds operators from the stored weight blobs, consumed
// in layer order.
type packedSource struct {
	r io.Reader
}

func (ps *packedSource) blob(want int) ([]uint64, error) {
	count, err := readU64(ps.r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading weight blob: %w", err)
	}
	if count != uint64(want) {
		return nil, fmt.Errorf("graph: weight blob has %d words, architecture wants %d", count, want)
	}
	if want < 0 || want > maxSaneLen/8 {
		return nil, fmt.Errorf("graph: weight blob of %d words implausible", want)
	}
	words := make([]uint64, want)
	if err := binary.Read(ps.r, binary.LittleEndian, words); err != nil {
		return nil, fmt.Errorf("graph: reading weight blob: %w", err)
	}
	return words, nil
}

func (ps *packedSource) conv(name string, shape sched.ConvShape, plan sched.Plan) (*core.Conv, error) {
	words, err := ps.blob(shape.K * shape.KH * shape.KW * plan.Words)
	if err != nil {
		return nil, err
	}
	pf := bitpack.NewPackedFilter(shape.K, shape.KH, shape.KW, shape.InC, plan.Words)
	copy(pf.Words, words)
	return core.NewConvPacked(shape, plan, pf)
}

func (ps *packedSource) dense(name string, shape sched.FCShape, plan sched.Plan) (*core.Dense, error) {
	words, err := ps.blob(shape.K * plan.Words)
	if err != nil {
		return nil, err
	}
	pm := bitpack.NewPackedMatrix(shape.K, shape.N, plan.Words)
	copy(pm.Words, words)
	return core.NewDensePacked(shape, plan, pm)
}

func (ps *packedSource) floatConv(name string, shape sched.ConvShape) (*core.FloatConv, error) {
	count, err := readU64(ps.r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading float weight blob: %w", err)
	}
	want := shape.K * shape.KH * shape.KW * shape.InC
	if count != uint64(want) {
		return nil, fmt.Errorf("graph: float weight blob has %d values, architecture wants %d", count, want)
	}
	if want < 0 || want > maxSaneLen/4 {
		return nil, fmt.Errorf("graph: float weight blob of %d values implausible", want)
	}
	data := make([]float32, want)
	if err := binary.Read(ps.r, binary.LittleEndian, data); err != nil {
		return nil, fmt.Errorf("graph: reading float weight blob: %w", err)
	}
	return core.NewFloatConv(shape, tensor.FilterFromSlice(shape.K, shape.KH, shape.KW, shape.InC, data))
}

func (ps *packedSource) convBias(name string, k int) ([]float32, error)  { return nil, nil }
func (ps *packedSource) denseBias(name string, k int) ([]float32, error) { return nil, nil }

// batchNorm reports "already baked": stored thresholds include every
// fold that was applied at original build time.
func (ps *packedSource) batchNorm(name string, channels int) (*BNParams, error) { return nil, nil }

// Load deserializes a model saved with Save and compiles it for the
// given features (the kernel tiers are re-selected for the loading
// machine; the packed weights are tier-independent).
func Load(r io.Reader, feat sched.Features) (*Network, error) {
	n, _, err := LoadWithInfo(r, feat)
	return n, err
}

// LoadWithInfo is Load plus the integrity metadata: the payload CRC64
// and whether the file carried (and passed) a checksum footer. Corrupt
// or truncated files return *ChecksumError / *FormatError — never a
// panic — so callers can roll back to a previous artifact with a
// structured reason. Files written before the footer existed load with
// Checksummed=false.
func LoadWithInfo(r io.Reader, feat sched.Features) (*Network, *LoadInfo, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxModelBytes+1))
	if err != nil {
		return nil, nil, &FormatError{Err: err}
	}
	if len(data) > maxModelBytes {
		return nil, nil, &FormatError{Err: fmt.Errorf("model exceeds %d bytes", int64(maxModelBytes))}
	}
	info := &LoadInfo{Bytes: int64(len(data))}
	payload := data
	if stored, ok := parseChecksumFooter(data); ok {
		payload = data[:len(data)-checksumFooterLen]
		info.Checksummed = true
		info.Checksum = crc64.Checksum(payload, crcTable)
		if info.Checksum != stored {
			return nil, nil, &ChecksumError{Want: stored, Got: info.Checksum}
		}
	} else {
		info.Checksum = crc64.Checksum(payload, crcTable)
	}
	br := bytes.NewReader(payload)
	n, err := decodeModel(br, feat)
	if err != nil {
		var fe *FormatError
		if errors.As(err, &fe) {
			return nil, nil, err
		}
		return nil, nil, &FormatError{Err: err}
	}
	if br.Len() != 0 {
		return nil, nil, &FormatError{Err: fmt.Errorf("%d trailing bytes after model payload", br.Len())}
	}
	return n, info, nil
}

// parseChecksumFooter reports whether data ends in a well-formed
// integrity footer, returning the stored checksum when it does.
func parseChecksumFooter(data []byte) (uint64, bool) {
	if len(data) < checksumFooterLen {
		return 0, false
	}
	f := data[len(data)-checksumFooterLen:]
	if !bytes.Equal(f[:4], checksumMagic[:]) {
		return 0, false
	}
	if binary.LittleEndian.Uint32(f[4:8]) != checksumFooterVersion {
		return 0, false
	}
	return binary.LittleEndian.Uint64(f[8:]), true
}

// Decode-time sanity bounds for untrusted headers: generous for any real
// architecture, small enough that a hostile header cannot make the
// loader allocate unbounded memory before hitting a length check.
const (
	maxSaneSpatial = 1 << 13 // per input dimension
	maxSaneChans   = 1 << 20 // channels / filters / units
	maxSaneKernel  = 1 << 10 // kernel extent, stride, pad
)

// decodeModel parses one serialized payload.
func decodeModel(br *bytes.Reader, feat sched.Features) (*Network, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading model header: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("graph: bad magic %q, not a BitFlow model", magic[:])
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if version != modelVersion {
		return nil, fmt.Errorf("graph: unsupported model version %d", version)
	}
	name, err := readStr(br)
	if err != nil {
		return nil, err
	}
	var dims [4]uint32
	for i := range dims {
		if dims[i], err = readU32(br); err != nil {
			return nil, err
		}
	}
	if dims[0] < 1 || dims[0] > maxSaneSpatial || dims[1] < 1 || dims[1] > maxSaneSpatial ||
		dims[2] < 1 || dims[2] > maxSaneChans {
		return nil, fmt.Errorf("graph: input dims %dx%dx%d implausible", dims[0], dims[1], dims[2])
	}
	specCount := int(dims[3])
	if specCount > maxSaneLen/64 {
		return nil, fmt.Errorf("graph: spec count %d implausible", specCount)
	}
	b := NewBuilder(name, int(dims[0]), int(dims[1]), int(dims[2]), feat)
	for i := 0; i < specCount; i++ {
		kindB, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("graph: reading spec %d: %w", i, err)
		}
		sname, err := readStr(br)
		if err != nil {
			return nil, fmt.Errorf("graph: reading spec %d: %w", i, err)
		}
		var p [6]uint32
		for j := range p {
			if p[j], err = readU32(br); err != nil {
				return nil, fmt.Errorf("graph: reading spec %d: %w", i, err)
			}
		}
		if p[0] > maxSaneChans || p[5] > maxSaneChans ||
			p[1] > maxSaneKernel || p[2] > maxSaneKernel || p[3] > maxSaneKernel || p[4] > maxSaneKernel {
			return nil, fmt.Errorf("graph: spec %d parameters %v implausible", i, p)
		}
		switch specKind(kindB) {
		case specConv, specFloatConv, specPool:
			// A convolving/pooling spec needs a positive window and stride
			// or the output geometry below divides by zero.
			if p[1] < 1 || p[2] < 1 || p[3] < 1 {
				return nil, fmt.Errorf("graph: spec %d window %dx%d stride %d invalid", i, p[1], p[2], p[3])
			}
		}
		switch specKind(kindB) {
		case specConv:
			b.Conv(sname, int(p[0]), int(p[1]), int(p[2]), int(p[3]), int(p[4]))
		case specPool:
			b.Pool(sname, int(p[1]), int(p[2]), int(p[3]))
		case specFlatten:
			b.Flatten()
		case specDense:
			b.Dense(sname, int(p[5]))
		case specBatchNorm:
			b.BatchNorm(sname)
		case specFloatConv:
			b.FloatConv(sname, int(p[0]), int(p[1]), int(p[2]), int(p[3]), int(p[4]))
		default:
			return nil, fmt.Errorf("graph: unknown spec kind %d", kindB)
		}
	}
	n, err := b.buildFrom(&packedSource{r: br})
	if err != nil {
		return nil, err
	}
	if err := readActivations(br, n); err != nil {
		return nil, err
	}
	return n, nil
}
