package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bitflow/internal/kernels"
	"bitflow/internal/workload"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := net.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("Save reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded, err := Load(&buf, feat())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != net.Name || loaded.Classes != net.Classes {
		t.Errorf("identity: %q/%d vs %q/%d", loaded.Name, loaded.Classes, net.Name, net.Classes)
	}
	if len(loaded.Layers()) != len(net.Layers()) {
		t.Fatalf("layer counts differ")
	}

	x := workload.RandTensor(workload.NewRNG(31), 32, 32, 3)
	want := net.Infer(x)
	got := loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: loaded %v original %v", i, got[i], want[i])
		}
	}
}

func TestLoadOnNarrowerMachine(t *testing.T) {
	// A model saved under the AVX-512-class scheduler must load and give
	// identical results on a scalar-only machine — packed weights are
	// tier-independent.
	net, err := TinyVGG(feat(), RandomWeights{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	narrow := feat().WithMaxWidth(kernels.W64)
	loaded, err := Load(&buf, narrow)
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(33), 32, 32, 3)
	want := net.Infer(x)
	got := loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d differs across machine widths", i)
		}
	}
}

func TestSaveSizeMatchesModelSize(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The file is dominated by the packed weights: size must sit within
	// a few KB of ModelSize().BinarizedBytes.
	ms := net.ModelSize()
	overhead := int64(buf.Len()) - ms.BinarizedBytes
	if overhead < 0 || overhead > 4096 {
		t.Errorf("file %d bytes vs packed weights %d (overhead %d)", buf.Len(), ms.BinarizedBytes, overhead)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE0000000000000000"),
		"truncated": append([]byte("BFLW"), 1, 0, 0, 0, 5, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data), feat()); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Strip the integrity footer so the corruption reaches the version
	// check (with the footer on, the checksum catches it first).
	data := buf.Bytes()[:buf.Len()-16]
	data[4] = 99 // bump version field
	if _, err := Load(bytes.NewReader(data), feat()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("expected version error, got %v", err)
	}
}

func TestLoadChecksumCatchesCorruption(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 38})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the packed weights: structurally the
	// file still decodes, so only the checksum can catch it.
	data := append([]byte(nil), buf.Bytes()...)
	data[buf.Len()/2] ^= 0x10
	_, _, err = LoadWithInfo(bytes.NewReader(data), feat())
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("expected *ChecksumError, got %v", err)
	}
	if ce.Want == ce.Got {
		t.Errorf("checksum error with equal want/got: %+v", ce)
	}
}

func TestLoadLegacyFileWithoutFooter(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()[:buf.Len()-16] // drop the footer: a pre-checksum artifact
	loaded, info, err := LoadWithInfo(bytes.NewReader(legacy), feat())
	if err != nil {
		t.Fatalf("legacy file must still load: %v", err)
	}
	if info.Checksummed {
		t.Error("legacy file reported as checksummed")
	}
	if info.Checksum == 0 {
		t.Error("legacy load did not compute a payload checksum")
	}
	x := workload.RandTensor(workload.NewRNG(40), 32, 32, 3)
	want, got := net.Infer(x), loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d differs on legacy load", i)
		}
	}
}

func TestLoadWithInfoReportsVerifiedChecksum(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wrote, err := net.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, info, err := LoadWithInfo(bytes.NewReader(buf.Bytes()), feat())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Checksummed {
		t.Error("fresh Save output not recognized as checksummed")
	}
	if info.Bytes != wrote {
		t.Errorf("info.Bytes = %d, Save wrote %d", info.Bytes, wrote)
	}
}

func TestLoadTruncationIsTypedError(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Every truncation point must yield a typed *FormatError (truncating
	// into the footer turns the file into an unchecksummed payload with a
	// ragged tail — still a format error, never a panic).
	for _, cut := range []int{1, 5, 30, 200, buf.Len() / 2, buf.Len() - 17, buf.Len() - 8} {
		data := buf.Bytes()[:cut]
		_, _, err := LoadWithInfo(bytes.NewReader(data), feat())
		if err == nil {
			t.Errorf("cut at %d: expected error", cut)
			continue
		}
		var fe *FormatError
		var ce *ChecksumError
		if !errors.As(err, &fe) && !errors.As(err, &ce) {
			t.Errorf("cut at %d: untyped error %T: %v", cut, err, err)
		}
	}
}

func TestLoadRejectsTruncatedWeights(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-1000]
	if _, err := Load(bytes.NewReader(data), feat()); err == nil {
		t.Error("expected error on truncated weights")
	}
}

func TestLoadRejectsCorruptSpecKind(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Strip the footer so the decoder (not the checksum) sees the bad
	// spec kind.
	data := buf.Bytes()[:buf.Len()-16]
	// The first spec's kind byte sits right after the fixed header:
	// magic(4) + version(4) + name(4+len) + 4×u32.
	off := 4 + 4 + 4 + len(net.Name) + 16
	data[off] = 200
	if _, err := Load(bytes.NewReader(data), feat()); err == nil {
		t.Error("expected error on corrupt spec kind")
	}
}
