package graph

import (
	"strings"
	"testing"

	"bitflow/internal/baseline"
	"bitflow/internal/bitpack"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func feat() sched.Features {
	return sched.Features{Arch: "test", MaxWidth: kernels.W512, HWPopcount: true}
}

func TestTinyVGGBuildsAndRuns(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if net.Classes != 10 {
		t.Fatalf("classes = %d", net.Classes)
	}
	x := workload.RandTensor(workload.NewRNG(2), 32, 32, 3)
	out := net.Infer(x)
	if len(out) != 10 {
		t.Fatalf("output len %d", len(out))
	}
	var nonzero bool
	for _, v := range out {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("all-zero logits are implausible")
	}
}

func TestInferDeterministicAcrossRuns(t *testing.T) {
	// Pre-allocated buffers are reused; a second pass with the same
	// input must be bit-identical (DESIGN.md invariant).
	net, err := TinyVGG(feat(), RandomWeights{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(4), 32, 32, 3)
	first := net.Infer(x)
	// Run a different input in between to dirty the buffers.
	net.Infer(workload.RandTensor(workload.NewRNG(5), 32, 32, 3))
	second := net.Infer(x)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("logit %d: %v then %v", i, first[i], second[i])
		}
	}
}

func TestInferThreadsAgree(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(7), 32, 32, 3)
	want := net.Infer(x)
	net.Threads = 4
	got := net.Infer(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("threads=4 logit %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestNetworkMatchesManualPipeline replays a small network by hand with
// the float reference operators and checks exact agreement — the
// end-to-end integration proof across bitpack/core/graph.
func TestNetworkMatchesManualPipeline(t *testing.T) {
	ws := RandomWeights{Seed: 8}
	net, err := NewBuilder("manual", 8, 8, 64, feat()).
		Conv3x3("c1", 64).
		Pool("p1", 2, 2, 2).
		Dense("d1", 32).
		Dense("d2", 5).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(9), 8, 8, 64)
	got := net.Infer(x)

	// Manual replay in float space, binarizing between layers exactly
	// as the fused operators do.
	f1, _ := ws.ConvFilter("c1", 64, 3, 3, 64)
	a := baseline.ConvDirect(x.Sign(), f1.Sign(), 1, 1, -1, 1).Sign()
	a = baseline.MaxPoolFloat(a, 2, 2, 2, 1)
	flatVals := a.Data // NHWC flatten, already sign-valued
	w1, _ := ws.DenseMatrix("d1", len(flatVals), 32)
	h1 := make([]float32, 32)
	baseline.DenseFloat(flatVals, w1.Sign(), h1, 1)
	h1s := make([]float32, 32)
	for i, v := range h1 {
		if v >= 0 {
			h1s[i] = 1
		} else {
			h1s[i] = -1
		}
	}
	w2, _ := ws.DenseMatrix("d2", 32, 5)
	want := make([]float32, 5)
	baseline.DenseFloat(h1s, w2.Sign(), want, 1)

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: got %v want %v (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	ws := RandomWeights{Seed: 10}
	cases := map[string]*Builder{
		"empty":              NewBuilder("e", 8, 8, 64, feat()),
		"conv after flatten": NewBuilder("e", 8, 8, 64, feat()).Flatten().Conv3x3("c", 8).Dense("d", 2),
		"pool after flatten": NewBuilder("e", 8, 8, 64, feat()).Flatten().Pool("p", 2, 2, 2).Dense("d", 2),
		"ends in conv":       NewBuilder("e", 8, 8, 64, feat()).Conv3x3("c", 8),
		"ends in pool":       NewBuilder("e", 8, 8, 64, feat()).Pool("p", 2, 2, 2),
		"double flatten":     NewBuilder("e", 8, 8, 64, feat()).Flatten().Flatten().Dense("d", 2),
		"bad conv geometry":  NewBuilder("e", 2, 2, 64, feat()).Conv("c", 4, 5, 5, 1, 0).Dense("d", 2),
		"bad pool geometry":  NewBuilder("e", 2, 2, 64, feat()).Pool("p", 4, 4, 4).Dense("d", 2),
		"flatten channels":   NewBuilder("e", 4, 4, 48, feat()).Dense("d", 2),
	}
	for name, b := range cases {
		if _, err := b.Build(ws); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSinglePixelFlattenAllowsAnyChannels(t *testing.T) {
	// An MLP over 1×1×N input flattens trivially even when N is not a
	// multiple of 64.
	net, err := NewBuilder("mlp", 1, 1, 100, feat()).
		Dense("d1", 40).
		Dense("d2", 3).
		Build(RandomWeights{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	out := net.Infer(workload.RandTensor(workload.NewRNG(12), 1, 1, 100))
	if len(out) != 3 {
		t.Fatalf("output len %d", len(out))
	}
}

func TestLayersReport(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// The fusion planner collapses both conv→pool pairs, so the 7
	// declared layers compile to 5 nodes.
	infos := net.Layers()
	if len(infos) != 5 {
		t.Fatalf("layer count %d want 5", len(infos))
	}
	if infos[0].Name != "conv1.1" || infos[0].Kind != "conv" || infos[0].OutDims != "32x32x64" {
		t.Errorf("layer 0 = %+v", infos[0])
	}
	if infos[1].Name != "conv1.2+pool1" || infos[1].Kind != "conv+pool" || infos[1].OutDims != "16x16x64" {
		t.Errorf("layer 1 = %+v", infos[1])
	}
	if infos[2].Name != "conv2.1+pool2" || infos[2].Kind != "conv+pool" || infos[2].OutDims != "8x8x128" {
		t.Errorf("layer 2 = %+v", infos[2])
	}
	if infos[4].Name != "fc2" || infos[4].OutDims != "10" {
		t.Errorf("layer 4 = %+v", infos[4])
	}
	if fs := net.Fusion(); fs.Pairs != 2 || fs.EliminatedWords <= 0 {
		t.Errorf("fusion stats = %+v", fs)
	}
}

func TestInferTimed(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(15), 32, 32, 3)
	out, timings := net.InferTimed(x)
	if len(out) != 10 {
		t.Fatalf("output len %d", len(out))
	}
	if len(timings) != 6 { // input + 5 fused nodes
		t.Fatalf("timings len %d", len(timings))
	}
	if timings[0].Name != "input" {
		t.Errorf("first timing %q", timings[0].Name)
	}
	// Timed and untimed passes agree.
	want := net.Infer(x)
	for i := range want {
		if out[i] != want[i] {
			t.Fatal("InferTimed result differs from Infer")
		}
	}
}

func TestModelSizeCompression(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	ms := net.ModelSize()
	if ms.Weights == 0 || ms.BinarizedBytes == 0 {
		t.Fatal("empty model size")
	}
	// Paper Table V: 32× compression from bit-packing. Channel padding
	// on the first layer costs a little, so accept ≥ 24×.
	if c := ms.Compression(); c < 24 || c > 33 {
		t.Errorf("compression %.1f outside [24, 33]", c)
	}
	if net.ActivationBytes() <= 0 {
		t.Error("no pre-allocated activations reported")
	}
}

func TestMarginsStayZeroAfterInference(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	net.Infer(workload.RandTensor(workload.NewRNG(18), 32, 32, 3))
	net.Infer(workload.RandTensor(workload.NewRNG(19), 32, 32, 3))
	for _, l := range net.layers {
		var bufs []*bitpack.Packed
		switch v := l.(type) {
		case *convLayer:
			bufs = []*bitpack.Packed{v.in, v.out}
		case *poolLayer:
			bufs = []*bitpack.Packed{v.in, v.out}
		}
		for _, b := range bufs {
			if b == nil {
				continue
			}
			if !b.MarginsAllZero() {
				t.Errorf("layer %s: margin words dirtied", l.name())
			}
			if !b.TailClean() {
				t.Errorf("layer %s: tail lanes dirtied", l.name())
			}
		}
	}
}

func TestRandomWeightsDeterministic(t *testing.T) {
	a, _ := RandomWeights{Seed: 20}.ConvFilter("x", 2, 3, 3, 4)
	b, _ := RandomWeights{Seed: 20}.ConvFilter("x", 2, 3, 3, 4)
	c, _ := RandomWeights{Seed: 20}.ConvFilter("y", 2, 3, 3, 4)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed+name differ")
		}
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different names produced identical weights")
	}
}

func TestInferShapePanics(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong input shape did not panic")
		}
	}()
	net.Infer(tensor.New(8, 8, 3))
}

func TestVGG16Architecture(t *testing.T) {
	if testing.Short() {
		t.Skip("VGG-16 build is heavy for -short")
	}
	net, err := VGG16(feat(), RandomWeights{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	// Each of the five blocks ends conv→pool, and all five pairs fuse:
	// 13 conv + 5 pool compiles to 8 conv + 5 conv+pool nodes.
	infos := net.Layers()
	var convs, pools, fused, fcs int
	for _, li := range infos {
		switch li.Kind {
		case "conv":
			convs++
		case "pool":
			pools++
		case "conv+pool":
			fused++
		case "fc":
			fcs++
		}
	}
	if convs != 8 || pools != 0 || fused != 5 || fcs != 3 {
		t.Errorf("VGG-16 layout %d conv / %d pool / %d conv+pool / %d fc", convs, pools, fused, fcs)
	}
	// Table V: binarized VGG is ~16.5 MB (paper reports full precision
	// >500 MB and 32× compression).
	ms := net.ModelSize()
	mb := float64(ms.BinarizedBytes) / (1 << 20)
	if mb < 14 || mb > 20 {
		t.Errorf("binarized VGG-16 = %.1f MB, expected ≈16.5 MB", mb)
	}
	fullMB := float64(ms.FullPrecisionBytes) / (1 << 20)
	if fullMB < 500 || fullMB > 560 {
		t.Errorf("full-precision VGG-16 = %.1f MB, expected ≈528 MB", fullMB)
	}
	// The feature extractor ends at 7×7×512 before fc6 (pool5 now lives
	// inside the fused tail node of block 5).
	found := false
	for _, li := range infos {
		if li.Name == "conv5.3+pool5" && li.OutDims == "7x7x512" {
			found = true
		}
	}
	if !found {
		t.Error("conv5.3+pool5 output is not 7x7x512")
	}
	if !strings.Contains(infos[len(infos)-1].OutDims, "1000") {
		t.Errorf("classifier dims %q", infos[len(infos)-1].OutDims)
	}
}

func TestVGG19HasThreeMoreConvs(t *testing.T) {
	if testing.Short() {
		t.Skip("VGG-19 build is heavy for -short")
	}
	n16, err := VGG16(feat(), RandomWeights{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	n19, err := VGG19(feat(), RandomWeights{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	count := func(n *Network, kind string) int {
		c := 0
		for _, li := range n.Layers() {
			if li.Kind == kind {
				c++
			}
		}
		return c
	}
	if count(n19, "conv")-count(n16, "conv") != 3 {
		t.Errorf("VGG-19 has %d convs, VGG-16 %d; difference must be 3",
			count(n19, "conv"), count(n16, "conv"))
	}
}
