package graph

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
)

// Fusion planning (Vorabbi et al., "Optimizing data-flow in Binary
// Neural Networks"): once conv → batchnorm-threshold → binarize runs as
// one packed-bit epilogue, the remaining boundary crossing on a
// conv→pool edge is the intermediate packed plane the conv writes and
// the pool immediately re-reads. The planner below collapses every
// eligible convLayer→poolLayer pair into one fusedConvPoolLayer whose
// forward runs core.Conv.ForwardFused — threshold bits OR straight into
// the pool's output buffer and the intermediate plane is dropped from
// the activation chain entirely.
//
// The pass is pure runtime planning: it runs at build *and* load time
// off the architecture specs, the serialized format carries no fusion
// metadata, and Save/readActivations treat a fused node exactly as its
// conv (the pool holds no weights or activation records). Pre-fusion
// artifacts therefore load fused with bit-identical logits, and the
// layer list — names, order, count — is a deterministic function of the
// architecture, so dashboards keyed on layer names see no discontinuity
// across a hot reload from an artifact saved unfused.

// FusionStats summarizes what the planning pass collapsed.
type FusionStats struct {
	// Pairs is the number of conv→pool pairs fused into one node.
	Pairs int
	// EliminatedWords counts the packed intermediate-plane words removed
	// from the pre-allocated activation chain (8 bytes each).
	EliminatedWords int64
}

// Fusion reports the network's fusion planning outcome.
func (n *Network) Fusion() FusionStats { return n.fusion }

// Fused reports whether the fusion planning pass ran (regardless of
// whether it found eligible pairs).
func (n *Network) Fused() bool { return !n.unfused }

// fusedConvPoolLayer executes an eligible conv→pool pair as one fused
// node: conv epilogue bits OR directly into the pooled output.
type fusedConvPoolLayer struct {
	convName, poolName string
	conv               *core.Conv
	pool               *core.Pool
	in                 *bitpack.Packed // the conv's input edge
	out                *bitpack.Packed // the pool's output edge
	// press selects the kernel-compressed forward (see press.go).
	press bool
}

// name joins the pair under a stable "conv+pool" identity so per-layer
// stats (/statusz, exec observers) stay continuous across reloads.
func (l *fusedConvPoolLayer) name() string { return l.convName + "+" + l.poolName }
func (l *fusedConvPoolLayer) kind() string { return "conv+pool" }
func (l *fusedConvPoolLayer) outDims() string {
	s := l.pool.Shape
	return fmt.Sprintf("%dx%dx%d", s.OutH, s.OutW, s.OutC)
}
func (l *fusedConvPoolLayer) forward(ec *exec.Ctx) {
	if l.press {
		l.conv.ForwardFusedCompressed(l.in, l.pool, l.out, ec)
		return
	}
	l.conv.ForwardFused(l.in, l.pool, l.out, ec)
}
func (l *fusedConvPoolLayer) parallelUnits() int {
	return l.pool.Shape.OutH * l.pool.Shape.OutW
}
func (l *fusedConvPoolLayer) weightStats() (int64, int64) {
	s := l.conv.Shape
	return int64(s.K) * int64(s.KH) * int64(s.KW) * int64(s.InC), 8 * int64(len(l.conv.Filter().Words))
}

// fuse is the planning pass: collapse adjacent convLayer→poolLayer pairs
// whose buffers chain directly and whose geometry core.Conv.CanFusePool
// accepts (non-overlapping windows over exactly the conv's output).
// Non-matching layers — the float input stem, overlapping pools, dense
// heads — keep their existing nodes untouched.
func (n *Network) fuse() {
	fused := make([]layer, 0, len(n.layers))
	for i := 0; i < len(n.layers); i++ {
		if cl, ok := n.layers[i].(*convLayer); ok && i+1 < len(n.layers) {
			if pl, ok := n.layers[i+1].(*poolLayer); ok &&
				cl.out == pl.in && cl.op.CanFusePool(pl.op.Shape) {
				fused = append(fused, &fusedConvPoolLayer{
					convName: cl.lname, poolName: pl.lname,
					conv: cl.op, pool: pl.op,
					in: cl.in, out: pl.out,
				})
				eliminated := int64(len(cl.out.Words))
				n.activationWords -= eliminated
				n.fusion.Pairs++
				n.fusion.EliminatedWords += eliminated
				i++ // the pool is consumed by the fused node
				continue
			}
		}
		fused = append(fused, n.layers[i])
	}
	n.layers = fused
}

// PoolInputBytes reports the size of the packed plane feeding the named
// pool layer, or 0 when no separate pool node carries that name. On an
// unfused network this is exactly the intermediate buffer fusion would
// eliminate, which is what bitflow-bench's fusion report charges as
// per-pass plane traffic.
func (n *Network) PoolInputBytes(name string) int64 {
	for _, l := range n.layers {
		if pl, ok := l.(*poolLayer); ok && pl.lname == name {
			return int64(len(pl.in.Words)) * 8
		}
	}
	return 0
}

// CloneUnfused is Clone with the fusion planner disabled: an independent
// buffer chain over the *same* packed weights, executing the original
// layer-per-node data-flow. It exists for the fused-vs-unfused
// equivalence harness (tests, conformance oracle, bitflow-bench ops) —
// production paths always take the fused plan.
func (n *Network) CloneUnfused() *Network {
	b := &Builder{name: n.Name, feat: n.Feat, inH: n.InH, inW: n.InW, inC: n.InC,
		specs: n.arch, noFuse: true, noPress: n.uncompressed}
	clone, err := b.buildFrom(&reuseSource{layers: n.layers})
	if err != nil {
		panic(fmt.Sprintf("graph: CloneUnfused of a compiled network failed: %v", err))
	}
	clone.Threads = n.Threads
	clone.ec = n.ec
	return clone
}
