package graph

import "bitflow/internal/sched"

// This file builds the binarized VGG architectures evaluated in the paper
// (Simonyan & Zisserman's configurations D and E). All convolutions are
// 3×3/stride 1/pad 1, all pools 2×2/stride 2; fc6/fc7 have 4096 units and
// the classifier 1000 ("VGG19 and VGG16 have similar architectures,
// except that VGG19 has 3 more convolution operators").

// VGGInputSize is the spatial input size of the VGG networks.
const VGGInputSize = 224

// VGGClasses is the classifier width.
const VGGClasses = 1000

// vggBlocks lists (filters, convs-per-block) for VGG-16 and VGG-19.
var vggBlocks16 = [][2]int{{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}}
var vggBlocks19 = [][2]int{{64, 2}, {128, 2}, {256, 4}, {512, 4}, {512, 4}}

func buildVGG(name string, blocks [][2]int, feat sched.Features, ws WeightSource) (*Network, error) {
	b := NewBuilder(name, VGGInputSize, VGGInputSize, 3, feat)
	for bi, blk := range blocks {
		filters, convs := blk[0], blk[1]
		for ci := 0; ci < convs; ci++ {
			b.Conv3x3(convName(bi+1, ci+1), filters)
		}
		b.Pool(poolName(bi+1), 2, 2, 2)
	}
	b.Flatten()
	b.Dense("fc6", 4096)
	b.Dense("fc7", 4096)
	b.Dense("fc8", VGGClasses)
	return b.Build(ws)
}

func convName(block, idx int) string {
	return "conv" + itoa(block) + "." + itoa(idx)
}

func poolName(block int) string { return "pool" + itoa(block) }

// itoa avoids strconv for the tiny digits used here.
func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}

// VGG16 builds binarized VGG-16 (13 conv + 3 fc).
func VGG16(feat sched.Features, ws WeightSource) (*Network, error) {
	return buildVGG("VGG16", vggBlocks16, feat, ws)
}

// VGG19 builds binarized VGG-19 (16 conv + 3 fc).
func VGG19(feat sched.Features, ws WeightSource) (*Network, error) {
	return buildVGG("VGG19", vggBlocks19, feat, ws)
}

// TinyVGG builds a scaled-down VGG-shaped network (32×32 input, two
// blocks, small dense head) for tests and the quickstart example: same
// structural elements — conv/pool blocks, flatten, dense chain — at a
// fraction of the compute.
func TinyVGG(feat sched.Features, ws WeightSource) (*Network, error) {
	return NewBuilder("TinyVGG", 32, 32, 3, feat).
		Conv3x3("conv1.1", 64).
		Conv3x3("conv1.2", 64).
		Pool("pool1", 2, 2, 2).
		Conv3x3("conv2.1", 128).
		Pool("pool2", 2, 2, 2).
		Flatten().
		Dense("fc1", 256).
		Dense("fc2", 10).
		Build(ws)
}
